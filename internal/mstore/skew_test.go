package mstore

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
)

// zipfDB rewrites the db's R pointers into a Zipf-like worst case: one
// hot S key (partition 0, index 0) owns half of all references, the
// other half spreads deterministically over every partition. This is
// the workload the planner's memory estimate gets most wrong — one
// Grace bucket holds ~50% of R no matter what K says.
func zipfDB(t *testing.T, nr int) *DB {
	t.Helper()
	db := makeDB(t, nr)
	hot := SPtr{Part: 0, Off: db.S[0].PtrAt(0)}
	n, u := 0, 0
	for _, ri := range db.R {
		for x := 0; x < ri.Count(); x++ {
			if n%2 == 0 {
				EncodeSPtr(ri.Object(x), hot)
			} else {
				part := u % db.D
				rel := db.S[part]
				EncodeSPtr(ri.Object(x), SPtr{
					Part: uint32(part), Off: rel.PtrAt(u % rel.Count()),
				})
				u++
			}
			n++
		}
	}
	return db
}

// TestSkewGrantBoundedGraceHybrid is the tentpole invariant: under a
// hot-key workload with a deliberately undersized grant, Grace and
// hybrid-hash complete with bit-identical Pairs/Signature vs the
// unbounded baseline, while the measured peak of counted probe-table
// bytes never exceeds the grant. The hot bucket's table alone
// (tableBytesFor(4000) ≈ 158 KiB: 8192 slots · 12 B + 4000 refs · 16 B)
// cannot fit the 32 KiB grant, so the join must restage it and
// ultimately stream the hot key.
func TestSkewGrantBoundedGraceHybrid(t *testing.T) {
	db := zipfDB(t, 8000)
	want := db.ExpectedStats()
	const grant = 32 << 10

	for _, alg := range []join.Algorithm{join.Grace, join.HybridHash} {
		for _, w := range []int{1, 4} {
			base, err := db.Run(JoinRequest{
				Algorithm: alg, K: 4, ResidentFrac: -1, Workers: w, MemGrant: -1,
				TmpDir: filepath.Join(t.TempDir(), "base"),
			})
			if err != nil {
				t.Fatalf("%v unbounded: %v", alg, err)
			}
			if base != want {
				t.Fatalf("%v unbounded: %+v, want %+v", alg, base, want)
			}

			tel := &JoinTelemetry{}
			st, err := db.Run(JoinRequest{
				Algorithm: alg, K: 4, ResidentFrac: -1, Workers: w,
				MemGrant: grant, Telemetry: tel,
				TmpDir: filepath.Join(t.TempDir(), "bounded"),
			})
			if err != nil {
				t.Fatalf("%v bounded: %v", alg, err)
			}
			if st != want {
				t.Fatalf("%v bounded workers=%d: %+v, want %+v", alg, w, st, want)
			}
			if peak := tel.PeakTableBytes.Load(); peak > grant {
				t.Fatalf("%v workers=%d: peak table bytes %d exceed grant %d", alg, w, peak, grant)
			}
			if tel.Restages.Load() < 1 {
				t.Errorf("%v workers=%d: oversized bucket never restaged", alg, w)
			}
			if tel.StreamProbes.Load() < 1 {
				t.Errorf("%v workers=%d: hot-key bucket never streamed", alg, w)
			}
		}
	}
}

// TestSkewZipfCorpusAllAlgorithms is the conformance corpus: the
// hot-key workload across all four algorithms × worker counts, each
// result bit-identical to the pointer-walk ground truth. Under -race it
// additionally exercises concurrent appends, restages, and the shared
// memory limiter.
func TestSkewZipfCorpusAllAlgorithms(t *testing.T) {
	db := zipfDB(t, 6000)
	want := db.ExpectedStats()
	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash}
	for _, alg := range algs {
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			tel := &JoinTelemetry{}
			st, err := db.Run(JoinRequest{
				Algorithm: alg, K: 3, ResidentFrac: 0.25, Workers: w,
				MemGrant: 48 << 10, Telemetry: tel,
				TmpDir: filepath.Join(t.TempDir(), fmt.Sprintf("%v-%d", alg, w)),
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, w, err)
			}
			if st != want {
				t.Fatalf("%v workers=%d: %+v, want %+v", alg, w, st, want)
			}
			if peak := tel.PeakTableBytes.Load(); peak > 48<<10 {
				t.Fatalf("%v workers=%d: peak %d over grant", alg, w, peak)
			}
		}
	}
}

// TestSkewRenegotiationGrowsGrant: a negotiator with spare memory lets
// the oversized bucket's table build in place of restaging, and every
// renegotiated byte is given back when the join returns.
func TestSkewRenegotiationGrowsGrant(t *testing.T) {
	db := zipfDB(t, 4000)
	want := db.ExpectedStats()
	neg := &fakeNegotiator{spare: 1 << 20}
	tel := &JoinTelemetry{}
	st, err := db.Run(JoinRequest{
		Algorithm: join.Grace, K: 4, MemGrant: 16 << 10,
		Telemetry: tel, Negotiator: neg,
		TmpDir: filepath.Join(t.TempDir(), "tmp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if tel.Renegotiations.Load() < 1 {
		t.Fatal("under-granted join never renegotiated")
	}
	if tel.Restages.Load() != 0 {
		t.Errorf("restaged %d times despite available renegotiation", tel.Restages.Load())
	}
	neg.mu.Lock()
	defer neg.mu.Unlock()
	if neg.out != 0 {
		t.Fatalf("%d renegotiated bytes never given back", neg.out)
	}
	if peak := tel.PeakTableBytes.Load(); peak > 16<<10+tel.ExtraGrantBytes.Load() {
		t.Fatalf("peak %d exceeds grant+extra %d", peak, 16<<10+tel.ExtraGrantBytes.Load())
	}
}

// fakeNegotiator grants growth from a fixed spare pool.
type fakeNegotiator struct {
	mu    sync.Mutex
	spare int64
	out   int64
}

func (f *fakeNegotiator) TryGrow(bytes int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if bytes > f.spare-f.out {
		return false
	}
	f.out += bytes
	return true
}

func (f *fakeNegotiator) GiveBack(bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.out -= bytes
}

// TestSkewConcurrentDefaultTmpDirGrace is the regression for the shared
// default temp directory: two concurrent Grace joins with TmpDir left
// empty used to write the same <db>/tmp/gr_j_b.seg files and corrupt
// each other; per-call MkdirTemp keeps them disjoint and exact.
func TestSkewConcurrentDefaultTmpDirGrace(t *testing.T) {
	db := zipfDB(t, 4000)
	want := db.ExpectedStats()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := db.Run(JoinRequest{Algorithm: join.Grace, K: 4})
			if err != nil {
				t.Errorf("concurrent grace: %v", err)
				return
			}
			if st != want {
				t.Errorf("concurrent grace: %+v, want %+v", st, want)
			}
		}()
	}
	wg.Wait()
	// The per-call directories are removed on return.
	ents, err := os.ReadDir(db.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("per-call temp dir %s left behind", e.Name())
		}
	}
}

// TestSkewEmptyBucketsCreateNoFiles: with every reference in partition
// 0, the other partitions' buckets are measured empty and must not
// materialize segment files (the former eager D×K creation opened all
// of them).
func TestSkewEmptyBucketsCreateNoFiles(t *testing.T) {
	db := skewDB(t, 4000) // every reference → partition 0
	want := db.ExpectedStats()
	const k = 8
	tel := &JoinTelemetry{}
	tmp := filepath.Join(t.TempDir(), "tmp")
	st, err := db.Run(JoinRequest{
		Algorithm: join.Grace, K: k, MemGrant: -1, Telemetry: tel, TmpDir: tmp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if files := tel.TempFiles.Load(); files > k {
		t.Fatalf("%d temp files for %d non-empty buckets (eager creation would make %d)",
			files, k, db.D*k)
	}
	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d bucket files left behind in %s", len(ents), tmp)
	}
}

// TestRankBucketBoundaries pins the int64 bucket math: the former
// int-typed idx*k product overflows 32-bit ints at realistic sizes
// (10M-object partition × k=512 ≈ 2^32.3).
func TestRankBucketBoundaries(t *testing.T) {
	cases := []struct {
		idx, k, n int
		want      int
	}{
		{0, 4, 100, 0},
		{99, 4, 100, 3},
		{0, 1, 1, 0},
		{math.MaxInt32 - 1, 1 << 20, math.MaxInt32, 1<<20 - 1},
		{math.MaxInt32 / 2, 1 << 20, math.MaxInt32, 1<<19 - 1},
		{10_000_000 - 1, 512, 10_000_000, 511},
		{0, 512, 10_000_000, 0},
	}
	for _, c := range cases {
		if got := rankBucket(c.idx, c.k, c.n); got != c.want {
			t.Errorf("rankBucket(%d, %d, %d) = %d, want %d", c.idx, c.k, c.n, got, c.want)
		}
	}
	// Monotone and in-range over a sweep.
	prev := 0
	for idx := 0; idx < 1000; idx++ {
		b := rankBucket(idx, 7, 1000)
		if b < prev || b < 0 || b >= 7 {
			t.Fatalf("rankBucket not monotone in range at idx=%d: %d after %d", idx, b, prev)
		}
		prev = b
	}
}

// TestSkewStreamProbeDegenerateGrant: a grant too small for even the
// streaming handle chunk still completes exactly (the pure-scan path).
func TestSkewStreamProbeDegenerateGrant(t *testing.T) {
	db := zipfDB(t, 2000)
	want := db.ExpectedStats()
	tel := &JoinTelemetry{}
	st, err := db.Run(JoinRequest{
		Algorithm: join.Grace, K: 2, MemGrant: 64, Telemetry: tel,
		TmpDir: filepath.Join(t.TempDir(), "tmp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if peak := tel.PeakTableBytes.Load(); peak > 64 {
		t.Fatalf("peak %d over 64-byte grant", peak)
	}
}

// TestMemLimiterConcurrentReservations hammers one limiter from many
// goroutines and checks the accounting balances and the peak honors the
// budget.
func TestMemLimiterConcurrentReservations(t *testing.T) {
	tel := &JoinTelemetry{}
	lim := newMemLimiter(1000, nil, tel)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !lim.reserve(100) {
					t.Error("fitting reservation denied")
					return
				}
				lim.release(100)
			}
		}()
	}
	wg.Wait()
	if lim.used != 0 {
		t.Fatalf("leaked %d reserved bytes", lim.used)
	}
	if peak := tel.PeakTableBytes.Load(); peak > 1000 {
		t.Fatalf("peak %d over budget 1000", peak)
	}
	if lim.reserve(1001) {
		t.Fatal("impossible reservation accepted")
	}
	// An unbounded limiter accounts but never denies.
	free := newMemLimiter(0, nil, nil)
	if !free.reserve(1 << 40) {
		t.Fatal("unbounded limiter denied")
	}
	free.release(1 << 40)
}

// TestSkewExplicitTmpDirStillWorks: an explicit caller-unique TmpDir
// keeps working (and is the caller's to clean up).
func TestSkewExplicitTmpDirStillWorks(t *testing.T) {
	db := zipfDB(t, 1000)
	want := db.ExpectedStats()
	tmp := filepath.Join(t.TempDir(), "mine")
	st, err := db.Run(JoinRequest{Algorithm: join.HybridHash, K: 2, TmpDir: tmp})
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("explicit TmpDir removed behind the caller's back: %v", err)
	}
}

// TestSkewSharedPoolBoundedJoins: bounded skewed joins on one shared
// pool — restage recursion runs inline in probe tasks, so this must not
// deadlock the work-stealing pool — and results stay exact.
func TestSkewSharedPoolBoundedJoins(t *testing.T) {
	db := zipfDB(t, 4000)
	want := db.ExpectedStats()
	pool := exec.NewPool(2)
	defer pool.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := db.Run(JoinRequest{
				Algorithm: join.Grace, K: 4, MemGrant: 32 << 10, Pool: pool,
				TmpDir: filepath.Join(t.TempDir(), fmt.Sprintf("g%d", g)),
			})
			if err != nil {
				t.Errorf("join %d: %v", g, err)
				return
			}
			if st != want {
				t.Errorf("join %d: %+v, want %+v", g, st, want)
			}
		}(g)
	}
	wg.Wait()
}
