// CAD: a bill-of-materials workload on the real memory-mapped store —
// the kind of application (computer-aided design) the paper's
// introduction argues single-level stores serve best.
//
// A parts catalogue lives in S segments; assembly usage records (which
// part, how many, where in the assembly) live in R segments, each
// holding a virtual pointer to its part. The program builds the store,
// closes it, reopens it — demonstrating that exactly positioned pointers
// survive without swizzling — and then "explodes" the bill of materials
// with a parallel pointer-based join.
//
// Run with: go run ./examples/cad
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"mmjoin/internal/mstore"
)

// Part is a catalogue entry in S (fits the 64-byte object payload after
// the 8-byte identity word the store maintains).
//
//	[0:8)   identity word (store)
//	[8:16)  unit mass in grams
//	[16:24) unit cost in cents
type partCodec struct{}

func (partCodec) set(obj []byte, grams, cents uint64) {
	binary.LittleEndian.PutUint64(obj[8:], grams)
	binary.LittleEndian.PutUint64(obj[16:], cents)
}
func (partCodec) grams(obj []byte) uint64 { return binary.LittleEndian.Uint64(obj[8:]) }
func (partCodec) cents(obj []byte) uint64 { return binary.LittleEndian.Uint64(obj[16:]) }

// Usage is an R record: after the store's pointer+id prefix it carries
// the quantity of the referenced part used at one assembly position.
const usageQtyOff = 20 // past SPtr (12) + rid (8)

func main() {
	dir, err := os.MkdirTemp("", "mmjoin-cad")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		d       = 4
		parts   = 12000
		usages  = 48000
		objSize = 64
	)

	// Build the store. CreateDB lays out the segments and pointers; we
	// then overwrite the payloads with CAD data through the mapping.
	db, err := mstore.CreateDB(filepath.Join(dir, "bom"), d, usages, parts, objSize, 7)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var pc partCodec
	for j := 0; j < d; j++ {
		for x := 0; x < db.S[j].Count(); x++ {
			pc.set(db.S[j].Object(x), uint64(rng.Intn(5000)+1), uint64(rng.Intn(100000)+1))
		}
	}
	for i := 0; i < d; i++ {
		for x := 0; x < db.R[i].Count(); x++ {
			binary.LittleEndian.PutUint32(db.R[i].Object(x)[usageQtyOff:], uint32(rng.Intn(8)+1))
		}
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d parts; bill of materials: %d usage records (on disk)\n",
		parts, usages)

	// Reopen: pointers are offsets into exactly positioned segments, so
	// no swizzling pass runs here — the paper's central premise.
	db, err = mstore.OpenDB(filepath.Join(dir, "bom"), d)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Explode the BOM: join every usage with its part and roll up mass
	// and cost. The sort-merge pointer join keeps part reads sequential.
	start := time.Now()
	st, err := db.SortMerge(filepath.Join(dir, "tmp"))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var grams, cents uint64
	for i := 0; i < d; i++ {
		rel := db.R[i]
		for x := 0; x < rel.Count(); x++ {
			obj := rel.Object(x)
			qty := uint64(binary.LittleEndian.Uint32(obj[usageQtyOff:]))
			ptr := mstore.DecodeSPtr(obj)
			part := db.S[ptr.Part].At(ptr.Off)
			grams += qty * pc.grams(part)
			cents += qty * pc.cents(part)
		}
	}
	fmt.Printf("exploded %d usages in %v (parallel pointer sort-merge join)\n",
		st.Pairs, elapsed.Round(time.Microsecond))
	fmt.Printf("assembly totals: %.1f kg, $%.2f\n",
		float64(grams)/1000, float64(cents)/100)
}
