package machine

import (
	"testing"

	"mmjoin/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.B() != 4096 {
		t.Errorf("B = %d", cfg.B())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.D = 0 },
		func(c *Config) { c.Disk.BlockBytes = 0 },
		func(c *Config) { c.HeapPtrBytes = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestTransferCosts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MTpp, cfg.MTps, cfg.MTsp = 100, 200, 300
	if got := cfg.TransferPP(10); got != 1000 {
		t.Errorf("TransferPP = %v", got)
	}
	if got := cfg.TransferPS(10); got != 2000 {
		t.Errorf("TransferPS = %v", got)
	}
	if got := cfg.TransferSP(10); got != 3000 {
		t.Errorf("TransferSP = %v", got)
	}
}

func TestNewBuildsDDisks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.D = 3
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Disk) != 3 || len(m.Mgr) != 3 {
		t.Fatalf("disks=%d mgrs=%d", len(m.Disk), len(m.Mgr))
	}
	m.K.Spawn("t", func(p *sim.Proc) {
		m.Disk[1].Read(p, 100)
		m.Shutdown(p)
	})
	m.K.Run()
	st := m.DiskStats()
	if st.Reads != 1 {
		t.Errorf("DiskStats.Reads = %d", st.Reads)
	}
}

func TestShutdownDrainsAllQueues(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.K.Spawn("t", func(p *sim.Proc) {
		for i, d := range m.Disk {
			d.ScheduleWrite(p, 100*i+1)
			d.ScheduleWrite(p, 100*i+2)
		}
		m.Shutdown(p)
	})
	m.K.Run()
	if st := m.DiskStats(); st.Writes != int64(2*len(m.Disk)) {
		t.Errorf("Writes = %d, want %d", st.Writes, 2*len(m.Disk))
	}
}

func TestDisksAreIndependentResources(t *testing.T) {
	// Two readers on two disks overlap and finish much earlier than two
	// readers contending for one disk.
	cfg := DefaultConfig()
	cfg.D = 2
	finish := func(sameDisk bool) sim.Time {
		m := MustNew(cfg)
		var last sim.Time
		done := 0
		for i := 0; i < 2; i++ {
			disk := i
			if sameDisk {
				disk = 0
			}
			m.K.Spawn("r", func(p *sim.Proc) {
				for n := 0; n < 50; n++ {
					m.Disk[disk].Read(p, n*97%cfg.Disk.Blocks)
				}
				if p.Now() > last {
					last = p.Now()
				}
				done++
				if done == 2 {
					m.Shutdown(p)
				}
			})
		}
		m.K.Run()
		return last
	}
	par := finish(false)
	ser := finish(true)
	if float64(ser) < 1.5*float64(par) {
		t.Errorf("contended run (%v) should be much slower than parallel disks (%v)", ser, par)
	}
}
