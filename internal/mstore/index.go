package mstore

import (
	"context"
	"encoding/binary"
	"fmt"

	"mmjoin/internal/exec"
)

// Persistent per-partition B-tree indexes over both relations, keyed by
// the canonical (partition, index) name of the S object a row joins to:
//
//	key(S[j][x])      = j<<32 | x        (unique: one S row per key)
//	key(R[i] row obj) = key of the S row obj points to (duplicate-heavy:
//	                    many R rows share a target, Zipf-skewed under -skew)
//
// The key is computable from an R row's stored pointer alone (IndexOf is
// offset arithmetic), so index builds and index-merge scans never fault
// S's object pages. Each tree lives inside its relation's own segment
// with its head in the segment AuxRoot — reopening the store finds the
// indexes by exact positioning, no pointer fixup, the same claim the
// relations themselves test.

// indexNodeBytes is the node size of relation indexes: one page, the
// layout the analytical model's index-probe term assumes.
const indexNodeBytes = 4096

// indexKeyOf names the S object ptr references: partition in the high
// word, row index in the low word — ascending key order is exactly
// (partition, row) order, which makes per-partition key ranges
// contiguous for the merge join.
func (db *DB) indexKeyOf(ptr SPtr) uint64 {
	return uint64(ptr.Part)<<32 | uint64(db.S[ptr.Part].IndexOf(ptr.Off))
}

// HasIndexes reports whether every partition of both relations has an
// attached B-tree index (all or nothing — the operators need both
// sides).
func (db *DB) HasIndexes() bool { return len(db.ridx) == db.D && len(db.sidx) == db.D }

// RIndex and SIndex expose the attached per-partition trees (nil when
// the store is unindexed); read-only access for tools and tests.
func (db *DB) RIndex(i int) *BTree { return db.ridx[i] }
func (db *DB) SIndex(j int) *BTree { return db.sidx[j] }

// BuildIndexes bulk-loads a B-tree per partition of both relations on
// the pool (nil ⇒ ephemeral) and persists each head in its segment's
// AuxRoot. It is a no-op if indexes are already attached; a segment
// whose AuxRoot is occupied by something else (e.g. an application
// R-tree) is an error — the store's aux slot is taken.
func (db *DB) BuildIndexes(ctx context.Context, p *exec.Pool) error {
	if db.HasIndexes() {
		return nil
	}
	if p == nil {
		p = exec.NewPool(0)
		defer p.Close()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ridx := make([]*BTree, db.D)
	sidx := make([]*BTree, db.D)
	for j, rel := range db.S {
		items := make([]KV, rel.Count())
		base := uint64(j) << 32
		if err := p.RunRanges(ctx, len(items), morselObjs, func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				items[x] = KV{Key: base | uint64(x), Val: rel.PtrAt(x)}
			}
			return nil
		}); err != nil {
			return err
		}
		t, err := db.buildOne(ctx, p, rel, items)
		if err != nil {
			return fmt.Errorf("mstore: index S%d: %w", j, err)
		}
		sidx[j] = t
	}
	for i, rel := range db.R {
		items := make([]KV, rel.Count())
		if err := p.RunRanges(ctx, len(items), morselObjs, func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				items[x] = KV{Key: db.indexKeyOf(DecodeSPtr(rel.Object(x))), Val: rel.PtrAt(x)}
			}
			return nil
		}); err != nil {
			return err
		}
		t, err := db.buildOne(ctx, p, rel, items)
		if err != nil {
			return fmt.Errorf("mstore: index R%d: %w", i, err)
		}
		ridx[i] = t
	}
	db.ridx, db.sidx = ridx, sidx
	return nil
}

func (db *DB) buildOne(ctx context.Context, p *exec.Pool, rel *Relation, items []KV) (*BTree, error) {
	seg := rel.Segment()
	if aux := seg.AuxRoot(); aux != 0 {
		if t, err := OpenBTree(seg, aux); err == nil && t.Len() == rel.Count() {
			return t, nil // already indexed (e.g. concurrent open built it)
		}
		return nil, fmt.Errorf("aux root %d already occupied", aux)
	}
	t, err := BulkLoadBTree(ctx, p, seg, indexNodeBytes, items)
	if err != nil {
		return nil, err
	}
	seg.SetAuxRoot(t.Head())
	return t, nil
}

// attachIndexes opens the persisted per-partition trees if every
// segment of both relations carries one that is consistent with its
// relation (right magic, one entry per row). Anything less attaches
// nothing: a partially indexed or stale store simply runs unindexed,
// and an aux root holding a different structure (the gis example keeps
// an R-tree there) is skipped the same way.
func (db *DB) attachIndexes() {
	open := func(rel *Relation) *BTree {
		aux := rel.Segment().AuxRoot()
		if aux == 0 {
			return nil
		}
		t, err := OpenBTree(rel.Segment(), aux)
		if err != nil || t.Len() != rel.Count() {
			return nil
		}
		return t
	}
	ridx := make([]*BTree, 0, db.D)
	sidx := make([]*BTree, 0, db.D)
	for _, rel := range db.S {
		t := open(rel)
		if t == nil {
			return
		}
		sidx = append(sidx, t)
	}
	for _, rel := range db.R {
		t := open(rel)
		if t == nil {
			return
		}
		ridx = append(ridx, t)
	}
	db.ridx, db.sidx = ridx, sidx
}

// VerifyIndexes cross-checks the attached trees against the relations:
// every S row is findable under its canonical key, and every R row's
// key posting list contains the row. (Quadratic-free: one probe per
// row.)
func (db *DB) VerifyIndexes() error {
	if !db.HasIndexes() {
		return fmt.Errorf("mstore: no indexes attached")
	}
	for j, rel := range db.S {
		base := uint64(j) << 32
		for x := 0; x < rel.Count(); x++ {
			if v, ok := db.sidx[j].Get(base | uint64(x)); !ok || v != rel.PtrAt(x) {
				return fmt.Errorf("mstore: S%d[%d] index lookup = %d,%v want %d", j, x, v, ok, rel.PtrAt(x))
			}
		}
	}
	for i, rel := range db.R {
		for x := 0; x < rel.Count(); x++ {
			k := db.indexKeyOf(DecodeSPtr(rel.Object(x)))
			found := false
			db.ridx[i].Postings(k, func(v Ptr) bool {
				found = v == rel.PtrAt(x)
				return !found
			})
			if !found {
				return fmt.Errorf("mstore: R%d[%d] missing from posting list of key %d", i, x, k)
			}
		}
	}
	return nil
}

// ridAt reads the R id stored at an R-relation offset (the value an
// R-index posting names); ridFromObj reads it from an R-layout record.
func ridAt(rel *Relation, off Ptr) uint64 {
	return binary.LittleEndian.Uint64(rel.At(off)[ridOffset:])
}

func ridFromObj(obj []byte) uint64 { return binary.LittleEndian.Uint64(obj[ridOffset:]) }
