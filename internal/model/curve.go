// Package model implements the paper's validated quantitative analytical
// model: closed-form predictions of total elapsed time per Rproc for the
// parallel pointer-based nested loops (§5.3), sort-merge (§6.3) and Grace
// (§7.3) joins, driven by measured machine functions — the band-dependent
// disk transfer times dttr/dttw of Fig. 1(a), the mapping setup costs of
// Fig. 1(b), and per-operation CPU costs.
//
// Two auxiliary results are implemented in full: the Mackert–Lohman LRU
// page-fault approximation Ylru, and the Johnson–Kotz urn-model estimate
// of pages prematurely replaced by Grace's bucket writes when memory is
// scarce.
package model

import (
	"fmt"
	"sort"

	"mmjoin/internal/sim"
)

// Curve is a measured machine function sampled at increasing x values and
// evaluated by piecewise-linear interpolation (clamped at the ends), the
// way the paper interpolates its measured dtt curves.
type Curve struct {
	xs []float64
	ys []float64
}

// NewCurve builds a curve from (x, y) samples; xs must be strictly
// increasing and non-empty.
func NewCurve(xs, ys []float64) (Curve, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Curve{}, fmt.Errorf("model: curve needs equal non-empty samples, got %d/%d", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return Curve{}, fmt.Errorf("model: curve x values not increasing at %d", i)
		}
	}
	return Curve{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}, nil
}

// MustCurve is NewCurve, panicking on error.
func MustCurve(xs, ys []float64) Curve {
	c, err := NewCurve(xs, ys)
	if err != nil {
		panic(err)
	}
	return c
}

// ConstantCurve returns a curve with the same value everywhere.
func ConstantCurve(y float64) Curve { return Curve{xs: []float64{1}, ys: []float64{y}} }

// Eval interpolates the curve at x.
func (c Curve) Eval(x float64) float64 {
	if len(c.xs) == 0 {
		panic("model: Eval of zero curve")
	}
	if x <= c.xs[0] {
		return c.ys[0]
	}
	n := len(c.xs)
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, x)
	// c.xs[i-1] < x <= c.xs[i]
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// EvalTime interpolates and converts to sim.Time.
func (c Curve) EvalTime(x float64) sim.Time { return sim.Time(c.Eval(x)) }

// Points returns copies of the sample vectors.
func (c Curve) Points() (xs, ys []float64) {
	return append([]float64(nil), c.xs...), append([]float64(nil), c.ys...)
}
