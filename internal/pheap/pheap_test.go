package pheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(keys []int) func(a, b int32) bool {
	return func(a, b int32) bool { return keys[a] < keys[b] }
}

func TestFloydBuildsValidHeap(t *testing.T) {
	keys := []int{5, 3, 8, 1, 9, 2, 7, 6, 4, 0}
	items := make([]int32, len(keys))
	for i := range items {
		items[i] = int32(i)
	}
	h := NewFloyd(items, intLess(keys))
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := keys[h.Min()]; got != 0 {
		t.Errorf("Min key = %d, want 0", got)
	}
}

func TestDeleteMinDrainsSorted(t *testing.T) {
	keys := []int{5, 3, 8, 1, 9}
	items := []int32{0, 1, 2, 3, 4}
	h := NewFloyd(items, intLess(keys))
	var out []int
	for h.Len() > 0 {
		out = append(out, keys[h.DeleteMin()])
	}
	if !sort.IntsAreSorted(out) {
		t.Errorf("drain order %v not sorted", out)
	}
}

func TestInsertThenDelete(t *testing.T) {
	keys := []int{4, 2, 7, 1}
	h := NewEmpty(4, intLess(keys))
	for i := range keys {
		h.Insert(int32(i))
		if err := h.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	if keys[h.Min()] != 1 {
		t.Errorf("Min key = %d", keys[h.Min()])
	}
	if h.Len() != 4 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestReplaceMinEquivalentToDeleteInsert(t *testing.T) {
	keys := make([]int, 64)
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = rng.Intn(1000)
	}
	items := make([]int32, 32)
	for i := range items {
		items[i] = int32(i)
	}
	h := NewFloyd(append([]int32(nil), items...), intLess(keys))
	var got []int
	for i := 32; i < 64; i++ {
		got = append(got, keys[h.ReplaceMin(int32(i))])
		if err := h.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	for h.Len() > 0 {
		got = append(got, keys[h.DeleteMin()])
	}
	// Reference: plain sort of all keys, drained the same way.
	h2 := NewFloyd(func() []int32 {
		a := make([]int32, 32)
		for i := range a {
			a[i] = int32(i)
		}
		return a
	}(), intLess(keys))
	var want []int
	for i := 32; i < 64; i++ {
		want = append(want, keys[h2.DeleteMin()])
		h2.Insert(int32(i))
	}
	for h2.Len() > 0 {
		want = append(want, keys[h2.DeleteMin()])
	}
	if len(got) != len(want) {
		t.Fatalf("length mismatch %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ReplaceMin diverges from delete+insert at %d: %v vs %v", i, got, want)
		}
	}
}

func TestEmptyHeapPanics(t *testing.T) {
	for name, fn := range map[string]func(h *Heap){
		"Min":        func(h *Heap) { h.Min() },
		"DeleteMin":  func(h *Heap) { h.DeleteMin() },
		"ReplaceMin": func(h *Heap) { h.ReplaceMin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty heap should panic", name)
				}
			}()
			fn(NewEmpty(0, func(a, b int32) bool { return a < b }))
		}()
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]int, 500)
	for i := range keys {
		keys[i] = rng.Intn(100) // duplicates on purpose
	}
	items := make([]int32, len(keys))
	for i := range items {
		items[i] = int32(i)
	}
	Sort(items, intLess(keys))
	for i := 1; i < len(items); i++ {
		if keys[items[i-1]] > keys[items[i]] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestFloydCompareCount(t *testing.T) {
	// Floyd's construction performs O(n) compares — well under the
	// n log n of repeated insertion. (The paper uses 1.77n as the
	// average-case constant for compares.)
	n := 4096
	rng := rand.New(rand.NewSource(5))
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Int()
	}
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i)
	}
	h := NewFloyd(items, intLess(keys))
	if c := h.Costs().Compares; c > int64(4*n) {
		t.Errorf("Floyd build used %d compares for n=%d (> 4n)", c, n)
	}
}

func TestSortCostScaling(t *testing.T) {
	// Full heapsort is Θ(n log n) compares.
	n := 1 << 12
	rng := rand.New(rand.NewSource(9))
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Int()
	}
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i)
	}
	c := Sort(items, intLess(keys))
	logn := 12.0
	ratio := float64(c.Compares) / (float64(n) * logn)
	if ratio < 0.5 || ratio > 3.0 {
		t.Errorf("compares/n·log n = %.2f, outside [0.5, 3]", ratio)
	}
	if c.Transfers < int64(2*n) {
		t.Errorf("Transfers = %d, want >= 2n", c.Transfers)
	}
}

// Property: Sort produces a permutation sorted by key for any input.
func TestQuickSortIsSortingPermutation(t *testing.T) {
	f := func(raw []int16) bool {
		keys := make([]int, len(raw))
		for i, r := range raw {
			keys[i] = int(r)
		}
		items := make([]int32, len(keys))
		for i := range items {
			items[i] = int32(i)
		}
		Sort(items, intLess(keys))
		seen := make([]bool, len(items))
		for i, v := range items {
			if v < 0 || int(v) >= len(items) || seen[v] {
				return false
			}
			seen[v] = true
			if i > 0 && keys[items[i-1]] > keys[items[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: heap invariant holds after any interleaving of inserts and
// delete-mins, and the heap behaves like a sorted multiset.
func TestQuickHeapInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		keys := make([]int, 0, len(ops))
		h := NewEmpty(0, func(a, b int32) bool { return keys[a] < keys[b] })
		inHeap := 0
		for _, op := range ops {
			if op >= 0 || inHeap == 0 {
				keys = append(keys, int(op))
				h.Insert(int32(len(keys) - 1))
				inHeap++
			} else {
				minHandle := h.Min()
				got := h.DeleteMin()
				if got != minHandle {
					return false
				}
				inHeap--
			}
			if h.Verify() != nil {
				return false
			}
		}
		return h.Len() == inHeap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCostsAdd(t *testing.T) {
	a := Costs{Compares: 1, Swaps: 2, Transfers: 3}
	a.Add(Costs{Compares: 10, Swaps: 20, Transfers: 30})
	if a.Compares != 11 || a.Swaps != 22 || a.Transfers != 33 {
		t.Errorf("Add gave %+v", a)
	}
}
