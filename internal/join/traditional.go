package join

import (
	"fmt"

	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// runTraditionalGrace executes a conventional (value-based) parallel
// Grace hash join — the comparison the paper's conclusion defers
// ("exploring the applicability of our model to traditional join
// algorithms"). Here the join attribute is an opaque key value and S is
// not clustered on it, so unlike the pointer-based variant BOTH
// relations must be hash-partitioned: R is exchanged and bucketed as in
// the pointer algorithms, and additionally every Si is read, exchanged
// by key ownership, and written into SHj buckets before the per-bucket
// build/probe. The extra handling of S is exactly the work the paper's
// virtual-pointer attribute eliminates.
func (r *runner) runTraditionalGrace() {
	keys := r.w.Keys()
	r.spawnSprocs() // idle here, but keeps lifecycle uniform
	bar := sim.NewBarrier("tg-phase", r.d)

	// Bucket counts: K sized so an S bucket plus its hash table fits.
	maxS := 0
	for j := 0; j < r.d; j++ {
		if n := r.w.SizeS(j); n > maxS {
			maxS = n
		}
	}
	k := r.prm.K
	if k <= 0 {
		need := r.prm.Fuzz * float64(maxS) * float64(r.s+int64(r.m.Cfg.HeapPtrBytes)) /
			float64(r.prm.MRproc)
		k = int(need)
		if float64(k) < need {
			k++
		}
	}
	if k < 1 {
		k = 1
	}
	r.res.K = k
	bucketOfKey := func(key uint64) int {
		d := uint64(r.d)
		ns := uint64(r.w.Spec.NS)
		node := key * d / ns
		lo := node * ns / d
		hi := (node + 1) * ns / d
		b := int((key - lo) * uint64(k) / (hi - lo))
		if b >= k {
			b = k - 1
		}
		return b
	}

	// Pre-compute exchange and bucket sizes for exact layout.
	type ref struct {
		pj  pendingJoin
		key uint64
	}
	sCount := make([][]int, r.d)
	rCount := make([][]int, r.d)
	for j := 0; j < r.d; j++ {
		sCount[j] = make([]int, k)
		rCount[j] = make([]int, k)
	}
	rxCount := make([][]int, r.d) // rxCount[i][j]: Ri objects owned by node j
	sxCount := make([][]int, r.d)
	for i := 0; i < r.d; i++ {
		rxCount[i] = make([]int, r.d)
		sxCount[i] = make([]int, r.d)
	}
	for i := 0; i < r.d; i++ {
		for _, ptr := range r.w.Refs[i] {
			key := keys.KeyOf(ptr)
			j := keys.NodeOf(key)
			rCount[j][bucketOfKey(key)]++
			if j != i {
				rxCount[i][j]++
			}
		}
		for x := 0; x < r.w.SizeS(i); x++ {
			ptr := relation.SPtr{Part: int32(i), Index: int32(x)}
			key := keys.KeyOf(ptr)
			j := keys.NodeOf(key)
			sCount[j][bucketOfKey(key)]++
			if j != i {
				sxCount[i][j]++
			}
		}
	}
	rStart := make([][]int64, r.d)
	sStart := make([][]int64, r.d)
	rTotal := make([]int64, r.d)
	sTotal := make([]int64, r.d)
	for j := 0; j < r.d; j++ {
		rStart[j] = make([]int64, k+1)
		sStart[j] = make([]int64, k+1)
		for b := 0; b < k; b++ {
			rStart[j][b+1] = rStart[j][b] + int64(rCount[j][b])
			sStart[j][b+1] = sStart[j][b] + int64(sCount[j][b])
		}
		rTotal[j] = rStart[j][k]
		sTotal[j] = sStart[j][k]
	}

	// Shared bucket state: objects per (node, bucket) in arrival order.
	rBuck := make([][][]ref, r.d)
	sBuck := make([][][]relation_S, r.d)
	rCur := make([][]int64, r.d)
	sCur := make([][]int64, r.d)
	rhSeg := make([]*segRef, r.d)
	shSeg := make([]*segRef, r.d)
	for j := 0; j < r.d; j++ {
		rBuck[j] = make([][]ref, k)
		sBuck[j] = make([][]relation_S, k)
		rCur[j] = make([]int64, k)
		sCur[j] = make([]int64, k)
		rhSeg[j] = &segRef{}
		shSeg[j] = &segRef{}
	}
	for i := 0; i < r.d; i++ {
		i := i
		r.m.K.Spawn(fmt.Sprintf("Rproc%d", i), func(p *sim.Proc) {
			pg := r.newPager(fmt.Sprintf("Rproc%d", i), r.prm.MRproc)
			mgr := r.m.Mgr[i]

			mgr.OpenMap(p, r.segR[i])
			mgr.OpenMap(p, r.segS[i])
			rhSeg[i].s = mgr.NewMap(p, fmt.Sprintf("RH%d", i), max64(1, rTotal[i]*r.r))
			shSeg[i].s = mgr.NewMap(p, fmt.Sprintf("SH%d", i), max64(1, sTotal[i]*r.s))
			rpSeg := mgr.NewMap(p, fmt.Sprintf("RX%d", i), max64(1, int64(r.w.SizeR(i))*r.r))
			spSeg := mgr.NewMap(p, fmt.Sprintf("SX%d", i), max64(1, int64(r.w.SizeS(i))*r.s))
			r.markPhase(p, "setup")
			bar.Wait(p)

			writeR := func(j int, rf ref) {
				b := bucketOfKey(rf.key)
				off := (rStart[j][b] + rCur[j][b]) * r.r
				pg.Touch(p, rhSeg[j].s, off, r.r, true)
				rCur[j][b]++
				rBuck[j][b] = append(rBuck[j][b], rf)
			}
			writeS := func(j int, so relation_S) {
				b := bucketOfKey(so.key)
				off := (sStart[j][b] + sCur[j][b]) * r.s
				pg.Touch(p, shSeg[j].s, off, r.s, true)
				sCur[j][b]++
				sBuck[j][b] = append(sBuck[j][b], so)
			}

			// Pass 0: scan Ri AND Si, hashing each object by key; local
			// objects go straight to buckets, foreign ones to per-owner
			// sub-partitions of the exchange areas on the local disk
			// (the same RPi,j structure the pointer algorithms use).
			rxRefs := make([][]ref, r.d)
			sxRefs := make([][]relation_S, r.d)
			rxCur := make([]int64, r.d)
			sxCur := make([]int64, r.d)
			rxOff := make([]int64, r.d)
			sxOff := make([]int64, r.d)
			{
				// Sub-partition layout from pre-computed ownership counts.
				var ro, so int64
				for j := 0; j < r.d; j++ {
					rxOff[j], sxOff[j] = ro, so
					if j != i {
						ro += int64(rxCount[i][j]) * r.r
						so += int64(sxCount[i][j]) * r.s
					}
				}
			}
			for x, ptr := range r.w.Refs[i] {
				pg.Touch(p, r.segR[i], int64(x)*r.r, r.r, false)
				key := keys.KeyOf(ptr)
				j := keys.NodeOf(key)
				p.Advance(r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.r))
				rf := ref{pj: pendingJoin{ri: int32(i), x: int32(x), ptr: ptr}, key: key}
				if j == i {
					writeR(i, rf)
					continue
				}
				pg.Touch(p, rpSeg, rxOff[j]+rxCur[j]*r.r, r.r, true)
				rxCur[j]++
				rxRefs[j] = append(rxRefs[j], rf)
			}
			for x := 0; x < r.w.SizeS(i); x++ {
				pg.Touch(p, r.segS[i], int64(x)*r.s, r.s, false)
				ptr := relation.SPtr{Part: int32(i), Index: int32(x)}
				key := keys.KeyOf(ptr)
				j := keys.NodeOf(key)
				p.Advance(r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.s))
				so := relation_S{ptr: ptr, key: key}
				if j == i {
					writeS(i, so)
					continue
				}
				pg.Touch(p, spSeg, sxOff[j]+sxCur[j]*r.s, r.s, true)
				sxCur[j]++
				sxRefs[j] = append(sxRefs[j], so)
			}
			r.markPhase(p, "pass0")
			bar.Wait(p)

			// Pass 1: staggered exchange; each phase reads only the
			// sub-partition owned by the phase's target node.
			for t := 1; t < r.d; t++ {
				j := r.phasePartition(i, t)
				for n, rf := range rxRefs[j] {
					pg.Touch(p, rpSeg, rxOff[j]+int64(n)*r.r, r.r, false)
					p.Advance(r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.r))
					writeR(j, rf)
				}
				for n, so := range sxRefs[j] {
					pg.Touch(p, spSeg, sxOff[j]+int64(n)*r.s, r.s, false)
					p.Advance(r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.s))
					writeS(j, so)
				}
				bar.Wait(p)
			}
			for j := 0; j < r.d; j++ {
				if j != i {
					pg.FlushSegment(p, rhSeg[j].s)
					pg.DropSegment(rhSeg[j].s)
					pg.FlushSegment(p, shSeg[j].s)
					pg.DropSegment(shSeg[j].s)
				}
			}
			r.markPhase(p, "pass1")
			bar.Wait(p)

			// Pass 2: per bucket, build an in-memory table on the S
			// bucket and probe with the R bucket.
			for b := 0; b < k; b++ {
				sObjs := sBuck[i][b]
				table := make(map[uint64]int, len(sObjs))
				overhead := int64(len(sObjs)) * (r.s + int64(r.m.Cfg.HeapPtrBytes))
				reserve := r.reserve(p, pg, int((overhead+r.b-1)/r.b))
				for n, so := range sObjs {
					off := (sStart[i][b] + int64(n)) * r.s
					pg.Touch(p, shSeg[i].s, off, r.s, false)
					p.Advance(r.m.Cfg.HashCost)
					table[so.key] = n
				}
				for n, rf := range rBuck[i][b] {
					off := (rStart[i][b] + int64(n)) * r.r
					pg.Touch(p, rhSeg[i].s, off, r.r, false)
					p.Advance(r.m.Cfg.HashCost)
					if _, ok := table[rf.key]; ok {
						p.Advance(r.m.Cfg.TransferPS(r.r + r.s))
						r.res.Signature += relation.PairHash(rf.pj.ri, rf.pj.x, rf.pj.ptr)
						r.res.Pairs++
					}
				}
				pg.Unreserve(reserve)
			}
			r.markPhase(p, "probe")

			r.addPagerStats(pg)
			r.rprocDone(p, i)
		})
	}
	r.m.K.Run()
	r.finishPhases([]string{"setup", "pass0", "pass1", "probe"})
}

// relation_S carries one S object through the traditional exchange.
type relation_S struct {
	ptr relation.SPtr
	key uint64
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
