// Package seg implements the single-level store's segment layer: named,
// contiguous extents of disk blocks that are mapped into a process's
// address space. It models µDatabase's "exact positioning" approach: a
// segment's address space starts at virtual zero, so pointers inside a
// segment are plain offsets and need no relocation or swizzling when the
// segment is mapped.
//
// The three mapping operations of the paper's Fig. 1(b) — creating a new
// mapping, opening an existing one, and deleting a mapping together with
// its data — have setup costs linear in the mapping size (page-table
// construction and disk-space management), and are serialized through a
// system-wide lock, which is why the paper multiplies setup cost by D.
package seg

import (
	"fmt"

	"mmjoin/internal/disk"
	"mmjoin/internal/sim"
)

// SetupCost parameterizes the cost of mapping operations as
// base + perPage · pages. Defaults approximate the paper's Fig. 1(b).
type SetupCost struct {
	NewBase       sim.Time
	NewPerPage    sim.Time
	OpenBase      sim.Time
	OpenPerPage   sim.Time
	DeleteBase    sim.Time
	DeletePerPage sim.Time
}

// DefaultSetupCost approximates Fig. 1(b): at 12800 4K blocks, newMap
// ≈ 11 s, openMap ≈ 8 s, deleteMap ≈ 3.5 s, each roughly linear in size.
func DefaultSetupCost() SetupCost {
	return SetupCost{
		NewBase:       100 * sim.Millisecond,
		NewPerPage:    sim.Time(850 * int64(sim.Microsecond)),
		OpenBase:      80 * sim.Millisecond,
		OpenPerPage:   sim.Time(620 * int64(sim.Microsecond)),
		DeleteBase:    50 * sim.Millisecond,
		DeletePerPage: sim.Time(270 * int64(sim.Microsecond)),
	}
}

// System is the machine-wide mapping service. Mapping manipulation is a
// serial operation (one kernel lock), shared by all managers.
type System struct {
	lock *sim.Resource
	cost SetupCost
}

// NewSystem creates the mapping service with the given cost model.
func NewSystem(cost SetupCost) *System {
	return &System{lock: sim.NewResource("map-lock"), cost: cost}
}

// Cost returns the system's setup-cost model.
func (sys *System) Cost() SetupCost { return sys.cost }

// Manager allocates segments on one disk. Extents are handed out
// first-fit from a free list, falling back to a bump pointer, so segments
// created in sequence are laid out contiguously in creation order —
// matching the disk-layout diagrams in the paper's analysis sections.
type Manager struct {
	sys  *System
	d    *disk.Disk
	free []extent // sorted by base, coalesced
	next int      // bump pointer (blocks)
	high int      // capacity in blocks
}

type extent struct{ base, pages int }

// NewManager creates a segment manager for drive d.
func NewManager(sys *System, d *disk.Disk) *Manager {
	return &Manager{sys: sys, d: d, high: d.Config().Blocks}
}

// Disk returns the underlying drive.
func (m *Manager) Disk() *disk.Disk { return m.d }

// BlockBytes returns the page size B.
func (m *Manager) BlockBytes() int { return m.d.Config().BlockBytes }

// Segment is a contiguous mapped extent. Offsets within the segment are
// the virtual pointers of the single-level store.
type Segment struct {
	name    string
	mgr     *Manager
	base    int // first block
	pages   int
	bytes   int64
	onDisk  []bool // page has valid contents on disk (false ⇒ zero-fill fault)
	deleted bool
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// Pages returns the segment length in blocks.
func (s *Segment) Pages() int { return s.pages }

// Bytes returns the mapped length in bytes.
func (s *Segment) Bytes() int64 { return s.bytes }

// Manager returns the owning manager.
func (s *Segment) Manager() *Manager { return s.mgr }

// Disk returns the drive holding the segment.
func (s *Segment) Disk() *disk.Disk { return s.mgr.d }

// Block translates a page index to an absolute disk block.
func (s *Segment) Block(page int) int {
	if page < 0 || page >= s.pages {
		panic(fmt.Sprintf("seg %s: page %d out of range [0,%d)", s.name, page, s.pages))
	}
	return s.base + page
}

// OnDisk reports whether the page has valid contents on disk; a fault on
// a page not on disk is a zero-fill fault with no I/O.
func (s *Segment) OnDisk(page int) bool { return s.onDisk[page] }

// MarkOnDisk records that the page's contents were written to disk.
func (s *Segment) MarkOnDisk(page int) { s.onDisk[page] = true }

// Deleted reports whether DeleteMap destroyed the segment.
func (s *Segment) Deleted() bool { return s.deleted }

func (m *Manager) pagesFor(bytes int64) int {
	b := int64(m.BlockBytes())
	return int((bytes + b - 1) / b)
}

// allocate finds an extent of the given size (blocks).
func (m *Manager) allocate(pages int) int {
	for i, e := range m.free {
		if e.pages >= pages {
			base := e.base
			if e.pages == pages {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = extent{base: e.base + pages, pages: e.pages - pages}
			}
			return base
		}
	}
	if m.next+pages > m.high {
		panic(fmt.Sprintf("seg: disk %s full: need %d blocks, %d free at bump pointer",
			m.d.Name(), pages, m.high-m.next))
	}
	base := m.next
	m.next += pages
	return base
}

// release returns an extent to the free list, coalescing neighbours.
func (m *Manager) release(base, pages int) {
	// Insert sorted by base.
	i := 0
	for i < len(m.free) && m.free[i].base < base {
		i++
	}
	m.free = append(m.free, extent{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = extent{base: base, pages: pages}
	// Coalesce with right neighbour, then left.
	if i+1 < len(m.free) && m.free[i].base+m.free[i].pages == m.free[i+1].base {
		m.free[i].pages += m.free[i+1].pages
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].base+m.free[i-1].pages == m.free[i].base {
		m.free[i-1].pages += m.free[i].pages
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
	// Give back a trailing extent to the bump pointer.
	if n := len(m.free); n > 0 && m.free[n-1].base+m.free[n-1].pages == m.next {
		m.next = m.free[n-1].base
		m.free = m.free[:n-1]
	}
}

func (m *Manager) newSegment(name string, bytes int64, onDisk bool) *Segment {
	pages := m.pagesFor(bytes)
	if pages == 0 {
		pages = 1
	}
	s := &Segment{
		name:   name,
		mgr:    m,
		base:   m.allocate(pages),
		pages:  pages,
		bytes:  bytes,
		onDisk: make([]bool, pages),
	}
	if onDisk {
		for i := range s.onDisk {
			s.onDisk[i] = true
		}
	}
	return s
}

// Preexisting creates a segment whose data already exists on disk, at no
// simulated cost. It is the fixture-building primitive: the relations R
// and S exist before the join is timed.
func (m *Manager) Preexisting(name string, bytes int64) *Segment {
	return m.newSegment(name, bytes, true)
}

// NewMap creates a mapping for a new area of disk, charging the newMap
// setup cost under the system-wide mapping lock. Pages are zero-fill.
func (m *Manager) NewMap(p *sim.Proc, name string, bytes int64) *Segment {
	s := m.newSegment(name, bytes, false)
	m.sys.lock.Use(p, m.sys.cost.NewBase+sim.Time(s.pages)*m.sys.cost.NewPerPage)
	return s
}

// OpenMap establishes a mapping to segment s's existing area, charging the
// openMap setup cost under the mapping lock.
func (m *Manager) OpenMap(p *sim.Proc, s *Segment) {
	if s.deleted {
		panic(fmt.Sprintf("seg: OpenMap of deleted segment %s", s.name))
	}
	m.sys.lock.Use(p, m.sys.cost.OpenBase+sim.Time(s.pages)*m.sys.cost.OpenPerPage)
}

// DeleteMap destroys the mapping and its data, charging the deleteMap
// setup cost and returning the extent for reuse.
func (m *Manager) DeleteMap(p *sim.Proc, s *Segment) {
	if s.deleted {
		panic(fmt.Sprintf("seg: double DeleteMap of %s", s.name))
	}
	m.sys.lock.Use(p, m.sys.cost.DeleteBase+sim.Time(s.pages)*m.sys.cost.DeletePerPage)
	s.deleted = true
	m.release(s.base, s.pages)
}

// FreeBlocks reports how many blocks remain allocatable.
func (m *Manager) FreeBlocks() int {
	n := m.high - m.next
	for _, e := range m.free {
		n += e.pages
	}
	return n
}
