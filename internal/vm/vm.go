// Package vm models per-process paged virtual memory over mapped
// segments: a fixed frame quota (MRproc/B), LRU replacement with the
// clean-page preference used by Dynix-era pageout daemons, zero-fill
// faults for pages of new mappings, and deferred write-back of dirty
// victims through the disk's pageout queue.
//
// In the memory-mapped environment no read or write is explicit: the join
// algorithms simply Touch address ranges, and all I/O happens here as a
// consequence — page faults for reads, page replacement for writes —
// exactly as in the paper's execution model.
package vm

import (
	"fmt"

	"mmjoin/internal/metrics"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
)

// Stats aggregates a pager's activity.
type Stats struct {
	Touches       int64 // Touch page visits
	Hits          int64
	Faults        int64 // misses (disk reads + zero fills)
	DiskReads     int64
	ZeroFills     int64
	Evictions     int64
	DirtyEvicts   int64
	DirtyFlushed  int64 // dirty pages written by FlushSegment/FlushAll
	CleanPrefHits int64 // evictions that skipped dirty LRU pages
}

// Policy selects the page replacement algorithm.
type Policy int

const (
	// LRU evicts the least recently used page, preferring a clean page
	// near the LRU end (the default; a good approximation of a mature
	// Unix pager).
	LRU Policy = iota
	// FIFO evicts the oldest-loaded page regardless of use — the
	// "simple page replacement algorithm" class the paper's Dynix
	// testbed used, which thrashes much earlier than LRU.
	FIFO
	// Clock gives each page one second chance via a reference bit —
	// between FIFO and LRU in quality.
	Clock
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

type pageKey struct {
	seg  *seg.Segment
	page int
}

// frame is one resident page, threaded on the pager's intrusive
// replacement list. Frames are recycled through a free list on eviction,
// so the steady-state fault path allocates nothing.
type frame struct {
	key        pageKey
	dirty      bool
	referenced bool // Clock's second-chance bit
	prev, next *frame
}

// Pager is one process's private memory. The frame quota models MRproc/B.
//
// Residency is indexed by an O(1) map; replacement order is an intrusive
// doubly-linked list (head = most recent for LRU, newest-loaded for
// FIFO/Clock; tail = eviction end), so Touch does no list scans and no
// per-page allocations once the free list is primed.
type Pager struct {
	name       string
	frames     int
	policy     Policy
	reserved   int // frames pinned by in-memory structures (hash tables, heaps)
	resident   map[pageKey]*frame
	head, tail *frame // replacement list: head = most recent, tail = eviction end
	count      int    // resident pages (length of the list)
	free       *frame // recycled frames, chained via next
	prefDepth  int    // how far from the LRU end to search for a clean victim
	stats      Stats
}

// pushFront links fr at the head of the replacement list.
func (pg *Pager) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = pg.head
	if pg.head != nil {
		pg.head.prev = fr
	}
	pg.head = fr
	if pg.tail == nil {
		pg.tail = fr
	}
	pg.count++
}

// unlink removes fr from the replacement list.
func (pg *Pager) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		pg.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		pg.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
	pg.count--
}

// moveToFront makes fr the most recently used frame.
func (pg *Pager) moveToFront(fr *frame) {
	if pg.head == fr {
		return
	}
	pg.unlink(fr)
	pg.pushFront(fr)
}

// newFrame takes a frame from the free list or allocates one.
func (pg *Pager) newFrame(key pageKey, dirty bool) *frame {
	fr := pg.free
	if fr != nil {
		pg.free = fr.next
		fr.next = nil
	} else {
		fr = &frame{}
	}
	fr.key = key
	fr.dirty = dirty
	fr.referenced = false
	return fr
}

// recycle clears fr (releasing its segment pointer) and returns it to
// the free list.
func (pg *Pager) recycle(fr *frame) {
	*fr = frame{next: pg.free}
	pg.free = fr
}

// New creates an LRU pager with the given frame quota.
func New(name string, frames int) *Pager {
	return NewWithPolicy(name, frames, LRU)
}

// NewWithPolicy creates a pager with an explicit replacement policy.
func NewWithPolicy(name string, frames int, policy Policy) *Pager {
	if frames < 1 {
		panic(fmt.Sprintf("vm: pager %s needs at least 1 frame, got %d", name, frames))
	}
	p := &Pager{
		name:     name,
		frames:   frames,
		policy:   policy,
		resident: make(map[pageKey]*frame),
	}
	p.prefDepth = frames / 8
	if p.prefDepth < 4 {
		p.prefDepth = 4
	}
	return p
}

// Policy returns the pager's replacement policy.
func (pg *Pager) Policy() Policy { return pg.policy }

// Name returns the pager's diagnostic name.
func (pg *Pager) Name() string { return pg.name }

// Frames returns the total frame quota.
func (pg *Pager) Frames() int { return pg.frames }

// Resident returns the number of resident pages.
func (pg *Pager) Resident() int { return pg.count }

// Stats returns a snapshot of the counters.
func (pg *Pager) Stats() Stats { return pg.stats }

// Instrument registers the pager's observability on reg: resident-set
// size, pinned frames, cumulative faults, fault/hit rates, and
// clean-preference hits, all as sampled gauges. A nil registry is a
// no-op, so pagers can be instrumented unconditionally.
func (pg *Pager) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	n := "vm." + pg.name
	reg.Gauge(n+".resident", func() float64 { return float64(pg.count) })
	reg.Gauge(n+".reserved", func() float64 { return float64(pg.reserved) })
	reg.Gauge(n+".faults", func() float64 { return float64(pg.stats.Faults) })
	reg.Gauge(n+".fault_rate", func() float64 {
		if pg.stats.Touches == 0 {
			return 0
		}
		return float64(pg.stats.Faults) / float64(pg.stats.Touches)
	})
	reg.Gauge(n+".hit_rate", func() float64 {
		if pg.stats.Touches == 0 {
			return 0
		}
		return float64(pg.stats.Hits) / float64(pg.stats.Touches)
	})
	reg.Gauge(n+".clean_pref_hits", func() float64 { return float64(pg.stats.CleanPrefHits) })
}

// Reserve pins n frames for memory-resident structures (a hash table, a
// heap of pointers), shrinking the space available to mapped pages and
// evicting immediately if necessary. It models the table overhead the
// paper folds into its fuzz factor.
//
// A request exceeding the quota is clamped so at least one frame remains
// for mapped pages. Reserve returns the number of frames ACTUALLY
// pinned; callers sizing memory-resident tables must check it (and pass
// the same count to Unreserve) rather than assume the request was met.
func (pg *Pager) Reserve(p *sim.Proc, n int) int {
	if n < 0 {
		panic("vm: negative Reserve")
	}
	if pg.reserved+n >= pg.frames {
		// Leave at least one frame for mapped pages.
		n = pg.frames - 1 - pg.reserved
		if n < 0 {
			n = 0
		}
	}
	pg.reserved += n
	for pg.count > pg.avail() {
		pg.evictOne(p)
	}
	return n
}

// Unreserve releases n pinned frames.
func (pg *Pager) Unreserve(n int) {
	if n > pg.reserved {
		n = pg.reserved
	}
	pg.reserved -= n
}

// Reserved returns the number of pinned frames.
func (pg *Pager) Reserved() int { return pg.reserved }

func (pg *Pager) avail() int { return pg.frames - pg.reserved }

// Touch accesses the byte range [off, off+n) of segment s, faulting pages
// in as needed. If write is true the touched pages are dirtied. The
// calling process pays all fault service time.
func (pg *Pager) Touch(p *sim.Proc, s *seg.Segment, off, n int64, write bool) {
	if n <= 0 {
		return
	}
	if off < 0 || off+n > s.Bytes() {
		panic(fmt.Sprintf("vm: %s touches %s[%d,%d) beyond %d bytes",
			pg.name, s.Name(), off, off+n, s.Bytes()))
	}
	b := int64(s.Manager().BlockBytes())
	first := int(off / b)
	last := int((off + n - 1) / b)
	for page := first; page <= last; page++ {
		pg.touchPage(p, s, page, write)
	}
}

// TouchPage accesses a single page directly.
func (pg *Pager) TouchPage(p *sim.Proc, s *seg.Segment, page int, write bool) {
	pg.touchPage(p, s, page, write)
}

func (pg *Pager) touchPage(p *sim.Proc, s *seg.Segment, page int, write bool) {
	pg.stats.Touches++
	key := pageKey{seg: s, page: page}
	if fr, ok := pg.resident[key]; ok {
		pg.stats.Hits++
		switch pg.policy {
		case LRU:
			pg.moveToFront(fr)
		case Clock:
			fr.referenced = true
		case FIFO:
			// Load order only; a hit changes nothing.
		}
		if write {
			fr.dirty = true
		}
		return
	}
	pg.stats.Faults++
	for pg.count >= pg.avail() {
		pg.evictOne(p)
	}
	if s.OnDisk(page) {
		pg.stats.DiskReads++
		s.Disk().Read(p, s.Block(page))
	} else {
		pg.stats.ZeroFills++
	}
	fr := pg.newFrame(key, write)
	pg.pushFront(fr)
	pg.resident[key] = fr
}

// evictOne removes one resident page according to the policy. LRU and
// FIFO prefer a clean page within prefDepth of the eviction end (the
// clean-page preference of Unix pageout daemons); Clock gives referenced
// pages a second chance. A dirty victim is queued on its disk's pageout
// daemon.
func (pg *Pager) evictOne(p *sim.Proc) {
	if pg.count == 0 {
		panic(fmt.Sprintf("vm: %s evict with no resident pages", pg.name))
	}
	var victim *frame
	switch pg.policy {
	case Clock:
		// Sweep from the oldest end, clearing reference bits.
		for {
			fr := pg.tail
			if fr.referenced {
				fr.referenced = false
				pg.moveToFront(fr)
				continue
			}
			victim = fr
			break
		}
	default: // LRU, FIFO: clean-page preference near the eviction end
		depth := 0
		for fr := pg.tail; fr != nil && depth < pg.prefDepth; fr = fr.prev {
			if !fr.dirty {
				victim = fr
				break
			}
			depth++
		}
		if victim == nil {
			victim = pg.tail
		} else if victim != pg.tail {
			pg.stats.CleanPrefHits++
		}
	}
	pg.unlink(victim)
	delete(pg.resident, victim.key)
	pg.stats.Evictions++
	if victim.dirty {
		pg.stats.DirtyEvicts++
		victim.key.seg.MarkOnDisk(victim.key.page)
		victim.key.seg.Disk().ScheduleWrite(p, victim.key.seg.Block(victim.key.page))
	}
	pg.recycle(victim)
}

// FlushSegment writes back all dirty resident pages of s (without
// evicting them) so that the segment's on-disk image is complete.
func (pg *Pager) FlushSegment(p *sim.Proc, s *seg.Segment) {
	for fr := pg.head; fr != nil; fr = fr.next {
		if fr.key.seg == s && fr.dirty {
			fr.dirty = false
			pg.stats.DirtyFlushed++
			s.MarkOnDisk(fr.key.page)
			s.Disk().ScheduleWrite(p, s.Block(fr.key.page))
		}
	}
}

// DropSegment discards all resident pages of s without write-back; used
// when a mapping is deleted together with its data.
func (pg *Pager) DropSegment(s *seg.Segment) {
	var next *frame
	for fr := pg.head; fr != nil; fr = next {
		next = fr.next
		if fr.key.seg == s {
			delete(pg.resident, fr.key)
			pg.unlink(fr)
			pg.recycle(fr)
		}
	}
}

// FlushAll writes back every dirty resident page.
func (pg *Pager) FlushAll(p *sim.Proc) {
	for fr := pg.head; fr != nil; fr = fr.next {
		if fr.dirty {
			fr.dirty = false
			pg.stats.DirtyFlushed++
			fr.key.seg.MarkOnDisk(fr.key.page)
			fr.key.seg.Disk().ScheduleWrite(p, fr.key.seg.Block(fr.key.page))
		}
	}
}

// CheckInvariants verifies the pager's structural invariants: the
// resident set never exceeds the frame quota minus reservations, the
// reservation count stays within [0, frames), and the LRU list and the
// resident index describe the same set of pages. It returns an error
// naming the first violation (conformance-suite hook).
func (pg *Pager) CheckInvariants() error {
	if pg.reserved < 0 || pg.reserved >= pg.frames {
		return fmt.Errorf("vm: %s reserved %d outside [0, %d)", pg.name, pg.reserved, pg.frames)
	}
	if pg.count > pg.avail() {
		return fmt.Errorf("vm: %s resident %d exceeds quota %d (frames %d − reserved %d)",
			pg.name, pg.count, pg.avail(), pg.frames, pg.reserved)
	}
	if pg.count != len(pg.resident) {
		return fmt.Errorf("vm: %s LRU list has %d pages but index has %d",
			pg.name, pg.count, len(pg.resident))
	}
	listed := 0
	for fr := pg.head; fr != nil; fr = fr.next {
		listed++
		if got, ok := pg.resident[fr.key]; !ok || got != fr {
			return fmt.Errorf("vm: %s page %s[%d] on LRU list but not indexed",
				pg.name, fr.key.seg.Name(), fr.key.page)
		}
	}
	if listed != pg.count {
		return fmt.Errorf("vm: %s list walk found %d pages but count is %d",
			pg.name, listed, pg.count)
	}
	if st := pg.stats; st.Faults != st.DiskReads+st.ZeroFills {
		return fmt.Errorf("vm: %s faults %d != disk reads %d + zero fills %d",
			pg.name, st.Faults, st.DiskReads, st.ZeroFills)
	}
	if st := pg.stats; st.Touches != st.Hits+st.Faults {
		return fmt.Errorf("vm: %s touches %d != hits %d + faults %d",
			pg.name, st.Touches, st.Hits, st.Faults)
	}
	return nil
}

// IsResident reports whether the given page of s is in memory (test and
// instrumentation hook).
func (pg *Pager) IsResident(s *seg.Segment, page int) bool {
	_, ok := pg.resident[pageKey{seg: s, page: page}]
	return ok
}
