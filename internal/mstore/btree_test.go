package mstore

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newTreeSeg(t *testing.T, nodeBytes int) (*Segment, *BTree) {
	t.Helper()
	s, err := Create(filepath.Join(t.TempDir(), "bt"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	tree, err := CreateBTree(s, nodeBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s, tree
}

func TestBTreeCreateErrors(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "bt"), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := CreateBTree(s, 32); err == nil {
		t.Error("tiny node accepted")
	}
	if _, err := OpenBTree(s, headerSize); err == nil {
		t.Error("OpenBTree on junk succeeded")
	}
}

func TestBTreeInsertGet(t *testing.T) {
	_, tree := newTreeSeg(t, 128) // small nodes force splits early
	for k := uint64(0); k < 500; k++ {
		if err := tree.Insert(k*3, Ptr(k+1000)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		v, ok := tree.Get(k * 3)
		if !ok || v != Ptr(k+1000) {
			t.Fatalf("Get(%d) = %d,%v", k*3, v, ok)
		}
		if _, ok := tree.Get(k*3 + 1); ok {
			t.Fatalf("Get(%d) should miss", k*3+1)
		}
	}
}

func TestBTreeDuplicateChains(t *testing.T) {
	_, tree := newTreeSeg(t, 128)
	// Pile enough values on one key to force direct ref → chain block →
	// multi-block chain transitions (btPostCap per block).
	const dups = 3*btPostCap + 2
	for v := Ptr(1); v <= dups; v++ {
		if err := tree.Insert(7, v*8); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != dups {
		t.Errorf("Len = %d, want %d", tree.Len(), dups)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	got := map[Ptr]bool{}
	tree.Postings(7, func(v Ptr) bool {
		if got[v] {
			t.Fatalf("value %d visited twice", v)
		}
		got[v] = true
		return true
	})
	if len(got) != dups {
		t.Fatalf("Postings visited %d values, want %d", len(got), dups)
	}
	for v := Ptr(1); v <= dups; v++ {
		if !got[v*8] {
			t.Fatalf("value %d missing from chain", v*8)
		}
	}
	// Get returns some chained value; Range expands the chain, one
	// callback per stored value.
	if v, ok := tree.Get(7); !ok || !got[v] {
		t.Errorf("Get(7) = %d,%v", v, ok)
	}
	visits := 0
	tree.Range(0, 100, func(k uint64, v Ptr) bool {
		visits++
		return true
	})
	if visits != dups {
		t.Errorf("Range visited %d values, want %d", visits, dups)
	}
	// Delete removes the whole chain at once.
	if !tree.Delete(7) {
		t.Fatal("Delete(7) failed")
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d after chain delete", tree.Len())
	}
	if _, ok := tree.Get(7); ok {
		t.Error("Get(7) after delete")
	}
	// A tagged value (chain bit set) must still be rejected.
	if err := tree.Insert(9, btChainTag|64); err == nil {
		t.Error("tagged value accepted")
	}
}

// TestBTreeDuplicateZipf drives a Zipf-skewed key set — a few keys carry
// long chains, most are singletons — through insert/lookup/range, the
// regression shape for index builds over R's duplicate-heavy join keys.
func TestBTreeDuplicateZipf(t *testing.T) {
	_, tree := newTreeSeg(t, 128)
	rng := rand.New(rand.NewSource(41))
	zipf := rand.NewZipf(rng, 1.3, 4, 511)
	ref := map[uint64]int{}
	for i := 0; i < 6000; i++ {
		k := zipf.Uint64()
		if err := tree.Insert(k, Ptr(8*(i+8))); err != nil {
			t.Fatal(err)
		}
		ref[k]++
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 6000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for k, want := range ref {
		n := 0
		tree.Postings(k, func(Ptr) bool { n++; return true })
		if n != want {
			t.Fatalf("key %d: %d values, want %d", k, n, want)
		}
	}
	// Range expands every chain: 6000 callbacks, keys non-decreasing.
	var seen []uint64
	tree.Range(0, 1<<62, func(k uint64, v Ptr) bool {
		seen = append(seen, k)
		return true
	})
	if len(seen) != 6000 {
		t.Fatalf("Range visited %d values, want 6000", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("Range out of order at %d", i)
		}
	}
}

func TestBTreeRange(t *testing.T) {
	_, tree := newTreeSeg(t, 128)
	for k := uint64(0); k < 300; k++ {
		tree.Insert(k*2, Ptr(k))
	}
	var got []uint64
	tree.Range(100, 120, func(k uint64, v Ptr) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("Range got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range got %v", got)
		}
	}
	// Early stop.
	count := 0
	tree.Range(0, 1<<62, func(uint64, Ptr) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	_, tree := newTreeSeg(t, 128)
	const n = 400
	for k := uint64(0); k < n; k++ {
		tree.Insert(k, Ptr(k+1))
	}
	// Delete every other key.
	for k := uint64(0); k < n; k += 2 {
		if !tree.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if err := tree.Verify(); err != nil {
			t.Fatalf("after Delete(%d): %v", k, err)
		}
	}
	if tree.Len() != n/2 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for k := uint64(0); k < n; k++ {
		_, ok := tree.Get(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", k, ok, want)
		}
	}
	if tree.Delete(99999) {
		t.Error("Delete of absent key returned true")
	}
	// Drain completely: the tree must collapse back to a single leaf.
	for k := uint64(1); k < n; k += 2 {
		if !tree.Delete(k) {
			t.Fatalf("drain Delete(%d) failed", k)
		}
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d after drain", tree.Len())
	}
	if err := tree.Verify(); err != nil {
		t.Error(err)
	}
	// Reusable after drain.
	if err := tree.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Get(5); !ok || v != 50 {
		t.Error("insert after drain broken")
	}
}

func TestBTreePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bt")
	s, err := Create(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := CreateBTree(s, 256)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		tree.Insert(k*7%10007, Ptr(k+1))
	}
	s.SetRoot(tree.Head())
	want := tree.Len()
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tree2, err := OpenBTree(s2, s2.Root())
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != want {
		t.Fatalf("Len = %d after reopen, want %d", tree2.Len(), want)
	}
	if err := tree2.Verify(); err != nil {
		t.Fatal(err)
	}
	if v, ok := tree2.Get(7 % 10007); !ok || v == 0 {
		t.Error("lookup after reopen failed")
	}
}

// Property: the tree behaves like a sorted map under random inserts and
// deletes, and Verify holds throughout.
func TestQuickBTreeMatchesMap(t *testing.T) {
	f := func(ops []int16) bool {
		s, err := Create(filepath.Join(t.TempDir(), "bt"), 1<<20)
		if err != nil {
			return false
		}
		defer s.Close()
		tree, err := CreateBTree(s, 128)
		if err != nil {
			return false
		}
		ref := map[uint64][]Ptr{}
		total := 0
		for _, op := range ops {
			k := uint64(op) % 256
			if op >= 0 {
				v := Ptr(8 * (int64(op) + 8)) // untagged, duplicates allowed
				if tree.Insert(k, v) != nil {
					return false
				}
				ref[k] = append(ref[k], v)
				total++
			} else {
				got := tree.Delete(k)
				if got != (len(ref[k]) > 0) {
					return false
				}
				total -= len(ref[k])
				delete(ref, k)
			}
		}
		if tree.Len() != total {
			return false
		}
		if tree.Verify() != nil {
			return false
		}
		for k, vals := range ref {
			want := map[Ptr]int{}
			for _, v := range vals {
				want[v]++
			}
			tree.Postings(k, func(v Ptr) bool {
				want[v]--
				return true
			})
			for _, n := range want {
				if n != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: range scans return exactly the keys in [lo, hi] in order.
func TestQuickBTreeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, tree := newTreeSeg(t, 128)
	keys := map[uint64]bool{}
	for i := 0; i < 800; i++ {
		k := uint64(rng.Intn(4000))
		if !keys[k] {
			keys[k] = true
			tree.Insert(k, Ptr(k+1))
		}
	}
	f := func(rawLo, rawHi uint16) bool {
		lo, hi := uint64(rawLo)%4200, uint64(rawHi)%4200
		if lo > hi {
			lo, hi = hi, lo
		}
		var got []uint64
		tree.Range(lo, hi, func(k uint64, v Ptr) bool {
			got = append(got, k)
			return true
		})
		want := 0
		for k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBTreeLargeScaleAndDepth(t *testing.T) {
	_, tree := newTreeSeg(t, 128)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(20000)
	for _, k := range perm {
		if err := tree.Insert(uint64(k), Ptr(k+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// Full ordered scan via Range.
	prev := -1
	tree.Range(0, 1<<62, func(k uint64, v Ptr) bool {
		if int(k) != prev+1 {
			t.Fatalf("scan gap at %d", k)
		}
		prev = int(k)
		return true
	})
	if prev != 19999 {
		t.Fatalf("scan ended at %d", prev)
	}
}
