package disk

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"mmjoin/internal/metrics"
	"mmjoin/internal/sim"
)

// DTTPoint is one measured point of the disk-transfer-time function: the
// average per-block cost of random reads (dttr) and random writes (dttw)
// confined to a band of the given size, with the band itself swept
// sequentially across a large disk area — the measurement procedure behind
// the paper's Fig. 1(a).
type DTTPoint struct {
	Band  int // band size in blocks; 1 means purely sequential access
	Read  sim.Time
	Write sim.Time
}

// StandardBands are the band sizes sampled for Fig. 1(a) reproductions.
var StandardBands = []int{1, 100, 400, 800, 1600, 3200, 4800, 6400, 8000, 9600, 11200, 12800}

// MeasureDTT measures dttr/dttw for each band size on a fresh drive with
// the given configuration. opsPerBand bounds the I/Os issued per band size
// (more gives smoother averages). The measurement is deterministic for a
// fixed seed.
func MeasureDTT(cfg Config, bands []int, opsPerBand int, seed int64) []DTTPoint {
	return MeasureDTTInstrumented(cfg, bands, opsPerBand, seed, nil)
}

// MeasureDTTInstrumented is MeasureDTT with per-measurement telemetry:
// each (band size, direction) pair runs on its own drive named
// calib.b<band>.<read|write>, so the registry collects one set of
// service-time histograms and counters per point. A nil registry reduces
// to the plain measurement.
func MeasureDTTInstrumented(cfg Config, bands []int, opsPerBand int, seed int64,
	reg *metrics.Registry) []DTTPoint {
	points := make([]DTTPoint, 0, len(bands))
	for _, band := range bands {
		points = append(points, DTTPoint{
			Band:  band,
			Read:  measureOne(cfg, fmt.Sprintf("calib.b%d.read", band), band, opsPerBand, seed, false, reg),
			Write: measureOne(cfg, fmt.Sprintf("calib.b%d.write", band), band, opsPerBand, seed+1, true, reg),
		})
	}
	return points
}

// MeasureDTTParallel is MeasureDTT running band measurements across
// parallelism host workers (zero or negative selects GOMAXPROCS). Every
// band runs on its own fresh drive with a band-local seed, so the
// returned points are identical to the sequential measurement no matter
// the worker count or completion order. There is no instrumented
// variant: a shared registry's registration order would depend on host
// scheduling, so telemetry keeps the sequential path.
func MeasureDTTParallel(cfg Config, bands []int, opsPerBand int, seed int64, parallelism int) []DTTPoint {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(bands) {
		w = len(bands)
	}
	if w <= 1 {
		return MeasureDTT(cfg, bands, opsPerBand, seed)
	}
	points := make([]DTTPoint, len(bands))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bands) {
					return
				}
				band := bands[i]
				points[i] = DTTPoint{
					Band:  band,
					Read:  measureOne(cfg, fmt.Sprintf("calib.b%d.read", band), band, opsPerBand, seed, false, nil),
					Write: measureOne(cfg, fmt.Sprintf("calib.b%d.write", band), band, opsPerBand, seed+1, true, nil),
				}
			}
		}()
	}
	wg.Wait()
	return points
}

// measureOne measures the per-block cost of random access (without
// duplicates) in sequential band positions across the drive.
func measureOne(cfg Config, name string, band, ops int, seed int64, write bool,
	reg *metrics.Registry) sim.Time {
	if band < 1 {
		panic("disk: band must be >= 1")
	}
	k := sim.NewKernel()
	d := MustNew(k, name, cfg)
	d.Instrument(reg)
	rng := rand.New(rand.NewSource(seed))

	area := cfg.Blocks / 2 // sweep the band across half the drive
	if band > area {
		band = area
	}
	perPosition := band
	if perPosition > 256 {
		perPosition = 256
	}
	positions := ops / perPosition
	if positions < 1 {
		positions = 1
	}
	maxPositions := area / band
	if maxPositions < 1 {
		maxPositions = 1
	}
	if positions > maxPositions {
		positions = maxPositions
	}

	var total sim.Time
	var count int64
	k.Spawn("measure", func(p *sim.Proc) {
		for pos := 0; pos < positions; pos++ {
			// The band is swept sequentially across the area: with
			// band size 1 the accesses are purely sequential.
			base := pos * band
			// Random access within the band, no duplicates.
			offs := rng.Perm(band)[:perPosition]
			start := p.Now()
			for _, o := range offs {
				if write {
					d.ScheduleWrite(p, base+o)
				} else {
					d.Read(p, base+o)
				}
			}
			if write {
				d.Drain(p)
			}
			total += p.Now() - start
			count += int64(perPosition)
		}
		d.Close()
	})
	k.Run()
	return total / sim.Time(count)
}
