// Command loadgen replays deterministic, seeded traffic against a live
// `mmdb serve` and reports client-side latency histograms, outcome
// accounting, and a client-vs-server counter reconciliation against
// /stats.
//
// Open-loop modes (poisson, burst) fire at a configured offered rate and
// measure latency from each request's intended send time — the
// coordinated-omission-safe discipline. Closed-loop mode runs N clients
// with exponential think time.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-mode poisson|burst|closed]
//	        [-rate RPS] [-duration 2s] [-seed 1] [-clients 8] [-think 5ms]
//	        [-burst 16] [-lookup-frac 0.5] [-zipf 1.2] [-algs auto,grace,...]
//	        [-retries 0] [-retry-cap 2s] [-membytes N] [-inflight 512]
//	        [-mix-name NAME] [-out BENCH_service.json] [-strict]
//	loadgen -validate BENCH_service.json
//
// -strict exits non-zero unless at least one request succeeded and the
// client/server reconciliation balanced exactly — the CI smoke contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"mmjoin/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "", "live mmdb serve base URL, e.g. http://127.0.0.1:8080")
	mode := flag.String("mode", "poisson", "arrival discipline: poisson, burst, closed")
	rate := flag.Float64("rate", 100, "open-loop offered load, requests/sec")
	duration := flag.Duration("duration", 2*time.Second, "run length")
	seed := flag.Int64("seed", 1, "schedule/key-sequence seed")
	clients := flag.Int("clients", 8, "closed-loop client count")
	think := flag.Duration("think", 5*time.Millisecond, "closed-loop mean think time")
	burst := flag.Int("burst", 16, "burst mode: requests per spike")
	lookupFrac := flag.Float64("lookup-frac", 0.5, "share of requests that are /lookup")
	zipf := flag.Float64("zipf", 1.2, "lookup key Zipf exponent (> 1)")
	algs := flag.String("algs", "", "comma-separated join algorithms (default auto+all four)")
	retries := flag.Int("retries", 0, "429 retries honoring Retry-After (capped)")
	retryCap := flag.Duration("retry-cap", 2*time.Second, "max honored Retry-After wait")
	memBytes := flag.Int64("membytes", 0, "per-join memory grant (0: server default)")
	inflight := flag.Int("inflight", 512, "open-loop max outstanding requests")
	timeout := flag.Duration("timeout", 0, "client-side per-attempt timeout (0: none; keeps reconciliation exact)")
	mixName := flag.String("mix-name", "cli", "mix name recorded in -out report")
	out := flag.String("out", "", "write a BENCH_service.json-shaped report for this run")
	strict := flag.Bool("strict", false, "exit non-zero unless completions > 0 and counters reconcile")
	validate := flag.String("validate", "", "validate an existing BENCH_service.json and exit")
	flag.Parse()

	if *validate != "" {
		if err := loadgen.ValidateFile(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: invalid report:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *validate, loadgen.ReportSchema)
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr required (or -validate FILE)")
		os.Exit(2)
	}
	m, err := loadgen.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	var algList []string
	if *algs != "" {
		algList = strings.Split(*algs, ",")
	}
	cfg := loadgen.Config{
		BaseURL:  strings.TrimRight(*addr, "/"),
		Seed:     *seed,
		Duration: *duration,
		Mode:     m,
		Rate:     *rate, BurstSize: *burst,
		Clients: *clients, ThinkMean: *think,
		Mix: loadgen.Mix{
			LookupFraction: *lookupFrac, ZipfS: *zipf, JoinAlgs: algList,
		},
		MaxInflight: *inflight,
		MaxRetries:  *retries, RetryCap: *retryCap,
		Timeout:      *timeout,
		JoinMemBytes: *memBytes,
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	printResult(res)

	if *out != "" {
		pt := loadgen.Summarize(res)
		if m == loadgen.Closed {
			// A closed loop has no offered rate; record the achieved one.
			pt.OfferedRate = pt.AchievedRPS
		}
		rep := &loadgen.Report{
			Schema: loadgen.ReportSchema,
			Host:   loadgen.CurrentHost(),
			Seed:   *seed,
			DB:     loadgen.DBInfo{Objects: res.NR, D: res.D},
			Server: loadgen.ServerInfo{
				MemBudgetBytes: res.StatsAfter.Admission.BudgetBytes,
				MaxQueue:       res.StatsAfter.Admission.MaxQueue,
				Workers:        res.StatsAfter.Pool.Workers,
			},
			Note:  "single-run report from cmd/loadgen",
			Mixes: []loadgen.MixCurve{loadgen.MixCurveFor(*mixName, cfg, []loadgen.SweepPoint{pt})},
		}
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	if *strict {
		if res.OKCount() == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: strict: no request succeeded")
			os.Exit(1)
		}
		if !res.Reconciliation.OK {
			fmt.Fprintln(os.Stderr, "loadgen: strict: client/server counters do not reconcile")
			os.Exit(1)
		}
	}
}

func printResult(res *loadgen.Result) {
	fmt.Printf("%s %v: sent %d, attempts %d (retries %d), 429-rate %.3f, wall %v\n",
		res.Config.Mode, res.Config.Duration, res.Sent, res.Attempts, res.Retries,
		res.Rate429(), res.Wall.Round(time.Millisecond))

	keys := make([]string, 0, len(res.Outcomes))
	for k := range res.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-22s %8d\n", k, res.Outcomes[k])
	}
	ok := res.MergedOK()
	if ok.Count() > 0 {
		fmt.Printf("  latency(ok): p50 %v  p90 %v  p99 %v  max %v\n",
			time.Duration(ok.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(ok.Quantile(0.9)).Round(time.Microsecond),
			time.Duration(ok.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(ok.Max()).Round(time.Microsecond))
	}
	if res.Reconciliation.OK {
		fmt.Println("  reconciliation: OK (client counts == /stats deltas)")
	} else {
		fmt.Println("  reconciliation: MISMATCH")
		for _, p := range res.Reconciliation.Problems {
			fmt.Println("   ", p)
		}
	}
}
