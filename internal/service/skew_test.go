package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"

	"mmjoin/internal/mstore"
)

// newSkewServer builds a server over a database whose R pointers follow
// the hot-key worst case: one S object (partition 0, index 0) owns half
// of all references, the rest spread uniformly.
func newSkewServer(t *testing.T, objects int, cfg Config) *Server {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := mstore.CreateDB(dir, 3, objects, objects, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The hot key sits at the END of its partition so hybrid-hash's
	// resident prefix cannot absorb it — it must flow through the
	// overflow buckets like any other skewed reference.
	hot := mstore.SPtr{Part: 0, Off: db.S[0].PtrAt(db.S[0].Count() - 1)}
	n, u := 0, 0
	for _, ri := range db.R {
		for x := 0; x < ri.Count(); x++ {
			if n%2 == 0 {
				mstore.EncodeSPtr(ri.Object(x), hot)
			} else {
				part := u % db.D
				rel := db.S[part]
				mstore.EncodeSPtr(ri.Object(x), mstore.SPtr{
					Part: uint32(part), Off: rel.PtrAt(u % rel.Count()),
				})
				u++
			}
			n++
		}
	}
	db.Close()
	cfg.Dir = dir
	cfg.D = 3
	if cfg.CalibrationOps == 0 {
		cfg.CalibrationOps = 60
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSkewServeGrantBoundedJoin: a skewed join with an undersized grant
// and no renegotiation headroom (the budget barely exceeds the grant)
// must restage/stream to an exact result, report the adaptation in the
// response, and surface the counters in /stats.
func TestSkewServeGrantBoundedJoin(t *testing.T) {
	const grant = 32 << 10
	s := newSkewServer(t, 6000, Config{MemBudget: grant + 4096, DefaultGrant: grant})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := expectedStats(t, s)
	for _, alg := range []string{"grace", "hybrid-hash"} {
		resp, jr := postJoin(t, ts, JoinRequest{Algorithm: alg, MemBytes: grant, K: 4})
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if jr.Pairs != want.Pairs || jr.Signature != fmt.Sprintf("%016x", want.Signature) {
			t.Fatalf("%s: result %+v, want %+v", alg, jr, want)
		}
		if jr.Restages < 1 {
			t.Errorf("%s: oversized bucket never restaged: %+v", alg, jr)
		}
		if jr.StreamProbes < 1 {
			t.Errorf("%s: hot key never streamed: %+v", alg, jr)
		}
		if jr.PeakTableBytes > grant {
			t.Errorf("%s: peak table bytes %d exceed grant %d", alg, jr.PeakTableBytes, grant)
		}
	}

	st := s.StatsSnapshot()
	for _, name := range []string{
		"spill_restages_total", "spill_restaged_refs_total", "stream_probes_total",
	} {
		if st.Counters[name] < 1 {
			t.Errorf("counter %s = %d, want >= 1", name, st.Counters[name])
		}
	}
	if st.Counters["grant_renegotiations_denied_total"] < 1 {
		t.Errorf("no denied renegotiations despite exhausted budget: %+v", st.Counters)
	}
	if peak := st.Gauges["probe_table_peak_bytes"]; peak <= 0 || peak > grant {
		t.Errorf("probe_table_peak_bytes gauge = %v, want in (0, %d]", peak, grant)
	}
	if st.Admission.RenegotiationsDenied < 1 {
		t.Errorf("admission stats missing denied renegotiations: %+v", st.Admission)
	}
}

// TestSkewServeRenegotiationSucceeds: with budget headroom the
// under-granted join grows its grant mid-flight instead of restaging,
// and the admission accounting balances afterwards.
func TestSkewServeRenegotiationSucceeds(t *testing.T) {
	const grant = 16 << 10
	s := newSkewServer(t, 4000, Config{MemBudget: 8 << 20, DefaultGrant: grant})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := expectedStats(t, s)
	resp, jr := postJoin(t, ts, JoinRequest{Algorithm: "grace", MemBytes: grant, K: 4})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if jr.Pairs != want.Pairs || jr.Signature != fmt.Sprintf("%016x", want.Signature) {
		t.Fatalf("result %+v, want %+v", jr, want)
	}
	if jr.Renegotiations < 1 {
		t.Fatalf("join never renegotiated despite headroom: %+v", jr)
	}
	st := s.StatsSnapshot()
	if st.Admission.Renegotiated < 1 {
		t.Errorf("admission stats missing renegotiations: %+v", st.Admission)
	}
	if st.Admission.UsedBytes != 0 {
		t.Errorf("renegotiated bytes leaked: used=%d after completion", st.Admission.UsedBytes)
	}
	if st.Counters["grant_renegotiations_total"] < 1 {
		t.Errorf("grant_renegotiations_total = %d", st.Counters["grant_renegotiations_total"])
	}
}

// TestSkewStatsExposeCountersAtZero: the spill/restage counters are
// registered at startup so operators see them (at zero) before the
// first skewed join.
func TestSkewStatsExposeCountersAtZero(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	st := s.StatsSnapshot()
	for _, name := range []string{
		"spill_restages_total", "spill_restaged_refs_total", "stream_probes_total",
		"grant_renegotiations_total", "grant_renegotiations_denied_total",
		"temp_relations_total",
	} {
		if v, ok := st.Counters[name]; !ok || v != 0 {
			t.Errorf("counter %s = %d (present=%v), want 0 at startup", name, v, ok)
		}
	}
	if _, ok := st.Gauges["probe_table_peak_bytes"]; !ok {
		t.Error("probe_table_peak_bytes gauge missing")
	}
}

// TestAdmissionTryAcquire covers the non-blocking renegotiation path:
// immediate success within budget, refusal beyond it, and strict-FIFO
// refusal while anyone is queued (growth must not jump the queue).
func TestAdmissionTryAcquire(t *testing.T) {
	a := NewAdmission(1000, 4)
	if !a.TryAcquire(600) {
		t.Fatal("fitting TryAcquire denied")
	}
	if a.TryAcquire(500) {
		t.Fatal("over-budget TryAcquire granted")
	}
	if !a.TryAcquire(400) {
		t.Fatal("exact-fit TryAcquire denied")
	}
	if a.TryAcquire(1) {
		t.Fatal("TryAcquire granted on a full budget")
	}
	a.Release(400)

	// Queue a waiter that cannot fit; TryAcquire for bytes that would
	// fit must still fail while the waiter is ahead.
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() { waitErr <- a.Acquire(ctx, 900) }()
	for a.Stats().QueueDepth == 0 {
		runtime.Gosched()
	}
	if a.TryAcquire(100) {
		t.Fatal("TryAcquire jumped the admission queue")
	}
	cancel()
	if err := <-waitErr; err == nil {
		t.Fatal("queued waiter not canceled")
	}
	a.Release(600)

	st := a.Stats()
	if st.Renegotiated != 2 {
		t.Errorf("renegotiated = %d, want 2", st.Renegotiated)
	}
	if st.RenegotiationsDenied != 3 {
		t.Errorf("renegotiationsDenied = %d, want 3", st.RenegotiationsDenied)
	}
	if st.UsedBytes != 0 {
		t.Errorf("used = %d after releases", st.UsedBytes)
	}
	if a.TryAcquire(0) {
		t.Error("non-positive TryAcquire granted")
	}
}
