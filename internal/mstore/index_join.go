package mstore

import (
	"context"
	"fmt"

	"mmjoin/internal/exec"
)

// The index join operators. Both run over the persistent per-partition
// B-trees (index.go) instead of materializing transient probe state, so
// neither touches temporary storage at all:
//
//   - indexNL: nested loops with the probe side replaced by a real
//     B-tree descent per R object — the classic index-nested-loop,
//     which wins when |R| ≪ |S| (probe cost is R-proportional while
//     every other algorithm pays to scan, stage, or index S).
//   - indexMerge: MPSM-style sorted-range merge. The index key order
//     (partition<<32 | row) makes both trees' leaf chains sorted run
//     files; each morsel zips one S key range of one R-tree/S-tree pair
//     through the leaf-chain cursors, partition-local with no global
//     merge barrier — the sort the sort-merge join pays for at run time
//     was paid once at bulk-load.
//
// Both fold pairs through the same batched joinKernel as every other
// operator, so Pairs/Signature are bit-identical to the reference
// kernels at any worker count. Memory is grant-metered like PR 6, but
// the footprint is O(workers): one probe batch per worker and no
// tables, so the reservation is a fixed bite taken once up front.

// indexFootprint is the counted bytes of one worker's index-join state:
// a probe batch (8 B rid + 12 B pointer per slot, padded) plus cursor
// state.
func indexFootprint(workers, batch int) int64 {
	return int64(workers) * (int64(batch)*24 + 64)
}

// IndexNL runs the index-nested-loop join on an ephemeral
// GOMAXPROCS-sized pool (the store must have indexes attached).
func (db *DB) IndexNL() (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.indexNL(context.Background(), p, kernelConfig{}, newMemLimiter(0, nil, nil))
	})
}

// indexNL scans R in morsels; each object's join attribute is turned
// into its canonical index key (pure offset arithmetic, no S access)
// and probed through S's per-partition B-tree — a real root-to-leaf
// descent per object, the cost the analytical model's index-probe term
// prices.
func (db *DB) indexNL(ctx context.Context, p *exec.Pool, kc kernelConfig, lim *memLimiter) (JoinStats, error) {
	if !db.HasIndexes() {
		return JoinStats{}, fmt.Errorf("mstore: index-nl needs attached indexes (run BuildIndexes or mmdb index)")
	}
	kc = kc.withDefaults()
	kern := newJoinKernel(db, kc)
	if need := indexFootprint(p.Workers(), kc.probeBatch); lim.reserve(need) {
		// A fixed O(workers) footprint: if the grant cannot cover it there
		// is nothing to shrink or restage, so an unreservable bite just
		// runs unmetered rather than failing the join.
		defer lim.release(need)
	}
	stats := newPerWorker(p)
	var tasks []exec.Task
	for i, ri := range db.R {
		i := i
		tasks = rangeTasks(tasks, ri.Count(), func(w, lo, hi int) error {
			st := &stats[w].JoinStats
			b := kern.newBatch()
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				ptr := DecodeSPtr(obj)
				off, ok := db.sidx[ptr.Part].Get(db.indexKeyOf(ptr))
				if !ok {
					return fmt.Errorf("mstore: R%d[%d] key %d missing from S%d index", i, x, db.indexKeyOf(ptr), ptr.Part)
				}
				b.addPair(ridFromObj(obj), SPtr{Part: ptr.Part, Off: off}, st)
			}
			b.flush(st)
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// IndexMerge runs the sorted-range merge join on an ephemeral
// GOMAXPROCS-sized pool (the store must have indexes attached).
func (db *DB) IndexMerge() (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.indexMerge(context.Background(), p, kernelConfig{}, newMemLimiter(0, nil, nil))
	})
}

// indexMerge zips the two sides' leaf chains partition-locally: one
// morsel covers one (R partition, S key subrange) cell, advancing a
// cursor over each tree and expanding the R side's posting chains
// against the matching S row. Because the subranges partition the key
// space exactly, every morsel's output is disjoint and the fold is the
// usual commutative sum — no global merge phase, no barrier between
// cells (MPSM's shape on persistent indexes).
func (db *DB) indexMerge(ctx context.Context, p *exec.Pool, kc kernelConfig, lim *memLimiter) (JoinStats, error) {
	if !db.HasIndexes() {
		return JoinStats{}, fmt.Errorf("mstore: index-merge needs attached indexes (run BuildIndexes or mmdb index)")
	}
	kc = kc.withDefaults()
	kern := newJoinKernel(db, kc)
	if need := indexFootprint(p.Workers(), kc.probeBatch); lim.reserve(need) {
		defer lim.release(need)
	}
	stats := newPerWorker(p)
	var tasks []exec.Task
	for i := range db.R {
		i := i
		rt := db.ridx[i]
		rRel := db.R[i]
		for j := range db.S {
			j := j
			st := db.sidx[j]
			base := uint64(j) << 32
			tasks = rangeTasks(tasks, db.S[j].Count(), func(w, lo, hi int) error {
				acc := &stats[w].JoinStats
				b := kern.newBatch()
				kLo, kHi := base|uint64(lo), base|uint64(hi-1)
				sit := st.iter(kLo, kHi)
				for rit := rt.iter(kLo, kHi); rit.valid(); rit.advance() {
					k := rit.key()
					for sit.valid() && sit.key() < k {
						sit.advance()
					}
					if !sit.valid() || sit.key() != k {
						return fmt.Errorf("mstore: R%d key %d missing from S%d index range", i, k, j)
					}
					sp := SPtr{Part: uint32(j), Off: st.firstValue(sit.ref())}
					rt.forEachValue(rit.ref(), func(v Ptr) bool {
						b.addPair(ridAt(rRel, v), sp, acc)
						return true
					})
				}
				b.flush(acc)
				return nil
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}
