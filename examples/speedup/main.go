// Speedup: the scalability study the paper lists as future work (§9) —
// how the three parallel pointer-based joins behave as disks and process
// pairs are added, with the problem size fixed (speedup) and with the
// problem growing proportionally (scaleup), on the simulated machine.
//
// Run with: go run ./examples/speedup
package main

import (
	"fmt"
	"log"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/relation"
	"mmjoin/internal/sweep"
)

func main() {
	cfg := machine.DefaultConfig()
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 32000, 32000
	ds := []int{1, 2, 4, 8}

	fmt.Printf("speedup: |R|=|S|=%d fixed, memory 0.05·|R| per process\n", spec.NR)
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "", "D=1", "D=2", "D=4", "D=8")
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		times, err := sweep.Speedup(cfg, spec, alg, ds, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", alg)
		for _, d := range ds {
			fmt.Printf(" %7.1fs", times[d].Seconds())
		}
		fmt.Printf("   (%.2fx at D=8)\n", float64(times[1])/float64(times[8]))
	}

	per := spec.NR / 4
	fmt.Printf("\nscaleup: %d objects per partition, relation grows with D (memory 0.1·|R|)\n", per)
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "", "D=1", "D=2", "D=4", "D=8")
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		times, err := sweep.Scaleup(cfg, spec, alg, ds, per, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", alg)
		for _, d := range ds {
			fmt.Printf(" %7.1fs", times[d].Seconds())
		}
		fmt.Printf("   (ratio %.2f at D=8; 1.0 is perfect)\n",
			float64(times[8])/float64(times[1]))
	}
}
