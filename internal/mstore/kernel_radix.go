package mstore

import (
	"context"
	"fmt"
	"sync/atomic"

	"mmjoin/internal/exec"
)

// Multi-pass software radix partitioning for the bucketed joins.
//
// The single-pass scatter writes every R object into one of D·K bucket
// appenders; once K exceeds the cache/TLB reach (a few hundred
// destination pages), every append misses. The classical fix is to
// partition in passes of at most 2^radixBits destinations each: the
// first pass scatters into coarse groups of contiguous final buckets,
// later passes refine a group at a time, so each pass's destination
// working set stays cache-sized. The group spans are powers of the
// per-pass fan-out, which keeps the bucket function order-preserving
// (a group is a contiguous final-bucket range) and lets the cost model
// mirror the plan exactly (model.Inputs.RadixBits).
//
// Refinement is pipelined, not barriered: one task owns one coarse
// group end-to-end — it counts, scatters, recurses, and probes its
// final buckets as each seals — so a group whose refs are ready probes
// while other groups are still partitioning.

// radixPlan splits a k-way partitioning fan-out into the fewest passes
// of at most 1<<bits destinations each. It returns the pass count and
// the top-pass group span — the number of final buckets one first-pass
// group covers ((2^bits)^(passes−1); span 1 means the first pass
// scatters straight into final buckets, the single-pass common case).
func radixPlan(k, bits int) (passes int, span int64) {
	maxFan := int64(1) << bits
	passes, span = 1, 1
	for reach := maxFan; reach < int64(k) && span < 1<<40; reach *= maxFan {
		passes++
		span *= maxFan
	}
	return passes, span
}

// bucketedJoin is the shared driver of the Grace and hybrid-hash joins:
// a counting pass over R, a radix-partitioned scatter into
// order-preserving buckets per S partition, and a grant-metered probe
// of every non-empty bucket. The two algorithms differ only in the
// bucket function and in which references bypass the buckets entirely
// (hybrid's resident prefix joins during the scan).
type bucketedJoin struct {
	db     *DB
	tmpDir string
	prefix string // temp-file prefix: "gr" (Grace) or "hh" (hybrid)
	k      int
	kc     kernelConfig
	lim    *memLimiter

	bucketOf func(SPtr) int
	resident func(SPtr) bool // nil: nothing is resident (Grace)

	kern   *joinKernel
	env    *probeEnv
	counts [][]int64 // final-bucket occupancy: [S partition][bucket]
	seq    atomic.Int64
}

func (bj *bucketedJoin) run(ctx context.Context, p *exec.Pool) (JoinStats, error) {
	db, d, k := bj.db, bj.db.D, bj.k
	bj.kern = newJoinKernel(db, bj.kc)
	bj.env = newProbeEnv(db, bj.kern, bj.lim, bj.tmpDir, p.Workers())

	// Counting pass (morsel-parallel): size every bucket file exactly.
	bj.counts = make([][]int64, d)
	for j := range bj.counts {
		bj.counts[j] = make([]int64, k)
	}
	var tasks []exec.Task
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				ptr := DecodeSPtr(ri.Object(x))
				if bj.resident != nil && bj.resident(ptr) {
					continue
				}
				atomic.AddInt64(&bj.counts[ptr.Part][bj.bucketOf(ptr)], 1)
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}

	passes, span := radixPlan(k, bj.kc.radixBits)
	groups := int((int64(k) + span - 1) / span)
	bj.lim.tel.RadixPasses.Store(int64(passes))

	// First-pass destinations: the final buckets themselves when span is
	// 1, else one coarse appender per contiguous group of span buckets.
	// Either way they materialize lazily — a measured-empty destination
	// gets no appender and no segment file. (Eager D·K creation meant 32k
	// mmap'd files per join at D=64, K=512 — fd and VMA exhaustion.)
	top := make([][]*Appender, d)
	defer func() {
		for j := range top {
			for _, ap := range top[j] {
				if ap != nil {
					ap.Relation().Segment().Delete()
				}
			}
		}
	}()
	for j := 0; j < d; j++ {
		top[j] = make([]*Appender, groups)
		for c := 0; c < groups; c++ {
			cnt := int64(0)
			for b := c * int(span); b < min((c+1)*int(span), k); b++ {
				cnt += bj.counts[j][b]
			}
			if cnt == 0 {
				continue
			}
			// The "c" infix keeps first-pass names disjoint from the
			// seq-numbered refine temporaries.
			name := fmt.Sprintf("rx_%s_%d_c%d.seg", bj.prefix, j, c)
			if span == 1 {
				name = fmt.Sprintf("%s_%d_%d.seg", bj.prefix, j, c)
			}
			rel, err := db.tmpRelation(bj.tmpDir, name, int(cnt)+1)
			if err != nil {
				return JoinStats{}, err
			}
			bj.lim.tel.TempFiles.Add(1)
			top[j][c] = NewAppender(rel)
		}
	}

	stats := newPerWorker(p)
	// Scan pass: resident references join immediately through the
	// batched kernel and never touch temporary storage; the rest scatter
	// into at most D·2^radixBits concurrently live destinations.
	tasks = tasks[:0]
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(w, lo, hi int) error {
			st := &stats[w].JoinStats
			b := bj.kern.newBatch()
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				ptr := DecodeSPtr(obj)
				if bj.resident != nil && bj.resident(ptr) {
					b.add(obj, st)
					continue
				}
				c := int64(bj.bucketOf(ptr)) / span
				if err := top[ptr.Part][c].Append(obj); err != nil {
					return err
				}
			}
			b.flush(st)
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}

	// Probe stage: one task per non-empty first-pass group. Single-pass
	// groups are final buckets and probe directly; multi-pass groups
	// refine and probe inline, pipelined within the task.
	tasks = tasks[:0]
	for j := 0; j < d; j++ {
		for c := 0; c < groups; c++ {
			ap := top[j][c]
			if ap == nil {
				continue
			}
			ap.Seal()
			rel := ap.Relation()
			if rel.Count() == 0 {
				continue
			}
			j, c := j, c
			if span == 1 {
				tasks = append(tasks, func(w int) error {
					return bj.env.probe(w, rel, &stats[w].JoinStats, 0)
				})
				continue
			}
			tasks = append(tasks, func(w int) error {
				return bj.refine(w, rel, j, c*int(span), span, &stats[w].JoinStats)
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// refine runs the remaining radix passes of one coarse group: scatter
// src into at most 2^radixBits sub-groups of span sub, then recurse —
// or, when sub is 1, probe each final bucket as it seals. Group sizes
// come from the global counting pass (this branch holds every reference
// whose final bucket lies in [b0, b0+span)), so no re-count scan is
// needed, and the branch runs in one task: plain appends, no atomics.
func (bj *bucketedJoin) refine(w int, src *Relation, j, b0 int, span int64, st *JoinStats) error {
	sub := span >> uint(bj.kc.radixBits)
	if sub < 1 {
		sub = 1
	}
	bLim := min(b0+int(span), bj.k)
	groups := int((int64(bLim-b0) + sub - 1) / sub)
	rels := make([]*Relation, groups)
	defer func() {
		for _, rel := range rels {
			if rel != nil {
				rel.Segment().Delete()
			}
		}
	}()
	for c := 0; c < groups; c++ {
		cb0 := b0 + c*int(sub)
		cnt := int64(0)
		for b := cb0; b < min(cb0+int(sub), bLim); b++ {
			cnt += bj.counts[j][b]
		}
		if cnt == 0 {
			continue
		}
		name := fmt.Sprintf("rx_%s_%d_%d.seg", bj.prefix, j, bj.seq.Add(1))
		if sub == 1 {
			name = fmt.Sprintf("%s_%d_%d.seg", bj.prefix, j, cb0)
		}
		rel, err := bj.db.tmpRelation(bj.tmpDir, name, int(cnt)+1)
		if err != nil {
			return err
		}
		bj.lim.tel.TempFiles.Add(1)
		rels[c] = rel
	}
	view, base, size := src.seg.data, int64(src.data), src.size
	n := src.Count()
	for x := 0; x < n; x++ {
		obj := view[base+int64(x)*size : base+int64(x+1)*size]
		c := (bj.bucketOf(DecodeSPtr(obj)) - b0) / int(sub)
		if _, err := rels[c].Append(obj); err != nil {
			return err
		}
	}
	for c := 0; c < groups; c++ {
		rel := rels[c]
		if rel == nil {
			continue
		}
		var err error
		if sub == 1 {
			err = bj.env.probe(w, rel, st, 0)
		} else {
			err = bj.refine(w, rel, j, b0+c*int(sub), sub, st)
		}
		if err != nil {
			return err
		}
		rel.Segment().Delete()
		rels[c] = nil
	}
	return nil
}
