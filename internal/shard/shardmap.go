package shard

import (
	"encoding/json"
	"fmt"
	"os"
)

// MapSchema is the shard-map file's schema tag.
const MapSchema = "mmjoin-shardmap/v1"

// Entry names one shard: a stable id (the consistent-hash identity —
// renaming a shard moves its keys), the segment directory holding its
// R%d.seg/S%d.seg files, and the partition count they were created
// with.
type Entry struct {
	ID  string `json:"id"`
	Dir string `json:"dir"`
	D   int    `json:"d"`
}

// Map is the on-disk shard-map format `mmdb serve -shard-map` loads:
//
//	{
//	  "schema": "mmjoin-shardmap/v1",
//	  "replicas": 64,
//	  "workersPerShard": 0,
//	  "shards": [
//	    {"id": "shard-0", "dir": "/data/shard-0", "d": 4},
//	    {"id": "shard-1", "dir": "/data/shard-1", "d": 4}
//	  ]
//	}
//
// Replicas is the virtual-node count per shard on the routing ring
// (0: default 64). WorkersPerShard sizes each shard's private morsel
// pool (0: GOMAXPROCS).
type Map struct {
	Schema          string  `json:"schema"`
	Replicas        int     `json:"replicas,omitempty"`
	WorkersPerShard int     `json:"workersPerShard,omitempty"`
	Shards          []Entry `json:"shards"`
}

// Validate checks structural sanity: at least one shard, unique
// non-empty ids, non-empty dirs, positive D.
func (m *Map) Validate() error {
	if m.Schema != "" && m.Schema != MapSchema {
		return fmt.Errorf("shard: map schema %q, want %q", m.Schema, MapSchema)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	seen := make(map[string]struct{}, len(m.Shards))
	for i, e := range m.Shards {
		if e.ID == "" {
			return fmt.Errorf("shard: shards[%d] has no id", i)
		}
		if _, dup := seen[e.ID]; dup {
			return fmt.Errorf("shard: duplicate shard id %q", e.ID)
		}
		seen[e.ID] = struct{}{}
		if e.Dir == "" {
			return fmt.Errorf("shard: shard %q has no dir", e.ID)
		}
		if e.D < 1 {
			return fmt.Errorf("shard: shard %q has d=%d, want >= 1", e.ID, e.D)
		}
	}
	return nil
}

// LoadMap reads and validates a shard-map file.
func LoadMap(path string) (*Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Map
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return &m, nil
}

// WriteMap validates and writes a shard-map file (stamping the schema).
func WriteMap(path string, m *Map) error {
	m.Schema = MapSchema
	if err := m.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
