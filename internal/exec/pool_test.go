package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	tasks := make([]Task, 100)
	for i := range tasks {
		tasks[i] = func(int) error { n.Add(1); return nil }
	}
	if err := p.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("executed %d of 100 tasks", n.Load())
	}
	st := p.Stats()
	if st.Executed != 100 || st.Jobs != 1 || st.Queued != 0 || st.Busy != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRunRangesCoversExactly(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	seen := make([]atomic.Int32, 1000)
	err := p.RunRanges(context.Background(), 1000, 64, func(w, lo, hi int) error {
		if w < 0 || w >= 3 {
			return fmt.Errorf("worker id %d out of range", w)
		}
		for x := lo; x < hi; x++ {
			seen[x].Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for x := range seen {
		if seen[x].Load() != 1 {
			t.Fatalf("object %d covered %d times", x, seen[x].Load())
		}
	}
}

func TestWorkerIDsIndexPerWorkerState(t *testing.T) {
	// The contract callers rely on for unsynchronized per-worker
	// accumulators: at most one task runs per worker id at any time.
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	var inUse [workers]atomic.Bool
	err := p.RunRanges(context.Background(), 2000, 10, func(w, lo, hi int) error {
		if !inUse[w].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d entered twice", w)
		}
		time.Sleep(10 * time.Microsecond)
		inUse[w].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsFirstErrorAndSkipsRest(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	var after atomic.Int64
	tasks := []Task{func(int) error { return boom }}
	for i := 0; i < 500; i++ {
		tasks = append(tasks, func(int) error { after.Add(1); return nil })
	}
	if err := p.Run(context.Background(), tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Some tasks may have raced ahead of the failure, but the bulk of the
	// job must have been skipped.
	if p.Stats().Skipped == 0 {
		t.Fatalf("no tasks skipped after failure (ran %d)", after.Load())
	}
}

func TestRunPanicFailsJobNotPool(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	err := p.Run(context.Background(), []Task{func(int) error { panic("kaboom") }})
	if err == nil || err.Error() != "exec: task panicked: kaboom" {
		t.Fatalf("err = %v", err)
	}
	// The pool survives and keeps executing.
	if err := p.Run(context.Background(), []Task{func(int) error { return nil }}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancellationSkipsQueuedButWaitsForInflight(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var inflightDone, ran atomic.Bool
	var tasks []Task
	for i := 0; i < 50; i++ {
		tasks = append(tasks, func(int) error { ran.Store(true); return nil })
	}
	// A worker pops its own deque LIFO, so the last-submitted task runs
	// first on a 1-worker pool; the rest stay queued behind it.
	tasks = append(tasks, func(int) error {
		close(started)
		<-release
		inflightDone.Store(true)
		return nil
	})
	errc := make(chan error, 1)
	go func() { errc <- p.Run(ctx, tasks) }()
	<-started
	cancel()
	// Run must not return while the first task still executes.
	select {
	case err := <-errc:
		t.Fatalf("Run returned %v with a task in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !inflightDone.Load() {
		t.Fatal("Run returned before the in-flight task finished")
	}
	if ran.Load() {
		t.Error("queued task of a cancelled job was executed")
	}
}

func TestStealingBalancesOneHotDeque(t *testing.T) {
	// One job whose tasks all land ahead of a sleeping worker: with
	// round-robin distribution over 4 workers and tasks that block until
	// everyone participates, stealing must occur for the job to finish.
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	var participated sync.Map
	err := p.RunRanges(context.Background(), 400, 1, func(w, lo, hi int) error {
		participated.Store(w, true)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	participated.Range(func(any, any) bool { n++; return true })
	if n < 2 {
		t.Skipf("only %d workers participated (single-CPU scheduling)", n)
	}
	if p.Stats().Steals == 0 {
		t.Log("note: no steals observed; round-robin kept deques balanced")
	}
}

func TestConcurrentJobsShareTheBound(t *testing.T) {
	const workers = 2
	p := NewPool(workers)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.RunRanges(context.Background(), 200, 7, func(w, lo, hi int) error {
				time.Sleep(5 * time.Microsecond)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.PeakBusy > workers {
		t.Fatalf("peak occupancy %d exceeds pool size %d", st.PeakBusy, workers)
	}
	if st.Jobs != 8 {
		t.Fatalf("jobs = %d", st.Jobs)
	}
}

func TestRunAfterCloseFails(t *testing.T) {
	p := NewPool(1)
	p.Close()
	if err := p.Run(context.Background(), []Task{func(int) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseDrainsQueuedWork(t *testing.T) {
	p := NewPool(1)
	var n atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- p.RunRanges(context.Background(), 500, 1, func(int, int, int) error {
			n.Add(1)
			return nil
		})
	}()
	// Close concurrently with the running job: workers must drain it.
	time.Sleep(time.Millisecond)
	p.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if n.Load() != 500 {
		t.Fatalf("drained %d of 500", n.Load())
	}
}

func TestJobAddFromInsideTask(t *testing.T) {
	// The pipelining contract: a task may enqueue follow-on tasks onto
	// its own job, and Wait observes all of them. Three generations deep.
	p := NewPool(3)
	defer p.Close()
	var n atomic.Int64
	jb := p.Begin(context.Background())
	var spawn func(depth int) Task
	spawn = func(depth int) Task {
		return func(int) error {
			n.Add(1)
			if depth < 2 {
				for i := 0; i < 4; i++ {
					if err := jb.Add(spawn(depth + 1)); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	if err := jb.Add(spawn(0), spawn(0)); err != nil {
		t.Fatal(err)
	}
	if err := jb.Wait(); err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * (1 + 4 + 16)); n.Load() != want {
		t.Fatalf("executed %d tasks, want %d", n.Load(), want)
	}
}

func TestJobEmptyWaitReturnsImmediately(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if err := p.Begin(context.Background()).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestJobErrorSkipsLaterAdds(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	boom := errors.New("boom")
	var after atomic.Int64
	jb := p.Begin(context.Background())
	// One batch, failing task last: the 1-worker pool pops its own deque
	// LIFO, so the failure lands before the bulk of the queued tasks.
	tasks := make([]Task, 0, 101)
	for i := 0; i < 100; i++ {
		tasks = append(tasks, func(int) error { after.Add(1); return nil })
	}
	tasks = append(tasks, func(int) error { return boom })
	if err := jb.Add(tasks...); err != nil {
		t.Fatal(err)
	}
	if err := jb.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if p.Stats().Skipped == 0 {
		t.Fatalf("no tasks skipped after failure (ran %d)", after.Load())
	}
}

func TestJobAddAfterCloseFails(t *testing.T) {
	p := NewPool(1)
	jb := p.Begin(context.Background())
	p.Close()
	if err := jb.Add(func(int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add err = %v", err)
	}
	if err := jb.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait err = %v", err)
	}
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
}
