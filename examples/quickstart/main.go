// Quickstart: build a small memory-mapped database, run the three
// parallel pointer-based joins over the mapped segments, then reproduce
// one model-vs-experiment point on the simulated 1996 machine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/mstore"
	"mmjoin/internal/relation"
)

func main() {
	dir, err := os.MkdirTemp("", "mmjoin-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A real memory-mapped single-level store: two relations of
	// 20,000 objects, partitioned over 4 segment pairs. R's join
	// attribute is a virtual pointer into S — an offset, valid across
	// process restarts because segments are exactly positioned.
	db, err := mstore.CreateDB(filepath.Join(dir, "db"), 4, 20000, 20000, 128, 42)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	want := db.ExpectedStats()
	fmt.Printf("store: %d R-objects pointing into %d S-objects, %d segment pairs\n",
		20000, 20000, db.D)

	tmp := filepath.Join(dir, "tmp")
	for _, alg := range []struct {
		name string
		run  func() (mstore.JoinStats, error)
	}{
		{"nested-loops", func() (mstore.JoinStats, error) { return db.NestedLoops(tmp) }},
		{"sort-merge", func() (mstore.JoinStats, error) { return db.SortMerge(tmp) }},
		{"grace", func() (mstore.JoinStats, error) { return db.Grace(tmp, 8) }},
	} {
		start := time.Now()
		st, err := alg.run()
		if err != nil {
			log.Fatal(err)
		}
		status := "agrees with ground truth"
		if st != want {
			status = "WRONG RESULT"
		}
		fmt.Printf("  %-12s %6d pairs in %8v  (%s)\n",
			alg.name, st.Pairs, time.Since(start).Round(time.Microsecond), status)
	}

	// 2. The same algorithms on the simulated Sequent-class machine,
	// with the analytical model's prediction alongside — the paper's
	// validation methodology in miniature.
	fmt.Println("\nsimulated 1996 machine (4 disks, 4K pages), MRproc = 0.05·|R|:")
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 20000, 20000
	e, err := core.NewExperiment(machine.DefaultConfig(), spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		cmp, err := e.Compare(alg, e.ParamsForFraction(0.05))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s experiment %7.1fs   model %7.1fs   error %+5.1f%%\n",
			alg, cmp.Measured.Seconds(), cmp.Predicted.Seconds(), 100*cmp.RelError())
	}
}
