//go:build linux

package main

import (
	"encoding/binary"
	"runtime"
	"syscall"
	"unsafe"
)

// Hardware-counter measurement for the kernels panel, best effort: a
// per-thread perf_event_open counter pair (cache references + misses)
// when the kernel and container policy allow it, else the getrusage
// minor-fault delta as a coarse memory-pressure proxy, else nothing.
// The JSON records which source produced the numbers so readers never
// compare counters across sources.

// perfEventAttr is the PERF_ATTR_SIZE_VER0 prefix of the kernel's
// struct perf_event_attr — enough for plain hardware counters.
type perfEventAttr struct {
	Type       uint32
	Size       uint32
	Config     uint64
	Sample     uint64
	SampleType uint64
	ReadFormat uint64
	Bits       uint64
	WakeUp     uint32
	BPType     uint32
	Ext1       uint64
	Ext2       uint64
}

const (
	perfTypeHardware       = 0
	perfCountHWCacheRefs   = 2
	perfCountHWCacheMisses = 3
	perfAttrSizeVer0       = 64
	perfBitDisabled        = 1 << 0
	perfBitExcludeKernel   = 1 << 5
	perfBitExcludeHV       = 1 << 6
	perfEventIoctlEnable   = 0x2400
	perfEventIoctlDisable  = 0x2401
	perfEventIoctlReset    = 0x2403
	perfFlagFdCloexec      = 8
)

func perfOpen(config uint64) (int, error) {
	attr := perfEventAttr{
		Type:   perfTypeHardware,
		Size:   perfAttrSizeVer0,
		Config: config,
		Bits:   perfBitDisabled | perfBitExcludeKernel | perfBitExcludeHV,
	}
	fd, _, errno := syscall.Syscall6(syscall.SYS_PERF_EVENT_OPEN,
		uintptr(unsafe.Pointer(&attr)),
		0,           // pid: calling thread
		^uintptr(0), // cpu: any
		^uintptr(0), // group: none
		perfFlagFdCloexec, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

func perfIoctl(fd int, req uintptr) {
	syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, 0)
}

func perfRead(fd int) int64 {
	var buf [8]byte
	n, _ := syscall.Read(fd, buf[:])
	if n != 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// measureCounters runs fn with cache counters armed on the calling
// thread. It locks the goroutine to the OS thread so the per-thread
// counters see all of fn's work.
func measureCounters(fn func()) perfCounts {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	refsFd, err1 := perfOpen(perfCountHWCacheRefs)
	missFd, err2 := perfOpen(perfCountHWCacheMisses)
	if err1 == nil && err2 == nil {
		defer syscall.Close(refsFd)
		defer syscall.Close(missFd)
		perfIoctl(refsFd, perfEventIoctlReset)
		perfIoctl(missFd, perfEventIoctlReset)
		perfIoctl(refsFd, perfEventIoctlEnable)
		perfIoctl(missFd, perfEventIoctlEnable)
		fn()
		perfIoctl(refsFd, perfEventIoctlDisable)
		perfIoctl(missFd, perfEventIoctlDisable)
		return perfCounts{
			Source:      "perf_event_open",
			CacheRefs:   perfRead(refsFd),
			CacheMisses: perfRead(missFd),
		}
	}
	if err1 == nil {
		syscall.Close(refsFd)
	}
	if err2 == nil {
		syscall.Close(missFd)
	}

	// Containers commonly deny perf_event_open (EACCES/EPERM via
	// perf_event_paranoid or seccomp); fall back to the minor-fault
	// delta, an honest if coarse proxy for memory-system pressure.
	var before, after syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &before); err != nil {
		fn()
		return perfCounts{Source: "unavailable"}
	}
	fn()
	syscall.Getrusage(syscall.RUSAGE_SELF, &after)
	return perfCounts{
		Source:      "getrusage-minflt",
		CacheMisses: after.Minflt - before.Minflt,
	}
}
