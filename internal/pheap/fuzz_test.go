package pheap

import (
	"testing"
)

// FuzzHeap drives one heap with an arbitrary operation sequence —
// Floyd construction, inserts, delete-mins, and replace-mins — and
// checks the heap invariant (Verify) plus min-tracking against a shadow
// model after every step. The byte string is the op tape: each byte's
// low two bits pick the operation and the whole byte doubles as the
// inserted value, so plain `go test` already exercises the seed corpus.
func FuzzHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{255, 0, 255, 0, 7, 7, 7, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<12 {
			t.Skip("cap work per input")
		}
		less := func(a, b int32) bool { return a < b }
		// Start from a Floyd build over a prefix of the tape so
		// construction is fuzzed too, not just the empty heap.
		n := len(ops) / 2
		init := make([]int32, n)
		shadow := make(map[int32]int, n)
		for i := 0; i < n; i++ {
			v := int32(ops[i])
			init[i] = v
			shadow[v]++
		}
		h := NewFloyd(init, less)
		size := n
		if err := h.Verify(); err != nil {
			t.Fatalf("after Floyd build of %d items: %v", n, err)
		}
		shadowMin := func() int32 {
			min := int32(-1)
			for v := range shadow {
				if min < 0 || v < min {
					min = v
				}
			}
			return min
		}
		apply := func(v int32, delta int) {
			shadow[v] += delta
			if shadow[v] == 0 {
				delete(shadow, v)
			}
		}
		for i, op := range ops[n:] {
			v := int32(op)
			switch op % 4 {
			case 0, 1: // bias toward growth so delete paths see depth
				h.Insert(v)
				apply(v, 1)
				size++
			case 2:
				if size == 0 {
					continue
				}
				got := h.DeleteMin()
				if want := shadowMin(); got != want {
					t.Fatalf("op %d: DeleteMin=%d, shadow min %d", i, got, want)
				}
				apply(got, -1)
				size--
			case 3:
				if size == 0 {
					continue
				}
				got := h.ReplaceMin(v)
				if want := shadowMin(); got != want {
					t.Fatalf("op %d: ReplaceMin evicted %d, shadow min %d", i, got, want)
				}
				apply(got, -1)
				apply(v, 1)
			}
			if h.Len() != size {
				t.Fatalf("op %d: Len=%d, shadow size %d", i, h.Len(), size)
			}
			if err := h.Verify(); err != nil {
				t.Fatalf("op %d (%d): %v", i, op%4, err)
			}
		}
		// Drain: the heap must hand everything back in sorted order.
		prev := int32(-1)
		for size > 0 {
			got := h.DeleteMin()
			if got < prev {
				t.Fatalf("drain out of order: %d after %d", got, prev)
			}
			apply(got, -1)
			prev = got
			size--
		}
		if len(shadow) != 0 {
			t.Fatalf("heap drained but shadow still holds %d values", len(shadow))
		}
	})
}
