package mstore

import (
	"context"
	"fmt"
	"math"
	"os"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/relation"
)

// JoinRequest selects and parameterizes one join over the mapped store,
// sharing the simulator's vocabulary (join.Request) so sim-join and
// real-join are configured with the same words:
//
//   - Algorithm is a join.Algorithm; the real store executes
//     NestedLoops, SortMerge, Grace, and HybridHash, plus IndexNL and
//     IndexMerge when the store carries persistent indexes
//     (TraditionalGrace exists only as an analytical baseline in the
//     simulator).
//   - MRproc is the per-goroutine private-memory grant in bytes, the
//     real-store analogue of join.Params.MRproc. Grace derives its
//     bucket count K from it with the simulator's rule
//     K = ⌈Fuzz·|RSi|·r / MRproc⌉, and hybrid-hash sizes its resident
//     S prefix as the part of an S partition that fits in MRproc.
//   - K and Fuzz override/tune that derivation exactly as in
//     join.Params.
//
// The pointer vocabularies map as follows: the simulator's
// relation.SPtr{Part, Index} addresses S objects by index, the store's
// SPtr{Part, Off} by byte offset into the partition segment; they are
// interchangeable through Relation.IndexOf(Off) and Relation.PtrAt(Index).
type JoinRequest struct {
	Algorithm join.Algorithm

	// MRproc is the private memory grant per partition goroutine, bytes.
	// Zero selects a grant large enough that Grace uses one bucket.
	MRproc int64

	// K is the Grace/hybrid-hash bucket count; 0 derives it from MRproc.
	K int
	// Fuzz is the hash-table overhead allowance in the K derivation;
	// 0 selects the simulator's default 1.2.
	Fuzz float64

	// ResidentFrac is the hybrid-hash resident fraction of each S
	// partition; 0 derives it from MRproc (negative forces 0).
	ResidentFrac float64

	// MemGrant is the join-wide probe-memory budget in bytes for
	// Grace/hybrid-hash: the total counted size of concurrently built
	// bucket tables (and stream-probe handle arrays) never exceeds it —
	// oversized buckets restage into sub-buckets on disk or stream
	// instead of overshooting. Zero derives D·MRproc (the sum of the
	// per-partition grants; unbounded when MRproc is 0 too); negative
	// disables the bound entirely.
	MemGrant int64

	// Telemetry, when non-nil, receives the join's memory-adaptation
	// counters (temp files, restages, stream probes, renegotiations,
	// peak table bytes). The struct must be zero-valued or the counts
	// accumulate across joins, which is also a supported use.
	Telemetry *JoinTelemetry

	// Negotiator, when non-nil, lets a join that discovers it was
	// under-granted ask for memory beyond MemGrant before it falls back
	// to restaging; everything obtained is given back when Run returns.
	Negotiator GrantNegotiator

	// RadixBits bounds one partitioning pass of the bucketed joins to
	// 2^RadixBits destination buckets; a K beyond that partitions in
	// multiple cache-sized passes. 0 selects the default (8); values
	// above 16 are clamped.
	RadixBits int

	// ProbeBatch is the gather width of the batched probe kernels: how
	// many S-side reads one batch issues ahead of the join stage. 0
	// selects the default (64, also the maximum).
	ProbeBatch int

	// TmpDir holds the temporary partition/bucket relations; "" creates
	// a fresh per-call directory under the db dir (removed on return).
	// An explicit TmpDir must be unique per concurrent Run call: bucket
	// file names are fixed, so two joins sharing a TmpDir corrupt each
	// other's temporaries.
	TmpDir string

	// Workers is the CPU parallelism: the size of the work-stealing pool
	// the join's morsels run on; 0 selects GOMAXPROCS. It is orthogonal
	// to the memory model — MRproc grants memory per data partition
	// (the paper's Rproc, a property of the layout and of the K/resident
	// derivations above), while Workers only decides how many OS threads
	// chew through the morsels, touching neither per-partition memory
	// nor the I/O pattern the cost model counts.
	Workers int

	// Pool, when non-nil, runs the join's morsels on a shared
	// work-stealing pool instead of an ephemeral one (Workers is then
	// ignored). A server points every in-flight join at one pool so total
	// CPU fan-out stays bounded by the host.
	Pool *exec.Pool

	// Ctx, when non-nil, cancels the join between morsels; nil means
	// context.Background().
	Ctx context.Context
}

// withDefaults folds derived defaults into the request, mirroring
// join.Params.withDefaults.
func (req *JoinRequest) withDefaults(db *DB) error {
	switch req.Algorithm {
	case join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash:
	case join.IndexNL, join.IndexMerge:
		if !db.HasIndexes() {
			return fmt.Errorf("mstore: %v needs persistent indexes (build them with mmdb index, or BuildIndexes)", req.Algorithm)
		}
	case join.TraditionalGrace:
		return fmt.Errorf("mstore: %v is an analytical baseline; the store executes pointer-based plans only", req.Algorithm)
	case join.Auto:
		return fmt.Errorf("mstore: auto needs a planning front-end (the service or a shard router), the store executes concrete algorithms only")
	default:
		return fmt.Errorf("mstore: unknown algorithm %v", req.Algorithm)
	}
	if req.MRproc < 0 {
		return fmt.Errorf("mstore: negative memory grant %d", req.MRproc)
	}
	if req.RadixBits < 0 {
		return fmt.Errorf("mstore: negative radix bits %d", req.RadixBits)
	}
	if req.ProbeBatch < 0 {
		return fmt.Errorf("mstore: negative probe batch %d", req.ProbeBatch)
	}
	if req.Fuzz == 0 {
		req.Fuzz = 1.2
	}
	if req.K <= 0 {
		req.K = db.deriveK(req.MRproc, req.Fuzz)
	} else if max := db.maxK(); req.K > max {
		// Bucket state (D·K index slices, D·K temp relations) is sized
		// directly by K and is not covered by the MRproc grant, so an
		// explicit K is clamped to the same per-partition reference
		// ceiling deriveK enforces: buckets beyond the number of
		// references a partition can hold never pay for themselves.
		req.K = max
	}
	if req.ResidentFrac == 0 {
		req.ResidentFrac = db.deriveResidentFrac(req.MRproc)
	}
	if req.ResidentFrac < 0 {
		req.ResidentFrac = 0
	}
	if req.ResidentFrac > 1 {
		req.ResidentFrac = 1
	}
	return nil
}

// deriveK applies the simulator's Grace rule K = ⌈fuzz·|RSi|·r/M⌉ with
// |RSi| = |R|/D (each partition's expected reference load).
func (db *DB) deriveK(mrproc int64, fuzz float64) int {
	if mrproc <= 0 {
		return 1
	}
	k := int(math.Ceil(fuzz * float64(db.CountR()) / float64(db.D) * float64(db.ObjSize) / float64(mrproc)))
	if k < 1 {
		k = 1
	}
	if max := db.maxK(); k > max {
		k = max
	}
	return k
}

// maxK is the largest useful bucket count: one bucket per expected
// reference in a partition (at least 1).
func (db *DB) maxK() int {
	if k := db.CountR() / db.D; k > 1 {
		return k
	}
	return 1
}

// deriveResidentFrac sizes the hybrid-hash resident prefix: the share of
// one S partition that fits in the per-goroutine grant.
func (db *DB) deriveResidentFrac(mrproc int64) float64 {
	if mrproc <= 0 {
		return 0
	}
	perPart := float64(db.CountS()) / float64(db.D) * float64(db.ObjSize)
	if perPart <= 0 {
		return 0
	}
	frac := float64(mrproc) / perPart
	if frac > 1 {
		frac = 1
	}
	return frac
}

// CountR returns the total number of R objects across partitions.
func (db *DB) CountR() int {
	n := 0
	for _, rel := range db.R {
		n += rel.Count()
	}
	return n
}

// CountS returns the total number of S objects across partitions.
func (db *DB) CountS() int {
	n := 0
	for _, rel := range db.S {
		n += rel.Count()
	}
	return n
}

// grantBudget resolves the effective probe-memory budget: an explicit
// MemGrant wins, zero derives D·MRproc (every partition goroutine's
// grant, pooled), and a negative MemGrant — or no MRproc to derive
// from — means unbounded (0).
func (req *JoinRequest) grantBudget(db *DB) int64 {
	switch {
	case req.MemGrant > 0:
		return req.MemGrant
	case req.MemGrant < 0:
		return 0
	case req.MRproc > 0:
		return req.MRproc * int64(db.D)
	}
	return 0
}

// Run validates the request, folds in derived defaults, and executes the
// selected algorithm over the mapped store. It is safe for concurrent
// use by multiple goroutines with the default TmpDir (each call gets a
// fresh temp directory; the base relations are only read); concurrent
// calls sharing req.Pool additionally share its CPU bound.
func (db *DB) Run(req JoinRequest) (JoinStats, error) {
	if err := req.withDefaults(db); err != nil {
		return JoinStats{}, err
	}
	if req.Workers < 0 {
		return JoinStats{}, fmt.Errorf("mstore: negative worker count %d", req.Workers)
	}
	if req.TmpDir == "" {
		dir, err := os.MkdirTemp(db.Dir, "tmp-")
		if err != nil {
			return JoinStats{}, err
		}
		defer os.RemoveAll(dir)
		req.TmpDir = dir
	}
	ctx := req.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	p := req.Pool
	if p == nil {
		p = exec.NewPool(req.Workers)
		defer p.Close()
	}
	kc := kernelConfig{radixBits: req.RadixBits, probeBatch: req.ProbeBatch}
	switch req.Algorithm {
	case join.NestedLoops:
		return db.nestedLoops(ctx, p, req.TmpDir, kc)
	case join.SortMerge:
		return db.sortMerge(ctx, p, req.TmpDir, kc)
	case join.Grace:
		lim := newMemLimiter(req.grantBudget(db), req.Negotiator, req.Telemetry)
		defer lim.close()
		return db.grace(ctx, p, req.TmpDir, req.K, kc, lim)
	case join.IndexNL:
		lim := newMemLimiter(req.grantBudget(db), req.Negotiator, req.Telemetry)
		defer lim.close()
		return db.indexNL(ctx, p, kc, lim)
	case join.IndexMerge:
		lim := newMemLimiter(req.grantBudget(db), req.Negotiator, req.Telemetry)
		defer lim.close()
		return db.indexMerge(ctx, p, kc, lim)
	default: // join.HybridHash, by withDefaults
		lim := newMemLimiter(req.grantBudget(db), req.Negotiator, req.Telemetry)
		defer lim.close()
		return db.hybridHash(ctx, p, req.TmpDir, req.K, req.ResidentFrac, kc, lim)
	}
}

// Workload converts the stored relations into the simulator's workload
// form: the same partitioning, object sizes, and — crucially — the
// actual stored references, translated from byte offsets to indexes
// (relation.SPtr.Index = Relation.IndexOf(SPtr.Off)). The result lets
// the planner cost this exact database through planner.InputsFor with
// measured skew and distinct-reference counts rather than assumptions.
func (db *DB) Workload() (*relation.Workload, error) {
	if len(db.R) != db.D || len(db.S) != db.D {
		return nil, fmt.Errorf("mstore: %d/%d relations for D=%d", len(db.R), len(db.S), db.D)
	}
	w := &relation.Workload{
		Spec: relation.Spec{
			NR: db.CountR(), NS: db.CountS(),
			RSize: db.ObjSize, SSize: db.ObjSize,
			PtrSize: sptrBytes,
			D:       db.D,
		},
		Refs: make([][]relation.SPtr, db.D),
	}
	for i, rel := range db.R {
		refs := make([]relation.SPtr, rel.Count())
		for x := range refs {
			ptr := DecodeSPtr(rel.Object(x))
			if int(ptr.Part) >= db.D {
				return nil, fmt.Errorf("mstore: R%d[%d] points to partition %d", i, x, ptr.Part)
			}
			refs[x] = relation.SPtr{
				Part:  int32(ptr.Part),
				Index: int32(db.S[ptr.Part].IndexOf(ptr.Off)),
			}
		}
		w.Refs[i] = refs
	}
	return w, nil
}
