package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/mstore"
	"mmjoin/internal/relation"
)

// PlanFunc chooses the algorithm one shard executes when the request
// asks for join.Auto: it receives the shard's id, the shard's own
// measured workload, and the per-shard request (with the shard's share
// of the memory grant already folded into MRproc/MemGrant). Each shard
// plans independently — a skew-heavy shard may pick Grace while its
// uniform peers pick hybrid-hash — because the merged JoinStats are
// bit-identical regardless of which algorithm each shard runs.
type PlanFunc func(shardID string, w *relation.Workload, req mstore.JoinRequest) (join.Algorithm, error)

// Config parameterizes a Router.
type Config struct {
	// MapPath is recorded in Stats as the store's "dir" (description
	// only; the Router never re-reads the file).
	MapPath string
	// Replicas is the virtual-node count per shard on the routing ring
	// (0: 64).
	Replicas int
	// WorkersPerShard sizes each shard's private morsel pool
	// (0: GOMAXPROCS). Total CPU fan-out of one scatter-gather join is
	// shards × WorkersPerShard; on small hosts size it accordingly.
	WorkersPerShard int
	// PlanFunc enables join.Auto requests (nil: auto requests fail).
	PlanFunc PlanFunc
}

// handle is one mounted shard: its mapped database, its private exec
// pool, and the PR-4 drain discipline (register in-flight work under
// drainMu before checking the draining flag, so a drain can never
// return while a request is about to touch the mapping).
type handle struct {
	id   string
	dir  string
	d    int
	db   *mstore.DB
	pool *exec.Pool

	drainMu  sync.Mutex
	inflight sync.WaitGroup
	draining atomic.Bool

	wOnce sync.Once
	w     *relation.Workload
	wErr  error
}

// begin registers one unit of in-flight work, or reports false when the
// shard is draining. Callers that get true must call end().
func (h *handle) begin() bool {
	h.drainMu.Lock()
	defer h.drainMu.Unlock()
	if h.draining.Load() {
		return false
	}
	h.inflight.Add(1)
	return true
}

func (h *handle) end() { h.inflight.Done() }

// workload lazily derives (and caches) the shard's planner view; the
// first auto-planned join pays the scan.
func (h *handle) workload() (*relation.Workload, error) {
	h.wOnce.Do(func() { h.w, h.wErr = h.db.Workload() })
	return h.w, h.wErr
}

// Router is the scatter-gather serving tier: an mstore.Store over N
// independent mmap stores. Joins fan out to every live shard and fold;
// lookups route to exactly one shard via consistent hashing. Membership
// is dynamic — AddShard and RemoveShard (with per-shard drain) may run
// concurrently with serving.
type Router struct {
	cfg Config

	mu     sync.RWMutex
	shards []*handle // live membership, in add order
	ring   *ring
	closed bool
	// detached holds shards whose RemoveShard drain timed out: out of
	// the membership but not yet safely closable. Close sweeps them.
	detached []*handle
}

var (
	_ mstore.Store       = (*Router)(nil)
	_ mstore.ShardRunner = (*Router)(nil)
)

// Open mounts every shard in the map and assembles the router.
func Open(m *Map, cfg Config) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = m.Replicas
	}
	if cfg.WorkersPerShard == 0 {
		cfg.WorkersPerShard = m.WorkersPerShard
	}
	r := &Router{cfg: cfg, ring: newRing(nil, cfg.Replicas)}
	for _, e := range m.Shards {
		if err := r.AddShard(e.ID, e.Dir, e.D); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// AddShard mounts one shard (opening its mapped database and starting
// its pool) and rebuilds the routing ring, moving ~1/N of the lookup
// keyspace onto the newcomer. Joins scattered after the add include the
// new shard's objects.
func (r *Router) AddShard(id, dir string, d int) error {
	db, err := mstore.OpenDB(dir, d)
	if err != nil {
		return fmt.Errorf("shard %q: %w", id, err)
	}
	h := &handle{id: id, dir: dir, d: d, db: db, pool: exec.NewPool(r.cfg.WorkersPerShard)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		h.pool.Close()
		db.Close()
		return fmt.Errorf("shard: router closed")
	}
	for _, old := range r.shards {
		if old.id == id {
			h.pool.Close()
			db.Close()
			return fmt.Errorf("shard: duplicate shard id %q", id)
		}
	}
	r.shards = append(r.shards, h)
	r.rebuildRingLocked()
	return nil
}

// RemoveShard drains one shard and unmounts it: the shard leaves the
// membership and the ring immediately (new joins exclude it, new
// lookups route around it), then the call waits for in-flight requests
// registered with the shard to finish before unmapping. A join that
// began before the removal still includes the shard; one that begins
// after does not. If ctx expires mid-drain the shard stays mapped (its
// requests still hold the mapping) and is released by Close.
func (r *Router) RemoveShard(ctx context.Context, id string) error {
	r.mu.Lock()
	var h *handle
	for i, s := range r.shards {
		if s.id == id {
			h = s
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			break
		}
	}
	if h == nil {
		r.mu.Unlock()
		return fmt.Errorf("shard: no shard %q", id)
	}
	r.rebuildRingLocked()
	r.mu.Unlock()

	// Flip the drain flag under drainMu: every request either
	// registered with inflight before this (and is waited for) or
	// observes the flag in begin() and skips the shard.
	h.drainMu.Lock()
	h.draining.Store(true)
	h.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		h.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		h.pool.Close()
		return h.db.Close()
	case <-ctx.Done():
		r.mu.Lock()
		r.detached = append(r.detached, h)
		r.mu.Unlock()
		return fmt.Errorf("shard: drain of %q interrupted: %w", id, ctx.Err())
	}
}

// rebuildRingLocked recomputes the ring from the live membership.
// Callers hold r.mu.
func (r *Router) rebuildRingLocked() {
	ids := make([]string, len(r.shards))
	for i, h := range r.shards {
		ids[i] = h.id
	}
	r.ring = newRing(ids, r.cfg.Replicas)
}

// snapshot returns the live membership and ring under the read lock.
func (r *Router) snapshot() ([]*handle, *ring, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, nil, fmt.Errorf("shard: router closed")
	}
	shards := make([]*handle, len(r.shards))
	copy(shards, r.shards)
	return shards, r.ring, nil
}

// Run implements mstore.Store: RunShards with the per-shard detail
// dropped.
func (r *Router) Run(req mstore.JoinRequest) (mstore.JoinStats, error) {
	st, _, err := r.RunShards(req)
	return st, err
}

// RunShards executes one join scatter-gather: every live shard runs the
// request over its own slice of R (with its own pool, its share of the
// memory grant, and its own temp subdirectory), and the per-shard
// JoinStats fold — commutative sums — into one merged result that is
// bit-identical to a single-store join over the same logical relation.
//
// Grant split: a positive req.MemGrant is divided evenly across the
// participating shards (each share floored at one page per partition
// goroutine), and each shard's MRproc is re-derived as share/D so K and
// resident-fraction derivations see the shard's true budget. req.Pool
// and req.Workers are ignored — each shard executes on its own pool.
// req.Telemetry, when set, receives the folded per-shard telemetry
// (counters sum, PeakTableBytes maxes).
//
// With req.Algorithm == join.Auto each shard plans independently
// through Config.PlanFunc against its own measured workload.
func (r *Router) RunShards(req mstore.JoinRequest) (mstore.JoinStats, []mstore.ShardJoinStat, error) {
	if req.Algorithm == join.Auto && r.cfg.PlanFunc == nil {
		return mstore.JoinStats{}, nil, fmt.Errorf("shard: auto requested but the router has no PlanFunc")
	}
	shards, _, err := r.snapshot()
	if err != nil {
		return mstore.JoinStats{}, nil, err
	}
	// Register with every shard's drain discipline up front, so the
	// participant set — and therefore the grant split — is fixed before
	// any work starts. Draining shards are excluded: the join computes
	// the post-removal logical relation.
	live := shards[:0]
	for _, h := range shards {
		if h.begin() {
			live = append(live, h)
		}
	}
	if len(live) == 0 {
		return mstore.JoinStats{}, nil, fmt.Errorf("shard: no live shards")
	}

	baseCtx := req.Ctx
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	ctx, cancel := context.WithCancel(baseCtx)
	defer cancel()

	type result struct {
		stat mstore.ShardJoinStat
		tel  *mstore.JoinTelemetry
		err  error
	}
	results := make([]result, len(live))
	var wg sync.WaitGroup
	for i, h := range live {
		wg.Add(1)
		go func(i int, h *handle) {
			defer wg.Done()
			defer h.end()
			sub := req // per-shard copy
			sub.Ctx = ctx
			sub.Pool = h.pool
			sub.Workers = 0
			tel := &mstore.JoinTelemetry{}
			sub.Telemetry = tel
			if req.MemGrant > 0 {
				share := req.MemGrant / int64(len(live))
				if floor := int64(h.d) * 4096; share < floor {
					share = floor
				}
				sub.MemGrant = share
				sub.MRproc = share / int64(h.d)
			}
			if req.TmpDir != "" {
				sub.TmpDir = filepath.Join(req.TmpDir, "shard-"+h.id)
				if err := os.MkdirAll(sub.TmpDir, 0o755); err != nil {
					results[i] = result{err: fmt.Errorf("shard %q: %w", h.id, err)}
					cancel()
					return
				}
			}
			if sub.Algorithm == join.Auto {
				w, err := h.workload()
				if err == nil {
					sub.Algorithm, err = r.cfg.PlanFunc(h.id, w, sub)
				}
				if err != nil {
					results[i] = result{err: fmt.Errorf("shard %q: planning: %w", h.id, err)}
					cancel()
					return
				}
			}
			start := time.Now()
			st, err := h.db.Run(sub)
			if err != nil {
				results[i] = result{err: fmt.Errorf("shard %q: %w", h.id, err)}
				cancel()
				return
			}
			results[i] = result{
				stat: mstore.ShardJoinStat{
					Shard:          h.id,
					Algorithm:      sub.Algorithm.String(),
					Pairs:          st.Pairs,
					Signature:      st.Signature,
					ElapsedNs:      time.Since(start).Nanoseconds(),
					Restages:       tel.Restages.Load(),
					RestagedRefs:   tel.RestagedRefs.Load(),
					StreamProbes:   tel.StreamProbes.Load(),
					Renegotiations: tel.Renegotiations.Load(),
					RadixPasses:    tel.RadixPasses.Load(),
					PeakTableBytes: tel.PeakTableBytes.Load(),
					TempFiles:      tel.TempFiles.Load(),
				},
				tel: tel,
			}
		}(i, h)
	}
	wg.Wait()

	var merged mstore.JoinStats
	details := make([]mstore.ShardJoinStat, 0, len(live))
	for _, res := range results {
		if res.err != nil {
			return mstore.JoinStats{}, nil, res.err
		}
		merged.Fold(mstore.JoinStats{Pairs: res.stat.Pairs, Signature: res.stat.Signature})
		if req.Telemetry != nil {
			req.Telemetry.Fold(res.tel)
		}
		details = append(details, res.stat)
	}
	return merged, details, nil
}

// Lookup routes the (part, index) name to exactly one shard through the
// consistent-hash ring, validates the bounds against that shard — not
// against any global partition count — and dereferences there. The
// answering shard's id is returned in LookupResult.Shard.
func (r *Router) Lookup(part, index int) (mstore.LookupResult, error) {
	// A removal between taking the ring and registering with the owner
	// re-routes on a fresh ring; membership churn is bounded, so a few
	// retries always land on a live owner.
	for attempt := 0; attempt < 4; attempt++ {
		shards, ring, err := r.snapshot()
		if err != nil {
			return mstore.LookupResult{}, err
		}
		owner, ok := ring.owner(lookupKey(part, index))
		if !ok {
			return mstore.LookupResult{}, fmt.Errorf("shard: no live shards")
		}
		var h *handle
		for _, s := range shards {
			if s.id == owner {
				h = s
				break
			}
		}
		if h == nil || !h.begin() {
			continue // membership changed under us; re-route
		}
		res, err := r.lookupOn(h, part, index)
		h.end()
		return res, err
	}
	return mstore.LookupResult{}, fmt.Errorf("shard: lookup routing did not settle (membership churn)")
}

// lookupOn dereferences on one shard, validating against that shard's
// own partition count and sizes.
func (r *Router) lookupOn(h *handle, part, index int) (mstore.LookupResult, error) {
	if part < 0 || part >= h.db.D {
		return mstore.LookupResult{}, fmt.Errorf("%w: R%d, shard %q has [0,%d)",
			mstore.ErrPartRange, part, h.id, h.db.D)
	}
	if index < 0 || index >= h.db.R[part].Count() {
		return mstore.LookupResult{}, fmt.Errorf("%w: R%d[%d], shard %q partition has %d objects",
			mstore.ErrIndexRange, part, index, h.id, h.db.R[part].Count())
	}
	res, err := h.db.Lookup(part, index)
	if err != nil {
		return mstore.LookupResult{}, fmt.Errorf("shard %q: %w", h.id, err)
	}
	res.Shard = h.id
	return res, nil
}

// Workload merges the shards' workloads into one planner view of the
// logical relation: per-partition reference lists concatenate across
// shards and NR sums. When every shard reports the same D and NS the
// merge assumes the replicated-S layout Split produces and keeps NS
// (each shard references the same S); otherwise NS sums. The merged
// view is for costing only — per-shard planning (PlanFunc) sees each
// shard's exact workload instead.
func (r *Router) Workload() (*relation.Workload, error) {
	shards, _, err := r.snapshot()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no live shards")
	}
	var merged *relation.Workload
	replicated := true
	for _, h := range shards {
		if !h.begin() {
			continue
		}
		w, err := h.workload()
		h.end()
		if err != nil {
			return nil, fmt.Errorf("shard %q: %w", h.id, err)
		}
		if merged == nil {
			merged = &relation.Workload{Spec: w.Spec, Refs: make([][]relation.SPtr, w.Spec.D)}
			for i := range merged.Refs {
				if i < len(w.Refs) {
					merged.Refs[i] = append([]relation.SPtr(nil), w.Refs[i]...)
				}
			}
			continue
		}
		if w.Spec.D != merged.Spec.D || w.Spec.NS != merged.Spec.NS {
			replicated = false
		}
		merged.Spec.NR += w.Spec.NR
		if !replicated {
			merged.Spec.NS += w.Spec.NS
		}
		if w.Spec.D > merged.Spec.D {
			merged.Spec.D = w.Spec.D
			grown := make([][]relation.SPtr, w.Spec.D)
			copy(grown, merged.Refs)
			merged.Refs = grown
		}
		for i, refs := range w.Refs {
			merged.Refs[i] = append(merged.Refs[i], refs...)
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("shard: no live shards")
	}
	return merged, nil
}

// CountR totals R objects over live shards.
func (r *Router) CountR() int {
	shards, _, err := r.snapshot()
	if err != nil {
		return 0
	}
	n := 0
	for _, h := range shards {
		n += h.db.CountR()
	}
	return n
}

// CountS totals S objects over live shards (counting every replica in
// the replicated-S layout).
func (r *Router) CountS() int {
	shards, _, err := r.snapshot()
	if err != nil {
		return 0
	}
	n := 0
	for _, h := range shards {
		n += h.db.CountS()
	}
	return n
}

// Stats describes the sharded layout: one ShardInfo per live shard,
// including each shard's private pool occupancy.
func (r *Router) Stats() mstore.StoreStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := mstore.StoreStats{Kind: "sharded", Dir: r.cfg.MapPath, Indexed: len(r.shards) > 0}
	for _, h := range r.shards {
		if !h.db.HasIndexes() {
			st.Indexed = false
		}
		info := mstore.ShardInfo{
			ID: h.id, Dir: h.dir, D: h.db.D, ObjSize: h.db.ObjSize,
			NR: h.db.CountR(), NS: h.db.CountS(),
			Draining: h.draining.Load(),
			Pool:     h.pool.Stats(),
		}
		st.Shards = append(st.Shards, info)
		st.NR += info.NR
		st.NS += info.NS
		if info.D > st.D {
			st.D = info.D
		}
		if st.ObjSize == 0 {
			st.ObjSize = info.ObjSize
		}
	}
	return st
}

// Close unmounts every shard (live and detached). Callers should drain
// the serving layer first; Close does not wait for in-flight joins.
func (r *Router) Close() error {
	r.mu.Lock()
	shards := append(r.shards, r.detached...)
	r.shards, r.detached = nil, nil
	closed := r.closed
	r.closed = true
	r.ring = newRing(nil, r.cfg.Replicas)
	r.mu.Unlock()
	if closed {
		return nil
	}
	var first error
	for _, h := range shards {
		h.pool.Close()
		if err := h.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
