package model

import (
	"math"

	"mmjoin/internal/sim"
)

// Analyses of the index join paths (mstore.indexNL / indexMerge) in the
// paper's per-Rproc accounting style. Neither path writes temporary
// relations, so both predictions have no DTTW terms at all — the real
// crossover against the staging algorithms. What they pay instead is
// index geometry: log-fanout node touches per probe (index-NL) or a
// full leaf-chain scan (index-merge), each node touch priced with the
// same dttr-calibrated dereference cost and Mackert–Lohman residency
// model as every data-page fault.

// indexGeom is the derived shape of one per-partition B-tree: leaf and
// upper-level page counts and the descent height, for n indexed values
// at fanout f with one page per node.
type indexGeom struct {
	leaves float64 // leaf nodes
	upper  float64 // nodes above the leaves
	height float64 // levels from root to leaf (1 for a root-only tree)
}

func deriveIndex(n, f float64) indexGeom {
	g := indexGeom{leaves: math.Max(1, math.Ceil(n/f)), height: 1}
	for w := g.leaves; w > 1; {
		w = math.Ceil(w / (f + 1))
		g.upper += w
		g.height++
	}
	return g
}

// indexPages converts node counts to page counts (nodes are one 4 KiB
// page by construction; re-scale if the calibration page differs).
func indexPages(c Calibration, nodes float64) float64 {
	return pages(nodes*4096, c.B)
}

// PredictIndexNL evaluates the index-nested-loop analysis: scan Ri
// sequentially, and per R object descend S's per-partition B-tree —
// height−1 upper-node touches (tiny, resident after first touch) plus
// one leaf fault governed by the urn/LRU model — then dereference the S
// object itself. No temporary I/O of any kind; cost is R-proportional,
// which is why the path wins when |R| ≪ |S|.
func PredictIndexNL(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	f := float64(in.IndexFanout)
	rsi := q.ri // probes issued per Rproc
	distinct := rsi
	if in.DistinctS > 0 {
		distinct = float64(in.DistinctS)
	}
	g := deriveIndex(q.sj, f)
	leafPages := indexPages(c, g.leaves)
	upperPages := indexPages(c, math.Max(1, g.upper))

	p := &Prediction{}
	// Setup: Ri and the (index-carrying) Si segments opened.
	p.add("setup", sim.Time(d*(c.OpenMap.Eval(q.pri)+c.OpenMap.Eval(q.psi+leafPages+upperPages))))

	band := q.pri + q.psi + leafPages
	// Scan Ri sequentially.
	p.add("scan Ri", sim.Time(q.pri*c.DTTR.Eval(band)))
	// Upper index levels: read once, then resident (they are a ~1/f²
	// fraction of the data, far smaller than any realistic buffer).
	p.add("index upper", sim.Time(upperPages*c.DTTR.Eval(band)))
	// Leaf touches: one per probe, against leafPages with at most
	// min(leaves, distinct) of them ever needed — the same LRU estimate
	// as a data-page stream, with the buffer shared against S's data.
	leafDistinct := math.Min(math.Max(1, leafPages), distinct)
	p.add("index leaves", sim.Time(Ylru(rsi, math.Max(1, leafPages), leafDistinct, q.sframes, rsi)*c.DTTR.Eval(band)))
	// The S objects themselves, exactly as the probe phase of every
	// other algorithm prices them.
	p.add("read Si", sim.Time(Ylru(rsi, q.psi, distinct, q.sframes, rsi)*c.DTTR.Eval(band)))

	// CPU: the descent — log2(f) binary-search compares per level —
	// plus the usual per-object mapping/transfer accounting.
	p.add("descend", sim.Time(rsi*g.height*math.Log2(math.Max(2, f)))*c.Compare)
	p.add("map", sim.Time(q.ri)*c.Map)
	p.add("transfer", sim.Time(rsi*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("context switches", gSwitch(c, q, rsi))
	return p, nil
}

// PredictIndexMerge evaluates the sorted-range merge analysis: both
// sides' leaf chains are already in join-key order, so the merge reads
// the R-side leaf chain once, zips it against every S partition's leaf
// chain (the executor walks all D S-trees' ranges per R partition), and
// dereferences matching objects. The sort the sort-merge join performs
// at run time was paid at bulk-load, so there are no sort passes, no
// run files, and again no DTTW terms.
func PredictIndexMerge(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	f := float64(in.IndexFanout)
	rsi := q.ri
	distinct := rsi
	if in.DistinctS > 0 {
		distinct = float64(in.DistinctS)
	}
	gr := deriveIndex(q.ri, f)
	rLeafPages := indexPages(c, gr.leaves)
	// Each Rproc's morsels collectively scan all D S partitions' leaf
	// chains (one pass over NS keys), honest to the executor's D×D cell
	// fan-out.
	gs := deriveIndex(float64(in.NS), f)
	sLeafPages := indexPages(c, gs.leaves)

	p := &Prediction{}
	p.add("setup", sim.Time(d*(c.OpenMap.Eval(q.pri+rLeafPages)+c.OpenMap.Eval(q.psi+sLeafPages/d))))

	band := q.pri + q.psi + rLeafPages + sLeafPages/d
	// Leaf chains stream sequentially on both sides.
	p.add("scan R leaves", sim.Time(rLeafPages*c.DTTR.Eval(band)))
	p.add("scan S leaves", sim.Time(sLeafPages*c.DTTR.Eval(band)))
	// R objects are dereferenced through posting values in key order —
	// random within the partition, LRU-modeled like any pointer stream.
	p.add("read Ri", sim.Time(Ylru(q.ri, q.pri, q.ri, q.frames, q.ri)*c.DTTR.Eval(band)))
	// Matching S objects, as in every probe phase.
	p.add("read Si", sim.Time(Ylru(rsi, q.psi, distinct, q.sframes, rsi)*c.DTTR.Eval(band)))

	// CPU: the zip advances one cursor per compared key — ri + NS/D·D
	// compares per Rproc — plus per-pair transfer and mapping.
	p.add("merge", sim.Time(q.ri+float64(in.NS))*c.Compare)
	p.add("map", sim.Time(q.ri)*c.Map)
	p.add("transfer", sim.Time(rsi*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("context switches", gSwitch(c, q, rsi))
	return p, nil
}
