package mmjoin

// Integration regression tests at the paper's full scale. They take a
// few seconds each and are skipped under -short; the asserted bands
// mirror EXPERIMENTS.md so a regression in any layer (disk model, pager,
// algorithms, analytical model) surfaces here.

import (
	"math"
	"path/filepath"
	"testing"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/mstore"
	"mmjoin/internal/relation"
)

func paperExperiment(t *testing.T) *core.Experiment {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-scale integration test")
	}
	e, err := core.NewExperiment(machine.DefaultConfig(), relation.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func assertBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.1f outside [%.1f, %.1f]", name, got, lo, hi)
	}
}

func TestPaperScaleNestedLoopsBand(t *testing.T) {
	e := paperExperiment(t)
	cmp, err := e.Compare(join.NestedLoops, e.ParamsForFraction(0.10))
	if err != nil {
		t.Fatal(err)
	}
	assertBand(t, "nl experiment @0.10", cmp.Measured.Seconds(), 280, 440)
	if re := math.Abs(cmp.RelError()); re > 0.15 {
		t.Errorf("nl model error %.2f at low memory, want <= 0.15", re)
	}
	hi, err := e.Measure(join.NestedLoops, e.ParamsForFraction(0.50))
	if err != nil {
		t.Fatal(err)
	}
	if float64(cmp.Measured) < 5*float64(hi.Elapsed) {
		t.Errorf("nl memory sensitivity lost: %.0fs -> %.0fs",
			cmp.Measured.Seconds(), hi.Elapsed.Seconds())
	}
}

func TestPaperScaleSortMergeBandAndDiscontinuity(t *testing.T) {
	e := paperExperiment(t)
	lo, err := e.Compare(join.SortMerge, e.ParamsForFraction(0.010))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := e.Compare(join.SortMerge, e.ParamsForFraction(0.030))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Result.NPass <= mid.Result.NPass {
		t.Errorf("merge-pass discontinuity lost: NPASS %d -> %d",
			lo.Result.NPass, mid.Result.NPass)
	}
	for _, cmp := range []*core.Comparison{lo, mid} {
		if re := math.Abs(cmp.RelError()); re > 0.20 {
			t.Errorf("sm model error %.2f at f=%.3f", re, cmp.MemFrac)
		}
	}
}

func TestPaperScaleGraceKneeAndPlateau(t *testing.T) {
	e := paperExperiment(t)
	knee, err := e.Measure(join.Grace, e.ParamsForFraction(0.008))
	if err != nil {
		t.Fatal(err)
	}
	plateau, err := e.Compare(join.Grace, e.ParamsForFraction(0.040))
	if err != nil {
		t.Fatal(err)
	}
	if float64(knee.Elapsed) < 3*float64(plateau.Measured) {
		t.Errorf("thrashing knee lost: %.0fs vs plateau %.0fs",
			knee.Elapsed.Seconds(), plateau.Measured.Seconds())
	}
	if re := math.Abs(plateau.RelError()); re > 0.25 {
		t.Errorf("grace plateau model error %.2f", re)
	}
}

func TestPaperScaleAlgorithmOrdering(t *testing.T) {
	e := paperExperiment(t)
	prm := e.ParamsForFraction(0.05)
	nl, err := e.Measure(join.NestedLoops, prm)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := e.Measure(join.SortMerge, prm)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := e.Measure(join.Grace, prm)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Measure(join.TraditionalGrace, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !(gr.Elapsed < sm.Elapsed && sm.Elapsed < nl.Elapsed) {
		t.Errorf("Fig 5 ordering lost: grace %v, sm %v, nl %v",
			gr.Elapsed, sm.Elapsed, nl.Elapsed)
	}
	if float64(tr.Elapsed) < 1.5*float64(gr.Elapsed) {
		t.Errorf("pointer advantage lost: traditional %v vs grace %v", tr.Elapsed, gr.Elapsed)
	}
	// All compute the same join.
	sig, pairs := e.W.JoinSignature()
	for _, res := range []*join.Result{nl, sm, gr, tr} {
		if res.Signature != sig || res.Pairs != pairs {
			t.Fatalf("%v computed a wrong join", res.Algorithm)
		}
	}
}

func TestRealStorePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("io heavy")
	}
	dir := t.TempDir()
	db, err := mstore.CreateDB(filepath.Join(dir, "db"), 4, 102400, 102400, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	want := db.ExpectedStats()
	tmp := filepath.Join(dir, "tmp")
	for name, fn := range map[string]func() (mstore.JoinStats, error){
		"nested-loops": func() (mstore.JoinStats, error) { return db.NestedLoops(tmp) },
		"sort-merge":   func() (mstore.JoinStats, error) { return db.SortMerge(tmp) },
		"grace":        func() (mstore.JoinStats, error) { return db.Grace(tmp, 32) },
		"hybrid-hash":  func() (mstore.JoinStats, error) { return db.HybridHash(tmp, 32, 0.5) },
	} {
		st, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st != want {
			t.Errorf("%s: wrong join at paper scale", name)
		}
	}
}
