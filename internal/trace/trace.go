// Package trace records per-process event timelines from simulated join
// executions and renders them as a text Gantt chart — the view the
// paper's authors would have used to see staggered phases interleave and
// disks hand work between processes.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mmjoin/internal/sim"
)

// Event is one timeline mark.
type Event struct {
	At    sim.Time
	Proc  string
	Label string
}

// Log collects events. A nil *Log is a valid no-op sink, so callers can
// trace unconditionally.
type Log struct {
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Add records an event; nil logs ignore it.
func (l *Log) Add(at sim.Time, proc, label string) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{At: at, Proc: proc, Label: label})
}

// Events returns the events sorted by time (stable across equal times).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := append([]Event(nil), l.events...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Render writes a per-process timeline: one row per process, phases laid
// out proportionally over width columns. Events with the same process
// name share a row; each event label marks the END of the segment that
// precedes it.
func (l *Log) Render(w io.Writer, width int) error {
	evs := l.Events()
	if len(evs) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	if width < 20 {
		width = 20
	}
	end := evs[len(evs)-1].At
	if end == 0 {
		end = 1
	}
	// Group by process, preserving first-seen order.
	byProc := map[string][]Event{}
	var order []string
	for _, ev := range evs {
		if _, seen := byProc[ev.Proc]; !seen {
			order = append(order, ev.Proc)
		}
		byProc[ev.Proc] = append(byProc[ev.Proc], ev)
	}
	nameWidth := 0
	for _, name := range order {
		if len(name) > nameWidth {
			nameWidth = len(name)
		}
	}
	for _, name := range order {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		prev := 0
		for idx, ev := range byProc[name] {
			col := int(int64(ev.At) * int64(width-1) / int64(end))
			mark := markFor(idx)
			for c := prev; c <= col && c < width; c++ {
				row[c] = mark
			}
			prev = col + 1
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameWidth, name, string(row)); err != nil {
			return err
		}
	}
	// Legend: per process, segment letter -> label @ time.
	if _, err := fmt.Fprintln(w, strings.Repeat("-", nameWidth+width+3)); err != nil {
		return err
	}
	for _, name := range order {
		for idx, ev := range byProc[name] {
			if idx >= maxMarks {
				// Out of distinct marks: say so instead of silently
				// reusing a letter for two different phases.
				if _, err := fmt.Fprintf(w, "%-*s  *: (+%d more segments)\n",
					nameWidth, name, len(byProc[name])-maxMarks); err != nil {
					return err
				}
				break
			}
			if _, err := fmt.Fprintf(w, "%-*s  %c: %-10s ends %v\n",
				nameWidth, name, markFor(idx), ev.Label, ev.At); err != nil {
				return err
			}
		}
	}
	return nil
}

// maxMarks is the number of distinct segment marks: a–z, A–Z, 0–9.
const maxMarks = 62

// markFor returns the unique mark for segment idx, or '*' once the
// alphabet is exhausted (the legend then prints an explicit overflow
// line rather than colliding two phases on one letter).
func markFor(idx int) byte {
	switch {
	case idx < 26:
		return byte('a' + idx)
	case idx < 52:
		return byte('A' + idx - 26)
	case idx < maxMarks:
		return byte('0' + idx - 52)
	}
	return '*'
}
