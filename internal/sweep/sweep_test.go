package sweep

import (
	"errors"
	"testing"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/relation"
)

func testExperiment(t *testing.T, nr int) *core.Experiment {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = nr, nr
	e, err := core.NewExperiment(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMemoryDefaults(t *testing.T) {
	e := testExperiment(t, 2000)
	pts, err := Memory(e, join.Grace, []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].MemFrac >= pts[1].MemFrac {
		t.Error("fractions not increasing")
	}
	if Fig5Fractions(join.NestedLoops)[0] != 0.10 ||
		Fig5Fractions(join.SortMerge)[0] != 0.010 ||
		Fig5Fractions(join.Grace)[0] != 0.008 {
		t.Error("Fig5Fractions panels wrong")
	}
	if Fig5Fractions(join.Algorithm(9)) != nil {
		t.Error("unknown algorithm should give nil panel")
	}
}

func TestFig5Hooks(t *testing.T) {
	e := testExperiment(t, 2000)
	var instrumented, seen []float64
	regs := map[float64]*metrics.Registry{}
	pts, err := Fig5(e, join.Grace, Fig5Options{
		Fractions: []float64{0.05, 0.2},
		Instrument: func(frac float64) *metrics.Registry {
			instrumented = append(instrumented, frac)
			regs[frac] = metrics.New()
			return regs[frac]
		},
		OnPoint: func(c core.Comparison, reg *metrics.Registry) error {
			seen = append(seen, c.MemFrac)
			if reg != regs[c.MemFrac] {
				t.Errorf("point %.2f got the wrong registry", c.MemFrac)
			}
			if len(reg.Samples()) == 0 {
				t.Errorf("point %.2f ran uninstrumented", c.MemFrac)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(instrumented) != 2 || len(seen) != 2 {
		t.Fatalf("points %d, instrumented %d, seen %d", len(pts), len(instrumented), len(seen))
	}

	// An OnPoint error aborts the sweep.
	boom := errors.New("boom")
	_, err = Fig5(e, join.Grace, Fig5Options{
		Fractions: []float64{0.05, 0.2},
		OnPoint:   func(core.Comparison, *metrics.Registry) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("OnPoint error not propagated: %v", err)
	}
}

func TestContentionStaggeringWins(t *testing.T) {
	e := testExperiment(t, 8000)
	pts, err := Contention(e, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d variants", len(pts))
	}
	if !pts[0].Stagger || pts[0].SyncPhase {
		t.Error("first variant should be the paper's (staggered, unsynchronized)")
	}
	paper, naive := pts[0].Elapsed, pts[2].Elapsed
	if float64(naive) < 1.2*float64(paper) {
		t.Errorf("staggering advantage lost: paper %v, naive %v", paper, naive)
	}
	// Synchronization is nearly free (the paper measured <= 0.5%).
	synced := pts[1].Elapsed
	if rel := abs(float64(synced-paper)) / float64(paper); rel > 0.10 {
		t.Errorf("synchronization cost %.1f%%, want small", 100*rel)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSpeedupImproves(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 8000, 8000
	times, err := Speedup(cfg, spec, join.Grace, []int{1, 4}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if times[4] >= times[1] {
		t.Errorf("no speedup: D=1 %v, D=4 %v", times[1], times[4])
	}
	sp := float64(times[1]) / float64(times[4])
	if sp < 2 {
		t.Errorf("speedup at D=4 only %.2fx", sp)
	}
}

func TestScaleupNearFlat(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	times, err := Scaleup(cfg, spec, join.Grace, []int{1, 4}, 2000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(times[4]) / float64(times[1])
	if ratio > 1.6 {
		t.Errorf("scaleup degrades badly: D=1 %v, D=4 %v (ratio %.2f)",
			times[1], times[4], ratio)
	}
}

func TestDist(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 4000, 4000
	pts, err := Dist(cfg, spec, []join.Algorithm{join.Grace, join.SortMerge}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Dist != relation.Uniform {
		t.Error("first point should be uniform")
	}
	var hotSkew, uniSkew float64
	for _, pt := range pts {
		if len(pt.Measured) != 2 {
			t.Errorf("%v: %d measurements", pt.Dist, len(pt.Measured))
		}
		switch pt.Dist {
		case relation.Uniform:
			uniSkew = pt.Skew
		case relation.HotPartition:
			hotSkew = pt.Skew
		}
	}
	if hotSkew <= uniSkew {
		t.Errorf("hot-partition skew %.2f not above uniform %.2f", hotSkew, uniSkew)
	}
}
