// Package sweep is the reusable sweep layer behind the paper's
// evaluation experiments: the Fig. 5 memory sweeps (model vs simulated
// experiment per panel), the §5.1 contention ablation, the §9 speedup
// and scaleup studies, and the reference-distribution extension.
//
// cmd/sweep is a thin printer over this package, and
// internal/conformance re-runs scaled-down panels through it to assert
// the paper's qualitative claims as code, so the same sweep procedure
// backs the CLI, the benchmarks, and the conformance suite.
package sweep

import (
	"fmt"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// Fig5Fractions returns the memory fractions of the paper's Fig. 5 panel
// for the given algorithm.
func Fig5Fractions(alg join.Algorithm) []float64 {
	switch alg {
	case join.NestedLoops:
		return []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70}
	case join.SortMerge:
		return []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045, 0.050}
	case join.HybridHash:
		return []float64{0.008, 0.010, 0.015, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080}
	case join.Grace:
		// The paper's panel spans 0.02–0.08; lower fractions are
		// included because this machine's LRU pager thrashes later than
		// Dynix's simple replacement did, so the knee of Fig. 5(c)
		// appears below 0.02 here.
		return []float64{0.008, 0.010, 0.015, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080}
	}
	return nil
}

// Fig5Options tunes one panel run. The zero value selects the paper's
// fractions with no per-point instrumentation, running points across
// GOMAXPROCS host workers.
type Fig5Options struct {
	// Fractions overrides the panel's memory fractions (nil selects
	// Fig5Fractions for the algorithm).
	Fractions []float64
	// Parallelism is the number of host workers running points (see
	// Options.Parallelism; zero selects GOMAXPROCS). Whatever the
	// setting, results, Instrument, and OnPoint keep panel order and the
	// simulated numbers are identical to a sequential run.
	Parallelism int
	// Instrument, when non-nil, is called for each point and returns the
	// telemetry registry to attach to that point's run (nil attaches
	// none). Sequential sweeps interleave it with the points; parallel
	// sweeps call it for every fraction up front, in panel order, always
	// from the calling goroutine.
	Instrument func(frac float64) *metrics.Registry
	// OnPoint, when non-nil, is called after each point — in panel
	// order, from the calling goroutine — with its comparison and the
	// registry Instrument returned (nil without Instrument). Returning
	// an error aborts the sweep: no new points start, though points
	// already in flight on other workers run to completion.
	OnPoint func(c core.Comparison, reg *metrics.Registry) error
}

// Fig5 runs one Fig. 5 panel: Compare (simulate + predict) at every
// fraction of the panel, with optional per-point telemetry.
func Fig5(e *core.Experiment, alg join.Algorithm, opts Fig5Options) ([]core.Comparison, error) {
	fracs := opts.Fractions
	if fracs == nil {
		fracs = Fig5Fractions(alg)
	}
	o := Options{Parallelism: opts.Parallelism}
	n := len(fracs)
	out := make([]core.Comparison, n)
	regs := make([]*metrics.Registry, n)
	sequential := o.workers(n) == 1
	if opts.Instrument != nil && !sequential {
		for i, f := range fracs {
			regs[i] = opts.Instrument(f)
		}
	}
	err := forEach(o, n, func(i int) error {
		f := fracs[i]
		prm := e.ParamsForFraction(f)
		if opts.Instrument != nil && sequential {
			regs[i] = opts.Instrument(f)
		}
		prm.Metrics = regs[i]
		c, err := e.Compare(alg, prm)
		if err != nil {
			return fmt.Errorf("sweep: %v at %.3f: %w", alg, f, err)
		}
		out[i] = *c
		return nil
	}, func(i int) error {
		if opts.OnPoint == nil {
			return nil
		}
		return opts.OnPoint(out[i], regs[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Memory runs Compare across the given memory fractions (Fig. 5's
// procedure without instrumentation). A nil fracs selects the paper's
// panel for the algorithm.
func Memory(e *core.Experiment, alg join.Algorithm, fracs []float64, opts ...Options) ([]core.Comparison, error) {
	return Fig5(e, alg, Fig5Options{Fractions: fracs, Parallelism: opt(opts).Parallelism})
}

// ContentionVariant is one arm of the §5.1 staggering/synchronization
// ablation.
type ContentionVariant struct {
	Name               string
	Stagger, SyncPhase bool
}

// ContentionVariants returns the ablation's arms in presentation order;
// the first is the paper's configuration (the comparison baseline).
func ContentionVariants() []ContentionVariant {
	return []ContentionVariant{
		{Name: "staggered, unsynchronized (paper)", Stagger: true},
		{Name: "staggered, synchronized", Stagger: true, SyncPhase: true},
		{Name: "naive order, unsynchronized"},
	}
}

// ContentionPoint is one measured arm of the contention ablation.
type ContentionPoint struct {
	ContentionVariant
	Elapsed sim.Time
}

// Contention runs the §5.1 ablation for nested loops at the given memory
// fraction: pass-1 phase staggering on/off and per-phase synchronization
// on/off. The first returned point is the paper's variant.
func Contention(e *core.Experiment, frac float64, opts ...Options) ([]ContentionPoint, error) {
	vs := ContentionVariants()
	out := make([]ContentionPoint, len(vs))
	err := forEach(opt(opts), len(vs), func(i int) error {
		v := vs[i]
		prm := e.ParamsForFraction(frac)
		prm.Stagger = v.Stagger
		prm.SyncPhases = v.SyncPhase
		res, err := e.Measure(join.NestedLoops, prm)
		if err != nil {
			return fmt.Errorf("sweep: contention %q: %w", v.Name, err)
		}
		out[i] = ContentionPoint{ContentionVariant: v, Elapsed: res.Elapsed}
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Speedup runs the algorithm at several degrees of parallelism D with the
// problem size fixed, returning elapsed times keyed by D — the paper's
// planned speedup experiment (§9).
func Speedup(base machine.Config, spec relation.Spec, alg join.Algorithm,
	ds []int, memFrac float64, opts ...Options) (map[int]sim.Time, error) {
	times := make([]sim.Time, len(ds))
	err := forEach(opt(opts), len(ds), func(i int) error {
		cfg := base
		cfg.D = ds[i]
		sp := spec
		sp.D = ds[i]
		w, err := relation.Generate(sp)
		if err != nil {
			return err
		}
		mem := int64(memFrac * float64(int64(sp.NR)*int64(sp.RSize)))
		res, err := join.Request{
			Algorithm: alg,
			Config:    cfg,
			Params:    join.Params{Workload: w, MRproc: mem, Stagger: true},
		}.Run()
		if err != nil {
			return err
		}
		times[i] = res.Elapsed
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[int]sim.Time, len(ds))
	for i, d := range ds {
		out[d] = times[i]
	}
	return out, nil
}

// Scaleup grows the problem with D (NR = NS = perPartition·D) and returns
// elapsed times keyed by D; flat times mean perfect scaleup.
func Scaleup(base machine.Config, spec relation.Spec, alg join.Algorithm,
	ds []int, perPartition int, memFrac float64, opts ...Options) (map[int]sim.Time, error) {
	times := make([]sim.Time, len(ds))
	err := forEach(opt(opts), len(ds), func(i int) error {
		d := ds[i]
		cfg := base
		cfg.D = d
		sp := spec
		sp.D = d
		sp.NR = perPartition * d
		sp.NS = perPartition * d
		w, err := relation.Generate(sp)
		if err != nil {
			return err
		}
		mem := int64(memFrac * float64(int64(sp.NR)*int64(sp.RSize)))
		res, err := join.Request{
			Algorithm: alg,
			Config:    cfg,
			Params:    join.Params{Workload: w, MRproc: mem, Stagger: true},
		}.Run()
		if err != nil {
			return err
		}
		times[i] = res.Elapsed
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[int]sim.Time, len(ds))
	for i, d := range ds {
		out[d] = times[i]
	}
	return out, nil
}

// DistPoint is one row of the reference-distribution study (§9 future
// work: "changing the nature of the joining relations").
type DistPoint struct {
	Dist     relation.Distribution
	Skew     float64
	Measured map[join.Algorithm]sim.Time
}

// Dist runs every algorithm across reference distributions at the given
// memory fraction, reporting measured times and workload skew.
func Dist(cfg machine.Config, base relation.Spec, algs []join.Algorithm,
	memFrac float64, opts ...Options) ([]DistPoint, error) {
	specs := []relation.Spec{base}
	zipf := base
	zipf.Dist = relation.Zipf
	zipf.ZipfTheta = 1.5
	local := base
	local.Dist = relation.Local
	local.LocalFrac = 0.8
	hot := base
	hot.Dist = relation.HotPartition
	hot.HotFrac = 0.4
	specs = append(specs, zipf, local, hot)

	out := make([]DistPoint, len(specs))
	err := forEach(opt(opts), len(specs), func(i int) error {
		spec := specs[i]
		w, err := relation.Generate(spec)
		if err != nil {
			return err
		}
		mem := int64(memFrac * float64(int64(spec.NR)*int64(spec.RSize)))
		pt := DistPoint{Dist: spec.Dist, Skew: w.Skew(), Measured: map[join.Algorithm]sim.Time{}}
		wantSig, _ := w.JoinSignature()
		for _, alg := range algs {
			res, err := join.Request{
				Algorithm: alg,
				Config:    cfg,
				Params:    join.Params{Workload: w, MRproc: mem, Stagger: true},
			}.Run()
			if err != nil {
				return err
			}
			if res.Signature != wantSig {
				return fmt.Errorf("sweep: %v computed a wrong join under %v", alg, spec.Dist)
			}
			pt.Measured[alg] = res.Elapsed
		}
		out[i] = pt
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}
