package planner

import (
	"testing"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

func testCalib(t *testing.T) model.Calibration {
	t.Helper()
	return model.Calibrate(machine.DefaultConfig(), 800, 1)
}

func inputs(mem int64) model.Inputs {
	return model.Inputs{
		NR: 102400, NS: 102400, R: 128, S: 128, Ptr: 8, D: 4,
		MRproc: mem,
	}
}

func TestChooseSortsCheapestFirst(t *testing.T) {
	pl := New(testCalib(t), nil)
	choice, err := pl.Choose(inputs(512 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.Candidates) != len(DefaultAlgorithms) {
		t.Fatalf("%d candidates", len(choice.Candidates))
	}
	for i := 1; i < len(choice.Candidates); i++ {
		if choice.Candidates[i].Predicted < choice.Candidates[i-1].Predicted {
			t.Error("candidates not sorted")
		}
	}
	if choice.Best.Algorithm != choice.Candidates[0].Algorithm {
		t.Error("Best differs from first candidate")
	}
	if choice.Best.Prediction == nil || choice.Best.Predicted <= 0 {
		t.Error("missing prediction detail")
	}
}

func TestChoiceMatchesPaperOrdering(t *testing.T) {
	// At scarce memory hash-based plans beat sort-merge, which beats
	// nested loops (Fig 5's ordering).
	pl := New(testCalib(t), nil)
	choice, err := pl.Choose(inputs(int64(0.03 * 102400 * 128)))
	if err != nil {
		t.Fatal(err)
	}
	best := choice.Best.Algorithm
	if best != join.Grace && best != join.HybridHash {
		t.Errorf("best at scarce memory = %v, want a hash-based plan", best)
	}
	worst := choice.Candidates[len(choice.Candidates)-1].Algorithm
	if worst != join.NestedLoops {
		t.Errorf("worst at scarce memory = %v, want nested-loops", worst)
	}
}

func TestNestedLoopsWinsWithAmpleMemory(t *testing.T) {
	pl := New(testCalib(t), nil)
	choice, err := pl.Choose(inputs(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := choice.Best.Algorithm; got != join.NestedLoops && got != join.HybridHash {
		t.Errorf("best with ample memory = %v, want an immediate-join plan", got)
	}
}

func TestCrossoversExist(t *testing.T) {
	pl := New(testCalib(t), []join.Algorithm{join.NestedLoops, join.Grace})
	xs, err := pl.Crossovers(inputs(0), 64<<10, 16<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) == 0 {
		t.Fatal("no crossover between grace and nested loops across the memory range")
	}
	// The boundary must hand over from the hash plan to nested loops as
	// memory grows.
	last := xs[len(xs)-1]
	if last.After != join.NestedLoops {
		t.Errorf("final winner = %v, want nested-loops", last.After)
	}
}

func TestErrors(t *testing.T) {
	pl := New(testCalib(t), []join.Algorithm{join.Algorithm(42)})
	if _, err := pl.Choose(inputs(1 << 20)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	empty := New(testCalib(t), []join.Algorithm{})
	if _, err := empty.Choose(inputs(1 << 20)); err == nil {
		t.Error("empty candidate set accepted")
	}
	good := New(testCalib(t), nil)
	if _, err := good.Crossovers(inputs(0), 0, 10, 1); err == nil {
		t.Error("bad sweep bounds accepted")
	}
}

func TestPointerPlansBeatTraditionalAnalytically(t *testing.T) {
	// The model itself should show the pointer advantage the paper
	// claims: with the traditional baseline added as a candidate, a
	// pointer-based plan still wins at any memory level.
	pl := New(testCalib(t), append(append([]join.Algorithm{}, DefaultAlgorithms...), join.TraditionalGrace))
	for _, mem := range []int64{256 << 10, 4 << 20} {
		choice, err := pl.Choose(inputs(mem))
		if err != nil {
			t.Fatal(err)
		}
		if choice.Best.Algorithm == join.TraditionalGrace {
			t.Errorf("mem=%d: traditional plan won", mem)
		}
	}
}

func TestChooseForDerivesInputsFromRequest(t *testing.T) {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 8000, 8000
	w := relation.MustGenerate(spec)
	req := join.Request{
		Config: machine.DefaultConfig(),
		Params: join.Params{Workload: w, MRproc: 96 << 10, K: 7},
	}
	in, err := InputsFor(req)
	if err != nil {
		t.Fatal(err)
	}
	if in.NR != 8000 || in.D != spec.D || in.MRproc != 96<<10 || in.K != 7 {
		t.Errorf("derived inputs wrong: %+v", in)
	}
	if in.Skew != w.Skew() {
		t.Errorf("skew not measured from workload: %g vs %g", in.Skew, w.Skew())
	}
	if in.DistinctS <= 0 {
		t.Errorf("DistinctS not derived: %d", in.DistinctS)
	}

	pl := New(testCalib(t), nil)
	choice, err := pl.ChooseFor(req)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pl.Choose(in)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Best.Algorithm != direct.Best.Algorithm ||
		choice.Best.Predicted != direct.Best.Predicted {
		t.Errorf("ChooseFor disagrees with Choose on the same inputs: %v vs %v",
			choice.Best, direct.Best)
	}

	// A request without a workload cannot be costed.
	if _, err := pl.ChooseFor(join.Request{Config: machine.DefaultConfig()}); err == nil {
		t.Error("workload-less request accepted")
	}
}

// regimeReq builds a real generated-workload request at the given
// per-process memory, the same shape the query service hands ChooseFor.
func regimeReq(t *testing.T, mrproc int64) join.Request {
	t.Helper()
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 8000, 8000
	w := relation.MustGenerate(spec)
	return join.Request{
		Config: machine.DefaultConfig(),
		Params: join.Params{Workload: w, MRproc: mrproc},
	}
}

// TestChooseForRegimes pins the planner's decision regions on a real
// workload: per-process memory is the axis the paper's Fig. 5 sweeps,
// and the winning plan must move from external partitioned algorithms
// at scarce memory to immediate-join plans when the relation fits.
func TestChooseForRegimes(t *testing.T) {
	pl := New(testCalib(t), nil)
	relBytes := int64(8000 * relation.DefaultSpec().RSize)
	cases := []struct {
		name   string
		mrproc int64
		want   map[join.Algorithm]bool // acceptable best plans
		worst  join.Algorithm          // required most-expensive plan, if any
	}{
		{
			// A few percent of |R|: only external plans are viable and
			// the planner must not pick nested loops, whose working set
			// cannot fit.
			name:   "tiny memory picks an external plan",
			mrproc: relBytes / 50,
			want:   map[join.Algorithm]bool{join.Grace: true, join.HybridHash: true, join.SortMerge: true},
			worst:  join.NestedLoops,
		},
		{
			// Around 10% of |R| the hash-partitioned plans take over
			// (grace, or hybrid once part of the table is resident).
			name:   "moderate memory picks a hash-partitioned plan",
			mrproc: relBytes / 10,
			want:   map[join.Algorithm]bool{join.Grace: true, join.HybridHash: true},
		},
		{
			// Memory beyond |R|: an immediate-join plan wins (nested
			// loops, or hybrid with everything resident) and no external
			// sort can be cheapest.
			name:   "abundant memory picks an immediate plan",
			mrproc: 4 * relBytes,
			want:   map[join.Algorithm]bool{join.NestedLoops: true, join.HybridHash: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			choice, err := pl.ChooseFor(regimeReq(t, tc.mrproc))
			if err != nil {
				t.Fatal(err)
			}
			if !tc.want[choice.Best.Algorithm] {
				t.Errorf("mrproc=%d: best = %v, want one of %v",
					tc.mrproc, choice.Best.Algorithm, tc.want)
			}
			if tc.worst != 0 {
				got := choice.Candidates[len(choice.Candidates)-1].Algorithm
				if got != tc.worst {
					t.Errorf("mrproc=%d: most expensive = %v, want %v", tc.mrproc, got, tc.worst)
				}
			}
		})
	}
}

// TestSortedInputsFavorSortMerge: telling the planner the relation is
// already in long runs (IRun = NR, i.e. pass 0 produces one run and
// merging disappears) must strictly cheapen sort-merge while leaving
// the other plans untouched — and at scarce memory sort-merge must win
// outright.
func TestSortedInputsFavorSortMerge(t *testing.T) {
	pl := New(testCalib(t), nil)
	relBytes := int64(8000 * relation.DefaultSpec().RSize)
	mrproc := relBytes / 50

	unsorted, err := pl.ChooseFor(regimeReq(t, mrproc))
	if err != nil {
		t.Fatal(err)
	}
	req := regimeReq(t, mrproc)
	req.IRun = 8000 // presorted: the whole relation is one initial run
	sorted, err := pl.ChooseFor(req)
	if err != nil {
		t.Fatal(err)
	}

	cost := func(c *Choice, alg join.Algorithm) sim.Time {
		for _, cd := range c.Candidates {
			if cd.Algorithm == alg {
				return cd.Predicted
			}
		}
		t.Fatalf("%v not among candidates", alg)
		return 0
	}
	if s, u := cost(sorted, join.SortMerge), cost(unsorted, join.SortMerge); s > u {
		t.Errorf("sorted input made sort-merge dearer: %v > %v", s, u)
	}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.Grace, join.HybridHash} {
		if s, u := cost(sorted, alg), cost(unsorted, alg); s != u {
			t.Errorf("IRun leaked into %v: %v != %v", alg, s, u)
		}
	}
	if sorted.Best.Algorithm != join.SortMerge {
		t.Errorf("scarce memory + presorted runs: best = %v, want sort-merge", sorted.Best.Algorithm)
	}
}

// TestIndexAlgorithmsPickIndexPath: with the widened candidate set an
// indexed store's planner must route the dense-probe regime (the
// benchmarked `mmdb join -alg auto` workload) at an index plan, while
// the default set — what an unindexed store's front-end uses — never
// proposes one.
func TestIndexAlgorithmsPickIndexPath(t *testing.T) {
	calib := testCalib(t)
	in := model.Inputs{
		NR: 20480, NS: 20480, R: 128, S: 128, Ptr: 8, D: 4, Skew: 1,
		MRproc: 1 << 20,
	}
	idx := New(calib, IndexAlgorithms)
	choice, err := idx.Choose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.Candidates) != len(IndexAlgorithms) {
		t.Fatalf("%d candidates, want %d", len(choice.Candidates), len(IndexAlgorithms))
	}
	if best := choice.Best.Algorithm; best != join.IndexNL && best != join.IndexMerge {
		t.Errorf("best with indexes = %v, want an index plan", best)
	}

	def, err := New(calib, nil).Choose(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range def.Candidates {
		if cand.Algorithm == join.IndexNL || cand.Algorithm == join.IndexMerge {
			t.Errorf("default candidate set proposes %v", cand.Algorithm)
		}
	}
}
