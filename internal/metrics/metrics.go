// Package metrics is a lightweight observability registry for the
// simulated machine: counters, callback gauges, sim-time histograms, a
// phase-event stream unified with internal/trace, and a virtual-time
// sampler that snapshots every registered gauge on a fixed tick. The
// collected telemetry exports as JSONL or CSV (see export.go).
//
// All instrumentation is zero-cost when no registry is attached: a nil
// *Registry hands out nil *Counter/*Histogram values whose methods are
// no-ops, in the same style as trace.Log. Hot paths therefore record
// unconditionally and pay only a nil check when observability is off.
package metrics

import (
	"mmjoin/internal/sim"
)

// Counter is a monotonically increasing event count. A nil *Counter is a
// valid no-op sink.
type Counter struct {
	name string
	n    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; nil counters ignore it.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// gauge is a named callback read at each sampler tick.
type gauge struct {
	name string
	fn   func() float64
}

// dynamic emits a variable set of gauge values per tick (e.g. one pair
// per live process) without registering each name up front.
type dynamic func(emit func(name string, v float64))

// Sample is one sampler tick: every gauge value keyed by name. Gauges
// registered after a tick simply appear in later samples, so rows may be
// ragged across a run.
type Sample struct {
	At     sim.Time
	Values map[string]float64
}

// Event is one phase mark mirrored from the trace layer.
type Event struct {
	At    sim.Time
	Proc  string
	Label string
}

// Registry collects all instruments of one run. The zero value is not
// used directly; create one with New. A nil *Registry is a valid no-op.
type Registry struct {
	counters []*Counter
	gauges   []gauge
	dynamics []dynamic
	hists    []*Histogram
	samples  []Sample
	events   []Event
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Counter registers a named counter. A nil registry returns a nil
// (no-op) counter, so callers can register unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers a named callback sampled at each tick.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gauges = append(r.gauges, gauge{name: name, fn: fn})
}

// Dynamic registers a callback that emits a variable set of gauge values
// per tick.
func (r *Registry) Dynamic(fn func(emit func(name string, v float64))) {
	if r == nil {
		return
	}
	r.dynamics = append(r.dynamics, fn)
}

// Histogram registers a named sim-time histogram. A nil registry returns
// a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// Event records a phase begin/end mark; nil registries ignore it.
func (r *Registry) Event(at sim.Time, proc, label string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{At: at, Proc: proc, Label: label})
}

// Sample snapshots every registered gauge and dynamic emitter at virtual
// time at, appending one row to the time series.
func (r *Registry) Sample(at sim.Time) {
	if r == nil {
		return
	}
	vals := make(map[string]float64, len(r.gauges))
	for _, g := range r.gauges {
		vals[g.name] = g.fn()
	}
	emit := func(name string, v float64) { vals[name] = v }
	for _, d := range r.dynamics {
		d(emit)
	}
	r.samples = append(r.samples, Sample{At: at, Values: vals})
}

// GaugeValues reads every registered gauge and dynamic emitter once and
// returns the values keyed by name, without appending to the sampled
// time series — the form wall-clock consumers (a server's /stats) use,
// where there is no virtual timeline to sample against.
func (r *Registry) GaugeValues() map[string]float64 {
	if r == nil {
		return nil
	}
	vals := make(map[string]float64, len(r.gauges))
	for _, g := range r.gauges {
		vals[g.name] = g.fn()
	}
	for _, d := range r.dynamics {
		d(func(name string, v float64) { vals[name] = v })
	}
	return vals
}

// Samples returns the collected time series.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samples
}

// Events returns the collected phase events in record order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Counters returns the registered counters in registration order.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	return r.counters
}

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	return r.hists
}

// DefaultTick is the sampling period used when none is configured.
const DefaultTick = 100 * sim.Millisecond

// Sampler is the handle of a running virtual-time sampling process.
// A nil *Sampler is a valid no-op (Stop does nothing).
type Sampler struct {
	stopped bool
}

// StartSampler spawns a kernel process that calls r.Sample every tick of
// virtual time until Stop. The caller MUST stop the sampler once the
// simulated work completes (machine.Shutdown does), or the sampling
// process keeps the simulation alive forever.
func (r *Registry) StartSampler(k *sim.Kernel, tick sim.Time) *Sampler {
	if r == nil || k == nil {
		return nil
	}
	if tick <= 0 {
		tick = DefaultTick
	}
	s := &Sampler{}
	k.Spawn("metrics.sampler", func(p *sim.Proc) {
		for !s.stopped {
			r.Sample(p.Now())
			p.Advance(tick)
		}
	})
	return s
}

// Stop makes the sampling process exit at its next wake-up.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopped = true
}
