package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// acquireAsync starts an Acquire on its own goroutine and returns a
// channel carrying its result.
func acquireAsync(a *Admission, ctx context.Context, bytes int64) chan error {
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, bytes) }()
	return done
}

func waitQueued(t *testing.T, a *Admission, depth int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().QueueDepth < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d: %+v", depth, a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionImmediateGrant(t *testing.T) {
	a := NewAdmission(100, 4)
	if err := a.Acquire(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.UsedBytes != 100 || st.Admitted != 2 || st.Queued != 0 {
		t.Fatalf("stats %+v", st)
	}
	a.Release(60)
	a.Release(40)
	if st := a.Stats(); st.UsedBytes != 0 {
		t.Fatalf("bytes leaked: %+v", st)
	}
}

func TestAdmissionFIFOQueueing(t *testing.T) {
	a := NewAdmission(100, 4)
	if err := a.Acquire(context.Background(), 30); err != nil {
		t.Fatal(err)
	}
	// A large waiter at the head must block a later small one even while
	// the small one would fit: strict FIFO prevents starvation.
	big := acquireAsync(a, context.Background(), 80) // 30+80 > 100: waits
	waitQueued(t, a, 1)
	small := acquireAsync(a, context.Background(), 10) // would fit, must wait
	waitQueued(t, a, 2)
	select {
	case err := <-small:
		t.Fatalf("small waiter overtook the head (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	a.Release(30)
	if err := <-big; err != nil {
		t.Fatalf("head waiter: %v", err)
	}
	if err := <-small; err != nil {
		t.Fatalf("second waiter: %v", err)
	}
	a.Release(80)
	a.Release(10)
	st := a.Stats()
	if st.UsedBytes != 0 || st.Queued != 2 || st.Admitted != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdmissionSaturation(t *testing.T) {
	a := NewAdmission(100, 1)
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	queued := acquireAsync(a, context.Background(), 50)
	waitQueued(t, a, 1)
	if err := a.Acquire(context.Background(), 10); !errors.Is(err, ErrSaturated) {
		t.Fatalf("full queue: err = %v, want ErrSaturated", err)
	}
	a.Release(100)
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	a.Release(50)
	if st := a.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdmissionRejectsBadGrants(t *testing.T) {
	a := NewAdmission(100, 4)
	if err := a.Acquire(context.Background(), 101); !errors.Is(err, ErrGrantTooLarge) {
		t.Fatalf("over-budget grant: %v", err)
	}
	if err := a.Acquire(context.Background(), 0); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("zero grant: %v", err)
	}
	if err := a.Acquire(context.Background(), -5); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("negative grant: %v", err)
	}
}

func TestAdmissionCancellation(t *testing.T) {
	a := NewAdmission(100, 4)
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiting := acquireAsync(a, ctx, 50)
	waitQueued(t, a, 1)
	cancel()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v", err)
	}
	st := a.Stats()
	if st.QueueDepth != 0 || st.Canceled != 1 {
		t.Fatalf("slot not freed: %+v", st)
	}
	// The freed slot must not leave later waiters stuck.
	next := acquireAsync(a, context.Background(), 100)
	waitQueued(t, a, 1)
	a.Release(100)
	if err := <-next; err != nil {
		t.Fatal(err)
	}
	a.Release(100)
	if st := a.Stats(); st.UsedBytes != 0 {
		t.Fatalf("bytes leaked: %+v", st)
	}
}

// TestAdmissionInvariantUnderStress hammers the controller from many
// goroutines and asserts the budget was never exceeded (peak tracking is
// updated under the same lock as the charge, so PeakUsedBytes is exact).
func TestAdmissionInvariantUnderStress(t *testing.T) {
	const budget = 1 << 20
	a := NewAdmission(budget, 256)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				bytes := int64(1 + rng.Intn(budget/4))
				ctx := context.Background()
				if rng.Intn(4) == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
					defer cancel()
				}
				if err := a.Acquire(ctx, bytes); err != nil {
					continue
				}
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				}
				a.Release(bytes)
			}
		}(int64(g))
	}
	wg.Wait()
	st := a.Stats()
	if st.UsedBytes != 0 {
		t.Fatalf("bytes leaked after drain: %+v", st)
	}
	if st.PeakUsedBytes > budget {
		t.Fatalf("budget exceeded: peak %d > %d", st.PeakUsedBytes, budget)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("waiters stranded: %+v", st)
	}
}

// TestAdmissionCancelledHeadUnblocksQueue: cancelling an ungranted
// queue-head waiter must immediately admit smaller waiters behind it
// that already fit, rather than leaving them blocked until the next
// Release.
func TestAdmissionCancelledHeadUnblocksQueue(t *testing.T) {
	a := NewAdmission(100, 4)
	if err := a.Acquire(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	head := acquireAsync(a, ctx, 50) // blocked: 60+50 > 100
	waitQueued(t, a, 1)
	behind := acquireAsync(a, context.Background(), 30) // fits, but FIFO-blocked
	waitQueued(t, a, 2)

	cancel()
	if err := <-head; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled head: %v", err)
	}
	select {
	case err := <-behind:
		if err != nil {
			t.Fatalf("unblocked waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter behind cancelled head stayed blocked with budget available")
	}
	if st := a.Stats(); st.UsedBytes != 90 || st.Canceled != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats %+v", st)
	}
}
