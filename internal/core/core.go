// Package core is the library's top-level API: it assembles a workload,
// calibrates the machine's measured functions, executes the parallel
// pointer-based join algorithms on the simulated memory-mapped machine,
// evaluates the analytical model for the same configuration, and compares
// the two — the paper's model-validation methodology (§8) as a reusable
// component. The sweep procedures built on it (the Fig. 5 panels, the
// contention ablation, speedup/scaleup, the distribution study) live in
// internal/sweep.
package core

import (
	"fmt"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/planner"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// Experiment couples a machine configuration, a generated workload, and
// the machine's calibration. It is safe for sequential reuse across many
// Measure/Predict calls (each Measure builds a fresh simulated machine).
type Experiment struct {
	Cfg   machine.Config
	Spec  relation.Spec
	W     *relation.Workload
	Calib model.Calibration
}

// CalibrationOps is the default calibration effort (random I/Os measured
// per band size).
const CalibrationOps = 2000

// NewExperiment generates the workload and calibrates the machine.
func NewExperiment(cfg machine.Config, spec relation.Spec) (*Experiment, error) {
	if cfg.D != spec.D {
		return nil, fmt.Errorf("core: machine D=%d but workload D=%d", cfg.D, spec.D)
	}
	w, err := relation.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Cfg:   cfg,
		Spec:  spec,
		W:     w,
		Calib: model.Calibrate(cfg, CalibrationOps, spec.Seed),
	}, nil
}

// MustNewExperiment is NewExperiment, panicking on error.
func MustNewExperiment(cfg machine.Config, spec relation.Spec) *Experiment {
	e, err := NewExperiment(cfg, spec)
	if err != nil {
		panic(err)
	}
	return e
}

// TotalRBytes returns |R|·r, the denominator of the paper's memory axis.
func (e *Experiment) TotalRBytes() int64 {
	return int64(e.Spec.NR) * int64(e.Spec.RSize)
}

// ParamsForFraction builds join parameters giving each Rproc (and Sproc)
// frac·|R|·r bytes of private memory — one point on the Fig. 5 x-axis.
func (e *Experiment) ParamsForFraction(frac float64) join.Params {
	return join.Params{
		Workload: e.W,
		MRproc:   int64(frac * float64(e.TotalRBytes())),
		Stagger:  true,
	}
}

// Measure executes the algorithm on a fresh simulated machine.
func (e *Experiment) Measure(alg join.Algorithm, prm join.Params) (*join.Result, error) {
	return e.Request(alg, prm).Run()
}

// Request assembles the fully-specified join request for this
// experiment's machine, defaulting the workload to the experiment's.
func (e *Experiment) Request(alg join.Algorithm, prm join.Params) join.Request {
	if prm.Workload == nil {
		prm.Workload = e.W
	}
	return join.Request{Algorithm: alg, Config: e.Cfg, Params: prm}
}

// Inputs converts join parameters into model inputs, using the measured
// workload skew (delegating to planner.InputsFor, the canonical
// request-to-model bridge).
func (e *Experiment) Inputs(prm join.Params) model.Inputs {
	in, err := planner.InputsFor(e.Request(0, prm))
	if err != nil {
		// Unreachable: Request always attaches the experiment's workload.
		panic(err)
	}
	return in
}

// Predict evaluates the analytical model for the same configuration.
func (e *Experiment) Predict(alg join.Algorithm, prm join.Params) (*model.Prediction, error) {
	in := e.Inputs(prm)
	switch alg {
	case join.NestedLoops:
		return model.PredictNestedLoops(e.Calib, in)
	case join.SortMerge:
		return model.PredictSortMerge(e.Calib, in)
	case join.Grace:
		return model.PredictGrace(e.Calib, in)
	case join.HybridHash:
		return model.PredictHybridHash(e.Calib, in)
	case join.TraditionalGrace:
		return model.PredictTraditionalGrace(e.Calib, in)
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", alg)
}

// Comparison is one model-vs-experiment data point.
type Comparison struct {
	Algorithm  join.Algorithm
	MemFrac    float64 // MRproc / (|R|·r)
	Measured   sim.Time
	Predicted  sim.Time
	Result     *join.Result
	Prediction *model.Prediction
}

// RelError returns (predicted−measured)/measured.
func (c Comparison) RelError() float64 {
	if c.Measured == 0 {
		return 0
	}
	return float64(c.Predicted-c.Measured) / float64(c.Measured)
}

// Compare measures and predicts one configuration.
func (e *Experiment) Compare(alg join.Algorithm, prm join.Params) (*Comparison, error) {
	res, err := e.Measure(alg, prm)
	if err != nil {
		return nil, err
	}
	pred, err := e.Predict(alg, prm)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Algorithm:  alg,
		MemFrac:    float64(prm.MRproc) / float64(e.TotalRBytes()),
		Measured:   res.Elapsed,
		Predicted:  pred.Total,
		Result:     res,
		Prediction: pred,
	}, nil
}

// The Fig. 5 panel fractions and the sweep procedures built on Compare
// (memory sweeps, the §5.1 contention ablation, speedup/scaleup, the
// distribution study) live in internal/sweep.
