// Package machine assembles the simulated shared-memory multiprocessor of
// the paper's model: P processes each with a private memory and a shared
// memory for communication, D disks allowing parallel I/O, measured
// per-byte memory-transfer costs MT{pp,ps,sp,ss}, a context-switch cost
// CS, and per-operation CPU costs (map, hash, and the heap primitives
// compare, swap, transfer).
package machine

import (
	"fmt"

	"mmjoin/internal/disk"
	"mmjoin/internal/metrics"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
)

// Config holds the measured machine parameters of the paper's §3 model.
// Defaults approximate a 1996 Sequent Symmetry class machine.
type Config struct {
	D     int         // parallel I/O controllers (and R/S process pairs)
	Disk  disk.Config // per-drive parameters
	Setup seg.SetupCost

	CS sim.Time // context switch

	// Per-byte combined read/write transfer costs, in ns/byte:
	// private→private, private→shared, shared→private, shared→shared.
	MTpp, MTps, MTsp, MTss float64

	MapCost  sim.Time // compute containing S partition from a pointer
	HashCost sim.Time // hash a join attribute

	CompareCost  sim.Time // compare two heap elements
	SwapCost     sim.Time // swap two heap elements
	TransferCost sim.Time // move an element to or from a heap

	HeapPtrBytes int // hp: bytes per element in a heap of pointers
}

// DefaultConfig returns parameters on the scale of the paper's testbed
// (10×i386 Sequent Symmetry, Fujitsu drives, 4K pages).
func DefaultConfig() Config {
	return Config{
		D:     4,
		Disk:  disk.DefaultConfig(),
		Setup: seg.DefaultSetupCost(),
		CS:    150 * sim.Microsecond,
		MTpp:  250, MTps: 300, MTsp: 300, MTss: 350, // ns per byte
		MapCost:      15 * sim.Microsecond,
		HashCost:     25 * sim.Microsecond,
		CompareCost:  5 * sim.Microsecond,
		SwapCost:     8 * sim.Microsecond,
		TransferCost: 6 * sim.Microsecond,
		HeapPtrBytes: 8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.D < 1 {
		return fmt.Errorf("machine: D=%d must be >= 1", c.D)
	}
	if c.Disk.BlockBytes <= 0 {
		return fmt.Errorf("machine: disk BlockBytes %d", c.Disk.BlockBytes)
	}
	if c.HeapPtrBytes <= 0 {
		return fmt.Errorf("machine: HeapPtrBytes %d", c.HeapPtrBytes)
	}
	return nil
}

// B returns the virtual-memory page size in bytes.
func (c Config) B() int { return c.Disk.BlockBytes }

// TransferPP returns the time to move n bytes private→private.
func (c Config) TransferPP(n int64) sim.Time { return sim.Time(float64(n) * c.MTpp) }

// TransferPS returns the time to move n bytes private→shared.
func (c Config) TransferPS(n int64) sim.Time { return sim.Time(float64(n) * c.MTps) }

// TransferSP returns the time to move n bytes shared→private.
func (c Config) TransferSP(n int64) sim.Time { return sim.Time(float64(n) * c.MTsp) }

// Machine is an assembled simulated machine: one kernel, D disks with
// their segment managers, and a shared mapping system.
type Machine struct {
	Cfg  Config
	K    *sim.Kernel
	Sys  *seg.System
	Disk []*disk.Disk
	Mgr  []*seg.Manager

	sampler *metrics.Sampler
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, K: sim.NewKernel(), Sys: seg.NewSystem(cfg.Setup)}
	for i := 0; i < cfg.D; i++ {
		d, err := disk.New(m.K, fmt.Sprintf("disk%d", i), cfg.Disk)
		if err != nil {
			return nil, err
		}
		m.Disk = append(m.Disk, d)
		m.Mgr = append(m.Mgr, seg.NewManager(m.Sys, d))
	}
	return m, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// StartMetrics attaches a telemetry registry to the machine: every drive
// is instrumented, a dynamic per-process busy/blocked gauge group is
// registered, and a virtual-time sampler process is spawned with the
// given tick (0 selects metrics.DefaultTick). Shutdown stops the
// sampler. A nil registry is a no-op.
func (m *Machine) StartMetrics(reg *metrics.Registry, tick sim.Time) {
	if reg == nil {
		return
	}
	for _, d := range m.Disk {
		d.Instrument(reg)
	}
	k := m.K
	reg.Dynamic(func(emit func(string, float64)) {
		for _, p := range k.Procs() {
			if p.Name() == "metrics.sampler" {
				continue
			}
			emit("proc."+p.Name()+".busy_s", p.Busy.Seconds())
			emit("proc."+p.Name()+".blocked_s", p.Blocked.Seconds())
		}
	})
	m.sampler = reg.StartSampler(m.K, tick)
}

// Shutdown drains all pageout queues and stops the daemons, including
// the metrics sampler if one is attached. It must be called from a
// simulated process once all work is complete.
func (m *Machine) Shutdown(p *sim.Proc) {
	for _, d := range m.Disk {
		d.Drain(p)
	}
	for _, d := range m.Disk {
		d.Close()
	}
	m.sampler.Stop()
}

// DiskStats sums the drives' counters.
func (m *Machine) DiskStats() disk.Stats {
	var total disk.Stats
	for _, d := range m.Disk {
		s := d.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.SeekTime += s.SeekTime
		total.RotationTime += s.RotationTime
		total.TransferTime += s.TransferTime
		total.OverheadTime += s.OverheadTime
		total.ServiceSum += s.ServiceSum
		total.Stalls += s.Stalls
	}
	return total
}
