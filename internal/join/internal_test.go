package join

import (
	"testing"
	"testing/quick"

	"mmjoin/internal/machine"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

func testRunner(t *testing.T, nr int) *runner {
	t.Helper()
	m, err := machine.New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	prm := smallParams(smallWorkload(nr, 77), 64<<10)
	if err := prm.withDefaults(m.Cfg); err != nil {
		t.Fatal(err)
	}
	return newRunner(m, prm)
}

func drainMachine(r *runner) {
	for _, d := range r.m.Disk {
		d.Close()
	}
	r.m.K.Run()
}

func TestGCap(t *testing.T) {
	r := testRunner(t, 400)
	// G = one 4K page; triple = r + ptr + s = 128+8+128 = 264 bytes.
	if got := r.gCap(); got != 4096/264 {
		t.Errorf("gCap = %d, want %d", got, 4096/264)
	}
	r.prm.G = 100 // smaller than one triple: at least 1
	if got := r.gCap(); got != 1 {
		t.Errorf("tiny G: gCap = %d", got)
	}
	drainMachine(r)
}

func TestSubLayoutSkipsOwnPartition(t *testing.T) {
	r := testRunner(t, 400)
	counts := r.w.SubCounts()
	offsets, total := r.subLayout(1, counts)
	if offsets[1] != -1 {
		t.Errorf("own partition offset = %d, want -1", offsets[1])
	}
	// Offsets are increasing and total covers all foreign objects.
	var sum int64
	prev := int64(-1)
	for j := 0; j < r.d; j++ {
		if j == 1 {
			continue
		}
		if offsets[j] <= prev {
			t.Errorf("offsets not increasing at %d", j)
		}
		prev = offsets[j]
		sum += int64(counts[1][j]) * r.r
	}
	if total != sum {
		t.Errorf("total = %d, want %d", total, sum)
	}
	drainMachine(r)
}

func TestPhasePartitionCoversAllPartners(t *testing.T) {
	r := testRunner(t, 400)
	for _, stagger := range []bool{true, false} {
		r.prm.Stagger = stagger
		for i := 0; i < r.d; i++ {
			seen := map[int]bool{}
			for phase := 1; phase < r.d; phase++ {
				j := r.phasePartition(i, phase)
				if j == i {
					t.Fatalf("stagger=%v: Rproc%d visits itself in phase %d", stagger, i, phase)
				}
				if seen[j] {
					t.Fatalf("stagger=%v: Rproc%d visits %d twice", stagger, i, j)
				}
				seen[j] = true
			}
			if len(seen) != r.d-1 {
				t.Fatalf("stagger=%v: Rproc%d visited %d partners", stagger, i, len(seen))
			}
		}
	}
	// Staggered: no two Rprocs share a partition within a phase.
	r.prm.Stagger = true
	for phase := 1; phase < r.d; phase++ {
		used := map[int]bool{}
		for i := 0; i < r.d; i++ {
			j := r.phasePartition(i, phase)
			if used[j] {
				t.Fatalf("phase %d: partition %d visited twice", phase, j)
			}
			used[j] = true
		}
	}
	drainMachine(r)
}

func TestGBufferFlushesAtCapacity(t *testing.T) {
	r := testRunner(t, 400)
	r.spawnSprocs()
	capacity := r.gCap()
	adds := capacity + 2
	r.m.K.Spawn("driver", func(p *sim.Proc) {
		gb := r.newGBuffer(0, 0)
		for n := 0; n < adds; n++ {
			gb.add(p, 0, int32(n), relation.SPtr{Part: 0, Index: int32(n)})
		}
		// One flush must have happened automatically at capacity.
		if len(gb.pend) != adds-capacity {
			t.Errorf("pending = %d, want %d", len(gb.pend), adds-capacity)
		}
		gb.flush(p)
		if len(gb.pend) != 0 {
			t.Errorf("pending after flush = %d", len(gb.pend))
		}
		gb.flush(p) // empty flush is a no-op
		r.stopSprocs(p)
		r.m.Shutdown(p)
	})
	r.m.K.Run()
	if r.res.Pairs != int64(adds) {
		t.Errorf("pairs = %d, want %d", r.res.Pairs, adds)
	}
	// Two exchanges happened: 2 dispatch + 2 resume context switches.
	if r.res.ContextSwitches != 4 {
		t.Errorf("context switches = %d, want 4", r.res.ContextSwitches)
	}
}

// Property: the staggered schedule is a Latin-square-like permutation
// for any D: each phase is a permutation of partitions with no fixed
// points across all Rprocs.
func TestQuickStaggerPermutation(t *testing.T) {
	f := func(rawD uint8) bool {
		d := int(rawD)%12 + 2
		for phase := 1; phase < d; phase++ {
			used := make([]bool, d)
			for i := 0; i < d; i++ {
				j := (i + phase) % d
				if j == i || used[j] {
					return false
				}
				used[j] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
