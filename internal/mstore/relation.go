package mstore

import (
	"encoding/binary"
	"fmt"
)

// SPtr is a cross-segment virtual pointer to an object of S: the S
// partition number and the object's offset within that partition's
// segment. It is stored in the first 12 bytes of every R object and is
// the join attribute of the pointer-based joins. Inter-segment pointers
// like this are the small minority that exact positioning cannot make
// free; they are stable because they name a partition, not an address.
type SPtr struct {
	Part uint32
	Off  Ptr
}

const sptrBytes = 12

// EncodeSPtr serializes p into buf (at least sptrBytes long).
func EncodeSPtr(buf []byte, p SPtr) {
	binary.LittleEndian.PutUint32(buf, p.Part)
	binary.LittleEndian.PutUint64(buf[4:], uint64(p.Off))
}

// DecodeSPtr reads a pointer serialized by EncodeSPtr.
func DecodeSPtr(buf []byte) SPtr {
	return SPtr{
		Part: binary.LittleEndian.Uint32(buf),
		Off:  Ptr(binary.LittleEndian.Uint64(buf[4:])),
	}
}

// Relation is a fixed-record heap inside a segment:
//
//	header: count u64, capacity u64, objSize u32, pad u32, data Ptr
//
// Objects are dense, so object i lives at data + i·objSize; both index
// and offset addressing work.
type Relation struct {
	seg  *Segment
	hdr  Ptr
	data Ptr
	size int64 // object size
}

const relHdrBytes = 32

// CreateRelation allocates a relation for capacity objects of objSize
// bytes and installs it as the segment root.
func CreateRelation(seg *Segment, objSize int, capacity int) (*Relation, error) {
	if objSize < sptrBytes {
		return nil, fmt.Errorf("mstore: object size %d below pointer size %d", objSize, sptrBytes)
	}
	hdr, err := seg.Alloc(relHdrBytes)
	if err != nil {
		return nil, err
	}
	data, err := seg.Alloc(int64(objSize) * int64(capacity))
	if err != nil {
		return nil, err
	}
	seg.PutU64(hdr, 0)
	seg.PutU64(hdr+8, uint64(capacity))
	seg.PutU32(hdr+16, uint32(objSize))
	seg.PutU32(hdr+20, 0)
	seg.PutU64(hdr+24, uint64(data))
	seg.SetRoot(hdr)
	return &Relation{seg: seg, hdr: hdr, data: data, size: int64(objSize)}, nil
}

// OpenRelation reads the relation rooted in the segment.
func OpenRelation(seg *Segment) (*Relation, error) {
	hdr := seg.Root()
	if hdr == 0 {
		return nil, fmt.Errorf("mstore: segment %s has no root relation", seg.Path())
	}
	r := &Relation{
		seg:  seg,
		hdr:  hdr,
		data: Ptr(seg.U64(hdr + 24)),
		size: int64(seg.U32(hdr + 16)),
	}
	if r.size < sptrBytes {
		return nil, fmt.Errorf("mstore: corrupt relation header in %s", seg.Path())
	}
	return r, nil
}

// Segment returns the containing segment.
func (r *Relation) Segment() *Segment { return r.seg }

// Count returns the number of stored objects.
func (r *Relation) Count() int { return int(r.seg.U64(r.hdr)) }

// Capacity returns the allocated object capacity.
func (r *Relation) Capacity() int { return int(r.seg.U64(r.hdr + 8)) }

// ObjSize returns the fixed object size in bytes.
func (r *Relation) ObjSize() int { return int(r.size) }

// PtrAt returns the virtual pointer of object i.
func (r *Relation) PtrAt(i int) Ptr { return r.data + Ptr(int64(i)*r.size) }

// Object returns object i as a slice aliasing the mapped memory.
func (r *Relation) Object(i int) []byte {
	if i < 0 || i >= r.Count() {
		panic(fmt.Sprintf("mstore: object %d out of %d", i, r.Count()))
	}
	return r.seg.Bytes(r.PtrAt(i), r.size)
}

// At returns the object stored at virtual pointer p.
func (r *Relation) At(p Ptr) []byte { return r.seg.Bytes(p, r.size) }

// IndexOf converts an object's virtual pointer back to its index.
func (r *Relation) IndexOf(p Ptr) int { return int(int64(p-r.data) / r.size) }

// Append stores one object and returns its index.
func (r *Relation) Append(obj []byte) (int, error) {
	if int64(len(obj)) != r.size {
		return 0, fmt.Errorf("mstore: append of %d bytes to %d-byte relation", len(obj), r.size)
	}
	n := r.Count()
	if n >= r.Capacity() {
		return 0, fmt.Errorf("mstore: relation full (%d objects)", n)
	}
	copy(r.seg.Bytes(r.PtrAt(n), r.size), obj)
	r.seg.PutU64(r.hdr, uint64(n)+1)
	return n, nil
}

// JoinAttr returns the S-pointer stored in object i of an R relation.
func (r *Relation) JoinAttr(i int) SPtr { return DecodeSPtr(r.Object(i)) }

// SetJoinAttr stores the S-pointer into object i.
func (r *Relation) SetJoinAttr(i int, p SPtr) { EncodeSPtr(r.Object(i), p) }
