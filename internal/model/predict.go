package model

import (
	"fmt"
	"math"

	"mmjoin/internal/sim"
)

// Inputs are the workload and tuning parameters of one predicted join,
// mirroring join.Params. Zero-valued tuning fields select the same
// defaults the executable algorithms use.
type Inputs struct {
	NR, NS int64 // total objects in R and S
	R, S   int64 // object sizes, bytes
	Ptr    int64 // S-pointer size, bytes
	D      int
	Skew   float64 // max |Ri,j| / (|Ri|/D); 1.0 for uniform references

	MRproc, MSproc, G int64

	// DistinctS is the number of distinct S objects referenced per
	// partition (the Mackert–Lohman i parameter). Zero selects the
	// paper's assumption that all references are distinct (|RSi|), which
	// is accurate for uniform workloads but pessimistic under Zipf.
	DistinctS int64

	// Sort-merge tuning (0 ⇒ paper defaults).
	IRun, NRunABL, NRunLast int
	// Grace tuning (0 ⇒ paper defaults).
	K, TSize int
	Fuzz     float64

	// RadixBits bounds the per-pass fan-out of the executor's radix
	// partitioning (mstore.JoinRequest.RadixBits): scatter passes write
	// to at most 2^RadixBits destinations, so K beyond that reach costs
	// extra partitioning passes. Zero selects the executor's default
	// (8); the term is exactly zero whenever K ≤ 2^RadixBits, which
	// keeps every paper-conformance prediction (K ≤ 256) untouched.
	RadixBits int

	// IndexFanout is the per-node key capacity of the store's persistent
	// B-tree indexes, used by the index-path predictions. Zero selects
	// the executor's 4 KiB-node capacity (253 keys; see
	// mstore.indexNodeBytes and btMaxKeys).
	IndexFanout int

	// ColdSproc selects the paper's literal §5.3 formula, which charges
	// pass 1's Si faults as if the Sproc buffer were cold. The default
	// (false) applies a warm-continuation refinement: passes 0 and 1 are
	// one reference stream, so pass 1 faults are Ylru(x0+x1) − Ylru(x0).
	// The refinement matters once MSproc approaches |Si| and the buffer
	// stays warm across passes.
	ColdSproc bool
}

func (in *Inputs) withDefaults(c Calibration) error {
	if in.D < 1 || in.NR < 1 || in.NS < 1 {
		return fmt.Errorf("model: bad inputs D=%d NR=%d NS=%d", in.D, in.NR, in.NS)
	}
	if in.MRproc < c.B {
		return fmt.Errorf("model: MRproc=%d below one page", in.MRproc)
	}
	if in.Skew == 0 {
		in.Skew = 1
	}
	if in.MSproc == 0 {
		in.MSproc = in.MRproc
	}
	if in.G == 0 {
		in.G = c.B
	}
	if in.Fuzz == 0 {
		in.Fuzz = 1.2
	}
	if in.RadixBits < 0 {
		return fmt.Errorf("model: negative radix bits %d", in.RadixBits)
	}
	if in.RadixBits == 0 {
		in.RadixBits = 8
	}
	if in.RadixBits > 16 {
		in.RadixBits = 16
	}
	if in.IndexFanout < 0 {
		return fmt.Errorf("model: negative index fanout %d", in.IndexFanout)
	}
	if in.IndexFanout == 0 {
		in.IndexFanout = 253 // btMaxKeys(4096), the executor's node size
	}
	return nil
}

// radixPasses mirrors the executor's radixPlan (internal/mstore): the
// fewest scatter passes of at most 2^bits destinations each that reach
// a k-way fan-out. The two must agree exactly for the partitioning-pass
// term to be honest; both are pinned by tests against the same cases.
func radixPasses(k, bits int) int {
	maxFan := int64(1) << bits
	passes := 1
	for reach, span := maxFan, int64(1); reach < int64(k) && span < 1<<40; reach *= maxFan {
		passes++
		span *= maxFan
	}
	return passes
}

// Component is one named term of a prediction.
type Component struct {
	Name string
	T    sim.Time
}

// Prediction is the model's estimate of total elapsed time per Rproc,
// with an additive breakdown.
type Prediction struct {
	Total      sim.Time
	Components []Component
	// Parameter choices implied by the inputs (mirrors join.Result).
	IRun, NPass, LRun int
	K, TSize          int
}

func (p *Prediction) add(name string, t sim.Time) {
	if t < 0 {
		t = 0
	}
	p.Components = append(p.Components, Component{Name: name, T: t})
	p.Total += t
}

// CheckConsistency verifies the prediction's internal bookkeeping: the
// additive breakdown sums exactly to Total, no component is negative,
// and the plan parameters are non-negative (conformance-suite hook).
func (p *Prediction) CheckConsistency() error {
	var sum sim.Time
	for _, c := range p.Components {
		if c.T < 0 {
			return fmt.Errorf("model: component %q negative (%v)", c.Name, c.T)
		}
		sum += c.T
	}
	if sum != p.Total {
		return fmt.Errorf("model: components sum to %v but Total is %v", sum, p.Total)
	}
	if p.Total <= 0 {
		return fmt.Errorf("model: non-positive Total %v", p.Total)
	}
	if p.IRun < 0 || p.NPass < 0 || p.LRun < 0 || p.K < 0 || p.TSize < 0 {
		return fmt.Errorf("model: negative plan parameter (IRUN %d NPASS %d LRUN %d K %d TSIZE %d)",
			p.IRun, p.NPass, p.LRun, p.K, p.TSize)
	}
	return nil
}

// quantities derives the per-partition object and page counts shared by
// the three analyses.
type quantities struct {
	ri, sj   float64 // |Ri|, |Sj| objects
	pri, psi float64 // pages
	gObjs    float64 // objects per G buffer exchange
	frames   float64 // MRproc/B
	sframes  float64 // MSproc/B
}

func derive(c Calibration, in Inputs) quantities {
	var q quantities
	q.ri = float64(in.NR) / float64(in.D)
	q.sj = float64(in.NS) / float64(in.D)
	q.pri = pages(q.ri*float64(in.R), c.B)
	q.psi = pages(q.sj*float64(in.S), c.B)
	q.gObjs = math.Max(1, float64(in.G)/float64(in.R+in.Ptr+in.S))
	q.frames = math.Max(1, float64(in.MRproc)/float64(c.B))
	q.sframes = math.Max(1, float64(in.MSproc)/float64(c.B))
	return q
}

func pages(bytes float64, b int64) float64 { return math.Ceil(bytes / float64(b)) }

// gSwitch is the context-switch cost of joining h objects through the
// shared buffer: two switches per buffer exchange.
func gSwitch(c Calibration, q quantities, h float64) sim.Time {
	return sim.Time(2 * float64(c.CS) * math.Ceil(h/q.gObjs))
}

// PredictNestedLoops evaluates the §5.3 analysis.
func PredictNestedLoops(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	rii := float64(in.NR) / (d * d) * in.Skew
	rpi := q.ri - rii
	rsi := q.ri // |RSi|: references to Si (expected |R|/D under uniformity)
	distinct := rsi
	if in.DistinctS > 0 {
		distinct = float64(in.DistinctS)
	}
	prpi := pages(rpi*float64(in.R), c.B)

	p := &Prediction{}

	// Setup: serialized mapping manipulation, hence the factor D.
	p.add("setup", sim.Time(d*(c.OpenMap.Eval(q.pri)+c.OpenMap.Eval(q.psi)+c.NewMap.Eval(prpi))))

	// Pass 0: Ri read sequentially, RPi written (mostly) randomly, Si
	// read randomly; all dtt costs at the pass-0 band.
	band0 := q.pri + q.psi + prpi
	p.add("pass0 read Ri", sim.Time(q.pri*c.DTTR.Eval(band0)))
	p.add("pass0 write RPi", sim.Time(prpi*c.DTTW.Eval(band0)))
	p.add("pass0 read Si", sim.Time(Ylru(rsi, q.psi, distinct, q.sframes, rii)*c.DTTR.Eval(band0)))

	// Pass 1: RPi read sequentially, Si read randomly.
	band1 := q.psi + prpi
	p.add("pass1 read RPi", sim.Time(prpi*c.DTTR.Eval(band1)))
	pass1Faults := Ylru(rsi, q.psi, distinct, q.sframes, rpi)
	if !in.ColdSproc {
		// Warm continuation: the Sproc buffer already holds the pages
		// faulted during pass 0.
		pass1Faults = Ylru(rsi, q.psi, distinct, q.sframes, rii+rpi) -
			Ylru(rsi, q.psi, distinct, q.sframes, rii)
	}
	p.add("pass1 read Si", sim.Time(pass1Faults*c.DTTR.Eval(band1)))

	// CPU: moves, buffer transfers, context switches, partition mapping.
	p.add("move RPi", sim.Time(rpi*float64(in.R)*c.MTpp))
	p.add("transfer pass0", sim.Time(rii*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("transfer pass1", sim.Time(rpi*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("context switches", gSwitch(c, q, rii)+gSwitch(c, q, rpi))
	p.add("map", sim.Time(q.ri)*c.Map)
	return p, nil
}

// smPlan computes IRUN, NRUNABL, NRUNLAST, NPASS and LRUN exactly as the
// executable sort-merge does.
func smPlan(c Calibration, in Inputs, rsi float64) (irun, nrunABL, nrunLast, npass, lrun int) {
	irun = in.IRun
	if irun <= 0 {
		irun = int(in.MRproc / (in.R + c.HP))
	}
	if irun < 1 {
		irun = 1
	}
	nrunABL = in.NRunABL
	if nrunABL <= 0 {
		nrunABL = int(in.MRproc / (3 * c.B))
	}
	if nrunABL < 2 {
		nrunABL = 2
	}
	nrunLast = in.NRunLast
	if nrunLast <= 0 {
		nrunLast = int(in.MRproc / (2 * c.B))
	}
	if nrunLast < 2 {
		nrunLast = 2
	}
	runs := int(math.Ceil(rsi / float64(irun)))
	if runs < 1 {
		runs = 1
	}
	npass = 1
	for runs > nrunLast {
		runs = (runs + nrunABL - 1) / nrunABL
		npass++
	}
	lrun = runs
	return irun, nrunABL, nrunLast, npass, lrun
}

// PredictSortMerge evaluates the §6.3 analysis.
func PredictSortMerge(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	// With inter-phase synchronization the worst case carries the skew:
	// |Ri,i| = |Ri|/D·skew and |RPi| = |Ri|·skew·(1−1/D).
	rii := q.ri / d * in.Skew
	rpi := q.ri*in.Skew - rii
	rsi := q.ri * in.Skew
	prpi := pages(rpi*float64(in.R), c.B)
	prsi := pages(rsi*float64(in.R), c.B)
	pmerge := prsi

	irun, nrunABL, nrunLast, npass, lrun := smPlan(c, in, rsi)
	_ = nrunLast

	p := &Prediction{IRun: irun, NPass: npass, LRun: lrun}

	// Setup: Ri, Si, RSi, RPi, Mergei, plus the source/destination swap
	// (deleteMap+newMap) on all but the last merging pass.
	setup := d * (c.OpenMap.Eval(q.pri) + c.OpenMap.Eval(q.psi) +
		c.NewMap.Eval(prsi) + c.NewMap.Eval(prpi) + c.NewMap.Eval(pmerge))
	setup += (c.DeleteMap.Eval(pmerge) + c.NewMap.Eval(pmerge)) * float64(npass-1)
	p.add("setup", sim.Time(setup))

	// Pass 0: Ri read sequentially; RSi and RPi written.
	band0 := q.pri + q.psi + prsi + prpi
	p.add("pass0 read Ri", sim.Time(q.pri*c.DTTR.Eval(band0)))
	p.add("pass0 write RSi", sim.Time(prsi/d*c.DTTW.Eval(band0)))
	p.add("pass0 write RPi", sim.Time(prpi*c.DTTW.Eval(band0)))

	// Pass 1: RPi read, RSi written.
	band1 := prsi + prpi
	p.add("pass1 read RPi", sim.Time(prpi*c.DTTR.Eval(band1)))
	p.add("pass1 write RSi", sim.Time(prsi*(1-1/d)*c.DTTW.Eval(band1)))

	// Pass 2 (heap-sorting runs in place): band is twice a run.
	band2 := 2 * float64(in.R) * float64(irun) / float64(c.B)
	if band2 < 1 {
		band2 = 1
	}
	p.add("pass2 read RSi", sim.Time(prsi*c.DTTR.Eval(band2)))
	p.add("pass2 write RSi", sim.Time(prsi*c.DTTW.Eval(band2)))
	heapBuild := 1.77*rsi*(float64(c.Compare)+float64(c.Swap)/2) + rsi*float64(c.Transfer)
	heapSort := rsi * math.Log2(math.Max(2, float64(irun))) * (float64(c.Compare) + float64(c.Transfer))
	p.add("pass2 heap", sim.Time(heapBuild+heapSort))
	p.add("pass2 move", sim.Time(rsi*float64(in.R)*c.MTpp))

	// Merging passes before the last: read and write RSi/Mergei.
	if npass > 1 {
		bandABL := prsi + prpi + pmerge
		io := (prsi*c.DTTR.Eval(bandABL) + prsi*c.DTTW.Eval(bandABL)) * float64(npass-1)
		p.add("merge io", sim.Time(io))
		heap := (gMerge(c, nrunABL) + 2*float64(c.Transfer)) * rsi * float64(npass-1)
		p.add("merge heap", sim.Time(heap))
		p.add("merge move", sim.Time(rsi*float64(in.R)*c.MTpp*float64(npass-1)))
	}

	// Last pass: merge LRUN runs while reading Si sequentially.
	bandLast := q.psi + prsi + (prpi+pmerge)*float64((npass-1)%2)
	p.add("last read RSi", sim.Time(prsi*c.DTTR.Eval(bandLast)))
	p.add("last read Si", sim.Time(q.psi*c.DTTR.Eval(bandLast)))
	p.add("last heap", sim.Time((gMerge(c, lrun)+2*float64(c.Transfer))*rsi))
	p.add("last transfer", sim.Time(rsi*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("context switches", gSwitch(c, q, rsi))

	// Pass 0/1 object moves and partition mapping.
	p.add("move pass0", sim.Time(q.ri*float64(in.R)*c.MTpp))
	p.add("move pass1", sim.Time(rpi*float64(in.R)*c.MTpp))
	p.add("map", sim.Time(q.ri)*c.Map)
	return p, nil
}

// gMerge is the per-element cost (ns) of the delete-insert operation on a
// merge heap of h runs: ~log2 h levels of two compares and a swap.
func gMerge(c Calibration, h int) float64 {
	if h < 2 {
		h = 2
	}
	levels := math.Log2(float64(h))
	return (2*float64(c.Compare) + float64(c.Swap)) * levels
}

// gracePlan mirrors the executable Grace parameter rules.
func gracePlan(in Inputs, rsi float64) (k, tsize int) {
	k = in.K
	if k <= 0 {
		need := in.Fuzz * rsi * float64(in.R) / float64(in.MRproc)
		k = int(math.Ceil(need))
	}
	if k < 1 {
		k = 1
	}
	if float64(k) > rsi && rsi >= 1 {
		k = int(rsi)
	}
	tsize = in.TSize
	if tsize <= 0 {
		avgBucket := int(rsi) / k
		tsize = 16
		for tsize < avgBucket/4 {
			tsize *= 2
		}
	}
	return k, tsize
}

// PredictGrace evaluates the §7.3 analysis, including the urn-model
// estimate of premature page replacement at low memory.
func PredictGrace(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	rii := q.ri / d * in.Skew
	rpi := q.ri*in.Skew - rii
	rsi := q.ri * in.Skew
	prii := pages(rii*float64(in.R), c.B)
	prpi := pages(rpi*float64(in.R), c.B)
	prsi := pages(rsi*float64(in.R), c.B)

	k, tsize := gracePlan(in, rsi)
	passes := radixPasses(k, in.RadixBits)
	// A radix scatter pass never targets more than 2^RadixBits
	// destinations at once, so the urn-model thrash terms see the
	// per-pass fan-out, not the full K.
	kEff := min(k, 1<<in.RadixBits)
	p := &Prediction{K: k, TSize: tsize}

	// Setup: Ri, Si opened; RSi+RPi created; RSi re-opened for pass 1+j.
	p.add("setup", sim.Time(d*(c.OpenMap.Eval(q.pri)+c.OpenMap.Eval(q.psi)+
		c.NewMap.Eval(prsi+prpi)+c.OpenMap.Eval(prsi))))

	// Pass 0.
	band0 := q.pri + q.psi + prsi + prpi
	p.add("pass0 read Ri", sim.Time(q.pri*c.DTTR.Eval(band0)))
	p.add("pass0 write RPi", sim.Time(prpi*c.DTTW.Eval(band0)))
	p.add("pass0 write RSi", sim.Time((prii+float64(k))*c.DTTW.Eval(band0)))

	// Thrashing: premature replacements of bucket pages, each one extra
	// write plus one extra read. Fill rate: the D−1 RPi,j streams fill a
	// fresh page every B/r objects each, per hashed object.
	fill0 := (d - 1) / (float64(c.B) / float64(in.R))
	thrash0 := GraceThrash(int(rii), kEff, int(q.frames), in.D, fill0)
	p.add("pass0 thrash", sim.Time(thrash0*(c.DTTR.Eval(band0)+c.DTTW.Eval(band0))))

	// Pass 1.
	band1 := prsi + prpi
	p.add("pass1 read RPi", sim.Time(prpi*c.DTTR.Eval(band1)))
	p.add("pass1 write RSi", sim.Time((prpi+float64(k))*c.DTTW.Eval(band1)))
	// The same urn argument applies while hashing RPi,j into RSj's
	// buckets (the companion stream is the sequential RPi read).
	fill1 := 1 / (float64(c.B) / float64(in.R))
	thrash1 := GraceThrash(int(rpi), kEff, int(q.frames), 1, fill1)
	p.add("pass1 thrash", sim.Time(thrash1*(c.DTTR.Eval(band1)+c.DTTW.Eval(band1))))

	// Extra radix passes: once K exceeds the 2^RadixBits per-pass reach,
	// the partitioner re-reads and re-scatters every spilled reference
	// (passes−1) more times — each pass a sequential re-read plus a
	// rewrite of the RSi spill and up to kEff partial destination pages,
	// plus one more bucket-hash and move per reference. This is the price
	// paid for the capped fan-out the thrash terms above benefit from;
	// the component is exactly zero when K ≤ 2^RadixBits.
	if passes > 1 {
		extra := float64(passes - 1)
		p.add("radix pass io", sim.Time(extra*(prsi*c.DTTR.Eval(band1)+
			(prsi+float64(kEff))*c.DTTW.Eval(band1))))
		p.add("radix pass cpu", sim.Time(extra*rsi)*c.Hash+
			sim.Time(extra*rsi*float64(in.R)*c.MTpp))
	}

	// Pass 1+j: read each bucket and the corresponding Si range; the
	// band approximates half the objects resident in the hash table.
	bandProbe := math.Max(1, prsi/float64(k)/2)
	p.add("probe io", sim.Time((prsi+q.psi)*c.DTTR.Eval(bandProbe)))

	if t := restageIO(c, in, rsi, k, bandProbe); t > 0 {
		p.add("restage io", t)
	}

	// CPU.
	p.add("map", sim.Time(q.ri)*c.Map)
	p.add("hash pass0", sim.Time(rii)*c.Hash)
	p.add("hash pass1", sim.Time(rpi)*c.Hash)
	p.add("hash probe", sim.Time(rsi)*c.Hash)
	p.add("move pass0", sim.Time(q.ri*float64(in.R)*c.MTpp))
	p.add("move pass1", sim.Time(rpi*float64(in.R)*c.MTpp))
	p.add("probe transfer", sim.Time(rsi*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("context switches", gSwitch(c, q, rsi))
	return p, nil
}

// restageIO costs the dynamic spill/restage passes the executor performs
// when skew concentrates references into one bucket whose table
// overflows the memory grant. The hottest bucket holds about
// rsi/k·Skew references; when its bytes exceed MRproc, the executor
// rewrites it to disk once per restage pass (read + write), and each
// pass divides the bucket by up to the maximum fan-out (64). At
// Skew≈1 with a grant-derived K the term is zero — the honest-planner
// guarantee that uniform predictions are untouched.
func restageIO(c Calibration, in Inputs, rsi float64, k int, band float64) sim.Time {
	if k < 1 || in.MRproc <= 0 {
		return 0
	}
	hotBytes := rsi / float64(k) * in.Skew * float64(in.R)
	if hotBytes <= float64(in.MRproc) {
		return 0
	}
	passes := math.Ceil(math.Log(hotBytes/float64(in.MRproc)) / math.Log(64))
	passes = math.Max(passes, 1)
	return sim.Time(passes * pages(hotBytes, c.B) * (c.DTTR.Eval(band) + c.DTTW.Eval(band)))
}
