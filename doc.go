// Package mmjoin reproduces Buhr, Goel, Nishimura and Ragde, "Parallel
// Pointer-Based Join Algorithms in Memory Mapped Environments" (ICDE
// 1996): three parallel pointer-based join algorithms for single-level
// stores, a validated analytical performance model, a discrete-event
// simulation of the paper's testbed that stands in for the original
// Sequent Symmetry hardware, and a real mmap(2)-backed segment store.
//
// See README.md for an overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation.
package mmjoin
