package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"mmjoin/internal/join"
	"mmjoin/internal/mstore"
	"mmjoin/internal/relation"
	"mmjoin/internal/shard"
)

// newShardedServer builds a 3-shard store from one source database and
// serves it. Returns the server, the test HTTP server, the shard map,
// and the source's expected stats.
func newShardedServer(t *testing.T, objects int, cfg Config) (*Server, *httptest.Server, *shard.Map, mstore.JoinStats) {
	t.Helper()
	base := t.TempDir()
	srcDir := filepath.Join(base, "src")
	src, err := mstore.CreateDB(srcDir, 3, objects, objects, 32, 23)
	if err != nil {
		t.Fatal(err)
	}
	want := src.ExpectedStats()
	src.Close()

	outs := []string{
		filepath.Join(base, "shard-0"),
		filepath.Join(base, "shard-1"),
		filepath.Join(base, "shard-2"),
	}
	m, err := shard.Split(srcDir, 3, outs)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.Open(m, shard.Config{
		MapPath:         filepath.Join(base, "shards.json"),
		WorkersPerShard: 1,
		PlanFunc: func(id string, w *relation.Workload, req mstore.JoinRequest) (join.Algorithm, error) {
			return join.Grace, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = router
	cfg.TmpDir = filepath.Join(base, "tmp")
	if cfg.CalibrationOps == 0 {
		cfg.CalibrationOps = 60
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, m, want
}

func decodeError(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	resp.Body.Close()
	return env.Error
}

// TestShardedServiceJoin checks a /v1/join against a 3-shard store
// returns the single-store signature with a per-shard breakdown, for
// concrete algorithms and for auto (per-shard planning).
func TestShardedServiceJoin(t *testing.T) {
	_, ts, _, want := newShardedServer(t, 900, Config{})
	for _, alg := range []string{"auto", "grace", "hybrid-hash", "sort-merge", "nested-loops"} {
		body, _ := json.Marshal(JoinRequest{Algorithm: alg})
		resp, err := http.Post(ts.URL+"/v1/join", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jr JoinResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if jr.Pairs != want.Pairs || jr.Signature != fmt.Sprintf("%016x", want.Signature) {
			t.Fatalf("%s: pairs=%d sig=%s, want pairs=%d sig=%016x",
				alg, jr.Pairs, jr.Signature, want.Pairs, want.Signature)
		}
		if len(jr.Shards) != 3 {
			t.Fatalf("%s: %d shard details, want 3", alg, len(jr.Shards))
		}
		if jr.Algorithm != alg {
			t.Errorf("%s: response algorithm %q", alg, jr.Algorithm)
		}
		var sum int64
		for _, det := range jr.Shards {
			sum += det.Pairs
			if alg != "auto" && det.Algorithm != alg {
				t.Errorf("%s: shard %s ran %s", alg, det.Shard, det.Algorithm)
			}
			if alg == "auto" && det.Algorithm != "grace" {
				t.Errorf("auto: shard %s ran %s, PlanFunc always picks grace", det.Shard, det.Algorithm)
			}
		}
		if sum != want.Pairs {
			t.Errorf("%s: shard pairs sum %d != %d", alg, sum, want.Pairs)
		}
	}
}

// TestShardedServiceLookup checks /v1/lookup reports the answering
// shard and maps the routed shard's bounds onto 400/404 envelope codes.
func TestShardedServiceLookup(t *testing.T) {
	s, ts, _, _ := newShardedServer(t, 600, Config{})

	resp, err := http.Get(ts.URL + "/v1/lookup?part=1&index=3")
	if err != nil {
		t.Fatal(err)
	}
	var lr LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lr.Shard == "" {
		t.Fatalf("status %d shard %q, want 200 with a shard id", resp.StatusCode, lr.Shard)
	}
	direct, err := s.store.Lookup(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lr.SWord != direct.SWord || lr.Shard != direct.Shard {
		t.Fatalf("wire %+v disagrees with store %+v", lr, direct)
	}

	resp, err = http.Get(ts.URL + "/v1/lookup?part=99&index=0")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "bad_request" {
		t.Fatalf("part=99: status %d code %q", resp.StatusCode, e.Code)
	}
	resp, err = http.Get(ts.URL + "/v1/lookup?part=0&index=99999999")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeError(t, resp); resp.StatusCode != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("huge index: status %d code %q", resp.StatusCode, e.Code)
	}
}

// TestShardedServiceStats checks /v1/stats carries the per-shard layout
// and that the legacy /stats alias serves the same document.
func TestShardedServiceStats(t *testing.T) {
	_, ts, _, _ := newShardedServer(t, 600, Config{})
	for _, path := range []string{"/v1/stats", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if st.DB.Kind != "sharded" || len(st.DB.Shards) != 3 {
			t.Fatalf("%s: kind %q with %d shards", path, st.DB.Kind, len(st.DB.Shards))
		}
		var nr int
		for _, sh := range st.DB.Shards {
			nr += sh.NR
		}
		if nr != 600 || st.DB.NR != 600 {
			t.Fatalf("%s: shard NR sum %d, total %d, want 600", path, nr, st.DB.NR)
		}
	}
}

// TestShardedServiceMembership drives the /v1/shards management
// surface: list, remove-with-drain, re-add — and checks joins reflect
// each membership.
func TestShardedServiceMembership(t *testing.T) {
	_, ts, m, want := newShardedServer(t, 900, Config{})
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Kind   string             `json:"kind"`
		Shards []mstore.ShardInfo `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Kind != "sharded" || len(list.Shards) != 3 {
		t.Fatalf("list: %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/shards/shard-2", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d", resp.StatusCode)
	}

	// Joins now cover two shards only.
	var reduced mstore.JoinStats
	for _, e := range m.Shards[:2] {
		db, err := mstore.OpenDB(e.Dir, e.D)
		if err != nil {
			t.Fatal(err)
		}
		reduced.Fold(db.ExpectedStats())
		db.Close()
	}
	body, _ := json.Marshal(JoinRequest{Algorithm: "grace"})
	resp, err = client.Post(ts.URL+"/v1/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.Pairs != reduced.Pairs || len(jr.Shards) != 2 {
		t.Fatalf("post-removal: pairs=%d shards=%d, want pairs=%d shards=2",
			jr.Pairs, len(jr.Shards), reduced.Pairs)
	}

	// Removing a shard that is gone is a 404 with the envelope code.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/shards/shard-2", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeError(t, resp); resp.StatusCode != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("double remove: status %d code %q", resp.StatusCode, e.Code)
	}

	// Re-add through the API and confirm the full signature returns.
	add, _ := json.Marshal(ShardAddRequest{ID: "shard-2", Dir: m.Shards[2].Dir, D: m.Shards[2].D})
	resp, err = client.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(add))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-add: status %d", resp.StatusCode)
	}
	resp, err = client.Post(ts.URL+"/v1/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.Pairs != want.Pairs || jr.Signature != fmt.Sprintf("%016x", want.Signature) {
		t.Fatalf("post-re-add: pairs=%d sig=%s, want %d/%016x",
			jr.Pairs, jr.Signature, want.Pairs, want.Signature)
	}
}

// TestShardedServiceNotSharded checks the management endpoints answer
// 409 not_sharded on a single-store server.
func TestShardedServiceNotSharded(t *testing.T) {
	s := newTestServer(t, 120, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	add, _ := json.Marshal(ShardAddRequest{ID: "x", Dir: "/nope", D: 1})
	resp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(add))
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeError(t, resp); resp.StatusCode != http.StatusConflict || e.Code != "not_sharded" {
		t.Fatalf("add on single store: status %d code %q", resp.StatusCode, e.Code)
	}

	// The list endpoint is informational either way.
	resp, err = http.Get(ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || list.Kind != "single" {
		t.Fatalf("list on single store: status %d kind %q", resp.StatusCode, list.Kind)
	}
}

// TestShardedServiceVersionedAliases checks the /v1 and legacy paths
// serve the same handlers.
func TestShardedServiceVersionedAliases(t *testing.T) {
	_, ts, _, want := newShardedServer(t, 600, Config{})
	for _, path := range []string{"/join", "/v1/join"} {
		body, _ := json.Marshal(JoinRequest{Algorithm: "sort-merge"})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jr JoinResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if jr.Pairs != want.Pairs {
			t.Fatalf("%s: pairs %d, want %d", path, jr.Pairs, want.Pairs)
		}
	}
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}
