// Package pheap implements the heaps of pointers used by the paper's
// sort-merge join: Floyd bottom-up construction, heapsort by repeated
// deletion of minima, and the delete-insert (replace-min) operation used
// during run merging. Every operation counts the element compares, swaps
// and transfers it performs, so the simulator can charge the measured
// per-operation machine costs and the analytical model's heap formulas
// can be checked against executed counts.
package pheap

import "fmt"

// Costs counts primitive heap operations.
type Costs struct {
	Compares  int64
	Swaps     int64
	Transfers int64 // element moves into or out of the heap
}

// Add accumulates other into c.
func (c *Costs) Add(other Costs) {
	c.Compares += other.Compares
	c.Swaps += other.Swaps
	c.Transfers += other.Transfers
}

// Heap is a min-heap of int32 handles ordered by a caller-provided
// comparison. Handles typically index an array of objects, mirroring the
// paper's "heap of pointers to R-objects".
type Heap struct {
	less  func(a, b int32) bool
	items []int32
	c     Costs
}

// NewFloyd builds a heap over items in place using Floyd's bottom-up
// construction (≈ 1.77 n compares on average). The slice is owned by the
// heap afterwards.
func NewFloyd(items []int32, less func(a, b int32) bool) *Heap {
	h := &Heap{less: less, items: items}
	h.c.Transfers += int64(len(items))
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

// NewEmpty returns an empty heap with the given capacity hint.
func NewEmpty(capacity int, less func(a, b int32) bool) *Heap {
	return &Heap{less: less, items: make([]int32, 0, capacity)}
}

// Len reports the number of elements.
func (h *Heap) Len() int { return len(h.items) }

// Costs returns the accumulated operation counts.
func (h *Heap) Costs() Costs { return h.c }

// Min returns the minimum handle without removing it.
func (h *Heap) Min() int32 {
	if len(h.items) == 0 {
		panic("pheap: Min of empty heap")
	}
	return h.items[0]
}

// Insert adds a handle.
func (h *Heap) Insert(v int32) {
	h.items = append(h.items, v)
	h.c.Transfers++
	h.siftUp(len(h.items) - 1)
}

// DeleteMin removes and returns the minimum handle.
func (h *Heap) DeleteMin() int32 {
	if len(h.items) == 0 {
		panic("pheap: DeleteMin of empty heap")
	}
	min := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.c.Transfers++
	if last > 0 {
		h.siftDown(0)
	}
	return min
}

// ReplaceMin performs the delete-insert operation of the merge passes:
// it removes the minimum and inserts v in a single sift, cheaper than
// DeleteMin followed by Insert.
func (h *Heap) ReplaceMin(v int32) int32 {
	if len(h.items) == 0 {
		panic("pheap: ReplaceMin of empty heap")
	}
	min := h.items[0]
	h.items[0] = v
	h.c.Transfers += 2
	h.siftDown(0)
	return min
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n {
			h.c.Compares++
			if h.less(h.items[r], h.items[l]) {
				small = r
			}
		}
		h.c.Compares++
		if !h.less(h.items[small], h.items[i]) {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		h.c.Swaps++
		i = small
	}
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		h.c.Compares++
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		h.c.Swaps++
		i = parent
	}
}

// Sort heap-sorts the handles ascending (build with Floyd, then repeated
// deletion of minima — the paper's pass-2 procedure) and returns the
// operation counts. The input slice is overwritten with the sorted order.
func Sort(items []int32, less func(a, b int32) bool) Costs {
	h := NewFloyd(append([]int32(nil), items...), less)
	for i := range items {
		items[i] = h.DeleteMin()
	}
	c := h.Costs()
	c.Transfers += int64(len(items)) // moves out of the heap
	return c
}

// Verify checks the heap invariant; it is used by tests and returns an
// error naming the first violation.
func (h *Heap) Verify() error {
	for i := 1; i < len(h.items); i++ {
		parent := (i - 1) / 2
		if h.less(h.items[i], h.items[parent]) {
			return fmt.Errorf("pheap: invariant violated at index %d", i)
		}
	}
	return nil
}
