package mstore

import (
	"fmt"
	"math"
	"sort"
)

// RTree is a persistent, bulk-loaded R-tree stored inside a segment,
// packed with the Sort-Tile-Recursive (STR) algorithm: entries are
// sorted by x, tiled into vertical slices, sorted by y within each
// slice, and packed into full leaves, recursively up to the root. STR
// packing yields near-optimal space utilization and query performance
// for read-mostly spatial data — the natural fit for the GIS workloads
// the paper's introduction cites, and the second of the µDatabase
// structures ("B-Trees, R-Trees") demonstrated in mapped memory.
//
// Like the B-tree, all internal references are virtual pointers, so the
// index works unchanged after the segment is reopened.
type RTree struct {
	seg    *Segment
	hdr    Ptr
	fanout int
}

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Valid reports whether the rectangle is non-degenerate (min ≤ max).
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Intersects reports whether two rectangles overlap (boundaries touch
// counts as overlap).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// union grows r to cover o.
func (r Rect) union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX), MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX), MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// SpatialEntry is one indexed item: a rectangle and the virtual pointer
// of the object it describes.
type SpatialEntry struct {
	Rect Rect
	Item Ptr
}

// R-tree header: magic u32, fanout u32, root Ptr, height u32, count u32.
const (
	rtMagic    = 0x52545231 // "RTR1"
	rtHdrBytes = 24
)

// Node layout: count u32, pad u32, then fanout entries of
// (minx, miny, maxx, maxy float64, ref u64) = 40 bytes each. In leaves
// ref is the item pointer; in internal nodes it is the child node.
const rtEntryBytes = 40

func rtNodeBytes(fanout int) int64 { return int64(8 + fanout*rtEntryBytes) }

// BuildRTree bulk-loads an R-tree over the entries with the given fanout
// (0 ⇒ 32) using STR packing and returns the persistent tree. The entry
// slice is reordered in place.
func BuildRTree(seg *Segment, entries []SpatialEntry, fanout int) (*RTree, error) {
	if fanout == 0 {
		fanout = 32
	}
	if fanout < 2 {
		return nil, fmt.Errorf("mstore: rtree fanout %d below 2", fanout)
	}
	for i, e := range entries {
		if !e.Rect.Valid() {
			return nil, fmt.Errorf("mstore: entry %d has an invalid rectangle", i)
		}
	}
	hdr, err := seg.Alloc(rtHdrBytes)
	if err != nil {
		return nil, err
	}
	t := &RTree{seg: seg, hdr: hdr, fanout: fanout}
	seg.PutU32(hdr, rtMagic)
	seg.PutU32(hdr+4, uint32(fanout))

	level, err := t.packLeaves(entries)
	if err != nil {
		return nil, err
	}
	height := uint32(1)
	for len(level) > 1 {
		level, err = t.packInternal(level)
		if err != nil {
			return nil, err
		}
		height++
	}
	var root Ptr
	if len(level) == 1 {
		root = Ptr(level[0].Item)
	} else {
		// Empty tree: a single empty leaf.
		root, err = t.newNode()
		if err != nil {
			return nil, err
		}
	}
	seg.PutU64(hdr+8, uint64(root))
	seg.PutU32(hdr+16, height)
	seg.PutU32(hdr+20, uint32(len(entries)))
	return t, nil
}

// OpenRTree attaches to a tree previously built at hdr.
func OpenRTree(seg *Segment, hdr Ptr) (*RTree, error) {
	if seg.U32(hdr) != rtMagic {
		return nil, fmt.Errorf("mstore: no rtree at %d", hdr)
	}
	return &RTree{seg: seg, hdr: hdr, fanout: int(seg.U32(hdr + 4))}, nil
}

// Head returns the tree's persistent header pointer.
func (t *RTree) Head() Ptr { return t.hdr }

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return int(t.seg.U32(t.hdr + 20)) }

// Height returns the number of node levels.
func (t *RTree) Height() int { return int(t.seg.U32(t.hdr + 16)) }

func (t *RTree) root() Ptr { return Ptr(t.seg.U64(t.hdr + 8)) }

func (t *RTree) newNode() (Ptr, error) {
	n, err := t.seg.Alloc(rtNodeBytes(t.fanout))
	if err != nil {
		return 0, err
	}
	t.seg.PutU32(n, 0)
	return n, nil
}

func (t *RTree) nodeCount(n Ptr) int { return int(t.seg.U32(n)) }

func (t *RTree) entryAt(n Ptr, i int) SpatialEntry {
	base := n + 8 + Ptr(i*rtEntryBytes)
	return SpatialEntry{
		Rect: Rect{
			MinX: math.Float64frombits(t.seg.U64(base)),
			MinY: math.Float64frombits(t.seg.U64(base + 8)),
			MaxX: math.Float64frombits(t.seg.U64(base + 16)),
			MaxY: math.Float64frombits(t.seg.U64(base + 24)),
		},
		Item: Ptr(t.seg.U64(base + 32)),
	}
}

func (t *RTree) setEntryAt(n Ptr, i int, e SpatialEntry) {
	base := n + 8 + Ptr(i*rtEntryBytes)
	t.seg.PutU64(base, math.Float64bits(e.Rect.MinX))
	t.seg.PutU64(base+8, math.Float64bits(e.Rect.MinY))
	t.seg.PutU64(base+16, math.Float64bits(e.Rect.MaxX))
	t.seg.PutU64(base+24, math.Float64bits(e.Rect.MaxY))
	t.seg.PutU64(base+32, uint64(e.Item))
}

// packLevel groups pre-ordered entries into nodes of up to fanout and
// returns the parent-level entries (node MBR + node pointer). leaf marks
// whether these are leaf nodes.
func (t *RTree) packLevel(entries []SpatialEntry, leaf bool) ([]SpatialEntry, error) {
	var parents []SpatialEntry
	for lo := 0; lo < len(entries); lo += t.fanout {
		hi := lo + t.fanout
		if hi > len(entries) {
			hi = len(entries)
		}
		n, err := t.newNode()
		if err != nil {
			return nil, err
		}
		mbr := entries[lo].Rect
		for i := lo; i < hi; i++ {
			t.setEntryAt(n, i-lo, entries[i])
			mbr = mbr.union(entries[i].Rect)
		}
		t.seg.PutU32(n, uint32(hi-lo))
		flag := uint32(0)
		if leaf {
			flag = 1
		}
		t.seg.PutU32(n+4, flag)
		parents = append(parents, SpatialEntry{Rect: mbr, Item: n})
	}
	return parents, nil
}

func (t *RTree) isLeafNode(n Ptr) bool { return t.seg.U32(n+4) == 1 }

// strSort orders entries by STR: x-sort, slice, y-sort within slices.
func strSort(entries []SpatialEntry, fanout int) {
	n := len(entries)
	if n == 0 {
		return
	}
	leaves := (n + fanout - 1) / fanout
	slices := int(math.Ceil(math.Sqrt(float64(leaves))))
	sort.SliceStable(entries, func(a, b int) bool {
		return center(entries[a].Rect.MinX, entries[a].Rect.MaxX) <
			center(entries[b].Rect.MinX, entries[b].Rect.MaxX)
	})
	perSlice := slices * fanout
	for lo := 0; lo < n; lo += perSlice {
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		s := entries[lo:hi]
		sort.SliceStable(s, func(a, b int) bool {
			return center(s[a].Rect.MinY, s[a].Rect.MaxY) <
				center(s[b].Rect.MinY, s[b].Rect.MaxY)
		})
	}
}

func center(lo, hi float64) float64 { return (lo + hi) / 2 }

func (t *RTree) packLeaves(entries []SpatialEntry) ([]SpatialEntry, error) {
	strSort(entries, t.fanout)
	return t.packLevel(entries, true)
}

func (t *RTree) packInternal(children []SpatialEntry) ([]SpatialEntry, error) {
	strSort(children, t.fanout)
	return t.packLevel(children, false)
}

// Search calls fn for every indexed entry whose rectangle intersects q,
// stopping early if fn returns false.
func (t *RTree) Search(q Rect, fn func(e SpatialEntry) bool) {
	if t.Len() == 0 {
		return
	}
	t.search(t.root(), q, fn)
}

func (t *RTree) search(n Ptr, q Rect, fn func(e SpatialEntry) bool) bool {
	c := t.nodeCount(n)
	leaf := t.isLeafNode(n)
	for i := 0; i < c; i++ {
		e := t.entryAt(n, i)
		if !e.Rect.Intersects(q) {
			continue
		}
		if leaf {
			if !fn(e) {
				return false
			}
		} else if !t.search(e.Item, q, fn) {
			return false
		}
	}
	return true
}

// Verify checks that every parent rectangle covers its children and that
// exactly Len entries are reachable.
func (t *RTree) Verify() error {
	if t.Len() == 0 {
		return nil
	}
	seen := 0
	var walk func(n Ptr, bound Rect, isRoot bool) error
	walk = func(n Ptr, bound Rect, isRoot bool) error {
		c := t.nodeCount(n)
		leaf := t.isLeafNode(n)
		for i := 0; i < c; i++ {
			e := t.entryAt(n, i)
			if !isRoot && !bound.Intersects(e.Rect) {
				return fmt.Errorf("mstore: rtree child escapes parent MBR")
			}
			if !isRoot && (e.Rect.MinX < bound.MinX || e.Rect.MinY < bound.MinY ||
				e.Rect.MaxX > bound.MaxX || e.Rect.MaxY > bound.MaxY) {
				return fmt.Errorf("mstore: rtree MBR does not cover child")
			}
			if leaf {
				seen++
			} else if err := walk(e.Item, e.Rect, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root(), Rect{}, true); err != nil {
		return err
	}
	if seen != t.Len() {
		return fmt.Errorf("mstore: rtree count %d but %d entries reachable", t.Len(), seen)
	}
	return nil
}
