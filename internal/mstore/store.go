package mstore

import (
	"errors"

	"mmjoin/internal/exec"
	"mmjoin/internal/relation"
)

// Store is what the query service serves: one logical pair of relations
// that can be joined, dereferenced, costed, and described — regardless
// of whether it is a single memory-mapped database (*DB) or a sharded
// scatter-gather router fronting many of them (shard.Router). The
// service layer is written against this interface only; everything
// shard-specific rides on the optional capability interfaces below.
type Store interface {
	// Run executes one join over the whole logical relation and returns
	// the merged statistics. Implementations must keep JoinStats
	// bit-identical across equivalent physical layouts: Pairs and
	// Signature fold as commutative sums (see JoinStats.Fold).
	Run(req JoinRequest) (JoinStats, error)
	// Lookup dereferences one R object's stored pointer. A sharded
	// store routes the (part, index) name to exactly one shard and
	// validates the bounds against that shard, reporting which shard
	// answered in LookupResult.Shard. Out-of-range names fail with
	// errors wrapping ErrPartRange / ErrIndexRange.
	Lookup(part, index int) (LookupResult, error)
	// Workload derives the planner's view of the logical relation (a
	// sharded store merges its shards' workloads).
	Workload() (*relation.Workload, error)
	// CountR and CountS total the stored objects. A sharded store sums
	// over shards; with the replicated-S layout Split produces, CountS
	// counts every replica.
	CountR() int
	CountS() int
	// Stats describes the store's physical layout for /stats.
	Stats() StoreStats
	// Close releases every mapping (a sharded store closes all shards).
	Close() error
}

// Sentinel errors for Lookup bounds, so serving layers can map them to
// client-error statuses without string matching.
var (
	// ErrPartRange means the named R partition does not exist on the
	// store (or, sharded, on the shard the name routed to).
	ErrPartRange = errors.New("mstore: R partition out of range")
	// ErrIndexRange means the partition exists but holds no object at
	// the named index.
	ErrIndexRange = errors.New("mstore: R index out of range")
)

// StoreStats describes a store's physical layout: one entry for a
// single mapped database, one per shard behind a router.
type StoreStats struct {
	// Kind is "single" or "sharded".
	Kind string `json:"kind"`
	// Dir is the database directory (single) or the shard-map path.
	Dir string `json:"dir"`
	// D is the partition count a client may address in lookups: the
	// database's D, or the largest shard D behind a router.
	D       int `json:"d"`
	ObjSize int `json:"objSize"`
	// NR and NS total the stored objects (sharded: summed over shards,
	// counting every S replica).
	NR int `json:"nr"`
	NS int `json:"ns"`
	// Indexed reports whether persistent B-tree indexes are attached —
	// the condition for planning IndexNL/IndexMerge. A sharded store is
	// indexed only if every live shard is (the planner picks per shard,
	// but `auto` must never route an index plan at an unindexed shard).
	Indexed bool `json:"indexed"`
	// Shards is present only for sharded stores.
	Shards []ShardInfo `json:"shards,omitempty"`
}

// ShardInfo describes one shard behind a router.
type ShardInfo struct {
	ID      string `json:"id"`
	Dir     string `json:"dir"`
	D       int    `json:"d"`
	ObjSize int    `json:"objSize"`
	NR      int    `json:"nr"`
	NS      int    `json:"ns"`
	// Draining reports an in-progress RemoveShard: the shard no longer
	// accepts new work and disappears once in-flight joins finish.
	Draining bool `json:"draining"`
	// Pool is the shard's private morsel pool (each shard executes on
	// its own work-stealing pool, independent of its peers).
	Pool exec.Stats `json:"pool"`
}

// ShardJoinStat is one shard's contribution to a scatter-gather join:
// the per-shard statistics and memory-adaptation telemetry a router
// folds into the merged response.
type ShardJoinStat struct {
	Shard     string
	Algorithm string // the algorithm this shard executed (per-shard planning may differ)
	Pairs     int64
	Signature uint64
	ElapsedNs int64

	Restages       int64
	RestagedRefs   int64
	StreamProbes   int64
	Renegotiations int64
	RadixPasses    int64
	PeakTableBytes int64
	TempFiles      int64
}

// ShardRunner is the optional capability of sharded stores: Run with
// the per-shard detail kept. Store.Run is RunShards with the detail
// dropped.
type ShardRunner interface {
	RunShards(req JoinRequest) (JoinStats, []ShardJoinStat, error)
}

var _ Store = (*DB)(nil)

// Stats implements Store for the single mapped database.
func (db *DB) Stats() StoreStats {
	return StoreStats{
		Kind: "single", Dir: db.Dir, D: db.D, ObjSize: db.ObjSize,
		NR: db.CountR(), NS: db.CountS(), Indexed: db.HasIndexes(),
	}
}
