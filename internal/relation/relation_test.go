package relation

import (
	"testing"
	"testing/quick"
)

func smallSpec() Spec {
	s := DefaultSpec()
	s.NR, s.NS = 4000, 4000
	return s
}

func TestValidate(t *testing.T) {
	good := DefaultSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{},
		{NR: 10, NS: 10, RSize: 4, PtrSize: 8, SSize: 8, D: 2},              // ptr larger than object
		{NR: 10, NS: 10, RSize: 16, PtrSize: 8, SSize: 8, D: 20},            // fewer objects than partitions
		{NR: 10, NS: 10, RSize: 16, PtrSize: 8, SSize: 8, D: 2, Dist: Zipf}, // theta missing
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPartitionSizesBalanced(t *testing.T) {
	s := smallSpec()
	s.NR = 4002 // not divisible by 4
	w := MustGenerate(s)
	total := 0
	for i := 0; i < s.D; i++ {
		n := w.SizeR(i)
		if n != 1000 && n != 1001 {
			t.Errorf("SizeR(%d) = %d", i, n)
		}
		if len(w.Refs[i]) != n {
			t.Errorf("Refs[%d] has %d entries, want %d", i, len(w.Refs[i]), n)
		}
		total += n
	}
	if total != s.NR {
		t.Errorf("partition sizes sum to %d, want %d", total, s.NR)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallSpec())
	b := MustGenerate(smallSpec())
	for i := range a.Refs {
		for x := range a.Refs[i] {
			if a.Refs[i][x] != b.Refs[i][x] {
				t.Fatalf("generation not deterministic at [%d][%d]", i, x)
			}
		}
	}
}

func TestUniformSkewNearOne(t *testing.T) {
	w := MustGenerate(smallSpec())
	skew := w.Skew()
	if skew < 1.0 || skew > 1.15 {
		t.Errorf("uniform skew = %g, want ~1.0 (paper: very close to 1)", skew)
	}
}

func TestPointersInRange(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipf, Local, HotPartition} {
		s := smallSpec()
		s.Dist = dist
		s.ZipfTheta = 1.5
		s.LocalFrac = 0.8
		s.HotFrac = 0.5
		w := MustGenerate(s)
		for i := range w.Refs {
			for _, ptr := range w.Refs[i] {
				if ptr.Part < 0 || int(ptr.Part) >= s.D {
					t.Fatalf("%v: partition %d out of range", dist, ptr.Part)
				}
				if ptr.Index < 0 || int(ptr.Index) >= w.SizeS(int(ptr.Part)) {
					t.Fatalf("%v: index %d out of range for S%d", dist, ptr.Index, ptr.Part)
				}
			}
		}
	}
}

func TestLocalDistribution(t *testing.T) {
	s := smallSpec()
	s.Dist = Local
	s.LocalFrac = 0.9
	w := MustGenerate(s)
	counts := w.SubCounts()
	for i := 0; i < s.D; i++ {
		frac := float64(counts[i][i]) / float64(w.SizeR(i))
		if frac < 0.85 {
			t.Errorf("R%d self-references %.2f, want >= 0.85", i, frac)
		}
	}
}

func TestHotPartitionSkew(t *testing.T) {
	s := smallSpec()
	s.Dist = HotPartition
	s.HotFrac = 0.5
	w := MustGenerate(s)
	if skew := w.Skew(); skew < 1.5 {
		t.Errorf("hot-partition skew = %g, want > 1.5", skew)
	}
}

func TestSubCountsConsistentWithRSCounts(t *testing.T) {
	w := MustGenerate(smallSpec())
	sub := w.SubCounts()
	rs := w.RSCounts()
	for j := 0; j < w.Spec.D; j++ {
		sum := 0
		for i := 0; i < w.Spec.D; i++ {
			sum += sub[i][j]
		}
		if sum != rs[j] {
			t.Errorf("RSCounts[%d] = %d, want %d", j, rs[j], sum)
		}
	}
}

func TestJoinSignaturePairCount(t *testing.T) {
	w := MustGenerate(smallSpec())
	_, pairs := w.JoinSignature()
	if pairs != int64(w.Spec.NR) {
		t.Errorf("pairs = %d, want %d (every R object joins exactly once)", pairs, w.Spec.NR)
	}
}

func TestSPtrLessOrdering(t *testing.T) {
	cases := []struct {
		a, b SPtr
		want bool
	}{
		{SPtr{0, 5}, SPtr{1, 0}, true},
		{SPtr{1, 0}, SPtr{0, 5}, false},
		{SPtr{1, 3}, SPtr{1, 4}, true},
		{SPtr{1, 4}, SPtr{1, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestBytesHelpers(t *testing.T) {
	w := MustGenerate(smallSpec())
	if got := w.BytesR(0); got != int64(1000*128) {
		t.Errorf("BytesR(0) = %d", got)
	}
	if got := w.BytesS(0); got != int64(1000*128) {
		t.Errorf("BytesS(0) = %d", got)
	}
}

// Property: for any valid seed and sizes, sub-partition counts sum to
// partition sizes and the signature is seed-stable.
func TestQuickWorkloadConsistency(t *testing.T) {
	f := func(seed int64, rawNR, rawNS uint16) bool {
		s := DefaultSpec()
		s.Seed = seed
		s.NR = int(rawNR)%2000 + 8
		s.NS = int(rawNS)%2000 + 8
		w, err := Generate(s)
		if err != nil {
			return false
		}
		counts := w.SubCounts()
		for i := 0; i < s.D; i++ {
			sum := 0
			for _, c := range counts[i] {
				sum += c
			}
			if sum != w.SizeR(i) {
				return false
			}
		}
		sig1, n1 := w.JoinSignature()
		w2 := MustGenerate(s)
		sig2, n2 := w2.JoinSignature()
		return sig1 == sig2 && n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Distribution(99).String() == "" {
		t.Error("Distribution.String broken")
	}
}

func TestKeysBijective(t *testing.T) {
	w := MustGenerate(smallSpec())
	keys := w.Keys()
	seen := map[uint64]bool{}
	for j := 0; j < w.Spec.D; j++ {
		for x := 0; x < w.SizeS(j); x++ {
			k := keys.KeyOf(SPtr{Part: int32(j), Index: int32(x)})
			if k >= uint64(w.Spec.NS) {
				t.Fatalf("key %d out of range", k)
			}
			if seen[k] {
				t.Fatalf("duplicate key %d", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != w.Spec.NS {
		t.Fatalf("%d distinct keys", len(seen))
	}
}

func TestKeysDeterministicAndUnclustered(t *testing.T) {
	w := MustGenerate(smallSpec())
	a, b := w.Keys(), w.Keys()
	inOrder := 0
	var prev uint64
	for x := 0; x < w.SizeS(0); x++ {
		ptr := SPtr{Part: 0, Index: int32(x)}
		if a.KeyOf(ptr) != b.KeyOf(ptr) {
			t.Fatal("keys not deterministic")
		}
		if x > 0 && a.KeyOf(ptr) > prev {
			inOrder++
		}
		prev = a.KeyOf(ptr)
	}
	// A random permutation is ascending about half the time — far from
	// the fully clustered case.
	n := w.SizeS(0) - 1
	if inOrder < n/3 || inOrder > 2*n/3 {
		t.Errorf("key order suspiciously clustered: %d/%d ascending", inOrder, n)
	}
}

func TestNodeOfCoversAllPartitions(t *testing.T) {
	w := MustGenerate(smallSpec())
	keys := w.Keys()
	counts := make([]int, w.Spec.D)
	for k := uint64(0); k < uint64(w.Spec.NS); k++ {
		n := keys.NodeOf(k)
		if n < 0 || n >= w.Spec.D {
			t.Fatalf("NodeOf(%d) = %d", k, n)
		}
		counts[n]++
	}
	for j, c := range counts {
		if c != w.Spec.NS/w.Spec.D {
			t.Errorf("node %d gets %d keys", j, c)
		}
	}
}

func TestDistinctRefCounts(t *testing.T) {
	w := MustGenerate(smallSpec())
	counts := w.DistinctRefCounts()
	rs := w.RSCounts()
	for j, n := range counts {
		if n < 1 || n > rs[j] || n > w.SizeS(j) {
			t.Errorf("DistinctRefCounts[%d] = %d (|RSj|=%d, |Sj|=%d)", j, n, rs[j], w.SizeS(j))
		}
		// Uniform with |R|=|S|: expect ~(1-1/e) of the partition hit.
		frac := float64(n) / float64(w.SizeS(j))
		if frac < 0.55 || frac > 0.72 {
			t.Errorf("distinct fraction %.2f at partition %d", frac, j)
		}
	}
	// Zipf collapses the distinct set.
	zs := smallSpec()
	zs.Dist = Zipf
	zs.ZipfTheta = 1.5
	zw := MustGenerate(zs)
	zc := zw.DistinctRefCounts()
	if zc[0] >= counts[0] {
		t.Errorf("zipf distinct %d not below uniform %d", zc[0], counts[0])
	}
}
