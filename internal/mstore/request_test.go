package mstore

import (
	"path/filepath"
	"testing"

	"mmjoin/internal/join"
)

func testDB(t *testing.T, d, n int) *DB {
	t.Helper()
	db, err := CreateDB(filepath.Join(t.TempDir(), "db"), d, n, n, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestRunExecutesEveryRealAlgorithm(t *testing.T) {
	db := testDB(t, 3, 3000)
	want := db.ExpectedStats()
	for _, alg := range []join.Algorithm{
		join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash,
	} {
		st, err := db.Run(JoinRequest{Algorithm: alg, MRproc: 8 << 10})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st != want {
			t.Errorf("%v: %+v, want %+v", alg, st, want)
		}
	}
}

func TestRunRejectsNonExecutablePlans(t *testing.T) {
	db := testDB(t, 2, 200)
	if _, err := db.Run(JoinRequest{Algorithm: join.TraditionalGrace}); err == nil {
		t.Error("TraditionalGrace accepted by the real store")
	}
	if _, err := db.Run(JoinRequest{Algorithm: join.Algorithm(42)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := db.Run(JoinRequest{Algorithm: join.Grace, MRproc: -1}); err == nil {
		t.Error("negative grant accepted")
	}
}

func TestRequestDerivesGraceParameters(t *testing.T) {
	db := testDB(t, 2, 2000)
	// K follows the simulator's rule K = ceil(fuzz*|RSi|*r/M) with
	// |RSi| = |R|/D: 1.2*1000*32/4096 = 9.375 -> 10.
	req := JoinRequest{Algorithm: join.Grace, MRproc: 4096}
	if err := req.withDefaults(db); err != nil {
		t.Fatal(err)
	}
	if req.K != 10 {
		t.Errorf("derived K = %d, want 10", req.K)
	}
	if req.Fuzz != 1.2 {
		t.Errorf("Fuzz = %g", req.Fuzz)
	}
	// TmpDir stays empty after defaulting: Run creates (and removes) a
	// per-call temp directory so concurrent default-TmpDir joins cannot
	// collide on the fixed bucket file names.
	if req.TmpDir != "" {
		t.Errorf("TmpDir defaulted to %q, want per-call MkdirTemp in Run", req.TmpDir)
	}
	// An ample grant collapses to one bucket; an explicit K wins.
	ample := JoinRequest{Algorithm: join.Grace, MRproc: 1 << 30}
	if err := ample.withDefaults(db); err != nil {
		t.Fatal(err)
	}
	if ample.K != 1 {
		t.Errorf("ample-memory K = %d, want 1", ample.K)
	}
	explicit := JoinRequest{Algorithm: join.Grace, MRproc: 4096, K: 3}
	if err := explicit.withDefaults(db); err != nil {
		t.Fatal(err)
	}
	if explicit.K != 3 {
		t.Errorf("explicit K overridden to %d", explicit.K)
	}
	// Hybrid-hash residency: the share of one S partition that fits.
	hh := JoinRequest{Algorithm: join.HybridHash, MRproc: 8000}
	if err := hh.withDefaults(db); err != nil {
		t.Fatal(err)
	}
	if want := 8000.0 / (1000 * 32); hh.ResidentFrac != want {
		t.Errorf("ResidentFrac = %g, want %g", hh.ResidentFrac, want)
	}
}

func TestWorkloadMirrorsStoredPointers(t *testing.T) {
	db := testDB(t, 3, 900)
	w, err := db.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if w.Spec.NR != db.CountR() || w.Spec.NS != db.CountS() || w.Spec.D != db.D {
		t.Fatalf("spec shape wrong: %+v", w.Spec)
	}
	if w.Spec.RSize != db.ObjSize || w.Spec.PtrSize != sptrBytes {
		t.Fatalf("spec sizes wrong: %+v", w.Spec)
	}
	for i, rel := range db.R {
		if len(w.Refs[i]) != rel.Count() {
			t.Fatalf("R%d: %d refs for %d objects", i, len(w.Refs[i]), rel.Count())
		}
		for x := 0; x < rel.Count(); x++ {
			ptr := DecodeSPtr(rel.Object(x))
			ref := w.Refs[i][x]
			if int32(ptr.Part) != ref.Part ||
				db.S[ptr.Part].PtrAt(int(ref.Index)) != ptr.Off {
				t.Fatalf("R%d[%d]: ref %+v does not round-trip to %+v", i, x, ref, ptr)
			}
		}
	}
	if skew := w.Skew(); skew < 1 || skew > 2 {
		t.Errorf("uniform db skew = %g", skew)
	}
}
