// GIS: a geographic store — the third application domain the paper's
// introduction cites. Land parcels (S) carry bounding boxes; survey
// observations (R) hold virtual pointers to their parcels. An STR-packed
// R-tree inside the parcel segment answers region queries, and the
// parallel pointer joins aggregate observations per parcel. The store is
// reopened between build and query to show the spatial index surviving
// with no pointer fixup.
//
// Run with: go run ./examples/gis
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"mmjoin/internal/mstore"
)

// Parcel payload (after the 8-byte identity word): center x, y as
// float64 (the full box is reconstructed from a fixed half-extent).
const (
	parcelXOff = 8
	parcelYOff = 16
	halfExtent = 0.5
)

func main() {
	dir, err := os.MkdirTemp("", "mmjoin-gis")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		d            = 4
		parcels      = 8000
		observations = 32000
		objSize      = 64
	)

	// Build parcels and observations; give each parcel a position on a
	// 100x100 map.
	db, err := mstore.CreateDB(filepath.Join(dir, "land"), d, observations, parcels, objSize, 17)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var entries []mstore.SpatialEntry
	for j := 0; j < d; j++ {
		for x := 0; x < db.S[j].Count(); x++ {
			obj := db.S[j].Object(x)
			px, py := rng.Float64()*100, rng.Float64()*100
			binary.LittleEndian.PutUint64(obj[parcelXOff:], math.Float64bits(px))
			binary.LittleEndian.PutUint64(obj[parcelYOff:], math.Float64bits(py))
			if j == 0 { // index partition 0's parcels spatially
				entries = append(entries, mstore.SpatialEntry{
					Rect: mstore.Rect{
						MinX: px - halfExtent, MinY: py - halfExtent,
						MaxX: px + halfExtent, MaxY: py + halfExtent,
					},
					Item: db.S[0].PtrAt(x),
				})
			}
		}
	}
	tree, err := mstore.BuildRTree(db.S[0].Segment(), entries, 16)
	if err != nil {
		log.Fatal(err)
	}
	db.S[0].Segment().SetAuxRoot(tree.Head())
	fmt.Printf("built: %d parcels (%d spatially indexed), %d observations; R-tree height %d\n",
		parcels, tree.Len(), observations, tree.Height())
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: the R-tree and all cross-segment pointers remain valid.
	db, err = mstore.OpenDB(filepath.Join(dir, "land"), d)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tree, err = mstore.OpenRTree(db.S[0].Segment(), db.S[0].Segment().AuxRoot())
	if err != nil {
		log.Fatal(err)
	}

	// Count observations per parcel with a pointer join.
	perParcel := map[mstore.SPtr]int{}
	for i := 0; i < d; i++ {
		for x := 0; x < db.R[i].Count(); x++ {
			perParcel[mstore.DecodeSPtr(db.R[i].Object(x))]++
		}
	}
	st, err := db.HybridHash(filepath.Join(dir, "tmp"), 8, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined %d observations with their parcels (hybrid-hash pointer join)\n", st.Pairs)

	// Region report: parcels in a window, with their observation counts,
	// via the persistent spatial index.
	window := mstore.Rect{MinX: 25, MinY: 25, MaxX: 35, MaxY: 35}
	found, obs := 0, 0
	tree.Search(window, func(e mstore.SpatialEntry) bool {
		found++
		obs += perParcel[mstore.SPtr{Part: 0, Off: e.Item}]
		return true
	})
	fmt.Printf("region (%.0f,%.0f)-(%.0f,%.0f): %d parcels, %d observations\n",
		window.MinX, window.MinY, window.MaxX, window.MaxY, found, obs)
}
