package join

import (
	"fmt"

	"mmjoin/internal/machine"
)

// Request is one fully-specified join execution: the algorithm, the
// machine it runs on, and the tuning parameters. It is the package's
// primary entry point; build a Request, then call Run:
//
//	res, err := join.Request{
//		Algorithm: join.Grace,
//		Config:    cfg,
//		Params:    join.Params{Workload: w, MRproc: mem, Stagger: true},
//	}.Run()
//
// Validation and default derivation happen exactly once, in Validate
// (which Run calls on its own copy), so a Request can be costed by the
// planner, logged, and executed without re-deriving options at each
// layer.
type Request struct {
	Algorithm Algorithm
	Config    machine.Config
	Params
}

// Validate checks the request and folds derived defaults into it in
// place (MSproc, G, Fuzz — the same derivations Run applies). It is
// idempotent; callers that only execute the request need not call it.
func (req *Request) Validate() error {
	switch req.Algorithm {
	case NestedLoops, SortMerge, Grace, HybridHash, TraditionalGrace:
	case IndexNL, IndexMerge:
		return fmt.Errorf("join: %v runs only on the real store's persistent indexes (mstore), not the simulator", req.Algorithm)
	default:
		return fmt.Errorf("join: unknown algorithm %v", req.Algorithm)
	}
	return req.Params.withDefaults(req.Config)
}

// Run executes the request on a fresh machine built from its Config and
// returns the result. The machine, all processes, and all I/O exist only
// for this call; runs are deterministic.
func (req Request) Run() (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	m, err := machine.New(req.Config)
	if err != nil {
		return nil, err
	}
	m.StartMetrics(req.Metrics, req.MetricsTick)
	r := newRunner(m, req.Params)
	switch req.Algorithm {
	case NestedLoops:
		r.runNestedLoops()
	case SortMerge:
		r.runSortMerge()
	case Grace:
		r.runGrace()
	case HybridHash:
		r.runHybridHash()
	case TraditionalGrace:
		r.runTraditionalGrace()
	}
	r.res.Algorithm = req.Algorithm
	return &r.res, nil
}

// MustRun is Run, panicking on error.
func (req Request) MustRun() *Result {
	res, err := req.Run()
	if err != nil {
		panic(err)
	}
	return res
}
