package metrics

import (
	"math/rand"
	"testing"

	"mmjoin/internal/sim"
)

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := New().Histogram("empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram mean=%v count=%d, want 0/0", h.Mean(), h.Count())
	}
}

func TestHistogramAllEqualQuantiles(t *testing.T) {
	h := New().Histogram("flat")
	const v = sim.Time(123456)
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	// Every quantile of a constant distribution is that constant: the
	// in-bucket interpolation must be clamped by min==max.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, v)
		}
	}
	if h.Mean() != v {
		t.Errorf("mean %v, want %v", h.Mean(), v)
	}
}

func TestHistogramQuantileMonotoneUnderRandomFills(t *testing.T) {
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := New().Histogram("rand")
		n := 1 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			// Mix magnitudes so fills cross many geometric buckets.
			h.Observe(sim.Time(rng.Int63n(1 << uint(1+rng.Intn(40)))))
		}
		prev := sim.Time(-1)
		for _, q := range quantiles {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: Quantile(%v) = %v < previous %v", seed, q, v, prev)
			}
			prev = v
			if v < h.Min() || v > h.Max() {
				t.Fatalf("seed %d: Quantile(%v) = %v outside [min %v, max %v]",
					seed, q, v, h.Min(), h.Max())
			}
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := New().Histogram("a")
	b := New().Histogram("b")
	for i := 1; i <= 100; i++ {
		a.Observe(sim.Time(i) * 1000)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(sim.Time(i) * 1000)
	}
	want := New().Histogram("want")
	for i := 1; i <= 200; i++ {
		want.Observe(sim.Time(i) * 1000)
	}

	a.Merge(b)
	if a.Count() != want.Count() || a.Sum() != want.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v", a.Count(), a.Sum(), want.Count(), want.Sum())
	}
	if a.Min() != want.Min() || a.Max() != want.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), want.Min(), want.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := a.Quantile(q); got != want.Quantile(q) {
			t.Errorf("merged Quantile(%v) = %v, want %v (direct fill)", q, got, want.Quantile(q))
		}
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	// Nil receiver and nil/empty operands must all be no-ops.
	var nilH *Histogram
	nilH.Merge(New().Histogram("x")) // must not panic

	h := New().Histogram("h")
	h.Observe(500)
	h.Merge(nil)
	h.Merge(New().Histogram("empty"))
	if h.Count() != 1 || h.Min() != 500 || h.Max() != 500 {
		t.Fatalf("no-op merges changed state: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}

	// Merging into an empty histogram must adopt the other's min even
	// though the receiver's zero-valued min is numerically smaller.
	empty := New().Histogram("fresh")
	empty.Merge(h)
	if empty.Min() != 500 || empty.Max() != 500 || empty.Count() != 1 {
		t.Fatalf("merge into empty: count=%d min=%v max=%v, want 1/500/500",
			empty.Count(), empty.Min(), empty.Max())
	}
}
