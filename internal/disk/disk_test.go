package disk

import (
	"testing"
	"testing/quick"

	"mmjoin/internal/metrics"
	"mmjoin/internal/sim"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Blocks = 20000
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{BlockBytes: 4096},
		{BlockBytes: 4096, Blocks: 100},
		{BlockBytes: 4096, Blocks: 100, BlocksPerCylinder: 8},
	}
	for i, c := range bad {
		k := sim.NewKernel()
		if _, err := New(k, "d", c); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
	k := sim.NewKernel()
	d, err := New(k, "d", DefaultConfig())
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	d.Close()
	k.Run()
}

func TestSequentialReadCostsTransferOnly(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	var second sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 100)
		start := p.Now()
		d.Read(p, 101) // sequential continuation
		second = p.Now() - start
		d.Close()
	})
	k.Run()
	if want := cfg.Transfer + cfg.FaultOverhead; second != want {
		t.Errorf("sequential read cost %v, want %v", second, want)
	}
}

func TestRandomReadCostsSeekPlusRotation(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	var far sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 0)
		start := p.Now()
		d.Read(p, cfg.Blocks-1) // full-stroke seek
		far = p.Now() - start
		d.Close()
	})
	k.Run()
	want := cfg.SeekMax + cfg.Rotation/2 + cfg.Transfer + cfg.FaultOverhead
	if far != want {
		t.Errorf("full-stroke read cost %v, want %v", far, want)
	}
}

func TestSameCylinderNoSeek(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	var cost sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 0)
		start := p.Now()
		d.Read(p, 5) // same cylinder (BlocksPerCylinder=64), not sequential
		cost = p.Now() - start
		d.Close()
	})
	k.Run()
	want := cfg.Rotation/2 + cfg.Transfer + cfg.FaultOverhead
	if cost != want {
		t.Errorf("same-cylinder read cost %v, want %v", cost, want)
	}
}

func TestReadOutOfRangePanics(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("r", func(p *sim.Proc) {
		defer d.Close()
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range block")
			}
		}()
		d.Read(p, cfg.Blocks)
	})
	k.Run()
}

func TestScheduleWriteIsAsync(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	var queued sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			d.ScheduleWrite(p, i*100)
		}
		queued = p.Now()
		d.Drain(p)
		if d.DirtyQueued() != 0 {
			t.Errorf("DirtyQueued = %d after Drain", d.DirtyQueued())
		}
		d.Close()
	})
	end := k.Run()
	if queued != 0 {
		t.Errorf("queuing writes took %v, want 0 (deferred)", queued)
	}
	if end == 0 {
		t.Error("flusher did no work")
	}
	if got := d.Stats().Writes; got != 10 {
		t.Errorf("Writes = %d, want 10", got)
	}
}

func TestDuplicateDirtyBlockCoalesced(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		d.ScheduleWrite(p, 7)
		d.ScheduleWrite(p, 7)
		d.ScheduleWrite(p, 7)
		d.Drain(p)
		d.Close()
	})
	k.Run()
	if got := d.Stats().Writes; got != 1 {
		t.Errorf("Writes = %d, want 1 (coalesced)", got)
	}
}

func TestWriteThrottling(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteQueue = 4
	cfg.WriteBatch = 2
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			d.ScheduleWrite(p, i*37%cfg.Blocks)
		}
		d.Drain(p)
		d.Close()
	})
	k.Run()
	if d.Stats().Stalls == 0 {
		t.Error("expected writer stalls with a tiny queue")
	}
	if d.Stats().Writes != 50 {
		t.Errorf("Writes = %d, want 50", d.Stats().Writes)
	}
}

func TestReadsInterleaveWithFlush(t *testing.T) {
	// A reader should not wait for the whole dirty queue: the arm is
	// acquired per block.
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	var readDone sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			d.ScheduleWrite(p, (i*997)%cfg.Blocks)
		}
		d.Drain(p)
		d.Close()
	})
	k.Spawn("r", func(p *sim.Proc) {
		d.Read(p, 12345)
		readDone = p.Now()
	})
	end := k.Run()
	if readDone >= end {
		t.Errorf("read finished at %v, end %v: no interleaving", readDone, end)
	}
}

func TestDrainOnIdleDiskReturnsImmediately(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("p", func(p *sim.Proc) {
		d.Drain(p)
		d.Close()
	})
	if end := k.Run(); end != 0 {
		t.Errorf("end = %v, want 0", end)
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	d.Close()
	k.Run()
	prev := sim.Time(-1)
	for dist := 0; dist < 200; dist += 10 {
		st := d.seekTime(0, dist)
		if st < prev {
			t.Fatalf("seekTime not monotone at cylinder distance %d", dist)
		}
		prev = st
	}
	if d.seekTime(5, 5) != 0 {
		t.Error("zero-distance seek should be free")
	}
}

func TestNearestIndex(t *testing.T) {
	blocks := []int{10, 20, 30}
	cases := []struct{ pos, want int }{
		{0, 0}, {10, 0}, {14, 0}, {16, 1}, {25, 0 + 1}, {26, 2}, {99, 2},
	}
	for _, c := range cases {
		if got := nearestIndex(blocks, c.pos); got != c.want {
			t.Errorf("nearestIndex(%d) = %d, want %d", c.pos, got, c.want)
		}
	}
}

func TestQuickNearestIndexIsNearest(t *testing.T) {
	f := func(raw []uint16, pos uint16) bool {
		if len(raw) == 0 {
			return true
		}
		blocks := make([]int, 0, len(raw))
		seen := map[int]bool{}
		for _, r := range raw {
			if !seen[int(r)] {
				seen[int(r)] = true
				blocks = append(blocks, int(r))
			}
		}
		sortInts(blocks)
		got := nearestIndex(blocks, int(pos))
		best := -1
		bestDist := 1 << 30
		for i, b := range blocks {
			d := b - int(pos)
			if d < 0 {
				d = -d
			}
			if d < bestDist {
				bestDist = d
				best = i
			}
		}
		gd := blocks[got] - int(pos)
		if gd < 0 {
			gd = -gd
		}
		return gd == bestDist && best >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestMeasureDTTShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	cfg := DefaultConfig()
	pts := MeasureDTT(cfg, []int{1, 1600, 12800}, 2000, 1)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	seq, mid, big := pts[0], pts[1], pts[2]
	// Sequential access is cheapest and read≈write.
	if seq.Read >= mid.Read || mid.Read >= big.Read {
		t.Errorf("dttr not increasing with band: %v %v %v", seq.Read, mid.Read, big.Read)
	}
	if seq.Write >= mid.Write || mid.Write >= big.Write {
		t.Errorf("dttw not increasing with band: %v %v %v", seq.Write, mid.Write, big.Write)
	}
	// Deferred SSTF writes must be cheaper than reads for random bands.
	if big.Write >= big.Read {
		t.Errorf("dttw (%v) should be below dttr (%v) at large band", big.Write, big.Read)
	}
	// Rough magnitude check against the paper's Fig 1(a): single-digit ms
	// sequential, tens of ms random.
	if seq.Read < sim.Millisecond || seq.Read > 10*sim.Millisecond {
		t.Errorf("sequential dttr %v out of the expected few-ms range", seq.Read)
	}
	if big.Read < 10*sim.Millisecond || big.Read > 40*sim.Millisecond {
		t.Errorf("random dttr %v out of the expected tens-of-ms range", big.Read)
	}
}

func TestMeasureDTTDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := MeasureDTT(cfg, []int{100}, 300, 42)
	b := MeasureDTT(cfg, []int{100}, 300, 42)
	if a[0] != b[0] {
		t.Errorf("calibration not deterministic: %+v vs %+v", a[0], b[0])
	}
}

func TestMeasureDTTParallelMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	bands := []int{1, 100, 400, 1600}
	want := MeasureDTT(cfg, bands, 300, 42)
	for _, par := range []int{2, 4, 0} { // 0 selects GOMAXPROCS
		got := MeasureDTTParallel(cfg, bands, 300, 42, par)
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d points, want %d", par, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parallelism %d band %d: %+v, want %+v", par, want[i].Band, got[i], want[i])
			}
		}
	}
}

func TestRedirtyDuringFlushWritesTwice(t *testing.T) {
	// Regression: a block re-dirtied after the flusher picked it up (but
	// before its write completed) was silently coalesced away, losing the
	// second store. It must be queued for a second physical write.
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		d.ScheduleWrite(p, 7)
		// Yield so the flusher extracts the batch and starts the write
		// (service time is several ms, so it is still mid-write).
		p.Advance(sim.Millisecond)
		if d.DirtyQueued() != 1 {
			t.Errorf("DirtyQueued = %d mid-flush, want 1", d.DirtyQueued())
		}
		d.ScheduleWrite(p, 7) // re-dirty while the first write is in flight
		d.Drain(p)
		d.Close()
	})
	k.Run()
	if got := d.Stats().Writes; got != 2 {
		t.Errorf("Writes = %d, want 2 (re-dirty mid-flush must not be lost)", got)
	}
}

func TestRedirtyBeforeFlushStillCoalesces(t *testing.T) {
	// The dedup must still collapse duplicates that are queued but not yet
	// picked up — only mid-flush re-dirties get a second write.
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		d.ScheduleWrite(p, 7)
		d.ScheduleWrite(p, 7) // no yield: flusher has not run yet
		d.Drain(p)
		d.Close()
	})
	k.Run()
	if got := d.Stats().Writes; got != 1 {
		t.Errorf("Writes = %d, want 1 (still queued, coalesced)", got)
	}
}

func TestStatsComponentsSumToServiceSum(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			d.Read(p, (i*997)%cfg.Blocks)
			if i%3 == 0 {
				d.ScheduleWrite(p, (i*1201)%cfg.Blocks)
			}
		}
		d.Drain(p)
		d.Close()
	})
	k.Run()
	s := d.Stats()
	if sum := s.SeekTime + s.RotationTime + s.TransferTime + s.OverheadTime; sum != s.ServiceSum {
		t.Errorf("components sum to %v, ServiceSum %v", sum, s.ServiceSum)
	}
	if s.SeekTime == 0 || s.RotationTime == 0 || s.TransferTime == 0 || s.OverheadTime == 0 {
		t.Errorf("expected all components non-zero: %+v", s)
	}
}

func TestSeekTimeExcludesRotation(t *testing.T) {
	// Regression: rotational latency was lumped into SeekTime. After one
	// full-stroke read, the seek component must be exactly SeekMax and the
	// rotation component exactly Rotation/2.
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("r", func(p *sim.Proc) {
		d.Read(p, cfg.Blocks-1) // head starts at cylinder 0: full stroke
		d.Close()
	})
	k.Run()
	s := d.Stats()
	if s.SeekTime != cfg.SeekMax {
		t.Errorf("SeekTime = %v, want exactly SeekMax %v", s.SeekTime, cfg.SeekMax)
	}
	if want := cfg.Rotation / 2; s.RotationTime != want {
		t.Errorf("RotationTime = %v, want %v", s.RotationTime, want)
	}
	if s.TransferTime != cfg.Transfer || s.OverheadTime != cfg.FaultOverhead {
		t.Errorf("Transfer/Overhead = %v/%v, want %v/%v",
			s.TransferTime, s.OverheadTime, cfg.Transfer, cfg.FaultOverhead)
	}
}

func TestInstrumentPopulatesRegistry(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteQueue = 4
	cfg.WriteBatch = 2
	k := sim.NewKernel()
	reg := metrics.New()
	d := MustNew(k, "d0", cfg)
	d.Instrument(reg)
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			d.Read(p, (i*997)%cfg.Blocks)
			d.ScheduleWrite(p, (i*37)%cfg.Blocks)
		}
		// Burst past the tiny queue without yielding to force stalls.
		for i := 0; i < 20; i++ {
			d.ScheduleWrite(p, (i*1201+5)%cfg.Blocks)
		}
		d.Drain(p)
		d.Close()
	})
	k.Run()
	reg.Sample(k.Now())
	vals := reg.Samples()[0].Values
	if vals["d0.reads"] != 30 {
		t.Errorf("d0.reads gauge = %v", vals["d0.reads"])
	}
	if u := vals["d0.arm_util"]; u <= 0 || u > 1 {
		t.Errorf("d0.arm_util = %v, want (0,1]", u)
	}
	var hTotal sim.Time
	var hCount int64
	for _, h := range reg.Histograms() {
		hTotal += h.Sum()
		hCount += h.Count()
	}
	s := d.Stats()
	if hTotal != s.ServiceSum {
		t.Errorf("histogram totals %v != ServiceSum %v", hTotal, s.ServiceSum)
	}
	if hCount != s.Reads+s.Writes {
		t.Errorf("histogram count %d != reads+writes %d", hCount, s.Reads+s.Writes)
	}
	// The tiny queue forces stalls; they must reach the counter too.
	var stallCounter int64 = -1
	for _, c := range reg.Counters() {
		if c.Name() == "d0.stalls" {
			stallCounter = c.Value()
		}
	}
	if stallCounter != s.Stalls || stallCounter <= 0 {
		t.Errorf("stall counter %d, stats %d (want equal and positive)", stallCounter, s.Stalls)
	}
}

func TestWriteAfterClosePanics(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		d.Close()
		defer func() {
			if recover() == nil {
				t.Error("ScheduleWrite after Close should panic")
			}
		}()
		d.ScheduleWrite(p, 1)
	})
	k.Run()
}

func TestCloseIdempotentWithPendingWrites(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d", cfg)
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			d.ScheduleWrite(p, i*100)
		}
		d.Close()
		d.Close() // second close is harmless
	})
	k.Run()
	if d.Stats().Writes != 5 {
		t.Errorf("Writes = %d, want 5 (flusher drains before exiting)", d.Stats().Writes)
	}
}
