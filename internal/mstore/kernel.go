package mstore

import "encoding/binary"

// The kernel layer holds the cache-conscious inner loops of the joins.
// The morsel pool (internal/exec) decides *where* work runs; these
// kernels decide *how* one morsel's objects move through the cache
// hierarchy:
//
//   - joinKernel/joinBatch restructure the one-object-at-a-time pointer
//     dereference into fixed-width batches: a gather stage issues all of
//     a batch's S-side reads back-to-back (independent loads, so the
//     cache misses overlap in the memory pipeline) before the join stage
//     folds the pairs. Go has no prefetch intrinsics; the stride-ahead
//     read loop is the software equivalent, and cmd/bench measures it
//     instead of assuming (batch widths 1/16/64 in the kernels panel).
//   - probeArena (kernel_table.go) replaces the per-bucket Go map with a
//     flat open-addressing table carved from a reusable per-worker
//     arena: zero steady-state allocations on the probe path.
//   - radixPlan (kernel_radix.go) splits a k-way bucket fan-out into
//     passes of at most 1<<radixBits destinations each, so every scatter
//     pass's working set of destination pages stays cache-sized.
//
// Every kernel is gated on bit-identical Pairs/Signature against the
// straight-line reference loops: the signatures fold as commutative
// sums, so batching, table layout, and pass structure are free to
// reorder work (TestKernelSignatureGrid asserts the whole grid).

const (
	// defaultRadixBits bounds one partitioning pass to 2^8 = 256
	// destination buckets — with 4 KiB bucket pages that is a ~1 MiB
	// destination working set, sized to stay inside a typical L2 and
	// well within TLB reach. JoinRequest.RadixBits overrides.
	defaultRadixBits = 8
	// maxRadixBits caps the per-pass fan-out (2^16 destinations); more
	// never helps and the counting arrays are sized by it.
	maxRadixBits = 16
	// defaultProbeBatch is the gather width of the batched probe
	// kernels; measured best on the bench hosts (see BENCH_mstore.json
	// kernels panel). JoinRequest.ProbeBatch overrides.
	defaultProbeBatch = 64
	// maxProbeBatch bounds the batch buffers carried on morsel stacks.
	maxProbeBatch = 64
)

// kernelConfig carries the two kernel tuning knobs through a join.
type kernelConfig struct {
	radixBits  int // per-pass partitioning fan-out is 1<<radixBits
	probeBatch int // gather width of the batched probe kernels
}

func (c kernelConfig) withDefaults() kernelConfig {
	if c.radixBits <= 0 {
		c.radixBits = defaultRadixBits
	}
	if c.radixBits > maxRadixBits {
		c.radixBits = maxRadixBits
	}
	if c.probeBatch <= 0 {
		c.probeBatch = defaultProbeBatch
	}
	if c.probeBatch > maxProbeBatch {
		c.probeBatch = maxProbeBatch
	}
	return c
}

// joinKernel is one join's view of the mapped store for the batched
// kernels: a full-segment byte view per S partition (the base relations
// never grow during a join, so the views are stable), and the batch
// width. One joinKernel is shared read-only by all of a join's morsels.
type joinKernel struct {
	db    *DB
	sv    [][]byte // segment views indexed by S partition
	batch int
}

func newJoinKernel(db *DB, kc kernelConfig) *joinKernel {
	sv := make([][]byte, len(db.S))
	for j, rel := range db.S {
		sv[j] = rel.seg.data
	}
	return &joinKernel{db: db, sv: sv, batch: kc.probeBatch}
}

// sWord reads the identity word of the S object at ptr through the
// cached segment view (one bounds check, no per-call header reads).
func (k *joinKernel) sWord(p SPtr) uint64 {
	return binary.LittleEndian.Uint64(k.sv[p.Part][p.Off:])
}

// joinBatch folds R→S pairs in fixed-width batches. add records one
// reference; flush runs the two stages: the gather loop issues every
// S-side read of the batch (independent loads — the misses overlap),
// then the fold loop hashes against the already-loaded words. Callers
// create one joinBatch per morsel (stack-sized) and must flush the tail
// before folding the morsel's accumulator.
type joinBatch struct {
	k   *joinKernel
	n   int
	rid [maxProbeBatch]uint64
	ptr [maxProbeBatch]SPtr
}

func (k *joinKernel) newBatch() joinBatch { return joinBatch{k: k} }

// add queues one R object's pair; obj must be an R-layout record
// (S-pointer then R id).
func (b *joinBatch) add(obj []byte, st *JoinStats) {
	b.addPair(binary.LittleEndian.Uint64(obj[ridOffset:]), DecodeSPtr(obj), st)
}

// addPair queues one already-decoded (rid, S-pointer) pair — the entry
// point for the index operators, whose probes yield S locations without
// an R-layout record in hand.
func (b *joinBatch) addPair(rid uint64, p SPtr, st *JoinStats) {
	b.ptr[b.n] = p
	b.rid[b.n] = rid
	b.n++
	if b.n >= b.k.batch {
		b.flush(st)
	}
}

// flush drains the queued pairs into st.
func (b *joinBatch) flush(st *JoinStats) {
	n := b.n
	if n == 0 {
		return
	}
	var sw [maxProbeBatch]uint64
	for i := 0; i < n; i++ { // gather: S-side reads back-to-back
		sw[i] = b.k.sWord(b.ptr[i])
	}
	for i := 0; i < n; i++ { // fold: hash against loaded words
		st.Signature += pairHash(b.rid[i], sw[i])
	}
	st.Pairs += int64(n)
	b.n = 0
}

// joinRange batch-joins the objects [lo, hi) of an R-layout relation —
// the kernel form of the old per-object joinOne loop.
func (k *joinKernel) joinRange(rel *Relation, lo, hi int, st *JoinStats) {
	view, base, size := rel.seg.data, int64(rel.data), rel.size
	b := k.newBatch()
	for x := lo; x < hi; x++ {
		b.add(view[base+int64(x)*size:base+int64(x+1)*size], st)
	}
	b.flush(st)
}
