package model

import (
	"mmjoin/internal/disk"
	"mmjoin/internal/machine"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
)

// Calibration bundles the measured machine-dependent functions and
// constants the model consumes — the analogue of the paper's Fig. 1
// measurements plus microbenchmarked CPU costs.
type Calibration struct {
	B int64 // page size

	DTTR, DTTW Curve // ns per block vs band size in blocks (Fig. 1a)

	NewMap, OpenMap, DeleteMap Curve // ns vs mapping size in pages (Fig. 1b)

	CS       sim.Time
	Map      sim.Time
	Hash     sim.Time
	Compare  sim.Time
	Swap     sim.Time
	Transfer sim.Time

	MTpp, MTps, MTsp, MTss float64 // ns per byte

	HP int64 // heap element size, bytes
}

// Calibrate measures the machine exactly as the paper measured its
// testbed: the dtt curves by random I/O in swept bands, the mapping
// costs by timed map operations, and the CPU constants as a
// microbenchmark would report them (here: read from the configuration).
// opsPerBand controls calibration effort; seed fixes the random access
// patterns.
func Calibrate(cfg machine.Config, opsPerBand int, seed int64) Calibration {
	return CalibrateParallel(cfg, opsPerBand, seed, 1)
}

// CalibrateParallel is Calibrate with the dtt band measurements spread
// across parallelism host workers (zero or negative selects GOMAXPROCS).
// The result is identical to Calibrate for any worker count: each band
// measures on its own drive with a band-local seed.
func CalibrateParallel(cfg machine.Config, opsPerBand int, seed int64, parallelism int) Calibration {
	dtt := disk.MeasureDTTParallel(cfg.Disk, disk.StandardBands, opsPerBand, seed, parallelism)
	setup := seg.MeasureSetup(cfg.Disk, cfg.Setup, seg.StandardSetupSizes)

	bands := make([]float64, len(dtt))
	reads := make([]float64, len(dtt))
	writes := make([]float64, len(dtt))
	for i, pt := range dtt {
		bands[i] = float64(pt.Band)
		reads[i] = float64(pt.Read)
		writes[i] = float64(pt.Write)
	}
	sizes := make([]float64, len(setup))
	news := make([]float64, len(setup))
	opens := make([]float64, len(setup))
	dels := make([]float64, len(setup))
	for i, pt := range setup {
		sizes[i] = float64(pt.Pages)
		news[i] = float64(pt.New)
		opens[i] = float64(pt.Open)
		dels[i] = float64(pt.Delete)
	}
	return Calibration{
		B:         int64(cfg.B()),
		DTTR:      MustCurve(bands, reads),
		DTTW:      MustCurve(bands, writes),
		NewMap:    MustCurve(sizes, news),
		OpenMap:   MustCurve(sizes, opens),
		DeleteMap: MustCurve(sizes, dels),
		CS:        cfg.CS,
		Map:       cfg.MapCost,
		Hash:      cfg.HashCost,
		Compare:   cfg.CompareCost,
		Swap:      cfg.SwapCost,
		Transfer:  cfg.TransferCost,
		MTpp:      cfg.MTpp, MTps: cfg.MTps, MTsp: cfg.MTsp, MTss: cfg.MTss,
		HP: int64(cfg.HeapPtrBytes),
	}
}
