package vm

import (
	"testing"

	"mmjoin/internal/disk"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
)

// benchRun spawns fn as the only simulated process and runs the kernel
// to completion, closing the drive afterwards.
func benchRun(b *testing.B, fn func(p *sim.Proc, m *seg.Manager, d *disk.Disk)) {
	b.Helper()
	k := sim.NewKernel()
	cfg := disk.DefaultConfig()
	d := disk.MustNew(k, "d0", cfg)
	m := seg.NewManager(seg.NewSystem(seg.DefaultSetupCost()), d)
	k.Spawn("bench", func(p *sim.Proc) {
		fn(p, m, d)
		d.Drain(p)
		d.Close()
	})
	k.Run()
}

// BenchmarkTouchHit measures the resident fast path: every touch hits and
// only reorders the replacement list.
func BenchmarkTouchHit(b *testing.B) {
	b.ReportAllocs()
	benchRun(b, func(p *sim.Proc, m *seg.Manager, d *disk.Disk) {
		const resident = 32
		pg := New("pg", 2*resident)
		s := m.Preexisting("s", int64(resident)*int64(d.Config().BlockBytes))
		for page := 0; page < resident; page++ {
			pg.TouchPage(p, s, page, false)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pg.TouchPage(p, s, i%resident, false)
		}
		b.StopTimer()
	})
}

// BenchmarkTouchFaultEvict measures the replacement path: a sequential
// cycle over four times the frame quota, so every touch faults and must
// evict a clean victim.
func BenchmarkTouchFaultEvict(b *testing.B) {
	b.ReportAllocs()
	benchRun(b, func(p *sim.Proc, m *seg.Manager, d *disk.Disk) {
		const frames = 256
		span := 4 * frames
		pg := New("pg", frames)
		s := m.Preexisting("s", int64(span)*int64(d.Config().BlockBytes))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pg.TouchPage(p, s, i%span, false)
		}
		b.StopTimer()
	})
}

// BenchmarkTouchFaultEvictDirty is the replacement path with every page
// dirtied, exercising the clean-victim preference search and the pageout
// hand-off on each eviction.
func BenchmarkTouchFaultEvictDirty(b *testing.B) {
	b.ReportAllocs()
	benchRun(b, func(p *sim.Proc, m *seg.Manager, d *disk.Disk) {
		const frames = 256
		span := 4 * frames
		pg := New("pg", frames)
		s := m.Preexisting("s", int64(span)*int64(d.Config().BlockBytes))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pg.TouchPage(p, s, i%span, true)
		}
		b.StopTimer()
	})
}
