// Package core is the library's top-level API: it assembles a workload,
// calibrates the machine's measured functions, executes the parallel
// pointer-based join algorithms on the simulated memory-mapped machine,
// evaluates the analytical model for the same configuration, and compares
// the two — the paper's model-validation methodology (§8) as a reusable
// component, including the memory sweeps behind Fig. 5.
package core

import (
	"fmt"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// Experiment couples a machine configuration, a generated workload, and
// the machine's calibration. It is safe for sequential reuse across many
// Measure/Predict calls (each Measure builds a fresh simulated machine).
type Experiment struct {
	Cfg   machine.Config
	Spec  relation.Spec
	W     *relation.Workload
	Calib model.Calibration
}

// CalibrationOps is the default calibration effort (random I/Os measured
// per band size).
const CalibrationOps = 2000

// NewExperiment generates the workload and calibrates the machine.
func NewExperiment(cfg machine.Config, spec relation.Spec) (*Experiment, error) {
	if cfg.D != spec.D {
		return nil, fmt.Errorf("core: machine D=%d but workload D=%d", cfg.D, spec.D)
	}
	w, err := relation.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		Cfg:   cfg,
		Spec:  spec,
		W:     w,
		Calib: model.Calibrate(cfg, CalibrationOps, spec.Seed),
	}, nil
}

// MustNewExperiment is NewExperiment, panicking on error.
func MustNewExperiment(cfg machine.Config, spec relation.Spec) *Experiment {
	e, err := NewExperiment(cfg, spec)
	if err != nil {
		panic(err)
	}
	return e
}

// TotalRBytes returns |R|·r, the denominator of the paper's memory axis.
func (e *Experiment) TotalRBytes() int64 {
	return int64(e.Spec.NR) * int64(e.Spec.RSize)
}

// ParamsForFraction builds join parameters giving each Rproc (and Sproc)
// frac·|R|·r bytes of private memory — one point on the Fig. 5 x-axis.
func (e *Experiment) ParamsForFraction(frac float64) join.Params {
	return join.Params{
		Workload: e.W,
		MRproc:   int64(frac * float64(e.TotalRBytes())),
		Stagger:  true,
	}
}

// Measure executes the algorithm on a fresh simulated machine.
func (e *Experiment) Measure(alg join.Algorithm, prm join.Params) (*join.Result, error) {
	if prm.Workload == nil {
		prm.Workload = e.W
	}
	return join.Run(alg, e.Cfg, prm)
}

// Inputs converts join parameters into model inputs, using the measured
// workload skew.
func (e *Experiment) Inputs(prm join.Params) model.Inputs {
	maxDistinct := 0
	for _, n := range e.W.DistinctRefCounts() {
		if n > maxDistinct {
			maxDistinct = n
		}
	}
	return model.Inputs{
		NR: int64(e.Spec.NR), NS: int64(e.Spec.NS),
		R: int64(e.Spec.RSize), S: int64(e.Spec.SSize), Ptr: int64(e.Spec.PtrSize),
		D:         e.Spec.D,
		Skew:      e.W.Skew(),
		DistinctS: int64(maxDistinct),
		MRproc:    prm.MRproc, MSproc: prm.MSproc, G: prm.G,
		IRun: prm.IRun, NRunABL: prm.NRunABL, NRunLast: prm.NRunLast,
		K: prm.K, TSize: prm.TSize, Fuzz: prm.Fuzz,
	}
}

// Predict evaluates the analytical model for the same configuration.
func (e *Experiment) Predict(alg join.Algorithm, prm join.Params) (*model.Prediction, error) {
	in := e.Inputs(prm)
	switch alg {
	case join.NestedLoops:
		return model.PredictNestedLoops(e.Calib, in)
	case join.SortMerge:
		return model.PredictSortMerge(e.Calib, in)
	case join.Grace:
		return model.PredictGrace(e.Calib, in)
	case join.HybridHash:
		return model.PredictHybridHash(e.Calib, in)
	case join.TraditionalGrace:
		return model.PredictTraditionalGrace(e.Calib, in)
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", alg)
}

// Comparison is one model-vs-experiment data point.
type Comparison struct {
	Algorithm  join.Algorithm
	MemFrac    float64 // MRproc / (|R|·r)
	Measured   sim.Time
	Predicted  sim.Time
	Result     *join.Result
	Prediction *model.Prediction
}

// RelError returns (predicted−measured)/measured.
func (c Comparison) RelError() float64 {
	if c.Measured == 0 {
		return 0
	}
	return float64(c.Predicted-c.Measured) / float64(c.Measured)
}

// Compare measures and predicts one configuration.
func (e *Experiment) Compare(alg join.Algorithm, prm join.Params) (*Comparison, error) {
	res, err := e.Measure(alg, prm)
	if err != nil {
		return nil, err
	}
	pred, err := e.Predict(alg, prm)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Algorithm:  alg,
		MemFrac:    float64(prm.MRproc) / float64(e.TotalRBytes()),
		Measured:   res.Elapsed,
		Predicted:  pred.Total,
		Result:     res,
		Prediction: pred,
	}, nil
}

// Fig5Fractions returns the memory fractions of the paper's Fig. 5 panel
// for the given algorithm.
func Fig5Fractions(alg join.Algorithm) []float64 {
	switch alg {
	case join.NestedLoops:
		return []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70}
	case join.SortMerge:
		return []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045, 0.050}
	case join.HybridHash:
		return []float64{0.008, 0.010, 0.015, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080}
	case join.Grace:
		// The paper's panel spans 0.02–0.08; lower fractions are
		// included because this machine's LRU pager thrashes later than
		// Dynix's simple replacement did, so the knee of Fig. 5(c)
		// appears below 0.02 here.
		return []float64{0.008, 0.010, 0.015, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080}
	}
	return nil
}

// SweepMemory runs Compare across the given memory fractions (Fig. 5's
// procedure). A nil fracs selects the paper's panel for the algorithm.
func (e *Experiment) SweepMemory(alg join.Algorithm, fracs []float64) ([]Comparison, error) {
	if fracs == nil {
		fracs = Fig5Fractions(alg)
	}
	out := make([]Comparison, 0, len(fracs))
	for _, f := range fracs {
		cmp, err := e.Compare(alg, e.ParamsForFraction(f))
		if err != nil {
			return nil, fmt.Errorf("core: sweep at %.3f: %w", f, err)
		}
		out = append(out, *cmp)
	}
	return out, nil
}

// Speedup runs the algorithm at several degrees of parallelism D with the
// problem size fixed, returning elapsed times keyed by D — the paper's
// planned speedup experiment (§9).
func Speedup(base machine.Config, spec relation.Spec, alg join.Algorithm,
	ds []int, memFrac float64) (map[int]sim.Time, error) {
	out := make(map[int]sim.Time, len(ds))
	for _, d := range ds {
		cfg := base
		cfg.D = d
		sp := spec
		sp.D = d
		w, err := relation.Generate(sp)
		if err != nil {
			return nil, err
		}
		mem := int64(memFrac * float64(int64(sp.NR)*int64(sp.RSize)))
		res, err := join.Run(alg, cfg, join.Params{Workload: w, MRproc: mem, Stagger: true})
		if err != nil {
			return nil, err
		}
		out[d] = res.Elapsed
	}
	return out, nil
}

// Scaleup grows the problem with D (NR = NS = perPartition·D) and returns
// elapsed times keyed by D; flat times mean perfect scaleup.
func Scaleup(base machine.Config, spec relation.Spec, alg join.Algorithm,
	ds []int, perPartition int, memFrac float64) (map[int]sim.Time, error) {
	out := make(map[int]sim.Time, len(ds))
	for _, d := range ds {
		cfg := base
		cfg.D = d
		sp := spec
		sp.D = d
		sp.NR = perPartition * d
		sp.NS = perPartition * d
		w, err := relation.Generate(sp)
		if err != nil {
			return nil, err
		}
		mem := int64(memFrac * float64(int64(sp.NR)*int64(sp.RSize)))
		res, err := join.Run(alg, cfg, join.Params{Workload: w, MRproc: mem, Stagger: true})
		if err != nil {
			return nil, err
		}
		out[d] = res.Elapsed
	}
	return out, nil
}

// DistPoint is one row of the reference-distribution study (§9 future
// work: "changing the nature of the joining relations").
type DistPoint struct {
	Dist     relation.Distribution
	Skew     float64
	Measured map[join.Algorithm]sim.Time
}

// DistSweep runs every algorithm across reference distributions at the
// given memory fraction, reporting measured times and workload skew.
func DistSweep(cfg machine.Config, base relation.Spec, algs []join.Algorithm,
	memFrac float64) ([]DistPoint, error) {
	specs := []relation.Spec{base}
	zipf := base
	zipf.Dist = relation.Zipf
	zipf.ZipfTheta = 1.5
	local := base
	local.Dist = relation.Local
	local.LocalFrac = 0.8
	hot := base
	hot.Dist = relation.HotPartition
	hot.HotFrac = 0.4
	specs = append(specs, zipf, local, hot)

	out := make([]DistPoint, 0, len(specs))
	for _, spec := range specs {
		w, err := relation.Generate(spec)
		if err != nil {
			return nil, err
		}
		mem := int64(memFrac * float64(int64(spec.NR)*int64(spec.RSize)))
		pt := DistPoint{Dist: spec.Dist, Skew: w.Skew(), Measured: map[join.Algorithm]sim.Time{}}
		wantSig, _ := w.JoinSignature()
		for _, alg := range algs {
			res, err := join.Run(alg, cfg, join.Params{Workload: w, MRproc: mem, Stagger: true})
			if err != nil {
				return nil, err
			}
			if res.Signature != wantSig {
				return nil, fmt.Errorf("core: %v computed a wrong join under %v", alg, spec.Dist)
			}
			pt.Measured[alg] = res.Elapsed
		}
		out = append(out, pt)
	}
	return out, nil
}
