package join

import (
	"fmt"

	"mmjoin/internal/sim"
)

// runNestedLoops executes the parallel pointer-based nested loops join
// (§5). Pass 0 scans Ri, immediately joining the Ri,i objects with Si
// through the G buffer and sub-partitioning the rest into RPi,j on the
// same disk. Pass 1 walks the sub-partitions in D−1 phases whose offsets
// stagger access to the S partitions so that, absent skew, each Sj serves
// one Rproc at a time.
func (r *runner) runNestedLoops() {
	counts := r.w.SubCounts()
	r.spawnSprocs()
	var barrier *sim.Barrier
	if r.prm.SyncPhases {
		barrier = sim.NewBarrier("nl-phase", r.d)
	}
	for i := 0; i < r.d; i++ {
		i := i
		r.m.K.Spawn(fmt.Sprintf("Rproc%d", i), func(p *sim.Proc) {
			pg := r.newPager(fmt.Sprintf("Rproc%d", i), r.prm.MRproc)
			mgr := r.m.Mgr[i]

			// Setup: map Ri and Si, create the temporary RPi after them
			// on the same disk. Mapping manipulation serializes on the
			// system-wide lock, giving the paper's D× setup factor.
			mgr.OpenMap(p, r.segR[i])
			mgr.OpenMap(p, r.segS[i])
			offsets, total := r.subLayout(i, counts)
			rp := mgr.NewMap(p, fmt.Sprintf("RP%d", i), total)
			r.markPhase(p, "setup")

			// Pass 0: sequential scan of Ri.
			gbuf := r.newGBuffer(i, i)
			cursors := make([]int64, r.d)
			rpRefs := make([][]pendingJoin, r.d)
			for x, ptr := range r.w.Refs[i] {
				pg.Touch(p, r.segR[i], int64(x)*r.r, r.r, false)
				j := int(ptr.Part)
				if j == i {
					// Immediate join through the shared buffer.
					p.Advance(r.m.Cfg.MapCost)
					gbuf.add(p, int32(i), int32(x), ptr)
					continue
				}
				// Copy the object to its RPi,j sub-partition (a private
				// memory-to-memory move thanks to the combined segment).
				p.Advance(r.m.Cfg.MapCost + r.m.Cfg.TransferPP(r.r))
				pg.Touch(p, rp, offsets[j]+cursors[j]*r.r, r.r, true)
				cursors[j]++
				rpRefs[j] = append(rpRefs[j], pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
			}
			gbuf.flush(p)
			r.markPhase(p, "pass0")

			// Pass 1: staggered phases over the remaining sub-partitions.
			for t := 1; t < r.d; t++ {
				j := r.phasePartition(i, t)
				gb := r.newGBuffer(i, j)
				for n, pj := range rpRefs[j] {
					pg.Touch(p, rp, offsets[j]+int64(n)*r.r, r.r, false)
					gb.add(p, pj.ri, pj.x, pj.ptr)
				}
				gb.flush(p)
				if barrier != nil {
					barrier.Wait(p)
				}
			}
			r.markPhase(p, "pass1")

			r.addPagerStats(pg)
			r.rprocDone(p, i)
		})
	}
	r.m.K.Run()
	r.finishPhases([]string{"setup", "pass0", "pass1"})
}

// phasePartition returns the S partition Rproc i visits in phase t.
// Staggered (the paper's offset(i,t)): partition (i+t) mod D, so no two
// Rprocs share a partition in a phase. Naive: every Rproc walks the
// partitions in the same ascending order, colliding on each one.
func (r *runner) phasePartition(i, t int) int {
	if r.prm.Stagger {
		return (i + t) % r.d
	}
	j := t - 1
	if j >= i {
		j = t
	}
	return j
}
