package model

import (
	"testing"

	"mmjoin/internal/sim"
)

// TestRadixPassesMirrorsExecutor pins radixPasses to the same cases that
// pin the executor's radixPlan (mstore's TestKernelRadixPlan) — the two
// implementations must agree for the model's partitioning-pass term to
// describe what the store actually runs.
func TestRadixPassesMirrorsExecutor(t *testing.T) {
	cases := []struct{ k, bits, passes int }{
		{1, 8, 1},
		{256, 8, 1},
		{257, 8, 2},
		{65536, 8, 2},
		{65537, 8, 3},
		{16, 4, 1},
		{17, 4, 2},
		{300, 4, 3},
		{300, 12, 1},
	}
	for _, c := range cases {
		if got := radixPasses(c.k, c.bits); got != c.passes {
			t.Errorf("radixPasses(%d, %d) = %d, want %d", c.k, c.bits, got, c.passes)
		}
	}
}

func radixComponent(p *Prediction) (io sim.Time, present bool) {
	for _, c := range p.Components {
		if c.Name == "radix pass io" {
			return c.T, true
		}
	}
	return 0, false
}

// TestRadixPassTermInertAtSmallK is the conformance guard: with K within
// one pass's reach the predictions must be bit-identical to what they
// were before the term existed — no radix component, and no dependence
// on RadixBits (kEff = K either way). Every paper-conformance case runs
// at K ≤ 256, so Fig 5c stays untouched.
func TestRadixPassTermInertAtSmallK(t *testing.T) {
	c := calibForTest(t)
	// The small-K cases run at the conformance panel's scarce memory
	// (nonzero thrash); the larger explicit-K cases use ample frames —
	// the urn DP at K near 256 under tight memory is prohibitively slow,
	// and the radix term must be absent regardless of memory.
	cases := []struct {
		k   int
		mem int64
	}{
		{0, int64(0.03 * 102400 * 128)},
		{1, int64(0.03 * 102400 * 128)},
		{38, int64(0.03 * 102400 * 128)},
		{200, 32 << 20},
		{256, 32 << 20},
	}
	for _, cse := range cases {
		k := cse.k
		in := defaultInputs(cse.mem)
		in.K = k
		base, err := PredictGrace(c, in)
		if err != nil {
			t.Fatal(err)
		}
		if _, present := radixComponent(base); present {
			t.Errorf("K=%d: radix component present in a single-pass plan", k)
		}
		in.RadixBits = 16
		wide, err := PredictGrace(c, in)
		if err != nil {
			t.Fatal(err)
		}
		if base.Total != wide.Total {
			t.Errorf("K=%d: single-pass prediction depends on RadixBits: %v vs %v",
				k, base.Total, wide.Total)
		}
	}
}

// TestRadixPassTermAppears: once K exceeds 2^RadixBits the component
// shows up, the prediction stays internally consistent, and narrowing
// the fan-out (more passes over the same spill) costs more.
func TestRadixPassTermAppears(t *testing.T) {
	c := calibForTest(t)
	// Ample frames: the radix-pass term does not depend on memory
	// pressure, and K=600 under scarce memory sends the urn-model DP
	// into a regime that takes minutes.
	in := defaultInputs(32 << 20)
	in.K = 600

	two, err := PredictGrace(c, in) // default 8 bits: 2 passes
	if err != nil {
		t.Fatal(err)
	}
	if err := two.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	ioTwo, present := radixComponent(two)
	if !present || ioTwo <= 0 {
		t.Fatalf("K=600 bits=8: radix pass io missing or zero (%v)", ioTwo)
	}

	in.RadixBits = 12 // 600 ≤ 4096: single pass again
	one, err := PredictGrace(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, present := radixComponent(one); present {
		t.Error("K=600 bits=12: radix component present in a single-pass plan")
	}

	in.RadixBits = 4 // 3 passes
	three, err := PredictGrace(c, in)
	if err != nil {
		t.Fatal(err)
	}
	ioThree, present := radixComponent(three)
	if !present || ioThree <= ioTwo {
		t.Errorf("narrower fan-out should cost more pass io: 3-pass %v vs 2-pass %v",
			ioThree, ioTwo)
	}
}

// TestRadixPassTermHybrid: the hybrid prediction charges the same term
// on its overflow portion once the overflow bucket count needs more
// than one pass.
func TestRadixPassTermHybrid(t *testing.T) {
	c := calibForTest(t)
	in := defaultInputs(32 << 20) // ample frames keep the urn DP cheap…
	in.MSproc = 1 << 20           // …while a small Sproc buffer forces f0 < 1
	in.K = 600
	p, err := PredictHybridHash(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if io, present := radixComponent(p); !present || io <= 0 {
		t.Fatalf("hybrid K=600 bits=8: radix pass io missing or zero (%v)", io)
	}
	in.RadixBits = 12
	wide, err := PredictHybridHash(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, present := radixComponent(wide); present {
		t.Error("hybrid K=600 bits=12: radix component present in a single-pass plan")
	}
}

// TestRadixBitsValidation: negative bits are rejected, oversized bits
// clamp to the executor's 16-bit cap.
func TestRadixBitsValidation(t *testing.T) {
	c := calibForTest(t)
	in := defaultInputs(32 << 20)
	in.RadixBits = -1
	if _, err := PredictGrace(c, in); err == nil {
		t.Error("negative RadixBits accepted")
	}
	in.RadixBits = 40
	in.K = 600
	clamped, err := PredictGrace(c, in)
	if err != nil {
		t.Fatal(err)
	}
	in.RadixBits = 16
	sixteen, err := PredictGrace(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Total != sixteen.Total {
		t.Errorf("RadixBits=40 not clamped to 16: %v vs %v", clamped.Total, sixteen.Total)
	}
}
