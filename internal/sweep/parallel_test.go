package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/relation"
)

// parallelisms are the worker counts the determinism tests compare: the
// sequential baseline, a fixed small pool, and whatever this host offers.
func parallelisms() []int {
	ps := []int{1, 2}
	if g := runtime.GOMAXPROCS(0); g > 2 {
		ps = append(ps, g)
	}
	return ps
}

// TestParallelDeterminism asserts the tentpole guarantee: a host-parallel
// sweep returns field-for-field identical results to the sequential one,
// for every panel and study, at every worker count. Simulated time is
// virtual, so nothing about host scheduling may leak into the output.
func TestParallelDeterminism(t *testing.T) {
	e := testExperiment(t, 2000)
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 2000, 2000

	t.Run("fig5", func(t *testing.T) {
		fracs := []float64{0.03, 0.05, 0.10, 0.20}
		for _, alg := range []join.Algorithm{join.Grace, join.SortMerge} {
			base, err := Fig5(e, alg, Fig5Options{Fractions: fracs, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range parallelisms()[1:] {
				got, err := Fig5(e, alg, Fig5Options{Fractions: fracs, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%v: parallelism %d diverged from sequential:\n got %+v\nwant %+v",
						alg, par, got, base)
				}
			}
		}
	})

	t.Run("contention", func(t *testing.T) {
		base, err := Contention(e, 0.10, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parallelisms()[1:] {
			got, err := Contention(e, 0.10, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("parallelism %d diverged: got %+v want %+v", par, got, base)
			}
		}
	})

	t.Run("speedup", func(t *testing.T) {
		ds := []int{1, 2, 4}
		base, err := Speedup(cfg, spec, join.Grace, ds, 0.05, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parallelisms()[1:] {
			got, err := Speedup(cfg, spec, join.Grace, ds, 0.05, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("parallelism %d diverged: got %v want %v", par, got, base)
			}
		}
	})

	t.Run("scaleup", func(t *testing.T) {
		ds := []int{1, 2}
		base, err := Scaleup(cfg, spec, join.Grace, ds, 2000, 0.05, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parallelisms()[1:] {
			got, err := Scaleup(cfg, spec, join.Grace, ds, 2000, 0.05, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("parallelism %d diverged: got %v want %v", par, got, base)
			}
		}
	})

	t.Run("dist", func(t *testing.T) {
		base, err := Dist(cfg, spec, []join.Algorithm{join.Grace}, 0.05, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parallelisms()[1:] {
			got, err := Dist(cfg, spec, []join.Algorithm{join.Grace}, 0.05, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("parallelism %d diverged: got %+v want %+v", par, got, base)
			}
		}
	})
}

// TestParallelHookOrder asserts that OnPoint fires in panel order from
// the calling goroutine even when points finish out of order on workers.
func TestParallelHookOrder(t *testing.T) {
	e := testExperiment(t, 2000)
	fracs := []float64{0.03, 0.05, 0.10, 0.20, 0.30}
	var seen []float64
	pts, err := Fig5(e, join.Grace, Fig5Options{
		Fractions:   fracs,
		Parallelism: 4,
		OnPoint: func(c core.Comparison, _ *metrics.Registry) error {
			seen = append(seen, c.MemFrac)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(fracs) {
		t.Fatalf("%d points", len(pts))
	}
	if len(seen) != len(fracs) {
		t.Fatalf("OnPoint fired %d times, want %d", len(seen), len(fracs))
	}
	for i, f := range fracs {
		if seen[i] != f {
			t.Fatalf("OnPoint order %v, want %v", seen, fracs)
		}
	}
}

// TestForEachCancellation checks the worker pool's failure semantics:
// the error of the lowest-indexed failing point is returned, points
// before it all run, and no point starts after the failure is observed.
func TestForEachCancellation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := forEach(Options{Parallelism: 3}, 64, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return fmt.Errorf("point %d: %w", i, boom)
		}
		return nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == 64 {
		t.Error("cancellation did not stop the sweep")
	} else if n < 6 {
		t.Errorf("only %d points ran before the failing one finished", n)
	}

	// Two failures: the lowest point index wins regardless of timing.
	errA, errB := errors.New("a"), errors.New("b")
	err = forEach(Options{Parallelism: 4}, 8, func(i int) error {
		switch i {
		case 2:
			return errA
		case 3:
			return errB
		}
		return nil
	}, nil)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errA)
	}

	// An emit error cancels too, and emit stops firing afterwards.
	var emitted []int
	err = forEach(Options{Parallelism: 2}, 32, func(i int) error { return nil },
		func(i int) error {
			emitted = append(emitted, i)
			if i == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("emit err = %v, want %v", err, boom)
	}
	if len(emitted) != 2 || emitted[0] != 0 || emitted[1] != 1 {
		t.Errorf("emit calls %v, want [0 1]", emitted)
	}
}
