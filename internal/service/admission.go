// Package service exposes the memory-mapped store as a concurrent query
// service: JSON-over-HTTP join, lookup, stats, and health endpoints, with
// every join request flowing through the analytical planner (calibrated
// cost-based algorithm choice) and an admission controller that treats
// total mapped-join memory as a budget — the Grace-style memory
// discipline of the paper's testbed applied to serving concurrent
// traffic instead of a single batch join.
package service

import (
	"context"
	"errors"
	"sync"
)

// Admission errors distinguished by the HTTP layer.
var (
	// ErrSaturated means the wait queue is full: the caller should back
	// off and retry (HTTP 429 with Retry-After).
	ErrSaturated = errors.New("service: admission queue full")
	// ErrGrantTooLarge means the request wants more memory than the
	// whole budget, so queueing could never help (HTTP 413).
	ErrGrantTooLarge = errors.New("service: memory grant exceeds total budget")
	// ErrBadGrant means the request asked for a non-positive grant.
	ErrBadGrant = errors.New("service: non-positive memory grant")
)

// waiter is one queued admission request.
type waiter struct {
	bytes   int64
	ready   chan struct{} // closed once the grant is charged to the budget
	granted bool
}

// Admission is the memory-budget admission controller: a byte budget for
// all concurrently executing joins, with a bounded FIFO wait queue.
// Requests are admitted immediately while the budget covers them, wait
// in arrival order when it does not (strict FIFO — a large request at
// the head intentionally blocks later small ones, preventing
// starvation), and are rejected outright once the queue is full.
//
// The invariant the controller maintains — and the one the tests assert
// under concurrency — is used ≤ budget at every instant.
type Admission struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	peakUsed int64
	maxQueue int
	queue    []*waiter

	admitted     int64 // grants charged (immediate + after queueing)
	queued       int64 // grants that had to wait
	rejected     int64 // ErrSaturated rejections
	canceled     int64 // waiters abandoned by context cancellation
	renegotiated int64 // mid-join TryAcquire growths granted
	renegDenied  int64 // mid-join TryAcquire growths refused
}

// NewAdmission creates a controller over a byte budget with at most
// maxQueue waiting requests (0 means no queueing: reject when busy).
func NewAdmission(budget int64, maxQueue int) *Admission {
	if budget < 1 {
		budget = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{budget: budget, maxQueue: maxQueue}
}

// Acquire charges bytes against the budget, waiting in FIFO order when
// the budget is exhausted. It returns nil once the grant is charged; the
// caller must Release exactly the same amount. Context
// cancellation/deadline abandons the wait (the queue slot is freed, and
// a grant that raced with cancellation is given back).
func (a *Admission) Acquire(ctx context.Context, bytes int64) error {
	if bytes <= 0 {
		return ErrBadGrant
	}
	a.mu.Lock()
	if bytes > a.budget {
		a.mu.Unlock()
		return ErrGrantTooLarge
	}
	if len(a.queue) == 0 && a.used+bytes <= a.budget {
		a.charge(bytes)
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.rejected++
		a.mu.Unlock()
		return ErrSaturated
	}
	w := &waiter{bytes: bytes, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		defer a.mu.Unlock()
		if w.granted {
			// The grant raced with cancellation: give it back.
			a.used -= w.bytes
			a.grantWaiters()
			a.admitted--
		} else {
			for i, q := range a.queue {
				if q == w {
					a.queue = append(a.queue[:i], a.queue[i+1:]...)
					break
				}
			}
			// Removing a queue-head waiter can unblock smaller waiters
			// behind it that already fit in the budget.
			a.grantWaiters()
		}
		a.canceled++
		return ctx.Err()
	}
}

// TryAcquire charges bytes immediately if they fit the budget right now
// and nobody is queued ahead, and reports whether it did. It never
// waits: it is the mid-join renegotiation path (mstore.GrantNegotiator),
// called by an executing join that discovered its grant was too small —
// blocking there would hold the original grant while waiting for more,
// a deadlock recipe, and jumping ahead of queued waiters would break the
// controller's strict-FIFO fairness. A denial is not an error: the join
// restages or streams under its original grant instead.
func (a *Admission) TryAcquire(bytes int64) bool {
	if bytes <= 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) > 0 || a.used+bytes > a.budget {
		a.renegDenied++
		return false
	}
	a.charge(bytes)
	a.admitted-- // charge counts admissions; a growth is not a new join
	a.renegotiated++
	return true
}

// Release returns bytes to the budget and admits as many queued waiters
// as now fit, in arrival order.
func (a *Admission) Release(bytes int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used -= bytes
	if a.used < 0 {
		panic("service: admission released more than acquired")
	}
	a.grantWaiters()
}

// charge records a grant; caller holds mu.
func (a *Admission) charge(bytes int64) {
	a.used += bytes
	if a.used > a.peakUsed {
		a.peakUsed = a.used
	}
	a.admitted++
}

// grantWaiters admits the longest-waiting requests that fit; caller
// holds mu.
func (a *Admission) grantWaiters() {
	for len(a.queue) > 0 && a.used+a.queue[0].bytes <= a.budget {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.charge(w.bytes)
		w.granted = true
		close(w.ready)
	}
}

// QueueDepth reports how many requests are waiting for admission right
// now — the load signal behind the dynamic Retry-After hint.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Stats is a point-in-time snapshot of the controller.
type AdmissionStats struct {
	BudgetBytes   int64 `json:"budgetBytes"`
	UsedBytes     int64 `json:"usedBytes"`
	PeakUsedBytes int64 `json:"peakUsedBytes"`
	QueueDepth    int   `json:"queueDepth"`
	MaxQueue      int   `json:"maxQueue"`
	Admitted      int64 `json:"admitted"`
	Queued        int64 `json:"queued"`
	Rejected      int64 `json:"rejected"`
	Canceled      int64 `json:"canceled"`
	// Renegotiated / RenegotiationsDenied count mid-join TryAcquire
	// grant growths (granted and refused).
	Renegotiated         int64 `json:"renegotiated"`
	RenegotiationsDenied int64 `json:"renegotiationsDenied"`
}

// Stats snapshots the controller's counters and current occupancy.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		BudgetBytes:   a.budget,
		UsedBytes:     a.used,
		PeakUsedBytes: a.peakUsed,
		QueueDepth:    len(a.queue),
		MaxQueue:      a.maxQueue,
		Admitted:      a.admitted,
		Queued:        a.queued,
		Rejected:      a.rejected,
		Canceled:      a.canceled,

		Renegotiated:         a.renegotiated,
		RenegotiationsDenied: a.renegDenied,
	}
}
