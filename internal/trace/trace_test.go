package trace

import (
	"strings"
	"testing"

	"mmjoin/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, "p", "x") // must not panic
	if l.Len() != 0 || l.Events() != nil {
		t.Error("nil log should be empty")
	}
}

func TestEventsSortedByTime(t *testing.T) {
	l := New()
	l.Add(3*sim.Second, "b", "late")
	l.Add(1*sim.Second, "a", "early")
	l.Add(2*sim.Second, "a", "middle")
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Label != "early" || evs[1].Label != "middle" || evs[2].Label != "late" {
		t.Errorf("order: %v", evs)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := New().Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Errorf("output: %q", sb.String())
	}
}

func TestRenderRowsAndLegend(t *testing.T) {
	l := New()
	l.Add(1*sim.Second, "Rproc0", "setup")
	l.Add(4*sim.Second, "Rproc0", "pass0")
	l.Add(2*sim.Second, "Rproc1", "setup")
	l.Add(4*sim.Second, "Rproc1", "pass0")
	var sb strings.Builder
	if err := l.Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Rproc0 |", "Rproc1 |", "a: setup", "b: pass0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Segment 'a' of Rproc0 (ends at 1s of 4s) must be about a quarter
	// of the row; count its marks.
	line := strings.SplitN(out, "\n", 2)[0]
	aCount := strings.Count(line, "a")
	if aCount < 5 || aCount > 15 {
		t.Errorf("segment a covers %d of 40 columns: %q", aCount, line)
	}
}

func TestMarkForUnique(t *testing.T) {
	seen := map[byte]bool{}
	for idx := 0; idx < maxMarks; idx++ {
		m := markFor(idx)
		if seen[m] {
			t.Fatalf("mark %q reused at segment %d", m, idx)
		}
		seen[m] = true
	}
	if markFor(0) != 'a' || markFor(25) != 'z' {
		t.Error("first marks should be lowercase letters")
	}
	if markFor(26) != 'A' || markFor(51) != 'Z' {
		t.Error("marks 26-51 should be uppercase letters")
	}
	if markFor(52) != '0' || markFor(61) != '9' {
		t.Error("marks 52-61 should be digits")
	}
	if markFor(maxMarks) != '*' || markFor(maxMarks+100) != '*' {
		t.Error("overflow marks should be '*'")
	}
}

func TestRenderManySegmentsNoCollision(t *testing.T) {
	// Regression: beyond 26 segments the legend reused letters (idx%26),
	// attributing one mark to two different phases. Marks now extend
	// through A-Z and 0-9 and the legend lists each distinctly.
	l := New()
	for i := 0; i < 30; i++ {
		l.Add(sim.Time(i+1)*sim.Second, "p", "seg")
	}
	var sb strings.Builder
	if err := l.Render(&sb, 120); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Segment 26 must be marked 'A', not wrap to 'a'.
	if !strings.Contains(out, "A: seg") {
		t.Errorf("segment 26 not marked 'A':\n%s", out)
	}
	if strings.Count(out, "a: seg") != 1 {
		t.Errorf("mark 'a' used for more than one legend entry:\n%s", out)
	}
}

func TestRenderLegendOverflowCapped(t *testing.T) {
	l := New()
	for i := 0; i < 70; i++ {
		l.Add(sim.Time(i+1)*sim.Second, "p", "seg")
	}
	var sb strings.Builder
	if err := l.Render(&sb, 200); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(+8 more segments)") {
		t.Errorf("legend should cap 70 segments at 62 marks +8 overflow:\n%s", out)
	}
	// Exactly maxMarks legend entries plus the overflow line.
	if got := strings.Count(out, ": seg"); got != maxMarks {
		t.Errorf("legend lists %d distinct segments, want %d", got, maxMarks)
	}
}

func TestRenderClampssWidth(t *testing.T) {
	l := New()
	l.Add(sim.Second, "p", "x")
	var sb strings.Builder
	if err := l.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("no output")
	}
}
