// Package planner is the consumer the paper names for its model: "a
// quantitative model is an essential tool for subsystems such as a query
// optimizer". Given the machine calibration and a join's inputs, the
// planner costs every pointer-based algorithm analytically — microseconds
// of work, no execution — and picks the cheapest, optionally locating the
// memory crossover points where the best plan changes.
package planner

import (
	"fmt"
	"sort"

	"mmjoin/internal/join"
	"mmjoin/internal/model"
	"mmjoin/internal/sim"
)

// Candidate is one costed plan.
type Candidate struct {
	Algorithm  join.Algorithm
	Predicted  sim.Time
	Prediction *model.Prediction
}

// Choice is the planner's decision: candidates sorted cheapest first.
type Choice struct {
	Best       Candidate
	Candidates []Candidate
}

// Planner costs pointer-based joins with a fixed machine calibration.
type Planner struct {
	calib model.Calibration
	algs  []join.Algorithm
}

// DefaultAlgorithms are the plans considered when none are specified.
var DefaultAlgorithms = []join.Algorithm{
	join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash,
}

// IndexAlgorithms are the plans considered for a store with persistent
// indexes attached: the default set plus the two index paths. Serving
// layers select this set when Store.Stats().Indexed is true, so `auto`
// never routes an index plan at a store that cannot execute it.
var IndexAlgorithms = []join.Algorithm{
	join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash,
	join.IndexNL, join.IndexMerge,
}

// New creates a planner. algs nil selects DefaultAlgorithms.
func New(calib model.Calibration, algs []join.Algorithm) *Planner {
	if algs == nil {
		algs = DefaultAlgorithms
	}
	return &Planner{calib: calib, algs: algs}
}

// predict evaluates one algorithm's model.
func (pl *Planner) predict(alg join.Algorithm, in model.Inputs) (*model.Prediction, error) {
	switch alg {
	case join.NestedLoops:
		return model.PredictNestedLoops(pl.calib, in)
	case join.SortMerge:
		return model.PredictSortMerge(pl.calib, in)
	case join.Grace:
		return model.PredictGrace(pl.calib, in)
	case join.HybridHash:
		return model.PredictHybridHash(pl.calib, in)
	case join.TraditionalGrace:
		return model.PredictTraditionalGrace(pl.calib, in)
	case join.IndexNL:
		return model.PredictIndexNL(pl.calib, in)
	case join.IndexMerge:
		return model.PredictIndexMerge(pl.calib, in)
	}
	return nil, fmt.Errorf("planner: unknown algorithm %v", alg)
}

// InputsFor derives the analytical model's inputs from a fully-specified
// join request: shape and sizes from the workload spec, skew and the
// distinct-reference count measured from the generated references, and
// every tuning knob copied through. It is the bridge that lets callers
// hand the planner the same Request they would execute, instead of
// hand-assembling model.Inputs.
//
// req.Workers is deliberately not an input: the model costs I/O and
// per-partition memory (MRproc), which depend on the data layout and
// the grants, not on how many OS threads execute the morsels. A plan
// chosen at Workers=1 is the same plan at Workers=64.
func InputsFor(req join.Request) (model.Inputs, error) {
	w := req.Workload
	if w == nil {
		return model.Inputs{}, fmt.Errorf("planner: request has no workload")
	}
	spec := w.Spec
	maxDistinct := 0
	for _, n := range w.DistinctRefCounts() {
		if n > maxDistinct {
			maxDistinct = n
		}
	}
	return model.Inputs{
		NR: int64(spec.NR), NS: int64(spec.NS),
		R: int64(spec.RSize), S: int64(spec.SSize), Ptr: int64(spec.PtrSize),
		D:         spec.D,
		Skew:      w.Skew(),
		DistinctS: int64(maxDistinct),
		MRproc:    req.MRproc, MSproc: req.MSproc, G: req.G,
		IRun: req.IRun, NRunABL: req.NRunABL, NRunLast: req.NRunLast,
		K: req.K, TSize: req.TSize, Fuzz: req.Fuzz,
		RadixBits: req.RadixBits,
	}, nil
}

// ChooseFor costs the request's workload across the planner's candidate
// algorithms (the request's own Algorithm field is ignored — choosing it
// is the point) and returns them cheapest first.
func (pl *Planner) ChooseFor(req join.Request) (*Choice, error) {
	in, err := InputsFor(req)
	if err != nil {
		return nil, err
	}
	return pl.Choose(in)
}

// Choose costs all candidate algorithms for the inputs and returns them
// cheapest first.
func (pl *Planner) Choose(in model.Inputs) (*Choice, error) {
	if len(pl.algs) == 0 {
		return nil, fmt.Errorf("planner: no candidate algorithms")
	}
	cands := make([]Candidate, 0, len(pl.algs))
	for _, alg := range pl.algs {
		pr, err := pl.predict(alg, in)
		if err != nil {
			return nil, err
		}
		cands = append(cands, Candidate{Algorithm: alg, Predicted: pr.Total, Prediction: pr})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Predicted < cands[b].Predicted })
	return &Choice{Best: cands[0], Candidates: cands}, nil
}

// Crossover is a memory boundary at which the best plan changes.
type Crossover struct {
	MRproc int64          // smallest memory at which After wins
	Before join.Algorithm // best plan below the boundary
	After  join.Algorithm // best plan at and above it
}

// Crossovers sweeps per-process memory from lo to hi bytes (inclusive,
// in steps) and reports every point where the winning plan changes —
// the decision boundaries an optimizer would cache per machine.
func (pl *Planner) Crossovers(in model.Inputs, lo, hi, step int64) ([]Crossover, error) {
	if lo < 1 || hi < lo || step < 1 {
		return nil, fmt.Errorf("planner: bad sweep [%d,%d] step %d", lo, hi, step)
	}
	var out []Crossover
	var prev join.Algorithm
	first := true
	for mem := lo; mem <= hi; mem += step {
		in := in
		in.MRproc = mem
		in.MSproc = 0 // rederive from MRproc
		choice, err := pl.Choose(in)
		if err != nil {
			return nil, err
		}
		best := choice.Best.Algorithm
		if !first && best != prev {
			out = append(out, Crossover{MRproc: mem, Before: prev, After: best})
		}
		prev, first = best, false
	}
	return out, nil
}
