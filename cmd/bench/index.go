package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/mstore"
	"mmjoin/internal/planner"
)

// The index panel measures the index-accelerated join paths against the
// four kernel algorithms on freshly indexed databases at two |R|:|S|
// ratios, across the same workers axis as the main mstore panel. Beyond
// raw ns-per-pair it records the bulk-load time and its amortization:
// how many joins the index must serve before the build cost is paid back
// by the per-join saving — the number an operator needs to decide
// whether `mmdb index` is worth running. It also records what the
// planner picks for each ratio with the index candidate set, making
// "auto routes the winning workload at an index plan" a checked-in,
// regression-gated fact rather than a claim.

type indexJoinPoint struct {
	Workers   int     `json:"workers"`
	Runs      int     `json:"runs"`
	BestNs    int64   `json:"best_ns"`
	NsPerPair float64 `json:"ns_per_pair"`
}

type indexAlgoResult struct {
	Algorithm string           `json:"algorithm"`
	Pairs     int64            `json:"pairs"`
	Signature string           `json:"signature"`
	Points    []indexJoinPoint `json:"points"`
}

type indexRatioResult struct {
	RObjects int   `json:"r_objects"`
	SObjects int   `json:"s_objects"`
	BuildNs  int64 `json:"build_ns"`
	// BuildAmortJoins is BuildNs over the per-join saving of the best
	// index plan vs the best non-index plan (at the widest workers
	// point); 0 when no index plan wins, i.e. the build never pays off
	// on this ratio.
	BuildAmortJoins float64 `json:"build_amort_joins"`
	// PlannerPick is what `-alg auto` would run on this database with
	// the index candidate set.
	PlannerPick        string            `json:"planner_pick"`
	PlannerPickIsIndex bool              `json:"planner_pick_is_index"`
	Algorithms         []indexAlgoResult `json:"algorithms"`
}

type indexPanel struct {
	ObjSize int                `json:"obj_size"`
	D       int                `json:"d"`
	MRproc  int64              `json:"mrproc_bytes"`
	Ratios  []indexRatioResult `json:"ratios"`
}

// indexPanelAlgorithms is every plan the panel times, kernels first.
var indexPanelAlgorithms = []join.Algorithm{
	join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash,
	join.IndexNL, join.IndexMerge,
}

// runIndexPanel builds the two ratio databases, bulk-loads their
// indexes, and times all six plans across the workers axis. Sizes are
// fixed (not scaled by -mstore-objects) so points stay comparable
// between the full baseline run and the CI smoke.
func runIndexPanel(d, runs int) (*indexPanel, error) {
	const (
		objSize = 64
		mrproc  = int64(1 << 20)
		sObj    = 48000
	)
	workerAxis := []int{1, d, runtime.GOMAXPROCS(0)}
	slices.Sort(workerAxis)
	workerAxis = slices.Compact(workerAxis)

	panel := &indexPanel{ObjSize: objSize, D: d, MRproc: mrproc}
	for _, ratio := range []struct{ r, s int }{{sObj, sObj}, {sObj / 8, sObj}} {
		dir, err := os.MkdirTemp("", "mmjoin-bench-index")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		db, err := mstore.CreateDB(filepath.Join(dir, "db"), d, ratio.r, ratio.s, objSize, 42)
		if err != nil {
			return nil, err
		}
		defer db.Close()

		p := exec.NewPool(0)
		start := time.Now()
		err = db.BuildIndexes(context.Background(), p)
		buildNs := time.Since(start).Nanoseconds()
		p.Close()
		if err != nil {
			return nil, fmt.Errorf("index panel %d:%d: build: %w", ratio.r, ratio.s, err)
		}
		want := db.ExpectedStats()

		res := indexRatioResult{RObjects: ratio.r, SObjects: ratio.s, BuildNs: buildNs}
		bestIndex, bestOther := int64(1<<63-1), int64(1<<63-1)
		for _, alg := range indexPanelAlgorithms {
			a := indexAlgoResult{
				Algorithm: alg.String(),
				Pairs:     want.Pairs,
				Signature: fmt.Sprintf("%016x", want.Signature),
			}
			for _, w := range workerAxis {
				best := int64(1<<63 - 1)
				for run := 0; run < runs; run++ {
					tmp := filepath.Join(dir, fmt.Sprintf("tmp-%s-%d-%d", alg, w, run))
					start := time.Now()
					st, err := db.Run(mstore.JoinRequest{
						Algorithm: alg, MRproc: mrproc, Workers: w, TmpDir: tmp,
					})
					el := time.Since(start).Nanoseconds()
					if err != nil {
						return nil, fmt.Errorf("index panel %d:%d %v workers=%d: %w", ratio.r, ratio.s, alg, w, err)
					}
					if st != want {
						return nil, fmt.Errorf("index panel %d:%d %v workers=%d: stats %+v, want %+v (determinism violated)",
							ratio.r, ratio.s, alg, w, st, want)
					}
					best = min(best, el)
				}
				a.Points = append(a.Points, indexJoinPoint{
					Workers: w, Runs: runs, BestNs: best,
					NsPerPair: round2(float64(best) / float64(want.Pairs)),
				})
			}
			wide := a.Points[len(a.Points)-1].BestNs
			if alg == join.IndexNL || alg == join.IndexMerge {
				bestIndex = min(bestIndex, wide)
			} else {
				bestOther = min(bestOther, wide)
			}
			res.Algorithms = append(res.Algorithms, a)
			fmt.Printf("mstore index %d:%d %-12s: ", ratio.r, ratio.s, alg)
			for _, pt := range a.Points {
				fmt.Printf("w=%d %.1fms  ", pt.Workers, time.Duration(pt.BestNs).Seconds()*1000)
			}
			fmt.Println()
		}
		if bestIndex < bestOther {
			res.BuildAmortJoins = round2(float64(buildNs) / float64(bestOther-bestIndex))
		}

		// What would `-alg auto` run here? Cost the measured workload
		// through the same calibrated model the serving layers use, with
		// the indexed candidate set.
		wl, err := db.Workload()
		if err != nil {
			return nil, err
		}
		mcfg := machine.DefaultConfig()
		mcfg.D = d
		choice, err := planner.New(model.Calibrate(mcfg, 400, 1), planner.IndexAlgorithms).ChooseFor(join.Request{
			Config: mcfg,
			Params: join.Params{Workload: wl, MRproc: mrproc},
		})
		if err != nil {
			return nil, err
		}
		res.PlannerPick = choice.Best.Algorithm.String()
		res.PlannerPickIsIndex = choice.Best.Algorithm == join.IndexNL || choice.Best.Algorithm == join.IndexMerge
		fmt.Printf("mstore index %d:%d: build %.1fms, amortized over %.1f joins, planner picks %s\n",
			ratio.r, ratio.s, time.Duration(buildNs).Seconds()*1000, res.BuildAmortJoins, res.PlannerPick)

		panel.Ratios = append(panel.Ratios, res)
	}
	return panel, nil
}

// checkIndexBaseline gates the index-path ns-per-pair in the freshly
// written report against the checked-in baseline: for each (ratio,
// algorithm) present in both, the best point across worker counts must
// not regress by more than 20%. Gating the per-algorithm best rather
// than every worker point keeps the gate meaningful on a 1-CPU host,
// where the worker axis is timing noise by construction.
func checkIndexBaseline(basePath, curPath string) error {
	read := func(path string) (*indexPanel, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r mstoreReport
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		if r.Index == nil {
			return nil, fmt.Errorf("%s has no index panel", path)
		}
		return r.Index, nil
	}
	base, err := read(basePath)
	if err != nil {
		return err
	}
	cur, err := read(curPath)
	if err != nil {
		return err
	}
	key := func(r indexRatioResult, alg string) string {
		return fmt.Sprintf("%d:%d/%s", r.RObjects, r.SObjects, alg)
	}
	best := func(p *indexPanel) map[string]float64 {
		m := map[string]float64{}
		for _, r := range p.Ratios {
			for _, a := range r.Algorithms {
				if a.Algorithm != join.IndexNL.String() && a.Algorithm != join.IndexMerge.String() {
					continue
				}
				for _, pt := range a.Points {
					k := key(r, a.Algorithm)
					if v, ok := m[k]; !ok || pt.NsPerPair < v {
						m[k] = pt.NsPerPair
					}
				}
			}
		}
		return m
	}
	ref := best(base)
	for k, v := range best(cur) {
		b, ok := ref[k]
		if !ok || b <= 0 {
			continue
		}
		if v > 1.2*b {
			return fmt.Errorf("index join %s regressed: best %.2f ns/pair vs baseline best %.2f (>20%%)",
				k, v, b)
		}
	}
	return nil
}
