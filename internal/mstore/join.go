package mstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mmjoin/internal/pheap"
)

// joinOne dereferences the join attribute of one R object through the
// mapped S partition and folds the pair into st.
func (db *DB) joinOne(obj []byte, st *JoinStats) {
	ptr := DecodeSPtr(obj)
	s := db.S[ptr.Part].At(ptr.Off)
	st.Pairs++
	st.Signature += pairHash(binary.LittleEndian.Uint64(obj[ridOffset:]),
		binary.LittleEndian.Uint64(s))
}

// runParallel runs fn for every partition on its own goroutine and folds
// the per-partition stats and errors.
func (db *DB) runParallel(fn func(i int) (JoinStats, error)) (JoinStats, error) {
	stats := make([]JoinStats, db.D)
	errs := make([]error, db.D)
	var wg sync.WaitGroup
	for i := 0; i < db.D; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	var total JoinStats
	for i := 0; i < db.D; i++ {
		if errs[i] != nil {
			return JoinStats{}, errs[i]
		}
		total.fold(stats[i])
	}
	return total, nil
}

// tmpRelation creates a throwaway relation file under dir.
func (db *DB) tmpRelation(dir, name string, capacity int) (*Relation, error) {
	seg, err := Create(filepath.Join(dir, name), int64(db.ObjSize)*int64(capacity)+4096)
	if err != nil {
		return nil, err
	}
	return CreateRelation(seg, db.ObjSize, capacity)
}

// NestedLoops runs the parallel pointer-based nested loops join over the
// mapped store: pass 0 scans Ri, joining own-partition references
// immediately and sub-partitioning the rest into temporary RPi,j
// relations; pass 1 walks the sub-partitions in staggered phases.
func (db *DB) NestedLoops(tmpDir string) (JoinStats, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	return db.runParallel(func(i int) (JoinStats, error) {
		var st JoinStats
		ri := db.R[i]
		rp := make([]*Relation, db.D)
		for j := 0; j < db.D; j++ {
			if j == i {
				continue
			}
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("RP%d_%d.seg", i, j), ri.Count())
			if err != nil {
				return st, err
			}
			rp[j] = rel
		}
		defer func() {
			for _, rel := range rp {
				if rel != nil {
					rel.Segment().Delete()
				}
			}
		}()

		// Pass 0.
		for x := 0; x < ri.Count(); x++ {
			obj := ri.Object(x)
			if part := int(DecodeSPtr(obj).Part); part == i {
				db.joinOne(obj, &st)
			} else if _, err := rp[part].Append(obj); err != nil {
				return st, err
			}
		}
		// Pass 1: staggered phases (no synchronization, as in §5.1).
		for t := 1; t < db.D; t++ {
			j := (i + t) % db.D
			sub := rp[j]
			for x := 0; x < sub.Count(); x++ {
				db.joinOne(sub.Object(x), &st)
			}
		}
		return st, nil
	})
}

// SortMerge runs the parallel pointer-based sort-merge join: passes 0/1
// form the RSj partitions (one temporary relation per writer to keep
// appends single-writer), each RSi is concatenated and heap-sorted in
// place by the S-pointer inside the mapped memory, and the final scan
// reads Si in address order.
func (db *DB) SortMerge(tmpDir string) (JoinStats, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	// pieces[j][i]: R objects referencing Sj found by the scanner of Ri.
	pieces := make([][]*Relation, d)
	for j := range pieces {
		pieces[j] = make([]*Relation, d)
	}
	var mu sync.Mutex
	_, err := db.runParallel(func(i int) (JoinStats, error) {
		ri := db.R[i]
		local := make([]*Relation, d)
		for j := 0; j < d; j++ {
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("sm_%d_%d.seg", j, i), ri.Count())
			if err != nil {
				return JoinStats{}, err
			}
			local[j] = rel
		}
		for x := 0; x < ri.Count(); x++ {
			obj := ri.Object(x)
			if _, err := local[DecodeSPtr(obj).Part].Append(obj); err != nil {
				return JoinStats{}, err
			}
		}
		mu.Lock()
		for j := 0; j < d; j++ {
			pieces[j][i] = local[j]
		}
		mu.Unlock()
		return JoinStats{}, nil
	})
	if err != nil {
		return JoinStats{}, err
	}
	defer func() {
		for j := range pieces {
			for i := range pieces[j] {
				if pieces[j][i] != nil {
					pieces[j][i].Segment().Delete()
				}
			}
		}
	}()

	return db.runParallel(func(i int) (JoinStats, error) {
		var st JoinStats
		total := 0
		for _, piece := range pieces[i] {
			total += piece.Count()
		}
		rs, err := db.tmpRelation(tmpDir, fmt.Sprintf("RS%d.seg", i), total)
		if err != nil {
			return st, err
		}
		defer rs.Segment().Delete()
		for _, piece := range pieces[i] {
			for x := 0; x < piece.Count(); x++ {
				if _, err := rs.Append(piece.Object(x)); err != nil {
					return st, err
				}
			}
		}
		// Heap-sort a pointer array over the mapped records, then apply
		// the permutation in place so the final scan is sequential in
		// both RSi and Si.
		handles := make([]int32, rs.Count())
		for h := range handles {
			handles[h] = int32(h)
		}
		pheap.Sort(handles, func(a, b int32) bool {
			return DecodeSPtr(rs.Object(int(a))).Off < DecodeSPtr(rs.Object(int(b))).Off
		})
		permuteRecords(rs, handles)
		for x := 0; x < rs.Count(); x++ {
			db.joinOne(rs.Object(x), &st)
		}
		return st, nil
	})
}

// permuteRecords reorders the relation so record x becomes the record
// previously at handles[x], using cycle-chasing with one scratch record.
func permuteRecords(rel *Relation, handles []int32) {
	n := len(handles)
	visited := make([]bool, n)
	scratch := make([]byte, rel.ObjSize())
	for start := 0; start < n; start++ {
		if visited[start] || int(handles[start]) == start {
			visited[start] = true
			continue
		}
		copy(scratch, rel.Object(start))
		x := start
		for {
			src := int(handles[x])
			visited[x] = true
			if src == start {
				copy(rel.Object(x), scratch)
				break
			}
			copy(rel.Object(x), rel.Object(src))
			x = src
		}
	}
}

// Grace runs the parallel pointer-based Grace join: the scanners hash
// every R object into one of k order-preserving buckets per S partition
// (bucket files are shared, mutex-guarded appends), then each partition's
// buckets are probed in order — an in-memory table per bucket, chains
// walked in ascending S address.
func (db *DB) Grace(tmpDir string, k int) (JoinStats, error) {
	if k < 1 {
		return JoinStats{}, fmt.Errorf("mstore: Grace needs k >= 1, got %d", k)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	type lockedRel struct {
		mu  sync.Mutex
		rel *Relation
	}
	// The order-preserving hash: bucket by position of the S offset
	// within the partition's data area.
	bucketOf := func(ptr SPtr) int {
		rel := db.S[ptr.Part]
		idx := rel.IndexOf(ptr.Off)
		b := idx * k / rel.Count()
		if b >= k {
			b = k - 1
		}
		return b
	}

	// Counting pass: size each bucket file exactly (a real system would
	// size from partition statistics).
	counts := make([][]int, d)
	for j := range counts {
		counts[j] = make([]int, k)
	}
	for _, rel := range db.R {
		for x := 0; x < rel.Count(); x++ {
			ptr := DecodeSPtr(rel.Object(x))
			counts[ptr.Part][bucketOf(ptr)]++
		}
	}
	buckets := make([][]*lockedRel, d)
	for j := 0; j < d; j++ {
		buckets[j] = make([]*lockedRel, k)
		for b := 0; b < k; b++ {
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("gr_%d_%d.seg", j, b), counts[j][b]+1)
			if err != nil {
				return JoinStats{}, err
			}
			buckets[j][b] = &lockedRel{rel: rel}
		}
	}
	defer func() {
		for j := range buckets {
			for _, lr := range buckets[j] {
				lr.rel.Segment().Delete()
			}
		}
	}()

	if _, err := db.runParallel(func(i int) (JoinStats, error) {
		ri := db.R[i]
		for x := 0; x < ri.Count(); x++ {
			obj := ri.Object(x)
			ptr := DecodeSPtr(obj)
			lr := buckets[ptr.Part][bucketOf(ptr)]
			lr.mu.Lock()
			_, err := lr.rel.Append(obj)
			lr.mu.Unlock()
			if err != nil {
				return JoinStats{}, err
			}
		}
		return JoinStats{}, nil
	}); err != nil {
		return JoinStats{}, err
	}

	return db.runParallel(func(i int) (JoinStats, error) {
		var st JoinStats
		for b := 0; b < k; b++ {
			rel := buckets[i][b].rel
			// In-memory hash table: common references share a chain.
			table := make(map[Ptr][]int, rel.Count())
			for x := 0; x < rel.Count(); x++ {
				off := DecodeSPtr(rel.Object(x)).Off
				table[off] = append(table[off], x)
			}
			// Chains in ascending S address: each S object is read once,
			// sequentially.
			offs := make([]Ptr, 0, len(table))
			for off := range table {
				offs = append(offs, off)
			}
			sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
			for _, off := range offs {
				for _, x := range table[off] {
					db.joinOne(rel.Object(x), &st)
				}
			}
		}
		return st, nil
	})
}

// HybridHash runs the parallel pointer-based hybrid-hash join over the
// mapped store: references into a resident prefix of each S partition
// (residentFrac of its objects) join immediately during the scan and
// never touch temporary storage; the remainder goes through Grace-style
// ordered buckets.
func (db *DB) HybridHash(tmpDir string, k int, residentFrac float64) (JoinStats, error) {
	if k < 1 {
		return JoinStats{}, fmt.Errorf("mstore: HybridHash needs k >= 1, got %d", k)
	}
	if residentFrac < 0 || residentFrac > 1 {
		return JoinStats{}, fmt.Errorf("mstore: residentFrac %g out of [0,1]", residentFrac)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	residentUpTo := make([]int, d)
	for j := 0; j < d; j++ {
		residentUpTo[j] = int(residentFrac * float64(db.S[j].Count()))
	}
	isResident := func(ptr SPtr) bool {
		return db.S[ptr.Part].IndexOf(ptr.Off) < residentUpTo[ptr.Part]
	}
	bucketOf := func(ptr SPtr) int {
		rel := db.S[ptr.Part]
		lo := residentUpTo[ptr.Part]
		span := rel.Count() - lo
		if span <= 0 {
			return 0
		}
		b := (rel.IndexOf(ptr.Off) - lo) * k / span
		if b >= k {
			b = k - 1
		}
		return b
	}

	// Counting pass for exact bucket sizing.
	counts := make([][]int, d)
	for j := range counts {
		counts[j] = make([]int, k)
	}
	for _, rel := range db.R {
		for x := 0; x < rel.Count(); x++ {
			if ptr := DecodeSPtr(rel.Object(x)); !isResident(ptr) {
				counts[ptr.Part][bucketOf(ptr)]++
			}
		}
	}
	type lockedRel struct {
		mu  sync.Mutex
		rel *Relation
	}
	buckets := make([][]*lockedRel, d)
	for j := 0; j < d; j++ {
		buckets[j] = make([]*lockedRel, k)
		for b := 0; b < k; b++ {
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("hh_%d_%d.seg", j, b), counts[j][b]+1)
			if err != nil {
				return JoinStats{}, err
			}
			buckets[j][b] = &lockedRel{rel: rel}
		}
	}
	defer func() {
		for j := range buckets {
			for _, lr := range buckets[j] {
				lr.rel.Segment().Delete()
			}
		}
	}()

	// Scan: resident references join now, the rest partition.
	partitioned, err := db.runParallel(func(i int) (JoinStats, error) {
		var st JoinStats
		ri := db.R[i]
		for x := 0; x < ri.Count(); x++ {
			obj := ri.Object(x)
			ptr := DecodeSPtr(obj)
			if isResident(ptr) {
				db.joinOne(obj, &st)
				continue
			}
			lr := buckets[ptr.Part][bucketOf(ptr)]
			lr.mu.Lock()
			_, err := lr.rel.Append(obj)
			lr.mu.Unlock()
			if err != nil {
				return st, err
			}
		}
		return st, nil
	})
	if err != nil {
		return JoinStats{}, err
	}

	// Probe the overflow buckets as in Grace.
	probed, err := db.runParallel(func(i int) (JoinStats, error) {
		var st JoinStats
		for b := 0; b < k; b++ {
			rel := buckets[i][b].rel
			table := make(map[Ptr][]int, rel.Count())
			for x := 0; x < rel.Count(); x++ {
				off := DecodeSPtr(rel.Object(x)).Off
				table[off] = append(table[off], x)
			}
			offs := make([]Ptr, 0, len(table))
			for off := range table {
				offs = append(offs, off)
			}
			sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
			for _, off := range offs {
				for _, x := range table[off] {
					db.joinOne(rel.Object(x), &st)
				}
			}
		}
		return st, nil
	})
	if err != nil {
		return JoinStats{}, err
	}
	partitioned.fold(probed)
	return partitioned, nil
}
