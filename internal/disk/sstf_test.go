package disk

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveSSTF is the reference drain: sort, then repeatedly nearestIndex +
// slice-delete — the algorithm the flusher used before sstfQueue. head
// evolves exactly as in the flusher (pos = cylinder of last write), with
// jump injecting the occasional foreground read dragging the head away.
func naiveSSTF(batch []int, pos int, bpc int, jump func(step int) (int, bool)) []int {
	blocks := append([]int(nil), batch...)
	sort.Ints(blocks)
	var order []int
	for step := 0; len(blocks) > 0; step++ {
		if p, ok := jump(step); ok {
			pos = p
		}
		i := nearestIndex(blocks, pos)
		b := blocks[i]
		blocks = append(blocks[:i], blocks[i+1:]...)
		order = append(order, b)
		pos = b / bpc * bpc
	}
	return order
}

// TestSSTFQueueMatchesNaive drives sstfQueue and the reference
// implementation over random batches (with duplicates-free values, as the
// dirty queue guarantees) and random head perturbations, requiring the
// identical pop order.
func TestSSTFQueueMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const bpc = 64
	var q sstfQueue
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		batch := rng.Perm(100 * bpc)[:n]
		pos0 := rng.Intn(100*bpc + 1)
		// Occasionally yank the head elsewhere mid-drain, as an
		// interleaved foreground read would.
		jumps := map[int]int{}
		for j := 0; j < n/10; j++ {
			jumps[rng.Intn(n)] = rng.Intn(100*bpc) / bpc * bpc
		}
		jump := func(step int) (int, bool) { p, ok := jumps[step]; return p, ok }

		want := naiveSSTF(batch, pos0, bpc, jump)

		q.reset(batch)
		pos := pos0
		var got []int
		for step := 0; q.remaining > 0; step++ {
			if p, ok := jump(step); ok {
				pos = p
			}
			b := q.pop(pos)
			got = append(got, b)
			pos = b / bpc * bpc
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: popped %d blocks, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d = %d, want %d (batch %v, pos0 %d)",
					trial, i, got[i], want[i], batch, pos0)
			}
		}
	}
}

// TestSSTFQueueReuse checks the queue's buffers survive resets at
// different sizes without cross-batch contamination.
func TestSSTFQueueReuse(t *testing.T) {
	var q sstfQueue
	for _, batch := range [][]int{
		{5, 1, 9},
		{100, 2, 50, 75, 3, 99, 0},
		{42},
		{},
		{7, 6},
	} {
		q.reset(batch)
		var got []int
		pos := 0
		for q.remaining > 0 {
			b := q.pop(pos)
			got = append(got, b)
			pos = b
		}
		want := append([]int(nil), batch...)
		sort.Ints(want) // from pos 0, ascending drain is the SSTF order
		if len(got) != len(want) {
			t.Fatalf("batch %v: got %v", batch, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %v: got %v, want %v", batch, got, want)
			}
		}
	}
}
