package conformance

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the golden replay corpus under testdata/replay")

func goldenPath(name string) string {
	return filepath.Join("testdata", "replay", name+".json")
}

// TestReplayCorpus re-executes every corpus entry and compares the full
// Result — every virtual-time counter, I/O total, and parameter choice —
// against its committed snapshot. Any behavioural drift anywhere in the
// stack (workload generator, kernel scheduling, disk model, pager,
// segment manager, algorithm) shows up as a field-level diff here.
// After an intentional change, regenerate with
//
//	go test ./internal/conformance -run Replay -update
//
// and review the snapshot diff like code.
func TestReplayCorpus(t *testing.T) {
	for _, entry := range Corpus() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			res, w, err := entry.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := res.CheckInvariants(w); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			got, err := SnapshotOf(entry, res).Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(entry.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("result drifted from golden snapshot %s\n%s", path, snapshotDiff(t, want, got))
			}
		})
	}
}

// snapshotDiff renders a compact field-level diff between two snapshot
// encodings so a drift report names the counters that moved rather than
// dumping both files.
func snapshotDiff(t *testing.T, want, got []byte) string {
	t.Helper()
	var a, b map[string]any
	if json.Unmarshal(want, &a) != nil || json.Unmarshal(got, &b) != nil {
		return "(snapshot not parseable; re-run with -update and diff manually)"
	}
	var buf bytes.Buffer
	diffValue(&buf, "", a, b)
	if buf.Len() == 0 {
		return "(encodings differ only in formatting)"
	}
	return buf.String()
}

func diffValue(buf *bytes.Buffer, path string, want, got any) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			buf.WriteString(path + ": shape changed\n")
			return
		}
		keys := make(map[string]bool, len(w)+len(g))
		for k := range w {
			keys[k] = true
		}
		for k := range g {
			keys[k] = true
		}
		for k := range keys {
			diffValue(buf, path+"/"+k, w[k], g[k])
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(w) != len(g) {
			buf.WriteString(path + ": list shape changed\n")
			return
		}
		for i := range w {
			diffValue(buf, path, w[i], g[i])
		}
	default:
		if want != got {
			buf.WriteString(path + ": " + encode(want) + " -> " + encode(got) + "\n")
		}
	}
}

func encode(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "?"
	}
	return string(b)
}
