// Textindex: a small text-retrieval store — one of the application
// domains (text management) the paper's introduction says single-level
// stores serve best. A vocabulary relation (S) holds term statistics, a
// postings relation (R) holds (term-pointer, document) entries, and a
// persistent B+tree inside the vocabulary segment maps term hashes to
// term objects. Everything lives in memory-mapped segments; the store is
// closed and reopened to show that both the relation pointers and the
// B-tree survive with zero fixup.
//
// Run with: go run ./examples/textindex
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"mmjoin/internal/mstore"
)

// Term object payload (after the store's 8-byte identity word):
//
//	[8:16)  term hash (so the object is self-describing)
//	[16:24) document frequency, maintained at build time
const (
	termHashOff = 8
	termDFOff   = 16
)

// Posting object payload (after SPtr + rid prefix): document id u32.
const postingDocOff = 20

var vocabulary = []string{
	"persistent", "pointer", "join", "segment", "virtual", "memory",
	"mapped", "store", "relation", "bucket", "heap", "merge", "page",
	"fault", "disk", "band", "transfer", "swizzle", "partition", "model",
}

func termHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func main() {
	dir, err := os.MkdirTemp("", "mmjoin-textindex")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		d        = 4
		docs     = 2500
		postings = 20000
		objSize  = 64
	)

	// Build: CreateDB lays out terms (S) and postings (R); postings
	// reference uniformly random terms. Rewrite the payloads into text
	// shapes and index the terms with a B-tree in segment 0.
	db, err := mstore.CreateDB(filepath.Join(dir, "idx"), d, postings, len(vocabulary)*d, objSize, 99)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for j := 0; j < d; j++ {
		for x := 0; x < db.S[j].Count(); x++ {
			term := vocabulary[x%len(vocabulary)]
			obj := db.S[j].Object(x)
			binary.LittleEndian.PutUint64(obj[termHashOff:], termHash(term)+uint64(j)) // unique per partition
			binary.LittleEndian.PutUint64(obj[termDFOff:], 0)
		}
	}
	for i := 0; i < d; i++ {
		for x := 0; x < db.R[i].Count(); x++ {
			obj := db.R[i].Object(x)
			binary.LittleEndian.PutUint32(obj[postingDocOff:], uint32(rng.Intn(docs)))
			// Maintain document frequency on the referenced term through
			// the pointer — a cross-segment update with no translation.
			ptr := mstore.DecodeSPtr(obj)
			term := db.S[ptr.Part].At(ptr.Off)
			df := binary.LittleEndian.Uint64(term[termDFOff:])
			binary.LittleEndian.PutUint64(term[termDFOff:], df+1)
		}
	}
	// Index: term hash → term pointer, tree persisted inside S0's segment.
	seg0 := db.S[0].Segment()
	tree, err := mstore.CreateBTree(seg0, 512)
	if err != nil {
		log.Fatal(err)
	}
	for x := 0; x < db.S[0].Count(); x++ {
		obj := db.S[0].Object(x)
		if err := tree.Insert(binary.LittleEndian.Uint64(obj[termHashOff:]), db.S[0].PtrAt(x)); err != nil {
			log.Fatal(err)
		}
	}
	seg0.SetAuxRoot(tree.Head())
	fmt.Printf("built: %d postings over %d terms (%d partitions), B-tree of %d keys\n",
		postings, len(vocabulary)*d, d, tree.Len())
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen — exact positioning means the tree and every pointer are
	// valid immediately.
	db, err = mstore.OpenDB(filepath.Join(dir, "idx"), d)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tree, err = mstore.OpenBTree(db.S[0].Segment(), db.S[0].Segment().AuxRoot())
	if err != nil {
		log.Fatal(err)
	}

	// Point lookups through the persistent index.
	fmt.Println("\nterm lookups via the mapped B-tree (partition 0):")
	for _, q := range []string{"pointer", "swizzle", "unknown-term"} {
		p, ok := tree.Get(termHash(q))
		if !ok {
			fmt.Printf("  %-12s -> not indexed\n", q)
			continue
		}
		term := db.S[0].At(p)
		fmt.Printf("  %-12s -> df=%d (term object at offset %d)\n",
			q, binary.LittleEndian.Uint64(term[termDFOff:]), p)
	}

	// Pointer-join the postings with their terms (Grace) and verify the
	// per-term counts against the df counters maintained at build time.
	st, err := db.Grace(filepath.Join(dir, "tmp"), 8)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[mstore.SPtr]uint64{}
	for i := 0; i < d; i++ {
		for x := 0; x < db.R[i].Count(); x++ {
			counts[mstore.DecodeSPtr(db.R[i].Object(x))]++
		}
	}
	mismatches := 0
	for ptr, n := range counts {
		term := db.S[ptr.Part].At(ptr.Off)
		if binary.LittleEndian.Uint64(term[termDFOff:]) != n {
			mismatches++
		}
	}
	fmt.Printf("\njoined %d postings with their terms; %d df mismatches\n", st.Pairs, mismatches)
}
