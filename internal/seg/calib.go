package seg

import (
	"mmjoin/internal/disk"
	"mmjoin/internal/sim"
)

// SetupPoint is one measured point of the mapping-setup functions of the
// paper's Fig. 1(b).
type SetupPoint struct {
	Pages  int
	New    sim.Time
	Open   sim.Time
	Delete sim.Time
}

// StandardSetupSizes are the mapping sizes (in blocks) sampled for
// Fig. 1(b) reproductions. The paper plots 1600–12800; smaller sizes are
// included so the interpolated curves stay accurate for small mappings.
var StandardSetupSizes = []int{1, 16, 100, 400, 800, 1600, 3200, 4800, 6400, 8000, 9600, 11200, 12800}

// MeasureSetup measures newMap/openMap/deleteMap elapsed times for each
// mapping size on an idle simulated machine, exactly as a microbenchmark
// would on real hardware.
func MeasureSetup(dcfg disk.Config, cost SetupCost, sizes []int) []SetupPoint {
	points := make([]SetupPoint, 0, len(sizes))
	for _, pages := range sizes {
		k := sim.NewKernel()
		d := disk.MustNew(k, "calib", dcfg)
		sys := NewSystem(cost)
		m := NewManager(sys, d)
		bytes := int64(pages) * int64(dcfg.BlockBytes)
		var pt SetupPoint
		pt.Pages = pages
		k.Spawn("measure", func(p *sim.Proc) {
			start := p.Now()
			s := m.NewMap(p, "probe", bytes)
			pt.New = p.Now() - start

			start = p.Now()
			m.OpenMap(p, s)
			pt.Open = p.Now() - start

			start = p.Now()
			m.DeleteMap(p, s)
			pt.Delete = p.Now() - start
			d.Close()
		})
		k.Run()
		points = append(points, pt)
	}
	return points
}
