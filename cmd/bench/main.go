// Command bench measures the host-side (wall-clock) performance of the
// simulator and writes a tracked perf baseline, BENCH_sweep.json:
//
//   - wall-clock per point and total for a small Fig. 5(c) panel, run
//     sequentially and with -parallel host workers, with the speedup;
//   - the kernel's event-dispatch rate (events/sec) and its
//     ns/op + allocs/op microbenchmark;
//   - the pre-optimization baselines these numbers are compared against,
//     embedded with the commit they were measured at.
//
// All simulated results are in virtual time and unaffected by any of
// this; bench exists so host-side regressions are caught by diffing the
// committed JSON. The parallel speedup is bounded by the host: on a
// single-CPU container it is ~1x by construction (the JSON records
// GOMAXPROCS and NumCPU so readers can tell).
//
// Usage:
//
//	bench [-objects N] [-parallel N] [-out BENCH_sweep.json]
//	      [-baseline-sweep-ns N]
//
// -baseline-sweep-ns embeds an externally measured pre-optimization
// sequential wall-clock for the same panel (nanoseconds), e.g. timed
// from a worktree at the baseline commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
	"mmjoin/internal/sweep"
)

// The pre-optimization baselines, measured with the same harnesses
// (internal/sim and internal/vm bench_test.go, go test -bench -benchmem)
// at the commit below — the tree before the direct-handoff kernel, the
// intrusive-list pager, and the incremental SSTF flusher.
const (
	baselineCommit = "110f26c"

	baselineDispatchPingPongNs     = 1180.0
	baselineDispatchPingPongAllocs = 4
	baselineDispatchSelfNs         = 584.3
	baselineDispatchSelfAllocs     = 2
	baselineTouchFaultEvictNs      = 911.7
	baselineTouchFaultEvictAllocs  = 4
	baselineFlusher4096Ns          = 4312693.0
	baselineFlusher4096Allocs      = 8211
)

// panelFractions is the 4-point Grace plateau panel the sweep timing
// uses: points of similar cost, so worker imbalance does not mask the
// parallel speedup.
var panelFractions = []float64{0.03, 0.04, 0.05, 0.06}

type microbench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// hostInfo stamps every baseline with the machine it was measured on,
// so speedup numbers are read against the CPU count that bounds them.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

func currentHost() hostInfo {
	return hostInfo{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

type report struct {
	Schema string   `json:"schema"`
	Host   hostInfo `json:"host"`
	Sweep  struct {
		Panel           string    `json:"panel"`
		Objects         int       `json:"objects"`
		Fractions       []float64 `json:"fractions"`
		PointSeqNs      []int64   `json:"point_sequential_ns"`
		SequentialNs    int64     `json:"sequential_ns"`
		Parallelism     int       `json:"parallelism"`
		ParallelNs      int64     `json:"parallel_ns"`
		Speedup         float64   `json:"speedup_vs_sequential"`
		BaselineSeqNs   int64     `json:"baseline_sequential_ns,omitempty"`
		SpeedupVsBase   float64   `json:"sequential_speedup_vs_baseline,omitempty"`
		BaselineComment string    `json:"baseline_comment,omitempty"`
	} `json:"sweep"`
	Kernel struct {
		EventsPerSec     float64    `json:"events_per_sec"`
		DispatchPingPong microbench `json:"dispatch_ping_pong"`
		DispatchSelf     microbench `json:"dispatch_self"`
	} `json:"kernel"`
	Baseline struct {
		Commit                 string  `json:"commit"`
		DispatchPingPongNs     float64 `json:"dispatch_ping_pong_ns_per_op"`
		DispatchPingPongAllocs int64   `json:"dispatch_ping_pong_allocs_per_op"`
		DispatchSelfNs         float64 `json:"dispatch_self_ns_per_op"`
		DispatchSelfAllocs     int64   `json:"dispatch_self_allocs_per_op"`
		TouchFaultEvictNs      float64 `json:"vm_touch_fault_evict_ns_per_op"`
		TouchFaultEvictAllocs  int64   `json:"vm_touch_fault_evict_allocs_per_op"`
		Flusher4096Ns          float64 `json:"disk_flusher_batch4096_ns_per_op"`
		Flusher4096Allocs      int64   `json:"disk_flusher_batch4096_allocs_per_op"`
	} `json:"baseline"`
}

func main() {
	objects := flag.Int("objects", 25600, "objects per relation for the timed panel")
	parallel := flag.Int("parallel", 4, "host workers for the parallel sweep timing (>= 1)")
	out := flag.String("out", "BENCH_sweep.json", "output path for the JSON baseline")
	baseSweepNs := flag.Int64("baseline-sweep-ns", 0,
		"externally measured pre-optimization sequential wall-clock for the same panel (ns)")
	msObjects := flag.Int("mstore-objects", 300000, "objects per relation for the mstore join panel")
	msD := flag.Int("mstore-d", 4, "partitions for the mstore join panel")
	msRuns := flag.Int("mstore-runs", 3, "repetitions per mstore panel point (best is kept)")
	msOut := flag.String("mstore-out", "BENCH_mstore.json", "output path for the mstore panel baseline")
	msOnly := flag.Bool("mstore-only", false, "run only the mstore join panel (CI smoke)")
	msKernels := flag.Bool("mstore-kernels", false,
		"run only the probe-kernel panel (ns-per-pair, allocs-per-pair, cache counters)")
	msKernelObjects := flag.Int("kernel-objects", 25600,
		"objects per relation for the probe-kernel panel")
	msBaseline := flag.String("mstore-baseline", "",
		"checked-in BENCH_mstore.json to gate the kernel panel against (>20% ns-per-pair regression fails)")
	svcObjects := flag.Int("service-objects", 12000, "objects per relation for the service SLO panel")
	svcD := flag.Int("service-d", 4, "partitions for the service SLO panel")
	svcDur := flag.Duration("service-duration", 2*time.Second, "load duration per service sweep point")
	svcSeed := flag.Int64("service-seed", 42, "loadgen seed for the service SLO panel")
	svcOut := flag.String("service-out", "BENCH_service.json", "output path for the service SLO baseline")
	svcOnly := flag.Bool("service-only", false, "run only the service SLO panel")
	shOnly := flag.Bool("shard-only", false, "run only the scatter-gather shard panel (merges into -mstore-out)")
	shObjects := flag.Int("shard-objects", 120000, "objects per relation for the shard panel")
	shCount := flag.Int("shard-count", 3, "shard count for the shard panel")
	flag.Parse()
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "bench: -parallel must be >= 1, got %d\n", *parallel)
		os.Exit(2)
	}

	if *msKernels {
		kp, err := runKernelsPanel(*msKernelObjects, *msD, *msRuns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *msBaseline != "" {
			if err := checkKernelsBaseline(*msBaseline, kp); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("kernel ns-per-pair within 20%% of baseline %s\n", *msBaseline)
		}
		return
	}
	if *msOnly {
		if err := runMstorePanel(*msObjects, *msD, *msRuns, *msKernelObjects, *msOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *msBaseline != "" {
			if err := checkIndexBaseline(*msBaseline, *msOut); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("index join ns-per-pair within 20%% of baseline %s\n", *msBaseline)
		}
		return
	}
	if *svcOnly {
		if err := runServicePanel(*svcObjects, *svcD, *svcDur, *svcSeed, *svcOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if *shOnly {
		if err := runShardPanel(*shObjects, *msD, *shCount, *msRuns, *msOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	var r report
	r.Schema = "mmjoin-bench/v1"
	r.Host = currentHost()

	cfg := machine.DefaultConfig()
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = *objects, *objects
	e, err := core.NewExperiment(cfg, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	r.Sweep.Panel = "fig5c"
	r.Sweep.Objects = *objects
	r.Sweep.Fractions = panelFractions
	r.Sweep.Parallelism = *parallel

	// Per-point and total sequential wall-clock.
	fmt.Fprintf(os.Stderr, "bench: timing %d-point panel sequentially...\n", len(panelFractions))
	for _, f := range panelFractions {
		start := time.Now()
		if _, err := sweep.Memory(e, join.Grace, []float64{f}, sweep.Options{Parallelism: 1}); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		r.Sweep.PointSeqNs = append(r.Sweep.PointSeqNs, time.Since(start).Nanoseconds())
	}
	start := time.Now()
	if _, err := sweep.Memory(e, join.Grace, panelFractions, sweep.Options{Parallelism: 1}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	r.Sweep.SequentialNs = time.Since(start).Nanoseconds()

	fmt.Fprintf(os.Stderr, "bench: timing the panel with %d workers...\n", *parallel)
	start = time.Now()
	if _, err := sweep.Memory(e, join.Grace, panelFractions, sweep.Options{Parallelism: *parallel}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	r.Sweep.ParallelNs = time.Since(start).Nanoseconds()
	r.Sweep.Speedup = round2(float64(r.Sweep.SequentialNs) / float64(r.Sweep.ParallelNs))

	if *baseSweepNs > 0 {
		r.Sweep.BaselineSeqNs = *baseSweepNs
		r.Sweep.SpeedupVsBase = round2(float64(*baseSweepNs) / float64(r.Sweep.SequentialNs))
		r.Sweep.BaselineComment = fmt.Sprintf(
			"sequential wall-clock of the same panel at commit %s (pre-optimization)", baselineCommit)
	}

	// Kernel dispatch rate: two processes ping-ponging; every Advance is
	// one dispatched event.
	fmt.Fprintln(os.Stderr, "bench: kernel microbenchmarks...")
	const events = 2_000_000
	k := sim.NewKernel()
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			for j := 0; j < events/2; j++ {
				p.Advance(sim.Microsecond)
			}
		})
	}
	start = time.Now()
	k.Run()
	r.Kernel.EventsPerSec = round2(events / time.Since(start).Seconds())

	r.Kernel.DispatchPingPong = runMicro(func(b *testing.B) {
		k := sim.NewKernel()
		for i := 0; i < 2; i++ {
			k.Spawn("p", func(p *sim.Proc) {
				for j := 0; j < b.N; j++ {
					p.Advance(sim.Microsecond)
				}
			})
		}
		b.ResetTimer()
		k.Run()
	})
	r.Kernel.DispatchSelf = runMicro(func(b *testing.B) {
		k := sim.NewKernel()
		k.Spawn("p", func(p *sim.Proc) {
			for j := 0; j < b.N; j++ {
				p.Advance(sim.Microsecond)
			}
		})
		b.ResetTimer()
		k.Run()
	})

	r.Baseline.Commit = baselineCommit
	r.Baseline.DispatchPingPongNs = baselineDispatchPingPongNs
	r.Baseline.DispatchPingPongAllocs = baselineDispatchPingPongAllocs
	r.Baseline.DispatchSelfNs = baselineDispatchSelfNs
	r.Baseline.DispatchSelfAllocs = baselineDispatchSelfAllocs
	r.Baseline.TouchFaultEvictNs = baselineTouchFaultEvictNs
	r.Baseline.TouchFaultEvictAllocs = baselineTouchFaultEvictAllocs
	r.Baseline.Flusher4096Ns = baselineFlusher4096Ns
	r.Baseline.Flusher4096Allocs = baselineFlusher4096Allocs

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&r); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	f.Close()

	fmt.Printf("panel %s x%d objects=%d: sequential %.2fs, parallel(%d) %.2fs, speedup %.2fx\n",
		r.Sweep.Panel, len(panelFractions), *objects,
		time.Duration(r.Sweep.SequentialNs).Seconds(), *parallel,
		time.Duration(r.Sweep.ParallelNs).Seconds(), r.Sweep.Speedup)
	if r.Sweep.BaselineSeqNs > 0 {
		fmt.Printf("sequential vs %s baseline: %.2fs -> %.2fs (%.2fx)\n", baselineCommit,
			time.Duration(r.Sweep.BaselineSeqNs).Seconds(),
			time.Duration(r.Sweep.SequentialNs).Seconds(), r.Sweep.SpeedupVsBase)
	}
	fmt.Printf("kernel: %.0f events/sec; dispatch ping-pong %.1f ns/op %d allocs/op (baseline %.1f / %d)\n",
		r.Kernel.EventsPerSec, r.Kernel.DispatchPingPong.NsPerOp, r.Kernel.DispatchPingPong.AllocsPerOp,
		baselineDispatchPingPongNs, int64(baselineDispatchPingPongAllocs))
	fmt.Printf("baseline written to %s\n", *out)

	fmt.Fprintln(os.Stderr, "bench: mstore join panel...")
	if err := runMstorePanel(*msObjects, *msD, *msRuns, *msKernelObjects, *msOut); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// runMicro runs fn under the testing.Benchmark harness and extracts the
// per-op numbers.
func runMicro(fn func(b *testing.B)) microbench {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return microbench{
		NsPerOp:     round2(float64(res.T.Nanoseconds()) / float64(res.N)),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
