package mmjoin

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations of the design decisions called out in
// DESIGN.md. Simulated experiments run at a reduced default scale
// (|R| = |S| = 20480) so `go test -bench .` completes quickly; set
// -paperscale to run the full 102,400-object configuration of §8.
// Simulated elapsed times are reported as sim-s/op metrics; real-store
// benches report wall time as usual.

import (
	"flag"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"mmjoin/internal/core"
	"mmjoin/internal/disk"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/mstore"
	"mmjoin/internal/relation"
	"mmjoin/internal/seg"
	"mmjoin/internal/sweep"
	"mmjoin/internal/vm"
)

var paperScale = flag.Bool("paperscale", false, "run simulated benches at the paper's full 102400-object scale")

func benchSpec() relation.Spec {
	spec := relation.DefaultSpec()
	if !*paperScale {
		spec.NR, spec.NS = 20480, 20480
	}
	return spec
}

func benchExperiment(b *testing.B) *core.Experiment {
	b.Helper()
	e, err := core.NewExperiment(machine.DefaultConfig(), benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFig1aDiskTransfer regenerates the dttr/dttw curves of
// Fig. 1(a) and reports the end points as metrics.
func BenchmarkFig1aDiskTransfer(b *testing.B) {
	cfg := machine.DefaultConfig()
	var pts []disk.DTTPoint
	for i := 0; i < b.N; i++ {
		pts = disk.MeasureDTT(cfg.Disk, disk.StandardBands, 2000, 1)
	}
	for _, pt := range pts {
		b.Logf("band %6d  dttr %6.2fms  dttw %6.2fms", pt.Band,
			pt.Read.Milliseconds(), pt.Write.Milliseconds())
	}
	b.ReportMetric(pts[0].Read.Milliseconds(), "dttr-seq-ms")
	b.ReportMetric(pts[len(pts)-1].Read.Milliseconds(), "dttr-12800-ms")
	b.ReportMetric(pts[len(pts)-1].Write.Milliseconds(), "dttw-12800-ms")
}

// BenchmarkFig1bMapSetup regenerates the mapping-setup curves of
// Fig. 1(b) and reports the 12800-block costs.
func BenchmarkFig1bMapSetup(b *testing.B) {
	cfg := machine.DefaultConfig()
	var pts []seg.SetupPoint
	for i := 0; i < b.N; i++ {
		pts = seg.MeasureSetup(cfg.Disk, cfg.Setup, seg.StandardSetupSizes)
	}
	last := pts[len(pts)-1]
	for _, pt := range pts {
		if pt.Pages >= 1600 {
			b.Logf("size %6d  new %5.2fs  open %5.2fs  delete %5.2fs", pt.Pages,
				pt.New.Seconds(), pt.Open.Seconds(), pt.Delete.Seconds())
		}
	}
	b.ReportMetric(last.New.Seconds(), "newMap-12800-s")
	b.ReportMetric(last.Open.Seconds(), "openMap-12800-s")
	b.ReportMetric(last.Delete.Seconds(), "deleteMap-12800-s")
}

// fig5 sweeps one Fig. 5 panel, logging the model-vs-experiment rows and
// reporting the worst relative model error and the low-memory elapsed
// time as metrics.
func fig5(b *testing.B, alg join.Algorithm) {
	e := benchExperiment(b)
	var pts []core.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = sweep.Memory(e, alg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, c := range pts {
		b.Logf("f=%.3f  experiment %8.1fs  model %8.1fs  err %+5.1f%%",
			c.MemFrac, c.Measured.Seconds(), c.Predicted.Seconds(), 100*c.RelError())
		if re := math.Abs(c.RelError()); re > worst {
			worst = re
		}
	}
	b.ReportMetric(pts[0].Measured.Seconds(), "lowmem-sim-s")
	b.ReportMetric(pts[len(pts)-1].Measured.Seconds(), "highmem-sim-s")
	b.ReportMetric(100*worst, "worst-model-err-%")
}

// BenchmarkFig5aNestedLoops regenerates Fig. 5(a).
func BenchmarkFig5aNestedLoops(b *testing.B) { fig5(b, join.NestedLoops) }

// BenchmarkFig5bSortMerge regenerates Fig. 5(b).
func BenchmarkFig5bSortMerge(b *testing.B) { fig5(b, join.SortMerge) }

// BenchmarkFig5cGrace regenerates Fig. 5(c).
func BenchmarkFig5cGrace(b *testing.B) { fig5(b, join.Grace) }

// BenchmarkAblationStagger compares the paper's staggered pass-1 phases
// against per-phase synchronization and against the naive visiting order
// (§5.1's contention claims).
func BenchmarkAblationStagger(b *testing.B) {
	e := benchExperiment(b)
	variants := []struct {
		name    string
		stagger bool
		sync    bool
	}{
		{"staggered", true, false},
		{"staggered+sync", true, true},
		{"naive", false, false},
	}
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			prm := e.ParamsForFraction(0.10)
			prm.Stagger = v.stagger
			prm.SyncPhases = v.sync
			res, err := e.Measure(join.NestedLoops, prm)
			if err != nil {
				b.Fatal(err)
			}
			times[v.name] = res.Elapsed.Seconds()
		}
	}
	for _, v := range variants {
		b.Logf("%-16s %8.1fs", v.name, times[v.name])
		b.ReportMetric(times[v.name], v.name+"-sim-s")
	}
}

// BenchmarkAblationGBuffer sweeps the shared request buffer size G,
// trading context switches against buffer pressure (§5.2).
func BenchmarkAblationGBuffer(b *testing.B) {
	e := benchExperiment(b)
	for _, g := range []int64{512, 4096, 32768} {
		g := g
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			var res *join.Result
			var err error
			for i := 0; i < b.N; i++ {
				prm := e.ParamsForFraction(0.10)
				prm.G = g
				res, err = e.Measure(join.NestedLoops, prm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds(), "sim-s")
			b.ReportMetric(float64(res.ContextSwitches), "ctx-switches")
		})
	}
}

// BenchmarkAblationNRunRule compares the paper's deliberately
// underutilized merge fan-in (NRUN = M/3B) against the naive maximum
// (M/B), which triggers the LRU replacement anomaly of §6.2. The final
// fan-in is pinned so both variants run the same number of passes and
// only the per-pass memory pressure differs.
func BenchmarkAblationNRunRule(b *testing.B) {
	e := benchExperiment(b)
	frac := 0.010
	mem := int64(frac * float64(e.TotalRBytes()))
	bpages := int(mem / 4096)
	if bpages < 9 {
		bpages = 9
	}
	for _, v := range []struct {
		name string
		nrun int
	}{
		{"paper-M3B", bpages / 3},
		{"naive-MB", bpages},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var res *join.Result
			var err error
			for i := 0; i < b.N; i++ {
				prm := e.ParamsForFraction(frac)
				prm.NRunABL = v.nrun
				prm.NRunLast = 4 // same final merge for both variants
				res, err = e.Measure(join.SortMerge, prm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds(), "sim-s")
			b.ReportMetric(float64(res.DiskReads), "reads")
			b.ReportMetric(float64(res.NPass), "npass")
		})
	}
}

// BenchmarkExtSpeedup runs the §9 speedup extension (fixed problem,
// growing D) and reports the D=8 speedup factor per algorithm.
func BenchmarkExtSpeedup(b *testing.B) {
	cfg := machine.DefaultConfig()
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
			times, err := sweep.Speedup(cfg, spec, alg, []int{1, 8}, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			sp := float64(times[1]) / float64(times[8])
			b.Logf("%-12s D=1 %8.1fs  D=8 %8.1fs  speedup %.2fx",
				alg, times[1].Seconds(), times[8].Seconds(), sp)
			if i == 0 {
				b.ReportMetric(sp, alg.String()+"-speedup-x")
			}
		}
	}
}

// BenchmarkModelEvaluation measures the cost of one analytical
// prediction — the model must be cheap enough for a query optimizer.
func BenchmarkModelEvaluation(b *testing.B) {
	cfg := machine.DefaultConfig()
	calib := model.Calibrate(cfg, 500, 1)
	in := model.Inputs{
		NR: 102400, NS: 102400, R: 128, S: 128, Ptr: 8, D: 4,
		MRproc: 512 << 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.PredictNestedLoops(calib, in); err != nil {
			b.Fatal(err)
		}
		if _, err := model.PredictSortMerge(calib, in); err != nil {
			b.Fatal(err)
		}
		if _, err := model.PredictGrace(calib, in); err != nil {
			b.Fatal(err)
		}
	}
}

// Real-store benches: wall-clock times of the three joins over actual
// mmap segments.
func benchDB(b *testing.B) *mstore.DB {
	b.Helper()
	db, err := mstore.CreateDB(filepath.Join(b.TempDir(), "db"), 4, 40000, 40000, 128, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkMstoreNestedLoops(b *testing.B) {
	db := benchDB(b)
	tmp := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.NestedLoops(tmp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMstoreSortMerge(b *testing.B) {
	db := benchDB(b)
	tmp := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SortMerge(tmp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMstoreGrace(b *testing.B) {
	db := benchDB(b)
	tmp := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Grace(tmp, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMstoreSwizzlePass measures what exact positioning saves: a
// full pointer-relocation pass over R (what an ObjectStore-style system
// would do per mapping) versus the zero work our store does at open.
func BenchmarkMstoreSwizzlePass(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rewrite every join attribute in place (decode + re-encode),
		// the minimal work a relocation/swizzling scheme performs.
		for p := 0; p < db.D; p++ {
			rel := db.R[p]
			for x := 0; x < rel.Count(); x++ {
				obj := rel.Object(x)
				mstore.EncodeSPtr(obj, mstore.DecodeSPtr(obj))
			}
		}
	}
	b.ReportMetric(float64(4*40000*b.N)/b.Elapsed().Seconds(), "ptrs/s")
}

// BenchmarkAblationPolicy compares page replacement policies on the
// Grace thrashing region. The paper attributes part of its residual
// model error to Dynix's "simple page replacement algorithm"; FIFO
// reproduces that behaviour and moves the thrashing knee toward the
// paper's position, while LRU-with-clean-preference thrashes later.
func BenchmarkAblationPolicy(b *testing.B) {
	e := benchExperiment(b)
	for _, pol := range []vm.Policy{vm.LRU, vm.Clock, vm.FIFO} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var res *join.Result
			var err error
			for i := 0; i < b.N; i++ {
				prm := e.ParamsForFraction(0.015)
				prm.Policy = pol
				res, err = e.Measure(join.Grace, prm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Elapsed.Seconds(), "sim-s")
			b.ReportMetric(float64(res.DiskReads), "reads")
		})
	}
}

// BenchmarkExtHybridHash compares the hybrid-hash extension against
// Grace across the memory range: equal at scarce memory, strictly better
// once part of S stays resident.
func BenchmarkExtHybridHash(b *testing.B) {
	e := benchExperiment(b)
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0.01, 0.05, 0.20} {
			gr, err := e.Measure(join.Grace, e.ParamsForFraction(f))
			if err != nil {
				b.Fatal(err)
			}
			hh, err := e.Measure(join.HybridHash, e.ParamsForFraction(f))
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("f=%.2f  grace %8.1fs  hybrid %8.1fs  (%.2fx)",
				f, gr.Elapsed.Seconds(), hh.Elapsed.Seconds(),
				float64(gr.Elapsed)/float64(hh.Elapsed))
			if i == 0 && f == 0.20 {
				b.ReportMetric(float64(gr.Elapsed)/float64(hh.Elapsed), "hybrid-gain-x")
			}
		}
	}
}

// BenchmarkExtPointerVsTraditional quantifies the paper's headline claim:
// the virtual-pointer join attribute eliminates hashing and
// repartitioning S. Pointer-based Grace is compared against a
// conventional value-based parallel Grace hash join on the same
// workload.
func BenchmarkExtPointerVsTraditional(b *testing.B) {
	e := benchExperiment(b)
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0.02, 0.10} {
			ptr, err := e.Measure(join.Grace, e.ParamsForFraction(f))
			if err != nil {
				b.Fatal(err)
			}
			trad, err := e.Measure(join.TraditionalGrace, e.ParamsForFraction(f))
			if err != nil {
				b.Fatal(err)
			}
			gain := float64(trad.Elapsed) / float64(ptr.Elapsed)
			b.Logf("f=%.2f  pointer %8.1fs  traditional %8.1fs  pointer gain %.2fx",
				f, ptr.Elapsed.Seconds(), trad.Elapsed.Seconds(), gain)
			if i == 0 && f == 0.02 {
				b.ReportMetric(gain, "pointer-gain-x")
			}
		}
	}
}
