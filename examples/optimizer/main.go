// Optimizer: use the analytical model as a query optimizer's cost
// filter — the application the paper names as the model's most important
// consumer. For a grid of memory budgets and relation sizes, the model
// alone (no execution) picks the cheapest pointer-based join; a few
// points are then verified against the simulated machine.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

func main() {
	cfg := machine.DefaultConfig()
	calib := model.Calibrate(cfg, 2000, 1)

	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace}
	predict := func(alg join.Algorithm, in model.Inputs) sim.Time {
		var pr *model.Prediction
		var err error
		switch alg {
		case join.NestedLoops:
			pr, err = model.PredictNestedLoops(calib, in)
		case join.SortMerge:
			pr, err = model.PredictSortMerge(calib, in)
		case join.Grace:
			pr, err = model.PredictGrace(calib, in)
		}
		if err != nil {
			log.Fatal(err)
		}
		return pr.Total
	}

	fmt.Println("model-only plan choice (|R|=|S|=102400 x 128B, D=4):")
	fmt.Println("memory/proc   nested-loops   sort-merge        grace   -> choice")
	fracs := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.40, 0.70, 1.20}
	totalBytes := int64(102400 * 128)
	for _, f := range fracs {
		in := model.Inputs{
			NR: 102400, NS: 102400, R: 128, S: 128, Ptr: 8, D: 4,
			MRproc: int64(f * float64(totalBytes)),
		}
		best := algs[0]
		var bestT sim.Time = sim.MaxTime
		var times []sim.Time
		for _, alg := range algs {
			t := predict(alg, in)
			times = append(times, t)
			if t < bestT {
				bestT, best = t, alg
			}
		}
		fmt.Printf("%8.0f KB  %11.1fs  %11.1fs  %11.1fs   -> %s\n",
			float64(in.MRproc)/1024, times[0].Seconds(), times[1].Seconds(),
			times[2].Seconds(), best)
	}

	// Spot-check the optimizer's picks against the simulated machine at
	// a reduced scale (full runs are seconds each; this keeps the
	// example snappy).
	fmt.Println("\nspot check against the simulated machine (|R|=20000):")
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 20000, 20000
	e, err := core.NewExperiment(cfg, spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range []float64{0.02, 0.40} {
		fmt.Printf("  memory %.0f KB:\n", f*float64(e.TotalRBytes())/1024)
		best := ""
		var bestT sim.Time = sim.MaxTime
		var predBest string
		var predT sim.Time = sim.MaxTime
		for _, alg := range algs {
			cmp, err := e.Compare(alg, e.ParamsForFraction(f))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-12s measured %7.1fs   model %7.1fs\n",
				alg, cmp.Measured.Seconds(), cmp.Predicted.Seconds())
			if cmp.Measured < bestT {
				bestT, best = cmp.Measured, alg.String()
			}
			if cmp.Predicted < predT {
				predT, predBest = cmp.Predicted, alg.String()
			}
		}
		verdict := "model picked the winner"
		if best != predBest {
			verdict = fmt.Sprintf("model picked %s, measurement favours %s", predBest, best)
		}
		fmt.Printf("    -> %s\n", verdict)
	}
}
