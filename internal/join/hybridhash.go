package join

import (
	"fmt"
	"sort"

	"mmjoin/internal/sim"
)

// runHybridHash executes a parallel pointer-based hybrid-hash join — the
// third algorithm of Shekita and Carey's pointer-join framework, which
// the paper lists as future work ("more modern hash-based join
// algorithms"). It extends Grace with a resident bucket: join attributes
// pointing into a prefix of each S partition sized to stay cached in the
// Sproc's memory are joined immediately during the partitioning passes
// and never written to RSi; only the remainder is hashed into K ordered
// buckets and probed as in Grace. With ample memory the algorithm
// degenerates to pure immediate joining; with scarce memory it converges
// to Grace.
func (r *runner) runHybridHash() {
	counts := r.w.SubCounts()
	rsCounts := r.w.RSCounts()
	r.spawnSprocs()
	bar := sim.NewBarrier("hh-phase", r.d)

	maxRS := 0
	for _, c := range rsCounts {
		if c > maxRS {
			maxRS = c
		}
	}
	maxS := 0
	for j := 0; j < r.d; j++ {
		if n := r.w.SizeS(j); n > maxS {
			maxS = n
		}
	}

	// Resident fraction: the prefix of each Sj that fits (with headroom)
	// in the Sproc's buffer, so immediate joins against it re-fault
	// rarely.
	f0 := 0.8 * float64(r.prm.MSproc) / (float64(maxS) * float64(r.s))
	if f0 > 1 {
		f0 = 1
	}
	if f0 < 0 {
		f0 = 0
	}
	// Ordered buckets for the overflow portion, Grace-sized.
	k := r.prm.K
	if k <= 0 {
		need := r.prm.Fuzz * (1 - f0) * float64(maxRS) * float64(r.r) / float64(r.prm.MRproc)
		k = int(need)
		if float64(k) < need {
			k++
		}
	}
	if f0 >= 1 {
		k = 0
	} else if k < 1 {
		k = 1
	}
	r.res.K = k

	tsize := r.prm.TSize
	if tsize <= 0 {
		tsize = 16
		if k > 0 {
			avgBucket := int((1 - f0) * float64(maxRS) / float64(k))
			for tsize < avgBucket/4 {
				tsize *= 2
			}
		}
	}
	r.res.TSize = tsize

	// residentUpTo[j]: S indexes below this join immediately.
	residentUpTo := make([]int32, r.d)
	for j := 0; j < r.d; j++ {
		residentUpTo[j] = int32(f0 * float64(r.w.SizeS(j)))
	}
	bucketOf := func(ptr int32, j int) int {
		lo := residentUpTo[j]
		span := int32(r.w.SizeS(j)) - lo
		if span <= 0 {
			return 0
		}
		b := int(int64(ptr-lo) * int64(k) / int64(span))
		if b >= k {
			b = k - 1
		}
		return b
	}

	// Pre-compute overflow bucket sizes.
	bucketCount := make([][]int, r.d)
	for j := range bucketCount {
		bucketCount[j] = make([]int, k+1)
	}
	for i := 0; i < r.d; i++ {
		for _, ptr := range r.w.Refs[i] {
			if ptr.Index >= residentUpTo[ptr.Part] {
				bucketCount[ptr.Part][bucketOf(ptr.Index, int(ptr.Part))]++
			}
		}
	}
	bucketStart := make([][]int64, r.d)
	overflow := make([]int, r.d)
	for j := range bucketStart {
		bucketStart[j] = make([]int64, k+1)
		for b := 0; b < k; b++ {
			bucketStart[j][b+1] = bucketStart[j][b] + int64(bucketCount[j][b])
			overflow[j] += bucketCount[j][b]
		}
	}

	type bucketState struct {
		objs [][]pendingJoin
		cur  []int64
	}
	rs := make([]*bucketState, r.d)
	rsSegments := make([]*segRef, r.d)
	for j := 0; j < r.d; j++ {
		rs[j] = &bucketState{objs: make([][]pendingJoin, k), cur: make([]int64, k)}
		rsSegments[j] = &segRef{}
	}

	for i := 0; i < r.d; i++ {
		i := i
		r.m.K.Spawn(fmt.Sprintf("Rproc%d", i), func(p *sim.Proc) {
			pg := r.newPager(fmt.Sprintf("Rproc%d", i), r.prm.MRproc)
			mgr := r.m.Mgr[i]

			mgr.OpenMap(p, r.segR[i])
			mgr.OpenMap(p, r.segS[i])
			rsBytes := int64(overflow[i]) * r.r
			if rsBytes == 0 {
				rsBytes = 1
			}
			rsSegments[i].s = mgr.NewMap(p, fmt.Sprintf("RS%d", i), rsBytes)
			offsets, total := r.subLayout(i, counts)
			rp := mgr.NewMap(p, fmt.Sprintf("RP%d", i), total)
			r.markPhase(p, "setup")
			bar.Wait(p)

			writeBucket := func(j int, pj pendingJoin) {
				b := bucketOf(pj.ptr.Index, j)
				off := (bucketStart[j][b] + rs[j].cur[b]) * r.r
				pg.Touch(p, rsSegments[j].s, off, r.r, true)
				rs[j].cur[b]++
				rs[j].objs[b] = append(rs[j].objs[b], pj)
			}

			// Pass 0: resident-range references join immediately; the
			// remainder of the own-partition references is hashed into
			// buckets; foreign references sub-partition as usual.
			gbuf := r.newGBuffer(i, i)
			cursors := make([]int64, r.d)
			rpRefs := make([][]pendingJoin, r.d)
			for x, ptr := range r.w.Refs[i] {
				pg.Touch(p, r.segR[i], int64(x)*r.r, r.r, false)
				j := int(ptr.Part)
				if j == i {
					if ptr.Index < residentUpTo[i] {
						p.Advance(r.m.Cfg.MapCost + r.m.Cfg.HashCost)
						gbuf.add(p, int32(i), int32(x), ptr)
						continue
					}
					p.Advance(r.m.Cfg.MapCost + r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.r))
					writeBucket(i, pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
					continue
				}
				p.Advance(r.m.Cfg.MapCost + r.m.Cfg.TransferPP(r.r))
				pg.Touch(p, rp, offsets[j]+cursors[j]*r.r, r.r, true)
				cursors[j]++
				rpRefs[j] = append(rpRefs[j], pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
			}
			gbuf.flush(p)
			r.markPhase(p, "pass0")
			bar.Wait(p)

			// Pass 1: staggered, synchronized; resident-range references
			// join immediately against Sproc j, the rest hash into RSj.
			for t := 1; t < r.d; t++ {
				j := r.phasePartition(i, t)
				gb := r.newGBuffer(i, j)
				for n, pj := range rpRefs[j] {
					pg.Touch(p, rp, offsets[j]+int64(n)*r.r, r.r, false)
					if pj.ptr.Index < residentUpTo[j] {
						p.Advance(r.m.Cfg.HashCost)
						gb.add(p, pj.ri, pj.x, pj.ptr)
						continue
					}
					p.Advance(r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.r))
					writeBucket(j, pj)
				}
				gb.flush(p)
				bar.Wait(p)
			}
			for j := 0; j < r.d; j++ {
				if j != i {
					pg.FlushSegment(p, rsSegments[j].s)
					pg.DropSegment(rsSegments[j].s)
				}
			}
			r.markPhase(p, "pass1")
			bar.Wait(p)

			// Overflow buckets probed exactly as in Grace.
			for b := 0; b < k; b++ {
				objs := rs[i].objs[b]
				overheadBytes := int64(tsize)*8 + int64(len(objs))*int64(r.m.Cfg.HeapPtrBytes)
				reserve := r.reserve(p, pg, int((overheadBytes+r.b-1)/r.b))
				for n := range objs {
					off := (bucketStart[i][b] + int64(n)) * r.r
					pg.Touch(p, rsSegments[i].s, off, r.r, false)
					p.Advance(r.m.Cfg.HashCost)
				}
				order := make([]int, len(objs))
				for n := range order {
					order[n] = n
				}
				sort.SliceStable(order, func(a, c int) bool {
					return objs[order[a]].ptr.Index < objs[order[c]].ptr.Index
				})
				gb := r.newGBuffer(i, i)
				for _, n := range order {
					gb.add(p, objs[n].ri, objs[n].x, objs[n].ptr)
				}
				gb.flush(p)
				pg.Unreserve(reserve)
			}
			r.markPhase(p, "probe")

			r.addPagerStats(pg)
			r.rprocDone(p, i)
		})
	}
	r.m.K.Run()
	r.finishPhases([]string{"setup", "pass0", "pass1", "probe"})
}
