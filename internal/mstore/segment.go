// Package mstore is a real memory-mapped single-level store in the style
// of µDatabase: file-backed segments mapped with mmap(2), addressed from
// a per-segment virtual zero so that intra-segment pointers are plain
// offsets and need neither relocation nor swizzling when the segment is
// reopened — the paper's "exact positioning of data" approach.
//
// The package provides persistent segments with an in-segment allocator,
// fixed-record relation heaps whose join attributes are virtual pointers
// into another segment, and real parallel pointer-based joins (nested
// loops, sort-merge, Grace) executed by goroutines over the mapped data.
package mstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// unsafeDataPtr returns the address of a mapped slice for msync.
func unsafeDataPtr(b []byte) unsafe.Pointer { return unsafe.Pointer(&b[0]) }

// Ptr is a virtual pointer within a segment: a byte offset from the
// segment's virtual zero. The zero Ptr is the nil pointer (offset 0 holds
// the segment header, so no object ever lives there).
type Ptr uint64

const (
	magic         = 0x6D6D4A4F // "mmJO"
	version       = 1
	headerSize    = 64
	offMagic      = 0
	offVersion    = 4
	offSize       = 8  // u64: usable segment size
	offAllocTop   = 16 // u64: bump pointer
	offRoot       = 24 // u64: application root object
	offFree       = 32 // u64: head of the free list (Ptr)
	offAuxRoot    = 40 // u64: secondary root (e.g. an index over the root relation)
	minSegment    = 4096
	allocAlign    = 8
	freeNodeBytes = 16 // next Ptr + size u64
)

// Segment is a memory-mapped file whose contents persist across opens.
// It is not safe for concurrent mutation without external locking; the
// join code partitions work so each segment has one writer.
type Segment struct {
	path string
	f    *os.File
	data []byte
}

// Create creates (or truncates) a segment file of the given usable size
// and maps it.
func Create(path string, size int64) (*Segment, error) {
	if size < minSegment {
		size = minSegment
	}
	size = (size + int64(headerSize) + 4095) &^ 4095
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mstore: create %s: %w", path, err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, fmt.Errorf("mstore: size %s: %w", path, err)
	}
	s := &Segment{path: path, f: f}
	if err := s.mmap(size); err != nil {
		f.Close()
		return nil, err
	}
	binary.LittleEndian.PutUint32(s.data[offMagic:], magic)
	binary.LittleEndian.PutUint32(s.data[offVersion:], version)
	binary.LittleEndian.PutUint64(s.data[offSize:], uint64(size))
	binary.LittleEndian.PutUint64(s.data[offAllocTop:], headerSize)
	binary.LittleEndian.PutUint64(s.data[offRoot:], 0)
	binary.LittleEndian.PutUint64(s.data[offFree:], 0)
	binary.LittleEndian.PutUint64(s.data[offAuxRoot:], 0)
	return s, nil
}

// Open maps an existing segment file. Because data is exactly positioned,
// no pointer in the segment needs modification.
func Open(path string) (*Segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("mstore: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Segment{path: path, f: f}
	if err := s.mmap(st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(s.data[offMagic:]) != magic {
		s.Close()
		return nil, fmt.Errorf("mstore: %s is not a segment file", path)
	}
	if v := binary.LittleEndian.Uint32(s.data[offVersion:]); v != version {
		s.Close()
		return nil, fmt.Errorf("mstore: %s has version %d, want %d", path, v, version)
	}
	if sz := binary.LittleEndian.Uint64(s.data[offSize:]); int64(sz) != st.Size() {
		s.Close()
		return nil, fmt.Errorf("mstore: %s header size %d != file size %d", path, sz, st.Size())
	}
	return s, nil
}

func (s *Segment) mmap(size int64) error {
	data, err := syscall.Mmap(int(s.f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("mstore: mmap %s: %w", s.path, err)
	}
	s.data = data
	return nil
}

// Path returns the backing file path.
func (s *Segment) Path() string { return s.path }

// Size returns the mapped size in bytes.
func (s *Segment) Size() int64 { return int64(len(s.data)) }

// Sync flushes dirty pages to the backing file.
func (s *Segment) Sync() error {
	if len(s.data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafeDataPtr(s.data)), uintptr(len(s.data)), syscall.MS_SYNC)
	if errno != 0 {
		return fmt.Errorf("mstore: msync %s: %w", s.path, errno)
	}
	return nil
}

// Close syncs, unmaps, and closes the file.
func (s *Segment) Close() error {
	var first error
	if s.data != nil {
		if err := s.Sync(); err != nil {
			first = err
		}
		if err := syscall.Munmap(s.data); err != nil && first == nil {
			first = fmt.Errorf("mstore: munmap %s: %w", s.path, err)
		}
		s.data = nil
	}
	if s.f != nil {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
		s.f = nil
	}
	return first
}

// Delete closes the segment and removes its backing file (deleteMap).
func (s *Segment) Delete() error {
	path := s.path
	if err := s.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return os.Remove(path)
}

// Grow remaps the segment with at least min usable bytes. Virtual
// pointers remain valid because they are offsets; only the Go-side slice
// changes.
func (s *Segment) Grow(min int64) error {
	if min <= s.Size() {
		return nil
	}
	size := s.Size()
	for size < min {
		size *= 2
	}
	if err := syscall.Munmap(s.data); err != nil {
		return fmt.Errorf("mstore: munmap for grow: %w", err)
	}
	s.data = nil
	if err := s.f.Truncate(size); err != nil {
		return fmt.Errorf("mstore: grow %s: %w", s.path, err)
	}
	if err := s.mmap(size); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(s.data[offSize:], uint64(size))
	return nil
}

// check panics on out-of-range access — the mapped equivalent of a
// segmentation fault, which is a programming error.
func (s *Segment) check(p Ptr, n int64) {
	if p < headerSize || int64(p)+n > s.Size() {
		panic(fmt.Sprintf("mstore: access [%d,%d) outside segment %s of %d bytes",
			p, int64(p)+n, s.path, s.Size()))
	}
}

// Bytes returns the n bytes at p as a slice aliasing the mapped memory.
func (s *Segment) Bytes(p Ptr, n int64) []byte {
	s.check(p, n)
	return s.data[p : int64(p)+n : int64(p)+n]
}

// U64 reads a little-endian uint64 at p.
func (s *Segment) U64(p Ptr) uint64 {
	s.check(p, 8)
	return binary.LittleEndian.Uint64(s.data[p:])
}

// PutU64 writes a little-endian uint64 at p.
func (s *Segment) PutU64(p Ptr, v uint64) {
	s.check(p, 8)
	binary.LittleEndian.PutUint64(s.data[p:], v)
}

// U32 reads a little-endian uint32 at p.
func (s *Segment) U32(p Ptr) uint32 {
	s.check(p, 4)
	return binary.LittleEndian.Uint32(s.data[p:])
}

// PutU32 writes a little-endian uint32 at p.
func (s *Segment) PutU32(p Ptr, v uint32) {
	s.check(p, 4)
	binary.LittleEndian.PutUint32(s.data[p:], v)
}

// Root returns the segment's application root pointer.
func (s *Segment) Root() Ptr { return Ptr(binary.LittleEndian.Uint64(s.data[offRoot:])) }

// SetRoot stores the application root pointer.
func (s *Segment) SetRoot(p Ptr) { binary.LittleEndian.PutUint64(s.data[offRoot:], uint64(p)) }

// AuxRoot returns the segment's secondary root pointer, conventionally
// an index over the root relation.
func (s *Segment) AuxRoot() Ptr { return Ptr(binary.LittleEndian.Uint64(s.data[offAuxRoot:])) }

// SetAuxRoot stores the secondary root pointer.
func (s *Segment) SetAuxRoot(p Ptr) { binary.LittleEndian.PutUint64(s.data[offAuxRoot:], uint64(p)) }

func (s *Segment) allocTop() Ptr { return Ptr(binary.LittleEndian.Uint64(s.data[offAllocTop:])) }
func (s *Segment) setAllocTop(p Ptr) {
	binary.LittleEndian.PutUint64(s.data[offAllocTop:], uint64(p))
}
func (s *Segment) freeHead() Ptr     { return Ptr(binary.LittleEndian.Uint64(s.data[offFree:])) }
func (s *Segment) setFreeHead(p Ptr) { binary.LittleEndian.PutUint64(s.data[offFree:], uint64(p)) }

// Alloc reserves n bytes inside the segment and returns their virtual
// pointer, first-fit from the persistent free list, then by bumping the
// allocation top (growing the mapping if needed).
func (s *Segment) Alloc(n int64) (Ptr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mstore: Alloc(%d)", n)
	}
	n = (n + allocAlign - 1) &^ (allocAlign - 1)
	if n < freeNodeBytes {
		n = freeNodeBytes
	}
	// First fit on the free list.
	prev := Ptr(0)
	for node := s.freeHead(); node != 0; {
		next := Ptr(s.U64(node))
		size := int64(s.U64(node + 8))
		if size >= n {
			if rem := size - n; rem >= freeNodeBytes {
				// Split: keep the remainder on the list.
				remNode := node + Ptr(n)
				s.PutU64(remNode, uint64(next))
				s.PutU64(remNode+8, uint64(rem))
				next = remNode
			}
			if prev == 0 {
				s.setFreeHead(next)
			} else {
				s.PutU64(prev, uint64(next))
			}
			return node, nil
		}
		prev = node
		node = next
	}
	top := s.allocTop()
	if int64(top)+n > s.Size() {
		if err := s.Grow(int64(top) + n); err != nil {
			return 0, err
		}
	}
	s.setAllocTop(top + Ptr(n))
	return top, nil
}

// Free returns the n bytes at p to the free list.
func (s *Segment) Free(p Ptr, n int64) {
	n = (n + allocAlign - 1) &^ (allocAlign - 1)
	if n < freeNodeBytes {
		n = freeNodeBytes
	}
	s.check(p, n)
	s.PutU64(p, uint64(s.freeHead()))
	s.PutU64(p+8, uint64(n))
	s.setFreeHead(p)
}
