package mstore

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
)

// indexedDB builds indexes over db (ephemeral pool) and fails the test
// on any error.
func indexedDB(t *testing.T, db *DB) *DB {
	t.Helper()
	if err := db.BuildIndexes(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if !db.HasIndexes() {
		t.Fatal("HasIndexes false after BuildIndexes")
	}
	return db
}

func TestBuildIndexesVerify(t *testing.T) {
	db := indexedDB(t, makeDB(t, 3000))
	if err := db.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < db.D; j++ {
		if err := db.SIndex(j).Verify(); err != nil {
			t.Fatalf("S%d: %v", j, err)
		}
		if got, want := db.SIndex(j).Len(), db.S[j].Count(); got != want {
			t.Fatalf("S%d index Len = %d, want %d", j, got, want)
		}
	}
	for i := 0; i < db.D; i++ {
		if err := db.RIndex(i).Verify(); err != nil {
			t.Fatalf("R%d: %v", i, err)
		}
		if got, want := db.RIndex(i).Len(), db.R[i].Count(); got != want {
			t.Fatalf("R%d index Len = %d, want %d", i, got, want)
		}
	}
	// Idempotent.
	if err := db.BuildIndexes(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestIndexJoinGrid is the tentpole invariant: both index operators
// reproduce the exact Pairs/Signature of the pointer ground truth for
// uniform and Zipf-skewed stores at every worker count — the same
// bit-identical gate the kernel rewrites are held to.
func TestIndexJoinGrid(t *testing.T) {
	dbs := map[string]*DB{
		"uniform": indexedDB(t, makeDB(t, 4000)),
		"zipf":    indexedDB(t, zipfDB(t, 4000)),
	}
	workerGrid := []int{1, 4, runtime.GOMAXPROCS(0)}
	for name, db := range dbs {
		want := db.ExpectedStats()
		for _, alg := range []join.Algorithm{join.IndexNL, join.IndexMerge} {
			for _, w := range workerGrid {
				got, err := db.Run(JoinRequest{Algorithm: alg, Workers: w})
				if err != nil {
					t.Fatalf("%s/%v/w=%d: %v", name, alg, w, err)
				}
				if got != want {
					t.Errorf("%s/%v/w=%d: stats %+v, want %+v", name, alg, w, got, want)
				}
			}
		}
	}
}

// TestIndexJoinGrantMetered: the index operators run under the same
// grant plumbing as the bucketed joins; a tiny grant must not change the
// result (their footprint is O(workers) and simply runs unmetered when
// the bite doesn't fit).
func TestIndexJoinGrantMetered(t *testing.T) {
	db := indexedDB(t, makeDB(t, 2000))
	want := db.ExpectedStats()
	for _, alg := range []join.Algorithm{join.IndexNL, join.IndexMerge} {
		for _, grant := range []int64{-1, 1, 1 << 20} {
			var tel JoinTelemetry
			got, err := db.Run(JoinRequest{Algorithm: alg, MemGrant: grant, Telemetry: &tel, Workers: 2})
			if err != nil {
				t.Fatalf("%v/grant=%d: %v", alg, grant, err)
			}
			if got != want {
				t.Errorf("%v/grant=%d: stats %+v, want %+v", alg, grant, got, want)
			}
			if grant >= indexFootprint(2, defaultProbeBatch) && tel.PeakTableBytes.Load() == 0 {
				t.Errorf("%v/grant=%d: no peak bytes recorded", alg, grant)
			}
		}
	}
}

// TestIndexUnindexedRejected: the request layer refuses index plans on a
// store without attached indexes.
func TestIndexUnindexedRejected(t *testing.T) {
	db := makeDB(t, 200)
	for _, alg := range []join.Algorithm{join.IndexNL, join.IndexMerge} {
		if _, err := db.Run(JoinRequest{Algorithm: alg}); err == nil {
			t.Errorf("%v ran without indexes", alg)
		}
	}
}

// TestIndexPersistenceReopen is the paper's no-pointer-fixup claim for
// indexes: build, close, reopen — OpenDB attaches the trees by exact
// positioning and the index joins reproduce the identical Signature.
func TestIndexPersistenceReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := CreateDB(dir, 4, 3000, 3000, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndexes(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	want := db.ExpectedStats()
	db.Close()

	db2, err := OpenDB(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.HasIndexes() {
		t.Fatal("reopen did not attach indexes")
	}
	if err := db2.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []join.Algorithm{join.IndexNL, join.IndexMerge} {
		got, err := db2.Run(JoinRequest{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v after reopen: %v", alg, err)
		}
		if got != want {
			t.Errorf("%v after reopen: stats %+v, want %+v", alg, got, want)
		}
	}
}

// TestIndexReopenUnindexedStore: a store that never built indexes must
// reopen unindexed (AuxRoot zero everywhere), not crash or misattach.
func TestIndexReopenUnindexedStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := CreateDB(dir, 2, 500, 500, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := OpenDB(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.HasIndexes() {
		t.Fatal("unindexed store reopened with indexes")
	}
}

// TestBulkLoadMatchesIncremental: bulk load and one-at-a-time insert
// over the same duplicate-heavy item set must agree on Len, Verify, and
// the per-key value multisets — at several worker counts, since the
// bulk layout must be worker-count independent.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	zipf := rand.NewZipf(rng, 1.2, 3, 300)
	const n = 5000
	items := make([]KV, n)
	for x := range items {
		items[x] = KV{Key: zipf.Uint64(), Val: Ptr(8 * (x + 8))}
	}

	ref := map[uint64]map[Ptr]int{}
	_, inc := newTreeSeg(t, indexNodeBytes)
	for _, kv := range items {
		if err := inc.Insert(kv.Key, kv.Val); err != nil {
			t.Fatal(err)
		}
		if ref[kv.Key] == nil {
			ref[kv.Key] = map[Ptr]int{}
		}
		ref[kv.Key][kv.Val]++
	}

	var heads []Ptr
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		seg, err := Create(filepath.Join(t.TempDir(), fmt.Sprintf("blk%d", workers)), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		p := exec.NewPool(workers)
		in := append([]KV(nil), items...)
		tree, err := BulkLoadBTree(context.Background(), p, seg, indexNodeBytes, in)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		heads = append(heads, tree.Head())
		if tree.Len() != inc.Len() {
			t.Fatalf("w=%d: Len %d != incremental %d", workers, tree.Len(), inc.Len())
		}
		if err := tree.Verify(); err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		for k, want := range ref {
			got := map[Ptr]int{}
			tree.Postings(k, func(v Ptr) bool { got[v]++; return true })
			if len(got) != len(want) {
				t.Fatalf("w=%d key %d: %d distinct values, want %d", workers, k, len(got), len(want))
			}
			for v, c := range want {
				if got[v] != c {
					t.Fatalf("w=%d key %d val %d: count %d, want %d", workers, k, v, got[v], c)
				}
			}
		}
		// Ordered scan agrees with the incremental tree's key sequence.
		var bk, ik []uint64
		tree.Range(0, 1<<62, func(k uint64, v Ptr) bool { bk = append(bk, k); return true })
		inc.Range(0, 1<<62, func(k uint64, v Ptr) bool { ik = append(ik, k); return true })
		if len(bk) != len(ik) {
			t.Fatalf("w=%d: scan lengths %d vs %d", workers, len(bk), len(ik))
		}
		for x := range bk {
			if bk[x] != ik[x] {
				t.Fatalf("w=%d: scan diverges at %d: %d vs %d", workers, x, bk[x], ik[x])
			}
		}
	}
	// The layout is deterministic: every worker count produced the same
	// head (same Alloc sequence ⇒ same offsets in fresh segments).
	for _, h := range heads[1:] {
		if h != heads[0] {
			t.Errorf("bulk-load heads differ across worker counts: %v", heads)
		}
	}
}

// TestBulkLoadEmptyAndSmall: edge shapes — empty input, one item, all
// duplicates of one key.
func TestBulkLoadEmptyAndSmall(t *testing.T) {
	seg, err := Create(filepath.Join(t.TempDir(), "blk"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	empty, err := BulkLoadBTree(context.Background(), nil, seg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty Len = %d", empty.Len())
	}
	if err := empty.Verify(); err != nil {
		t.Fatal(err)
	}
	one, err := BulkLoadBTree(context.Background(), nil, seg, 0, []KV{{Key: 9, Val: 72}})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := one.Get(9); !ok || v != 72 {
		t.Fatalf("Get(9) = %d,%v", v, ok)
	}
	dup := make([]KV, 100)
	for x := range dup {
		dup[x] = KV{Key: 5, Val: Ptr(8 * (x + 8))}
	}
	all, err := BulkLoadBTree(context.Background(), nil, seg, 0, dup)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 100 {
		t.Fatalf("Len = %d", all.Len())
	}
	if err := all.Verify(); err != nil {
		t.Fatal(err)
	}
	n := 0
	all.Postings(5, func(Ptr) bool { n++; return true })
	if n != 100 {
		t.Fatalf("Postings visited %d", n)
	}
}

// TestIndexMergeMatchesOtherKernels runs all six operators over one
// indexed store and asserts a single identical JoinStats — index paths
// and table paths are interchangeable plans.
func TestIndexJoinMatchesOtherKernels(t *testing.T) {
	db := indexedDB(t, makeDB(t, 3000))
	want := db.ExpectedStats()
	for _, alg := range []join.Algorithm{
		join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash,
		join.IndexNL, join.IndexMerge,
	} {
		got, err := db.Run(JoinRequest{Algorithm: alg, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got != want {
			t.Errorf("%v: stats %+v, want %+v", alg, got, want)
		}
	}
}
