package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"testing"
	"time"

	"mmjoin/internal/join"
	"mmjoin/internal/mstore"
)

// The mstore panel measures the real (wall-clock) joins over a mapped
// database at several morsel-pool sizes and writes BENCH_mstore.json.
// Alongside the timings it checks the determinism contract: JoinStats
// (Pairs and Signature) must be bit-identical at every worker count.
//
// The workers axis is {1, D, GOMAXPROCS}: 1 is the sequential floor, D
// is what the paper's thread-per-partition structure would use, and
// GOMAXPROCS is the morsel pool's default. The speedup of GOMAXPROCS
// over D is the payoff of decoupling CPU parallelism from data layout —
// bounded by the host's CPUs, which is why the report embeds them.

type mstorePoint struct {
	Workers int   `json:"workers"`
	Runs    int   `json:"runs"`
	BestNs  int64 `json:"best_ns"`
}

type mstoreAlgo struct {
	Algorithm string `json:"algorithm"`
	Pairs     int64  `json:"pairs"`
	// Signature is identical at every workers value (verified).
	Signature string        `json:"signature"`
	Points    []mstorePoint `json:"points"`
	// SpeedupMaxVsD is best_ns at workers=D over best_ns at
	// workers=GOMAXPROCS (>1 means the pool beats thread-per-partition).
	SpeedupMaxVsD float64 `json:"speedup_gomaxprocs_vs_d"`
}

type mstoreReport struct {
	Schema     string       `json:"schema"`
	Host       hostInfo     `json:"host"`
	Objects    int          `json:"objects"`
	D          int          `json:"d"`
	ObjSize    int          `json:"obj_size"`
	MRproc     int64        `json:"mrproc_bytes"`
	Note       string       `json:"note"`
	Algorithms []mstoreAlgo `json:"algorithms"`
	// SkewPanel measures the grant-bounded probes under one hot key
	// owning half of R: an undersized grant vs the unbounded baseline.
	SkewPanel *skewPanel `json:"zipf_skew,omitempty"`
	// Kernels measures the probe-stage kernels in isolation (ns-per-pair,
	// allocs-per-pair, best-effort cache counters) and the radix
	// partitioning passes — the regression surface the CI smoke gates on.
	Kernels *kernelsPanel `json:"kernels,omitempty"`
	// Shard measures the scatter-gather router against the single store
	// it was split from (see cmd/bench/shard.go).
	Shard *shardPanel `json:"shard,omitempty"`
	// Index measures the index-accelerated join paths against the four
	// kernels on freshly indexed databases, with bulk-load amortization
	// and the planner's pick per ratio (see cmd/bench/index.go).
	Index *indexPanel `json:"index,omitempty"`
}

// perfCounts is one best-effort hardware-counter measurement. Source
// names the facility that produced the numbers ("perf_event_open",
// "getrusage-minflt", "unavailable"); counters are only comparable
// within one source, which is why it is recorded alongside them.
type perfCounts struct {
	Source      string
	CacheRefs   int64
	CacheMisses int64
}

// kernelProbePoint is one probe-kernel configuration measured over the
// same materialized bucket set: the legacy per-bucket Go map, or the
// flat arena-backed table at one gather-batch width.
type kernelProbePoint struct {
	Kernel        string  `json:"kernel"` // "map" or "flat"
	Batch         int     `json:"batch,omitempty"`
	Runs          int     `json:"runs"`
	BestNs        int64   `json:"best_ns"`
	NsPerPair     float64 `json:"ns_per_pair"`
	AllocsPerPair float64 `json:"allocs_per_pair"`
	// Per-pair cache counters, present only when the host exposes a
	// hardware source (see counter_source).
	CacheRefsPerPair   float64 `json:"cache_refs_per_pair,omitempty"`
	CacheMissesPerPair float64 `json:"cache_misses_per_pair,omitempty"`
}

// kernelRadixPoint times one full single-threaded Grace join at a K
// large enough to need multi-pass radix partitioning.
type kernelRadixPoint struct {
	RadixBits int   `json:"radix_bits"`
	K         int   `json:"k"`
	Passes    int64 `json:"passes"`
	Runs      int   `json:"runs"`
	BestNs    int64 `json:"best_ns"`
}

type kernelsPanel struct {
	Objects       int    `json:"objects"`
	D             int    `json:"d"`
	Buckets       int    `json:"buckets"`
	PairsPerPass  int64  `json:"pairs_per_pass"`
	CounterSource string `json:"counter_source"`
	// Probe isolates the probe stage on identical bucket files.
	Probe []kernelProbePoint `json:"probe"`
	// SpeedupFlatVsMap is map ns-per-pair over the best flat point.
	SpeedupFlatVsMap float64 `json:"speedup_flat_vs_map"`
	// Radix times the whole join while varying the per-pass fan-out.
	Radix []kernelRadixPoint `json:"radix"`
}

// skewRun is one skewed join under one memory regime.
type skewRun struct {
	Algorithm      string `json:"algorithm"`
	GrantBytes     int64  `json:"grant_bytes"` // -1: unbounded
	BestNs         int64  `json:"best_ns"`
	Restages       int64  `json:"restages"`
	RestagedRefs   int64  `json:"restaged_refs"`
	StreamProbes   int64  `json:"stream_probes"`
	PeakTableBytes int64  `json:"peak_table_bytes"`
	SignatureMatch bool   `json:"signature_match"` // vs the unbounded baseline
}

type skewPanel struct {
	HotFraction float64   `json:"hot_fraction"` // share of R on the one hot key
	GrantBytes  int64     `json:"grant_bytes"`  // the undersized grant
	Runs        []skewRun `json:"runs"`
}

// runMstorePanel creates a throwaway database and times NL/SM/Grace
// across the workers axis, writing the JSON baseline to out.
func runMstorePanel(objects, d, runs, kernelObjects int, out string) error {
	dir, err := os.MkdirTemp("", "mmjoin-bench-mstore")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := mstore.CreateDB(filepath.Join(dir, "db"), d, objects, objects, 64, 42)
	if err != nil {
		return err
	}
	defer db.Close()
	want := db.ExpectedStats()

	workerAxis := []int{1, d, runtime.GOMAXPROCS(0)}
	slices.Sort(workerAxis)
	workerAxis = slices.Compact(workerAxis)

	const mrproc = 1 << 20
	r := mstoreReport{
		Schema:  "mmjoin-bench-mstore/v1",
		Host:    currentHost(),
		Objects: objects, D: d, ObjSize: 64, MRproc: mrproc,
		Note: fmt.Sprintf("wall-clock best of %d; speedup is bounded by the host CPUs "+
			"(num_cpu=%d) — on a single-CPU host the workers curve is flat by construction",
			runs, runtime.NumCPU()),
	}

	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		a := mstoreAlgo{
			Algorithm: alg.String(),
			Pairs:     want.Pairs,
			Signature: fmt.Sprintf("%016x", want.Signature),
		}
		bestAt := map[int]int64{}
		for _, w := range workerAxis {
			best := int64(1<<63 - 1)
			for run := 0; run < runs; run++ {
				tmp := filepath.Join(dir, fmt.Sprintf("tmp-%s-%d-%d", alg, w, run))
				start := time.Now()
				st, err := db.Run(mstore.JoinRequest{
					Algorithm: alg, MRproc: mrproc, Workers: w, TmpDir: tmp,
				})
				el := time.Since(start).Nanoseconds()
				if err != nil {
					return fmt.Errorf("%v workers=%d: %w", alg, w, err)
				}
				if st != want {
					return fmt.Errorf("%v workers=%d: stats %+v, want %+v (determinism violated)", alg, w, st, want)
				}
				best = min(best, el)
			}
			bestAt[w] = best
			a.Points = append(a.Points, mstorePoint{Workers: w, Runs: runs, BestNs: best})
		}
		a.SpeedupMaxVsD = round2(float64(bestAt[d]) / float64(bestAt[runtime.GOMAXPROCS(0)]))
		r.Algorithms = append(r.Algorithms, a)
		fmt.Printf("mstore %-12s: ", alg)
		for _, pt := range a.Points {
			fmt.Printf("w=%d %.0fms  ", pt.Workers, time.Duration(pt.BestNs).Seconds()*1000)
		}
		fmt.Printf("speedup(GOMAXPROCS vs D) %.2fx\n", a.SpeedupMaxVsD)
	}

	sp, err := runSkewPanel(db, dir, runs)
	if err != nil {
		return err
	}
	r.SkewPanel = sp

	kp, err := runKernelsPanel(kernelObjects, d, runs)
	if err != nil {
		return err
	}
	r.Kernels = kp

	ip, err := runIndexPanel(d, runs)
	if err != nil {
		return err
	}
	r.Index = ip

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("mstore baseline written to %s\n", out)
	return nil
}

// runSkewPanel rewrites the bench database into the hot-key worst case
// (one S object at the end of partition 0 owns half of R, beyond any
// hybrid resident prefix) and times Grace/hybrid-hash under a
// deliberately undersized grant against the unbounded baseline. The
// panel records the adaptation telemetry — restages, streamed probes,
// and the measured peak of counted probe-table bytes, which must stay
// within the grant.
func runSkewPanel(db *mstore.DB, dir string, runs int) (*skewPanel, error) {
	hotIdx := db.S[0].Count() - 1
	hot := mstore.SPtr{Part: 0, Off: db.S[0].PtrAt(hotIdx)}
	n, u := 0, 0
	for _, ri := range db.R {
		for x := 0; x < ri.Count(); x++ {
			if n%2 == 0 {
				mstore.EncodeSPtr(ri.Object(x), hot)
			} else {
				part := u % db.D
				rel := db.S[part]
				mstore.EncodeSPtr(ri.Object(x), mstore.SPtr{
					Part: uint32(part), Off: rel.PtrAt(u % rel.Count()),
				})
				u++
			}
			n++
		}
	}
	want := db.ExpectedStats()

	const grant = 64 << 10
	panel := &skewPanel{HotFraction: 0.5, GrantBytes: grant}
	for _, alg := range []join.Algorithm{join.Grace, join.HybridHash} {
		for _, g := range []int64{-1, grant} {
			best := int64(1<<63 - 1)
			var tel *mstore.JoinTelemetry
			match := true
			for run := 0; run < runs; run++ {
				t := &mstore.JoinTelemetry{}
				tmp := filepath.Join(dir, fmt.Sprintf("skew-%s-%d-%d", alg, g, run))
				start := time.Now()
				st, err := db.Run(mstore.JoinRequest{
					Algorithm: alg, MRproc: 1 << 20, K: 8,
					MemGrant: g, Telemetry: t, TmpDir: tmp,
				})
				el := time.Since(start).Nanoseconds()
				if err != nil {
					return nil, fmt.Errorf("skew %v grant=%d: %w", alg, g, err)
				}
				match = match && st == want
				if el < best {
					best, tel = el, t
				}
			}
			run := skewRun{
				Algorithm: alg.String(), GrantBytes: g, BestNs: best,
				Restages:       tel.Restages.Load(),
				RestagedRefs:   tel.RestagedRefs.Load(),
				StreamProbes:   tel.StreamProbes.Load(),
				PeakTableBytes: tel.PeakTableBytes.Load(),
				SignatureMatch: match,
			}
			if !match {
				return nil, fmt.Errorf("skew %v grant=%d: signature diverged from baseline", alg, g)
			}
			if g > 0 && run.PeakTableBytes > g {
				return nil, fmt.Errorf("skew %v: peak table bytes %d exceed grant %d", alg, run.PeakTableBytes, g)
			}
			panel.Runs = append(panel.Runs, run)
			fmt.Printf("mstore skew %-12s grant=%-8d: %.0fms restages=%d streams=%d peak=%dB\n",
				alg, g, time.Duration(best).Seconds()*1000, run.Restages, run.StreamProbes, run.PeakTableBytes)
		}
	}
	return panel, nil
}

// runKernelsPanel measures the probe-stage kernels in isolation at the
// conformance panel size: Grace buckets are materialized once, then
// probed repeatedly through the legacy per-bucket Go map and through
// the flat arena-backed table at several gather-batch widths — the
// single-threaded ns-per-pair the rewrite is gated on. A second axis
// times the whole Grace join at a K deep enough to need multi-pass
// radix partitioning, varying the per-pass fan-out.
func runKernelsPanel(objects, d, runs int) (*kernelsPanel, error) {
	dir, err := os.MkdirTemp("", "mmjoin-bench-kernels")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := mstore.CreateDB(filepath.Join(dir, "db"), d, objects, objects, 64, 42)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	want := db.ExpectedStats()

	const buckets = 64
	bs, err := db.BuildGraceBuckets(dir, buckets)
	if err != nil {
		return nil, err
	}
	defer bs.Close()

	panel := &kernelsPanel{
		Objects: objects, D: d, Buckets: bs.Buckets(), PairsPerPass: want.Pairs,
	}

	type probeCfg struct {
		kernel string
		batch  int
	}
	cfgs := []probeCfg{{"map", 0}, {"flat", 1}, {"flat", 16}, {"flat", 64}}
	probeOnce := func(c probeCfg) mstore.JoinStats {
		if c.kernel == "map" {
			return bs.ProbeMap()
		}
		return bs.ProbeFlat(c.batch)
	}
	pairs := float64(want.Pairs)
	var mapNsPair float64
	bestFlat := math.Inf(1)
	for _, c := range cfgs {
		if st := probeOnce(c); st != want { // warm the arena, check once
			return nil, fmt.Errorf("kernels %s/%d: stats %+v, want %+v", c.kernel, c.batch, st, want)
		}
		best := int64(1<<63 - 1)
		for run := 0; run < runs; run++ {
			start := time.Now()
			st := probeOnce(c)
			el := time.Since(start).Nanoseconds()
			if st != want {
				return nil, fmt.Errorf("kernels %s/%d: stats diverged mid-measurement", c.kernel, c.batch)
			}
			best = min(best, el)
		}
		allocs := testing.AllocsPerRun(1, func() { probeOnce(c) })
		counts := measureCounters(func() { probeOnce(c) })
		panel.CounterSource = counts.Source
		pt := kernelProbePoint{
			Kernel: c.kernel, Batch: c.batch, Runs: runs, BestNs: best,
			NsPerPair:     round2(float64(best) / pairs),
			AllocsPerPair: allocs / pairs,
		}
		if counts.Source == "perf_event_open" {
			pt.CacheRefsPerPair = round2(float64(counts.CacheRefs) / pairs)
			pt.CacheMissesPerPair = round2(float64(counts.CacheMisses) / pairs)
		}
		if c.kernel == "map" {
			mapNsPair = pt.NsPerPair
		} else {
			bestFlat = math.Min(bestFlat, pt.NsPerPair)
		}
		panel.Probe = append(panel.Probe, pt)
		fmt.Printf("mstore kernels probe %-4s batch=%-2d: %6.2f ns/pair  %8.5f allocs/pair  (%s)\n",
			c.kernel, c.batch, pt.NsPerPair, pt.AllocsPerPair, counts.Source)
	}
	if mapNsPair > 0 && bestFlat > 0 && !math.IsInf(bestFlat, 1) {
		panel.SpeedupFlatVsMap = round2(mapNsPair / bestFlat)
	}
	fmt.Printf("mstore kernels probe speedup (flat vs map): %.2fx\n", panel.SpeedupFlatVsMap)

	// Radix axis: K=600 needs 3 passes at 4 bits, 2 at the default 8,
	// 1 at 12 — the executable counterpart of the model's radix term.
	const radixK = 600
	for _, bits := range []int{4, 8, 12} {
		best := int64(1<<63 - 1)
		var passes int64
		for run := 0; run < runs; run++ {
			tel := &mstore.JoinTelemetry{}
			tmp := filepath.Join(dir, fmt.Sprintf("radix-%d-%d", bits, run))
			start := time.Now()
			st, err := db.Run(mstore.JoinRequest{
				Algorithm: join.Grace, MRproc: 1 << 20, K: radixK,
				RadixBits: bits, Workers: 1, Telemetry: tel, TmpDir: tmp,
			})
			el := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("kernels radix bits=%d: %w", bits, err)
			}
			if st != want {
				return nil, fmt.Errorf("kernels radix bits=%d: stats %+v, want %+v", bits, st, want)
			}
			best = min(best, el)
			passes = tel.RadixPasses.Load()
		}
		panel.Radix = append(panel.Radix, kernelRadixPoint{
			RadixBits: bits, K: radixK, Passes: passes, Runs: runs, BestNs: best,
		})
		fmt.Printf("mstore kernels radix bits=%-2d: %d passes  %.0fms\n",
			bits, passes, time.Duration(best).Seconds()*1000)
	}
	return panel, nil
}

// checkKernelsBaseline compares freshly measured probe points against
// the checked-in baseline report, failing on a >20% ns-per-pair
// regression in any configuration present in both — the CI smoke gate.
func checkKernelsBaseline(path string, cur *kernelsPanel) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old mstoreReport
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if old.Kernels == nil {
		return fmt.Errorf("baseline %s has no kernels panel", path)
	}
	base := map[string]float64{}
	for _, pt := range old.Kernels.Probe {
		base[fmt.Sprintf("%s/%d", pt.Kernel, pt.Batch)] = pt.NsPerPair
	}
	for _, pt := range cur.Probe {
		b, ok := base[fmt.Sprintf("%s/%d", pt.Kernel, pt.Batch)]
		if !ok || b <= 0 {
			continue
		}
		if pt.NsPerPair > 1.2*b {
			return fmt.Errorf("kernel %s batch=%d regressed: %.2f ns/pair vs baseline %.2f (>20%%)",
				pt.Kernel, pt.Batch, pt.NsPerPair, b)
		}
	}
	return nil
}
