package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"mmjoin/internal/mstore"
)

// Split rewrites one mapped database into len(outDirs) shard databases
// whose union is the same logical relation:
//
//   - S is replicated: every shard gets a byte-identical copy of every
//     S partition, so each R object's stored pointer resolves locally
//     (the replicated-build-side layout — a scatter-gather join needs
//     no cross-shard shuffle).
//   - R is partitioned: within each source partition, objects go to
//     shards round-robin, preserving the per-partition key distribution
//     on every shard and balancing |R| to within one object.
//
// Pointers are re-encoded through (partition, index) rather than copied
// as raw offsets, so the split is correct even if replica segment
// layout ever diverges from the source's. The merged scatter-gather
// join over the shards is bit-identical (Pairs and Signature) to the
// single-store join over the source, which is the invariant the Shard
// conformance tests pin.
//
// Split returns a ready shard map (ids "shard-0"… in outDirs order)
// that WriteMap can persist for `mmdb serve -shard-map`.
func Split(srcDir string, srcD int, outDirs []string) (*Map, error) {
	if len(outDirs) < 1 {
		return nil, fmt.Errorf("shard: split needs at least one output dir")
	}
	src, err := mstore.OpenDB(srcDir, srcD)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	n := len(outDirs)
	m := &Map{Schema: MapSchema}
	for k, out := range outDirs {
		if err := splitOne(src, out, k, n); err != nil {
			return nil, fmt.Errorf("shard %d (%s): %w", k, out, err)
		}
		m.Shards = append(m.Shards, Entry{ID: fmt.Sprintf("shard-%d", k), Dir: out, D: srcD})
	}
	return m, nil
}

// splitOne materializes shard k of n under out.
func splitOne(src *mstore.DB, out string, k, n int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	objSize := src.ObjSize
	var open []*mstore.Relation
	closeAll := func() {
		for _, rel := range open {
			rel.Segment().Close()
		}
	}
	create := func(path string, count int) (*mstore.Relation, error) {
		cap := count
		if cap < 1 {
			cap = 1
		}
		seg, err := mstore.Create(path, int64(objSize)*int64(cap)+4096)
		if err != nil {
			return nil, err
		}
		rel, err := mstore.CreateRelation(seg, objSize, cap)
		if err != nil {
			seg.Close()
			return nil, err
		}
		open = append(open, rel)
		return rel, nil
	}

	// S replicas first, so R pointers can be re-encoded against them.
	newS := make([]*mstore.Relation, src.D)
	for j := 0; j < src.D; j++ {
		rel, err := create(filepath.Join(out, fmt.Sprintf("S%d.seg", j)), src.S[j].Count())
		if err != nil {
			closeAll()
			return err
		}
		for x := 0; x < src.S[j].Count(); x++ {
			if _, err := rel.Append(src.S[j].Object(x)); err != nil {
				closeAll()
				return err
			}
		}
		newS[j] = rel
	}

	obj := make([]byte, objSize)
	for i := 0; i < src.D; i++ {
		srcR := src.R[i]
		count := 0
		for x := 0; x < srcR.Count(); x++ {
			if x%n == k {
				count++
			}
		}
		rel, err := create(filepath.Join(out, fmt.Sprintf("R%d.seg", i)), count)
		if err != nil {
			closeAll()
			return err
		}
		for x := 0; x < srcR.Count(); x++ {
			if x%n != k {
				continue
			}
			copy(obj, srcR.Object(x))
			ptr := mstore.DecodeSPtr(obj)
			idx := src.S[ptr.Part].IndexOf(ptr.Off)
			mstore.EncodeSPtr(obj, mstore.SPtr{Part: ptr.Part, Off: newS[ptr.Part].PtrAt(idx)})
			if _, err := rel.Append(obj); err != nil {
				closeAll()
				return err
			}
		}
	}
	closeAll()
	return nil
}
