// Package sweep is the reusable sweep layer behind the paper's
// evaluation experiments: the Fig. 5 memory sweeps (model vs simulated
// experiment per panel), the §5.1 contention ablation, the §9 speedup
// and scaleup studies, and the reference-distribution extension.
//
// cmd/sweep is a thin printer over this package, and
// internal/conformance re-runs scaled-down panels through it to assert
// the paper's qualitative claims as code, so the same sweep procedure
// backs the CLI, the benchmarks, and the conformance suite.
package sweep

import (
	"fmt"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// Fig5Fractions returns the memory fractions of the paper's Fig. 5 panel
// for the given algorithm.
func Fig5Fractions(alg join.Algorithm) []float64 {
	switch alg {
	case join.NestedLoops:
		return []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70}
	case join.SortMerge:
		return []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045, 0.050}
	case join.HybridHash:
		return []float64{0.008, 0.010, 0.015, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080}
	case join.Grace:
		// The paper's panel spans 0.02–0.08; lower fractions are
		// included because this machine's LRU pager thrashes later than
		// Dynix's simple replacement did, so the knee of Fig. 5(c)
		// appears below 0.02 here.
		return []float64{0.008, 0.010, 0.015, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080}
	}
	return nil
}

// Fig5Options tunes one panel run. The zero value selects the paper's
// fractions with no per-point instrumentation.
type Fig5Options struct {
	// Fractions overrides the panel's memory fractions (nil selects
	// Fig5Fractions for the algorithm).
	Fractions []float64
	// Instrument, when non-nil, is called before each point and returns
	// the telemetry registry to attach to that point's run (nil attaches
	// none).
	Instrument func(frac float64) *metrics.Registry
	// OnPoint, when non-nil, is called after each point with its
	// comparison and the registry Instrument returned (nil without
	// Instrument). Returning an error aborts the sweep.
	OnPoint func(c core.Comparison, reg *metrics.Registry) error
}

// Fig5 runs one Fig. 5 panel: Compare (simulate + predict) at every
// fraction of the panel, with optional per-point telemetry.
func Fig5(e *core.Experiment, alg join.Algorithm, opts Fig5Options) ([]core.Comparison, error) {
	fracs := opts.Fractions
	if fracs == nil {
		fracs = Fig5Fractions(alg)
	}
	out := make([]core.Comparison, 0, len(fracs))
	for _, f := range fracs {
		prm := e.ParamsForFraction(f)
		var reg *metrics.Registry
		if opts.Instrument != nil {
			reg = opts.Instrument(f)
			prm.Metrics = reg
		}
		c, err := e.Compare(alg, prm)
		if err != nil {
			return nil, fmt.Errorf("sweep: %v at %.3f: %w", alg, f, err)
		}
		if opts.OnPoint != nil {
			if err := opts.OnPoint(*c, reg); err != nil {
				return nil, err
			}
		}
		out = append(out, *c)
	}
	return out, nil
}

// Memory runs Compare across the given memory fractions (Fig. 5's
// procedure without instrumentation). A nil fracs selects the paper's
// panel for the algorithm.
func Memory(e *core.Experiment, alg join.Algorithm, fracs []float64) ([]core.Comparison, error) {
	return Fig5(e, alg, Fig5Options{Fractions: fracs})
}

// ContentionVariant is one arm of the §5.1 staggering/synchronization
// ablation.
type ContentionVariant struct {
	Name               string
	Stagger, SyncPhase bool
}

// ContentionVariants returns the ablation's arms in presentation order;
// the first is the paper's configuration (the comparison baseline).
func ContentionVariants() []ContentionVariant {
	return []ContentionVariant{
		{Name: "staggered, unsynchronized (paper)", Stagger: true},
		{Name: "staggered, synchronized", Stagger: true, SyncPhase: true},
		{Name: "naive order, unsynchronized"},
	}
}

// ContentionPoint is one measured arm of the contention ablation.
type ContentionPoint struct {
	ContentionVariant
	Elapsed sim.Time
}

// Contention runs the §5.1 ablation for nested loops at the given memory
// fraction: pass-1 phase staggering on/off and per-phase synchronization
// on/off. The first returned point is the paper's variant.
func Contention(e *core.Experiment, frac float64) ([]ContentionPoint, error) {
	out := make([]ContentionPoint, 0, 3)
	for _, v := range ContentionVariants() {
		prm := e.ParamsForFraction(frac)
		prm.Stagger = v.Stagger
		prm.SyncPhases = v.SyncPhase
		res, err := e.Measure(join.NestedLoops, prm)
		if err != nil {
			return nil, fmt.Errorf("sweep: contention %q: %w", v.Name, err)
		}
		out = append(out, ContentionPoint{ContentionVariant: v, Elapsed: res.Elapsed})
	}
	return out, nil
}

// Speedup runs the algorithm at several degrees of parallelism D with the
// problem size fixed, returning elapsed times keyed by D — the paper's
// planned speedup experiment (§9).
func Speedup(base machine.Config, spec relation.Spec, alg join.Algorithm,
	ds []int, memFrac float64) (map[int]sim.Time, error) {
	out := make(map[int]sim.Time, len(ds))
	for _, d := range ds {
		cfg := base
		cfg.D = d
		sp := spec
		sp.D = d
		w, err := relation.Generate(sp)
		if err != nil {
			return nil, err
		}
		mem := int64(memFrac * float64(int64(sp.NR)*int64(sp.RSize)))
		res, err := join.Run(alg, cfg, join.Params{Workload: w, MRproc: mem, Stagger: true})
		if err != nil {
			return nil, err
		}
		out[d] = res.Elapsed
	}
	return out, nil
}

// Scaleup grows the problem with D (NR = NS = perPartition·D) and returns
// elapsed times keyed by D; flat times mean perfect scaleup.
func Scaleup(base machine.Config, spec relation.Spec, alg join.Algorithm,
	ds []int, perPartition int, memFrac float64) (map[int]sim.Time, error) {
	out := make(map[int]sim.Time, len(ds))
	for _, d := range ds {
		cfg := base
		cfg.D = d
		sp := spec
		sp.D = d
		sp.NR = perPartition * d
		sp.NS = perPartition * d
		w, err := relation.Generate(sp)
		if err != nil {
			return nil, err
		}
		mem := int64(memFrac * float64(int64(sp.NR)*int64(sp.RSize)))
		res, err := join.Run(alg, cfg, join.Params{Workload: w, MRproc: mem, Stagger: true})
		if err != nil {
			return nil, err
		}
		out[d] = res.Elapsed
	}
	return out, nil
}

// DistPoint is one row of the reference-distribution study (§9 future
// work: "changing the nature of the joining relations").
type DistPoint struct {
	Dist     relation.Distribution
	Skew     float64
	Measured map[join.Algorithm]sim.Time
}

// Dist runs every algorithm across reference distributions at the given
// memory fraction, reporting measured times and workload skew.
func Dist(cfg machine.Config, base relation.Spec, algs []join.Algorithm,
	memFrac float64) ([]DistPoint, error) {
	specs := []relation.Spec{base}
	zipf := base
	zipf.Dist = relation.Zipf
	zipf.ZipfTheta = 1.5
	local := base
	local.Dist = relation.Local
	local.LocalFrac = 0.8
	hot := base
	hot.Dist = relation.HotPartition
	hot.HotFrac = 0.4
	specs = append(specs, zipf, local, hot)

	out := make([]DistPoint, 0, len(specs))
	for _, spec := range specs {
		w, err := relation.Generate(spec)
		if err != nil {
			return nil, err
		}
		mem := int64(memFrac * float64(int64(spec.NR)*int64(spec.RSize)))
		pt := DistPoint{Dist: spec.Dist, Skew: w.Skew(), Measured: map[join.Algorithm]sim.Time{}}
		wantSig, _ := w.JoinSignature()
		for _, alg := range algs {
			res, err := join.Run(alg, cfg, join.Params{Workload: w, MRproc: mem, Stagger: true})
			if err != nil {
				return nil, err
			}
			if res.Signature != wantSig {
				return nil, fmt.Errorf("sweep: %v computed a wrong join under %v", alg, spec.Dist)
			}
			pt.Measured[alg] = res.Elapsed
		}
		out = append(out, pt)
	}
	return out, nil
}
