package mstore

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func buildRTreeFixture(t *testing.T, n, fanout int, seed int64) (*Segment, *RTree, []SpatialEntry) {
	t.Helper()
	s, err := Create(filepath.Join(t.TempDir(), "rt"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	rng := rand.New(rand.NewSource(seed))
	entries := make([]SpatialEntry, n)
	for i := range entries {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		entries[i] = SpatialEntry{
			Rect: Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*10, MaxY: y + rng.Float64()*10},
			Item: Ptr(i + 1),
		}
	}
	ref := append([]SpatialEntry(nil), entries...)
	tree, err := BuildRTree(s, entries, fanout)
	if err != nil {
		t.Fatal(err)
	}
	return s, tree, ref
}

func TestRTreeBuildAndVerify(t *testing.T) {
	_, tree, _ := buildRTreeFixture(t, 1000, 16, 1)
	if tree.Len() != 1000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.Height() < 2 {
		t.Errorf("Height = %d, want >= 2 for 1000 entries at fanout 16", tree.Height())
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeSearchMatchesLinearScan(t *testing.T) {
	_, tree, ref := buildRTreeFixture(t, 800, 8, 2)
	queries := []Rect{
		{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200},
		{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		{MinX: 500, MinY: 500, MaxX: 500, MaxY: 500}, // point query
		{MinX: -10, MinY: -10, MaxX: -5, MaxY: -5},   // empty region
	}
	for _, q := range queries {
		want := map[Ptr]bool{}
		for _, e := range ref {
			if e.Rect.Intersects(q) {
				want[e.Item] = true
			}
		}
		got := map[Ptr]bool{}
		tree.Search(q, func(e SpatialEntry) bool {
			if got[e.Item] {
				t.Fatalf("duplicate result %d", e.Item)
			}
			got[e.Item] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %+v: %d results, want %d", q, len(got), len(want))
		}
		for item := range want {
			if !got[item] {
				t.Fatalf("query %+v: missing item %d", q, item)
			}
		}
	}
}

func TestRTreeSearchEarlyStop(t *testing.T) {
	_, tree, _ := buildRTreeFixture(t, 500, 8, 3)
	count := 0
	tree.Search(Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, func(e SpatialEntry) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestRTreeEmptyAndErrors(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "rt"), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Before anything is built, headerSize holds zeroes — not a tree.
	if _, err := OpenRTree(s, headerSize); err == nil {
		t.Error("OpenRTree on junk succeeded")
	}
	tree, err := BuildRTree(s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d", tree.Len())
	}
	tree.Search(Rect{MaxX: 1, MaxY: 1}, func(SpatialEntry) bool {
		t.Error("empty tree produced a result")
		return false
	})
	if err := tree.Verify(); err != nil {
		t.Error(err)
	}
	if _, err := BuildRTree(s, nil, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	bad := []SpatialEntry{{Rect: Rect{MinX: 5, MaxX: 1, MinY: 0, MaxY: 1}}}
	if _, err := BuildRTree(s, bad, 8); err == nil {
		t.Error("invalid rectangle accepted")
	}
}

func TestRTreePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rt")
	s, err := Create(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	entries := make([]SpatialEntry, 300)
	for i := range entries {
		x, y := rng.Float64()*100, rng.Float64()*100
		entries[i] = SpatialEntry{Rect: Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1}, Item: Ptr(i + 1)}
	}
	tree, err := BuildRTree(s, entries, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(tree.Head())
	q := Rect{MinX: 20, MinY: 20, MaxX: 40, MaxY: 40}
	want := 0
	tree.Search(q, func(SpatialEntry) bool { want++; return true })
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	tree2, err := OpenRTree(s2, s2.Root())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	tree2.Search(q, func(SpatialEntry) bool { got++; return true })
	if got != want || want == 0 {
		t.Errorf("reopened search found %d, want %d (>0)", got, want)
	}
	if err := tree2.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random data and random queries, the R-tree returns
// exactly the linear-scan result set.
func TestQuickRTreeSearchComplete(t *testing.T) {
	f := func(seed int64, rawN uint8, rawQ [4]uint8) bool {
		n := int(rawN)%300 + 1
		s, err := Create(filepath.Join(t.TempDir(), "rt"), 1<<20)
		if err != nil {
			return false
		}
		defer s.Close()
		rng := rand.New(rand.NewSource(seed))
		entries := make([]SpatialEntry, n)
		for i := range entries {
			x, y := rng.Float64()*256, rng.Float64()*256
			entries[i] = SpatialEntry{
				Rect: Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20},
				Item: Ptr(i + 1),
			}
		}
		ref := append([]SpatialEntry(nil), entries...)
		tree, err := BuildRTree(s, entries, 4)
		if err != nil || tree.Verify() != nil {
			return false
		}
		q := Rect{
			MinX: float64(rawQ[0]), MinY: float64(rawQ[1]),
			MaxX: float64(rawQ[0]) + float64(rawQ[2]),
			MaxY: float64(rawQ[1]) + float64(rawQ[3]),
		}
		want := 0
		for _, e := range ref {
			if e.Rect.Intersects(q) {
				want++
			}
		}
		got := 0
		tree.Search(q, func(SpatialEntry) bool { got++; return true })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRectHelpers(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{10, 10, 20, 20} // touching corners count as intersecting
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("touching rectangles should intersect")
	}
	c := Rect{11, 11, 12, 12}
	if a.Intersects(c) {
		t.Error("disjoint rectangles intersect")
	}
	u := a.union(c)
	if u != (Rect{0, 0, 12, 12}) {
		t.Errorf("union = %+v", u)
	}
	if (Rect{5, 5, 1, 10}).Valid() {
		t.Error("degenerate rect valid")
	}
}
