package model

import (
	"math"

	"mmjoin/internal/sim"
)

// PredictTraditionalGrace evaluates the analytical model for the
// conventional value-based parallel Grace hash join — the paper's §9
// future work ("exploring the applicability of our model to traditional
// join algorithms"). The structure mirrors the pointer-based Grace
// analysis, with the extra terms a value join cannot avoid: S is read,
// hashed, exchanged across nodes, written into buckets, and re-read at
// probe time, and every bucket needs an in-memory table built on its S
// objects.
func PredictTraditionalGrace(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	// Exchange fractions: with hash partitioning by key, (1−1/D) of each
	// relation is foreign to its node.
	rLocal := q.ri / d * in.Skew
	rForeign := q.ri*in.Skew - rLocal
	sLocal := q.sj / d
	sForeign := q.sj - sLocal

	k := in.K
	if k <= 0 {
		need := in.Fuzz * q.sj * float64(in.S+c.HP) / float64(in.MRproc)
		k = int(math.Ceil(need))
	}
	if k < 1 {
		k = 1
	}
	tsize := in.TSize
	if tsize <= 0 {
		tsize = 16
	}
	p := &Prediction{K: k, TSize: tsize}

	prh := pages(q.ri*in.Skew*float64(in.R), c.B)
	psh := pages(q.sj*float64(in.S), c.B)
	prx := pages(rForeign*float64(in.R), c.B)
	psx := pages(sForeign*float64(in.S), c.B)

	// Setup: both relations opened; bucket areas and exchange areas
	// created.
	p.add("setup", sim.Time(d*(c.OpenMap.Eval(q.pri)+c.OpenMap.Eval(q.psi)+
		c.NewMap.Eval(prh+psh)+c.NewMap.Eval(prx+psx))))

	// Pass 0: sequential scans of Ri and Si; local objects written to
	// buckets (K partial pages each), foreign ones to exchange areas.
	band0 := q.pri + q.psi + prh + psh + prx + psx
	p.add("pass0 read Ri", sim.Time(q.pri*c.DTTR.Eval(band0)))
	p.add("pass0 read Si", sim.Time(q.psi*c.DTTR.Eval(band0)))
	p.add("pass0 write RH", sim.Time((pages(rLocal*float64(in.R), c.B)+float64(k))*c.DTTW.Eval(band0)))
	p.add("pass0 write SH", sim.Time((pages(sLocal*float64(in.S), c.B)+float64(k))*c.DTTW.Eval(band0)))
	p.add("pass0 write RX", sim.Time(prx*c.DTTW.Eval(band0)))
	p.add("pass0 write SX", sim.Time(psx*c.DTTW.Eval(band0)))

	// Premature bucket-page replacement: both relations' bucket sets
	// compete for frames during pass 0 (2K current pages), with the
	// exchange areas as companion fill streams.
	fill0 := 2 / (float64(c.B) / float64(in.R))
	thrash0 := GraceThrash(int(rLocal+sLocal), 2*k, int(q.frames), in.D+2, fill0)
	p.add("pass0 thrash", sim.Time(thrash0*(c.DTTR.Eval(band0)+c.DTTW.Eval(band0))))

	// Pass 1: staggered exchange — every foreign object is re-read from
	// its exchange area and written into the owner's buckets.
	band1 := prh + psh + prx + psx
	p.add("pass1 read RX", sim.Time(prx*c.DTTR.Eval(band1)))
	p.add("pass1 read SX", sim.Time(psx*c.DTTR.Eval(band1)))
	p.add("pass1 write RH", sim.Time((prx+float64(k))*c.DTTW.Eval(band1)))
	p.add("pass1 write SH", sim.Time((psx+float64(k))*c.DTTW.Eval(band1)))

	// Pass 2: per bucket, read the S bucket (building the table), then
	// the R bucket (probing).
	bandProbe := math.Max(1, (prh+psh)/float64(k)/2)
	p.add("probe io", sim.Time((prh+psh)*c.DTTR.Eval(bandProbe)))

	// CPU: both relations hashed during partitioning and again at probe;
	// all objects moved once per pass they participate in.
	p.add("hash", sim.Time(2*(q.ri*in.Skew+q.sj))*c.Hash)
	p.add("move pass0", sim.Time((q.ri*float64(in.R)+q.sj*float64(in.S))*c.MTpp))
	p.add("move pass1", sim.Time((rForeign*float64(in.R)+sForeign*float64(in.S))*c.MTpp))
	p.add("result transfer", sim.Time(q.ri*in.Skew*float64(in.R+in.S)*c.MTps))
	return p, nil
}
