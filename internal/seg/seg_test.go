package seg

import (
	"testing"
	"testing/quick"

	"mmjoin/internal/disk"
	"mmjoin/internal/sim"
)

func testRig() (*sim.Kernel, *disk.Disk, *Manager) {
	k := sim.NewKernel()
	cfg := disk.DefaultConfig()
	cfg.Blocks = 20000
	d := disk.MustNew(k, "d0", cfg)
	return k, d, NewManager(NewSystem(DefaultSetupCost()), d)
}

func runOn(k *sim.Kernel, d *disk.Disk, fn func(p *sim.Proc)) sim.Time {
	k.Spawn("t", func(p *sim.Proc) {
		fn(p)
		d.Close()
	})
	return k.Run()
}

func TestContiguousCreationOrder(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		r := m.Preexisting("Ri", 10*4096)
		s := m.Preexisting("Si", 10*4096)
		rp := m.NewMap(p, "RPi", 5*4096)
		if r.Block(0) != 0 || s.Block(0) != 10 || rp.Block(0) != 20 {
			t.Errorf("layout not contiguous: %d %d %d", r.Block(0), s.Block(0), rp.Block(0))
		}
	})
}

func TestPagesRounding(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		if got := m.Preexisting("a", 4096).Pages(); got != 1 {
			t.Errorf("4096 bytes -> %d pages", got)
		}
		if got := m.Preexisting("b", 4097).Pages(); got != 2 {
			t.Errorf("4097 bytes -> %d pages", got)
		}
		if got := m.Preexisting("c", 1).Pages(); got != 1 {
			t.Errorf("1 byte -> %d pages", got)
		}
		if got := m.Preexisting("d", 0).Pages(); got != 1 {
			t.Errorf("0 bytes -> %d pages", got)
		}
	})
}

func TestSetupCostsCharged(t *testing.T) {
	k, d, m := testRig()
	cost := m.sys.cost
	end := runOn(k, d, func(p *sim.Proc) {
		s := m.NewMap(p, "x", 100*4096)
		newDone := p.Now()
		want := cost.NewBase + 100*cost.NewPerPage
		if newDone != want {
			t.Errorf("newMap took %v, want %v", newDone, want)
		}
		m.OpenMap(p, s)
		m.DeleteMap(p, s)
	})
	want := cost.NewBase + 100*cost.NewPerPage +
		cost.OpenBase + 100*cost.OpenPerPage +
		cost.DeleteBase + 100*cost.DeletePerPage
	if end != want {
		t.Errorf("total %v, want %v", end, want)
	}
}

func TestMappingSerializedAcrossProcs(t *testing.T) {
	// Two processes creating mappings at once serialize on the system
	// lock: total time is the sum, which is why the paper's setup cost
	// carries a factor of D.
	k := sim.NewKernel()
	cfg := disk.DefaultConfig()
	cfg.Blocks = 20000
	d := disk.MustNew(k, "d0", cfg)
	sys := NewSystem(DefaultSetupCost())
	m := NewManager(sys, d)
	one := sys.cost.NewBase + 50*sys.cost.NewPerPage
	done := 0
	for i := 0; i < 2; i++ {
		k.Spawn("mapper", func(p *sim.Proc) {
			m.NewMap(p, "seg", 50*4096)
			done++
			if done == 2 {
				d.Close()
			}
		})
	}
	if end := k.Run(); end != 2*one {
		t.Errorf("parallel setup took %v, want serialized %v", end, 2*one)
	}
}

func TestZeroFillVsOnDisk(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		pre := m.Preexisting("pre", 3*4096)
		neu := m.NewMap(p, "new", 3*4096)
		if !pre.OnDisk(0) || !pre.OnDisk(2) {
			t.Error("preexisting pages should be on disk")
		}
		if neu.OnDisk(0) {
			t.Error("new mapping pages should be zero-fill")
		}
		neu.MarkOnDisk(1)
		if !neu.OnDisk(1) || neu.OnDisk(0) {
			t.Error("MarkOnDisk wrong page state")
		}
	})
}

func TestDeleteReusesExtent(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		a := m.NewMap(p, "a", 100*4096)
		b := m.NewMap(p, "b", 50*4096)
		aBase := a.Block(0)
		m.DeleteMap(p, a)
		c := m.NewMap(p, "c", 80*4096) // fits in a's hole
		if c.Block(0) != aBase {
			t.Errorf("extent not reused: c at %d, hole at %d", c.Block(0), aBase)
		}
		_ = b
	})
}

func TestDeleteCoalesces(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		a := m.NewMap(p, "a", 10*4096)
		b := m.NewMap(p, "b", 10*4096)
		c := m.NewMap(p, "c", 10*4096)
		keep := m.NewMap(p, "keep", 10*4096)
		m.DeleteMap(p, a)
		m.DeleteMap(p, c)
		m.DeleteMap(p, b) // now a+b+c coalesce into one 30-block hole
		big := m.NewMap(p, "big", 30*4096)
		if big.Block(0) != 0 {
			t.Errorf("coalesced hole not used: big at %d", big.Block(0))
		}
		_ = keep
	})
}

func TestTrailingFreeReturnsToBump(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		free0 := m.FreeBlocks()
		a := m.NewMap(p, "a", 10*4096)
		m.DeleteMap(p, a)
		if m.FreeBlocks() != free0 {
			t.Errorf("free blocks %d, want %d", m.FreeBlocks(), free0)
		}
		if len(m.free) != 0 {
			t.Errorf("trailing extent should return to bump pointer, free list %v", m.free)
		}
	})
}

func TestDoubleDeletePanics(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		s := m.NewMap(p, "s", 4096)
		m.DeleteMap(p, s)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on double delete")
			}
		}()
		m.DeleteMap(p, s)
	})
}

func TestBlockOutOfRangePanics(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		s := m.Preexisting("s", 2*4096)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		s.Block(2)
	})
}

func TestDiskFullPanics(t *testing.T) {
	k, d, m := testRig()
	runOn(k, d, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected disk-full panic")
			}
		}()
		m.Preexisting("huge", int64(d.Config().Blocks+1)*4096)
	})
}

// Property: any sequence of alloc/free pairs leaves the manager with the
// same number of free blocks it started with, and allocations never
// overlap while live.
func TestQuickAllocFreeConsistent(t *testing.T) {
	f := func(sizes []uint8, frees []bool) bool {
		k, d, m := testRig()
		ok := true
		runOn(k, d, func(p *sim.Proc) {
			free0 := m.FreeBlocks()
			type liveSeg struct{ s *Segment }
			var live []liveSeg
			used := map[int]bool{}
			for i, raw := range sizes {
				if i >= 24 {
					break
				}
				n := int(raw)%64 + 1
				s := m.NewMap(p, "q", int64(n)*4096)
				for b := 0; b < s.Pages(); b++ {
					if used[s.Block(b)] {
						ok = false
					}
					used[s.Block(b)] = true
				}
				live = append(live, liveSeg{s})
				if i < len(frees) && frees[i] && len(live) > 0 {
					victim := live[0]
					live = live[1:]
					for b := 0; b < victim.s.Pages(); b++ {
						delete(used, victim.s.Block(b))
					}
					m.DeleteMap(p, victim.s)
				}
			}
			for _, l := range live {
				m.DeleteMap(p, l.s)
			}
			if m.FreeBlocks() != free0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMeasureSetupLinearAndOrdered(t *testing.T) {
	cfg := disk.DefaultConfig()
	pts := MeasureSetup(cfg, DefaultSetupCost(), []int{1600, 6400, 12800})
	for i := 1; i < len(pts); i++ {
		if pts[i].New <= pts[i-1].New || pts[i].Open <= pts[i-1].Open || pts[i].Delete <= pts[i-1].Delete {
			t.Errorf("setup costs not increasing with size: %+v", pts)
		}
	}
	for _, pt := range pts {
		// Fig 1(b) ordering: newMap > openMap > deleteMap.
		if !(pt.New > pt.Open && pt.Open > pt.Delete) {
			t.Errorf("ordering violated at %d pages: new %v open %v delete %v",
				pt.Pages, pt.New, pt.Open, pt.Delete)
		}
	}
	// Magnitude: seconds at 12800 blocks, like the paper.
	last := pts[len(pts)-1]
	if last.New < 5*sim.Second || last.New > 20*sim.Second {
		t.Errorf("newMap(12800) = %v, expected ~11s scale", last.New)
	}
}
