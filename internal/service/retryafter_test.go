package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestRetryAfterHintGrowsWithQueueDepth: the 429 hint is queue depth ×
// mean admitted-service time, not the configured constant — a deeper
// queue must produce a larger hint, clamped to [floor, 30s].
func TestRetryAfterHintGrowsWithQueueDepth(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	s.meanServiceNs.Store(int64(2 * time.Second))

	cases := []struct {
		depth int
		want  time.Duration
	}{
		{0, time.Second},        // empty queue: configured floor
		{1, 2 * time.Second},    // one slot-recycle ahead
		{5, 10 * time.Second},   // linear in depth
		{100, 30 * time.Second}, // capped
	}
	for _, c := range cases {
		if got := s.hintFor(c.depth); got != c.want {
			t.Errorf("hintFor(%d) = %v, want %v", c.depth, got, c.want)
		}
	}

	prev := time.Duration(0)
	for depth := 0; depth <= 20; depth++ {
		h := s.hintFor(depth)
		if h < prev {
			t.Fatalf("hint shrank with queue depth: hintFor(%d)=%v < %v", depth, h, prev)
		}
		prev = h
	}
}

// TestRetryAfterConfigIsFloor: a configured RetryAfter larger than the
// computed estimate wins — the config value is a floor, never exceeded
// downward.
func TestRetryAfterConfigIsFloor(t *testing.T) {
	s := newTestServer(t, 300, Config{RetryAfter: 5 * time.Second})
	s.meanServiceNs.Store(int64(500 * time.Millisecond))
	if got := s.hintFor(1); got != 5*time.Second {
		t.Fatalf("hintFor(1) = %v, want the 5s configured floor", got)
	}
	if got := s.hintFor(20); got != 10*time.Second {
		t.Fatalf("hintFor(20) = %v, want 10s (20 × 500ms above the floor)", got)
	}
}

// TestRetryAfterEWMASeedsAndConverges: the first sample seeds the mean;
// later samples move it by 1/8 of the error.
func TestRetryAfterEWMASeedsAndConverges(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	if got := s.meanServiceNs.Load(); got != 0 {
		t.Fatalf("mean before any join = %d", got)
	}
	s.recordServiceTime(800 * time.Millisecond)
	if got := s.meanServiceNs.Load(); got != int64(800*time.Millisecond) {
		t.Fatalf("first sample must seed the EWMA: got %d", got)
	}
	s.recordServiceTime(1600 * time.Millisecond)
	want := int64(800*time.Millisecond) + int64(800*time.Millisecond)/8
	if got := s.meanServiceNs.Load(); got != want {
		t.Fatalf("EWMA after second sample = %d, want %d", got, want)
	}
}

// TestRetryAfterHeaderReflectsQueueDepth: end to end, a saturated 429
// carries a Retry-After derived from the live queue depth — with the
// queue full and a known mean service time, the header is depth × mean.
func TestRetryAfterHeaderReflectsQueueDepth(t *testing.T) {
	const budget = 1 << 20
	const maxQueue = 4
	s := newTestServer(t, 300, Config{MemBudget: budget, MaxQueue: maxQueue})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.meanServiceNs.Store(int64(3 * time.Second))

	// Occupy the whole budget, then fill the queue with waiters.
	if err := s.adm.Acquire(context.Background(), budget); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < maxQueue; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.adm.Acquire(ctx, budget) // queued until cancel
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.QueueDepth() < maxQueue {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := postJoin(t, ts, JoinRequest{MemBytes: budget})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	sec, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("bad Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	if want := maxQueue * 3; sec != want {
		t.Errorf("Retry-After = %ds at depth %d × mean 3s, want %ds", sec, maxQueue, want)
	}

	cancel()
	wg.Wait()
	s.adm.Release(budget)
}
