// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role of the machine on which the paper's experiments
// ran: it advances a virtual clock, schedules cooperating processes, and
// arbitrates contended resources (disk arms, controllers). Processes are
// ordinary Go functions run on goroutines, but exactly one process executes
// at a time and time only advances through explicit kernel calls, so runs
// are fully deterministic for a fixed input.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is a virtual-time instant or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant.
const MaxTime Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// event is a scheduled wake-up for a process.
type event struct {
	at   Time
	seq  int64 // FIFO tie-break for equal times
	proc *Proc
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift routines
// are implemented directly on the slice — unlike container/heap, pushes
// and pops move plain event values with no interface boxing, so the
// popped storage is reused by later pushes and the steady-state dispatch
// loop allocates nothing.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h *eventHeap) pushEvent(e event) {
	hs := append(*h, e)
	*h = hs
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hs[i].before(hs[parent]) {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
}

func (h *eventHeap) popEvent() event {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs[n] = event{} // release the proc pointer in the vacated slot
	hs = hs[:n]
	*h = hs
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && hs[r].before(hs[child]) {
			child = r
		}
		if !hs[child].before(hs[i]) {
			break
		}
		hs[i], hs[child] = hs[child], hs[i]
		i = child
	}
	return top
}

// Kernel is a discrete-event simulator. The zero value is not usable;
// create one with NewKernel.
//
// Control transfer is a direct handoff: exactly one goroutine — Run's
// caller or one process — holds the baton at any instant, and whoever
// yields pops the next event and wakes its process itself. A dispatch
// therefore costs a single channel operation (and none at all when a
// process's own wake-up is the next event), rather than the two
// operations of a central scheduler loop.
type Kernel struct {
	now      Time
	events   eventHeap
	seq      int64
	done     chan struct{} // baton back to Run: no runnable event, or a panic
	procs    []*Proc
	live     int
	running  bool
	panicVal any
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{done: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Procs returns all processes ever spawned, in spawn order.
func (k *Kernel) Procs() []*Proc { return k.procs }

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. Spawn may be called before Run or from
// within a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			p.state = procDone
			k.live--
			if r := recover(); r != nil {
				// Abandon pending events and surface the panic from Run.
				k.panicVal = r
				k.done <- struct{}{}
				return
			}
			k.handoff()
		}()
		<-p.wake // wait for first dispatch
		fn(p)
	}()
	k.schedule(p, k.now)
	return p
}

// schedule enqueues a wake-up for p at time at.
func (k *Kernel) schedule(p *Proc, at Time) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling %q in the past (%v < %v)", p.name, at, k.now))
	}
	k.seq++
	k.events.pushEvent(event{at: at, seq: k.seq, proc: p})
	p.state = procReady
}

// start pops events until one names a live process, dispatches it, and
// reports whether control was handed off. It must be called by the
// goroutine currently holding the baton.
func (k *Kernel) start() bool {
	for k.events.Len() > 0 {
		e := k.events.popEvent()
		if e.proc.state == procDone {
			continue
		}
		k.now = e.at
		e.proc.state = procRunning
		e.proc.wake <- struct{}{}
		return true
	}
	return false
}

// handoff transfers the baton from an exiting process to the next
// runnable one, or back to Run when no event remains.
func (k *Kernel) handoff() {
	if !k.start() {
		k.done <- struct{}{}
	}
}

// Run executes until no runnable process remains and returns the final
// virtual time. It panics with a description of blocked processes if some
// process is blocked forever (a deadlock in the simulated program).
func (k *Kernel) Run() Time {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	if k.start() {
		<-k.done
	}
	if k.panicVal != nil {
		v := k.panicVal
		k.panicVal = nil
		panic(v)
	}
	if k.live > 0 {
		var blocked []string
		for _, p := range k.procs {
			if p.state == procBlocked {
				blocked = append(blocked, fmt.Sprintf("%s (%s)", p.name, p.blockReason))
			}
		}
		sort.Strings(blocked)
		panic(fmt.Sprintf("sim: deadlock at %v: %d processes blocked forever: %v", k.now, k.live, blocked))
	}
	return k.now
}

type procState int8

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// Proc is a simulated process. All methods must be called from the
// process's own goroutine (inside the function passed to Spawn).
type Proc struct {
	k           *Kernel
	name        string
	wake        chan struct{}
	state       procState
	blockReason string

	// Busy is total virtual time this process spent in Advance.
	Busy Time
	// Blocked is total virtual time this process spent in Block —
	// waiting on resource queues, conditions, channels, or barriers.
	// Together with Busy it splits a process's life into working,
	// waiting, and (the remainder) ready-but-not-dispatched.
	Blocked Time
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// yield hands control to the next scheduled process and waits to be
// dispatched again. When the caller's own wake-up is the next event, it
// simply keeps running — no channel operation at all.
func (p *Proc) yield() {
	k := p.k
	for k.events.Len() > 0 {
		e := k.events.popEvent()
		if e.proc.state == procDone {
			continue
		}
		k.now = e.at
		e.proc.state = procRunning
		if e.proc != p {
			e.proc.wake <- struct{}{}
			<-p.wake
		}
		return
	}
	// No runnable event anywhere: hand the baton back to Run, which
	// decides between completion and deadlock. A blocked caller parks
	// forever (exactly the deadlock Run then reports).
	k.done <- struct{}{}
	<-p.wake
}

// Advance consumes d of virtual time (CPU work, transfer time, ...).
// Other runnable processes may execute in the interim.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative Advance %v", p.name, d))
	}
	p.Busy += d
	if d == 0 {
		return
	}
	p.k.schedule(p, p.k.now+d)
	p.yield()
}

// Block suspends the process until another process calls Unblock on it.
// reason is reported if the simulation deadlocks.
func (p *Proc) Block(reason string) {
	p.state = procBlocked
	p.blockReason = reason
	start := p.k.now
	p.yield()
	p.Blocked += p.k.now - start
}

// Unblock makes a blocked process runnable at the current virtual time.
// It may be called from any process (or before Run from the spawner).
func (p *Proc) Unblock() {
	if p.state != procBlocked {
		panic(fmt.Sprintf("sim: Unblock of non-blocked process %q", p.name))
	}
	p.k.schedule(p, p.k.now)
}
