package model

import "math"

// Ylru is the Mackert–Lohman approximation of the number of page faults
// incurred retrieving matching tuples through a finite LRU buffer: given
// a relation of n tuples stored on t pages with i distinct key values and
// a b-page LRU buffer, Ylru estimates the faults caused by looking up x
// key values.
//
//	Ylru(N,t,i,b,x) = t·(1−q^x)                        if x ≤ n*
//	                = t·[(1−q^n*) + p·(x−n*)·q^n*]     if x > n*
//
// where n* = max{ j ≤ i : t(1−q^j) ≤ b } and
// q = 1−p = (1 − 1/max(t,i))^(N/min(t,i)). x is clamped to i (at most i
// distinct key values exist).
func Ylru(n, t, i, b, x float64) float64 {
	if x <= 0 || t <= 0 {
		return 0
	}
	if i < 1 {
		i = 1
	}
	if x > i {
		x = i
	}
	if b < 1 {
		b = 1
	}
	maxTI := math.Max(t, i)
	minTI := math.Min(t, i)
	q := math.Pow(1-1/maxTI, n/minTI)
	p := 1 - q
	if p <= 0 {
		return 0
	}
	// n* = max{j : j ≤ i, t(1−q^j) ≤ b}: the point at which the buffer
	// fills. t(1−q^j) is increasing in j, so solve then clamp.
	var nStar float64
	if b >= t {
		nStar = i
	} else {
		// t(1−q^j) = b  ⇒  q^j = 1−b/t  ⇒  j = ln(1−b/t)/ln(q)
		nStar = math.Log(1-b/t) / math.Log(q)
		if nStar > i {
			nStar = i
		}
		if nStar < 0 {
			nStar = 0
		}
	}
	if x <= nStar {
		return t * (1 - math.Pow(q, x))
	}
	return t * ((1 - math.Pow(q, nStar)) + p*(x-nStar)*math.Pow(q, nStar))
}
