package join

import (
	"fmt"
	"sort"

	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
)

// runGrace executes the parallel pointer-based Grace join variant (§7).
// Passes 0 and 1 are the partitioning passes, but join attributes are
// hashed into one of K clustered buckets per RSi: the hash preserves the
// S-pointer order, so bucket j holds only pointers smaller than any in
// bucket j+1 and Si can be read sequentially across buckets. Pass 1+j
// loads bucket j into a memory-resident hash table of TSIZE chains and
// joins its chains in order against Si through the shared buffer.
func (r *runner) runGrace() {
	counts := r.w.SubCounts()
	rsCounts := r.w.RSCounts()
	r.spawnSprocs()
	bar := sim.NewBarrier("grace-phase", r.d)

	// Choose K so one bucket plus its hash-table overhead fits in
	// MRproc (with the paper's fuzz allowance), unless overridden.
	maxRS := 0
	for _, c := range rsCounts {
		if c > maxRS {
			maxRS = c
		}
	}
	k := r.prm.K
	if k <= 0 {
		need := r.prm.Fuzz * float64(maxRS) * float64(r.r) / float64(r.prm.MRproc)
		k = int(need)
		if float64(k) < need {
			k++
		}
	}
	if k < 1 {
		k = 1
	}
	if k > maxRS && maxRS > 0 {
		k = maxRS
	}
	r.res.K = k

	tsize := r.prm.TSize
	if tsize <= 0 {
		avgBucket := maxRS / k
		tsize = 16
		for tsize < avgBucket/4 {
			tsize *= 2
		}
	}
	r.res.TSize = tsize

	// The order-preserving first hash: bucket of a pointer into Sj.
	bucketOf := func(ptr int32, j int) int {
		b := int(int64(ptr) * int64(k) / int64(r.w.SizeS(j)))
		if b >= k {
			b = k - 1
		}
		return b
	}

	// Pre-compute bucket sizes (the executable system would size bucket
	// extents from partition statistics; we have them exactly).
	bucketCount := make([][]int, r.d)
	for j := range bucketCount {
		bucketCount[j] = make([]int, k)
	}
	for i := 0; i < r.d; i++ {
		for _, ptr := range r.w.Refs[i] {
			bucketCount[ptr.Part][bucketOf(ptr.Index, int(ptr.Part))]++
		}
	}
	// Bucket start offsets (objects) within each RSj.
	bucketStart := make([][]int64, r.d)
	for j := range bucketStart {
		bucketStart[j] = make([]int64, k+1)
		for b := 0; b < k; b++ {
			bucketStart[j][b+1] = bucketStart[j][b] + int64(bucketCount[j][b])
		}
	}

	type bucketState struct {
		objs [][]pendingJoin // per bucket, arrival order
		cur  []int64         // per bucket appended objects
	}
	rs := make([]*bucketState, r.d)
	rsSegments := make([]*segRef, r.d)
	for j := 0; j < r.d; j++ {
		rs[j] = &bucketState{objs: make([][]pendingJoin, k), cur: make([]int64, k)}
		rsSegments[j] = &segRef{}
	}

	for i := 0; i < r.d; i++ {
		i := i
		r.m.K.Spawn(fmt.Sprintf("Rproc%d", i), func(p *sim.Proc) {
			pg := r.newPager(fmt.Sprintf("Rproc%d", i), r.prm.MRproc)
			mgr := r.m.Mgr[i]

			mgr.OpenMap(p, r.segR[i])
			mgr.OpenMap(p, r.segS[i])
			rsBytes := int64(rsCounts[i]) * r.r
			if rsBytes == 0 {
				rsBytes = 1
			}
			rsSegments[i].s = mgr.NewMap(p, fmt.Sprintf("RS%d", i), rsBytes)
			offsets, total := r.subLayout(i, counts)
			rp := mgr.NewMap(p, fmt.Sprintf("RP%d", i), total)
			r.markPhase(p, "setup")
			bar.Wait(p)

			// writeBucket appends an object to bucket b of RSj.
			writeBucket := func(j int, pj pendingJoin) {
				b := bucketOf(pj.ptr.Index, j)
				off := (bucketStart[j][b] + rs[j].cur[b]) * r.r
				pg.Touch(p, rsSegments[j].s, off, r.r, true)
				rs[j].cur[b]++
				rs[j].objs[b] = append(rs[j].objs[b], pj)
			}

			// Pass 0: scan Ri; hash own references into RSi buckets,
			// sub-partition the rest into RPi,j.
			cursors := make([]int64, r.d)
			rpRefs := make([][]pendingJoin, r.d)
			for x, ptr := range r.w.Refs[i] {
				pg.Touch(p, r.segR[i], int64(x)*r.r, r.r, false)
				j := int(ptr.Part)
				if j == i {
					p.Advance(r.m.Cfg.MapCost + r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.r))
					writeBucket(i, pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
					continue
				}
				p.Advance(r.m.Cfg.MapCost + r.m.Cfg.TransferPP(r.r))
				pg.Touch(p, rp, offsets[j]+cursors[j]*r.r, r.r, true)
				cursors[j]++
				rpRefs[j] = append(rpRefs[j], pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
			}
			r.markPhase(p, "pass0")
			bar.Wait(p)

			// Pass 1: staggered, synchronized phases hash each RPi,j
			// into RSj's buckets.
			for t := 1; t < r.d; t++ {
				j := r.phasePartition(i, t)
				for n, pj := range rpRefs[j] {
					pg.Touch(p, rp, offsets[j]+int64(n)*r.r, r.r, false)
					p.Advance(r.m.Cfg.HashCost + r.m.Cfg.TransferPP(r.r))
					writeBucket(j, pj)
				}
				bar.Wait(p)
			}
			for j := 0; j < r.d; j++ {
				if j != i {
					pg.FlushSegment(p, rsSegments[j].s)
					pg.DropSegment(rsSegments[j].s)
				}
			}
			r.markPhase(p, "pass1")
			bar.Wait(p)

			// Pass 1+b: per bucket, build the TSIZE-chain table in
			// memory and join its chains in order. The second hash also
			// preserves pointer order, so chain order ⇒ ascending S
			// addresses ⇒ (near-)sequential reads of Si.
			for b := 0; b < k; b++ {
				objs := rs[i].objs[b]
				overhead := int64(tsize)*8 + int64(len(objs))*int64(r.m.Cfg.HeapPtrBytes)
				reserve := r.reserve(p, pg, int((overhead+r.b-1)/r.b))
				for n := range objs {
					off := (bucketStart[i][b] + int64(n)) * r.r
					pg.Touch(p, rsSegments[i].s, off, r.r, false)
					p.Advance(r.m.Cfg.HashCost)
				}
				// Chains processed in order: ascending S index.
				order := make([]int, len(objs))
				for n := range order {
					order[n] = n
				}
				sort.SliceStable(order, func(a, c int) bool {
					return objs[order[a]].ptr.Index < objs[order[c]].ptr.Index
				})
				gbuf := r.newGBuffer(i, i)
				for _, n := range order {
					gbuf.add(p, objs[n].ri, objs[n].x, objs[n].ptr)
				}
				gbuf.flush(p)
				pg.Unreserve(reserve)
			}
			r.markPhase(p, "probe")

			r.addPagerStats(pg)
			r.rprocDone(p, i)
		})
	}
	r.m.K.Run()
	r.finishPhases([]string{"setup", "pass0", "pass1", "probe"})
}

// segRef lets Rprocs publish segments created during their setup to the
// other Rprocs (filled before the first barrier).
type segRef struct{ s *seg.Segment }
