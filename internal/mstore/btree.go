package mstore

import (
	"fmt"
)

// BTree is a persistent B+tree stored entirely inside a segment: nodes
// are fixed-size blocks, child and value references are virtual pointers
// (offsets), and leaves are chained for range scans. Because the segment
// is exactly positioned, a tree built in one process is usable after
// reopening the file with no pointer fixup — the µDatabase result the
// paper builds on ("data structures such as B-Trees ... can be
// implemented as efficiently and effectively in this environment").
//
// Keys are uint64; values are virtual pointers (Ptr), typically into a
// relation in the same or another segment. Duplicate keys are supported
// through posting chains: the tree's key array stays strictly unique
// (descent and split logic never see duplicates), and a key with more
// than one value stores a btChainTag-tagged pointer to a chain of
// fixed-capacity posting blocks instead of a direct value. Values must
// therefore leave the tag bit clear, which every segment offset does.
type BTree struct {
	seg       *Segment
	hdr       Ptr
	nodeBytes int
	maxKeys   int
}

// Tree header layout: magic u32, nodeBytes u32, root Ptr, count u64,
// first-leaf Ptr.
const (
	btMagic     = 0x42545231 // "BTR1"
	btHdrBytes  = 40
	btOffMagic  = 0
	btOffNode   = 4
	btOffRoot   = 8
	btOffCount  = 16
	btOffFirst  = 24
	minNodeSize = 64
)

// Node layout: flags u32 (1 = leaf), count u32, next Ptr (leaves only),
// then maxKeys keys (u64) followed by maxKeys+1 refs (u64). For leaves
// refs[0..count-1] are values; for internal nodes refs[0..count] are
// children.
const nodeHdrBytes = 16

// Posting chains: a leaf ref with btChainTag set points at a chain of
// posting blocks (next Ptr, count u32, pad u32, btPostCap values) that
// hold every value stored under one duplicated key. One cache line per
// block.
const (
	btChainTag  = Ptr(1) << 63
	btPostCap   = 6
	btPostBytes = 16 + 8*btPostCap
)

// btMaxKeys sizes the key array so a node can briefly hold maxKeys+1
// keys and maxKeys+2 refs while an overflow is being split:
// nodeHdr + 8·(maxKeys+1) + 8·(maxKeys+2) ≤ nodeBytes.
func btMaxKeys(nodeBytes int) int {
	return (nodeBytes - nodeHdrBytes - 24) / 16
}

// CreateBTree allocates an empty tree with the given node size (0 ⇒ one
// 4K page) and returns it. Persist the returned Head pointer (for
// example via Segment.SetRoot) to reopen the tree later.
func CreateBTree(seg *Segment, nodeBytes int) (*BTree, error) {
	if nodeBytes == 0 {
		nodeBytes = 4096
	}
	if nodeBytes < minNodeSize {
		return nil, fmt.Errorf("mstore: btree node %d below minimum %d", nodeBytes, minNodeSize)
	}
	hdr, err := seg.Alloc(btHdrBytes)
	if err != nil {
		return nil, err
	}
	t := &BTree{seg: seg, hdr: hdr, nodeBytes: nodeBytes}
	t.maxKeys = btMaxKeys(nodeBytes)
	if t.maxKeys < 3 {
		return nil, fmt.Errorf("mstore: btree node %d too small for 3 keys", nodeBytes)
	}
	seg.PutU32(hdr+btOffMagic, btMagic)
	seg.PutU32(hdr+btOffNode, uint32(nodeBytes))
	root, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	seg.PutU64(hdr+btOffRoot, uint64(root))
	seg.PutU64(hdr+btOffCount, 0)
	seg.PutU64(hdr+btOffFirst, uint64(root))
	return t, nil
}

// OpenBTree attaches to a tree previously created at hdr.
func OpenBTree(seg *Segment, hdr Ptr) (*BTree, error) {
	if seg.U32(hdr+btOffMagic) != btMagic {
		return nil, fmt.Errorf("mstore: no btree at %d", hdr)
	}
	nodeBytes := int(seg.U32(hdr + btOffNode))
	t := &BTree{seg: seg, hdr: hdr, nodeBytes: nodeBytes}
	t.maxKeys = btMaxKeys(nodeBytes)
	return t, nil
}

// Head returns the tree's persistent header pointer.
func (t *BTree) Head() Ptr { return t.hdr }

// Len returns the number of stored values (a duplicated key counts once
// per chained value).
func (t *BTree) Len() int { return int(t.seg.U64(t.hdr + btOffCount)) }

func (t *BTree) root() Ptr       { return Ptr(t.seg.U64(t.hdr + btOffRoot)) }
func (t *BTree) setRoot(p Ptr)   { t.seg.PutU64(t.hdr+btOffRoot, uint64(p)) }
func (t *BTree) bumpCount(d int) { t.seg.PutU64(t.hdr+btOffCount, uint64(t.Len()+d)) }

// Node accessors.

func (t *BTree) newNode(leaf bool) (Ptr, error) {
	n, err := t.seg.Alloc(int64(t.nodeBytes))
	if err != nil {
		return 0, err
	}
	flags := uint32(0)
	if leaf {
		flags = 1
	}
	t.seg.PutU32(n, flags)
	t.seg.PutU32(n+4, 0)
	t.seg.PutU64(n+8, 0)
	return n, nil
}

func (t *BTree) isLeaf(n Ptr) bool { return t.seg.U32(n)&1 == 1 }
func (t *BTree) count(n Ptr) int   { return int(t.seg.U32(n + 4)) }
func (t *BTree) setCount(n Ptr, c int) {
	t.seg.PutU32(n+4, uint32(c))
}
func (t *BTree) next(n Ptr) Ptr    { return Ptr(t.seg.U64(n + 8)) }
func (t *BTree) setNext(n, nx Ptr) { t.seg.PutU64(n+8, uint64(nx)) }
func (t *BTree) keyAt(n Ptr, i int) uint64 {
	return t.seg.U64(n + nodeHdrBytes + Ptr(8*i))
}
func (t *BTree) setKeyAt(n Ptr, i int, k uint64) {
	t.seg.PutU64(n+nodeHdrBytes+Ptr(8*i), k)
}
func (t *BTree) refBase(n Ptr) Ptr { return n + nodeHdrBytes + Ptr(8*(t.maxKeys+1)) }
func (t *BTree) refAt(n Ptr, i int) Ptr {
	return Ptr(t.seg.U64(t.refBase(n) + Ptr(8*i)))
}
func (t *BTree) setRefAt(n Ptr, i int, v Ptr) {
	t.seg.PutU64(t.refBase(n)+Ptr(8*i), uint64(v))
}

// Posting-chain accessors.

func (t *BTree) postNext(blk Ptr) Ptr      { return Ptr(t.seg.U64(blk)) }
func (t *BTree) postCount(blk Ptr) int     { return int(t.seg.U32(blk + 8)) }
func (t *BTree) postVal(blk Ptr, i int) Ptr {
	return Ptr(t.seg.U64(blk + 16 + Ptr(8*i)))
}

// newPostBlock allocates a posting block holding vals with the given
// successor.
func (t *BTree) newPostBlock(next Ptr, vals ...Ptr) (Ptr, error) {
	blk, err := t.seg.Alloc(btPostBytes)
	if err != nil {
		return 0, err
	}
	t.seg.PutU64(blk, uint64(next))
	t.seg.PutU32(blk+8, uint32(len(vals)))
	t.seg.PutU32(blk+12, 0)
	for i, v := range vals {
		t.seg.PutU64(blk+16+Ptr(8*i), uint64(v))
	}
	return blk, nil
}

// appendChain adds v to the values of leaf entry i (a duplicate insert):
// a direct value becomes a two-value chain, a chain grows in its head
// block or gains a new head. The order is deterministic for a given
// insertion sequence but otherwise unspecified — join folds are
// commutative, so consumers never depend on it.
func (t *BTree) appendChain(n Ptr, i int, v Ptr) error {
	ref := t.refAt(n, i)
	if ref&btChainTag == 0 {
		blk, err := t.newPostBlock(0, ref, v)
		if err != nil {
			return err
		}
		t.setRefAt(n, i, blk|btChainTag)
		return nil
	}
	head := ref &^ btChainTag
	if c := t.postCount(head); c < btPostCap {
		t.seg.PutU64(head+16+Ptr(8*c), uint64(v))
		t.seg.PutU32(head+8, uint32(c+1))
		return nil
	}
	blk, err := t.newPostBlock(head, v)
	if err != nil {
		return err
	}
	t.setRefAt(n, i, blk|btChainTag)
	return nil
}

// forEachValue calls fn for every value stored under one leaf ref — the
// direct value, or every posting-chain member — stopping early if fn
// returns false; it reports whether the walk ran to completion.
func (t *BTree) forEachValue(ref Ptr, fn func(v Ptr) bool) bool {
	if ref&btChainTag == 0 {
		return fn(ref)
	}
	for blk := ref &^ btChainTag; blk != 0; blk = t.postNext(blk) {
		for i, c := 0, t.postCount(blk); i < c; i++ {
			if !fn(t.postVal(blk, i)) {
				return false
			}
		}
	}
	return true
}

// firstValue returns the first value under a leaf ref.
func (t *BTree) firstValue(ref Ptr) Ptr {
	if ref&btChainTag == 0 {
		return ref
	}
	return t.postVal(ref&^btChainTag, 0)
}

// chainLen counts the values stored under a leaf ref.
func (t *BTree) chainLen(ref Ptr) int {
	if ref&btChainTag == 0 {
		return 1
	}
	n := 0
	for blk := ref &^ btChainTag; blk != 0; blk = t.postNext(blk) {
		n += t.postCount(blk)
	}
	return n
}

// freeChain returns a ref's posting blocks to the allocator.
func (t *BTree) freeChain(ref Ptr) {
	if ref&btChainTag == 0 {
		return
	}
	blk := ref &^ btChainTag
	for blk != 0 {
		next := t.postNext(blk)
		t.seg.Free(blk, btPostBytes)
		blk = next
	}
}

// search returns the index of the first key ≥ k in node n.
func (t *BTree) search(n Ptr, k uint64) int {
	lo, hi := 0, t.count(n)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns a value stored under k (the first in chain order when the
// key holds several).
func (t *BTree) Get(k uint64) (Ptr, bool) {
	n := t.root()
	for !t.isLeaf(n) {
		i := t.search(n, k)
		if i < t.count(n) && t.keyAt(n, i) == k {
			i++ // equal keys route right in internal nodes
		}
		n = t.refAt(n, i)
	}
	i := t.search(n, k)
	if i < t.count(n) && t.keyAt(n, i) == k {
		return t.firstValue(t.refAt(n, i)), true
	}
	return 0, false
}

// Postings calls fn for every value stored under k, stopping early if fn
// returns false; it reports whether k was present.
func (t *BTree) Postings(k uint64, fn func(v Ptr) bool) bool {
	n := t.root()
	for !t.isLeaf(n) {
		i := t.search(n, k)
		if i < t.count(n) && t.keyAt(n, i) == k {
			i++
		}
		n = t.refAt(n, i)
	}
	i := t.search(n, k)
	if i >= t.count(n) || t.keyAt(n, i) != k {
		return false
	}
	t.forEachValue(t.refAt(n, i), fn)
	return true
}

// Insert stores v under k; duplicate keys extend the key's posting
// chain.
func (t *BTree) Insert(k uint64, v Ptr) error {
	if v&btChainTag != 0 {
		return fmt.Errorf("mstore: btree value %d has the chain tag bit set", v)
	}
	root := t.root()
	promoted, newRight, grew, err := t.insert(root, k, v)
	if err != nil {
		return err
	}
	if grew {
		newRoot, err := t.newNode(false)
		if err != nil {
			return err
		}
		t.setCount(newRoot, 1)
		t.setKeyAt(newRoot, 0, promoted)
		t.setRefAt(newRoot, 0, root)
		t.setRefAt(newRoot, 1, newRight)
		t.setRoot(newRoot)
	}
	t.bumpCount(1)
	return nil
}

// insert descends into n; on split it returns the promoted key and new
// right sibling with grew=true.
func (t *BTree) insert(n Ptr, k uint64, v Ptr) (promoted uint64, right Ptr, grew bool, err error) {
	if t.isLeaf(n) {
		i := t.search(n, k)
		if i < t.count(n) && t.keyAt(n, i) == k {
			return 0, 0, false, t.appendChain(n, i, v)
		}
		t.shiftIn(n, i, k, Ptr(v), true)
		if t.count(n) <= t.maxKeys {
			return 0, 0, false, nil
		}
		return t.splitLeaf(n)
	}
	i := t.search(n, k)
	if i < t.count(n) && t.keyAt(n, i) == k {
		i++ // equal keys route right, like Get
	}
	childPromoted, childRight, childGrew, err := t.insert(t.refAt(n, i), k, v)
	if err != nil {
		return 0, 0, false, err
	}
	if !childGrew {
		return 0, 0, false, nil
	}
	t.shiftInInternal(n, i, childPromoted, childRight)
	if t.count(n) <= t.maxKeys {
		return 0, 0, false, nil
	}
	return t.splitInternal(n)
}

// shiftIn inserts key k and value v at position i of leaf n.
func (t *BTree) shiftIn(n Ptr, i int, k uint64, v Ptr, leaf bool) {
	c := t.count(n)
	for j := c; j > i; j-- {
		t.setKeyAt(n, j, t.keyAt(n, j-1))
		t.setRefAt(n, j, t.refAt(n, j-1))
	}
	t.setKeyAt(n, i, k)
	t.setRefAt(n, i, v)
	t.setCount(n, c+1)
}

// shiftInInternal inserts promoted key at i and the new right child at
// i+1 of internal node n.
func (t *BTree) shiftInInternal(n Ptr, i int, k uint64, right Ptr) {
	c := t.count(n)
	for j := c; j > i; j-- {
		t.setKeyAt(n, j, t.keyAt(n, j-1))
		t.setRefAt(n, j+1, t.refAt(n, j))
	}
	t.setKeyAt(n, i, k)
	t.setRefAt(n, i+1, right)
	t.setCount(n, c+1)
}

func (t *BTree) splitLeaf(n Ptr) (uint64, Ptr, bool, error) {
	right, err := t.newNode(true)
	if err != nil {
		return 0, 0, false, err
	}
	c := t.count(n)
	half := c / 2
	for j := half; j < c; j++ {
		t.setKeyAt(right, j-half, t.keyAt(n, j))
		t.setRefAt(right, j-half, t.refAt(n, j))
	}
	t.setCount(right, c-half)
	t.setCount(n, half)
	t.setNext(right, t.next(n))
	t.setNext(n, right)
	return t.keyAt(right, 0), right, true, nil
}

func (t *BTree) splitInternal(n Ptr) (uint64, Ptr, bool, error) {
	right, err := t.newNode(false)
	if err != nil {
		return 0, 0, false, err
	}
	c := t.count(n)
	mid := c / 2
	promoted := t.keyAt(n, mid)
	for j := mid + 1; j < c; j++ {
		t.setKeyAt(right, j-mid-1, t.keyAt(n, j))
		t.setRefAt(right, j-mid-1, t.refAt(n, j))
	}
	t.setRefAt(right, c-mid-1, t.refAt(n, c))
	t.setCount(right, c-mid-1)
	t.setCount(n, mid)
	return promoted, right, true, nil
}

// Range calls fn for every (key, value) with lo ≤ key ≤ hi in ascending
// key order (a duplicated key yields one call per chained value),
// stopping early if fn returns false.
func (t *BTree) Range(lo, hi uint64, fn func(k uint64, v Ptr) bool) {
	for it := t.iter(lo, hi); it.valid(); it.advance() {
		k := it.key()
		if !t.forEachValue(it.ref(), func(v Ptr) bool { return fn(k, v) }) {
			return
		}
	}
}

// btIter streams the leaf-chain entries of [lo, hi] in ascending key
// order: one entry per distinct key, with ref() exposing the raw leaf
// ref (expand duplicates through forEachValue). It is the cursor the
// index-merge join zips two trees with.
type btIter struct {
	t  *BTree
	n  Ptr
	i  int
	hi uint64
}

// iter positions a cursor at the first key ≥ lo.
func (t *BTree) iter(lo, hi uint64) btIter {
	n := t.root()
	for !t.isLeaf(n) {
		i := t.search(n, lo)
		if i < t.count(n) && t.keyAt(n, i) == lo {
			i++
		}
		n = t.refAt(n, i)
	}
	it := btIter{t: t, n: n, i: t.search(n, lo), hi: hi}
	it.norm()
	return it
}

// norm skips exhausted leaves and clamps at hi.
func (it *btIter) norm() {
	for it.n != 0 && it.i >= it.t.count(it.n) {
		it.n = it.t.next(it.n)
		it.i = 0
	}
	if it.n != 0 && it.t.keyAt(it.n, it.i) > it.hi {
		it.n = 0
	}
}

func (it *btIter) valid() bool { return it.n != 0 }
func (it *btIter) key() uint64 { return it.t.keyAt(it.n, it.i) }
func (it *btIter) ref() Ptr    { return it.t.refAt(it.n, it.i) }
func (it *btIter) advance() {
	it.i++
	it.norm()
}

// Delete removes k and every value chained under it, returning false if
// the key was absent. Underfull nodes are repaired by borrowing from or
// merging with a sibling.
func (t *BTree) Delete(k uint64) bool {
	removed := t.delete(t.root(), k)
	if removed == 0 {
		return false
	}
	root := t.root()
	if !t.isLeaf(root) && t.count(root) == 0 {
		old := root
		t.setRoot(t.refAt(root, 0))
		t.seg.Free(old, int64(t.nodeBytes))
	}
	t.bumpCount(-removed)
	return true
}

func (t *BTree) minKeys() int { return t.maxKeys / 2 }

// delete removes k below n and returns the number of values removed (0
// when k was absent — chained values all go with their key).
func (t *BTree) delete(n Ptr, k uint64) int {
	if t.isLeaf(n) {
		i := t.search(n, k)
		if i >= t.count(n) || t.keyAt(n, i) != k {
			return 0
		}
		ref := t.refAt(n, i)
		removed := t.chainLen(ref)
		t.freeChain(ref)
		c := t.count(n)
		for j := i; j < c-1; j++ {
			t.setKeyAt(n, j, t.keyAt(n, j+1))
			t.setRefAt(n, j, t.refAt(n, j+1))
		}
		t.setCount(n, c-1)
		return removed
	}
	i := t.search(n, k)
	if i < t.count(n) && t.keyAt(n, i) == k {
		i++
	}
	child := t.refAt(n, i)
	removed := t.delete(child, k)
	if removed == 0 {
		return 0
	}
	if t.count(child) < t.minKeys() {
		t.rebalance(n, i)
	}
	return removed
}

// rebalance repairs the underfull child at position i of parent n.
func (t *BTree) rebalance(n Ptr, i int) {
	child := t.refAt(n, i)
	// Try borrowing from the left sibling.
	if i > 0 {
		left := t.refAt(n, i-1)
		if t.count(left) > t.minKeys() {
			t.borrowFromLeft(n, i, left, child)
			return
		}
	}
	// Try borrowing from the right sibling.
	if i < t.count(n) {
		right := t.refAt(n, i+1)
		if t.count(right) > t.minKeys() {
			t.borrowFromRight(n, i, child, right)
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(n, i-1)
	} else {
		t.merge(n, i)
	}
}

func (t *BTree) borrowFromLeft(parent Ptr, i int, left, child Ptr) {
	lc := t.count(left)
	if t.isLeaf(child) {
		t.shiftIn(child, 0, t.keyAt(left, lc-1), t.refAt(left, lc-1), true)
		t.setCount(left, lc-1)
		t.setKeyAt(parent, i-1, t.keyAt(child, 0))
		return
	}
	// Rotate through the parent separator.
	c := t.count(child)
	for j := c; j > 0; j-- {
		t.setKeyAt(child, j, t.keyAt(child, j-1))
	}
	for j := c + 1; j > 0; j-- {
		t.setRefAt(child, j, t.refAt(child, j-1))
	}
	t.setKeyAt(child, 0, t.keyAt(parent, i-1))
	t.setRefAt(child, 0, t.refAt(left, lc))
	t.setCount(child, c+1)
	t.setKeyAt(parent, i-1, t.keyAt(left, lc-1))
	t.setCount(left, lc-1)
}

func (t *BTree) borrowFromRight(parent Ptr, i int, child, right Ptr) {
	rc := t.count(right)
	c := t.count(child)
	if t.isLeaf(child) {
		t.setKeyAt(child, c, t.keyAt(right, 0))
		t.setRefAt(child, c, t.refAt(right, 0))
		t.setCount(child, c+1)
		for j := 0; j < rc-1; j++ {
			t.setKeyAt(right, j, t.keyAt(right, j+1))
			t.setRefAt(right, j, t.refAt(right, j+1))
		}
		t.setCount(right, rc-1)
		t.setKeyAt(parent, i, t.keyAt(right, 0))
		return
	}
	t.setKeyAt(child, c, t.keyAt(parent, i))
	t.setRefAt(child, c+1, t.refAt(right, 0))
	t.setCount(child, c+1)
	t.setKeyAt(parent, i, t.keyAt(right, 0))
	for j := 0; j < rc-1; j++ {
		t.setKeyAt(right, j, t.keyAt(right, j+1))
		t.setRefAt(right, j, t.refAt(right, j+1))
	}
	t.setRefAt(right, rc-1, t.refAt(right, rc))
	t.setCount(right, rc-1)
}

// merge folds child i+1 of parent n into child i.
func (t *BTree) merge(n Ptr, i int) {
	left := t.refAt(n, i)
	right := t.refAt(n, i+1)
	lc, rc := t.count(left), t.count(right)
	if t.isLeaf(left) {
		for j := 0; j < rc; j++ {
			t.setKeyAt(left, lc+j, t.keyAt(right, j))
			t.setRefAt(left, lc+j, t.refAt(right, j))
		}
		t.setCount(left, lc+rc)
		t.setNext(left, t.next(right))
	} else {
		t.setKeyAt(left, lc, t.keyAt(n, i))
		for j := 0; j < rc; j++ {
			t.setKeyAt(left, lc+1+j, t.keyAt(right, j))
			t.setRefAt(left, lc+1+j, t.refAt(right, j))
		}
		t.setRefAt(left, lc+1+rc, t.refAt(right, rc))
		t.setCount(left, lc+1+rc)
	}
	// Remove separator i and child i+1 from the parent.
	pc := t.count(n)
	for j := i; j < pc-1; j++ {
		t.setKeyAt(n, j, t.keyAt(n, j+1))
		t.setRefAt(n, j+1, t.refAt(n, j+2))
	}
	t.setCount(n, pc-1)
	t.seg.Free(right, int64(t.nodeBytes))
}

// Verify checks structural invariants (key order within nodes, leaf
// chain order, posting-chain block bounds, and count consistency) and
// returns the first violation. It is exported for tests and integrity
// checks.
func (t *BTree) Verify() error {
	seen := 0
	prev := uint64(0)
	first := true
	for n := t.leftmostLeaf(); n != 0; n = t.next(n) {
		c := t.count(n)
		for i := 0; i < c; i++ {
			k := t.keyAt(n, i)
			if !first && k <= prev {
				return fmt.Errorf("mstore: btree keys out of order at %d", k)
			}
			prev, first = k, false
			ref := t.refAt(n, i)
			if ref&btChainTag != 0 {
				for blk := ref &^ btChainTag; blk != 0; blk = t.postNext(blk) {
					pc := t.postCount(blk)
					if pc < 1 || pc > btPostCap {
						return fmt.Errorf("mstore: btree posting block for key %d holds %d values", k, pc)
					}
				}
			}
			seen += t.chainLen(ref)
		}
	}
	if seen != t.Len() {
		return fmt.Errorf("mstore: btree count %d but %d values reachable", t.Len(), seen)
	}
	return nil
}

func (t *BTree) leftmostLeaf() Ptr {
	n := t.root()
	for !t.isLeaf(n) {
		n = t.refAt(n, 0)
	}
	return n
}
