// Command mmdb exercises the real memory-mapped single-level store: it
// creates partitioned relations in mmap-backed segment files, runs the
// three parallel pointer-based joins over the mapped data with actual
// goroutines, verifies they agree, and reports wall-clock times.
//
// Usage:
//
//	mmdb create -dir DIR [-objects N] [-d D] [-objsize B] [-seed N]
//	mmdb join   -dir DIR [-alg all|nested-loops|sort-merge|grace] [-k K]
//	mmdb bench  -dir DIR [-runs N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mmjoin/internal/mstore"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "create":
		cmdCreate(os.Args[2:])
	case "join":
		cmdJoin(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmdb create|join|bench|verify [flags]")
	os.Exit(2)
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	d := fs.Int("d", 4, "partitions")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("verify: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if err := db.Verify(); err != nil {
		fatal(err)
	}
	objs := 0
	for _, rel := range db.R {
		objs += rel.Count()
	}
	fmt.Printf("ok: %d R objects across %d partitions, all pointers valid\n", objs, db.D)
}

func cmdCreate(args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	objects := fs.Int("objects", 100000, "objects per relation")
	d := fs.Int("d", 4, "partitions")
	objSize := fs.Int("objsize", 128, "object size in bytes")
	seed := fs.Int64("seed", 1, "workload seed")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("create: -dir required"))
	}
	start := time.Now()
	db, err := mstore.CreateDB(*dir, *d, *objects, *objects, *objSize, *seed)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	fmt.Printf("created %d R + %d S objects (%d B each) over %d segment pairs in %v\n",
		*objects, *objects, *objSize, *d, time.Since(start).Round(time.Millisecond))
}

func cmdJoin(args []string) {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	alg := fs.String("alg", "all", "algorithm: all, nested-loops, sort-merge, grace, hybrid-hash")
	d := fs.Int("d", 4, "partitions the database was created with")
	k := fs.Int("k", 16, "Grace bucket count")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("join: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	want := db.ExpectedStats()
	tmp := filepath.Join(*dir, "tmp")

	run := func(name string, fn func() (mstore.JoinStats, error)) {
		start := time.Now()
		st, err := fn()
		if err != nil {
			fatal(err)
		}
		ok := "OK"
		if st != want {
			ok = "MISMATCH"
		}
		fmt.Printf("%-12s  %8d pairs  %10v  verification %s\n",
			name, st.Pairs, time.Since(start).Round(time.Microsecond), ok)
	}
	if *alg == "all" || *alg == "nested-loops" {
		run("nested-loops", func() (mstore.JoinStats, error) { return db.NestedLoops(tmp) })
	}
	if *alg == "all" || *alg == "sort-merge" {
		run("sort-merge", func() (mstore.JoinStats, error) { return db.SortMerge(tmp) })
	}
	if *alg == "all" || *alg == "grace" {
		run("grace", func() (mstore.JoinStats, error) { return db.Grace(tmp, *k) })
	}
	if *alg == "all" || *alg == "hybrid-hash" {
		run("hybrid-hash", func() (mstore.JoinStats, error) { return db.HybridHash(tmp, *k, 0.5) })
	}
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	d := fs.Int("d", 4, "partitions")
	runs := fs.Int("runs", 3, "repetitions per algorithm")
	k := fs.Int("k", 16, "Grace bucket count")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("bench: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	tmp := filepath.Join(*dir, "tmp")

	bench := func(name string, fn func() (mstore.JoinStats, error)) {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < *runs; r++ {
			start := time.Now()
			if _, err := fn(); err != nil {
				fatal(err)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		fmt.Printf("%-12s  best of %d: %v\n", name, *runs, best.Round(time.Microsecond))
	}
	bench("nested-loops", func() (mstore.JoinStats, error) { return db.NestedLoops(tmp) })
	bench("sort-merge", func() (mstore.JoinStats, error) { return db.SortMerge(tmp) })
	bench("grace", func() (mstore.JoinStats, error) { return db.Grace(tmp, *k) })
	bench("hybrid-hash", func() (mstore.JoinStats, error) { return db.HybridHash(tmp, *k, 0.5) })
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmdb:", err)
	os.Exit(1)
}
