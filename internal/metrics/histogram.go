package metrics

import "mmjoin/internal/sim"

// histBuckets is the number of geometric buckets: bucket 0 holds values
// below 2µs and bucket i (i ≥ 1) holds [2^i, 2^(i+1)) µs, so the range
// spans sub-microsecond noise up to ~9 minutes of virtual time — wide
// enough for any single disk service or phase duration.
const histBuckets = 30

// Histogram accumulates sim-time observations in geometric buckets and
// answers approximate quantiles. A nil *Histogram is a valid no-op sink.
type Histogram struct {
	name     string
	count    int64
	sum      sim.Time
	min, max sim.Time
	buckets  [histBuckets]int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v sim.Time) int {
	us := int64(v) / int64(sim.Microsecond)
	b := 0
	for us >= 2 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// bucketLow returns the inclusive lower bound of bucket b.
func bucketLow(b int) sim.Time {
	if b == 0 {
		return 0
	}
	return sim.Time(int64(1)<<uint(b)) * sim.Microsecond
}

// bucketHigh returns the exclusive upper bound of bucket b.
func bucketHigh(b int) sim.Time {
	return sim.Time(int64(1)<<uint(b+1)) * sim.Microsecond
}

// Observe records one value; nil histograms ignore it.
func (h *Histogram) Observe(v sim.Time) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Name returns the registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() sim.Time {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() sim.Time {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Merge folds other's observations into h bucket-by-bucket, so
// quantiles of the union can be asked of h afterwards. Client-side load
// tooling uses this to aggregate per-outcome histograms into one
// distribution. A nil receiver ignores the call; a nil or empty other is
// a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for b := range h.buckets {
		h.buckets[b] += other.buckets[b]
	}
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation within the containing bucket, clamped to [Min, Max].
func (h *Histogram) Quantile(q float64) sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for b := 0; b < histBuckets; b++ {
		n := float64(h.buckets[b])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketLow(b), bucketHigh(b)
			frac := (rank - cum) / n
			v := lo + sim.Time(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += n
	}
	return h.max
}
