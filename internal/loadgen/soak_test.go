package loadgen

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mmjoin/internal/mstore"
	"mmjoin/internal/service"
)

// soakEnv is one live in-process service plus the ground truth of its
// database.
type soakEnv struct {
	srv       *service.Server
	ts        *httptest.Server
	wantPairs int64
	wantSig   string
}

// newSoakEnv builds a small database, records its expected join result,
// and serves it with a deliberately tight admission configuration so
// sustained traffic exercises queueing, 429 backpressure, and grant
// contention — not just the happy path.
func newSoakEnv(t *testing.T, objects int, cfg service.Config) *soakEnv {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := mstore.CreateDB(dir, 3, objects, objects, 32, 23)
	if err != nil {
		t.Fatal(err)
	}
	want := db.ExpectedStats()
	db.Close() // the server maps it afresh
	cfg.Dir = dir
	cfg.D = 3
	if cfg.CalibrationOps == 0 {
		cfg.CalibrationOps = 60
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &soakEnv{
		srv: srv, ts: ts,
		wantPairs: want.Pairs,
		wantSig:   fmt.Sprintf("%016x", want.Signature),
	}
}

// soakDuration returns the bounded soak length: seconds in short mode,
// minutes-scale in full mode.
func soakDuration() time.Duration {
	if testing.Short() {
		return 2 * time.Second
	}
	return 30 * time.Second
}

// monitor samples /stats periodically and asserts that the
// renegotiation/spill counters only ever grow. Stop it, then read
// Samples for the final state.
type monitor struct {
	srv  *service.Server
	stop chan struct{}
	done chan struct{}
	mu   sync.Mutex
	errs []string
	last map[string]int64
	n    int
}

var monotoneCounters = []string{
	"join_requests_total", "lookups_total",
	"grant_renegotiations_total", "grant_renegotiations_denied_total",
	"spill_restages_total", "stream_probes_total", "temp_relations_total",
}

func startMonitor(srv *service.Server) *monitor {
	m := &monitor{srv: srv, stop: make(chan struct{}), done: make(chan struct{}), last: map[string]int64{}}
	go func() {
		defer close(m.done)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				st := m.srv.StatsSnapshot()
				m.mu.Lock()
				m.n++
				for _, name := range monotoneCounters {
					if v := st.Counters[name]; v < m.last[name] {
						m.errs = append(m.errs, fmt.Sprintf(
							"counter %s went backwards: %d -> %d", name, m.last[name], v))
					} else {
						m.last[name] = v
					}
				}
				m.mu.Unlock()
			}
		}
	}()
	return m
}

func (m *monitor) finish(t *testing.T) {
	t.Helper()
	close(m.stop)
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.errs {
		t.Error(e)
	}
	if m.n == 0 {
		t.Error("monitor never sampled")
	}
}

// assertQuiesced checks the server has fully settled: empty admission
// queue, zero charged bytes, queue-depth gauge at zero.
func assertQuiesced(t *testing.T, srv *service.Server) {
	t.Helper()
	st := srv.StatsSnapshot()
	if st.Admission.QueueDepth != 0 {
		t.Errorf("admission queue depth %d after load, want 0", st.Admission.QueueDepth)
	}
	if st.Admission.UsedBytes != 0 {
		t.Errorf("charged bytes leaked: used=%d after load", st.Admission.UsedBytes)
	}
	if g := st.Gauges["admission_queue_depth"]; g != 0 {
		t.Errorf("admission_queue_depth gauge %v, want 0", g)
	}
}

// assertJoinsMatchGroundTruth: every 2xx join during the soak returned
// the one correct (pairs, signature) — concurrency and backpressure
// never corrupted a result.
func assertJoinsMatchGroundTruth(t *testing.T, env *soakEnv, res *Result) {
	t.Helper()
	if res.Outcomes["join.ok"] == 0 {
		t.Fatal("soak completed no joins")
	}
	want := fmt.Sprintf("%d/%s", env.wantPairs, env.wantSig)
	for got, n := range res.JoinResults {
		if got != want {
			t.Errorf("%d joins returned %s, want %s", n, got, want)
		}
	}
	var counted int64
	for _, n := range res.JoinResults {
		counted += n
	}
	if counted != res.Outcomes["join.ok"] {
		t.Errorf("spot-checked %d join bodies for %d ok joins", counted, res.Outcomes["join.ok"])
	}
}

// TestSoakSustainedMixedTraffic is the service's endurance invariant
// suite: a closed-loop blend of Zipf lookups and all-algorithm joins
// against a deliberately tight memory budget, run under -race in CI.
// Afterwards the client's outcome counts must reconcile exactly with the
// server's /stats counters, every join must have matched ground truth,
// the renegotiation counters must have grown monotonically, and the
// admission controller must be fully drained back to zero.
func TestSoakSustainedMixedTraffic(t *testing.T) {
	const grant = 256 << 10
	env := newSoakEnv(t, 2500, service.Config{
		MemBudget:    2 * grant, // two concurrent joins, the rest queue
		DefaultGrant: grant,
		MaxQueue:     3,
		Workers:      2,
	})
	mon := startMonitor(env.srv)

	res, err := Run(context.Background(), Config{
		BaseURL:   env.ts.URL,
		Seed:      101,
		Mode:      Closed,
		Duration:  soakDuration(),
		Clients:   8,
		ThinkMean: time.Millisecond,
		Mix:       Mix{LookupFraction: 0.5, ZipfS: 1.3},
		// Honor Retry-After but cap the wait so a 30s hint cannot stall
		// the bounded soak.
		MaxRetries: 1,
		RetryCap:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.finish(t)

	if res.OKCount() == 0 {
		t.Fatal("no request succeeded")
	}
	if res.Outcomes["lookup.ok"] == 0 {
		t.Error("no lookups completed")
	}
	assertJoinsMatchGroundTruth(t, env, res)
	if !res.Reconciliation.OK {
		t.Fatalf("client/server counters do not reconcile:\n%v", res.Reconciliation.Problems)
	}
	// The tight budget must actually have been contended — otherwise
	// this soak is not testing backpressure.
	if res.Resp429 == 0 && res.StatsAfter.Admission.Queued == res.StatsBefore.Admission.Queued {
		t.Error("soak never queued nor throttled a request; tighten the budget")
	}
	if res.Retries > 0 && res.Resp429 < res.Retries {
		t.Errorf("retries %d exceed 429 responses %d", res.Retries, res.Resp429)
	}
	assertQuiesced(t, env.srv)
}

// TestSoakDrainMidLoad drains the server while the closed-loop mix is
// still running: Drain must complete without deadlock while traffic is
// in flight, requests after the drain point must answer 503 (and be
// accounted as such on both sides), and the admission queue must end at
// zero.
func TestSoakDrainMidLoad(t *testing.T) {
	const grant = 256 << 10
	env := newSoakEnv(t, 2000, service.Config{
		MemBudget:    2 * grant,
		DefaultGrant: grant,
		MaxQueue:     4,
		Workers:      2,
	})
	dur := soakDuration()

	drained := make(chan error, 1)
	timer := time.AfterFunc(dur/2, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- env.srv.Drain(ctx)
	})
	defer timer.Stop()

	res, err := Run(context.Background(), Config{
		BaseURL:   env.ts.URL,
		Seed:      202,
		Mode:      Closed,
		Duration:  dur,
		Clients:   6,
		ThinkMean: time.Millisecond,
		Mix:       Mix{LookupFraction: 0.4, ZipfS: 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case derr := <-drained:
		if derr != nil {
			t.Fatalf("drain under load: %v", derr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain deadlocked under load")
	}

	if res.OKCount() == 0 {
		t.Fatal("nothing succeeded before the drain")
	}
	unavailable := res.Outcomes["join.unavailable"] + res.Outcomes["lookup.unavailable"]
	if unavailable == 0 {
		t.Error("no 503s observed after drain — half the run should have been rejected")
	}
	assertJoinsMatchGroundTruth(t, env, res)
	if !res.Reconciliation.OK {
		t.Fatalf("client/server counters do not reconcile across a mid-load drain:\n%v",
			res.Reconciliation.Problems)
	}
	if !res.StatsAfter.Draining {
		t.Error("server not draining in the after-snapshot")
	}
	assertQuiesced(t, env.srv)
}
