// Package shard implements the sharded scatter-gather serving tier: a
// Router fronts N independent memory-mapped stores (each with its own
// segment directory, work-stealing exec pool, and byte-denominated
// share of the join memory budget) behind the same mstore.Store
// interface a single database satisfies. Joins scatter to every live
// shard and the per-shard JoinStats — commutative sums — fold into one
// bit-identical result; lookups route to exactly one shard through a
// consistent-hash ring, so shard membership changes move only the keys
// the departed or arrived shard owns.
//
// The design follows the shape of near-optimal distributed binary
// joins: R is partitioned across shards while the S side each R slice
// references is local to the shard (Split replicates S), so a join is
// embarrassingly parallel across shards and the merge is a fold of
// per-shard sums — no cross-shard shuffle phase.
package shard

import (
	"fmt"
	"sort"
)

// ringReplicas is the default number of virtual nodes one shard
// projects onto the ring. More vnodes smooth the keyspace split; 64
// keeps the worst shard within a few percent of fair share while the
// ring stays small enough to rebuild on every membership change.
const ringReplicas = 64

// fnv64a is FNV-1a over a string, the ring's position hash.
func fnv64a(s string) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a shard.
type ringPoint struct {
	pos uint64
	id  string
}

// ring is an immutable consistent-hash ring over shard ids. Rebuilt
// from scratch on membership changes (cheap at serving-tier shard
// counts); reads are lock-free on the owner's side because the router
// swaps whole rings.
type ring struct {
	points []ringPoint
}

// newRing builds a ring with `replicas` virtual nodes per shard id.
func newRing(ids []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	r := &ring{points: make([]ringPoint, 0, len(ids)*replicas)}
	for _, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				pos: fnv64a(fmt.Sprintf("%s#%d", id, v)),
				id:  id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Identical positions are broken by id so the ring is a pure
		// function of the membership set, never of insertion order.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// owner returns the shard owning key: the first virtual node at or
// clockwise after the key's position, wrapping at the top of the ring.
func (r *ring) owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	pos := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id, true
}

// lookupKey names one R object for routing: the (part, index) pair a
// client dereferences. All routing — serving lookups and any future
// key-addressed writes — must go through the same key derivation or
// shards would disagree about ownership.
func lookupKey(part, index int) string {
	return fmt.Sprintf("%d/%d", part, index)
}
