package mstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"mmjoin/internal/exec"
	"mmjoin/internal/pheap"
)

// The joins are morsel-driven: each pass decomposes into fixed-size
// object-range tasks pulled by a work-stealing pool (internal/exec)
// whose size is the host CPU parallelism, independent of D. The paper's
// structural parallelism — one Rproc per disk partition — survives as
// the shape of the task lists (per-partition scans, staggered probe
// order), but the number of goroutines touching the mapping at once is
// the pool's, so a 16-core host saturates on a D=4 database and a
// server running many joins on one shared pool never oversubscribes.
//
// Every morsel folds into a per-worker JoinStats accumulator and the
// accumulators are summed at the end. Pairs and Signature are
// commutative sums, so results are bit-identical at any worker count
// and under any steal schedule.
//
// The inner loops themselves live in the kernel layer (kernel*.go):
// batched pointer dereference, flat arena-backed probe tables, and
// multi-pass radix partitioning, all gated on bit-identical
// Pairs/Signature against the reference loops kept here (joinOne,
// probeBucketMap).

// joinOne dereferences one R object's stored pointer through the
// mapping and folds the pair into st — the scalar reference kernel the
// batched joinKernel is gated against.
func (db *DB) joinOne(obj []byte, st *JoinStats) {
	ptr := DecodeSPtr(obj)
	s := db.S[ptr.Part].At(ptr.Off)
	st.Pairs++
	st.Signature += pairHash(binary.LittleEndian.Uint64(obj[ridOffset:]),
		binary.LittleEndian.Uint64(s))
}

// morselObjs is the fixed morsel size: the number of objects one
// work-stealing task covers. Around 4k objects a morsel is a few
// hundred microseconds of work — coarse enough that pool bookkeeping
// (two mutex ops per morsel) vanishes, fine enough to balance skew.
const morselObjs = 4096

// paddedStats is one worker's JoinStats accumulator padded to a cache
// line so concurrent workers do not false-share.
type paddedStats struct {
	JoinStats
	_ [48]byte
}

type perWorker []paddedStats

func newPerWorker(p *exec.Pool) perWorker { return make(perWorker, p.Workers()) }

// total folds the per-worker accumulators; the fold is a commutative
// sum, so the result is independent of which worker ran which morsel.
func (s perWorker) total() JoinStats {
	var t JoinStats
	for i := range s {
		t.Fold(s[i].JoinStats)
	}
	return t
}

// morselCount is the number of tasks rangeTasks emits for n objects.
func morselCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + morselObjs - 1) / morselObjs
}

// rangeTasks appends one task per morselObjs-sized range of [0, n).
// Empty inputs append nothing, and every emitted range is non-empty —
// the pool never churns through zero-width morsels.
func rangeTasks(tasks []exec.Task, n int, fn func(w, lo, hi int) error) []exec.Task {
	if n <= 0 {
		return tasks
	}
	for lo := 0; lo < n; lo += morselObjs {
		lo, hi := lo, min(lo+morselObjs, n)
		if hi <= lo {
			continue
		}
		tasks = append(tasks, func(w int) error { return fn(w, lo, hi) })
	}
	return tasks
}

// refCounts measures the pointer distribution of R morsel-parallel:
// counts[i][j] is the number of Ri objects referencing partition Sj.
// The joins size their temporary relations from this measure instead of
// assuming worst-case |Ri| per file.
func (db *DB) refCounts(ctx context.Context, p *exec.Pool) ([][]int64, error) {
	d := db.D
	counts := make([][]int64, d)
	for i := range counts {
		counts[i] = make([]int64, d)
	}
	var tasks []exec.Task
	for i, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			local := make([]int64, d)
			for x := lo; x < hi; x++ {
				part := int(DecodeSPtr(ri.Object(x)).Part)
				if part >= d {
					return fmt.Errorf("mstore: R%d[%d] points to partition %d", i, x, part)
				}
				local[part]++
			}
			for j, c := range local {
				if c != 0 {
					atomic.AddInt64(&counts[i][j], c)
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return nil, err
	}
	return counts, nil
}

// ephemeralPool runs fn on a pool created for this one call (GOMAXPROCS
// workers), the execution mode of the convenience methods below; Run
// with JoinRequest.Workers or a shared Pool controls parallelism
// explicitly.
func ephemeralPool(fn func(p *exec.Pool) (JoinStats, error)) (JoinStats, error) {
	p := exec.NewPool(0)
	defer p.Close()
	return fn(p)
}

// rankBucket maps the object of rank idx among n onto one of k
// order-preserving buckets. The product idx·k overflows int on 32-bit
// platforms at realistic sizes (a 10M-object partition times k=512
// exceeds 2^31), so the math is done in int64.
func rankBucket(idx, k, n int) int {
	if n < 1 || k < 1 {
		return 0
	}
	b := int(int64(idx) * int64(k) / int64(n))
	if b < 0 {
		b = 0
	}
	if b >= k {
		b = k - 1
	}
	return b
}

// tmpRelation creates a throwaway relation file under dir. Capacity 0
// (a measured-empty partition or bucket) still allocates one slot so the
// relation is well-formed.
func (db *DB) tmpRelation(dir, name string, capacity int) (*Relation, error) {
	capacity = max(capacity, 1)
	path := filepath.Join(dir, name)
	// Temp names must be unique within a join: Create truncates, so a
	// colliding name would silently corrupt a live temporary (a real bug
	// the multi-pass naming scheme once had) instead of failing.
	if _, err := os.Lstat(path); err == nil {
		return nil, fmt.Errorf("mstore: temp relation name collision: %s", path)
	}
	seg, err := Create(path, int64(db.ObjSize)*int64(capacity)+4096)
	if err != nil {
		return nil, err
	}
	return CreateRelation(seg, db.ObjSize, capacity)
}

// NestedLoops runs the parallel pointer-based nested loops join over
// the mapped store on an ephemeral GOMAXPROCS-sized pool.
func (db *DB) NestedLoops(tmpDir string) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.nestedLoops(context.Background(), p, tmpDir, kernelConfig{})
	})
}

// nestedLoops: pass 0 scans Ri in morsels, joining own-partition
// references immediately through the batched kernel and
// sub-partitioning the rest into temporary RP<i,j> relations; pass 1
// probes the sub-partitions in the paper's staggered phase order (§5.1).
func (db *DB) nestedLoops(ctx context.Context, p *exec.Pool, tmpDir string, kc kernelConfig) (JoinStats, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	kern := newJoinKernel(db, kc.withDefaults())
	// Measured pointer distribution: counts[i][j] sizes RP<i,j> exactly.
	// (The former sizing at |Ri| wrote D−1 full-size files per
	// partition.) The Appender grows on overflow, so the measure is a
	// sizing hint, not a correctness requirement.
	counts, err := db.refCounts(ctx, p)
	if err != nil {
		return JoinStats{}, err
	}
	rp := make([][]*Appender, d)
	defer func() {
		for i := range rp {
			for _, ap := range rp[i] {
				if ap != nil {
					ap.Relation().Segment().Delete()
				}
			}
		}
	}()
	for i := 0; i < d; i++ {
		rp[i] = make([]*Appender, d)
		for j := 0; j < d; j++ {
			if j == i || counts[i][j] == 0 {
				continue
			}
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("RP%d_%d.seg", i, j), int(counts[i][j]))
			if err != nil {
				return JoinStats{}, err
			}
			rp[i][j] = NewAppender(rel)
		}
	}

	stats := newPerWorker(p)
	// Pass 0.
	var tasks []exec.Task
	for i, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(w, lo, hi int) error {
			st := &stats[w].JoinStats
			b := kern.newBatch()
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				if part := int(DecodeSPtr(obj).Part); part == i {
					b.add(obj, st)
				} else if err := rp[i][part].Append(obj); err != nil {
					return err
				}
			}
			b.flush(st)
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	for i := range rp {
		for _, ap := range rp[i] {
			if ap != nil {
				ap.Seal()
			}
		}
	}

	// Pass 1: probe morsels enqueued in staggered phase order — Rproc i
	// probes RP<i,(i+t) mod D> at phase t — so concurrently executing
	// morsels tend to touch different S partitions.
	tasks = tasks[:0]
	for t := 1; t < d; t++ {
		for i := 0; i < d; i++ {
			ap := rp[i][(i+t)%d]
			if ap == nil {
				continue
			}
			sub := ap.Relation()
			tasks = rangeTasks(tasks, sub.Count(), func(w, lo, hi int) error {
				kern.joinRange(sub, lo, hi, &stats[w].JoinStats)
				return nil
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// SortMerge runs the parallel pointer-based sort-merge join on an
// ephemeral GOMAXPROCS-sized pool.
func (db *DB) SortMerge(tmpDir string) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.sortMerge(context.Background(), p, tmpDir, kernelConfig{})
	})
}

// sortSplitCount picks how many address-range splits one RSi
// partition-then-sort uses: enough tasks to occupy the pool across all
// D partitions (with headroom for stealing), but never splits smaller
// than a morsel. One worker gets one split per partition — exactly the
// old sequential in-place sort.
func sortSplitCount(workers, d, count int) int {
	s := (4*workers + d - 1) / d
	if maxS := count/morselObjs + 1; s > maxS {
		s = maxS
	}
	return max(s, 1)
}

// sortMerge: passes 0/1 form the RSj partitions directly through
// concurrent appenders (one atomic slot claim per object); each RSj is
// then sorted by S address via parallel partition-then-sort and the
// final scan batch-probes Si in ascending address order within every
// split.
//
// The sort-probe phase is MPSM-style partition-local: all of it runs as
// ONE dynamic job with no global barrier between stages. The last
// split-count morsel of partition j immediately builds j's prefix sums,
// creates its split-layout relation, and enqueues j's scatter; the last
// scatter morsel enqueues j's sort+probe splits. A small partition
// sorts and probes while a large one is still counting — under skew the
// former global barriers idled every worker on the largest partition
// three times.
func (db *DB) sortMerge(ctx context.Context, p *exec.Pool, tmpDir string, kc kernelConfig) (JoinStats, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	kern := newJoinKernel(db, kc.withDefaults())
	counts, err := db.refCounts(ctx, p)
	if err != nil {
		return JoinStats{}, err
	}
	rsTotal := make([]int64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < d; i++ {
			rsTotal[j] += counts[i][j]
		}
	}

	rs := make([]*Appender, d)
	srt := make([]*Relation, d)
	defer func() {
		for j := 0; j < d; j++ {
			if rs[j] != nil {
				rs[j].Relation().Segment().Delete()
			}
			if srt[j] != nil {
				srt[j].Segment().Delete()
			}
		}
	}()
	for j := 0; j < d; j++ {
		rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("RS%d.seg", j), int(rsTotal[j]))
		if err != nil {
			return JoinStats{}, err
		}
		rs[j] = NewAppender(rel)
	}
	var tasks []exec.Task
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				if err := rs[DecodeSPtr(obj).Part].Append(obj); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	for j := 0; j < d; j++ {
		rs[j].Seal()
	}

	// Partition-local sort-merge: split each RSj into contiguous
	// S-address ranges so the splits sort and probe independently.
	splits := make([]int, d)
	splitCounts := make([][]int64, d)
	starts := make([][]int64, d)         // split start offsets after prefix sums
	cursors := make([][]atomic.Int64, d) // scatter cursors per split
	countLeft := make([]atomic.Int64, d)
	scatterLeft := make([]atomic.Int64, d)
	stats := newPerWorker(p)
	splitOf := func(j int, off Ptr) int {
		rel := db.S[j]
		return rankBucket(rel.IndexOf(off), splits[j], rel.Count())
	}

	jb := p.Begin(ctx)
	// One split's terminal stage: heap-sort a handle array over the
	// mapped records by S pointer, apply the permutation in place, then
	// batch-probe — sequential in both the split and Si.
	sortProbe := func(j, lo, hi int) exec.Task {
		return func(w int) error {
			rel := srt[j]
			handles := make([]int32, hi-lo)
			for h := range handles {
				handles[h] = int32(h)
			}
			pheap.Sort(handles, func(a, b int32) bool {
				return DecodeSPtr(rel.Object(lo+int(a))).Off < DecodeSPtr(rel.Object(lo+int(b))).Off
			})
			permuteRange(rel, lo, handles)
			kern.joinRange(rel, lo, hi, &stats[w].JoinStats)
			return nil
		}
	}
	for j := 0; j < d; j++ {
		j := j
		rel := rs[j].Relation()
		n := rel.Count()
		if n == 0 {
			continue
		}
		splits[j] = sortSplitCount(p.Workers(), d, n)
		splitCounts[j] = make([]int64, splits[j])
		countLeft[j].Store(int64(morselCount(n)))
		scatterLeft[j].Store(int64(morselCount(n)))

		scatter := func(_, lo, hi int) error {
			dst := srt[j]
			// Slots are claimed atomically, so no two writers touch one
			// record; order within a split is arbitrary — the sort
			// imposes the final order.
			for x := lo; x < hi; x++ {
				obj := rel.Object(x)
				slot := cursors[j][splitOf(j, DecodeSPtr(obj).Off)].Add(1) - 1
				copy(dst.seg.Bytes(dst.PtrAt(int(slot)), dst.size), obj)
			}
			if scatterLeft[j].Add(-1) == 0 {
				// Partition j fully scattered: enqueue its sort+probe
				// splits without waiting for the other partitions.
				var sp []exec.Task
				for b := 0; b < splits[j]; b++ {
					lo, hi := int(starts[j][b]), int(starts[j][b]+splitCounts[j][b])
					if lo < hi {
						sp = append(sp, sortProbe(j, lo, hi))
					}
				}
				return jb.Add(sp...)
			}
			return nil
		}

		var count []exec.Task
		count = rangeTasks(count, n, func(_, lo, hi int) error {
			local := make([]int64, splits[j])
			for x := lo; x < hi; x++ {
				local[splitOf(j, DecodeSPtr(rel.Object(x)).Off)]++
			}
			for b, c := range local {
				if c != 0 {
					atomic.AddInt64(&splitCounts[j][b], c)
				}
			}
			if countLeft[j].Add(-1) == 0 {
				// Partition j fully counted: prefix sums, split-layout
				// relation, and its scatter morsels — still inside the
				// same job.
				starts[j] = make([]int64, splits[j])
				cursors[j] = make([]atomic.Int64, splits[j])
				off := int64(0)
				for b := 0; b < splits[j]; b++ {
					starts[j][b] = off
					cursors[j][b].Store(off)
					off += splitCounts[j][b]
				}
				dst, err := db.tmpRelation(tmpDir, fmt.Sprintf("SRT%d.seg", j), n)
				if err != nil {
					return err
				}
				dst.SetCount(n)
				srt[j] = dst
				var sc []exec.Task
				sc = rangeTasks(sc, n, scatter)
				return jb.Add(sc...)
			}
			return nil
		})
		if err := jb.Add(count...); err != nil {
			break // the job is failed; Wait returns the error
		}
	}
	if err := jb.Wait(); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// permuteRange reorders rel[lo : lo+len(handles)] so record lo+x
// becomes the record previously at lo+handles[x], cycle-chasing with
// one scratch record.
func permuteRange(rel *Relation, lo int, handles []int32) {
	n := len(handles)
	visited := make([]bool, n)
	scratch := make([]byte, rel.ObjSize())
	for start := 0; start < n; start++ {
		if visited[start] || int(handles[start]) == start {
			visited[start] = true
			continue
		}
		copy(scratch, rel.Object(lo+start))
		x := start
		for {
			src := int(handles[x])
			visited[x] = true
			if src == start {
				copy(rel.Object(lo+x), scratch)
				break
			}
			copy(rel.Object(lo+x), rel.Object(lo+src))
			x = src
		}
	}
}

// Grace runs the parallel pointer-based Grace join on an ephemeral
// GOMAXPROCS-sized pool with no probe-memory bound.
func (db *DB) Grace(tmpDir string, k int) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.grace(context.Background(), p, tmpDir, k, kernelConfig{}, newMemLimiter(0, nil, nil))
	})
}

// grace: the scan hashes every R object into one of k order-preserving
// buckets per S partition — multi-pass radix partitioning when k
// exceeds the per-pass fan-out (see bucketedJoin) — then every
// (partition, bucket) pair probes independently through the flat-table
// kernel. Probe memory is metered by lim; oversized buckets restage or
// stream (see probeEnv) instead of overshooting the grant.
func (db *DB) grace(ctx context.Context, p *exec.Pool, tmpDir string, k int, kc kernelConfig, lim *memLimiter) (JoinStats, error) {
	if k < 1 {
		return JoinStats{}, fmt.Errorf("mstore: Grace needs k >= 1, got %d", k)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	bj := &bucketedJoin{
		db: db, tmpDir: tmpDir, prefix: "gr", k: k, kc: kc.withDefaults(), lim: lim,
		// The order-preserving hash: bucket by position of the S offset
		// within the partition's data area.
		bucketOf: func(ptr SPtr) int {
			rel := db.S[ptr.Part]
			return rankBucket(rel.IndexOf(ptr.Off), k, rel.Count())
		},
	}
	return bj.run(ctx, p)
}

// probeBucketMap joins one bucket through the original per-bucket Go
// map. It is the reference kernel the flat table is gated against
// (TestKernelFlatMatchesMap) and the "map" baseline of the bench
// kernels panel; the joins themselves always use probeFlat.
func (db *DB) probeBucketMap(rel *Relation, st *JoinStats) {
	table := make(map[Ptr][]int, rel.Count())
	for x := 0; x < rel.Count(); x++ {
		off := DecodeSPtr(rel.Object(x)).Off
		table[off] = append(table[off], x)
	}
	offs := make([]Ptr, 0, len(table))
	for off := range table {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
	for _, off := range offs {
		for _, x := range table[off] {
			db.joinOne(rel.Object(x), st)
		}
	}
}

// tableBytesFor is the counted footprint of one bucket's flat probe
// table: the open-addressing slot arrays (8 B key + 4 B head per slot,
// power-of-two slots at ≤3/4 load factor) plus the per-reference chain
// link (4 B) and the distinct-key sweep arrays (worst case 12 B per
// reference, when every reference is distinct).
func tableBytesFor(refs int) int64 {
	return tableSlots(refs)*12 + int64(refs)*16
}

// probeEnv carries the grant machinery of one join's probe stage. Each
// probe task reserves its table's counted bytes from the shared limiter
// before building it, so the sum over concurrently built tables never
// exceeds the grant — the invariant the skew tests assert. The flat
// tables build inside per-worker arenas; an arena retains its high-water
// capacity between buckets (that is the zero-alloc steady state), which
// stays within the accounting because a worker builds one table at a
// time and every build is reserved at full size first.
type probeEnv struct {
	db     *DB
	kern   *joinKernel
	lim    *memLimiter
	tmpDir string
	seq    atomic.Int64 // unique names for restage temp relations
	arenas []probeArena // per-worker table storage
}

func newProbeEnv(db *DB, kern *joinKernel, lim *memLimiter, tmpDir string, workers int) *probeEnv {
	return &probeEnv{db: db, kern: kern, lim: lim, tmpDir: tmpDir, arenas: make([]probeArena, workers)}
}

// probe joins one bucket within the grant on worker w. The fast path
// reserves the table's bytes (waiting for concurrent probes when the
// grant is temporarily occupied) and builds the flat table in w's
// arena. A bucket whose table can never fit — renegotiation included —
// is restaged into sub-buckets on disk until each fits, and a bucket
// whose references collapse onto a single S object (one hot key)
// streams instead: restaging cannot split it, but it also needs no
// table.
func (e *probeEnv) probe(w int, rel *Relation, st *JoinStats, depth int) error {
	need := tableBytesFor(rel.Count())
	if e.lim.reserve(need) {
		defer e.lim.release(need)
		e.kern.probeFlat(&e.arenas[w], rel, st)
		return nil
	}
	lo, hi := e.indexSpan(rel)
	if depth >= maxRestageDepth || lo >= hi {
		return e.streamProbe(rel, st)
	}
	return e.restage(w, rel, st, lo, hi, depth)
}

// indexSpan scans a bucket and returns the minimum and maximum S index
// its references name (every reference in a bucket points into one S
// partition, so the indexes are comparable).
func (e *probeEnv) indexSpan(rel *Relation) (lo, hi int) {
	lo, hi = int(^uint(0)>>1), -1
	for x := 0; x < rel.Count(); x++ {
		ptr := DecodeSPtr(rel.Object(x))
		idx := e.db.S[ptr.Part].IndexOf(ptr.Off)
		lo, hi = min(lo, idx), max(hi, idx)
	}
	return lo, hi
}

// restage re-partitions one oversized bucket into sub-buckets on disk —
// the spill path of the dynamic hybrid-hash design. The fan-out is just
// large enough that an average sub-bucket's table fits the current
// grant; skew that concentrates references recurses, narrowing the
// S-index span every pass (min and max always separate), until each
// sub-bucket either fits or has collapsed onto a single hot key.
func (e *probeEnv) restage(w int, rel *Relation, st *JoinStats, lo, hi, depth int) error {
	span := hi - lo + 1
	budget := max(e.lim.budgetNow(), 1)
	sub := int((tableBytesFor(rel.Count()) + budget - 1) / budget)
	sub = max(min(sub, maxRestageFanout, span), 2)

	cnts := make([]int64, sub)
	subIdx := func(ptr SPtr) int {
		return rankBucket(e.db.S[ptr.Part].IndexOf(ptr.Off)-lo, sub, span)
	}
	for x := 0; x < rel.Count(); x++ {
		cnts[subIdx(DecodeSPtr(rel.Object(x)))]++
	}
	aps := make([]*Appender, sub)
	defer func() {
		for _, ap := range aps {
			if ap != nil {
				ap.Relation().Segment().Delete()
			}
		}
	}()
	for b := 0; b < sub; b++ {
		if cnts[b] == 0 {
			continue
		}
		r, err := e.db.tmpRelation(e.tmpDir,
			fmt.Sprintf("rs_%d_%d.seg", depth, e.seq.Add(1)), int(cnts[b])+1)
		if err != nil {
			return err
		}
		e.lim.tel.TempFiles.Add(1)
		aps[b] = NewAppender(r)
	}
	for x := 0; x < rel.Count(); x++ {
		obj := rel.Object(x)
		if err := aps[subIdx(DecodeSPtr(obj))].Append(obj); err != nil {
			return err
		}
	}
	e.lim.tel.Restages.Add(1)
	e.lim.tel.RestagedRefs.Add(int64(rel.Count()))
	for b := 0; b < sub; b++ {
		if aps[b] == nil {
			continue
		}
		aps[b].Seal()
		if err := e.probe(w, aps[b].Relation(), st, depth+1); err != nil {
			return err
		}
		aps[b].Relation().Segment().Delete()
		aps[b] = nil
	}
	return nil
}

// streamProbe joins one bucket without ever building its table: the
// bucket is processed in grant-sized chunks whose handles are sorted by
// S address, so memory is bounded by one chunk's handle array while the
// probe still walks S in ascending order within each chunk — and the
// ordered walk is batch-gathered like every other kernel. Correctness
// does not depend on the order — Pairs and Signature fold as
// commutative sums — so the result stays bit-identical.
func (e *probeEnv) streamProbe(rel *Relation, st *JoinStats) error {
	e.lim.tel.StreamProbes.Add(1)
	n := rel.Count()
	chunk := n
	if e.lim.bounded() {
		chunk = int(min(int64(n), max(e.lim.budgetNow()/streamHandleBytes, 1)))
	}
	bytes := int64(chunk) * streamHandleBytes
	if !e.lim.reserve(bytes) {
		// A grant below one handle: degenerate, but still bounded — scan
		// in file order with no auxiliary memory at all.
		b := e.kern.newBatch()
		for x := 0; x < n; x++ {
			b.add(rel.Object(x), st)
		}
		b.flush(st)
		return nil
	}
	defer e.lim.release(bytes)
	handles := make([]int32, chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		h := handles[:hi-lo]
		for i := range h {
			h[i] = int32(lo + i)
		}
		pheap.Sort(h, func(a, b int32) bool {
			return DecodeSPtr(rel.Object(int(a))).Off < DecodeSPtr(rel.Object(int(b))).Off
		})
		b := e.kern.newBatch()
		for _, x := range h {
			b.add(rel.Object(int(x)), st)
		}
		b.flush(st)
	}
	return nil
}

// HybridHash runs the parallel pointer-based hybrid-hash join on an
// ephemeral GOMAXPROCS-sized pool with no probe-memory bound.
func (db *DB) HybridHash(tmpDir string, k int, residentFrac float64) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.hybridHash(context.Background(), p, tmpDir, k, residentFrac, kernelConfig{}, newMemLimiter(0, nil, nil))
	})
}

// hybridHash: references into a resident prefix of each S partition
// (residentFrac of its objects) join immediately during the scan
// morsels and never touch temporary storage; the remainder goes through
// Grace-style ordered buckets (radix-partitioned like grace), probed
// under lim's memory grant.
func (db *DB) hybridHash(ctx context.Context, p *exec.Pool, tmpDir string, k int, residentFrac float64, kc kernelConfig, lim *memLimiter) (JoinStats, error) {
	if k < 1 {
		return JoinStats{}, fmt.Errorf("mstore: HybridHash needs k >= 1, got %d", k)
	}
	if residentFrac < 0 || residentFrac > 1 {
		return JoinStats{}, fmt.Errorf("mstore: residentFrac %g out of [0,1]", residentFrac)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	residentUpTo := make([]int, d)
	for j := 0; j < d; j++ {
		residentUpTo[j] = int(residentFrac * float64(db.S[j].Count()))
	}
	bj := &bucketedJoin{
		db: db, tmpDir: tmpDir, prefix: "hh", k: k, kc: kc.withDefaults(), lim: lim,
		bucketOf: func(ptr SPtr) int {
			rel := db.S[ptr.Part]
			lo := residentUpTo[ptr.Part]
			return rankBucket(rel.IndexOf(ptr.Off)-lo, k, rel.Count()-lo)
		},
		resident: func(ptr SPtr) bool {
			return db.S[ptr.Part].IndexOf(ptr.Off) < residentUpTo[ptr.Part]
		},
	}
	return bj.run(ctx, p)
}
