package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/mstore"
	"mmjoin/internal/planner"
	"mmjoin/internal/relation"
	"mmjoin/internal/shard"
)

// The shard panel measures the scatter-gather serving tier against the
// single mapped store it was split from: the same logical relation
// joined once through one DB and once through an N-shard router, per
// algorithm plus auto (per-shard planning). Alongside the speedup it
// records the merge overhead — the wall-clock the router spends beyond
// its slowest shard (fan-out, fold, and scheduling) — and verifies the
// merged JoinStats are bit-identical to the single-store run.

// shardSlice is one shard's contribution at the best sharded run.
type shardSlice struct {
	Shard     string `json:"shard"`
	Algorithm string `json:"algorithm"`
	Pairs     int64  `json:"pairs"`
	ElapsedNs int64  `json:"elapsed_ns"`
}

type shardRunStat struct {
	Algorithm     string `json:"algorithm"`
	SingleBestNs  int64  `json:"single_best_ns"`
	ShardedBestNs int64  `json:"sharded_best_ns"`
	// MaxShardNs is the slowest shard at the best sharded run;
	// MergeOverheadNs is sharded_best_ns minus it — what scatter,
	// fold, and goroutine scheduling cost beyond the critical shard.
	MaxShardNs      int64 `json:"max_shard_ns"`
	MergeOverheadNs int64 `json:"merge_overhead_ns"`
	// Speedup is single_best_ns over sharded_best_ns (>1: the sharded
	// tier wins; bounded by host CPUs — see the panel note).
	Speedup        float64      `json:"speedup_single_vs_sharded"`
	SignatureMatch bool         `json:"signature_match"`
	PerShard       []shardSlice `json:"per_shard"`
}

type shardPanel struct {
	Shards          int            `json:"shards"`
	Objects         int            `json:"objects"`
	D               int            `json:"d"`
	WorkersPerShard int            `json:"workers_per_shard"`
	Note            string         `json:"note"`
	Runs            []shardRunStat `json:"runs"`
}

// runShardPanel builds a source database, splits it, and times both
// sides. The result merges into the existing report at out (other
// panels are preserved).
func runShardPanel(objects, d, shards, runs int, out string) error {
	dir, err := os.MkdirTemp("", "mmjoin-bench-shard")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	srcDir := filepath.Join(dir, "src")
	src, err := mstore.CreateDB(srcDir, d, objects, objects, 64, 42)
	if err != nil {
		return err
	}
	defer src.Close()
	want := src.ExpectedStats()

	outs := make([]string, shards)
	for k := range outs {
		outs[k] = filepath.Join(dir, fmt.Sprintf("shard-%d", k))
	}
	m, err := shard.Split(srcDir, d, outs)
	if err != nil {
		return err
	}
	mcfg := machine.DefaultConfig()
	mcfg.D = d
	pl := planner.New(model.Calibrate(mcfg, 60, 1), nil)
	router, err := shard.Open(m, shard.Config{
		PlanFunc: func(id string, w *relation.Workload, req mstore.JoinRequest) (join.Algorithm, error) {
			choice, err := pl.ChooseFor(join.Request{
				Config: mcfg,
				Params: join.Params{Workload: w, MRproc: req.MRproc, K: req.K},
			})
			if err != nil {
				return 0, err
			}
			return choice.Best.Algorithm, nil
		},
	})
	if err != nil {
		return err
	}
	defer router.Close()

	const mrproc = 1 << 20
	panel := &shardPanel{
		Shards: shards, Objects: objects, D: d,
		WorkersPerShard: runtime.GOMAXPROCS(0),
		Note: fmt.Sprintf("wall-clock best of %d; a scatter-gather join fans out over "+
			"%d shard pools on one host (num_cpu=%d), so on a single-CPU host the shards "+
			"time-slice one core and the speedup is <= 1 by construction — the regression "+
			"surface here is merge_overhead_ns and the signature match, not the speedup",
			runs, shards, runtime.NumCPU()),
	}

	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash, join.Auto}
	for _, alg := range algs {
		st := shardRunStat{Algorithm: alg.String(), SignatureMatch: true}

		// Single-store side: auto is planned per run through the same
		// planner the router's shards use.
		singleAlg := alg
		if alg == join.Auto {
			w, err := src.Workload()
			if err != nil {
				return err
			}
			choice, err := pl.ChooseFor(join.Request{
				Config: mcfg,
				Params: join.Params{Workload: w, MRproc: mrproc},
			})
			if err != nil {
				return err
			}
			singleAlg = choice.Best.Algorithm
		}
		st.SingleBestNs = int64(1<<63 - 1)
		for run := 0; run < runs; run++ {
			tmp := filepath.Join(dir, fmt.Sprintf("single-%s-%d", alg, run))
			start := time.Now()
			got, err := src.Run(mstore.JoinRequest{Algorithm: singleAlg, MRproc: mrproc, TmpDir: tmp})
			el := time.Since(start).Nanoseconds()
			if err != nil {
				return fmt.Errorf("shard panel single %v: %w", alg, err)
			}
			if got != want {
				return fmt.Errorf("shard panel single %v: stats %+v, want %+v", alg, got, want)
			}
			st.SingleBestNs = min(st.SingleBestNs, el)
		}

		st.ShardedBestNs = int64(1<<63 - 1)
		for run := 0; run < runs; run++ {
			tmp := filepath.Join(dir, fmt.Sprintf("sharded-%s-%d", alg, run))
			start := time.Now()
			got, details, err := router.RunShards(mstore.JoinRequest{
				Algorithm: alg, MRproc: mrproc, TmpDir: tmp,
			})
			el := time.Since(start).Nanoseconds()
			if err != nil {
				return fmt.Errorf("shard panel sharded %v: %w", alg, err)
			}
			if got != want {
				st.SignatureMatch = false
				return fmt.Errorf("shard panel sharded %v: merged %+v, want %+v (bit-identity violated)",
					alg, got, want)
			}
			if el < st.ShardedBestNs {
				st.ShardedBestNs = el
				st.MaxShardNs = 0
				st.PerShard = st.PerShard[:0]
				for _, det := range details {
					st.MaxShardNs = max(st.MaxShardNs, det.ElapsedNs)
					st.PerShard = append(st.PerShard, shardSlice{
						Shard: det.Shard, Algorithm: det.Algorithm,
						Pairs: det.Pairs, ElapsedNs: det.ElapsedNs,
					})
				}
			}
		}
		st.MergeOverheadNs = st.ShardedBestNs - st.MaxShardNs
		st.Speedup = round2(float64(st.SingleBestNs) / float64(st.ShardedBestNs))
		panel.Runs = append(panel.Runs, st)
		fmt.Printf("shard %-12s: single %.0fms  sharded %.0fms (merge %.2fms)  speedup %.2fx\n",
			alg, time.Duration(st.SingleBestNs).Seconds()*1000,
			time.Duration(st.ShardedBestNs).Seconds()*1000,
			time.Duration(st.MergeOverheadNs).Seconds()*1000, st.Speedup)
	}

	return mergeShardPanel(out, panel)
}

// mergeShardPanel read-modify-writes the shard panel into the mstore
// report, preserving every other panel in the file. A missing file gets
// a minimal report holding only the shard panel.
func mergeShardPanel(path string, panel *shardPanel) error {
	r := mstoreReport{Schema: "mmjoin-bench-mstore/v1", Host: currentHost()}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("parsing existing report %s: %w", path, err)
		}
	}
	r.Shard = panel
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("shard panel merged into %s\n", path)
	return nil
}
