package conformance

import (
	"flag"
	"math"
	"runtime"
	"sync"
	"testing"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/sweep"
)

// sweepParallel is the host worker count for the panel sweeps (the
// simulated results are identical at any setting; this only changes
// wall-clock). Override with: go test ./internal/conformance -args
// -sweep.parallel=1.
var sweepParallel = flag.Int("sweep.parallel", runtime.GOMAXPROCS(0),
	"host worker goroutines per conformance sweep panel")

// The three panel tests share one experiment (workload generation plus
// machine calibration) and re-run the paper's sweeps through
// internal/sweep, so the procedure under test is exactly the one behind
// cmd/sweep.
var shared struct {
	once sync.Once
	e    *core.Experiment
	err  error
}

func experiment(t *testing.T) *core.Experiment {
	t.Helper()
	if testing.Short() {
		t.Skip("fig5 sweeps are the slow tier; skipped under -short")
	}
	shared.once.Do(func() {
		shared.e, shared.err = NewExperiment()
	})
	if shared.err != nil {
		t.Fatalf("experiment: %v", shared.err)
	}
	return shared.e
}

func sweepPanel(t *testing.T, alg join.Algorithm) []core.Comparison {
	t.Helper()
	cs, err := sweep.Memory(experiment(t), alg, nil, sweep.Options{Parallelism: *sweepParallel})
	if err != nil {
		t.Fatalf("sweep %v: %v", alg, err)
	}
	if len(cs) == 0 {
		t.Fatalf("sweep %v: no points", alg)
	}
	return cs
}

// assertMonotoneImprovement checks that measured time never rises by more
// than MonotoneSlack as memory grows — Fig. 5's "more memory never
// hurts" shape.
func assertMonotoneImprovement(t *testing.T, cs []core.Comparison) {
	t.Helper()
	for i := 1; i < len(cs); i++ {
		limit := float64(cs[i-1].Measured) * (1 + MonotoneSlack)
		if float64(cs[i].Measured) > limit {
			t.Errorf("measured time rises with memory: %.2fs at %.3f but %.2fs at %.3f",
				cs[i-1].Measured.Seconds(), cs[i-1].MemFrac,
				cs[i].Measured.Seconds(), cs[i].MemFrac)
		}
	}
}

// TestFig5a asserts the nested-loops panel: monotone improvement with
// per-process memory, strong overall sensitivity (the paper's curve
// falls by roughly an order of magnitude across the axis), and
// model-vs-simulation agreement in the memory-starved regime where the
// model's assumptions hold.
func TestFig5a(t *testing.T) {
	cs := sweepPanel(t, join.NestedLoops)
	assertMonotoneImprovement(t, cs)
	first, last := cs[0].Measured, cs[len(cs)-1].Measured
	if first < 5*last {
		t.Errorf("memory sensitivity too weak: %.2fs at %.3f vs %.2fs at %.3f (want ≥ 5×)",
			first.Seconds(), cs[0].MemFrac, last.Seconds(), cs[len(cs)-1].MemFrac)
	}
	for _, c := range cs {
		if c.MemFrac > NLStarvedMax {
			continue
		}
		if e := math.Abs(c.RelError()); e > NLStarvedBand {
			t.Errorf("model error %.1f%% at fraction %.3f exceeds %.0f%% starved-regime band",
				100*c.RelError(), c.MemFrac, 100*NLStarvedBand)
		}
	}
}

// TestFig5b asserts the sort-merge panel: monotone improvement, the
// NPASS staircase (pass count non-increasing in memory, with at least
// one discontinuity inside the panel), and model agreement across the
// whole axis.
func TestFig5b(t *testing.T) {
	cs := sweepPanel(t, join.SortMerge)
	assertMonotoneImprovement(t, cs)
	passes := make(map[int]bool)
	for i, c := range cs {
		if c.Result.NPass <= 0 {
			t.Fatalf("no NPASS recorded at fraction %.3f", c.MemFrac)
		}
		passes[c.Result.NPass] = true
		if i > 0 && c.Result.NPass > cs[i-1].Result.NPass {
			t.Errorf("NPASS rises with memory: %d at %.3f but %d at %.3f",
				cs[i-1].Result.NPass, cs[i-1].MemFrac, c.Result.NPass, c.MemFrac)
		}
		if e := math.Abs(c.RelError()); e > SMBand {
			t.Errorf("model error %.1f%% at fraction %.3f exceeds %.0f%% band",
				100*c.RelError(), c.MemFrac, 100*SMBand)
		}
	}
	if len(passes) < 2 {
		t.Errorf("panel shows a single NPASS value %v; expected the Fig. 5(b) pass discontinuity",
			passes)
	}
}

// TestFig5c asserts the Grace panel: the thrashing knee at the
// memory-starved end (the panel's lowest fraction measures at least
// GraceKneeFactor times the plateau minimum), monotone improvement and
// model agreement on the plateau, and — at the knee itself — only the
// error's sign: the urn model underpredicts measured thrash, matching
// the direction the paper reports.
func TestFig5c(t *testing.T) {
	cs := sweepPanel(t, join.Grace)
	knee := cs[0]
	plateauMin := knee.Measured
	var plateau []core.Comparison
	for _, c := range cs {
		if c.MemFrac >= GracePlateauMin {
			plateau = append(plateau, c)
			if c.Measured < plateauMin {
				plateauMin = c.Measured
			}
		}
	}
	if len(plateau) == 0 {
		t.Fatal("no plateau points at or above GracePlateauMin")
	}
	if float64(knee.Measured) < GraceKneeFactor*float64(plateauMin) {
		t.Errorf("no thrashing knee: %.2fs at %.3f vs plateau minimum %.2fs (want ≥ %.0f×)",
			knee.Measured.Seconds(), knee.MemFrac, plateauMin.Seconds(), GraceKneeFactor)
	}
	if knee.RelError() >= 0 {
		t.Errorf("model should underpredict the knee's thrash; got %+.1f%% at %.3f",
			100*knee.RelError(), knee.MemFrac)
	}
	assertMonotoneImprovement(t, plateau)
	for _, c := range plateau {
		if e := math.Abs(c.RelError()); e > GracePlateauBand {
			t.Errorf("model error %.1f%% at fraction %.3f exceeds %.0f%% plateau band",
				100*c.RelError(), c.MemFrac, 100*GracePlateauBand)
		}
	}
}

// TestFig5Orderings asserts the cross-algorithm claims at the memory
// extremes: with memory scarce the hash-based algorithm wins and nested
// loops is worst (grace < sort-merge < nested loops at 5% of |R|·r);
// with memory abundant nested loops wins (nested loops < grace <
// sort-merge at 70%).
func TestFig5Orderings(t *testing.T) {
	e := experiment(t)
	measure := func(alg join.Algorithm, frac float64) float64 {
		t.Helper()
		res, err := e.Measure(alg, e.ParamsForFraction(frac))
		if err != nil {
			t.Fatalf("%v at %.2f: %v", alg, frac, err)
		}
		return res.Elapsed.Seconds()
	}
	assertOrder := func(frac float64, order []join.Algorithm) {
		t.Helper()
		prev := -1.0
		prevAlg := join.Algorithm(-1)
		for _, alg := range order {
			s := measure(alg, frac)
			if s <= prev {
				t.Errorf("at fraction %.2f want %v slower than %v; got %.2fs vs %.2fs",
					frac, alg, prevAlg, s, prev)
			}
			prev, prevAlg = s, alg
		}
	}
	assertOrder(0.05, []join.Algorithm{join.Grace, join.SortMerge, join.NestedLoops})
	assertOrder(0.70, []join.Algorithm{join.NestedLoops, join.Grace, join.SortMerge})
}
