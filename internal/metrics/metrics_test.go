package metrics

import (
	"testing"

	"mmjoin/internal/sim"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Error("nil counter should stay zero")
	}
	h := r.Histogram("y")
	h.Observe(sim.Second)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should stay empty")
	}
	r.Gauge("g", func() float64 { return 1 })
	r.Dynamic(func(emit func(string, float64)) { emit("d", 2) })
	r.Event(0, "p", "l")
	r.Sample(0)
	if r.Samples() != nil || r.Events() != nil || r.Counters() != nil || r.Histograms() != nil {
		t.Error("nil registry should report nothing")
	}
	var s *Sampler
	s.Stop() // must not panic
}

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("disk.stalls")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	if c.Name() != "disk.stalls" {
		t.Errorf("Name = %q", c.Name())
	}
	if len(r.Counters()) != 1 {
		t.Errorf("Counters len = %d", len(r.Counters()))
	}
}

func TestHistogramBasics(t *testing.T) {
	r := New()
	h := r.Histogram("svc")
	obs := []sim.Time{
		3 * sim.Millisecond,
		5 * sim.Millisecond,
		8 * sim.Millisecond,
		20 * sim.Millisecond,
	}
	for _, v := range obs {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 3*sim.Millisecond || h.Max() != 20*sim.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if want := 9 * sim.Millisecond; h.Mean() != want {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
	if h.Sum() != 36*sim.Millisecond {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := New().Histogram("q")
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * sim.Millisecond)
	}
	if h.Quantile(0) != h.Min() {
		t.Errorf("q0 = %v, want min %v", h.Quantile(0), h.Min())
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("q1 = %v, want max %v", h.Quantile(1), h.Max())
	}
	// Quantiles must be monotone and inside [min, max].
	prev := sim.Time(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < h.Min() || v > h.Max() {
			t.Errorf("Quantile(%v) = %v outside [%v, %v]", q, v, h.Min(), h.Max())
		}
		if v < prev {
			t.Errorf("Quantile(%v) = %v below previous %v", q, v, prev)
		}
		prev = v
	}
	// The median of 1..100 ms must land in the right bucket region:
	// [32ms, 64ms) contains ranks 33..63, and rank 50 is inside it.
	med := h.Quantile(0.5)
	if med < 32*sim.Millisecond || med >= 64*sim.Millisecond {
		t.Errorf("median %v outside the containing bucket [32ms, 64ms)", med)
	}
}

func TestHistogramSingleValueQuantiles(t *testing.T) {
	h := New().Histogram("one")
	h.Observe(7 * sim.Millisecond)
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		if v := h.Quantile(q); v != 7*sim.Millisecond {
			t.Errorf("Quantile(%v) = %v, want 7ms (clamped to min=max)", q, v)
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := New().Histogram("neg")
	h.Observe(-sim.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative observation not clamped: min=%v max=%v n=%d",
			h.Min(), h.Max(), h.Count())
	}
}

func TestSampleCapturesGaugesAndDynamics(t *testing.T) {
	r := New()
	v := 1.0
	r.Gauge("static", func() float64 { return v })
	r.Dynamic(func(emit func(string, float64)) {
		emit("dyn.a", v*10)
		emit("dyn.b", v*100)
	})
	r.Sample(0)
	v = 2
	r.Sample(sim.Second)
	ss := r.Samples()
	if len(ss) != 2 {
		t.Fatalf("samples = %d", len(ss))
	}
	if ss[0].Values["static"] != 1 || ss[1].Values["static"] != 2 {
		t.Errorf("static gauge wrong: %v", ss)
	}
	if ss[1].Values["dyn.a"] != 20 || ss[1].Values["dyn.b"] != 200 {
		t.Errorf("dynamic gauges wrong: %v", ss[1].Values)
	}
	if ss[1].At != sim.Second {
		t.Errorf("At = %v", ss[1].At)
	}
}

func TestSamplerTicksAndStops(t *testing.T) {
	k := sim.NewKernel()
	r := New()
	busy := 0.0
	r.Gauge("busy", func() float64 { return busy })
	s := r.StartSampler(k, 100*sim.Millisecond)
	k.Spawn("worker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			busy = float64(i)
			p.Advance(100 * sim.Millisecond)
		}
		s.Stop()
	})
	end := k.Run()
	// Run must terminate (the sampler honors Stop) shortly after the
	// worker's last advance — within one tick.
	if end > 1100*sim.Millisecond {
		t.Errorf("kernel ran to %v; sampler did not stop", end)
	}
	n := len(r.Samples())
	if n < 10 || n > 12 {
		t.Errorf("samples = %d, want ~11 over 1s at 100ms", n)
	}
	// Ticks must be evenly spaced.
	for i, smp := range r.Samples() {
		if want := sim.Time(i) * 100 * sim.Millisecond; smp.At != want {
			t.Errorf("sample %d at %v, want %v", i, smp.At, want)
		}
	}
}

func TestSamplerDefaultTick(t *testing.T) {
	k := sim.NewKernel()
	r := New()
	s := r.StartSampler(k, 0) // 0 selects DefaultTick
	k.Spawn("w", func(p *sim.Proc) {
		p.Advance(DefaultTick * 3)
		s.Stop()
	})
	k.Run()
	if n := len(r.Samples()); n < 3 {
		t.Errorf("samples = %d, want >= 3 with the default tick", n)
	}
}

func TestStartSamplerNilSafe(t *testing.T) {
	var r *Registry
	if s := r.StartSampler(sim.NewKernel(), 0); s != nil {
		t.Error("nil registry should return a nil sampler")
	}
	r2 := New()
	if s := r2.StartSampler(nil, 0); s != nil {
		t.Error("nil kernel should return a nil sampler")
	}
}
