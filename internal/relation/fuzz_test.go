package relation

import (
	"testing"
)

// FuzzGenerate throws arbitrary specifications at the workload generator
// and checks that every accepted spec yields a structurally sound
// workload: partition sizes summing to the relation cardinalities, every
// reference resolving to a real S object, and generation being a pure
// function of the spec (same spec ⇒ identical signature). The seed
// corpus covers every distribution; `go test` runs it, and
// `go test -fuzz FuzzGenerate ./internal/relation` explores further.
func FuzzGenerate(f *testing.F) {
	f.Add(100, 100, 16, 16, 8, 2, int(Uniform), int64(1), 1.5, 0.8, 0.4)
	f.Add(300, 200, 128, 128, 8, 4, int(Zipf), int64(7), 1.2, 0.0, 0.0)
	f.Add(64, 500, 32, 64, 4, 3, int(Local), int64(-3), 0.0, 0.5, 0.0)
	f.Add(500, 64, 24, 8, 8, 5, int(HotPartition), int64(0), 0.0, 0.0, 0.9)
	f.Fuzz(func(t *testing.T, nr, ns, rsize, ssize, ptr, d, dist int,
		seed int64, theta, localFrac, hotFrac float64) {
		if nr > 1<<14 || ns > 1<<14 || d > 64 || rsize > 1<<12 || ssize > 1<<12 {
			t.Skip("cap work per input")
		}
		spec := Spec{
			NR: nr, NS: ns,
			RSize: rsize, SSize: ssize, PtrSize: ptr,
			D:    d,
			Dist: Distribution(dist), Seed: seed,
			ZipfTheta: theta, LocalFrac: localFrac, HotFrac: hotFrac,
		}
		if spec.Validate() != nil {
			return // invalid specs must be rejected, not generated
		}
		w, err := Generate(spec)
		if err != nil {
			t.Fatalf("validated spec rejected by Generate: %v", err)
		}
		if len(w.Refs) != d {
			t.Fatalf("%d partitions for D=%d", len(w.Refs), d)
		}
		totalR := 0
		for i, part := range w.Refs {
			if len(part) != w.SizeR(i) {
				t.Fatalf("partition %d has %d objects, SizeR says %d", i, len(part), w.SizeR(i))
			}
			totalR += len(part)
			for x, ref := range part {
				if ref.Part < 0 || int(ref.Part) >= d {
					t.Fatalf("R%d[%d] points at partition %d of %d", i, x, ref.Part, d)
				}
				if ref.Index < 0 || int(ref.Index) >= w.SizeS(int(ref.Part)) {
					t.Fatalf("R%d[%d] points at S%d[%d], partition size %d",
						i, x, ref.Part, ref.Index, w.SizeS(int(ref.Part)))
				}
			}
		}
		if totalR != nr {
			t.Fatalf("partitions hold %d objects, NR=%d", totalR, nr)
		}
		sig1, pairs := w.JoinSignature()
		if pairs != int64(nr) {
			t.Fatalf("pointer join yields %d pairs, want one per R object (%d)", pairs, nr)
		}
		w2 := MustGenerate(spec)
		sig2, _ := w2.JoinSignature()
		if sig1 != sig2 {
			t.Fatalf("same spec generated different workloads (%#x vs %#x)", sig1, sig2)
		}
	})
}
