package sim

import "testing"

// BenchmarkDispatchPingPong measures one cross-process event dispatch:
// two processes alternate equal Advances so every event hands control to
// the other goroutine — the kernel's hot path whenever processes contend
// on resources or exchange messages. Reported per op: two dispatches.
func BenchmarkDispatchPingPong(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				p.Advance(Microsecond)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkDispatchSelf measures a process re-dispatching itself with no
// other runnable process — the common inner-loop case of an algorithm
// advancing between touches without contention.
func BenchmarkDispatchSelf(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for j := 0; j < b.N; j++ {
			p.Advance(Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkDispatchContended measures dispatch under a shared unit
// resource: eight processes serializing through one Resource, so every
// acquisition blocks and every release performs a wake-up.
func BenchmarkDispatchContended(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	r := NewResource("res")
	for i := 0; i < 8; i++ {
		k.Spawn("u", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				r.Use(p, Microsecond)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}
