package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mmjoin/internal/mstore"
)

// newTestServer creates a small database and a server over it. The
// caller's cfg may pre-set budget/queue/grant knobs; Dir, D, and a fast
// calibration are filled in here.
func newTestServer(t *testing.T, objects int, cfg Config) *Server {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := mstore.CreateDB(dir, 3, objects, objects, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	db.Close() // the server maps it afresh
	cfg.Dir = dir
	cfg.D = 3
	if cfg.CalibrationOps == 0 {
		cfg.CalibrationOps = 60
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// expectedStats reopens the server's database for ground truth (the
// server itself exposes only the Store interface).
func expectedStats(t *testing.T, s *Server) mstore.JoinStats {
	t.Helper()
	db, err := mstore.OpenDB(s.cfg.Dir, s.cfg.D)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	return db.ExpectedStats()
}

func postJoin(t *testing.T, ts *httptest.Server, req JoinRequest) (*http.Response, JoinResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JoinResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, jr
}

func TestServeJoinAuto(t *testing.T) {
	s := newTestServer(t, 1500, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := expectedStats(t, s)
	resp, jr := postJoin(t, ts, JoinRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if jr.Pairs != want.Pairs || jr.Signature != fmt.Sprintf("%016x", want.Signature) {
		t.Fatalf("result %+v, want %+v", jr, want)
	}
	if len(jr.Plan) == 0 || jr.Plan[0].Algorithm != jr.Algorithm {
		t.Fatalf("auto mode must return the plan, cheapest first: %+v", jr.Plan)
	}
	if jr.PredictedNs <= 0 {
		t.Fatalf("missing prediction: %+v", jr)
	}
}

func TestServeJoinEachAlgorithm(t *testing.T) {
	s := newTestServer(t, 1200, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := expectedStats(t, s)
	for _, alg := range []string{"nested-loops", "sort-merge", "grace", "hybrid-hash"} {
		resp, jr := postJoin(t, ts, JoinRequest{Algorithm: alg, MemBytes: 256 << 10})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if jr.Algorithm != alg {
			t.Fatalf("%s: executed %s", alg, jr.Algorithm)
		}
		if jr.Pairs != want.Pairs || jr.Signature != fmt.Sprintf("%016x", want.Signature) {
			t.Fatalf("%s: result %+v, want %+v", alg, jr, want)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJoin(t, ts, JoinRequest{Algorithm: "traditional-grace"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: status %d", resp.StatusCode)
	}
	// A grant above the whole budget can never be admitted.
	resp, _ = postJoin(t, ts, JoinRequest{MemBytes: s.cfg.MemBudget + 1})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized grant: status %d", resp.StatusCode)
	}
	// Wire K sizes bucket state outside the admission grant, so absurd
	// values are rejected instead of trusted.
	resp, _ = postJoin(t, ts, JoinRequest{Algorithm: "grace", K: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative k: status %d", resp.StatusCode)
	}
	resp, _ = postJoin(t, ts, JoinRequest{Algorithm: "grace", K: s.store.CountR() + 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("absurd k: status %d", resp.StatusCode)
	}
}

// TestServeSaturationBackpressure fills the budget, shows a queue-less
// server answering 429 with Retry-After, then shows a queued request
// waiting out the congestion and succeeding.
func TestServeSaturationBackpressure(t *testing.T) {
	const budget = 1 << 20
	s := newTestServer(t, 300, Config{MemBudget: budget, MaxQueue: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.adm.Acquire(context.Background(), budget); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJoin(t, ts, JoinRequest{MemBytes: budget})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	s.adm.Release(budget)
	resp, jr := postJoin(t, ts, JoinRequest{MemBytes: budget})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
	if jr.Pairs != expectedStats(t, s).Pairs {
		t.Fatalf("wrong result after congestion: %+v", jr)
	}
}

func TestServeQueuedRequestWaits(t *testing.T) {
	const budget = 1 << 20
	s := newTestServer(t, 300, Config{MemBudget: budget})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.adm.Acquire(context.Background(), budget); err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		jr   JoinResponse
	}
	done := make(chan result, 1)
	go func() {
		resp, jr := postJoin(t, ts, JoinRequest{MemBytes: budget})
		done <- result{resp.StatusCode, jr}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	s.adm.Release(budget)
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("queued request: status %d", r.code)
	}
	if r.jr.QueueWaitNs <= 0 {
		t.Fatalf("queued request reports no wait: %+v", r.jr)
	}
}

// TestServeCancellationMidJoin deadlines a request while its join is
// executing: the handler answers 503, the abandoned join finishes in the
// background, and its memory grant is returned.
func TestServeCancellationMidJoin(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.preJoin = func() {
		once.Do(func() { close(entered) })
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postJoin(t, ts, JoinRequest{TimeoutMs: 150})
		done <- resp.StatusCode
	}()
	<-entered // the join goroutine is running
	if code := <-done; code != http.StatusServiceUnavailable {
		t.Fatalf("abandoned request: status %d, want 503", code)
	}
	// The grant stays charged while the abandoned join still runs…
	if st := s.adm.Stats(); st.UsedBytes == 0 {
		t.Fatal("grant released while join still executing")
	}
	close(block)
	// …and is returned once it completes (Drain waits for exactly that).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := s.adm.Stats(); st.UsedBytes != 0 {
		t.Fatalf("abandoned join leaked its grant: %+v", st)
	}
	if got := s.StatsSnapshot().Counters["join_abandoned"]; got != 1 {
		t.Fatalf("join_abandoned = %d", got)
	}
}

// TestServeGracefulDrain verifies drain semantics: in-flight joins
// complete, new ones are refused, healthz flips to 503.
func TestServeGracefulDrain(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.preJoin = func() {
		once.Do(func() { close(entered) })
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := make(chan result2, 1)
	go func() {
		resp, jr := postJoin(t, ts, JoinRequest{})
		inflight <- result2{resp.StatusCode, jr}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitDraining(t, s)

	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	if resp, _ := postJoin(t, ts, JoinRequest{}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("join while draining: %d", resp.StatusCode)
	}
	// Lookups read the mapping too, so drain refuses them as well.
	if resp, err := ts.Client().Get(ts.URL + "/lookup?part=0&index=0"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lookup while draining: %d", resp.StatusCode)
	}

	close(block) // let the in-flight join finish
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	r := <-inflight
	if r.code != http.StatusOK || r.jr.Pairs != expectedStats(t, s).Pairs {
		t.Fatalf("in-flight join during drain: %+v", r)
	}
}

// TestServeDrainWaitsForAdmissionQueuedJoin pins the drain/inflight
// ordering: a request still waiting in the admission queue has not yet
// spawned its join goroutine, but it registered with the drain waiter on
// arrival, so Drain must not return — and the caller must not unmap the
// database — until that request has run to completion.
func TestServeDrainWaitsForAdmissionQueuedJoin(t *testing.T) {
	const budget = 1 << 20
	s := newTestServer(t, 300, Config{MemBudget: budget})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.adm.Acquire(context.Background(), budget); err != nil {
		t.Fatal(err)
	}
	queued := make(chan result2, 1)
	go func() {
		resp, jr := postJoin(t, ts, JoinRequest{MemBytes: budget})
		queued <- result2{resp.StatusCode, jr}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitDraining(t, s)
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (err=%v) while a request sat in the admission queue", err)
	case <-time.After(50 * time.Millisecond):
	}

	s.adm.Release(budget) // un-gate the queued join
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	r := <-queued
	if r.code != http.StatusOK || r.jr.Pairs != expectedStats(t, s).Pairs {
		t.Fatalf("queued join during drain: %+v", r)
	}
}

type result2 struct {
	code int
	jr   JoinResponse
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeLookup(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want, err := s.store.Lookup(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/lookup?part=1&index=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lr LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.RID != want.RID || lr.SPart != want.SPart || lr.SIndex != want.SIndex || lr.SWord != want.SWord {
		t.Fatalf("lookup %+v, want %+v", lr, want)
	}
	for _, bad := range []string{"/lookup?part=9&index=0", "/lookup?part=0&index=999999", "/lookup"} {
		resp, err := ts.Client().Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: accepted", bad)
		}
	}
}

func TestServeStats(t *testing.T) {
	s := newTestServer(t, 300, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postJoin(t, ts, JoinRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Counters["join_requests_total"] < 1 {
		t.Fatalf("counters %+v", st.Counters)
	}
	if st.Admission.BudgetBytes != s.cfg.MemBudget || st.Admission.Admitted < 1 {
		t.Fatalf("admission %+v", st.Admission)
	}
	if st.DB.NR != s.store.CountR() || st.DB.D != 3 {
		t.Fatalf("db %+v", st.DB)
	}
	found := false
	for name, h := range st.Histograms {
		if len(name) > 12 && name[:12] == "join_latency" && h.Count >= 1 && h.MaxNs > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no join latency histogram: %+v", st.Histograms)
	}
}

// TestServeConcurrentClientsRace is the -race stress test: many clients
// issuing planner-chosen and explicit joins concurrently, every result
// checked against the store's ground truth, and the memory budget
// provably never exceeded.
func TestServeConcurrentClientsRace(t *testing.T) {
	const grant = 128 << 10
	// Workers: 2 saturates the shared morsel pool: 16 clients push joins
	// at a pool that executes at most 2 morsels at once, so the test
	// exercises many jobs interleaving on the same workers.
	s := newTestServer(t, 1000, Config{MemBudget: 3 * grant, DefaultGrant: grant, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := expectedStats(t, s)
	wantSig := fmt.Sprintf("%016x", want.Signature)
	algs := []string{"", "nested-loops", "sort-merge", "grace", "hybrid-hash"}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, jr := postJoin(t, ts, JoinRequest{
					Algorithm: algs[(g+i)%len(algs)],
					MemBytes:  grant,
				})
				switch resp.StatusCode {
				case http.StatusOK:
					if jr.Pairs != want.Pairs || jr.Signature != wantSig {
						errs <- fmt.Errorf("client %d: result %+v, want %+v", g, jr, want)
						return
					}
				case http.StatusTooManyRequests:
					// Backpressure is an acceptable answer under saturation.
				default:
					errs <- fmt.Errorf("client %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.adm.Stats()
	if st.PeakUsedBytes > 3*grant {
		t.Fatalf("memory budget exceeded under load: peak %d > %d", st.PeakUsedBytes, 3*grant)
	}
	if st.UsedBytes != 0 {
		t.Fatalf("grants leaked: %+v", st)
	}
	if st.Queued == 0 {
		t.Log("note: no request ever queued (budget admits 3 concurrent joins)")
	}
	// However many joins were in flight, live join execution stayed
	// bounded by the shared pool, not by the request count.
	pool := s.pool.Stats()
	if pool.Workers != 2 {
		t.Fatalf("pool workers = %d, want 2", pool.Workers)
	}
	if pool.PeakBusy > pool.Workers {
		t.Fatalf("peak pool occupancy %d exceeds pool size %d", pool.PeakBusy, pool.Workers)
	}
	if pool.Executed == 0 || pool.Jobs == 0 {
		t.Fatalf("pool never used: %+v", pool)
	}
	snap := s.StatsSnapshot()
	if snap.Pool.Workers != 2 {
		t.Fatalf("/stats pool %+v", snap.Pool)
	}
	if _, ok := snap.Gauges["pool_busy"]; !ok {
		t.Fatalf("/stats gauges missing pool_busy: %v", snap.Gauges)
	}
}
