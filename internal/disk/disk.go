// Package disk models a 1996-era disk drive under a simple Unix I/O path.
//
// The model reproduces the mechanisms behind the paper's measured
// machine-dependent function dtt(B, band): block-addressed geometry with a
// square-root seek curve, rotational latency, per-block transfer, a
// per-fault kernel overhead, and — crucially — deferred write-back through
// a pageout daemon that drains dirty blocks in shortest-seek-first batches.
// Deferred, reordered writes are why the paper's measured dttw lies below
// dttr; here the same gap emerges from the flusher rather than being
// asserted.
package disk

import (
	"fmt"
	"math"
	"sort"

	"mmjoin/internal/sim"
)

// Config describes the drive and the simulated kernel's I/O path.
type Config struct {
	BlockBytes        int      // virtual-memory page / transfer unit (paper: 4K)
	Blocks            int      // total blocks on the drive
	BlocksPerCylinder int      // blocks sharing a head position
	SeekMin           sim.Time // single-cylinder seek
	SeekMax           sim.Time // full-stroke seek
	Rotation          sim.Time // full platter rotation
	Transfer          sim.Time // one-block media transfer
	FaultOverhead     sim.Time // kernel page-fault + buffer handling per read
	WriteOverhead     sim.Time // pageout daemon handling per written block
	WriteRotFactor    float64  // fraction of avg rotational latency paid by reordered writes
	WriteQueue        int      // dirty blocks queued before writers stall
	WriteBatch        int      // dirty blocks drained per SSTF batch
}

// DefaultConfig returns parameters tuned so that the calibration harness
// produces dttr/dttw curves resembling the paper's Fig. 1(a): roughly
// 6 ms/block sequential for both, rising to ~22 ms (reads) and ~14 ms
// (writes) for random access in 12800-block bands.
func DefaultConfig() Config {
	return Config{
		BlockBytes:        4096,
		Blocks:            160000, // ~655 MB drive
		BlocksPerCylinder: 64,
		SeekMin:           4 * sim.Millisecond,
		SeekMax:           30 * sim.Millisecond,
		Rotation:          sim.Time(16667 * int64(sim.Microsecond)), // 3600 rpm
		Transfer:          sim.Time(1700 * int64(sim.Microsecond)),
		FaultOverhead:     4 * sim.Millisecond,
		WriteOverhead:     4 * sim.Millisecond,
		WriteRotFactor:    0.35,
		WriteQueue:        256,
		WriteBatch:        32,
	}
}

func (c Config) validate() error {
	switch {
	case c.BlockBytes <= 0:
		return fmt.Errorf("disk: BlockBytes %d", c.BlockBytes)
	case c.Blocks <= 0:
		return fmt.Errorf("disk: Blocks %d", c.Blocks)
	case c.BlocksPerCylinder <= 0:
		return fmt.Errorf("disk: BlocksPerCylinder %d", c.BlocksPerCylinder)
	case c.WriteQueue <= 0 || c.WriteBatch <= 0:
		return fmt.Errorf("disk: write queue %d / batch %d", c.WriteQueue, c.WriteBatch)
	}
	return nil
}

// Stats aggregates the drive's activity.
type Stats struct {
	Reads      int64
	Writes     int64
	SeekTime   sim.Time
	ServiceSum sim.Time // total arm-busy service time
	Stalls     int64    // writer stalls on a full dirty queue
}

// Disk is one simulated drive (the paper's one-controller-per-disk case).
type Disk struct {
	name string
	cfg  Config
	k    *sim.Kernel
	arm  *sim.Resource
	head int // cylinder index of current head position
	seq  int // next block for a zero-cost sequential continuation

	dirty     []int
	dirtySet  map[int]struct{}
	work      *sim.Cond // flusher waits here when idle
	space     *sim.Cond // writers wait here when the queue is full
	drained   *sim.Cond // Drain waits here
	flushing  int       // blocks currently being written by the flusher
	closed    bool
	flusherUp bool

	stats Stats
}

// New creates a drive and spawns its pageout daemon on k.
func New(k *sim.Kernel, name string, cfg Config) (*Disk, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Disk{
		name:     name,
		cfg:      cfg,
		k:        k,
		arm:      sim.NewResource(name + ".arm"),
		dirtySet: make(map[int]struct{}),
		work:     sim.NewCond(name + ".flush-work"),
		space:    sim.NewCond(name + ".flush-space"),
		drained:  sim.NewCond(name + ".drained"),
	}
	k.Spawn(name+".pageout", d.flusher)
	d.flusherUp = true
	return d, nil
}

// MustNew is New, panicking on config errors (for tests and fixed setups).
func MustNew(k *sim.Kernel, name string, cfg Config) *Disk {
	d, err := New(k, name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the drive's diagnostic name.
func (d *Disk) Name() string { return d.name }

// Config returns the drive's configuration.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns a snapshot of activity counters.
func (d *Disk) Stats() Stats { return d.stats }

// cylinder maps a block number to its cylinder.
func (d *Disk) cylinder(block int) int { return block / d.cfg.BlocksPerCylinder }

// seekTime returns arm movement time between cylinders.
func (d *Disk) seekTime(fromCyl, toCyl int) sim.Time {
	dist := fromCyl - toCyl
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	maxDist := d.cylinder(d.cfg.Blocks - 1)
	if maxDist < 1 {
		maxDist = 1
	}
	frac := math.Sqrt(float64(dist) / float64(maxDist))
	return d.cfg.SeekMin + sim.Time(float64(d.cfg.SeekMax-d.cfg.SeekMin)*frac)
}

// serviceTime computes arm+media time for accessing block, given the head
// state, and whether this access continues a sequential run.
func (d *Disk) serviceTime(block int, rotFactor float64) (t sim.Time, sequential bool) {
	if block == d.seq {
		return d.cfg.Transfer, true
	}
	toCyl := d.cylinder(block)
	st := d.seekTime(d.head, toCyl)
	rot := sim.Time(float64(d.cfg.Rotation) / 2 * rotFactor)
	return st + rot + d.cfg.Transfer, false
}

func (d *Disk) checkBlock(block int) {
	if block < 0 || block >= d.cfg.Blocks {
		panic(fmt.Sprintf("disk %s: block %d out of range [0,%d)", d.name, block, d.cfg.Blocks))
	}
}

// Read performs a synchronous one-block read (a page fault). The calling
// process blocks for queueing plus service time.
func (d *Disk) Read(p *sim.Proc, block int) {
	d.checkBlock(block)
	d.arm.Acquire(p)
	t, seq := d.serviceTime(block, 1.0)
	if !seq {
		d.stats.SeekTime += t - d.cfg.Transfer
	}
	t += d.cfg.FaultOverhead
	d.stats.Reads++
	d.stats.ServiceSum += t
	p.Advance(t)
	d.head = d.cylinder(block)
	d.seq = block + 1
	d.arm.Release(p)
}

// ScheduleWrite queues a dirty block for deferred write-back. The caller
// only blocks when the dirty queue is full (write throttling).
func (d *Disk) ScheduleWrite(p *sim.Proc, block int) {
	if d.closed {
		panic(fmt.Sprintf("disk %s: ScheduleWrite after Close", d.name))
	}
	d.checkBlock(block)
	if _, dup := d.dirtySet[block]; dup {
		return // already queued; one write suffices
	}
	for len(d.dirty) >= d.cfg.WriteQueue {
		d.stats.Stalls++
		d.space.Wait(p)
	}
	d.dirty = append(d.dirty, block)
	d.dirtySet[block] = struct{}{}
	d.work.Broadcast()
}

// DirtyQueued reports the number of blocks awaiting write-back.
func (d *Disk) DirtyQueued() int { return len(d.dirty) + d.flushing }

// Drain blocks until all queued dirty blocks have been written.
func (d *Disk) Drain(p *sim.Proc) {
	for d.DirtyQueued() > 0 {
		d.drained.Wait(p)
	}
}

// Close asks the pageout daemon to exit once the queue is empty. Further
// ScheduleWrite calls panic. Safe to call from any process context before
// the kernel finishes.
func (d *Disk) Close() {
	d.closed = true
	d.work.Broadcast()
}

// flusher is the pageout daemon: it drains dirty blocks in batches,
// writing each batch in shortest-seek-first order from the current head
// position. Because it runs asynchronously and reorders, writes cost less
// arm time than the foreground random reads — the paper's dttw < dttr.
func (d *Disk) flusher(p *sim.Proc) {
	for {
		for len(d.dirty) == 0 {
			if d.closed {
				return
			}
			if d.drained.Waiting() > 0 && d.flushing == 0 {
				d.drained.Broadcast()
			}
			d.work.Wait(p)
		}
		n := len(d.dirty)
		if n > d.cfg.WriteBatch {
			n = d.cfg.WriteBatch
		}
		batch := make([]int, n)
		copy(batch, d.dirty[:n])
		d.dirty = d.dirty[n:]
		d.flushing = n
		d.space.Broadcast()

		// Shortest-seek-first: repeatedly pick the block nearest the head.
		sort.Ints(batch)
		for len(batch) > 0 {
			i := nearestIndex(batch, d.head*d.cfg.BlocksPerCylinder)
			block := batch[i]
			batch = append(batch[:i], batch[i+1:]...)

			d.arm.Acquire(p)
			t, seq := d.serviceTime(block, d.cfg.WriteRotFactor)
			if !seq {
				d.stats.SeekTime += t - d.cfg.Transfer
			}
			t += d.cfg.WriteOverhead
			d.stats.Writes++
			d.stats.ServiceSum += t
			p.Advance(t)
			d.head = d.cylinder(block)
			d.seq = block + 1
			d.arm.Release(p)

			delete(d.dirtySet, block)
			d.flushing--
		}
		if len(d.dirty) == 0 && d.drained.Waiting() > 0 {
			d.drained.Broadcast()
		}
	}
}

// nearestIndex returns the index in sorted blocks whose value is closest
// to pos.
func nearestIndex(blocks []int, pos int) int {
	i := sort.SearchInts(blocks, pos)
	if i == 0 {
		return 0
	}
	if i == len(blocks) {
		return len(blocks) - 1
	}
	if pos-blocks[i-1] <= blocks[i]-pos {
		return i - 1
	}
	return i
}
