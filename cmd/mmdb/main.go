// Command mmdb exercises the real memory-mapped single-level store: it
// creates partitioned relations in mmap-backed segment files, runs the
// three parallel pointer-based joins over the mapped data with actual
// goroutines, verifies they agree, and reports wall-clock times.
//
// Usage:
//
//	mmdb create -dir DIR [-objects N] [-d D] [-objsize B] [-seed N] [-index]
//	mmdb index  -dir DIR [-d D] [-workers N]
//	mmdb join   -dir DIR [-alg all|auto|nested-loops|sort-merge|grace|hybrid-hash|index-nl|index-merge] [-k K] [-mrproc B] [-workers N] [-radix-bits N] [-probe-batch N]
//	mmdb bench  -dir DIR [-runs N] [-workers N]
//	mmdb split  -src DIR -out DIR [-shards N] [-d D]
//	mmdb serve  {-dir DIR | -shard-map FILE} [-addr :PORT] [-membudget B] [-maxqueue N] [-workers N]
//
// index bulk-loads persistent per-partition B-tree indexes into an
// existing database's segments (create -index does it at creation
// time); an indexed store unlocks the index-nl and index-merge join
// paths, and the planner considers them for -alg auto. split rewrites
// one database into N shard databases (R partitioned round-robin, S
// replicated) plus a shard-map file; serve -shard-map mounts them
// behind the scatter-gather router instead of a single mapped store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/mstore"
	"mmjoin/internal/planner"
	"mmjoin/internal/relation"
	"mmjoin/internal/service"
	"mmjoin/internal/shard"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "create":
		cmdCreate(os.Args[2:])
	case "index":
		cmdIndex(os.Args[2:])
	case "join":
		cmdJoin(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "split":
		cmdSplit(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmdb create|index|join|bench|verify|split|serve [flags]")
	os.Exit(2)
}

func cmdSplit(args []string) {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	src := fs.String("src", "", "source database directory")
	out := fs.String("out", "", "output directory (shard-K subdirs and shards.json are created here)")
	shards := fs.Int("shards", 3, "shard count")
	d := fs.Int("d", 4, "partitions the source was created with")
	fs.Parse(args)
	if *src == "" || *out == "" {
		fatal(fmt.Errorf("split: -src and -out required"))
	}
	if *shards < 1 {
		fatal(fmt.Errorf("split: -shards must be >= 1"))
	}
	start := time.Now()
	dirs := make([]string, *shards)
	for k := range dirs {
		dirs[k] = filepath.Join(*out, fmt.Sprintf("shard-%d", k))
	}
	m, err := shard.Split(*src, *d, dirs)
	if err != nil {
		fatal(err)
	}
	mapPath := filepath.Join(*out, "shards.json")
	if err := shard.WriteMap(mapPath, m); err != nil {
		fatal(err)
	}
	fmt.Printf("split %s into %d shards under %s (map: %s) in %v\n",
		*src, *shards, *out, mapPath, time.Since(start).Round(time.Millisecond))
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory (single-store mode)")
	shardMap := fs.String("shard-map", "", "shard-map file (sharded scatter-gather mode; overrides -dir)")
	d := fs.Int("d", 4, "partitions the database was created with (single-store mode)")
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	budget := fs.Int64("membudget", 0, "total join-memory budget, bytes (0: default)")
	grant := fs.Int64("grant", 0, "default per-request memory grant, bytes (0: default)")
	maxQueue := fs.Int("maxqueue", 0, "admission queue bound (0: default, <0: no queue)")
	timeout := fs.Duration("timeout", 0, "per-request timeout (0: default)")
	calOps := fs.Int("calops", 0, "planner calibration effort (0: default)")
	workers := fs.Int("workers", 0, "morsel-pool size: shared pool (single) or per shard (sharded) (0: GOMAXPROCS)")
	drainWait := fs.Duration("drainwait", 30*time.Second, "graceful drain limit on SIGTERM")
	fs.Parse(args)
	if *dir == "" && *shardMap == "" {
		fatal(fmt.Errorf("serve: -dir or -shard-map required"))
	}

	cfg := service.Config{
		MemBudget: *budget, DefaultGrant: *grant, MaxQueue: *maxQueue,
		RequestTimeout: *timeout, CalibrationOps: *calOps, Workers: *workers,
	}
	serving := *dir
	if *shardMap != "" {
		router, err := openRouter(*shardMap, *workers, *calOps)
		if err != nil {
			fatal(err)
		}
		cfg.Store = router
		serving = *shardMap
	} else {
		cfg.Dir = *dir
		cfg.D = *d
	}
	s, err := service.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Printf("mmdb: serving %s on http://%s (POST /v1/join, GET /v1/lookup /v1/stats /v1/healthz /v1/shards)\n",
		serving, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("mmdb: draining…")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "mmdb:", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mmdb:", err)
	}
	fmt.Println("mmdb: drained, bye")
}

// openRouter mounts a shard map behind the scatter-gather router, wiring
// per-shard auto planning through the calibrated analytical model: each
// shard's PlanFunc call costs that shard's own measured workload, so a
// skewed shard may pick a different algorithm than its peers.
func openRouter(mapPath string, workers, calOps int) (*shard.Router, error) {
	m, err := shard.LoadMap(mapPath)
	if err != nil {
		return nil, err
	}
	mcfg := machine.DefaultConfig()
	mcfg.D = m.Shards[0].D
	if calOps <= 0 {
		calOps = 400
	}
	calib := model.Calibrate(mcfg, calOps, 1)
	pl := planner.New(calib, nil)
	plIdx := planner.New(calib, planner.IndexAlgorithms)
	// The router is captured so each plan call can consult the live
	// Indexed stat: index plans are only proposed when every shard can
	// execute them (Indexed is the AND over live shards).
	var r *shard.Router
	planFn := func(id string, w *relation.Workload, req mstore.JoinRequest) (join.Algorithm, error) {
		p := pl
		if r != nil && r.Stats().Indexed {
			p = plIdx
		}
		choice, err := p.ChooseFor(join.Request{
			Config: mcfg,
			Params: join.Params{Workload: w, MRproc: req.MRproc, K: req.K},
		})
		if err != nil {
			return 0, err
		}
		return choice.Best.Algorithm, nil
	}
	r, err = shard.Open(m, shard.Config{
		MapPath:         mapPath,
		WorkersPerShard: workers,
		PlanFunc:        planFn,
	})
	return r, err
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	d := fs.Int("d", 4, "partitions")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("verify: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if err := db.Verify(); err != nil {
		fatal(err)
	}
	objs := 0
	for _, rel := range db.R {
		objs += rel.Count()
	}
	fmt.Printf("ok: %d R objects across %d partitions, all pointers valid\n", objs, db.D)
}

func cmdCreate(args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	objects := fs.Int("objects", 100000, "objects per relation")
	d := fs.Int("d", 4, "partitions")
	objSize := fs.Int("objsize", 128, "object size in bytes")
	seed := fs.Int64("seed", 1, "workload seed")
	index := fs.Bool("index", false, "bulk-load persistent B-tree indexes after creation")
	workers := fs.Int("workers", 0, "bulk-load parallelism (0: GOMAXPROCS; with -index)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("create: -dir required"))
	}
	start := time.Now()
	db, err := mstore.CreateDB(*dir, *d, *objects, *objects, *objSize, *seed)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	fmt.Printf("created %d R + %d S objects (%d B each) over %d segment pairs in %v\n",
		*objects, *objects, *objSize, *d, time.Since(start).Round(time.Millisecond))
	if *index {
		buildIndexes(db, *workers)
	}
}

// buildIndexes bulk-loads the persistent indexes on a pool of the given
// size and prints the build time — the amortization denominator the
// bench index panel reports.
func buildIndexes(db *mstore.DB, workers int) {
	p := exec.NewPool(workers)
	defer p.Close()
	start := time.Now()
	if err := db.BuildIndexes(context.Background(), p); err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d R + %d S objects over %d B-tree pairs in %v\n",
		db.CountR(), db.CountS(), db.D, time.Since(start).Round(time.Millisecond))
}

func cmdIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	d := fs.Int("d", 4, "partitions the database was created with")
	workers := fs.Int("workers", 0, "bulk-load parallelism (0: GOMAXPROCS)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("index: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if db.HasIndexes() {
		fmt.Println("already indexed")
		return
	}
	buildIndexes(db, *workers)
	if err := db.VerifyIndexes(); err != nil {
		fatal(err)
	}
}

// realAlgorithms are the pointer-based plans the mapped store executes;
// indexAlgorithms are the additional plans an indexed store unlocks.
var realAlgorithms = []join.Algorithm{
	join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash,
}

var indexAlgorithms = []join.Algorithm{join.IndexNL, join.IndexMerge}

func cmdJoin(args []string) {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	alg := fs.String("alg", "all", "algorithm: all, auto (planner-chosen), nested-loops, sort-merge, grace, hybrid-hash, index-nl, index-merge")
	d := fs.Int("d", 4, "partitions the database was created with")
	k := fs.Int("k", 0, "Grace bucket count (0: derive from -mrproc)")
	mrproc := fs.Int64("mrproc", 1<<20, "private memory grant per partition goroutine, bytes")
	workers := fs.Int("workers", 0, "morsel-pool size, the CPU parallelism (0: GOMAXPROCS)")
	radixBits := fs.Int("radix-bits", 0, "per-pass radix partitioning fan-out, bits (0: default 8)")
	probeBatch := fs.Int("probe-batch", 0, "probe gather-batch width, refs (0: default 64)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("join: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	want := db.ExpectedStats()

	run := func(a join.Algorithm) {
		start := time.Now()
		st, err := db.Run(mstore.JoinRequest{
			Algorithm: a, MRproc: *mrproc, K: *k, Workers: *workers,
			RadixBits: *radixBits, ProbeBatch: *probeBatch,
		})
		if err != nil {
			fatal(err)
		}
		ok := "OK"
		if st != want {
			ok = "MISMATCH"
		}
		fmt.Printf("%-12s  %8d pairs  %10v  verification %s\n",
			a, st.Pairs, time.Since(start).Round(time.Microsecond), ok)
	}
	if *alg == "auto" {
		// Cost this exact database (its measured pointer distribution)
		// through the calibrated analytical model and run the winner; an
		// indexed store widens the candidate set with the index paths.
		w, err := db.Workload()
		if err != nil {
			fatal(err)
		}
		mcfg := machine.DefaultConfig()
		mcfg.D = *d
		var algs []join.Algorithm
		if db.HasIndexes() {
			algs = planner.IndexAlgorithms
		}
		choice, err := planner.New(model.Calibrate(mcfg, 400, 1), algs).ChooseFor(join.Request{
			Config: mcfg,
			Params: join.Params{Workload: w, MRproc: *mrproc, K: *k, RadixBits: *radixBits},
		})
		if err != nil {
			fatal(err)
		}
		for _, c := range choice.Candidates {
			fmt.Printf("  plan: %-16s predicted %v\n", c.Algorithm, time.Duration(c.Predicted))
		}
		run(choice.Best.Algorithm)
		return
	}
	all := realAlgorithms
	if db.HasIndexes() {
		all = append(append([]join.Algorithm(nil), all...), indexAlgorithms...)
	}
	for _, a := range all {
		if *alg == "all" || *alg == a.String() {
			run(a)
		}
	}
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	d := fs.Int("d", 4, "partitions")
	runs := fs.Int("runs", 3, "repetitions per algorithm")
	k := fs.Int("k", 0, "Grace bucket count (0: derive from -mrproc)")
	mrproc := fs.Int64("mrproc", 1<<20, "private memory grant per partition goroutine, bytes")
	workers := fs.Int("workers", 0, "morsel-pool size, the CPU parallelism (0: GOMAXPROCS)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("bench: -dir required"))
	}
	db, err := mstore.OpenDB(*dir, *d)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	algs := realAlgorithms
	if db.HasIndexes() {
		algs = append(append([]join.Algorithm(nil), algs...), indexAlgorithms...)
	}
	for _, a := range algs {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < *runs; r++ {
			start := time.Now()
			if _, err := db.Run(mstore.JoinRequest{Algorithm: a, MRproc: *mrproc, K: *k, Workers: *workers}); err != nil {
				fatal(err)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		fmt.Printf("%-12s  best of %d: %v\n", a, *runs, best.Round(time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmdb:", err)
	os.Exit(1)
}
