package mstore

import (
	"context"

	"mmjoin/internal/exec"
)

// Spatial intersection join over two STR-packed R-trees: the synchronized
// descent of Brinkhoff et al., restricted at every level to node pairs
// whose bounding rectangles overlap. Both trees live in mapped segments,
// so the descent dereferences virtual pointers exactly like the key
// joins — no part of either index is deserialized first — and the
// parallel variant spreads subtree pairs over the shared morsel pool the
// same way the key joins spread partition ranges.

// nodeMBR unions a node's entry rectangles. Callers guarantee the node
// is non-empty (only an empty tree's root has count 0).
func (t *RTree) nodeMBR(n Ptr) Rect {
	c := t.nodeCount(n)
	mbr := t.entryAt(n, 0).Rect
	for i := 1; i < c; i++ {
		mbr = mbr.union(t.entryAt(n, i).Rect)
	}
	return mbr
}

// joinNodes descends the pair (na from t, nb from o) and reports every
// intersecting leaf-entry pair to fn, stopping early if fn returns
// false. Internal levels prune on child-MBR intersection; when the trees
// have different heights the shallower side waits at its leaf while the
// other keeps descending.
func (t *RTree) joinNodes(o *RTree, na, nb Ptr, fn func(a, b SpatialEntry) bool) bool {
	la, lb := t.isLeafNode(na), o.isLeafNode(nb)
	switch {
	case la && lb:
		ca, cb := t.nodeCount(na), o.nodeCount(nb)
		for i := 0; i < ca; i++ {
			ea := t.entryAt(na, i)
			for j := 0; j < cb; j++ {
				if eb := o.entryAt(nb, j); ea.Rect.Intersects(eb.Rect) && !fn(ea, eb) {
					return false
				}
			}
		}
	case la:
		mbr := t.nodeMBR(na)
		for j, cb := 0, o.nodeCount(nb); j < cb; j++ {
			if eb := o.entryAt(nb, j); mbr.Intersects(eb.Rect) && !t.joinNodes(o, na, eb.Item, fn) {
				return false
			}
		}
	case lb:
		mbr := o.nodeMBR(nb)
		for i, ca := 0, t.nodeCount(na); i < ca; i++ {
			if ea := t.entryAt(na, i); mbr.Intersects(ea.Rect) && !t.joinNodes(o, ea.Item, nb, fn) {
				return false
			}
		}
	default:
		ca, cb := t.nodeCount(na), o.nodeCount(nb)
		for i := 0; i < ca; i++ {
			ea := t.entryAt(na, i)
			for j := 0; j < cb; j++ {
				if eb := o.entryAt(nb, j); ea.Rect.Intersects(eb.Rect) && !t.joinNodes(o, ea.Item, eb.Item, fn) {
					return false
				}
			}
		}
	}
	return true
}

// IntersectJoin calls fn for every pair of indexed entries (a from t,
// b from o) whose rectangles intersect, stopping early if fn returns
// false. Pairs arrive in the trees' packed order, so repeated runs over
// the same trees see the same sequence.
func (t *RTree) IntersectJoin(o *RTree, fn func(a, b SpatialEntry) bool) {
	if t.Len() == 0 || o.Len() == 0 {
		return
	}
	t.joinNodes(o, t.root(), o.root(), fn)
}

// rtPair is one frontier element of the parallel descent: a subtree of t
// zipped against a subtree of o.
type rtPair struct{ a, b Ptr }

// ParallelIntersectJoin runs the same intersection join with the descent
// frontier spread over the pool: the root pair is expanded breadth-first
// until there are enough intersecting subtree pairs to keep every worker
// busy, then each pair descends sequentially on a pool task. fn is called
// concurrently from pool workers (the worker index is passed so callers
// can accumulate into per-worker state); the multiset of reported pairs
// is identical to IntersectJoin's for any worker count, but the order is
// not — fold results commutatively, as the key-join kernels do.
func (t *RTree) ParallelIntersectJoin(ctx context.Context, p *exec.Pool, o *RTree, fn func(worker int, a, b SpatialEntry)) error {
	if t.Len() == 0 || o.Len() == 0 {
		return nil
	}
	if p == nil {
		pp := exec.NewPool(0)
		defer pp.Close()
		p = pp
	}
	// Expand breadth-first until the frontier covers the pool. Leaf-leaf
	// pairs stop expanding but stay in the task list.
	target := 4 * p.Workers()
	tasks := []rtPair{{t.root(), o.root()}}
	for len(tasks) < target {
		next := make([]rtPair, 0, 2*len(tasks))
		grew := false
		for _, pr := range tasks {
			la, lb := t.isLeafNode(pr.a), o.isLeafNode(pr.b)
			switch {
			case la && lb:
				next = append(next, pr)
			case la:
				mbr := t.nodeMBR(pr.a)
				for j, cb := 0, o.nodeCount(pr.b); j < cb; j++ {
					if eb := o.entryAt(pr.b, j); mbr.Intersects(eb.Rect) {
						next = append(next, rtPair{pr.a, eb.Item})
					}
				}
				grew = true
			case lb:
				mbr := o.nodeMBR(pr.b)
				for i, ca := 0, t.nodeCount(pr.a); i < ca; i++ {
					if ea := t.entryAt(pr.a, i); mbr.Intersects(ea.Rect) {
						next = append(next, rtPair{ea.Item, pr.b})
					}
				}
				grew = true
			default:
				ca, cb := t.nodeCount(pr.a), o.nodeCount(pr.b)
				for i := 0; i < ca; i++ {
					ea := t.entryAt(pr.a, i)
					for j := 0; j < cb; j++ {
						if eb := o.entryAt(pr.b, j); ea.Rect.Intersects(eb.Rect) {
							next = append(next, rtPair{ea.Item, eb.Item})
						}
					}
				}
				grew = true
			}
		}
		tasks = next
		if !grew || len(tasks) == 0 {
			break
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	return p.RunRanges(ctx, len(tasks), 1, func(worker, lo, hi int) error {
		for x := lo; x < hi; x++ {
			pr := tasks[x]
			t.joinNodes(o, pr.a, pr.b, func(a, b SpatialEntry) bool {
				fn(worker, a, b)
				return true
			})
		}
		return nil
	})
}
