package model

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mmjoin/internal/machine"
	"mmjoin/internal/sim"
)

func TestCurveInterpolation(t *testing.T) {
	c := MustCurve([]float64{1, 3, 5}, []float64{10, 30, 40})
	cases := []struct{ x, want float64 }{
		{0, 10}, {1, 10}, {2, 20}, {3, 30}, {4, 35}, {5, 40}, {100, 40},
	}
	for _, cse := range cases {
		if got := c.Eval(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("Eval(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
}

func TestCurveErrors(t *testing.T) {
	if _, err := NewCurve(nil, nil); err == nil {
		t.Error("empty curve accepted")
	}
	if _, err := NewCurve([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewCurve([]float64{2, 1}, []float64{1, 2}); err == nil {
		t.Error("non-increasing xs accepted")
	}
	if got := ConstantCurve(7).Eval(123); got != 7 {
		t.Errorf("ConstantCurve = %g", got)
	}
}

func TestCurvePointsCopy(t *testing.T) {
	c := MustCurve([]float64{1, 2}, []float64{3, 4})
	xs, _ := c.Points()
	xs[0] = 99
	if c.Eval(1) != 3 {
		t.Error("Points leaked internal storage")
	}
}

func TestYlruBasicProperties(t *testing.T) {
	// More lookups ⇒ more faults; bigger buffer ⇒ fewer faults; faults
	// never exceed x (one per lookup here: one tuple per key) and grow
	// monotonically toward t as x grows with a tiny buffer.
	n, tp, i := 10000.0, 800.0, 10000.0
	if a, b := Ylru(n, tp, i, 100, 100), Ylru(n, tp, i, 100, 1000); a >= b {
		t.Errorf("Ylru not increasing in x: %g vs %g", a, b)
	}
	if a, b := Ylru(n, tp, i, 50, 5000), Ylru(n, tp, i, 700, 5000); a <= b {
		t.Errorf("Ylru not decreasing in buffer: %g vs %g", a, b)
	}
	if f := Ylru(n, tp, i, 800, 20000); f > tp+1e-6 {
		// With the buffer as large as the relation, faults are bounded
		// by the page count.
		t.Errorf("Ylru = %g exceeds page count %g with full buffer", f, tp)
	}
	if Ylru(n, tp, i, 100, 0) != 0 {
		t.Error("zero lookups should fault nothing")
	}
}

func TestYlruColdVsWarm(t *testing.T) {
	// With b >= t every page faults at most once: x → ∞ gives ~t faults.
	f := Ylru(10000, 800, 10000, 800, 1e9)
	if math.Abs(f-800) > 1 {
		t.Errorf("saturating faults = %g, want ~800", f)
	}
	// With one frame, nearly every lookup faults.
	f1 := Ylru(10000, 800, 10000, 1, 10000)
	if f1 < 9000 {
		t.Errorf("one-frame faults = %g, want ~10000", f1)
	}
}

func TestOccupancyDistBasics(t *testing.T) {
	// n=0: all empty.
	d := OccupancyDist(0, 5)
	if d[0] != 1 {
		t.Errorf("dist(0 balls) = %v", d)
	}
	// n=1: exactly one occupied.
	d = OccupancyDist(1, 5)
	if math.Abs(d[1]-1) > 1e-12 {
		t.Errorf("dist(1 ball) = %v", d)
	}
	// Distribution sums to 1.
	d = OccupancyDist(40, 7)
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %g", sum)
	}
}

func TestOccupancyMatchesJohnsonKotzClosedForm(t *testing.T) {
	for _, cse := range []struct{ n, m int }{{5, 3}, {10, 10}, {25, 8}, {60, 12}} {
		dist := OccupancyDist(cse.n, cse.m)
		for k := 0; k <= cse.m; k++ {
			// k empty urns ⇔ m−k occupied.
			dp := dist[cse.m-k]
			cf := EmptyUrnProbExact(cse.n, cse.m, k)
			if math.Abs(dp-cf) > 1e-9 {
				t.Errorf("n=%d m=%d k=%d: DP %g vs closed form %g", cse.n, cse.m, k, dp, cf)
			}
		}
	}
}

func TestProbEmptyAtMostEdges(t *testing.T) {
	if got := ProbEmptyAtMost(10, 5, -1); got != 0 {
		t.Errorf("negative z: %g", got)
	}
	if got := ProbEmptyAtMost(10, 5, 5); got != 1 {
		t.Errorf("z = m: %g", got)
	}
	if got := ProbEmptyAtMost(0, 5, 4); got != 0 {
		t.Errorf("no balls, z < m: %g", got)
	}
}

func TestProbEmptyNormalApproxAgreesWithDP(t *testing.T) {
	// Force both paths on a case solvable by both.
	n, m := 3000, 50
	mean, _ := emptyUrnMoments(n, m)
	z := mean + 1
	exact := ProbEmptyAtMost(n, m, z)
	// Normal path via big inputs uses the same moments; compare on this
	// moderate case directly against the moment-based approximation.
	approx := 0.5 * (1 + math.Erf((z+0.5-mean)/math.Sqrt(2*varianceOf(n, m))))
	if math.Abs(exact-approx) > 0.1 {
		t.Errorf("DP %g vs normal %g differ by more than 0.1", exact, approx)
	}
}

func varianceOf(n, m int) float64 {
	_, v := emptyUrnMoments(n, m)
	if v <= 0 {
		return 1e-12
	}
	return v
}

func TestGraceThrashBehaviour(t *testing.T) {
	// Ample memory ⇒ no premature replacement.
	if got := GraceThrash(10000, 20, 1000, 4, 0.1); got != 0 {
		t.Errorf("thrash with ample memory = %g, want 0", got)
	}
	// Tiny memory ⇒ a substantial fraction of hashed objects thrash.
	got := GraceThrash(10000, 64, 16, 4, 0.1)
	if got <= 0 {
		t.Error("no thrash with frames << K")
	}
	// Monotone: fewer frames can't reduce thrash.
	lo := GraceThrash(10000, 64, 80, 4, 0.1)
	hi := GraceThrash(10000, 64, 30, 4, 0.1)
	if hi < lo {
		t.Errorf("thrash not monotone in memory pressure: %g vs %g", lo, hi)
	}
	// Degenerate inputs.
	if GraceThrash(0, 64, 16, 4, 0.1) != 0 || GraceThrash(100, 1, 16, 4, 0.1) != 0 {
		t.Error("degenerate inputs should give zero")
	}
}

func calibForTest(t *testing.T) Calibration {
	t.Helper()
	cfg := machine.DefaultConfig()
	return Calibrate(cfg, 800, 1)
}

func defaultInputs(mem int64) Inputs {
	return Inputs{
		NR: 102400, NS: 102400, R: 128, S: 128, Ptr: 8,
		D: 4, Skew: 1, MRproc: mem,
	}
}

func TestCalibrateShape(t *testing.T) {
	c := calibForTest(t)
	if c.DTTR.Eval(1) >= c.DTTR.Eval(12800) {
		t.Error("dttr not increasing")
	}
	if c.DTTW.Eval(12800) >= c.DTTR.Eval(12800) {
		t.Error("dttw should be below dttr at large bands")
	}
	if c.NewMap.Eval(12800) <= c.OpenMap.Eval(12800) {
		t.Error("newMap should exceed openMap")
	}
	if c.B != 4096 || c.HP != 8 {
		t.Errorf("constants: B=%d HP=%d", c.B, c.HP)
	}
}

func TestPredictionsPositiveAndOrdered(t *testing.T) {
	c := calibForTest(t)
	mem := int64(0.03 * 102400 * 128)
	nl, err := PredictNestedLoops(c, defaultInputs(mem))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := PredictSortMerge(c, defaultInputs(mem))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := PredictGrace(c, defaultInputs(mem))
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*Prediction{"nl": nl, "sm": sm, "grace": gr} {
		if p.Total <= 0 {
			t.Errorf("%s total %v", name, p.Total)
		}
		var sum sim.Time
		for _, comp := range p.Components {
			if comp.T < 0 {
				t.Errorf("%s component %s negative", name, comp.Name)
			}
			sum += comp.T
		}
		if sum != p.Total {
			t.Errorf("%s components sum %v != total %v", name, sum, p.Total)
		}
	}
	// The paper's Fig 5 ordering at scarce memory: grace < sort-merge <
	// nested loops.
	if !(gr.Total < sm.Total && sm.Total < nl.Total) {
		t.Errorf("ordering violated: grace %v, sm %v, nl %v", gr.Total, sm.Total, nl.Total)
	}
}

func TestPredictNestedLoopsMemorySensitivity(t *testing.T) {
	c := calibForTest(t)
	total := int64(102400 * 128)
	lo, _ := PredictNestedLoops(c, defaultInputs(total/10))
	hi, _ := PredictNestedLoops(c, defaultInputs(7*total/10))
	if lo.Total <= hi.Total {
		t.Errorf("NL model not memory sensitive: %v vs %v", lo.Total, hi.Total)
	}
}

func TestPredictSortMergeDiscontinuity(t *testing.T) {
	// NPass must step down as memory grows, producing the Fig 5b
	// discontinuities.
	c := calibForTest(t)
	total := float64(102400 * 128)
	prev := 0
	drops := 0
	for f := 0.005; f <= 0.05; f += 0.0025 {
		pr, err := PredictSortMerge(c, defaultInputs(int64(f*total)))
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && pr.NPass > prev {
			t.Errorf("NPass increased with memory at f=%.4f", f)
		}
		if prev != 0 && pr.NPass < prev {
			drops++
		}
		prev = pr.NPass
	}
	if drops == 0 {
		t.Error("no merge-pass discontinuity across the Fig 5b range")
	}
}

func TestPredictGraceThrashKnee(t *testing.T) {
	// The Grace prediction should rise sharply at very low memory.
	c := calibForTest(t)
	total := float64(102400 * 128)
	low, _ := PredictGrace(c, defaultInputs(int64(0.005*total)))
	mid, _ := PredictGrace(c, defaultInputs(int64(0.05*total)))
	if float64(low.Total) < 1.2*float64(mid.Total) {
		t.Errorf("no thrash knee: low %v vs mid %v", low.Total, mid.Total)
	}
}

func TestPredictErrors(t *testing.T) {
	c := calibForTest(t)
	bad := defaultInputs(100) // below a page
	if _, err := PredictNestedLoops(c, bad); err == nil {
		t.Error("sub-page memory accepted")
	}
	worse := defaultInputs(1 << 20)
	worse.D = 0
	if _, err := PredictSortMerge(c, worse); err == nil {
		t.Error("D=0 accepted")
	}
}

// Property: Ylru is bounded by both t and x and is non-negative for any
// sane parameters.
func TestQuickYlruBounds(t *testing.T) {
	f := func(rawN, rawT, rawB, rawX uint16) bool {
		n := float64(rawN%5000) + 1
		tp := float64(rawT%1000) + 1
		i := n
		b := float64(rawB%1000) + 1
		x := float64(rawX % 10000)
		y := Ylru(n, tp, i, b, x)
		return y >= 0 && y <= tp+x+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: occupancy DP is a probability distribution whose mean matches
// the closed-form expected occupancy m(1-(1-1/m)^n).
func TestQuickOccupancyMean(t *testing.T) {
	f := func(rawN, rawM uint8) bool {
		n := int(rawN)%120 + 1
		m := int(rawM)%20 + 1
		dist := OccupancyDist(n, m)
		sum, mean := 0.0, 0.0
		for u, p := range dist {
			if p < -1e-12 {
				return false
			}
			sum += p
			mean += float64(u) * p
		}
		want := float64(m) * (1 - math.Pow(1-1/float64(m), float64(n)))
		return math.Abs(sum-1) < 1e-9 && math.Abs(mean-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPredictHybridHashShapes(t *testing.T) {
	c := calibForTest(t)
	total := float64(102400 * 128)
	// Ample memory: no overflow buckets, cheaper than Grace.
	rich, err := PredictHybridHash(c, defaultInputs(int64(0.5*total)))
	if err != nil {
		t.Fatal(err)
	}
	if rich.K != 0 {
		t.Errorf("K = %d with ample memory", rich.K)
	}
	grRich, _ := PredictGrace(c, defaultInputs(int64(0.5*total)))
	if rich.Total >= grRich.Total {
		t.Errorf("hybrid (%v) should undercut grace (%v) with ample memory", rich.Total, grRich.Total)
	}
	// Scarce memory: converges to Grace.
	poor, err := PredictHybridHash(c, defaultInputs(int64(0.01*total)))
	if err != nil {
		t.Fatal(err)
	}
	grPoor, _ := PredictGrace(c, defaultInputs(int64(0.01*total)))
	ratio := float64(poor.Total) / float64(grPoor.Total)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("hybrid/grace prediction ratio %.2f at scarce memory", ratio)
	}
	// Components must sum to the total.
	var sum sim.Time
	for _, comp := range rich.Components {
		sum += comp.T
	}
	if sum != rich.Total {
		t.Error("hybrid components do not sum to total")
	}
}

func TestPredictTraditionalAlwaysAboveGrace(t *testing.T) {
	c := calibForTest(t)
	total := float64(102400 * 128)
	for _, f := range []float64{0.01, 0.05, 0.2, 0.5} {
		tr, err := PredictTraditionalGrace(c, defaultInputs(int64(f*total)))
		if err != nil {
			t.Fatal(err)
		}
		gr, err := PredictGrace(c, defaultInputs(int64(f*total)))
		if err != nil {
			t.Fatal(err)
		}
		if tr.Total <= gr.Total {
			t.Errorf("f=%.2f: traditional prediction (%v) not above pointer-based (%v)",
				f, tr.Total, gr.Total)
		}
	}
	bad := defaultInputs(100)
	if _, err := PredictTraditionalGrace(c, bad); err == nil {
		t.Error("sub-page memory accepted")
	}
	if _, err := PredictHybridHash(c, bad); err == nil {
		t.Error("sub-page memory accepted")
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	c := calibForTest(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCalibration(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions from the round-tripped calibration must match exactly.
	in := defaultInputs(512 << 10)
	a, err := PredictGrace(c, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PredictGrace(got, in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Errorf("prediction changed across round trip: %v vs %v", a.Total, b.Total)
	}
	if got.CS != c.CS || got.MTpp != c.MTpp || got.B != c.B {
		t.Error("constants lost")
	}
}

func TestReadCalibrationErrors(t *testing.T) {
	if _, err := ReadCalibration(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCalibration(strings.NewReader("{}")); err == nil {
		t.Error("empty calibration accepted")
	}
	if _, err := ReadCalibration(strings.NewReader(
		`{"pageBytes":4096,"heapPtrBytes":8,"dttr":{"x":[2,1],"y":[1,2]}}`)); err == nil {
		t.Error("bad curve accepted")
	}
}

// Property: curve evaluation is bounded by the sample extremes and
// monotone for monotone samples.
func TestQuickCurveBounded(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		if len(raw) < 1 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		ys := make([]float64, 0, len(raw))
		for i, r := range raw {
			if i >= 12 {
				break
			}
			xs = append(xs, float64(i*10+1))
			ys = append(ys, float64(r))
		}
		c := MustCurve(xs, ys)
		got := c.Eval(float64(probe % 200))
		lo, hi := ys[0], ys[0]
		for _, y := range ys {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
