package disk

import (
	"fmt"
	"math/rand"
	"testing"

	"mmjoin/internal/sim"
)

// BenchmarkReadRandom measures the foreground read service loop: random
// single-block reads with an uncontended arm (seek computation, component
// accounting, one dispatch per read).
func BenchmarkReadRandom(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	k := sim.NewKernel()
	d := MustNew(k, "d0", cfg)
	blocks := rand.New(rand.NewSource(1)).Perm(cfg.Blocks)[:4096]
	k.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			d.Read(p, blocks[i%len(blocks)])
		}
		d.Close()
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkFlusher measures the pageout daemon's shortest-seek-first
// drain at growing batch sizes: the writer fills the dirty queue with
// random blocks, then Drain forces a full SSTF flush cycle. Large batches
// expose the cost of selecting the next-nearest block per write.
func BenchmarkFlusher(b *testing.B) {
	for _, batch := range []int{32, 512, 4096} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			cfg := DefaultConfig()
			cfg.WriteQueue = batch
			cfg.WriteBatch = batch
			k := sim.NewKernel()
			d := MustNew(k, "d0", cfg)
			blocks := rand.New(rand.NewSource(1)).Perm(cfg.Blocks)[:batch]
			k.Spawn("writer", func(p *sim.Proc) {
				for i := 0; i < b.N; i++ {
					for _, blk := range blocks {
						d.ScheduleWrite(p, blk)
					}
					d.Drain(p)
				}
				d.Close()
			})
			b.ResetTimer()
			k.Run()
		})
	}
}
