package join

import (
	"fmt"

	"mmjoin/internal/pheap"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
	"mmjoin/internal/vm"
)

// runSortMerge executes the parallel pointer-based sort-merge join (§6).
// Passes 0 and 1 are the nested-loops partitioning passes except that all
// objects are written out: Ri,i and every RPi,j land in RSj, the set of R
// objects referencing Sj, staggered and synchronized per phase. Each RSi
// is then sorted by the S-pointer with a multi-way merge sort (runs of
// IRUN objects, fan-in NRUN), and the final merge pass reads Si
// sequentially to compute the join.
func (r *runner) runSortMerge() {
	counts := r.w.SubCounts()
	rsCounts := r.w.RSCounts()
	r.spawnSprocs()
	bar := sim.NewBarrier("sm-phase", r.d)

	// Shared append state of the RSj partitions (one writer at a time
	// thanks to the staggered, synchronized phases).
	rsSeg := make([]*seg.Segment, r.d)
	rsObjs := make([][]pendingJoin, r.d)
	rsCursor := make([]int64, r.d) // appended objects

	for i := 0; i < r.d; i++ {
		i := i
		r.m.K.Spawn(fmt.Sprintf("Rproc%d", i), func(p *sim.Proc) {
			pg := r.newPager(fmt.Sprintf("Rproc%d", i), r.prm.MRproc)
			mgr := r.m.Mgr[i]

			// Setup: Ri, Si, then RSi, RPi, Mergei in creation order —
			// the paper's disk layout for this algorithm.
			mgr.OpenMap(p, r.segR[i])
			mgr.OpenMap(p, r.segS[i])
			rsBytes := int64(rsCounts[i]) * r.r
			if rsBytes == 0 {
				rsBytes = 1
			}
			rsSeg[i] = mgr.NewMap(p, fmt.Sprintf("RS%d", i), rsBytes)
			offsets, total := r.subLayout(i, counts)
			rp := mgr.NewMap(p, fmt.Sprintf("RP%d", i), total)
			mergeSeg := mgr.NewMap(p, fmt.Sprintf("Merge%d", i), rsBytes)
			r.markPhase(p, "setup")
			bar.Wait(p) // all RSj exist before anyone appends

			// Pass 0: scan Ri; own references append to RSi, the rest
			// sub-partition into RPi,j.
			cursors := make([]int64, r.d)
			rpRefs := make([][]pendingJoin, r.d)
			for x, ptr := range r.w.Refs[i] {
				pg.Touch(p, r.segR[i], int64(x)*r.r, r.r, false)
				p.Advance(r.m.Cfg.MapCost + r.m.Cfg.TransferPP(r.r))
				j := int(ptr.Part)
				if j == i {
					pg.Touch(p, rsSeg[i], rsCursor[i]*r.r, r.r, true)
					rsObjs[i] = append(rsObjs[i], pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
					rsCursor[i]++
					continue
				}
				pg.Touch(p, rp, offsets[j]+cursors[j]*r.r, r.r, true)
				cursors[j]++
				rpRefs[j] = append(rpRefs[j], pendingJoin{ri: int32(i), x: int32(x), ptr: ptr})
			}
			r.markPhase(p, "pass0")
			bar.Wait(p)

			// Pass 1: staggered, synchronized phases move each RPi,j
			// into RSj (mapped into Rproci's private memory, so the move
			// is a private-to-private transfer).
			for t := 1; t < r.d; t++ {
				j := r.phasePartition(i, t)
				for n, pj := range rpRefs[j] {
					pg.Touch(p, rp, offsets[j]+int64(n)*r.r, r.r, false)
					p.Advance(r.m.Cfg.TransferPP(r.r))
					pg.Touch(p, rsSeg[j], rsCursor[j]*r.r, r.r, true)
					rsObjs[j] = append(rsObjs[j], pj)
					rsCursor[j]++
				}
				bar.Wait(p)
			}
			// Hand the foreign RSj pages back to their owners: write out
			// our dirty pages and drop them from our memory.
			for j := 0; j < r.d; j++ {
				if j != i {
					pg.FlushSegment(p, rsSeg[j])
					pg.DropSegment(rsSeg[j])
				}
			}
			r.markPhase(p, "pass1")
			bar.Wait(p)

			// Pass 2: heap-sort runs of IRUN objects in place.
			n := len(rsObjs[i])
			irun := r.prm.IRun
			if irun <= 0 {
				irun = int(r.prm.MRproc / (r.r + int64(r.m.Cfg.HeapPtrBytes)))
			}
			if irun < 1 {
				irun = 1
			}
			nrunABL := r.prm.NRunABL
			if nrunABL <= 0 {
				nrunABL = int(r.prm.MRproc / (3 * r.b))
			}
			if nrunABL < 2 {
				nrunABL = 2
			}
			nrunLast := r.prm.NRunLast
			if nrunLast <= 0 {
				nrunLast = int(r.prm.MRproc / (2 * r.b))
			}
			if nrunLast < 2 {
				nrunLast = 2
			}
			if irun > r.res.IRun {
				r.res.IRun = irun
			}

			// The heap of pointers is memory-resident alongside the run.
			heapFrames := int((int64(irun)*int64(r.m.Cfg.HeapPtrBytes) + r.b - 1) / r.b)
			var runs []int // run start indices (end = next start or n)
			for start := 0; start < n; start += irun {
				end := start + irun
				if end > n {
					end = n
				}
				runs = append(runs, start)
				granted := r.reserve(p, pg, heapFrames)
				pg.Touch(p, rsSeg[i], int64(start)*r.r, int64(end-start)*r.r, false)
				seq := rsObjs[i][start:end]
				handles := make([]int32, end-start)
				for h := range handles {
					handles[h] = int32(h)
				}
				costs := pheap.Sort(handles, func(a, b int32) bool {
					return seq[a].ptr.Less(seq[b].ptr)
				})
				r.res.Heap.Add(costs)
				// Charge the heap work plus the in-place move of the
				// R-objects along the sorted pointer list.
				p.Advance(r.heapTime(costs) + r.m.Cfg.TransferPP(int64(end-start)*r.r))
				applyPermutation(seq, handles)
				pg.Touch(p, rsSeg[i], int64(start)*r.r, int64(end-start)*r.r, true)
				pg.Unreserve(granted)
			}
			if n == 0 {
				runs = nil
			}
			r.markPhase(p, "pass2")

			// Merge passes: groups of NRUNABL runs, alternating RSi and
			// Mergei as source and destination, until at most NRUNLAST
			// runs remain for the final joining merge.
			src, dst := rsSeg[i], mergeSeg
			srcObjs := rsObjs[i]
			mkEnds := func(starts []int, total int) []int {
				ends := make([]int, len(starts))
				for k := range starts {
					if k+1 < len(starts) {
						ends[k] = starts[k+1]
					} else {
						ends[k] = total
					}
				}
				return ends
			}
			npass := 1 // the final merge always happens
			for len(runs) > nrunLast {
				npass++
				allEnds := mkEnds(runs, len(srcObjs))
				dstObjs := make([]pendingJoin, 0, n)
				var dstRuns []int
				for g := 0; g < len(runs); g += nrunABL {
					hi := g + nrunABL
					if hi > len(runs) {
						hi = len(runs)
					}
					dstRuns = append(dstRuns, len(dstObjs))
					r.mergeRuns(p, pg, src, srcObjs, runs[g:hi], allEnds[g:hi], func(obj pendingJoin) {
						pg.Touch(p, dst, int64(len(dstObjs))*r.r, r.r, true)
						p.Advance(r.m.Cfg.TransferPP(r.r))
						dstObjs = append(dstObjs, obj)
					})
				}
				pg.FlushSegment(p, dst)
				// Swap roles: destroy the exhausted source, make a fresh
				// destination (the paper's deleteMap+newMap per pass).
				pg.DropSegment(src)
				mgr.DeleteMap(p, src)
				src, srcObjs, runs = dst, dstObjs, dstRuns
				dst = mgr.NewMap(p, fmt.Sprintf("Merge%d.%d", i, npass), rsBytes)
			}
			r.markPhase(p, "merge")

			// Final pass: merge the last LRUN runs, joining each object
			// with Si read sequentially through the shared buffer.
			if npass > r.res.NPass {
				r.res.NPass = npass
			}
			if len(runs) > r.res.LRun {
				r.res.LRun = len(runs)
			}
			gbuf := r.newGBuffer(i, i)
			r.mergeRuns(p, pg, src, srcObjs, runs, mkEnds(runs, len(srcObjs)), func(obj pendingJoin) {
				gbuf.add(p, obj.ri, obj.x, obj.ptr)
			})
			gbuf.flush(p)
			r.markPhase(p, "join")

			r.addPagerStats(pg)
			r.rprocDone(p, i)
		})
	}
	r.m.K.Run()
	r.finishPhases([]string{"setup", "pass0", "pass1", "pass2", "merge", "join"})
}

// mergeRuns merges the runs of srcObjs delimited by starts/ends using a
// delete-insert heap of one cursor per run, emitting objects in S-pointer
// order.
func (r *runner) mergeRuns(p *sim.Proc, pg *vm.Pager, src *seg.Segment,
	srcObjs []pendingJoin, starts, ends []int, emit func(pendingJoin)) {
	if len(starts) == 0 {
		return
	}
	cursors := append([]int(nil), starts...)
	touchCursor := func(k int) {
		pg.Touch(p, src, int64(cursors[k])*r.r, r.r, false)
	}
	less := func(a, b int32) bool {
		return srcObjs[cursors[a]].ptr.Less(srcObjs[cursors[b]].ptr)
	}
	var live []int32
	for k := range starts {
		if cursors[k] < ends[k] {
			touchCursor(k)
			live = append(live, int32(k))
		}
	}
	h := pheap.NewFloyd(live, less)
	before := h.Costs()
	for h.Len() > 0 {
		k := int(h.Min())
		obj := srcObjs[cursors[k]]
		cursors[k]++
		var costs pheap.Costs
		if cursors[k] < ends[k] {
			touchCursor(k)
			h.ReplaceMin(int32(k))
			costs = h.Costs()
		} else {
			h.DeleteMin()
			costs = h.Costs()
		}
		delta := pheap.Costs{
			Compares:  costs.Compares - before.Compares,
			Swaps:     costs.Swaps - before.Swaps,
			Transfers: costs.Transfers - before.Transfers,
		}
		before = costs
		r.res.Heap.Add(delta)
		p.Advance(r.heapTime(delta))
		emit(obj)
	}
}

// heapTime converts heap operation counts to CPU time at the machine's
// measured per-operation costs.
func (r *runner) heapTime(c pheap.Costs) sim.Time {
	return sim.Time(c.Compares)*r.m.Cfg.CompareCost +
		sim.Time(c.Swaps)*r.m.Cfg.SwapCost +
		sim.Time(c.Transfers)*r.m.Cfg.TransferCost
}

// applyPermutation reorders seq so that seq[i] = old seq[perm[i]].
func applyPermutation(seq []pendingJoin, perm []int32) {
	out := make([]pendingJoin, len(seq))
	for i, h := range perm {
		out[i] = seq[h]
	}
	copy(seq, out)
}
