// Command joinsim executes a single parallel pointer-based join on the
// simulated memory-mapped machine and prints its phase timings, I/O
// profile, and the analytical model's prediction side by side.
//
// Usage:
//
//	joinsim -alg nested-loops|sort-merge|grace [-mem-frac F] [-objects N]
//	        [-d D] [-g BYTES] [-dist uniform|zipf|local|hot] [-seed N]
//	        [-metrics PATH] [-metrics-tick-ms MS]
//
// With -metrics, the run's telemetry (disk queue depths, arm utilization,
// per-pager fault rates, service-time histograms, phase events) is
// exported to PATH — CSV when the path ends in .csv, JSONL otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/planner"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
	"mmjoin/internal/trace"
	"mmjoin/internal/vm"
)

func main() {
	algName := flag.String("alg", "grace", "algorithm: auto (planner-chosen), nested-loops, sort-merge, grace, hybrid-hash")
	memFrac := flag.Float64("mem-frac", 0.05, "MRproc as a fraction of |R| bytes")
	objects := flag.Int("objects", 102400, "objects per relation")
	d := flag.Int("d", 4, "disks / process pairs")
	g := flag.Int64("g", 0, "shared buffer size G in bytes (0: one page)")
	dist := flag.String("dist", "uniform", "reference distribution: uniform, zipf, local, hot")
	seed := flag.Int64("seed", 1, "workload seed")
	noStagger := flag.Bool("no-stagger", false, "disable pass-1 phase staggering")
	policy := flag.String("policy", "lru", "page replacement policy: lru, fifo, clock")
	showTrace := flag.Bool("trace", false, "render a per-process phase timeline")
	sync := flag.Bool("sync", false, "synchronize pass-1 phases (nested loops)")
	metricsPath := flag.String("metrics", "", "export run telemetry to this path (.csv: CSV, otherwise JSONL)")
	metricsTick := flag.Int64("metrics-tick-ms", 0, "gauge sampling interval in virtual ms (0: default 100)")
	flag.Parse()

	var alg join.Algorithm
	auto := *algName == "auto"
	if !auto {
		var ok bool
		alg, ok = parseAlg(*algName)
		if !ok {
			fmt.Fprintf(os.Stderr, "joinsim: unknown algorithm %q\n", *algName)
			os.Exit(2)
		}
	}
	cfg := machine.DefaultConfig()
	cfg.D = *d
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = *objects, *objects
	spec.D = *d
	spec.Seed = *seed
	switch *dist {
	case "uniform":
	case "zipf":
		spec.Dist = relation.Zipf
		spec.ZipfTheta = 1.5
	case "local":
		spec.Dist = relation.Local
		spec.LocalFrac = 0.8
	case "hot":
		spec.Dist = relation.HotPartition
		spec.HotFrac = 0.4
	default:
		fmt.Fprintf(os.Stderr, "joinsim: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	e, err := core.NewExperiment(cfg, spec)
	if err != nil {
		fatal(err)
	}
	prm := e.ParamsForFraction(*memFrac)
	prm.G = *g
	prm.Stagger = !*noStagger
	prm.SyncPhases = *sync
	switch *policy {
	case "lru":
	case "fifo":
		prm.Policy = vm.FIFO
	case "clock":
		prm.Policy = vm.Clock
	default:
		fmt.Fprintf(os.Stderr, "joinsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	if auto {
		// Plan the request before executing it: the planner costs every
		// candidate analytically from the same Request that will run.
		choice, err := planner.New(e.Calib, nil).ChooseFor(e.Request(0, prm))
		if err != nil {
			fatal(err)
		}
		alg = choice.Best.Algorithm
		fmt.Println("planner choice (cheapest first):")
		for _, c := range choice.Candidates {
			fmt.Printf("  %-14s %10.1fs\n", c.Algorithm, c.Predicted.Seconds())
		}
		fmt.Println()
	}

	var tl *trace.Log
	if *showTrace {
		tl = trace.New()
		prm.Trace = tl
	}
	var reg *metrics.Registry
	if *metricsPath != "" {
		reg = metrics.New()
		prm.Metrics = reg
		prm.MetricsTick = sim.Time(*metricsTick) * sim.Millisecond
	}
	cmp, err := e.Compare(alg, prm)
	if err != nil {
		fatal(err)
	}
	res, pred := cmp.Result, cmp.Prediction

	fmt.Printf("%s: |R|=|S|=%d x %dB over D=%d, MRproc=%.3f|R| (%d KB), skew=%.3f\n",
		alg, spec.NR, spec.RSize, spec.D, cmp.MemFrac, prm.MRproc/1024, e.W.Skew())
	fmt.Printf("\nexperiment: %.1fs per Rproc   model: %.1fs   error %+.1f%%\n",
		res.Elapsed.Seconds(), pred.Total.Seconds(), 100*cmp.RelError())

	fmt.Println("\npass completion times (experiment, with cumulative I/O):")
	for _, ph := range res.Phases {
		fmt.Printf("  %-8s %10.1fs   %7d reads %7d writes\n",
			ph.Name, ph.End.Seconds(), ph.Reads, ph.Writes)
	}
	fmt.Println("\nmodel breakdown:")
	for _, comp := range pred.Components {
		fmt.Printf("  %-20s %10.1fs\n", comp.Name, comp.T.Seconds())
	}
	fmt.Printf("\nI/O: %d reads, %d writes; %d faults (%d zero-fill), %d dirty evictions\n",
		res.DiskReads, res.DiskWrites, res.Faults, res.ZeroFills, res.DirtyEvicts)
	ds := res.Disk
	fmt.Printf("disk service: seek %.1fs + rotation %.1fs + transfer %.1fs + overhead %.1fs = %.1fs",
		ds.SeekTime.Seconds(), ds.RotationTime.Seconds(), ds.TransferTime.Seconds(),
		ds.OverheadTime.Seconds(), ds.ServiceSum.Seconds())
	if ds.Stalls > 0 {
		fmt.Printf("   (%d write stalls)", ds.Stalls)
	}
	fmt.Println()
	if res.ReserveClamped > 0 {
		fmt.Printf("warning: %d table reservations were clamped below the plan (memory too small)\n",
			res.ReserveClamped)
	}
	fmt.Printf("join: %d pairs, signature %016x, %d context switches\n",
		res.Pairs, res.Signature, res.ContextSwitches)
	switch alg {
	case join.SortMerge:
		fmt.Printf("plan: IRUN=%d NPASS=%d LRUN=%d; heap ops: %d compares, %d swaps, %d transfers\n",
			res.IRun, res.NPass, res.LRun, res.Heap.Compares, res.Heap.Swaps, res.Heap.Transfers)
	case join.Grace, join.HybridHash:
		fmt.Printf("plan: K=%d TSIZE=%d\n", res.K, res.TSize)
	}
	if tl != nil {
		fmt.Println("\nper-process timeline:")
		if err := tl.Render(os.Stdout, 72); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		if err := writeMetrics(reg, *metricsPath); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntelemetry: %d samples, %d events -> %s\n",
			len(reg.Samples()), len(reg.Events()), *metricsPath)
	}
}

// writeMetrics exports the registry to path, choosing the format from the
// extension: .csv selects the wide gauge table, everything else JSONL.
func writeMetrics(reg *metrics.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return reg.WriteCSV(f)
	}
	return reg.WriteJSONL(f)
}

func parseAlg(s string) (join.Algorithm, bool) {
	switch s {
	case "nested-loops", "nl":
		return join.NestedLoops, true
	case "sort-merge", "sm":
		return join.SortMerge, true
	case "grace":
		return join.Grace, true
	case "hybrid-hash", "hh":
		return join.HybridHash, true
	}
	return 0, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "joinsim:", err)
	os.Exit(1)
}
