package mstore

import (
	"path/filepath"
	"testing"
)

// The go-bench counterpart of cmd/bench's kernels panel: probe a fixed
// Grace bucket set through each kernel. Run with
//
//	go test -bench ProbeKernel -benchmem ./internal/mstore/
//
// BenchmarkProbeKernelFlat* must report 0 allocs/op — the steady state
// the per-worker arena buys; BenchmarkProbeKernelMap is the baseline it
// is measured against.

func benchBuckets(b *testing.B) *BucketSet {
	b.Helper()
	db, err := CreateDB(filepath.Join(b.TempDir(), "db"), 4, 20000, 20000, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	bs, err := db.BuildGraceBuckets(b.TempDir(), 37)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(bs.Close)
	return bs
}

func benchProbeFlat(b *testing.B, batch int) {
	bs := benchBuckets(b)
	want := bs.ProbeFlat(batch) // warm the arena to high-water capacity
	b.SetBytes(bs.Refs() * 8)   // gathered S words per pass
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := bs.ProbeFlat(batch); st != want {
			b.Fatal("stats diverged")
		}
	}
}

func BenchmarkProbeKernelFlat1(b *testing.B)  { benchProbeFlat(b, 1) }
func BenchmarkProbeKernelFlat16(b *testing.B) { benchProbeFlat(b, 16) }
func BenchmarkProbeKernelFlat64(b *testing.B) { benchProbeFlat(b, 64) }

func BenchmarkProbeKernelMap(b *testing.B) {
	bs := benchBuckets(b)
	want := bs.ProbeMap()
	b.SetBytes(bs.Refs() * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := bs.ProbeMap(); st != want {
			b.Fatal("stats diverged")
		}
	}
}
