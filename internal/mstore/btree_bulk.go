package mstore

import (
	"context"
	"fmt"
	"sort"

	"mmjoin/internal/exec"
)

// Parallel B-tree bulk-load, in the fork-join shape of "Parallel
// Joinable B-Trees in the Fork-Join I/O Model": the input is sorted by
// parallel chunk sorts joined through pairwise merge rounds, the whole
// tree layout (leaf array, posting arena, one contiguous node array per
// upper level) is computed sequentially from the sorted input, and
// workers then fill disjoint node ranges of every level in parallel.
// Because the layout is a pure function of the items, the built tree is
// byte-identical at any worker count — the property the index
// determinism tests pin.

// KV is one (key, value) item of a bulk load.
type KV struct {
	Key uint64
	Val Ptr
}

// bulkMorsel is how many nodes one fill task covers; a node is up to a
// few hundred entries, so this is on the order of a morsel of objects.
const bulkMorsel = 16

// BulkLoadBTree builds a B-tree over items inside seg with the given
// node size (0 ⇒ one 4K page), running the sort and the node fills as
// tasks on p (nil ⇒ an ephemeral GOMAXPROCS pool). The item slice is
// reordered (stably, by key). Leaves are packed full: the load writes
// the minimal number of nodes, and a later Insert into a full leaf
// simply splits it.
func BulkLoadBTree(ctx context.Context, p *exec.Pool, seg *Segment, nodeBytes int, items []KV) (*BTree, error) {
	if nodeBytes == 0 {
		nodeBytes = 4096
	}
	if nodeBytes < minNodeSize {
		return nil, fmt.Errorf("mstore: btree node %d below minimum %d", nodeBytes, minNodeSize)
	}
	maxKeys := btMaxKeys(nodeBytes)
	if maxKeys < 3 {
		return nil, fmt.Errorf("mstore: btree node %d too small for 3 keys", nodeBytes)
	}
	for _, kv := range items {
		if kv.Val&btChainTag != 0 {
			return nil, fmt.Errorf("mstore: btree value %d has the chain tag bit set", kv.Val)
		}
	}
	if p == nil {
		p = exec.NewPool(0)
		defer p.Close()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(items) == 0 {
		return CreateBTree(seg, nodeBytes)
	}
	if err := sortKV(ctx, p, items); err != nil {
		return nil, err
	}

	// Group layout: starts[g] is the first item of distinct-key group g,
	// blocksBefore[g] the posting blocks preceding it in the arena.
	starts := make([]int, 0, len(items)+1)
	for x := 0; x < len(items); x++ {
		if x == 0 || items[x].Key != items[x-1].Key {
			starts = append(starts, x)
		}
	}
	nKeys := len(starts)
	starts = append(starts, len(items))
	blocksBefore := make([]int64, nKeys+1)
	for g := 0; g < nKeys; g++ {
		blocksBefore[g+1] = blocksBefore[g]
		if n := starts[g+1] - starts[g]; n > 1 {
			blocksBefore[g+1] += int64((n + btPostCap - 1) / btPostCap)
		}
	}

	// Sequential allocation of every region; the parallel fills below
	// write disjoint ranges of them.
	hdr, err := seg.Alloc(btHdrBytes)
	if err != nil {
		return nil, err
	}
	t := &BTree{seg: seg, hdr: hdr, nodeBytes: nodeBytes, maxKeys: maxKeys}
	seg.PutU32(hdr+btOffMagic, btMagic)
	seg.PutU32(hdr+btOffNode, uint32(nodeBytes))

	nLeaves := (nKeys + maxKeys - 1) / maxKeys
	leafBase, err := seg.Alloc(int64(nLeaves) * int64(nodeBytes))
	if err != nil {
		return nil, err
	}
	postBase := Ptr(0)
	if total := blocksBefore[nKeys]; total > 0 {
		if postBase, err = seg.Alloc(total * btPostBytes); err != nil {
			return nil, err
		}
	}

	leafKeys := func(l int) (lo, hi int) { // distinct-key groups of leaf l
		return l * maxKeys, min((l+1)*maxKeys, nKeys)
	}
	err = p.RunRanges(ctx, nLeaves, bulkMorsel, func(_, lo, hi int) error {
		for l := lo; l < hi; l++ {
			n := leafBase + Ptr(int64(l)*int64(nodeBytes))
			gLo, gHi := leafKeys(l)
			t.seg.PutU32(n, 1)
			t.setCount(n, gHi-gLo)
			next := Ptr(0)
			if l+1 < nLeaves {
				next = leafBase + Ptr(int64(l+1)*int64(nodeBytes))
			}
			t.setNext(n, next)
			for g := gLo; g < gHi; g++ {
				t.setKeyAt(n, g-gLo, items[starts[g]].Key)
				t.setRefAt(n, g-gLo, t.fillGroup(postBase, blocksBefore[g], items[starts[g]:starts[g+1]]))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Upper levels, fork-join: each level is one contiguous node array
	// whose children are split evenly (every parent keeps ≥ 2 children),
	// filled in parallel before the next level is derived from it.
	childBase, childCount := leafBase, nLeaves
	firstKey := make([]uint64, nLeaves) // first key under each child subtree
	for l := 0; l < nLeaves; l++ {
		gLo, _ := leafKeys(l)
		firstKey[l] = items[starts[gLo]].Key
	}
	for childCount > 1 {
		fan := maxKeys + 1
		parents := (childCount + fan - 1) / fan
		base, perParent, extra := childBase, childCount/parents, childCount%parents
		levelBase, err := seg.Alloc(int64(parents) * int64(nodeBytes))
		if err != nil {
			return nil, err
		}
		childAt := func(pn int) (lo, hi int) { // children of parent pn
			lo = pn*perParent + min(pn, extra)
			return lo, lo + perParent + boolInt(pn < extra)
		}
		err = p.RunRanges(ctx, parents, bulkMorsel, func(_, lo, hi int) error {
			for pn := lo; pn < hi; pn++ {
				n := levelBase + Ptr(int64(pn)*int64(nodeBytes))
				cLo, cHi := childAt(pn)
				t.seg.PutU32(n, 0)
				t.setCount(n, cHi-cLo-1)
				t.setNext(n, 0)
				for c := cLo; c < cHi; c++ {
					if c > cLo {
						t.setKeyAt(n, c-cLo-1, firstKey[c])
					}
					t.setRefAt(n, c-cLo, base+Ptr(int64(c)*int64(nodeBytes)))
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		parentFirst := make([]uint64, parents)
		for pn := 0; pn < parents; pn++ {
			cLo, _ := childAt(pn)
			parentFirst[pn] = firstKey[cLo]
		}
		childBase, childCount, firstKey = levelBase, parents, parentFirst
	}

	seg.PutU64(hdr+btOffRoot, uint64(childBase))
	seg.PutU64(hdr+btOffCount, uint64(len(items)))
	seg.PutU64(hdr+btOffFirst, uint64(leafBase))
	return t, nil
}

// fillGroup writes one distinct key's values: a direct ref for a single
// value, otherwise a posting chain carved from the arena at block index
// blk, linked head-first so iteration follows the sorted input order.
func (t *BTree) fillGroup(postBase Ptr, blk int64, vals []KV) Ptr {
	if len(vals) == 1 {
		return vals[0].Val
	}
	head := postBase + Ptr(blk*btPostBytes)
	for b := head; len(vals) > 0; b += btPostBytes {
		c := min(len(vals), btPostCap)
		next := Ptr(0)
		if c < len(vals) {
			next = b + btPostBytes
		}
		t.seg.PutU64(b, uint64(next))
		t.seg.PutU32(b+8, uint32(c))
		t.seg.PutU32(b+12, 0)
		for i := 0; i < c; i++ {
			t.seg.PutU64(b+16+Ptr(8*i), uint64(vals[i].Val))
		}
		vals = vals[c:]
	}
	return head | btChainTag
}

// sortKV stably sorts items by key: parallel chunk sorts, then pairwise
// left-priority merge rounds. Stable merge of stably-sorted contiguous
// chunks reproduces the unique global stable order, so the result does
// not depend on the chunk boundaries (and hence not on the worker
// count).
func sortKV(ctx context.Context, p *exec.Pool, items []KV) error {
	n := len(items)
	chunk := max(morselObjs, (n+4*p.Workers()-1)/(4*p.Workers()))
	var bounds []int
	for lo := 0; lo < n; lo += chunk {
		bounds = append(bounds, lo)
	}
	bounds = append(bounds, n)
	var tasks []exec.Task
	for i := 0; i+1 < len(bounds); i++ {
		s := items[bounds[i]:bounds[i+1]]
		tasks = append(tasks, func(int) error {
			sort.SliceStable(s, func(a, b int) bool { return s[a].Key < s[b].Key })
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return err
	}
	scratch := make([]KV, n)
	src, dst := items, scratch
	for len(bounds) > 2 {
		var next []int
		tasks = tasks[:0]
		for i := 0; i+1 < len(bounds); i += 2 {
			next = append(next, bounds[i])
			if i+2 >= len(bounds) { // odd tail: copy through
				s, d := src[bounds[i]:bounds[i+1]], dst[bounds[i]:bounds[i+1]]
				tasks = append(tasks, func(int) error { copy(d, s); return nil })
				continue
			}
			a, b, d := src[bounds[i]:bounds[i+1]], src[bounds[i+1]:bounds[i+2]], dst[bounds[i]:bounds[i+2]]
			tasks = append(tasks, func(int) error { mergeKV(d, a, b); return nil })
		}
		next = append(next, n)
		if err := p.Run(ctx, tasks); err != nil {
			return err
		}
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
	return nil
}

// mergeKV merges two key-sorted runs into dst, ties taken from a (the
// left run) to preserve stability.
func mergeKV(dst, a, b []KV) {
	i, j := 0, 0
	for k := range dst {
		switch {
		case i < len(a) && (j >= len(b) || a[i].Key <= b[j].Key):
			dst[k] = a[i]
			i++
		default:
			dst[k] = b[j]
			j++
		}
	}
}
