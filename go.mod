module mmjoin

go 1.24
