package sweep

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes host-side execution of a sweep. Sweep points are
// embarrassingly parallel — every point builds its own simulation kernel,
// disks, and pagers, and workloads are shared read-only — so they can run
// on several host goroutines while preserving the sequential sweep's
// observable behavior: results come back in point order, per-point hooks
// fire in point order on the calling goroutine, and every simulated
// result is bit-identical to a sequential run (the simulator itself is
// deterministic in virtual time; only host wall-clock changes).
type Options struct {
	// Parallelism is the number of host worker goroutines running sweep
	// points. Zero or negative selects runtime.GOMAXPROCS(0); one runs
	// the sweep sequentially on the calling goroutine.
	Parallelism int
}

// opt collapses an optional trailing Options argument.
func opt(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// workers resolves the worker count for n points.
func (o Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// errPointSkipped marks a point never run because an earlier failure
// cancelled the sweep. It is internal: the collector always reaches the
// causing point (a lower index) first, so this sentinel never escapes.
var errPointSkipped = errors.New("sweep: point skipped after earlier failure")

// forEach runs point(i) for every i in [0, n) on the resolved number of
// workers, then calls emit(i) — if non-nil — for each point in ascending
// order on the calling goroutine. Workers pull indexes from a shared
// counter, so points start in ascending order; the first failing point
// (in point order) cancels the sweep — no new points start, in-flight
// ones finish — and its error is returned. An emit error cancels the
// same way. With one worker this degenerates to the plain sequential
// loop, point and emit strictly interleaved.
func forEach(o Options, n int, point func(i int) error, emit func(i int) error) error {
	if n == 0 {
		return nil
	}
	if o.workers(n) == 1 {
		for i := 0; i < n; i++ {
			if err := point(i); err != nil {
				return err
			}
			if emit != nil {
				if err := emit(i); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var (
		next  atomic.Int64
		stop  atomic.Bool
		wg    sync.WaitGroup
		errs  = make([]error, n)
		ready = make([]chan struct{}, n)
	)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	for g := 0; g < o.workers(n); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if stop.Load() {
					errs[i] = errPointSkipped
				} else {
					errs[i] = point(i)
					if errs[i] != nil {
						stop.Store(true)
					}
				}
				close(ready[i])
			}
		}()
	}

	// Collect in point order: indexes are pulled monotonically, so a
	// skipped point always has a lower-indexed point that failed — the
	// first real error is deterministic regardless of worker timing.
	var firstErr error
	for i := 0; i < n; i++ {
		<-ready[i]
		if firstErr != nil {
			continue
		}
		if err := errs[i]; err != nil {
			if !errors.Is(err, errPointSkipped) {
				firstErr = err
			}
			continue
		}
		if emit != nil {
			if err := emit(i); err != nil {
				firstErr = err
				stop.Store(true)
			}
		}
	}
	wg.Wait()
	return firstErr
}
