package model

import (
	"strings"
	"testing"
)

func TestDeriveIndexGeometry(t *testing.T) {
	// One leaf, root-only tree.
	if g := deriveIndex(100, 253); g.leaves != 1 || g.upper != 0 || g.height != 1 {
		t.Errorf("small tree geometry: %+v", g)
	}
	// 25600 keys at fanout 253: 102 leaves, one root above them.
	g := deriveIndex(25600, 253)
	if g.leaves != 102 || g.upper != 1 || g.height != 2 {
		t.Errorf("two-level geometry: %+v", g)
	}
	// Deep tree: each level shrinks by ~fanout.
	deep := deriveIndex(1e9, 253)
	if deep.height < 3 || deep.upper <= 0 {
		t.Errorf("deep geometry: %+v", deep)
	}
}

func TestPredictIndexConsistency(t *testing.T) {
	c := calibForTest(t)
	for name, f := range map[string]func(Calibration, Inputs) (*Prediction, error){
		"index-nl": PredictIndexNL, "index-merge": PredictIndexMerge,
	} {
		p, err := f(c, defaultInputs(1<<20))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.CheckConsistency(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Neither index path stages temporaries: no component may carry a
		// write cost — that absence is the structural crossover against
		// the partitioned algorithms.
		for _, comp := range p.Components {
			if strings.Contains(comp.Name, "write") || strings.Contains(comp.Name, "spill") {
				t.Errorf("%s has a staging component %q", name, comp.Name)
			}
		}
	}
}

func TestPredictIndexFanoutValidation(t *testing.T) {
	c := calibForTest(t)
	in := defaultInputs(1 << 20)
	in.IndexFanout = -1
	if _, err := PredictIndexNL(c, in); err == nil {
		t.Error("negative fanout accepted")
	}
	// Zero defaults to the B-tree's real fanout; higher fanout means a
	// shallower descent and fewer leaves, so it must not cost more.
	def, err := PredictIndexNL(c, defaultInputs(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	wide := defaultInputs(1 << 20)
	wide.IndexFanout = 1024
	w, err := PredictIndexNL(c, wide)
	if err != nil {
		t.Fatal(err)
	}
	if w.Total > def.Total {
		t.Errorf("wider fanout costs more: %v > %v", w.Total, def.Total)
	}
}

// denseProbeInputs is the index paths' winning regime: probes dense
// relative to the partition's pages (every fault amortizes over many
// probes) at memory scarce enough that the grid and staging plans pay
// re-scans and temporary passes the index paths never issue. It mirrors
// the benchmarked `mmdb join -alg auto` workload that picks index-nl.
func denseProbeInputs() Inputs {
	return Inputs{
		NR: 20480, NS: 20480, R: 128, S: 128, Ptr: 8,
		D: 4, Skew: 1, MRproc: 1 << 20,
	}
}

// In the dense-probe regime the index-NL analysis must undercut every
// non-index plan: it touches each S partition's pages at most once per
// residency (probes reuse faults) while paying no grid re-scans, no run
// formation, and no partition writes.
func TestPredictIndexNLWinsDenseProbes(t *testing.T) {
	c := calibForTest(t)
	in := denseProbeInputs()
	inl, err := PredictIndexNL(c, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(Calibration, Inputs) (*Prediction, error){
		"nested-loops": PredictNestedLoops, "sort-merge": PredictSortMerge,
		"grace": PredictGrace, "hybrid-hash": PredictHybridHash,
	} {
		p, err := f(c, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if inl.Total >= p.Total {
			t.Errorf("index-nl %v not below %s %v in the dense-probe regime", inl.Total, name, p.Total)
		}
	}

	// The cost must actually track |R|: with S fixed, a 4x bigger R side
	// must be at least twice as dear (probes dominate).
	big := in
	big.NR = 4 * in.NR
	bnl, err := PredictIndexNL(c, big)
	if err != nil {
		t.Fatal(err)
	}
	if float64(bnl.Total) < 2*float64(inl.Total) {
		t.Errorf("index-nl not R-proportional: 4x R gives %v vs %v", bnl.Total, inl.Total)
	}
}

// Index-merge reads both sides' leaf chains once in key order: the sort
// the sort-merge join performs at run time was paid at bulk-load, so in
// the same regime it must beat sort-merge, and its cost must grow with
// the S side it zips against.
func TestPredictIndexMergeBeatsSortMerge(t *testing.T) {
	c := calibForTest(t)
	in := denseProbeInputs()
	im, err := PredictIndexMerge(c, in)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := PredictSortMerge(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if im.Total >= sm.Total {
		t.Errorf("pre-sorted leaf chains should beat a run-forming sort-merge: %v vs %v", im.Total, sm.Total)
	}
	big := in
	big.NS = 4 * in.NS
	bim, err := PredictIndexMerge(c, big)
	if err != nil {
		t.Fatal(err)
	}
	if bim.Total <= im.Total {
		t.Errorf("index-merge cost did not grow with |S|: %v vs %v", bim.Total, im.Total)
	}
}
