package planner

import (
	"testing"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/model"
	"mmjoin/internal/relation"
)

func testCalib(t *testing.T) model.Calibration {
	t.Helper()
	return model.Calibrate(machine.DefaultConfig(), 800, 1)
}

func inputs(mem int64) model.Inputs {
	return model.Inputs{
		NR: 102400, NS: 102400, R: 128, S: 128, Ptr: 8, D: 4,
		MRproc: mem,
	}
}

func TestChooseSortsCheapestFirst(t *testing.T) {
	pl := New(testCalib(t), nil)
	choice, err := pl.Choose(inputs(512 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.Candidates) != len(DefaultAlgorithms) {
		t.Fatalf("%d candidates", len(choice.Candidates))
	}
	for i := 1; i < len(choice.Candidates); i++ {
		if choice.Candidates[i].Predicted < choice.Candidates[i-1].Predicted {
			t.Error("candidates not sorted")
		}
	}
	if choice.Best.Algorithm != choice.Candidates[0].Algorithm {
		t.Error("Best differs from first candidate")
	}
	if choice.Best.Prediction == nil || choice.Best.Predicted <= 0 {
		t.Error("missing prediction detail")
	}
}

func TestChoiceMatchesPaperOrdering(t *testing.T) {
	// At scarce memory hash-based plans beat sort-merge, which beats
	// nested loops (Fig 5's ordering).
	pl := New(testCalib(t), nil)
	choice, err := pl.Choose(inputs(int64(0.03 * 102400 * 128)))
	if err != nil {
		t.Fatal(err)
	}
	best := choice.Best.Algorithm
	if best != join.Grace && best != join.HybridHash {
		t.Errorf("best at scarce memory = %v, want a hash-based plan", best)
	}
	worst := choice.Candidates[len(choice.Candidates)-1].Algorithm
	if worst != join.NestedLoops {
		t.Errorf("worst at scarce memory = %v, want nested-loops", worst)
	}
}

func TestNestedLoopsWinsWithAmpleMemory(t *testing.T) {
	pl := New(testCalib(t), nil)
	choice, err := pl.Choose(inputs(16 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := choice.Best.Algorithm; got != join.NestedLoops && got != join.HybridHash {
		t.Errorf("best with ample memory = %v, want an immediate-join plan", got)
	}
}

func TestCrossoversExist(t *testing.T) {
	pl := New(testCalib(t), []join.Algorithm{join.NestedLoops, join.Grace})
	xs, err := pl.Crossovers(inputs(0), 64<<10, 16<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) == 0 {
		t.Fatal("no crossover between grace and nested loops across the memory range")
	}
	// The boundary must hand over from the hash plan to nested loops as
	// memory grows.
	last := xs[len(xs)-1]
	if last.After != join.NestedLoops {
		t.Errorf("final winner = %v, want nested-loops", last.After)
	}
}

func TestErrors(t *testing.T) {
	pl := New(testCalib(t), []join.Algorithm{join.Algorithm(42)})
	if _, err := pl.Choose(inputs(1 << 20)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	empty := New(testCalib(t), []join.Algorithm{})
	if _, err := empty.Choose(inputs(1 << 20)); err == nil {
		t.Error("empty candidate set accepted")
	}
	good := New(testCalib(t), nil)
	if _, err := good.Crossovers(inputs(0), 0, 10, 1); err == nil {
		t.Error("bad sweep bounds accepted")
	}
}

func TestPointerPlansBeatTraditionalAnalytically(t *testing.T) {
	// The model itself should show the pointer advantage the paper
	// claims: with the traditional baseline added as a candidate, a
	// pointer-based plan still wins at any memory level.
	pl := New(testCalib(t), append(append([]join.Algorithm{}, DefaultAlgorithms...), join.TraditionalGrace))
	for _, mem := range []int64{256 << 10, 4 << 20} {
		choice, err := pl.Choose(inputs(mem))
		if err != nil {
			t.Fatal(err)
		}
		if choice.Best.Algorithm == join.TraditionalGrace {
			t.Errorf("mem=%d: traditional plan won", mem)
		}
	}
}

func TestChooseForDerivesInputsFromRequest(t *testing.T) {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 8000, 8000
	w := relation.MustGenerate(spec)
	req := join.Request{
		Config: machine.DefaultConfig(),
		Params: join.Params{Workload: w, MRproc: 96 << 10, K: 7},
	}
	in, err := InputsFor(req)
	if err != nil {
		t.Fatal(err)
	}
	if in.NR != 8000 || in.D != spec.D || in.MRproc != 96<<10 || in.K != 7 {
		t.Errorf("derived inputs wrong: %+v", in)
	}
	if in.Skew != w.Skew() {
		t.Errorf("skew not measured from workload: %g vs %g", in.Skew, w.Skew())
	}
	if in.DistinctS <= 0 {
		t.Errorf("DistinctS not derived: %d", in.DistinctS)
	}

	pl := New(testCalib(t), nil)
	choice, err := pl.ChooseFor(req)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pl.Choose(in)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Best.Algorithm != direct.Best.Algorithm ||
		choice.Best.Predicted != direct.Best.Predicted {
		t.Errorf("ChooseFor disagrees with Choose on the same inputs: %v vs %v",
			choice.Best, direct.Best)
	}

	// A request without a workload cannot be costed.
	if _, err := pl.ChooseFor(join.Request{Config: machine.DefaultConfig()}); err == nil {
		t.Error("workload-less request accepted")
	}
}
