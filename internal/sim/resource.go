package sim

import "fmt"

// Resource is a unit-capacity resource (a disk arm, a controller) with a
// FIFO wait queue. Acquire/Release bracket exclusive use; Use combines
// them around a fixed service time.
type Resource struct {
	name    string
	holder  *Proc
	waiters []*Proc

	// BusyTime accumulates total virtual time the resource was held.
	BusyTime Time
	// Acquisitions counts successful Acquire calls.
	Acquisitions int64

	acquiredAt Time
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Held reports whether some process currently holds the resource.
func (r *Resource) Held() bool { return r.holder != nil }

// QueueLen reports the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire takes exclusive ownership, blocking in FIFO order if the
// resource is held.
func (r *Resource) Acquire(p *Proc) {
	if r.holder == p {
		panic(fmt.Sprintf("sim: %s re-acquires %s", p.name, r.name))
	}
	if r.holder != nil {
		r.waiters = append(r.waiters, p)
		p.Block("acquire " + r.name)
		// Ownership was transferred to us by Release before unblocking.
		if r.holder != p {
			panic(fmt.Sprintf("sim: %s woke without ownership of %s", p.name, r.name))
		}
		return
	}
	r.holder = p
	r.Acquisitions++
	r.acquiredAt = p.k.now
}

// Release gives up ownership, handing the resource to the first waiter.
func (r *Resource) Release(p *Proc) {
	if r.holder != p {
		panic(fmt.Sprintf("sim: %s releases %s it does not hold", p.name, r.name))
	}
	r.BusyTime += p.k.now - r.acquiredAt
	if len(r.waiters) == 0 {
		r.holder = nil
		return
	}
	next := r.waiters[0]
	r.waiters = r.waiters[1:]
	r.holder = next
	r.Acquisitions++
	r.acquiredAt = p.k.now
	next.Unblock()
}

// BusyAt reports cumulative held time as of now, including the current
// holder's in-progress hold — the utilization numerator for samplers
// that tick mid-hold.
func (r *Resource) BusyAt(now Time) Time {
	if r.holder != nil {
		return r.BusyTime + now - r.acquiredAt
	}
	return r.BusyTime
}

// Use acquires the resource, advances p by service, and releases it.
func (r *Resource) Use(p *Proc, service Time) {
	r.Acquire(p)
	p.Advance(service)
	r.Release(p)
}

// Cond is a broadcast condition: processes Wait on it, and any process can
// Broadcast to wake all current waiters.
type Cond struct {
	name    string
	waiters []*Proc
}

// NewCond returns a condition with the given diagnostic name.
func NewCond(name string) *Cond { return &Cond{name: name} }

// Wait blocks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.Block("wait " + c.name)
}

// Broadcast wakes all processes currently waiting. It must be called from
// a running process context (or before Run).
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.Unblock()
	}
}

// Waiting reports the number of processes blocked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Barrier synchronizes a fixed party of n processes: each caller of Wait
// blocks until all n have arrived, then all proceed.
type Barrier struct {
	name    string
	n       int
	arrived []*Proc
	// Rounds counts completed barrier episodes.
	Rounds int64
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier party must be >= 1")
	}
	return &Barrier{name: name, n: n}
}

// Wait blocks until n processes (including p) have called Wait this round.
func (b *Barrier) Wait(p *Proc) {
	if b.n == 1 {
		b.Rounds++
		return
	}
	if len(b.arrived) == b.n-1 {
		ws := b.arrived
		b.arrived = nil
		b.Rounds++
		for _, w := range ws {
			w.Unblock()
		}
		return
	}
	b.arrived = append(b.arrived, p)
	p.Block("barrier " + b.name)
}

// Chan is a bounded FIFO message queue between simulated processes.
// Send blocks when full; Recv blocks when empty. Capacity 0 is rendezvous:
// a Send completes only when a receiver takes the value.
type Chan struct {
	name     string
	capacity int
	buf      []any
	senders  []chanWaiter // blocked senders with their values (capacity ≥ 1) or rendezvous senders
	readers  []chanWaiter // blocked receivers
}

type chanWaiter struct {
	p *Proc
	v any // value being sent (senders only)
	// slot receives the value for blocked readers.
	slot *any
}

// NewChan returns a channel with the given capacity (≥ 0).
func NewChan(name string, capacity int) *Chan {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan{name: name, capacity: capacity}
}

// Len reports the number of buffered messages.
func (c *Chan) Len() int { return len(c.buf) }

// Send enqueues v, blocking while the channel is full.
func (c *Chan) Send(p *Proc, v any) {
	// Direct handoff to a blocked reader.
	if len(c.readers) > 0 {
		r := c.readers[0]
		c.readers = c.readers[1:]
		*r.slot = v
		r.p.Unblock()
		return
	}
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, v)
		return
	}
	c.senders = append(c.senders, chanWaiter{p: p, v: v})
	p.Block("send " + c.name)
}

// Recv dequeues a message, blocking while the channel is empty.
func (c *Chan) Recv(p *Proc) any {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// Admit one blocked sender into the freed slot.
		if len(c.senders) > 0 {
			s := c.senders[0]
			c.senders = c.senders[1:]
			c.buf = append(c.buf, s.v)
			s.p.Unblock()
		}
		return v
	}
	if len(c.senders) > 0 { // rendezvous (capacity 0)
		s := c.senders[0]
		c.senders = c.senders[1:]
		s.p.Unblock()
		return s.v
	}
	var slot any
	c.readers = append(c.readers, chanWaiter{p: p, slot: &slot})
	p.Block("recv " + c.name)
	return slot
}
