package mstore

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
)

// TestJoinStatsDeterministicAcrossWorkerCounts is the property the
// morsel layer promises: Pairs and Signature are bit-identical at every
// worker count because they fold as commutative sums, no matter how the
// work-stealing schedule interleaves morsels. Run under -race it also
// exercises the concurrent appenders and per-worker accumulators.
func TestJoinStatsDeterministicAcrossWorkerCounts(t *testing.T) {
	db := makeDB(t, 4000)
	want := db.ExpectedStats()
	counts := []int{1, 2, db.D, runtime.GOMAXPROCS(0)}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash} {
		for _, w := range counts {
			st, err := db.Run(JoinRequest{
				Algorithm: alg, K: 5, ResidentFrac: 0.3, Workers: w,
				TmpDir: filepath.Join(t.TempDir(), "tmp"),
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, w, err)
			}
			if st != want {
				t.Fatalf("%v workers=%d: stats %+v, want %+v", alg, w, st, want)
			}
		}
	}
}

// TestJoinSharedPoolMatchesEphemeral runs joins on one shared pool
// concurrently and checks the results stay exact while total occupancy
// never exceeds the pool size.
func TestJoinSharedPoolMatchesEphemeral(t *testing.T) {
	db := makeDB(t, 3000)
	want := db.ExpectedStats()
	pool := exec.NewPool(2)
	defer pool.Close()
	var wg sync.WaitGroup
	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := db.Run(JoinRequest{
				Algorithm: algs[g%len(algs)], K: 3, Pool: pool,
				TmpDir: filepath.Join(t.TempDir(), fmt.Sprintf("g%d", g)),
			})
			if err != nil {
				t.Errorf("join %d: %v", g, err)
				return
			}
			if st != want {
				t.Errorf("join %d: stats %+v, want %+v", g, st, want)
			}
		}(g)
	}
	wg.Wait()
	if peak := pool.Stats().PeakBusy; peak > 2 {
		t.Fatalf("peak pool occupancy %d exceeds 2", peak)
	}
}

// skewDB rewrites every R pointer in place to reference partition 0, the
// worst case for temp-relation sizing: all of R's references land in one
// partition's files.
func skewDB(t *testing.T, nr int) *DB {
	t.Helper()
	db := makeDB(t, nr)
	s0 := db.S[0]
	for _, ri := range db.R {
		for x := 0; x < ri.Count(); x++ {
			EncodeSPtr(ri.Object(x), SPtr{Part: 0, Off: s0.PtrAt(x % s0.Count())})
		}
	}
	return db
}

// TestNestedLoopsSkewHeavy: with every reference pointing at S0, the
// measured distribution concentrates all temporary RP<i,0> files at full
// partition size and leaves the other D−2 per partition empty — the
// former |Ri| sizing wasted (D−1)·|Ri| slots per partition. The joins
// must still be exact.
func TestNestedLoopsSkewHeavy(t *testing.T) {
	db := skewDB(t, 4000)
	want := db.ExpectedStats()
	if want.Pairs != 4000 {
		t.Fatalf("skew db has %d pairs", want.Pairs)
	}
	p := exec.NewPool(0)
	defer p.Close()
	counts, err := db.refCounts(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.D; i++ {
		for j := 0; j < db.D; j++ {
			wantC := int64(0)
			if j == 0 {
				wantC = int64(db.R[i].Count())
			}
			if counts[i][j] != wantC {
				t.Fatalf("counts[%d][%d] = %d, want %d", i, j, counts[i][j], wantC)
			}
		}
	}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		st, err := db.Run(JoinRequest{Algorithm: alg, K: 4, TmpDir: filepath.Join(t.TempDir(), alg.String())})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st != want {
			t.Fatalf("%v: stats %+v, want %+v", alg, st, want)
		}
	}
}

// TestAppenderGrowsUnderConcurrency drives a deliberately undersized
// relation through concurrent appends and checks every object survives
// the in-place growth (which remaps the segment under a write lock).
func TestAppenderGrowsUnderConcurrency(t *testing.T) {
	seg, err := Create(filepath.Join(t.TempDir(), "a.seg"), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	rel, err := CreateRelation(seg, 32, 4) // 4 slots for 4000 appends
	if err != nil {
		t.Fatal(err)
	}
	ap := NewAppender(rel)
	const n, writers = 4000, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := make([]byte, 32)
			for x := 0; x < n/writers; x++ {
				EncodeSPtr(obj, SPtr{Part: uint32(w), Off: Ptr(x)})
				if err := ap.Append(obj); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ap.Seal()
	if rel.Count() != n {
		t.Fatalf("count %d, want %d", rel.Count(), n)
	}
	seen := make(map[SPtr]bool, n)
	for x := 0; x < n; x++ {
		seen[DecodeSPtr(rel.Object(x))] = true
	}
	if len(seen) != n {
		t.Fatalf("%d distinct objects, want %d (lost writes during growth)", len(seen), n)
	}
}

// TestGrowCapacityRejectsNonTopAllocation: growth is only legal while
// the relation's data area is the segment's top allocation.
func TestGrowCapacityRejectsNonTopAllocation(t *testing.T) {
	seg, err := Create(filepath.Join(t.TempDir(), "b.seg"), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	rel, err := CreateRelation(seg, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Alloc(64); err != nil { // something now sits above the data area
		t.Fatal(err)
	}
	if err := rel.GrowCapacity(100); err == nil {
		t.Fatal("grow of a buried relation accepted")
	}
}

// TestRunCancelledContext: a pre-cancelled request context aborts the
// join without executing it.
func TestRunCancelledContext(t *testing.T) {
	db := makeDB(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.Run(JoinRequest{Algorithm: join.SortMerge, Ctx: ctx,
		TmpDir: filepath.Join(t.TempDir(), "tmp")})
	if err == nil {
		t.Fatal("cancelled join reported success")
	}
}
