package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"mmjoin/internal/loadgen"
	"mmjoin/internal/mstore"
	"mmjoin/internal/service"
)

// The service panel turns the query service's SLO behaviour into a
// tracked regression surface: it boots `mmdb serve` in-process over a
// throwaway database, probes its join capacity, then sweeps open-loop
// Poisson traffic across offered-load multipliers of that capacity for
// two mixes — lookup-heavy with Zipf key skew, and join-heavy across all
// four algorithms plus the planner — recording p99-vs-offered-load and
// 429-rate-vs-offered-load curves into BENCH_service.json. Every point
// cross-checks client-observed outcome counts against the server's
// /stats counters and the panel aborts on any mismatch, so the tracked
// numbers are guaranteed self-consistent.

// servicePanelSlots is how many default-grant joins the panel's budget
// admits concurrently; the queue takes twice that before 429s begin.
const servicePanelSlots = 4

// servicePanelMultipliers scale the probed capacity into the offered-load
// axis: comfortably under, near, and well past saturation.
var servicePanelMultipliers = []float64{0.5, 1, 2, 4}

func runServicePanel(objects, d int, pointDur time.Duration, seed int64, out string) error {
	dir, err := os.MkdirTemp("", "mmjoin-bench-service")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Build the database, then let the server map it afresh.
	dbDir := filepath.Join(dir, "db")
	db, err := mstore.CreateDB(dbDir, d, objects, objects, 64, seed)
	if err != nil {
		return err
	}
	db.Close()

	const grant = 1 << 20
	srv, err := service.New(service.Config{
		Dir: dbDir, D: d,
		MemBudget:      servicePanelSlots * grant,
		DefaultGrant:   grant,
		MaxQueue:       2 * servicePanelSlots,
		CalibrationOps: 200,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	ctx := context.Background()

	// Probe the mean admitted-join service time with a one-client closed
	// loop; it anchors the offered-load axis to this host's actual
	// capacity, so the curves bend in the same places on fast and slow
	// machines alike.
	probe, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL: base, Seed: seed, Mode: loadgen.Closed,
		Duration: 800 * time.Millisecond, Clients: 1, ThinkMean: time.Microsecond,
		Mix: loadgen.Mix{LookupFraction: 0},
	})
	if err != nil {
		return fmt.Errorf("service panel: capacity probe: %w", err)
	}
	okJoins := probe.Latency(loadgen.KindJoin, loadgen.OutcomeOK)
	if okJoins.Count() == 0 {
		return fmt.Errorf("service panel: capacity probe completed no joins")
	}
	meanJoin := time.Duration(okJoins.Mean())
	if meanJoin <= 0 {
		meanJoin = time.Millisecond
	}
	joinCapacity := float64(servicePanelSlots) / meanJoin.Seconds()
	fmt.Printf("service panel: mean join %v ⇒ ~%.0f joins/sec capacity (%d slots)\n",
		meanJoin.Round(time.Microsecond), joinCapacity, servicePanelSlots)

	mixes := []struct {
		name string
		mix  loadgen.Mix
	}{
		{"lookup-heavy-zipf", loadgen.Mix{LookupFraction: 0.9, ZipfS: 1.3}},
		{"join-heavy-mixed-alg", loadgen.Mix{LookupFraction: 0.2, ZipfS: 1.2}},
	}
	rep := &loadgen.Report{
		Schema: loadgen.ReportSchema,
		Host:   loadgen.CurrentHost(),
		Seed:   seed,
		DB:     loadgen.DBInfo{Objects: objects, D: d},
		Server: loadgen.ServerInfo{
			MemBudgetBytes: servicePanelSlots * grant,
			MaxQueue:       2 * servicePanelSlots,
			Workers:        probe.StatsAfter.Pool.Workers,
		},
		Note: fmt.Sprintf("open-loop Poisson sweeps at %v per point; offered rates are "+
			"%.2v × the probed join capacity (mean admitted join %v on this host); latency "+
			"measured from intended send time (coordinated-omission-safe)",
			pointDur, servicePanelMultipliers, meanJoin.Round(time.Microsecond)),
	}

	for _, m := range mixes {
		// The join fraction of the mix is what consumes admission slots,
		// so saturation arrives when rate × joinFrac reaches the join
		// capacity.
		joinFrac := 1 - m.mix.LookupFraction
		rates := make([]float64, len(servicePanelMultipliers))
		for i, mult := range servicePanelMultipliers {
			rates[i] = mult * joinCapacity / joinFrac
		}
		cfg := loadgen.Config{
			BaseURL: base, Seed: seed, Mode: loadgen.OpenPoisson,
			Duration: pointDur, Mix: m.mix,
		}
		pts, _, err := loadgen.RunSweep(ctx, cfg, rates)
		if err != nil {
			return fmt.Errorf("service panel: mix %s: %w", m.name, err)
		}
		for i, pt := range pts {
			if !pt.Reconciled {
				return fmt.Errorf("service panel: mix %s rate %.0f/s: client and /stats counters diverge",
					m.name, rates[i])
			}
			fmt.Printf("service %-20s rate %6.0f/s: ok %5d  429-rate %.3f  p99 %8v\n",
				m.name, pt.OfferedRate, pt.OK, pt.Rate429,
				time.Duration(pt.P99Ns).Round(time.Microsecond))
		}
		rep.Mixes = append(rep.Mixes, loadgen.MixCurveFor(m.name, cfg, pts))
	}

	if err := rep.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("service SLO baseline written to %s\n", out)
	return nil
}
