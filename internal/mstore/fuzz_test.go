package mstore

import (
	"path/filepath"
	"testing"
)

// FuzzBTree drives one persistent B-tree with an arbitrary operation
// tape — inserts (with duplicate keys, so posting chains grow), whole-key
// deletes, and point lookups — against a shadow multimap, then compares
// a full ordered scan. Keys are drawn from a 32-value space so chains,
// splits, and chain frees are all exercised by short tapes.
func FuzzBTree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}) // one hot key
	f.Add([]byte{0, 4, 8, 12, 2, 6, 10, 14, 1, 5, 9, 13})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<10 {
			t.Skip("cap work per input")
		}
		seg, err := Create(filepath.Join(t.TempDir(), "bt"), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		// 128-byte nodes force splits within a few dozen inserts.
		tree, err := CreateBTree(seg, 128)
		if err != nil {
			t.Fatal(err)
		}
		shadow := map[uint64][]Ptr{}
		total := 0
		next := Ptr(1000)
		for i, op := range ops {
			k := uint64(op >> 3 % 32)
			switch op % 4 {
			case 0, 1: // bias toward growth
				v := next
				next += 8
				if err := tree.Insert(k, v); err != nil {
					t.Fatalf("op %d: Insert(%d): %v", i, k, err)
				}
				shadow[k] = append(shadow[k], v)
				total++
			case 2:
				if got, want := tree.Delete(k), len(shadow[k]) > 0; got != want {
					t.Fatalf("op %d: Delete(%d) = %v, shadow has %d values", i, k, got, len(shadow[k]))
				}
				total -= len(shadow[k])
				delete(shadow, k)
			case 3:
				v, ok := tree.Get(k)
				if ok != (len(shadow[k]) > 0) {
					t.Fatalf("op %d: Get(%d) present=%v, shadow %d values", i, k, ok, len(shadow[k]))
				}
				if ok {
					found := false
					for _, want := range shadow[k] {
						if v == want {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("op %d: Get(%d) = %d not in shadow", i, k, v)
					}
				}
			}
			if tree.Len() != total {
				t.Fatalf("op %d: Len=%d, shadow %d", i, tree.Len(), total)
			}
		}
		if err := tree.Verify(); err != nil {
			t.Fatal(err)
		}
		// Per-key postings must be the shadow's exact multiset.
		for k, want := range shadow {
			got := map[Ptr]int{}
			tree.Postings(k, func(v Ptr) bool { got[v]++; return true })
			for _, v := range want {
				got[v]--
			}
			for v, n := range got {
				if n != 0 {
					t.Fatalf("key %d: value %d off by %d", k, v, n)
				}
			}
		}
		// Full scan: every value once, keys non-decreasing.
		seen := 0
		var prev uint64
		tree.Range(0, ^uint64(0), func(k uint64, v Ptr) bool {
			if seen > 0 && k < prev {
				t.Fatalf("scan out of order: %d after %d", k, prev)
			}
			prev = k
			seen++
			return true
		})
		if seen != total {
			t.Fatalf("scan visited %d values, shadow %d", seen, total)
		}
	})
}

// FuzzRTree STR-packs an arbitrary rectangle set, verifies the tree
// invariants, and checks a fuzzed window query against the brute-force
// scan — the bulk-load counterpart of the B-tree tape.
func FuzzRTree(f *testing.F) {
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{16, 100, 100, 10, 10, 100, 100, 10, 10, 50, 50, 200, 200})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 5 || len(raw) > 1<<11 {
			t.Skip()
		}
		fanout := int(raw[0])%15 + 2
		query := Rect{
			MinX: float64(raw[1]), MinY: float64(raw[2]),
			MaxX: float64(raw[1]) + float64(raw[3]),
			MaxY: float64(raw[2]) + float64(raw[4]),
		}
		body := raw[5:]
		n := len(body) / 4
		entries := make([]SpatialEntry, n)
		for i := 0; i < n; i++ {
			b := body[i*4 : i*4+4]
			entries[i] = SpatialEntry{
				Rect: Rect{
					MinX: float64(b[0]), MinY: float64(b[1]),
					MaxX: float64(b[0]) + float64(b[2])/8,
					MaxY: float64(b[1]) + float64(b[3])/8,
				},
				Item: Ptr(i + 1),
			}
		}
		ref := append([]SpatialEntry(nil), entries...)
		seg, err := Create(filepath.Join(t.TempDir(), "rt"), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		defer seg.Close()
		tree, err := BuildRTree(seg, entries, fanout)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Fatalf("Len=%d, want %d", tree.Len(), n)
		}
		if err := tree.Verify(); err != nil {
			t.Fatal(err)
		}
		want := map[Ptr]bool{}
		for _, e := range ref {
			if e.Rect.Intersects(query) {
				want[e.Item] = true
			}
		}
		got := map[Ptr]bool{}
		tree.Search(query, func(e SpatialEntry) bool {
			if got[e.Item] {
				t.Fatalf("duplicate result %d", e.Item)
			}
			got[e.Item] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query returned %d entries, brute force %d", len(got), len(want))
		}
		for item := range want {
			if !got[item] {
				t.Fatalf("missing item %d", item)
			}
		}
	})
}
