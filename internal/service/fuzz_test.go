package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync/atomic"
	"testing"

	"mmjoin/internal/mstore"
)

// fuzzServer builds one tiny live server shared by every fuzz iteration
// (testing.F and testing.T both satisfy testing.TB).
func fuzzServer(tb testing.TB) (*Server, *httptest.Server) {
	tb.Helper()
	dir := filepath.Join(tb.TempDir(), "db")
	db, err := mstore.CreateDB(dir, 3, 200, 200, 32, 11)
	if err != nil {
		tb.Fatal(err)
	}
	db.Close()
	s, err := New(Config{Dir: dir, D: 3, CalibrationOps: 60})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// FuzzJoinDecode throws arbitrary bytes at the /join decoder. The
// contract under attack: malformed input is answered 400 (or another
// well-defined client error), the server never panics, never answers
// 5xx, and a rejected request never reaches the join goroutine — the
// mapped store must be untouchable through garbage.
func FuzzJoinDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"algorithm":"auto"}`))
	f.Add([]byte(`{"algorithm":"grace","memBytes":65536,"k":4}`))
	f.Add([]byte(`{"algorithm":42}`))
	f.Add([]byte(`{"algorithm":"riot"}`))
	f.Add([]byte(`{"memBytes":"much"}`))
	f.Add([]byte(`{"k":-1}`))
	f.Add([]byte(`{"k":999999999}`))
	f.Add([]byte(`{"timeoutMs":-5}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"alg`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(``))

	s, ts := fuzzServer(f)
	var joinsStarted atomic.Int64
	s.preJoin = func() { joinsStarted.Add(1) }

	f.Fuzz(func(t *testing.T, body []byte) {
		started := joinsStarted.Load()
		resp, err := ts.Client().Post(ts.URL+"/join", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("transport error (handler died?): %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("body %q: status %d outside the contract", body, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusBadRequest && joinsStarted.Load() != started {
			t.Errorf("body %q: rejected 400 yet a join goroutine touched the mapping", body)
		}
		if n := s.StatsSnapshot().Counters["panics_recovered"]; n != 0 {
			t.Fatalf("body %q: handler panicked (%d recovered)", body, n)
		}
	})
}

// FuzzLookupDecode drives /lookup's query-parameter decoding with
// arbitrary part/index strings: anything non-numeric or out of range is
// a 400/404, never a panic or a 5xx.
func FuzzLookupDecode(f *testing.F) {
	f.Add("0", "0")
	f.Add("2", "199")
	f.Add("-1", "5")
	f.Add("3", "0")
	f.Add("abc", "def")
	f.Add("", "")
	f.Add("999999999999999999999", "1")
	f.Add("0x10", "1e3")
	f.Add("0", "-9223372036854775808")
	f.Add("\x00", "☂")

	s, ts := fuzzServer(f)

	f.Fuzz(func(t *testing.T, part, index string) {
		q := url.Values{"part": {part}, "index": {index}}
		resp, err := ts.Client().Get(ts.URL + "/lookup?" + q.Encode())
		if err != nil {
			t.Fatalf("transport error (handler died?): %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Errorf("part=%q index=%q: status %d outside the contract", part, index, resp.StatusCode)
		}
		if n := s.StatsSnapshot().Counters["panics_recovered"]; n != 0 {
			t.Fatalf("part=%q index=%q: handler panicked (%d recovered)", part, index, n)
		}
	})
}
