package mstore

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
)

// DB is a partitioned pair of relations R and S stored in one
// memory-mapped segment per partition, the real-store counterpart of the
// simulator's workload: every R object's first bytes hold a virtual
// pointer to an S object, followed by a unique R id used to verify join
// results.
type DB struct {
	Dir     string
	D       int
	ObjSize int
	R, S    []*Relation

	// Per-partition B-tree indexes (index.go); attached all-or-nothing
	// by OpenDB/BuildIndexes, nil on an unindexed store.
	ridx, sidx []*BTree
}

// ridOffset is where the 8-byte R id lives inside an R object, right
// after the join attribute.
const ridOffset = sptrBytes

// MinObjSize is the smallest valid object size (pointer + id).
const MinObjSize = ridOffset + 8

// CreateDB builds a database under dir with nr R objects and ns S
// objects of objSize bytes, partitioned over d segments each, with
// uniformly random join attributes (seeded).
func CreateDB(dir string, d, nr, ns, objSize int, seed int64) (*DB, error) {
	if objSize < MinObjSize {
		return nil, fmt.Errorf("mstore: object size %d below minimum %d", objSize, MinObjSize)
	}
	if d < 1 || nr < d || ns < d {
		return nil, fmt.Errorf("mstore: bad shape d=%d nr=%d ns=%d", d, nr, ns)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{Dir: dir, D: d, ObjSize: objSize}
	rng := rand.New(rand.NewSource(seed))

	sizeS := func(j int) int { return ns/d + boolInt(j < ns%d) }
	sizeR := func(i int) int { return nr/d + boolInt(i < nr%d) }

	// S first, so R's pointers can reference real offsets.
	for j := 0; j < d; j++ {
		seg, err := Create(db.sPath(j), int64(objSize)*int64(sizeS(j))+4096)
		if err != nil {
			db.Close()
			return nil, err
		}
		rel, err := CreateRelation(seg, objSize, sizeS(j))
		if err != nil {
			db.Close()
			return nil, err
		}
		obj := make([]byte, objSize)
		for x := 0; x < sizeS(j); x++ {
			binary.LittleEndian.PutUint64(obj, uint64(j)<<32|uint64(x))
			if _, err := rel.Append(obj); err != nil {
				db.Close()
				return nil, err
			}
		}
		db.S = append(db.S, rel)
	}
	rid := uint64(0)
	for i := 0; i < d; i++ {
		seg, err := Create(db.rPath(i), int64(objSize)*int64(sizeR(i))+4096)
		if err != nil {
			db.Close()
			return nil, err
		}
		rel, err := CreateRelation(seg, objSize, sizeR(i))
		if err != nil {
			db.Close()
			return nil, err
		}
		obj := make([]byte, objSize)
		for x := 0; x < sizeR(i); x++ {
			j := rng.Intn(d)
			idx := rng.Intn(db.S[j].Count())
			EncodeSPtr(obj, SPtr{Part: uint32(j), Off: db.S[j].PtrAt(idx)})
			binary.LittleEndian.PutUint64(obj[ridOffset:], rid)
			rid++
			if _, err := rel.Append(obj); err != nil {
				db.Close()
				return nil, err
			}
		}
		db.R = append(db.R, rel)
	}
	return db, nil
}

// OpenDB maps an existing database (no pointer fixup: exact positioning).
func OpenDB(dir string, d int) (*DB, error) {
	db := &DB{Dir: dir, D: d}
	for j := 0; j < d; j++ {
		seg, err := Open(db.sPath(j))
		if err != nil {
			db.Close()
			return nil, err
		}
		rel, err := OpenRelation(seg)
		if err != nil {
			db.Close()
			return nil, err
		}
		db.S = append(db.S, rel)
	}
	for i := 0; i < d; i++ {
		seg, err := Open(db.rPath(i))
		if err != nil {
			db.Close()
			return nil, err
		}
		rel, err := OpenRelation(seg)
		if err != nil {
			db.Close()
			return nil, err
		}
		db.R = append(db.R, rel)
		db.ObjSize = rel.ObjSize()
	}
	db.attachIndexes()
	return db, nil
}

func (db *DB) rPath(i int) string { return filepath.Join(db.Dir, fmt.Sprintf("R%d.seg", i)) }
func (db *DB) sPath(j int) string { return filepath.Join(db.Dir, fmt.Sprintf("S%d.seg", j)) }

// Close unmaps all segments.
func (db *DB) Close() error {
	var first error
	for _, rel := range append(append([]*Relation(nil), db.R...), db.S...) {
		if rel == nil {
			continue
		}
		if err := rel.Segment().Close(); err != nil && first == nil {
			first = err
		}
	}
	db.R, db.S = nil, nil
	db.ridx, db.sidx = nil, nil
	return first
}

// JoinStats summarizes a join execution over the real store.
type JoinStats struct {
	Pairs     int64
	Signature uint64
}

// Fold merges b into a. Both fields fold as commutative, associative
// sums, which is what makes every merge order equivalent: per-worker
// partial results within one join, and per-shard results across a
// scatter-gather fan-out, combine to bit-identical totals.
func (a *JoinStats) Fold(b JoinStats) {
	a.Pairs += b.Pairs
	a.Signature += b.Signature
}

// pairHash signs one joined pair by the R object's id and the S object's
// identity word, independent of processing order. It is FNV-1a over the
// two words' little-endian bytes, unrolled so the per-pair hot path does
// not allocate a hasher (bit-identical to hash/fnv's New64a).
func pairHash(rid uint64, sWord uint64) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for s := 0; s < 64; s += 8 {
		h = (h ^ (rid >> s & 0xff)) * prime64
	}
	for s := 0; s < 64; s += 8 {
		h = (h ^ (sWord >> s & 0xff)) * prime64
	}
	return h
}

// ExpectedStats computes the canonical join result directly from the
// stored pointers (the ground truth all algorithms must reproduce).
func (db *DB) ExpectedStats() JoinStats {
	var st JoinStats
	for i := range db.R {
		rel := db.R[i]
		for x := 0; x < rel.Count(); x++ {
			obj := rel.Object(x)
			ptr := DecodeSPtr(obj)
			s := db.S[ptr.Part].At(ptr.Off)
			st.Pairs++
			st.Signature += pairHash(binary.LittleEndian.Uint64(obj[ridOffset:]),
				binary.LittleEndian.Uint64(s))
		}
	}
	return st
}

// LookupResult is one dereferenced R→S pointer: the R object's id, the
// S object it references (by partition and index), and that S object's
// identity word. Shard names the shard that answered when the store is
// a router ("" for a single database).
type LookupResult struct {
	RID    uint64
	SPart  uint32
	SIndex int
	SWord  uint64
	Shard  string
}

// Lookup dereferences R[part][index]'s stored pointer through the
// mapping — the single-object counterpart of the bulk joins. Bounds
// failures wrap ErrPartRange / ErrIndexRange.
func (db *DB) Lookup(part, index int) (LookupResult, error) {
	if part < 0 || part >= len(db.R) {
		return LookupResult{}, fmt.Errorf("%w: R%d, store has [0,%d)", ErrPartRange, part, len(db.R))
	}
	rel := db.R[part]
	if index < 0 || index >= rel.Count() {
		return LookupResult{}, fmt.Errorf("%w: R%d[%d], partition has %d objects", ErrIndexRange, part, index, rel.Count())
	}
	obj := rel.Object(index)
	ptr := DecodeSPtr(obj)
	if int(ptr.Part) >= len(db.S) {
		return LookupResult{}, fmt.Errorf("mstore: R%d[%d] points to partition %d", part, index, ptr.Part)
	}
	s := db.S[ptr.Part]
	return LookupResult{
		RID:    binary.LittleEndian.Uint64(obj[ridOffset:]),
		SPart:  ptr.Part,
		SIndex: s.IndexOf(ptr.Off),
		SWord:  binary.LittleEndian.Uint64(s.At(ptr.Off)),
	}, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Verify checks the database's structural integrity: every segment has a
// valid root relation, every R join attribute names an existing S object
// at a properly aligned offset, and identity words are unique. It
// returns the first problem found.
func (db *DB) Verify() error {
	if len(db.R) != db.D || len(db.S) != db.D {
		return fmt.Errorf("mstore: %d/%d relations for D=%d", len(db.R), len(db.S), db.D)
	}
	for j, rel := range db.S {
		if rel.Count() > rel.Capacity() {
			return fmt.Errorf("mstore: S%d count %d exceeds capacity %d", j, rel.Count(), rel.Capacity())
		}
	}
	seen := make(map[uint64]struct{})
	for i, rel := range db.R {
		for x := 0; x < rel.Count(); x++ {
			obj := rel.Object(x)
			ptr := DecodeSPtr(obj)
			if int(ptr.Part) >= db.D {
				return fmt.Errorf("mstore: R%d[%d] points to partition %d", i, x, ptr.Part)
			}
			s := db.S[ptr.Part]
			idx := s.IndexOf(ptr.Off)
			if idx < 0 || idx >= s.Count() || s.PtrAt(idx) != ptr.Off {
				return fmt.Errorf("mstore: R%d[%d] has dangling pointer %d/%d", i, x, ptr.Part, ptr.Off)
			}
			rid := binary.LittleEndian.Uint64(obj[ridOffset:])
			if _, dup := seen[rid]; dup {
				return fmt.Errorf("mstore: duplicate R id %d", rid)
			}
			seen[rid] = struct{}{}
		}
	}
	return nil
}
