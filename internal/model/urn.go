package model

import (
	"math"
	"math/big"
)

// OccupancyDist returns the exact distribution of the number of occupied
// urns after n balls are thrown independently and uniformly into m urns:
// dist[u] = Pr[exactly u urns occupied], computed by the stable dynamic
// programming recurrence
//
//	f(t+1, u) = f(t, u)·u/m + f(t, u−1)·(m−u+1)/m.
func OccupancyDist(n, m int) []float64 {
	if m <= 0 {
		panic("model: OccupancyDist needs m >= 1")
	}
	dist := make([]float64, m+1)
	dist[0] = 1
	upper := 0
	for t := 0; t < n; t++ {
		if upper < m {
			upper++
		}
		for u := upper; u >= 1; u-- {
			dist[u] = dist[u]*float64(u)/float64(m) + dist[u-1]*float64(m-u+1)/float64(m)
		}
		dist[0] = 0
	}
	if n == 0 {
		return dist
	}
	return dist
}

// ProbEmptyAtMost returns Pr[X ≤ z] where X is the number of empty urns
// after n balls into m urns. For small n·m it uses the exact occupancy
// distribution; otherwise a normal approximation with the exact mean and
// variance of X.
func ProbEmptyAtMost(n, m int, z float64) float64 {
	if z < 0 {
		return 0
	}
	if z >= float64(m) {
		return 1
	}
	if n <= 0 {
		// All urns empty.
		if z >= float64(m) {
			return 1
		}
		return 0
	}
	if int64(n)*int64(m) <= 4_000_000 {
		dist := OccupancyDist(n, m)
		p := 0.0
		// X = m − occupied ≤ z  ⇔  occupied ≥ m − z.
		lo := int(math.Ceil(float64(m) - z))
		for u := lo; u <= m; u++ {
			p += dist[u]
		}
		if p > 1 {
			p = 1
		}
		return p
	}
	mean, variance := emptyUrnMoments(n, m)
	if variance <= 0 {
		if z >= mean {
			return 1
		}
		return 0
	}
	// Continuity-corrected normal CDF.
	return 0.5 * (1 + math.Erf((z+0.5-mean)/math.Sqrt(2*variance)))
}

// emptyUrnMoments returns the exact mean and variance of the number of
// empty urns after n balls into m urns.
func emptyUrnMoments(n, m int) (mean, variance float64) {
	fm := float64(m)
	q1 := math.Pow(1-1/fm, float64(n))
	q2 := math.Pow(1-2/fm, float64(n))
	mean = fm * q1
	variance = fm*(fm-1)*q2 + mean - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// EmptyUrnProbExact computes Pr[X = k] for k empty urns after n balls
// into m urns using the Johnson–Kotz inclusion-exclusion closed form
//
//	C(m,k)·(1−k/m)^n · Σ_{j=0}^{m−k−1} C(m−k,j)·(−1)^j·(1 − j/(m−k))^n
//
// evaluated in big-float arithmetic (the alternating sum is numerically
// treacherous in float64). It exists to cross-validate the DP and is
// exercised by tests; predictions use OccupancyDist.
func EmptyUrnProbExact(n, m, k int) float64 {
	if k < 0 || k > m {
		return 0
	}
	const prec = 256
	sum := new(big.Float).SetPrec(prec)
	mk := m - k
	for j := 0; j < mk; j++ {
		term := new(big.Float).SetPrec(prec).SetInt(binomial(mk, j))
		base := new(big.Float).SetPrec(prec).SetFloat64(1 - float64(j)/float64(mk))
		term.Mul(term, bigPow(base, n, prec))
		if j%2 == 1 {
			sum.Sub(sum, term)
		} else {
			sum.Add(sum, term)
		}
	}
	if mk == 0 {
		// All urns empty: probability is 1 iff no balls were thrown.
		if n == 0 {
			return 1
		}
		return 0
	}
	out := new(big.Float).SetPrec(prec).SetInt(binomial(m, k))
	base := new(big.Float).SetPrec(prec).SetFloat64(1 - float64(k)/float64(m))
	out.Mul(out, bigPow(base, n, prec))
	out.Mul(out, sum)
	f, _ := out.Float64()
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

func binomial(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

func bigPow(base *big.Float, n int, prec uint) *big.Float {
	out := new(big.Float).SetPrec(prec).SetFloat64(1)
	acc := new(big.Float).SetPrec(prec).Set(base)
	for e := n; e > 0; e >>= 1 {
		if e&1 == 1 {
			out.Mul(out, acc)
		}
		acc.Mul(acc, acc)
	}
	return out
}

// GraceThrash estimates the expected number of RSi bucket pages replaced
// prematurely while nHashed objects are hashed into k buckets (§7.3's urn
// argument). frames is the pager quota MRproc/B; fillPerObject is the
// rate at which companion streams (the RPi,j sub-partitions) fill fresh
// pages per hashed object; current is the number of always-resident
// current pages (the paper assumes the D current pages of Ri and RPi,j
// stay in memory).
//
// Epochs follow the paper's choice: the first epoch spans k objects, the
// rest one object each. A bucket page hit at epoch start is absent at its
// next hit when the distinct pages touched in between — hit buckets plus
// fill events plus current pages — exceed the frame quota:
//
//	p_j = Pr[ empty urns ≤ k + F_j + current − frames ],
//	y_j = (1−1/k)^{H_j} · (1 − (1−1/k)^{α_j}).
//
// The result is Σ_j p_j·y_j · nHashed, each costing one extra write and
// one extra read.
func GraceThrash(nHashed, k, frames, current int, fillPerObject float64) float64 {
	if nHashed <= 0 || k <= 1 || frames <= 0 {
		return 0
	}
	oneMinus := 1 - 1/float64(k)
	total := 0.0
	h := 0.0    // H_e: objects hashed before epoch e starts
	surv := 1.0 // (1−1/k)^{H_e}: no hit during the first H_e objects
	for e := 0; ; e++ {
		alpha := 1.0
		if e == 0 {
			alpha = float64(k)
		}
		y := surv * (1 - math.Pow(oneMinus, alpha))
		if y < 1e-12 || h > float64(nHashed) {
			break
		}
		fills := h * fillPerObject
		z := float64(k) + fills + float64(current) - float64(frames)
		total += ProbEmptyAtMost(int(h), k, z) * y
		h += alpha
		surv *= math.Pow(oneMinus, alpha)
	}
	return total * float64(nHashed)
}
