package conformance

import (
	"encoding/json"
	"fmt"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/relation"
	"mmjoin/internal/vm"
)

// CorpusEntry is one run of the deterministic-replay corpus: a small
// fixed-seed workload plus the exact parameters of one join execution.
// Everything influencing the run is spelled out here so the committed
// snapshot pins the whole stack (workload generator, disk model, pager,
// segment manager, kernel scheduling, algorithm).
type CorpusEntry struct {
	Name    string
	Objects int
	D       int
	Seed    int64
	Dist    relation.Distribution
	Theta   float64 // Zipf
	HotFrac float64 // HotPartition
	Alg     join.Algorithm
	Frac    float64 // MRproc / (|R|·r)
	Policy  vm.Policy
}

// Corpus returns the replay corpus. Entries are chosen to exercise every
// algorithm, every pager policy, skewed reference distributions, and —
// through the low-memory Grace and sort-merge runs — heavy deferred
// write-back traffic, so a regression in any disk/vm mechanism (for
// example the flusher's re-dirty-during-flush handling) perturbs at
// least one snapshot.
func Corpus() []CorpusEntry {
	return []CorpusEntry{
		{Name: "nl-uniform-d4", Objects: 4000, D: 4, Seed: 7, Alg: join.NestedLoops, Frac: 0.15},
		{Name: "sm-uniform-multipass-d4", Objects: 4000, D: 4, Seed: 7, Alg: join.SortMerge, Frac: 0.02},
		{Name: "grace-knee-d4", Objects: 4000, D: 4, Seed: 7, Alg: join.Grace, Frac: 0.01},
		{Name: "hybrid-d4", Objects: 4000, D: 4, Seed: 7, Alg: join.HybridHash, Frac: 0.03},
		{Name: "traditional-d2", Objects: 2000, D: 2, Seed: 11, Alg: join.TraditionalGrace, Frac: 0.05},
		{Name: "grace-zipf-d4", Objects: 4000, D: 4, Seed: 7, Dist: relation.Zipf, Theta: 1.5,
			Alg: join.Grace, Frac: 0.02},
		{Name: "sm-fifo-d2", Objects: 2000, D: 2, Seed: 11, Alg: join.SortMerge, Frac: 0.02,
			Policy: vm.FIFO},
		{Name: "nl-hot-clock-d4", Objects: 4000, D: 4, Seed: 7, Dist: relation.HotPartition,
			HotFrac: 0.4, Alg: join.NestedLoops, Frac: 0.10, Policy: vm.Clock},
	}
}

// Spec expands the entry into a workload specification.
func (e CorpusEntry) Spec() relation.Spec {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = e.Objects, e.Objects
	spec.D = e.D
	spec.Seed = e.Seed
	spec.Dist = e.Dist
	spec.ZipfTheta = e.Theta
	spec.HotFrac = e.HotFrac
	return spec
}

// Run executes the entry on a fresh machine and returns the result with
// the workload it joined.
func (e CorpusEntry) Run() (*join.Result, *relation.Workload, error) {
	cfg := machine.DefaultConfig()
	cfg.D = e.D
	cfg.Disk.Blocks = 40000
	w, err := relation.Generate(e.Spec())
	if err != nil {
		return nil, nil, fmt.Errorf("conformance: corpus %s: %w", e.Name, err)
	}
	mem := int64(e.Frac * float64(int64(e.Objects)*int64(w.Spec.RSize)))
	res, err := join.Request{
		Algorithm: e.Alg,
		Config:    cfg,
		Params:    join.Params{Workload: w, MRproc: mem, Stagger: true, Policy: e.Policy},
	}.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("conformance: corpus %s: %w", e.Name, err)
	}
	return res, w, nil
}

// Snapshot is the committed form of one corpus run: the entry's name and
// algorithm spelled out, plus the complete Result. Every field is
// integer-valued (virtual times are nanosecond counts), so snapshots are
// bit-for-bit reproducible across platforms.
type Snapshot struct {
	Entry     string      `json:"entry"`
	Algorithm string      `json:"algorithm"`
	Result    join.Result `json:"result"`
}

// SnapshotOf converts a corpus run to its committed form.
func SnapshotOf(e CorpusEntry, res *join.Result) Snapshot {
	return Snapshot{Entry: e.Name, Algorithm: e.Alg.String(), Result: *res}
}

// Encode renders the snapshot as the canonical golden-file bytes.
func (s Snapshot) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
