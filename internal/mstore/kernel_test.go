package mstore

import (
	"runtime"
	"testing"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
)

// TestKernelSignatureGrid is the property grid gating the kernel
// rewrite: every algorithm × radix bits {4, 8, 12} × batch width
// {1, 16, 64} × worker count {1, 2, GOMAXPROCS} × corpus {uniform,
// Zipf hot-key} must produce Pairs/Signature bit-identical to the
// store's independently computed ground truth. K=40 covers both
// single-pass partitioning (8 and 12 bits) and two-pass (4 bits);
// deeper pass counts are TestKernelMultiPassDeep's job.
func TestKernelSignatureGrid(t *testing.T) {
	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash}
	corpora := map[string]func(*testing.T, int) *DB{
		"uniform": makeDB,
		"zipf":    zipfDB,
	}
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	for name, mk := range corpora {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			db := mk(t, 6000)
			want := db.ExpectedStats()
			for _, bits := range []int{4, 8, 12} {
				for _, batch := range []int{1, 16, 64} {
					for _, w := range workers {
						for _, alg := range algs {
							// K and radix bits only reach the bucketed
							// joins; run the other two once per
							// batch/worker point.
							if (alg == join.NestedLoops || alg == join.SortMerge) && bits != 4 {
								continue
							}
							got, err := db.Run(JoinRequest{
								Algorithm:  alg,
								K:          40,
								RadixBits:  bits,
								ProbeBatch: batch,
								Workers:    w,
							})
							if err != nil {
								t.Fatalf("%v bits=%d batch=%d w=%d: %v", alg, bits, batch, w, err)
							}
							if got != want {
								t.Fatalf("%v bits=%d batch=%d w=%d: got %+v want %+v",
									alg, bits, batch, w, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestKernelMultiPassDeep drives the partitioning through three radix
// passes (K=300 at 4 bits; 2 passes at 8) on both corpora — the regime
// where intermediate scatter files are created, refined, and deleted
// inside the probe tasks.
func TestKernelMultiPassDeep(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *DB{makeDB, zipfDB} {
		db := mk(t, 4000)
		want := db.ExpectedStats()
		for _, alg := range []join.Algorithm{join.Grace, join.HybridHash} {
			for _, bits := range []int{4, 8} {
				for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
					got, err := db.Run(JoinRequest{
						Algorithm: alg,
						K:         300,
						RadixBits: bits,
						Workers:   w,
					})
					if err != nil {
						t.Fatalf("%v bits=%d w=%d: %v", alg, bits, w, err)
					}
					if got != want {
						t.Fatalf("%v bits=%d w=%d: got %+v want %+v", alg, bits, w, got, want)
					}
				}
			}
		}
	}
}

// TestKernelGridUnderGrant re-runs a slice of the grid with a grant
// small enough to force restaging and hot-key streaming, so the batched
// kernels are also exercised on the spill paths.
func TestKernelGridUnderGrant(t *testing.T) {
	db := zipfDB(t, 6000)
	want := db.ExpectedStats()
	for _, alg := range []join.Algorithm{join.Grace, join.HybridHash} {
		for _, bits := range []int{4, 8} {
			for _, batch := range []int{1, 64} {
				var tel JoinTelemetry
				got, err := db.Run(JoinRequest{
					Algorithm:  alg,
					K:          40,
					RadixBits:  bits,
					ProbeBatch: batch,
					MemGrant:   32 << 10,
					Telemetry:  &tel,
				})
				if err != nil {
					t.Fatalf("%v bits=%d batch=%d: %v", alg, bits, batch, err)
				}
				if got != want {
					t.Fatalf("%v bits=%d batch=%d: got %+v want %+v", alg, bits, batch, got, want)
				}
				if peak, grant := tel.PeakTableBytes.Load(), int64(32<<10); peak > grant {
					t.Fatalf("%v bits=%d batch=%d: peak %d exceeds grant %d", alg, bits, batch, peak, grant)
				}
			}
		}
	}
}

// TestKernelFlatMatchesMap is the differential gate between the two
// probe kernels on identical bucket files: flat table at every batch
// width vs the legacy Go map vs ground truth.
func TestKernelFlatMatchesMap(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *DB{makeDB, zipfDB} {
		db := mk(t, 5000)
		want := db.ExpectedStats()
		bs, err := db.BuildGraceBuckets(t.TempDir(), 37)
		if err != nil {
			t.Fatal(err)
		}
		if got := bs.ProbeMap(); got != want {
			t.Fatalf("ProbeMap: got %+v want %+v", got, want)
		}
		for _, batch := range []int{1, 16, 64} {
			if got := bs.ProbeFlat(batch); got != want {
				t.Fatalf("ProbeFlat(%d): got %+v want %+v", batch, got, want)
			}
		}
		bs.Close()
	}
}

// TestKernelProbeFlatZeroAllocs: after the first pass has grown the
// arena to its high-water capacity, the flat probe path allocates
// nothing — the steady state the per-bucket Go map could never reach.
func TestKernelProbeFlatZeroAllocs(t *testing.T) {
	db := makeDB(t, 5000)
	bs, err := db.BuildGraceBuckets(t.TempDir(), 37)
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	bs.ProbeFlat(0) // warm the arena
	if allocs := testing.AllocsPerRun(5, func() { bs.ProbeFlat(0) }); allocs != 0 {
		t.Fatalf("steady-state ProbeFlat allocates %.1f times per pass", allocs)
	}
}

// TestKernelRadixPlan pins the pass structure the executor and the cost
// model must agree on.
func TestKernelRadixPlan(t *testing.T) {
	cases := []struct {
		k, bits int
		passes  int
		span    int64
	}{
		{1, 8, 1, 1},
		{256, 8, 1, 1},
		{257, 8, 2, 256},
		{65536, 8, 2, 256},
		{65537, 8, 3, 65536},
		{16, 4, 1, 1},
		{17, 4, 2, 16},
		{300, 4, 3, 256},
		{300, 12, 1, 1},
	}
	for _, c := range cases {
		passes, span := radixPlan(c.k, c.bits)
		if passes != c.passes || span != c.span {
			t.Errorf("radixPlan(%d, %d) = (%d, %d), want (%d, %d)",
				c.k, c.bits, passes, span, c.passes, c.span)
		}
	}
}

// TestKernelTableSlots pins the load-factor geometry tableBytesFor and
// the grant accounting are built on.
func TestKernelTableSlots(t *testing.T) {
	cases := []struct {
		refs  int
		slots int64
	}{
		{0, 8}, {1, 8}, {6, 8}, {7, 16}, {12, 16}, {13, 32},
		{3072, 4096}, {3073, 8192}, {4000, 8192},
	}
	for _, c := range cases {
		if got := tableSlots(c.refs); got != c.slots {
			t.Errorf("tableSlots(%d) = %d, want %d", c.refs, got, c.slots)
		}
		if bytes := tableBytesFor(c.refs); bytes < int64(c.refs)*16 {
			t.Errorf("tableBytesFor(%d) = %d below the per-ref floor", c.refs, bytes)
		}
	}
}

// TestKernelRangeTasksNoEmptyMorsels pins the rangeTasks contract: no
// tasks for empty inputs, exactly ⌈n/morselObjs⌉ otherwise, every range
// non-empty and the union covering [0, n) exactly once.
func TestKernelRangeTasksNoEmptyMorsels(t *testing.T) {
	for _, n := range []int{-5, 0, 1, morselObjs - 1, morselObjs, morselObjs + 1, 3 * morselObjs} {
		var covered int
		tasks := rangeTasks(nil, n, func(_, lo, hi int) error {
			if hi <= lo {
				t.Fatalf("n=%d: empty morsel [%d, %d)", n, lo, hi)
			}
			covered += hi - lo
			return nil
		})
		if want := morselCount(n); len(tasks) != want {
			t.Fatalf("n=%d: %d tasks, want %d", n, len(tasks), want)
		}
		for _, task := range tasks {
			if err := task(0); err != nil {
				t.Fatal(err)
			}
		}
		if want := max(n, 0); covered != want {
			t.Fatalf("n=%d: covered %d objects", n, covered)
		}
	}
}

// TestKernelSharedPoolGrid runs the grid's extremes on one shared pool
// to confirm the pipelined sort-merge job and the radix refine tasks
// coexist with other joins on the same workers.
func TestKernelSharedPoolGrid(t *testing.T) {
	db := makeDB(t, 6000)
	want := db.ExpectedStats()
	p := exec.NewPool(4)
	defer p.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		alg := []join.Algorithm{join.SortMerge, join.Grace}[i%2]
		go func() {
			got, err := db.Run(JoinRequest{
				Algorithm: alg,
				K:         300,
				RadixBits: 4,
				TmpDir:    t.TempDir(),
				Pool:      p,
			})
			if err == nil && got != want {
				err = errTestMismatch
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errTestMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "join stats mismatch" }
