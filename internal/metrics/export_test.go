package metrics_test

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmjoin/internal/disk"
	"mmjoin/internal/metrics"
	"mmjoin/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixture runs a small deterministic workload — one instrumented
// drive, a sampler, random reads and scheduled writes from a fixed seed —
// and returns the populated registry.
func buildFixture() *metrics.Registry {
	cfg := disk.DefaultConfig()
	cfg.Blocks = 20000
	k := sim.NewKernel()
	reg := metrics.New()
	d := disk.MustNew(k, "disk0", cfg)
	d.Instrument(reg)
	s := reg.StartSampler(k, 50*sim.Millisecond)
	rng := rand.New(rand.NewSource(7))
	k.Spawn("worker", func(p *sim.Proc) {
		reg.Event(p.Now(), p.Name(), "begin")
		for i := 0; i < 40; i++ {
			d.Read(p, rng.Intn(cfg.Blocks))
			if i%2 == 0 {
				d.ScheduleWrite(p, rng.Intn(cfg.Blocks))
			}
		}
		d.Drain(p)
		reg.Event(p.Now(), p.Name(), "end")
		d.Close()
		s.Stop()
	})
	k.Run()
	return reg
}

func TestWriteJSONLGolden(t *testing.T) {
	reg := buildFixture()
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "export.jsonl.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSONL export drifted from golden %s\ngot:\n%s", golden, buf.String())
	}
}

func TestWriteJSONLShape(t *testing.T) {
	reg := buildFixture()
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], `"type":"meta"`) ||
		!strings.Contains(lines[0], `"schema":"mmjoin-metrics/1"`) {
		t.Errorf("first line is not the meta record: %s", lines[0])
	}
	for _, must := range []string{
		"disk0.dirty_queue", "disk0.arm_util", // sampled gauges
		`"type":"event"`, `"label":"begin"`, `"label":"end"`,
		`"type":"counter"`, "disk0.stalls",
		`"type":"hist"`, "disk0.read.service.far",
	} {
		if !strings.Contains(out, must) {
			t.Errorf("JSONL output missing %q", must)
		}
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildFixture().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildFixture().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs exported different JSONL")
	}
}

func TestWriteCSVShape(t *testing.T) {
	reg := buildFixture()
	var buf bytes.Buffer
	if err := reg.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "t_ms" {
		t.Errorf("first column %q, want t_ms", header[0])
	}
	for i := 2; i < len(header); i++ {
		if header[i] < header[i-1] {
			t.Errorf("header not sorted at %q < %q", header[i], header[i-1])
		}
	}
	// Every row has the full column count.
	for i, line := range lines[1:] {
		if got := strings.Count(line, ","); got != len(header)-1 {
			t.Errorf("row %d has %d commas, want %d", i, got, len(header)-1)
		}
	}
}

func TestNilRegistryExports(t *testing.T) {
	var r *metrics.Registry
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil registry JSONL should write nothing")
	}
	if err := r.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil registry CSV should write nothing")
	}
}
