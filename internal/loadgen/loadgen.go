// Package loadgen is the closed-loop/open-loop traffic generator for
// `mmdb serve`: it replays deterministic, seeded mixes of /lookup
// (Zipf-skewed keys) and /join (all four algorithms plus planner auto)
// against a live server and records client-side latency histograms per
// endpoint×outcome, 429/outcome accounting, and a client-vs-server
// counter reconciliation against /stats.
//
// Two disciplines are supported. Open-loop arrivals (Poisson or burst)
// fire at a configured offered rate regardless of completions, and
// latency is measured from each request's *intended* send time — the
// coordinated-omission-safe measurement: a stalled server inflates the
// recorded latency of the requests that queued behind the stall rather
// than silently thinning the sample. Closed-loop mode runs N concurrent
// clients with exponential think time, the classic interactive-user
// model, where latency is measured from the actual send.
//
// Sweeping the offered rate across several points turns the service's
// p99 and 429 rate into curves against offered load — the SLO-style
// regression surface tracked in BENCH_service.json.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mmjoin/internal/metrics"
	"mmjoin/internal/service"
	"mmjoin/internal/sim"
)

// Mode selects the arrival discipline.
type Mode int

const (
	// OpenPoisson fires requests with exponential inter-arrival gaps at
	// Rate requests/sec, independent of completions.
	OpenPoisson Mode = iota
	// OpenBurst fires BurstSize back-to-back requests every
	// BurstSize/Rate seconds — the same offered rate, delivered in
	// spikes that stress the admission queue.
	OpenBurst
	// Closed runs Clients concurrent clients, each looping
	// request → response → think.
	Closed
)

func (m Mode) String() string {
	switch m {
	case OpenPoisson:
		return "open-poisson"
	case OpenBurst:
		return "open-burst"
	case Closed:
		return "closed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps the CLI names onto modes.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "poisson", "open-poisson":
		return OpenPoisson, nil
	case "burst", "open-burst":
		return OpenBurst, nil
	case "closed":
		return Closed, nil
	}
	return 0, fmt.Errorf("loadgen: unknown mode %q (poisson, burst, closed)", s)
}

// DefaultJoinAlgs is the join blend when none is configured: the planner
// choice plus every explicit algorithm, uniformly weighted.
var DefaultJoinAlgs = []string{"auto", "nested-loops", "sort-merge", "grace", "hybrid-hash"}

// Mix describes the traffic blend.
type Mix struct {
	// LookupFraction is the share of requests that are /lookup
	// (the rest are /join).
	LookupFraction float64
	// ZipfS is the lookup key skew exponent (must be > 1; default 1.2).
	// Rank 0 — the hottest key — maps to R partition 0, index 0.
	ZipfS float64
	// JoinAlgs are the join algorithm names drawn uniformly
	// (default DefaultJoinAlgs).
	JoinAlgs []string
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the live server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Seed makes the request schedule and key sequence deterministic.
	Seed int64
	// Duration bounds the schedule horizon (open-loop) or run time
	// (closed-loop). Default 2s.
	Duration time.Duration

	Mode Mode
	// Rate is the open-loop offered load in requests/sec.
	Rate float64
	// BurstSize is the OpenBurst spike size (default 16).
	BurstSize int
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// ThinkMean is the closed-loop mean exponential think time
	// (default 5ms).
	ThinkMean time.Duration

	Mix Mix

	// MaxInflight caps outstanding open-loop requests (default 512).
	// Hitting the cap delays dispatch, and the delay is charged to the
	// affected requests' latency — never hidden.
	MaxInflight int
	// MaxRetries is how many times a 429 is retried after honoring its
	// Retry-After hint (default 0: count the 429 and move on).
	MaxRetries int
	// RetryCap bounds the honored Retry-After wait (default 2s) so a
	// 30s hint cannot stall a short run.
	RetryCap time.Duration
	// Timeout is the per-attempt client timeout. Zero (the default)
	// means no client-side deadline — every request then ends with a
	// definite server response, which is what makes client/server
	// counter reconciliation exact. Client-abandoned requests are
	// counted as net errors and make the reconciliation advisory.
	Timeout time.Duration
	// JoinMemBytes is the per-join memory grant (0: server default).
	JoinMemBytes int64
	// JoinTimeoutMs shortens the server-side per-join timeout (0: server
	// default).
	JoinTimeoutMs int64
}

func (cfg *Config) withDefaults() error {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Mode != Closed && cfg.Rate <= 0 {
		return fmt.Errorf("loadgen: open-loop mode needs Rate > 0, got %g", cfg.Rate)
	}
	if cfg.BurstSize <= 0 {
		cfg.BurstSize = 16
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.ThinkMean <= 0 {
		cfg.ThinkMean = 5 * time.Millisecond
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 512
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 2 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Mix.ZipfS == 0 {
		cfg.Mix.ZipfS = 1.2
	}
	if cfg.Mix.ZipfS <= 1 {
		return fmt.Errorf("loadgen: ZipfS must be > 1, got %g", cfg.Mix.ZipfS)
	}
	if cfg.Mix.LookupFraction < 0 || cfg.Mix.LookupFraction > 1 {
		return fmt.Errorf("loadgen: LookupFraction %g outside [0,1]", cfg.Mix.LookupFraction)
	}
	if len(cfg.Mix.JoinAlgs) == 0 {
		cfg.Mix.JoinAlgs = DefaultJoinAlgs
	}
	return nil
}

// Outcome classifies one request's final disposition.
type Outcome int

const (
	OutcomeOK          Outcome = iota // 2xx
	OutcomeBadRequest                 // 400
	OutcomeNotFound                   // 404
	OutcomeTooLarge                   // 413
	OutcomeThrottled                  // 429 after exhausting retries
	OutcomeUnavailable                // 503 (draining, or abandoned mid-join on server timeout)
	OutcomeServerError                // any other 5xx
	OutcomeNetError                   // transport failure or client-side timeout
)

var outcomeNames = [...]string{
	"ok", "bad_request", "not_found", "too_large",
	"throttled", "unavailable", "server_error", "net_error",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// classify maps an HTTP status onto an outcome.
func classify(status int) Outcome {
	switch {
	case status >= 200 && status < 300:
		return OutcomeOK
	case status == http.StatusBadRequest:
		return OutcomeBadRequest
	case status == http.StatusNotFound:
		return OutcomeNotFound
	case status == http.StatusRequestEntityTooLarge:
		return OutcomeTooLarge
	case status == http.StatusTooManyRequests:
		return OutcomeThrottled
	case status == http.StatusServiceUnavailable:
		return OutcomeUnavailable
	default:
		return OutcomeServerError
	}
}

// Result is one run's client-side accounting.
type Result struct {
	Config  Config
	Started time.Time
	Wall    time.Duration
	D, NR   int // served database shape, read from /stats

	// Sent counts scheduled requests dispatched; Attempts counts HTTP
	// requests including retries; Retries counts honored-Retry-After
	// resends; Resp429 counts 429 responses at the attempt level
	// (a retried-then-admitted request still contributes here).
	Sent, Attempts, Retries, Resp429 int64

	// Outcomes is the final disposition per request, keyed
	// "endpoint.outcome" (e.g. "join.ok", "lookup.throttled").
	Outcomes map[string]int64
	// StatusByKind counts attempt-level HTTP statuses per endpoint —
	// the side reconciled against the server's /stats counters.
	StatusByKind map[Kind]map[int]int64
	// NetErrors counts transport failures per endpoint.
	NetErrors map[Kind]int64

	// JoinResults counts distinct (pairs, signature) values over OK
	// joins — ground-truth spot checks key on there being exactly one.
	JoinResults map[string]int64

	// StatsBefore/StatsAfter bracket the run.
	StatsBefore, StatsAfter service.Stats
	Reconciliation          Reconciliation

	mu    sync.Mutex
	hists map[string]*metrics.Histogram // latency per "endpoint.outcome"
}

// Latency returns the latency histogram for "endpoint.outcome" (nil if
// no such request finished). Open-loop latencies are measured from the
// intended send time.
func (r *Result) Latency(kind Kind, o Outcome) *metrics.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[kind.String()+"."+o.String()]
}

// MergedOK returns one histogram over every successful request
// (lookup and join 2xx responses together).
func (r *Result) MergedOK() *metrics.Histogram {
	m := new(metrics.Histogram)
	m.Merge(r.Latency(KindLookup, OutcomeOK))
	m.Merge(r.Latency(KindJoin, OutcomeOK))
	return m
}

// OKCount is the number of requests that ended 2xx.
func (r *Result) OKCount() int64 {
	return r.Outcomes["join.ok"] + r.Outcomes["lookup.ok"]
}

// Rate429 is the fraction of attempts answered 429.
func (r *Result) Rate429() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Resp429) / float64(r.Attempts)
}

func (r *Result) record(kind Kind, o Outcome, lat time.Duration) {
	key := kind.String() + "." + o.String()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Outcomes[key]++
	h, ok := r.hists[key]
	if !ok {
		h = new(metrics.Histogram)
		r.hists[key] = h
	}
	h.Observe(sim.Time(lat))
}

func (r *Result) countStatus(kind Kind, status int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.StatusByKind[kind]
	if !ok {
		m = make(map[int]int64)
		r.StatusByKind[kind] = m
	}
	m[status]++
}

// runner executes one configured run.
type runner struct {
	cfg    Config
	client *http.Client
	res    *Result
}

// Run executes one load run against the configured server and returns
// the client-side accounting, including the /stats reconciliation.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	tr := &http.Transport{
		MaxIdleConns:        cfg.MaxInflight + cfg.Clients,
		MaxIdleConnsPerHost: cfg.MaxInflight + cfg.Clients,
	}
	defer tr.CloseIdleConnections()
	r := &runner{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout, Transport: tr},
		res: &Result{
			Config:       cfg,
			Outcomes:     make(map[string]int64),
			StatusByKind: make(map[Kind]map[int]int64),
			NetErrors:    make(map[Kind]int64),
			JoinResults:  make(map[string]int64),
			hists:        make(map[string]*metrics.Histogram),
		},
	}
	before, err := r.fetchStats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: /stats before run: %w", err)
	}
	r.res.StatsBefore = before
	r.res.D, r.res.NR = before.DB.D, before.DB.NR
	if before.DB.Kind == "sharded" && len(before.DB.Shards) > 0 {
		// A sharded store replicates S but partitions R: each lookup is
		// routed to exactly one shard and validated against that shard's
		// local partition sizes. Bound keys by the smallest shard so
		// keyToRef cannot address rows past a routed shard's floor.
		minNR := before.DB.Shards[0].NR
		for _, sh := range before.DB.Shards[1:] {
			minNR = min(minNR, sh.NR)
		}
		r.res.NR = minNR
	}
	if r.res.NR < 1 || r.res.D < 1 {
		return nil, fmt.Errorf("loadgen: server reports empty database (NR=%d D=%d)", r.res.NR, r.res.D)
	}

	r.res.Started = time.Now()
	switch cfg.Mode {
	case OpenPoisson, OpenBurst:
		err = r.runOpen(ctx)
	case Closed:
		err = r.runClosed(ctx)
	default:
		err = fmt.Errorf("loadgen: unknown mode %d", cfg.Mode)
	}
	r.res.Wall = time.Since(r.res.Started)
	if err != nil {
		return nil, err
	}
	after, err := r.fetchStats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: /stats after run: %w", err)
	}
	r.res.StatsAfter = after
	r.res.Reconciliation = Reconcile(before, after, r.res)
	return r.res, nil
}

// runOpen dispatches the precomputed schedule: every op gets its own
// goroutine that sleeps until the intended send time, acquires an
// inflight slot, and measures latency from the intended time — queueing
// behind the slot cap or a stalled server is charged to the request.
func (r *runner) runOpen(ctx context.Context) error {
	ops, err := BuildSchedule(r.cfg, r.res.NR)
	if err != nil {
		return err
	}
	sem := make(chan struct{}, r.cfg.MaxInflight)
	var wg sync.WaitGroup
	start := r.res.Started
	for i := range ops {
		op := ops[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			intended := start.Add(op.At)
			if wait := time.Until(intended); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			r.do(ctx, op, intended)
		}()
	}
	wg.Wait()
	return nil
}

// runClosed runs Clients deterministic request→think loops until the
// duration elapses. Latency is measured from the actual send (a closed
// loop has no intended schedule to fall behind).
func (r *runner) runClosed(ctx context.Context) error {
	var wg sync.WaitGroup
	start := r.res.Started
	for c := 0; c < r.cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			next := clientStream(r.cfg, r.res.NR, c)
			for time.Since(start) < r.cfg.Duration && ctx.Err() == nil {
				op, think := next()
				r.do(ctx, op, time.Now())
				if think > 0 {
					t := time.NewTimer(think)
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	return nil
}

// do sends one op, honoring capped Retry-After retries, and records its
// final outcome with latency measured from intended.
func (r *runner) do(ctx context.Context, op Op, intended time.Time) {
	atomic.AddInt64(&r.res.Sent, 1)
	for attempt := 0; ; attempt++ {
		atomic.AddInt64(&r.res.Attempts, 1)
		status, retryAfter, err := r.send(ctx, op)
		if err != nil {
			r.res.mu.Lock()
			r.res.NetErrors[op.Kind]++
			r.res.mu.Unlock()
			r.res.record(op.Kind, OutcomeNetError, time.Since(intended))
			return
		}
		r.res.countStatus(op.Kind, status)
		if status == http.StatusTooManyRequests {
			atomic.AddInt64(&r.res.Resp429, 1)
			if attempt < r.cfg.MaxRetries && ctx.Err() == nil {
				atomic.AddInt64(&r.res.Retries, 1)
				wait := retryAfter
				if wait <= 0 {
					wait = 100 * time.Millisecond
				}
				if wait > r.cfg.RetryCap {
					wait = r.cfg.RetryCap
				}
				t := time.NewTimer(wait)
				select {
				case <-t.C:
					continue
				case <-ctx.Done():
					t.Stop()
				}
			}
		}
		r.res.record(op.Kind, classify(status), time.Since(intended))
		return
	}
}

// send performs one HTTP attempt and returns the status and any
// Retry-After hint.
func (r *runner) send(ctx context.Context, op Op) (status int, retryAfter time.Duration, err error) {
	var req *http.Request
	switch op.Kind {
	case KindLookup:
		part, index := r.keyToRef(op.Key)
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/lookup?part=%d&index=%d", r.cfg.BaseURL, part, index), nil)
	case KindJoin:
		body, _ := json.Marshal(service.JoinRequest{
			Algorithm: op.Alg, MemBytes: r.cfg.JoinMemBytes, TimeoutMs: r.cfg.JoinTimeoutMs,
		})
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			r.cfg.BaseURL+"/join", bytes.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return 0, 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if sec := resp.Header.Get("Retry-After"); sec != "" {
		if n, perr := strconv.Atoi(sec); perr == nil && n > 0 {
			retryAfter = time.Duration(n) * time.Second
		}
	}
	if op.Kind == KindJoin && resp.StatusCode == http.StatusOK {
		var jr service.JoinResponse
		if derr := json.NewDecoder(resp.Body).Decode(&jr); derr == nil {
			key := fmt.Sprintf("%d/%s", jr.Pairs, jr.Signature)
			r.res.mu.Lock()
			r.res.JoinResults[key]++
			r.res.mu.Unlock()
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, retryAfter, nil
}

// keyToRef maps a Zipf-ranked global key onto a (partition, index)
// lookup target. Rank 0 — the hottest — lands on R0[0]; ranks spread
// round-robin across partitions, and the index stays below the smallest
// per-partition floor so skewed partition splits cannot 404.
func (r *runner) keyToRef(key int) (part, index int) {
	perPart := r.res.NR / r.res.D
	if perPart < 1 {
		return 0, 0
	}
	if key < 0 {
		key = 0
	}
	return key % r.res.D, (key / r.res.D) % perPart
}

// fetchStats snapshots the server's /stats document.
func (r *runner) fetchStats(ctx context.Context) (service.Stats, error) {
	var st service.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/stats", nil)
	if err != nil {
		return st, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
