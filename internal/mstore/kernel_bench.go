package mstore

import "fmt"

// BucketSet materializes a database's Grace buckets once so the probe
// stage can be driven — and timed — in isolation, bucket partitioning
// excluded. cmd/bench's kernels panel and the go-bench suite probe one
// BucketSet repeatedly through both kernels (flat table at several
// batch widths, legacy map) and compare ns-per-pair and allocs-per-pair
// on identical inputs; the Signature equality between the two is also
// the differential gate TestKernelFlatMatchesMap asserts.
type BucketSet struct {
	db    *DB
	rels  []*Relation
	refs  int64
	kern  *joinKernel
	arena probeArena
}

// BuildGraceBuckets partitions R into k order-preserving Grace buckets
// per S partition under tmpDir and returns the non-empty ones ready for
// repeated probing. The build runs sequentially — it is setup for
// measurement, not the measured stage. Close deletes the bucket files.
func (db *DB) BuildGraceBuckets(tmpDir string, k int) (*BucketSet, error) {
	if k < 1 {
		return nil, fmt.Errorf("mstore: BuildGraceBuckets needs k >= 1, got %d", k)
	}
	d := db.D
	bucketOf := func(ptr SPtr) int {
		rel := db.S[ptr.Part]
		return rankBucket(rel.IndexOf(ptr.Off), k, rel.Count())
	}
	counts := make([][]int64, d)
	for j := range counts {
		counts[j] = make([]int64, k)
	}
	for _, ri := range db.R {
		for x := 0; x < ri.Count(); x++ {
			ptr := DecodeSPtr(ri.Object(x))
			counts[ptr.Part][bucketOf(ptr)]++
		}
	}
	bs := &BucketSet{db: db, kern: newJoinKernel(db, kernelConfig{}.withDefaults())}
	rels := make([][]*Relation, d)
	for j := 0; j < d; j++ {
		rels[j] = make([]*Relation, k)
		for b := 0; b < k; b++ {
			if counts[j][b] == 0 {
				continue
			}
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("bench_gr_%d_%d.seg", j, b), int(counts[j][b]))
			if err != nil {
				bs.Close()
				return nil, err
			}
			rels[j][b] = rel
			bs.rels = append(bs.rels, rel)
			bs.refs += counts[j][b]
		}
	}
	for _, ri := range db.R {
		for x := 0; x < ri.Count(); x++ {
			obj := ri.Object(x)
			ptr := DecodeSPtr(obj)
			if _, err := rels[ptr.Part][bucketOf(ptr)].Append(obj); err != nil {
				bs.Close()
				return nil, err
			}
		}
	}
	return bs, nil
}

// Buckets returns the number of non-empty buckets.
func (bs *BucketSet) Buckets() int { return len(bs.rels) }

// Refs returns the total reference count across buckets — one probe
// pass folds exactly this many pairs.
func (bs *BucketSet) Refs() int64 { return bs.refs }

// ProbeFlat probes every bucket through the flat arena-backed table at
// the given batch width (0 selects the default) and returns the folded
// stats. After the first call the arena has reached its high-water
// capacity and subsequent calls allocate nothing.
func (bs *BucketSet) ProbeFlat(batch int) JoinStats {
	old := bs.kern.batch
	bs.kern.batch = kernelConfig{probeBatch: batch}.withDefaults().probeBatch
	var st JoinStats
	for _, rel := range bs.rels {
		bs.kern.probeFlat(&bs.arena, rel, &st)
	}
	bs.kern.batch = old
	return st
}

// ProbeMap probes every bucket through the legacy per-bucket Go map —
// the baseline the flat kernel is measured and gated against.
func (bs *BucketSet) ProbeMap() JoinStats {
	var st JoinStats
	for _, rel := range bs.rels {
		bs.db.probeBucketMap(rel, &st)
	}
	return st
}

// Close deletes the bucket files.
func (bs *BucketSet) Close() {
	for _, rel := range bs.rels {
		rel.Segment().Delete()
	}
	bs.rels = nil
}
