package mmjoin

// Smoke test for the example programs: each ./examples/<name> is built
// and executed with its defaults, checking it exits cleanly and prints
// something. Skipped under -short (the slow tier) like the cmd smoke
// tests.

import (
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples found")
	}
	for _, dir := range examples {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), name)
			out, err := exec.Command("go", "build", "-o", bin, "./"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err = exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
