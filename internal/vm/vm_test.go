package vm

import (
	"testing"
	"testing/quick"

	"mmjoin/internal/disk"
	"mmjoin/internal/metrics"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
)

const pageBytes = 4096

type rig struct {
	k *sim.Kernel
	d *disk.Disk
	m *seg.Manager
}

func newRig() *rig {
	k := sim.NewKernel()
	cfg := disk.DefaultConfig()
	cfg.Blocks = 20000
	d := disk.MustNew(k, "d0", cfg)
	return &rig{k: k, d: d, m: seg.NewManager(seg.NewSystem(seg.DefaultSetupCost()), d)}
}

func (r *rig) run(fn func(p *sim.Proc)) sim.Time {
	r.k.Spawn("t", func(p *sim.Proc) {
		fn(p)
		r.d.Drain(p)
		r.d.Close()
	})
	return r.k.Run()
}

func TestHitCostsNothing(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 4*pageBytes)
		pg.Touch(p, s, 0, 100, false)
		before := p.Now()
		pg.Touch(p, s, 0, 100, false) // same page: hit
		if p.Now() != before {
			t.Error("page hit should cost no time")
		}
	})
	st := pg.Stats()
	if st.Hits != 1 || st.Faults != 1 || st.DiskReads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestZeroFillFaultDoesNoIO(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.NewMap(p, "new", 4*pageBytes)
		before := p.Now()
		pg.Touch(p, s, 0, pageBytes, true)
		if p.Now() != before {
			t.Error("zero-fill fault should be free of disk time")
		}
	})
	st := pg.Stats()
	if st.ZeroFills != 1 || st.DiskReads != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTouchSpansPages(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 4*pageBytes)
		pg.Touch(p, s, pageBytes-1, 2, false) // straddles pages 0 and 1
	})
	if st := pg.Stats(); st.Faults != 2 {
		t.Errorf("Faults = %d, want 2", st.Faults)
	}
}

func TestTouchBeyondSegmentPanics(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", pageBytes)
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		pg.Touch(p, s, 0, pageBytes+1, false)
	})
}

func TestLRUEviction(t *testing.T) {
	r := newRig()
	pg := New("pg", 4)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 10*pageBytes)
		for pageIdx := 0; pageIdx < 5; pageIdx++ {
			pg.TouchPage(p, s, pageIdx, false)
		}
		if pg.IsResident(s, 0) {
			t.Error("page 0 should have been evicted (LRU)")
		}
		for _, pageIdx := range []int{1, 2, 3, 4} {
			if !pg.IsResident(s, pageIdx) {
				t.Errorf("page %d should be resident", pageIdx)
			}
		}
	})
}

func TestLRUOrderRespectsRecency(t *testing.T) {
	r := newRig()
	pg := New("pg", 3)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 10*pageBytes)
		pg.TouchPage(p, s, 0, false)
		pg.TouchPage(p, s, 1, false)
		pg.TouchPage(p, s, 2, false)
		pg.TouchPage(p, s, 0, false) // refresh 0; now 1 is LRU
		pg.TouchPage(p, s, 3, false)
		if pg.IsResident(s, 1) {
			t.Error("page 1 should be the eviction victim")
		}
		if !pg.IsResident(s, 0) {
			t.Error("recently used page 0 evicted")
		}
	})
}

func TestCleanPagePreference(t *testing.T) {
	r := newRig()
	pg := New("pg", 4) // prefDepth = 4
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 10*pageBytes)
		pg.TouchPage(p, s, 0, true)  // dirty, LRU end
		pg.TouchPage(p, s, 1, false) // clean
		pg.TouchPage(p, s, 2, true)  // dirty
		pg.TouchPage(p, s, 3, true)  // dirty
		pg.TouchPage(p, s, 4, false) // forces eviction
		if pg.IsResident(s, 1) {
			t.Error("clean page 1 should be preferred victim over dirty LRU page 0")
		}
		if !pg.IsResident(s, 0) {
			t.Error("dirty page 0 evicted despite clean candidate")
		}
	})
	if pg.Stats().CleanPrefHits != 1 {
		t.Errorf("CleanPrefHits = %d, want 1", pg.Stats().CleanPrefHits)
	}
}

func TestDirtyEvictionSchedulesWriteAndMarksOnDisk(t *testing.T) {
	r := newRig()
	pg := New("pg", 2)
	var s *seg.Segment
	r.run(func(p *sim.Proc) {
		s = r.m.NewMap(p, "tmp", 10*pageBytes)
		pg.TouchPage(p, s, 0, true)
		pg.TouchPage(p, s, 1, true)
		pg.TouchPage(p, s, 2, true) // evicts page 0 (dirty, no clean candidate)
		if s.OnDisk(0) != true {
			t.Error("evicted dirty page should be marked on disk")
		}
	})
	if r.d.Stats().Writes == 0 {
		t.Error("dirty eviction produced no disk write")
	}
	if pg.Stats().DirtyEvicts != 1 {
		t.Errorf("DirtyEvicts = %d, want 1", pg.Stats().DirtyEvicts)
	}
}

func TestRefaultAfterDirtyEvictReadsDisk(t *testing.T) {
	// The premature-replacement cost the paper's urn model counts: one
	// extra write plus one extra read.
	r := newRig()
	pg := New("pg", 2)
	r.run(func(p *sim.Proc) {
		s := r.m.NewMap(p, "tmp", 10*pageBytes)
		pg.TouchPage(p, s, 0, true)
		pg.TouchPage(p, s, 1, true)
		pg.TouchPage(p, s, 2, true) // evict 0
		pg.TouchPage(p, s, 0, false)
	})
	if got := pg.Stats().DiskReads; got != 1 {
		t.Errorf("DiskReads = %d, want 1 (re-fault of written-back page)", got)
	}
}

func TestReserveShrinksQuota(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 20*pageBytes)
		for pageIdx := 0; pageIdx < 8; pageIdx++ {
			pg.TouchPage(p, s, pageIdx, false)
		}
		if pg.Resident() != 8 {
			t.Fatalf("Resident = %d", pg.Resident())
		}
		pg.Reserve(p, 5)
		if pg.Resident() != 3 {
			t.Errorf("Resident after Reserve(5) = %d, want 3", pg.Resident())
		}
		pg.Unreserve(5)
		if pg.Reserved() != 0 {
			t.Errorf("Reserved = %d", pg.Reserved())
		}
	})
}

func TestReserveNeverStarvesMappedPages(t *testing.T) {
	r := newRig()
	pg := New("pg", 4)
	r.run(func(p *sim.Proc) {
		pg.Reserve(p, 100) // clamped: at least one frame remains
		s := r.m.Preexisting("s", 4*pageBytes)
		pg.TouchPage(p, s, 0, false) // must not panic
	})
	if pg.Reserved() != 3 {
		t.Errorf("Reserved = %d, want 3", pg.Reserved())
	}
}

func TestReserveReturnsGrantedCount(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		if got := pg.Reserve(p, 5); got != 5 {
			t.Errorf("Reserve(5) granted %d, want 5", got)
		}
		// 5 already pinned, quota 8: a request for 10 clamps to 2 so one
		// frame stays available for mapped pages.
		if got := pg.Reserve(p, 10); got != 2 {
			t.Errorf("Reserve(10) granted %d, want 2 (clamped)", got)
		}
		// Fully pinned-but-one: further requests grant nothing.
		if got := pg.Reserve(p, 1); got != 0 {
			t.Errorf("Reserve(1) granted %d, want 0", got)
		}
		if pg.Reserved() != 7 {
			t.Errorf("Reserved = %d, want 7", pg.Reserved())
		}
		pg.Unreserve(7)
		if pg.Reserved() != 0 {
			t.Errorf("Reserved = %d after Unreserve", pg.Reserved())
		}
	})
}

func TestInstrumentGauges(t *testing.T) {
	r := newRig()
	reg := metrics.New()
	pg := New("pg", 8)
	pg.Instrument(reg)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 20*pageBytes)
		for pageIdx := 0; pageIdx < 12; pageIdx++ {
			pg.TouchPage(p, s, pageIdx, false)
		}
		pg.TouchPage(p, s, 11, false) // one hit
		pg.Reserve(p, 2)
	})
	reg.Sample(r.k.Now())
	vals := reg.Samples()[0].Values
	st := pg.Stats()
	if vals["vm.pg.resident"] != float64(pg.Resident()) {
		t.Errorf("resident gauge %v, pager %d", vals["vm.pg.resident"], pg.Resident())
	}
	if vals["vm.pg.reserved"] != 2 {
		t.Errorf("reserved gauge %v", vals["vm.pg.reserved"])
	}
	if vals["vm.pg.faults"] != float64(st.Faults) {
		t.Errorf("faults gauge %v, stats %d", vals["vm.pg.faults"], st.Faults)
	}
	wantFault := float64(st.Faults) / float64(st.Touches)
	if vals["vm.pg.fault_rate"] != wantFault {
		t.Errorf("fault_rate gauge %v, want %v", vals["vm.pg.fault_rate"], wantFault)
	}
	wantHit := float64(st.Hits) / float64(st.Touches)
	if vals["vm.pg.hit_rate"] != wantHit {
		t.Errorf("hit_rate gauge %v, want %v", vals["vm.pg.hit_rate"], wantHit)
	}
}

func TestFlushSegment(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	var s *seg.Segment
	r.run(func(p *sim.Proc) {
		s = r.m.NewMap(p, "tmp", 4*pageBytes)
		pg.Touch(p, s, 0, 3*pageBytes, true)
		pg.FlushSegment(p, s)
		for pageIdx := 0; pageIdx < 3; pageIdx++ {
			if !s.OnDisk(pageIdx) {
				t.Errorf("page %d not on disk after flush", pageIdx)
			}
		}
	})
	if got := pg.Stats().DirtyFlushed; got != 3 {
		t.Errorf("DirtyFlushed = %d, want 3", got)
	}
	if w := r.d.Stats().Writes; w != 3 {
		t.Errorf("disk writes = %d, want 3", w)
	}
}

func TestDropSegment(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.NewMap(p, "tmp", 4*pageBytes)
		keep := r.m.Preexisting("keep", 2*pageBytes)
		pg.Touch(p, s, 0, 4*pageBytes, true)
		pg.TouchPage(p, keep, 0, false)
		pg.DropSegment(s)
		if pg.Resident() != 1 {
			t.Errorf("Resident = %d, want 1", pg.Resident())
		}
		if !pg.IsResident(keep, 0) {
			t.Error("unrelated page dropped")
		}
	})
	// Dropped dirty pages must not be written.
	if w := r.d.Stats().Writes; w != 0 {
		t.Errorf("disk writes = %d, want 0", w)
	}
}

func TestFlushAllIdempotent(t *testing.T) {
	r := newRig()
	pg := New("pg", 8)
	r.run(func(p *sim.Proc) {
		s := r.m.NewMap(p, "tmp", 2*pageBytes)
		pg.Touch(p, s, 0, 2*pageBytes, true)
		pg.FlushAll(p)
		pg.FlushAll(p) // second flush: nothing dirty
	})
	if got := pg.Stats().DirtyFlushed; got != 2 {
		t.Errorf("DirtyFlushed = %d, want 2", got)
	}
}

func TestSequentialScanFaultsOncePerPage(t *testing.T) {
	r := newRig()
	pg := New("pg", 4)
	var elapsed sim.Time
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 100*pageBytes)
		start := p.Now()
		// Scan 100 pages object by object (128-byte objects).
		for off := int64(0); off < 100*pageBytes; off += 128 {
			pg.Touch(p, s, off, 128, false)
		}
		elapsed = p.Now() - start
	})
	st := pg.Stats()
	if st.Faults != 100 {
		t.Errorf("Faults = %d, want 100", st.Faults)
	}
	// Cost should be 100 sequential block reads (the head starts at
	// block 0, so the very first read is a sequential continuation too).
	cfg := r.d.Config()
	seqCost := sim.Time(100) * (cfg.Transfer + cfg.FaultOverhead)
	if elapsed != seqCost {
		t.Errorf("scan cost %v, want %v", elapsed, seqCost)
	}
}

// Property: resident never exceeds quota, and every touched page is
// resident immediately after its touch.
func TestQuickQuotaInvariant(t *testing.T) {
	f := func(pages []uint8, writes []bool, quota uint8) bool {
		frames := int(quota)%16 + 1
		r := newRig()
		pg := New("pg", frames)
		ok := true
		r.run(func(p *sim.Proc) {
			s := r.m.Preexisting("s", 256*pageBytes)
			for i, raw := range pages {
				if i >= 64 {
					break
				}
				w := i < len(writes) && writes[i]
				pg.TouchPage(p, s, int(raw), w)
				if pg.Resident() > frames {
					ok = false
				}
				if !pg.IsResident(s, int(raw)) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: total faults = disk reads + zero fills, and hits + faults =
// touches.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(pages []uint8) bool {
		r := newRig()
		pg := New("pg", 6)
		r.run(func(p *sim.Proc) {
			s := r.m.NewMap(p, "s", 256*pageBytes)
			for i, raw := range pages {
				if i >= 80 {
					break
				}
				pg.TouchPage(p, s, int(raw), raw%3 == 0)
			}
		})
		st := pg.Stats()
		return st.Faults == st.DiskReads+st.ZeroFills && st.Hits+st.Faults == st.Touches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Clock.String() != "clock" ||
		Policy(9).String() == "" {
		t.Error("Policy.String broken")
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	r := newRig()
	pg := NewWithPolicy("pg", 3, FIFO)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 10*pageBytes)
		pg.TouchPage(p, s, 0, false)
		pg.TouchPage(p, s, 1, false)
		pg.TouchPage(p, s, 2, false)
		pg.TouchPage(p, s, 0, false) // re-reference page 0: FIFO ignores it
		pg.TouchPage(p, s, 3, false)
		if pg.IsResident(s, 0) {
			t.Error("FIFO should evict oldest-loaded page 0 despite the re-reference")
		}
	})
}

func TestClockSecondChance(t *testing.T) {
	r := newRig()
	pg := NewWithPolicy("pg", 3, Clock)
	r.run(func(p *sim.Proc) {
		s := r.m.Preexisting("s", 10*pageBytes)
		pg.TouchPage(p, s, 0, false)
		pg.TouchPage(p, s, 1, false)
		pg.TouchPage(p, s, 2, false)
		pg.TouchPage(p, s, 0, false) // sets 0's reference bit
		pg.TouchPage(p, s, 3, false) // sweep: 0 spared (bit), 1 evicted
		if !pg.IsResident(s, 0) {
			t.Error("Clock should spare the referenced page 0")
		}
		if pg.IsResident(s, 1) {
			t.Error("Clock should evict the unreferenced page 1")
		}
	})
}

func TestFIFOThrashesEarlierThanLRU(t *testing.T) {
	// A loop over frames+1 pages with occasional re-touches: LRU keeps
	// the hot page resident; FIFO cycles everything (Belady-style).
	faultsFor := func(policy Policy) int64 {
		r := newRig()
		pg := NewWithPolicy("pg", 4, policy)
		r.run(func(p *sim.Proc) {
			s := r.m.Preexisting("s", 64*pageBytes)
			for round := 0; round < 30; round++ {
				pg.TouchPage(p, s, 0, false) // hot page
				pg.TouchPage(p, s, 1+round%4, false)
				pg.TouchPage(p, s, 5+round%3, false)
			}
		})
		return pg.Stats().Faults
	}
	if lru, fifo := faultsFor(LRU), faultsFor(FIFO); fifo <= lru {
		t.Errorf("FIFO faults (%d) should exceed LRU faults (%d)", fifo, lru)
	}
}
