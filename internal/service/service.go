package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/model"
	"mmjoin/internal/mstore"
	"mmjoin/internal/planner"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// Config parameterizes one server. Zero values select the documented
// defaults.
type Config struct {
	// Dir is the database directory (required) and D its partition count.
	Dir string
	D   int

	// MemBudget is the total bytes of join memory the service may have
	// charged to concurrently executing joins (default 8·DefaultGrant).
	MemBudget int64
	// DefaultGrant is the per-request memory grant when the request does
	// not name one (default 4 MiB · D).
	DefaultGrant int64
	// MaxQueue bounds the admission wait queue; a full queue answers 429
	// (default 64, negative disables queueing entirely).
	MaxQueue int
	// RequestTimeout caps each request's admission wait plus execution
	// (default 30s; requests may shorten it per call).
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// CalibrationOps is the analytical-model calibration effort at
	// startup (default 800 measured I/Os per band size).
	CalibrationOps int

	// Workers sizes the work-stealing morsel pool shared by every
	// in-flight join (default GOMAXPROCS). However many joins run
	// concurrently, at most Workers goroutines execute join morsels at
	// any instant — the pool, not the request count, bounds CPU fan-out.
	Workers int
}

func (cfg *Config) withDefaults() error {
	if cfg.Dir == "" {
		return fmt.Errorf("service: database dir required")
	}
	if cfg.D < 1 {
		return fmt.Errorf("service: D=%d must be >= 1", cfg.D)
	}
	if cfg.DefaultGrant <= 0 {
		cfg.DefaultGrant = int64(cfg.D) << 22
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 8 * cfg.DefaultGrant
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.CalibrationOps <= 0 {
		cfg.CalibrationOps = 800
	}
	return nil
}

// Server is the concurrent query service over one mapped database. All
// endpoints are safe for concurrent use; joins execute real goroutine
// parallelism over the shared read-only base relations, with per-request
// temporary directories.
type Server struct {
	cfg  Config
	db   *mstore.DB
	w    *relation.Workload // the db's shape+references, for the planner
	pl   *planner.Planner
	sim  machine.Config // simulated machine the planner costs against
	adm  *Admission
	pool *exec.Pool // morsel pool shared by all in-flight joins

	start time.Time
	// drainMu orders inflight.Add against Drain's draining transition:
	// every request either registers with inflight before Drain flips the
	// flag (and is therefore seen by inflight.Wait) or observes the flag
	// and is rejected. It also keeps Add from running on a zero counter
	// concurrently with Wait, which WaitGroup forbids.
	drainMu  sync.Mutex
	inflight sync.WaitGroup
	draining atomic.Bool
	reqSeq   atomic.Int64

	// peakTableBytes is the server-wide high-water mark of any single
	// join's counted probe-table memory, exported as a gauge.
	peakTableBytes atomic.Int64

	// meanServiceNs is an EWMA of admitted-join execution time (the time
	// a grant stays charged), the rate at which budget slots recycle. It
	// feeds the dynamic Retry-After hint.
	meanServiceNs atomic.Int64

	// preJoin, when set by tests, runs inside the join goroutine after
	// admission and before execution, making mid-join timing
	// deterministic.
	preJoin func()

	mu        sync.Mutex // guards reg and the instrument maps
	reg       *metrics.Registry
	counters  map[string]*metrics.Counter
	hists     map[string]*metrics.Histogram
	histOrder []string
}

// New opens the database, derives its workload shape, calibrates the
// planner, and assembles the admission controller. Close releases the
// mapping.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	db, err := mstore.OpenDB(cfg.Dir, cfg.D)
	if err != nil {
		return nil, err
	}
	w, err := db.Workload()
	if err != nil {
		db.Close()
		return nil, err
	}
	mcfg := machine.DefaultConfig()
	mcfg.D = cfg.D
	calib := model.Calibrate(mcfg, cfg.CalibrationOps, 1)
	s := &Server{
		cfg:      cfg,
		db:       db,
		w:        w,
		pl:       planner.New(calib, nil),
		sim:      mcfg,
		adm:      NewAdmission(cfg.MemBudget, cfg.MaxQueue),
		pool:     exec.NewPool(cfg.Workers),
		start:    time.Now(),
		reg:      metrics.New(),
		counters: make(map[string]*metrics.Counter),
		hists:    make(map[string]*metrics.Histogram),
	}
	// Pool health as callback gauges: occupancy, queue depth, and steal
	// count read live at every /stats snapshot.
	s.reg.Gauge("pool_workers", func() float64 { return float64(s.pool.Stats().Workers) })
	s.reg.Gauge("pool_busy", func() float64 { return float64(s.pool.Stats().Busy) })
	s.reg.Gauge("pool_peak_busy", func() float64 { return float64(s.pool.Stats().PeakBusy) })
	s.reg.Gauge("pool_queued_morsels", func() float64 { return float64(s.pool.Stats().Queued) })
	s.reg.Gauge("pool_steals", func() float64 { return float64(s.pool.Stats().Steals) })
	s.reg.Gauge("pool_executed_morsels", func() float64 { return float64(s.pool.Stats().Executed) })
	s.reg.Gauge("probe_table_peak_bytes", func() float64 { return float64(s.peakTableBytes.Load()) })
	// Admission occupancy as live gauges, so load tooling can watch the
	// queue drain without diffing counters.
	s.reg.Gauge("admission_queue_depth", func() float64 { return float64(s.adm.QueueDepth()) })
	s.reg.Gauge("admission_used_bytes", func() float64 { return float64(s.adm.Stats().UsedBytes) })
	s.reg.Gauge("retry_after_hint_sec", func() float64 { return s.retryAfterHint().Seconds() })
	// Outcome counters registered eagerly so /stats shows them at zero
	// before the first request arrives — client/server reconciliation
	// diffs these keys and must find them on both snapshots.
	for _, name := range []string{
		"spill_restages_total", "spill_restaged_refs_total", "stream_probes_total",
		"grant_renegotiations_total", "grant_renegotiations_denied_total",
		"temp_relations_total",
		"join_requests_total", "bad_requests", "errors_internal", "join_abandoned",
		"rejected_saturated", "rejected_deadline", "rejected_too_large", "rejected_draining",
		"lookups_total", "lookups_ok", "lookups_bad_request", "lookups_not_found",
		"lookups_failed", "lookups_rejected_draining",
		"join_executed_nested-loops", "join_executed_sort-merge",
		"join_executed_grace", "join_executed_hybrid-hash",
	} {
		s.counter(name)
	}
	return s, nil
}

// Close releases the worker pool and unmaps the database. Callers
// should Drain first.
func (s *Server) Close() error {
	s.pool.Close()
	return s.db.Close()
}

// Drain stops admitting new requests (joins answer 503, healthz reports
// draining) and waits until every accepted request — including queued
// ones and joins abandoned by their clients — has finished, or ctx
// expires.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// beginRequest registers one unit of in-flight work with the drain
// waiter, or reports false if the server is draining. Callers that get
// true must s.inflight.Done() when the work finishes; while their
// registration is held, further inflight.Add calls (e.g. for a child
// goroutine) are plain WaitGroup use and need no lock.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// counter returns (creating on first use) a named counter.
func (s *Server) counter(name string) *metrics.Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = s.reg.Counter(name)
		s.counters[name] = c
	}
	return c
}

// observe records a wall-clock duration in a named histogram.
func (s *Server) observe(name string, d time.Duration) {
	s.mu.Lock()
	h, ok := s.hists[name]
	if !ok {
		h = s.reg.Histogram(name)
		s.hists[name] = h
		s.histOrder = append(s.histOrder, name)
	}
	s.mu.Unlock()
	s.mu.Lock()
	h.Observe(sim.Time(d))
	s.mu.Unlock()
}

// inc bumps a named counter (thread-safe).
func (s *Server) inc(name string) { s.add(name, 1) }

// add increases a named counter by d (thread-safe).
func (s *Server) add(name string, d int64) {
	c := s.counter(name)
	s.mu.Lock()
	c.Add(d)
	s.mu.Unlock()
}

// Handler returns the service's HTTP mux: POST /join, GET /lookup,
// GET /stats, GET /healthz. Every handler runs behind panic isolation —
// a panicking request answers 500 and the server keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", s.handleJoin)
	mux.HandleFunc("GET /lookup", s.handleLookup)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.isolate(mux)
}

// isolate recovers handler panics into 500 responses.
func (s *Server) isolate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.inc("panics_recovered")
				writeJSON(rw, http.StatusInternalServerError,
					map[string]string{"error": fmt.Sprintf("internal panic: %v", v)})
			}
		}()
		next.ServeHTTP(rw, r)
	})
}

// JoinRequest is the wire form of one join query.
type JoinRequest struct {
	// Algorithm is "auto" (or empty) for a planner-chosen algorithm, or
	// one of nested-loops, sort-merge, grace, hybrid-hash.
	Algorithm string `json:"algorithm"`
	// MemBytes is the request's total memory grant — the unit of
	// admission control. Zero selects the server default. Each of the D
	// partition goroutines receives MemBytes/D as its MRproc.
	MemBytes int64 `json:"memBytes"`
	// K overrides the Grace/hybrid bucket count (0: derive from grant).
	K int `json:"k"`
	// TimeoutMs shortens the server's request timeout for this call.
	TimeoutMs int64 `json:"timeoutMs"`
}

// PlanEntry is one planner candidate in the response, cheapest first.
type PlanEntry struct {
	Algorithm   string `json:"algorithm"`
	PredictedNs int64  `json:"predictedNs"`
}

// JoinResponse is the wire form of one join result.
type JoinResponse struct {
	Algorithm   string      `json:"algorithm"`
	Pairs       int64       `json:"pairs"`
	Signature   string      `json:"signature"` // hex, order-independent
	MemBytes    int64       `json:"memBytes"`  // granted (charged) bytes
	MRproc      int64       `json:"mrprocBytes"`
	QueueWaitNs int64       `json:"queueWaitNs"`
	ElapsedNs   int64       `json:"elapsedNs"` // execution, excluding queue
	Plan        []PlanEntry `json:"plan,omitempty"`
	PredictedNs int64       `json:"predictedNs,omitempty"` // model's per-join virtual-time estimate

	// Memory-adaptation telemetry (Grace/hybrid-hash): how the join
	// behaved when its grant was tight. Zero values are omitted.
	Restages       int64 `json:"restages,omitempty"`       // oversized buckets respilled to disk
	StreamProbes   int64 `json:"streamProbes,omitempty"`   // hot-key buckets joined by streaming
	Renegotiations int64 `json:"renegotiations,omitempty"` // mid-join grant growths obtained
	PeakTableBytes int64 `json:"peakTableBytes,omitempty"` // high-water counted probe memory
}

// grantGrower adapts the admission controller to the store's mid-join
// renegotiation interface: growth requests charge the shared budget
// without waiting (and without jumping queued joins), give-backs release
// into it.
type grantGrower struct{ adm *Admission }

func (g grantGrower) TryGrow(bytes int64) bool { return g.adm.TryAcquire(bytes) }
func (g grantGrower) GiveBack(bytes int64)     { g.adm.Release(bytes) }

// executable maps wire names onto the store's runnable algorithms.
func parseAlgorithm(name string) (join.Algorithm, bool) {
	switch name {
	case "nested-loops":
		return join.NestedLoops, true
	case "sort-merge":
		return join.SortMerge, true
	case "grace":
		return join.Grace, true
	case "hybrid-hash":
		return join.HybridHash, true
	}
	return 0, false
}

func (s *Server) handleJoin(rw http.ResponseWriter, r *http.Request) {
	s.inc("join_requests_total")
	// Register with the drain waiter before anything else: once past
	// this point the request — including its admission wait and any
	// join goroutine it spawns — is visible to Drain's inflight.Wait,
	// so Drain cannot return (and the caller cannot unmap the db) while
	// this request might still read it.
	if !s.beginRequest() {
		s.inc("rejected_draining")
		writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	defer s.inflight.Done()

	var req JoinRequest
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			s.inc("bad_requests")
			writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
	}
	// K sizes real per-partition bucket state in Grace/hybrid-hash
	// (D·K index slices plus D·K temp files), entirely outside the
	// memory grant the admission controller charges — so an absurd wire
	// value must be rejected here, not trusted. More buckets than R
	// objects can never help; mstore additionally clamps K to the
	// per-partition reference count.
	if maxK := s.db.CountR(); req.K < 0 || req.K > maxK {
		s.inc("bad_requests")
		writeJSON(rw, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("k=%d out of range [0..%d]", req.K, maxK)})
		return
	}
	grant := req.MemBytes
	if grant <= 0 {
		grant = s.cfg.DefaultGrant
	}
	// Every partition goroutine needs at least one page of grant.
	if min := int64(s.cfg.D) * 4096; grant < min {
		grant = min
	}
	mrproc := grant / int64(s.cfg.D)

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 && time.Duration(req.TimeoutMs)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Plan: cost the request through the calibrated model. The planner
	// sees the exact database shape (measured skew and distinct counts).
	resp := JoinResponse{MemBytes: grant, MRproc: mrproc}
	var alg join.Algorithm
	if req.Algorithm == "" || req.Algorithm == "auto" {
		choice, err := s.pl.ChooseFor(join.Request{
			Config: s.sim,
			Params: join.Params{Workload: s.w, MRproc: mrproc, K: req.K},
		})
		if err != nil {
			s.inc("errors_internal")
			writeJSON(rw, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		alg = choice.Best.Algorithm
		resp.PredictedNs = int64(choice.Best.Predicted)
		for _, c := range choice.Candidates {
			resp.Plan = append(resp.Plan, PlanEntry{Algorithm: c.Algorithm.String(), PredictedNs: int64(c.Predicted)})
		}
		s.inc("plan_choice_" + alg.String())
	} else {
		var ok bool
		alg, ok = parseAlgorithm(req.Algorithm)
		if !ok {
			s.inc("bad_requests")
			writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "unknown algorithm " + strconv.Quote(req.Algorithm)})
			return
		}
	}
	resp.Algorithm = alg.String()

	// Admission: charge the grant against the shared memory budget.
	admStart := time.Now()
	if err := s.adm.Acquire(ctx, grant); err != nil {
		s.rejectAdmission(rw, err)
		return
	}
	queueWait := time.Since(admStart)
	resp.QueueWaitNs = queueWait.Nanoseconds()
	s.observe("admission_wait", queueWait)

	// Execute on a child goroutine so client cancellation unblocks the
	// handler; an abandoned join keeps its grant until it finishes (the
	// memory truly is in use until then) and releases it on completion.
	type outcome struct {
		st  mstore.JoinStats
		err error
	}
	tmp := filepath.Join(s.cfg.Dir, "tmp", fmt.Sprintf("req%d", s.reqSeq.Add(1)))
	execStart := time.Now()
	done := make(chan outcome, 1)
	tel := &mstore.JoinTelemetry{}
	// The handler's own registration is still held here, so this Add
	// runs on a non-zero counter and needs no drainMu.
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		// The grant is held from execStart until the join finishes — even
		// when the client abandoned the request — so this is the honest
		// slot-recycling time the Retry-After hint needs. Releasing before
		// the done-send below means a caller who has our 200 in hand
		// observes the budget already balanced.
		released := false
		release := func() {
			if !released {
				released = true
				s.recordServiceTime(time.Since(execStart))
				s.adm.Release(grant)
			}
		}
		defer release()
		defer os.RemoveAll(tmp)
		defer func() {
			if v := recover(); v != nil {
				done <- outcome{err: fmt.Errorf("join panicked: %v", v)}
			}
		}()
		if s.preJoin != nil {
			s.preJoin()
		}
		// The join's morsels run on the server's shared pool: however
		// many joins are in flight, at most cfg.Workers goroutines
		// execute morsels. Passing ctx aborts the join between morsels
		// when the client abandons it, releasing the grant early. The
		// grant charged at admission is the join's probe-memory bound
		// (MemGrant), and a join that outgrows it renegotiates against
		// the same shared budget through the controller.
		st, err := s.db.Run(mstore.JoinRequest{
			Algorithm: alg, MRproc: mrproc, K: req.K, TmpDir: tmp,
			MemGrant: grant, Telemetry: tel, Negotiator: grantGrower{s.adm},
			Pool: s.pool, Ctx: ctx,
		})
		s.foldTelemetry(tel)
		release()
		done <- outcome{st: st, err: err}
	}()

	select {
	case out := <-done:
		elapsed := time.Since(execStart)
		if out.err != nil {
			s.inc("errors_internal")
			writeJSON(rw, http.StatusInternalServerError, map[string]string{"error": out.err.Error()})
			return
		}
		s.inc("join_executed_" + alg.String())
		s.observe("join_latency_"+alg.String(), elapsed)
		resp.Pairs = out.st.Pairs
		resp.Signature = fmt.Sprintf("%016x", out.st.Signature)
		resp.ElapsedNs = elapsed.Nanoseconds()
		resp.Restages = tel.Restages.Load()
		resp.StreamProbes = tel.StreamProbes.Load()
		resp.Renegotiations = tel.Renegotiations.Load()
		resp.PeakTableBytes = tel.PeakTableBytes.Load()
		writeJSON(rw, http.StatusOK, resp)
	case <-ctx.Done():
		s.inc("join_abandoned")
		writeJSON(rw, http.StatusServiceUnavailable,
			map[string]string{"error": "request abandoned mid-join: " + ctx.Err().Error()})
	}
}

// foldTelemetry rolls one finished join's memory-adaptation counters
// into the server's /stats counters and peak gauge.
func (s *Server) foldTelemetry(tel *mstore.JoinTelemetry) {
	s.add("spill_restages_total", tel.Restages.Load())
	s.add("spill_restaged_refs_total", tel.RestagedRefs.Load())
	s.add("stream_probes_total", tel.StreamProbes.Load())
	s.add("grant_renegotiations_total", tel.Renegotiations.Load())
	s.add("grant_renegotiations_denied_total", tel.RenegotiationsDenied.Load())
	s.add("temp_relations_total", tel.TempFiles.Load())
	for {
		peak := tel.PeakTableBytes.Load()
		cur := s.peakTableBytes.Load()
		if peak <= cur || s.peakTableBytes.CompareAndSwap(cur, peak) {
			return
		}
	}
}

// recordServiceTime folds one admitted join's grant-holding time into
// the EWMA behind the Retry-After hint (α = 1/8; first sample seeds it).
func (s *Server) recordServiceTime(d time.Duration) {
	ns := d.Nanoseconds()
	for {
		old := s.meanServiceNs.Load()
		next := ns
		if old > 0 {
			next = old + (ns-old)/8
			if next <= 0 {
				next = 1
			}
		}
		if s.meanServiceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterHintCap bounds the dynamic Retry-After hint: past 30s a
// client should treat the service as down, not politely spin.
const retryAfterHintCap = 30 * time.Second

// hintFor estimates how long a rejected client should back off given the
// current queue depth: roughly one mean admitted-service time per queued
// request ahead of it (the rate budget slots recycle at), clamped to
// [cfg.RetryAfter, 30s] — the configured value is the floor, not a
// constant.
func (s *Server) hintFor(queueDepth int) time.Duration {
	floor := s.cfg.RetryAfter
	if floor < time.Second {
		floor = time.Second
	}
	mean := time.Duration(s.meanServiceNs.Load())
	hint := time.Duration(queueDepth) * mean
	if hint < floor {
		hint = floor
	}
	if hint > retryAfterHintCap {
		hint = retryAfterHintCap
	}
	return hint
}

// retryAfterHint is hintFor at the live queue depth.
func (s *Server) retryAfterHint() time.Duration { return s.hintFor(s.adm.QueueDepth()) }

// rejectAdmission maps admission errors onto HTTP statuses: saturation
// and deadline expiry are retryable (429 with Retry-After), an
// over-budget grant is not (413).
func (s *Server) rejectAdmission(rw http.ResponseWriter, err error) {
	retryAfter := strconv.Itoa(int(math.Ceil(s.retryAfterHint().Seconds())))
	switch {
	case errors.Is(err, ErrSaturated):
		s.inc("rejected_saturated")
		rw.Header().Set("Retry-After", retryAfter)
		writeJSON(rw, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrGrantTooLarge):
		s.inc("rejected_too_large")
		writeJSON(rw, http.StatusRequestEntityTooLarge, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrBadGrant):
		s.inc("bad_requests")
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": err.Error()})
	default:
		// Context cancellation or deadline while queued: the client may
		// retry once load subsides.
		s.inc("rejected_deadline")
		rw.Header().Set("Retry-After", retryAfter)
		writeJSON(rw, http.StatusTooManyRequests,
			map[string]string{"error": "admission wait aborted: " + err.Error()})
	}
}

// LookupResponse is the wire form of one pointer dereference.
type LookupResponse struct {
	RPart  int    `json:"rPart"`
	RIndex int    `json:"rIndex"`
	RID    uint64 `json:"rid"`
	SPart  uint32 `json:"sPart"`
	SIndex int    `json:"sIndex"`
	SWord  uint64 `json:"sWord"` // the S object's identity word
}

func (s *Server) handleLookup(rw http.ResponseWriter, r *http.Request) {
	s.inc("lookups_total")
	// Lookups dereference the mapping too, so they register with the
	// drain waiter for the same unmap-safety reason joins do. Their
	// drain rejections are counted apart from joins' so client-side
	// accounting can reconcile each endpoint exactly.
	if !s.beginRequest() {
		s.inc("lookups_rejected_draining")
		writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	defer s.inflight.Done()
	start := time.Now()
	part, err1 := strconv.Atoi(r.URL.Query().Get("part"))
	index, err2 := strconv.Atoi(r.URL.Query().Get("index"))
	if err1 != nil || err2 != nil || part < 0 || part >= s.db.D {
		s.inc("lookups_bad_request")
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "need part=[0..D) and index=N"})
		return
	}
	rel := s.db.R[part]
	if index < 0 || index >= rel.Count() {
		s.inc("lookups_not_found")
		writeJSON(rw, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("R%d has %d objects", part, rel.Count())})
		return
	}
	out, err := s.db.Lookup(part, index)
	if err != nil {
		s.inc("lookups_failed")
		writeJSON(rw, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.inc("lookups_ok")
	s.observe("lookup_latency", time.Since(start))
	writeJSON(rw, http.StatusOK, LookupResponse{
		RPart: part, RIndex: index,
		RID: out.RID, SPart: out.SPart, SIndex: out.SIndex, SWord: out.SWord,
	})
}

// HistogramStats is the exported view of one latency histogram.
type HistogramStats struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"meanNs"`
	MinNs  int64 `json:"minNs"`
	MaxNs  int64 `json:"maxNs"`
	P50Ns  int64 `json:"p50Ns"`
	P90Ns  int64 `json:"p90Ns"`
	P99Ns  int64 `json:"p99Ns"`
}

// Stats is the /stats document.
type Stats struct {
	UptimeSec float64        `json:"uptimeSec"`
	Draining  bool           `json:"draining"`
	DB        DBStats        `json:"db"`
	Admission AdmissionStats `json:"admission"`
	// Pool is the shared morsel pool: occupancy (Busy/PeakBusy vs
	// Workers), morsel queue depth, and steal/executed counts.
	Pool exec.Stats `json:"pool"`
	// Gauges mirrors every gauge registered on the internal metrics
	// registry (the pool gauges today), read live at snapshot time.
	Gauges     map[string]float64        `json:"gauges"`
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// DBStats describes the served database.
type DBStats struct {
	Dir     string `json:"dir"`
	D       int    `json:"d"`
	ObjSize int    `json:"objSize"`
	NR      int    `json:"nr"`
	NS      int    `json:"ns"`
}

// StatsSnapshot assembles the /stats document (exported for tests and
// embedding).
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		UptimeSec: time.Since(s.start).Seconds(),
		Draining:  s.draining.Load(),
		DB: DBStats{
			Dir: s.cfg.Dir, D: s.db.D, ObjSize: s.db.ObjSize,
			NR: s.db.CountR(), NS: s.db.CountS(),
		},
		Admission:  s.adm.Stats(),
		Pool:       s.pool.Stats(),
		Gauges:     s.reg.GaugeValues(),
		Counters:   make(map[string]int64),
		Histograms: make(map[string]HistogramStats),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		st.Counters[name] = c.Value()
	}
	for name, h := range s.hists {
		st.Histograms[name] = HistogramStats{
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			MinNs:  int64(h.Min()),
			MaxNs:  int64(h.Max()),
			P50Ns:  int64(h.Quantile(0.5)),
			P90Ns:  int64(h.Quantile(0.9)),
			P99Ns:  int64(h.Quantile(0.99)),
		}
	}
	return st
}

func (s *Server) handleStats(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(rw, http.StatusServiceUnavailable,
			map[string]any{"status": "draining", "draining": true})
		return
	}
	writeJSON(rw, http.StatusOK, map[string]any{"status": "ok", "draining": false})
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
