package shard

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mmjoin/internal/join"
	"mmjoin/internal/mstore"
	"mmjoin/internal/relation"
)

// buildSharded creates one source database, splits it into n shards,
// and returns the source dir, the shard map, and the source's expected
// stats (the ground truth every sharded join must reproduce).
func buildSharded(t *testing.T, objects, d, n int) (string, *Map, mstore.JoinStats) {
	t.Helper()
	base := t.TempDir()
	srcDir := filepath.Join(base, "src")
	src, err := mstore.CreateDB(srcDir, d, objects, objects, 64, 17)
	if err != nil {
		t.Fatal(err)
	}
	want := src.ExpectedStats()
	src.Close()

	outs := make([]string, n)
	for k := range outs {
		outs[k] = filepath.Join(base, fmt.Sprintf("shard-%d", k))
	}
	m, err := Split(srcDir, d, outs)
	if err != nil {
		t.Fatal(err)
	}
	return srcDir, m, want
}

func openRouter(t *testing.T, m *Map, cfg Config) *Router {
	t.Helper()
	r, err := Open(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// roundRobinPlan is a deterministic PlanFunc exercising per-shard
// heterogeneity: different shards pick different algorithms, and the
// merged result must not care.
func roundRobinPlan(shardID string, w *relation.Workload, req mstore.JoinRequest) (join.Algorithm, error) {
	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash}
	return algs[int(fnv64a(shardID)%uint64(len(algs)))], nil
}

// TestShardScatterGatherBitIdentical is the acceptance invariant: a
// 3-shard scatter-gather join returns bit-identical Pairs/Signature to
// the single-store join over the same logical relation, for every
// algorithm and for auto (per-shard planning).
func TestShardScatterGatherBitIdentical(t *testing.T) {
	_, m, want := buildSharded(t, 4800, 4, 3)
	r := openRouter(t, m, Config{WorkersPerShard: 2, PlanFunc: roundRobinPlan})

	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash, join.Auto}
	for _, alg := range algs {
		tel := &mstore.JoinTelemetry{}
		st, details, err := r.RunShards(mstore.JoinRequest{
			Algorithm: alg, MRproc: 1 << 20, MemGrant: 3 << 20, Telemetry: tel,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st != want {
			t.Fatalf("%v: merged %+v, want %+v", alg, st, want)
		}
		if len(details) != 3 {
			t.Fatalf("%v: %d shard details, want 3", alg, len(details))
		}
		var refold mstore.JoinStats
		for _, det := range details {
			refold.Fold(mstore.JoinStats{Pairs: det.Pairs, Signature: det.Signature})
			if det.ElapsedNs <= 0 {
				t.Errorf("%v: shard %s reported elapsed %d", alg, det.Shard, det.ElapsedNs)
			}
			if alg != join.Auto && det.Algorithm != alg.String() {
				t.Errorf("%v: shard %s executed %s", alg, det.Shard, det.Algorithm)
			}
		}
		if refold != st {
			t.Fatalf("%v: detail refold %+v != merged %+v", alg, refold, st)
		}
	}
}

// TestShardAutoPlansPerShard checks auto planning consults PlanFunc
// once per shard with that shard's own workload.
func TestShardAutoPlansPerShard(t *testing.T) {
	_, m, want := buildSharded(t, 1200, 2, 3)
	var mu sync.Mutex
	seen := map[string]int{}
	plan := func(id string, w *relation.Workload, req mstore.JoinRequest) (join.Algorithm, error) {
		mu.Lock()
		seen[id] = w.Spec.NR
		mu.Unlock()
		return join.Grace, nil
	}
	r := openRouter(t, m, Config{WorkersPerShard: 1, PlanFunc: plan})
	st, err := r.Run(mstore.JoinRequest{Algorithm: join.Auto, MRproc: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("auto merged %+v, want %+v", st, want)
	}
	if len(seen) != 3 {
		t.Fatalf("planned %d shards, want 3: %v", len(seen), seen)
	}
	total := 0
	for id, nr := range seen {
		if nr <= 0 {
			t.Errorf("shard %s planned with NR=%d", id, nr)
		}
		total += nr
	}
	if total != 1200 {
		t.Errorf("per-shard workloads total NR=%d, want 1200", total)
	}
}

// TestShardJoinStatsFoldProperty pins the merge algebra the router
// relies on: folding per-shard JoinStats is commutative and
// associative, so every scatter order and grouping merges identically.
func TestShardJoinStatsFoldProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		parts := make([]mstore.JoinStats, n)
		for i := range parts {
			parts[i] = mstore.JoinStats{Pairs: rng.Int63n(1 << 40), Signature: rng.Uint64()}
		}
		fold := func(order []int) mstore.JoinStats {
			var acc mstore.JoinStats
			for _, i := range order {
				acc.Fold(parts[i])
			}
			return acc
		}
		base := fold(rng.Perm(n))
		if got := fold(rng.Perm(n)); got != base {
			t.Fatalf("fold not commutative: %+v vs %+v", got, base)
		}
		// Associativity: fold a random split's partial sums.
		cut := 1 + rng.Intn(n-1)
		left, right := fold(seq(0, cut)), fold(seq(cut, n))
		var grouped mstore.JoinStats
		grouped.Fold(left)
		grouped.Fold(right)
		if grouped != fold(seq(0, n)) {
			t.Fatalf("fold not associative: %+v vs %+v", grouped, fold(seq(0, n)))
		}
	}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// TestShardSplitShapes checks the split's physical properties: every
// shard passes Verify, R is balanced within one object per source
// partition, and S is fully replicated.
func TestShardSplitShapes(t *testing.T) {
	_, m, _ := buildSharded(t, 3001, 4, 3)
	var total int
	for _, e := range m.Shards {
		db, err := mstore.OpenDB(e.Dir, e.D)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Verify(); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
		if db.CountS() != 3001 {
			t.Errorf("%s: S count %d, want full replica 3001", e.ID, db.CountS())
		}
		total += db.CountR()
		db.Close()
	}
	if total != 3001 {
		t.Fatalf("shards hold %d R objects, want 3001", total)
	}
}

// TestShardLookupRouting checks lookups land on exactly the ring owner,
// report the answering shard, and validate bounds against the routed
// shard rather than any global shape.
func TestShardLookupRouting(t *testing.T) {
	_, m, _ := buildSharded(t, 900, 3, 3)
	r := openRouter(t, m, Config{WorkersPerShard: 1})

	// The smallest per-shard per-partition count bounds always-valid
	// indexes.
	minCount := 1 << 30
	for _, e := range m.Shards {
		db, err := mstore.OpenDB(e.Dir, e.D)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range db.R {
			if c := rel.Count(); c < minCount {
				minCount = c
			}
		}
		db.Close()
	}
	if minCount < 10 {
		t.Fatalf("degenerate split: min per-part count %d", minCount)
	}

	_, ring, err := r.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	byShard := map[string]int{}
	for part := 0; part < 3; part++ {
		for index := 0; index < minCount; index++ {
			res, err := r.Lookup(part, index)
			if err != nil {
				t.Fatalf("lookup %d/%d: %v", part, index, err)
			}
			owner, _ := ring.owner(lookupKey(part, index))
			if res.Shard != owner {
				t.Fatalf("lookup %d/%d answered by %s, ring owner %s", part, index, res.Shard, owner)
			}
			byShard[res.Shard]++
		}
	}
	// With only a few hundred distinct keys the ring may starve one
	// shard; balance over large keyspaces is TestShardRingStability's
	// job. Here we only require genuine spread.
	if len(byShard) < 2 {
		t.Errorf("lookups hit %d shards, want spread: %v", len(byShard), byShard)
	}

	if _, err := r.Lookup(99, 0); !errorsIs(err, mstore.ErrPartRange) {
		t.Errorf("part 99: %v, want ErrPartRange", err)
	}
	if _, err := r.Lookup(0, 1<<30); !errorsIs(err, mstore.ErrIndexRange) {
		t.Errorf("huge index: %v, want ErrIndexRange", err)
	}
}

// errorsIs avoids importing errors twice alongside the stdlib name
// used by mstore.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestShardRingStability checks consistent-hash routing: rebuilding the
// same membership reproduces owners exactly, and removing one shard
// moves only the keys that shard owned.
func TestShardRingStability(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	r1 := newRing(ids, 64)
	r2 := newRing([]string{"d", "c", "b", "a"}, 64) // order-independent
	counts := map[string]int{}
	moved, kept := 0, 0
	reduced := newRing([]string{"a", "b", "d"}, 64)
	for i := 0; i < 4000; i++ {
		key := lookupKey(i%7, i)
		o1, _ := r1.owner(key)
		o2, _ := r2.owner(key)
		if o1 != o2 {
			t.Fatalf("key %s: owner %s vs %s across identical memberships", key, o1, o2)
		}
		counts[o1]++
		ro, _ := reduced.owner(key)
		if o1 == "c" {
			moved++
		} else if ro != o1 {
			t.Fatalf("key %s moved %s→%s though %s stayed in the ring", key, o1, ro, o1)
		} else {
			kept++
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d shards own keys: %v", len(counts), counts)
	}
	for id, c := range counts {
		if c < 4000/4/3 {
			t.Errorf("shard %s owns only %d/4000 keys (badly unbalanced ring)", id, c)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate removal: moved=%d kept=%d", moved, kept)
	}
}

// TestShardDrainMidJoinSoak removes (and re-adds) a shard while joins
// stream through the router. Every join must land on one of the two
// consistent memberships — all three shards, or the two survivors —
// with nothing torn in between; joins begun before the removal complete
// against the mapping (drain waits), and joins begun after the re-add
// see all three again. Run with -race in CI.
func TestShardDrainMidJoinSoak(t *testing.T) {
	_, m, wantFull := buildSharded(t, 1500, 2, 3)
	r := openRouter(t, m, Config{WorkersPerShard: 1})

	// Ground truth for the reduced membership: fold the survivors.
	var wantReduced mstore.JoinStats
	for _, e := range m.Shards {
		if e.ID == "shard-1" {
			continue
		}
		db, err := mstore.OpenDB(e.Dir, e.D)
		if err != nil {
			t.Fatal(err)
		}
		wantReduced.Fold(db.ExpectedStats())
		db.Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			alg := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash}[g%4]
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, err := r.Run(mstore.JoinRequest{Algorithm: alg, MRproc: 1 << 20})
				if err != nil {
					select {
					case errc <- fmt.Errorf("%v: %w", alg, err):
					default:
					}
					return
				}
				if st != wantFull && st != wantReduced {
					select {
					case errc <- fmt.Errorf("%v: torn result %+v (want %+v or %+v)", alg, st, wantFull, wantReduced):
					default:
					}
					return
				}
			}
		}(g)
	}

	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := r.RemoveShard(ctx, "shard-1"); err != nil {
		t.Fatal(err)
	}
	cancel()

	// With the shard gone, results must be exactly the reduced truth.
	st, err := r.Run(mstore.JoinRequest{Algorithm: join.Grace, MRproc: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if st != wantReduced {
		t.Fatalf("post-removal join %+v, want %+v", st, wantReduced)
	}
	if got := r.Stats(); len(got.Shards) != 2 {
		t.Fatalf("stats show %d shards after removal", len(got.Shards))
	}

	// Re-add and confirm the full membership returns.
	if err := r.AddShard("shard-1", m.Shards[1].Dir, m.Shards[1].D); err != nil {
		t.Fatal(err)
	}
	st, err = r.Run(mstore.JoinRequest{Algorithm: join.SortMerge, MRproc: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if st != wantFull {
		t.Fatalf("post-re-add join %+v, want %+v", st, wantFull)
	}

	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestShardWorkloadMerge checks the merged planner view equals the
// source's shape: NR sums across shards, replicated NS is not
// double-counted, and per-partition reference lists carry every source
// reference exactly once.
func TestShardWorkloadMerge(t *testing.T) {
	srcDir, m, _ := buildSharded(t, 2000, 4, 3)
	src, err := mstore.OpenDB(srcDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	srcW, err := src.Workload()
	if err != nil {
		t.Fatal(err)
	}

	r := openRouter(t, m, Config{WorkersPerShard: 1})
	w, err := r.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if w.Spec.NR != srcW.Spec.NR || w.Spec.NS != srcW.Spec.NS || w.Spec.D != srcW.Spec.D {
		t.Fatalf("merged spec %+v, want %+v", w.Spec, srcW.Spec)
	}
	for part := range srcW.Refs {
		if len(w.Refs[part]) != len(srcW.Refs[part]) {
			t.Errorf("part %d: %d merged refs, want %d", part, len(w.Refs[part]), len(srcW.Refs[part]))
		}
		// Same multiset of referenced S objects per partition.
		count := map[relation.SPtr]int{}
		for _, ref := range srcW.Refs[part] {
			count[ref]++
		}
		for _, ref := range w.Refs[part] {
			count[ref]--
		}
		for ref, c := range count {
			if c != 0 {
				t.Fatalf("part %d: ref %+v multiset off by %d", part, ref, c)
			}
		}
	}
}

// TestShardMapRoundTrip checks the on-disk format and its validation.
func TestShardMapRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.json")
	m := &Map{
		Replicas:        32,
		WorkersPerShard: 2,
		Shards: []Entry{
			{ID: "a", Dir: "/x/a", D: 4},
			{ID: "b", Dir: "/x/b", D: 4},
		},
	}
	if err := WriteMap(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != MapSchema || len(got.Shards) != 2 || got.Replicas != 32 || got.WorkersPerShard != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	for _, bad := range []*Map{
		{},
		{Shards: []Entry{{ID: "", Dir: "/x", D: 1}}},
		{Shards: []Entry{{ID: "a", Dir: "", D: 1}}},
		{Shards: []Entry{{ID: "a", Dir: "/x", D: 0}}},
		{Shards: []Entry{{ID: "a", Dir: "/x", D: 1}, {ID: "a", Dir: "/y", D: 1}}},
		{Schema: "bogus/v9", Shards: []Entry{{ID: "a", Dir: "/x", D: 1}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("validated %+v", bad)
		}
	}
}

// TestShardGrantSplitBounds checks the byte-denominated budget is
// divided across shards and respected: with a tight total grant, every
// shard's counted probe memory stays within its share (plus nothing —
// no negotiator is offered).
func TestShardGrantSplitBounds(t *testing.T) {
	_, m, want := buildSharded(t, 3000, 2, 3)
	r := openRouter(t, m, Config{WorkersPerShard: 1})

	const total = 192 << 10 // 64 KiB per shard
	tel := &mstore.JoinTelemetry{}
	st, details, err := r.RunShards(mstore.JoinRequest{
		Algorithm: join.Grace, MRproc: 1 << 20, K: 4, MemGrant: total, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("bounded merged %+v, want %+v", st, want)
	}
	share := int64(total / 3)
	for _, det := range details {
		if det.PeakTableBytes > share {
			t.Errorf("shard %s peak %d exceeds its share %d", det.Shard, det.PeakTableBytes, share)
		}
	}
	if tel.PeakTableBytes.Load() > share {
		t.Errorf("folded peak %d exceeds per-shard share %d (folds as max)", tel.PeakTableBytes.Load(), share)
	}
}
