package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{Second + 500*Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != Second+500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := (Millisecond / 2).Milliseconds(); got != 0.5 {
		t.Errorf("Milliseconds() = %v", got)
	}
}

func TestSingleProcAdvance(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("a", func(p *Proc) {
		p.Advance(10 * Millisecond)
		at = p.Now()
	})
	end := k.Run()
	if at != 10*Millisecond {
		t.Errorf("proc observed %v, want 10ms", at)
	}
	if end != 10*Millisecond {
		t.Errorf("Run returned %v, want 10ms", end)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Advance(2 * Millisecond)
				order = append(order, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Advance(3 * Millisecond)
				order = append(order, "b")
			}
		})
		k.Run()
		return order
	}
	first := run()
	// a finishes work at t=2,4,6; b at t=3,6. At t=6 b's wake-up was
	// scheduled first (at t=3 vs t=4), so FIFO tie-break runs b first.
	want := []string{"a", "b", "a", "b", "a"}
	if len(first) != len(want) {
		t.Fatalf("got %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("got %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("non-deterministic interleaving: %v vs %v", again, first)
			}
		}
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	// Processes scheduled for the same instant run in schedule order.
	k := NewKernel()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Advance(Millisecond)
			order = append(order, name)
		})
	}
	k.Run()
	for i, want := range []string{"p0", "p1", "p2"} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestZeroAdvanceKeepsRunning(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(0)
			steps++
		}
	})
	if end := k.Run(); end != 0 {
		t.Errorf("time advanced to %v on zero advances", end)
	}
	if steps != 5 {
		t.Errorf("steps = %d", steps)
	}
}

func TestBusyAccounting(t *testing.T) {
	k := NewKernel()
	p0 := k.Spawn("a", func(p *Proc) {
		p.Advance(Millisecond)
		p.Advance(2 * Millisecond)
	})
	k.Run()
	if p0.Busy != 3*Millisecond {
		t.Errorf("Busy = %v, want 3ms", p0.Busy)
	}
}

func TestBlockedAccounting(t *testing.T) {
	k := NewKernel()
	var target *Proc
	target = k.Spawn("sleeper", func(p *Proc) {
		p.Advance(Millisecond)
		p.Block("waiting")
		p.Advance(Millisecond)
	})
	k.Spawn("waker", func(p *Proc) {
		p.Advance(5 * Millisecond)
		target.Unblock()
	})
	k.Run()
	// Blocked from t=1ms until the wake at t=5ms.
	if target.Blocked != 4*Millisecond {
		t.Errorf("Blocked = %v, want 4ms", target.Blocked)
	}
	if target.Busy != 2*Millisecond {
		t.Errorf("Busy = %v, want 2ms", target.Busy)
	}
}

func TestResourceBusyAt(t *testing.T) {
	k := NewKernel()
	r := NewResource("arm")
	k.Spawn("holder", func(p *Proc) {
		r.Use(p, 4*Millisecond)
		r.Acquire(p)
		p.Advance(2 * Millisecond)
		// Mid-hold: BusyAt must include the in-progress hold.
		if got := r.BusyAt(p.Now()); got != 6*Millisecond {
			t.Errorf("BusyAt mid-hold = %v, want 6ms", got)
		}
		r.Release(p)
	})
	k.Run()
	if r.BusyTime != 6*Millisecond {
		t.Errorf("BusyTime = %v, want 6ms", r.BusyTime)
	}
	if got := r.BusyAt(k.Now()); got != 6*Millisecond {
		t.Errorf("BusyAt idle = %v, want BusyTime", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	k := NewKernel()
	k.Spawn("a", func(p *Proc) { p.Advance(-1) })
	k.Run()
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { p.Block("forever") })
	k.Run()
}

func TestBlockUnblock(t *testing.T) {
	k := NewKernel()
	var woken Time
	var target *Proc
	target = k.Spawn("sleeper", func(p *Proc) {
		p.Block("waiting for waker")
		woken = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Advance(7 * Millisecond)
		target.Unblock()
	})
	k.Run()
	if woken != 7*Millisecond {
		t.Errorf("woken at %v, want 7ms", woken)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Advance(Millisecond)
		p.Kernel().Spawn("child", func(c *Proc) {
			c.Advance(Millisecond)
			childTime = c.Now()
		})
		p.Advance(5 * Millisecond)
	})
	k.Run()
	if childTime != 2*Millisecond {
		t.Errorf("child finished at %v, want 2ms", childTime)
	}
}

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource("disk")
	var finish []Time
	for i := 0; i < 3; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	end := k.Run()
	if end != 30*Millisecond {
		t.Fatalf("end = %v, want 30ms", end)
	}
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], want[i])
		}
	}
	if r.BusyTime != 30*Millisecond {
		t.Errorf("BusyTime = %v", r.BusyTime)
	}
	if r.Acquisitions != 3 {
		t.Errorf("Acquisitions = %d", r.Acquisitions)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel()
	r := NewResource("disk")
	var order []string
	spawn := func(name string, delay Time) {
		k.Spawn(name, func(p *Proc) {
			p.Advance(delay)
			r.Acquire(p)
			p.Advance(10 * Millisecond)
			order = append(order, name)
			r.Release(p)
		})
	}
	spawn("first", 0)
	spawn("second", Millisecond)
	spawn("third", 2*Millisecond)
	k.Run()
	for i, want := range []string{"first", "second", "third"} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestResourceMisusePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on releasing unheld resource")
		}
	}()
	k.Spawn("bad", func(p *Proc) { r.Release(p) })
	k.Run()
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond("ready")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Advance(Millisecond)
		if c.Waiting() != 3 {
			t.Errorf("Waiting = %d, want 3", c.Waiting())
		}
		c.Broadcast()
	})
	k.Run()
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestBarrier(t *testing.T) {
	k := NewKernel()
	b := NewBarrier("phase", 3)
	var pass []Time
	delays := []Time{Millisecond, 5 * Millisecond, 9 * Millisecond}
	for _, d := range delays {
		d := d
		k.Spawn("party", func(p *Proc) {
			p.Advance(d)
			b.Wait(p)
			pass = append(pass, p.Now())
		})
	}
	k.Run()
	if len(pass) != 3 {
		t.Fatalf("pass = %v", pass)
	}
	for _, at := range pass {
		if at != 9*Millisecond {
			t.Errorf("party passed at %v, want 9ms", at)
		}
	}
	if b.Rounds != 1 {
		t.Errorf("Rounds = %d", b.Rounds)
	}
}

func TestBarrierMultipleRounds(t *testing.T) {
	k := NewKernel()
	b := NewBarrier("phase", 2)
	rounds := 3
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("party", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Advance(Time(i+1) * Millisecond)
				b.Wait(p)
			}
		})
	}
	k.Run()
	if b.Rounds != int64(rounds) {
		t.Errorf("Rounds = %d, want %d", b.Rounds, rounds)
	}
}

func TestBarrierSingleParty(t *testing.T) {
	k := NewKernel()
	b := NewBarrier("solo", 1)
	k.Spawn("p", func(p *Proc) {
		b.Wait(p)
		b.Wait(p)
	})
	k.Run()
	if b.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", b.Rounds)
	}
}

func TestChanBuffered(t *testing.T) {
	k := NewKernel()
	c := NewChan("q", 2)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			c.Send(p, i)
			p.Advance(Millisecond)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, c.Recv(p).(int))
			p.Advance(2 * Millisecond)
		}
	})
	k.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	k := NewKernel()
	c := NewChan("r", 0)
	var recvAt, sendDone Time
	k.Spawn("sender", func(p *Proc) {
		c.Send(p, "hello")
		sendDone = p.Now()
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Advance(4 * Millisecond)
		if v := c.Recv(p).(string); v != "hello" {
			t.Errorf("got %q", v)
		}
		recvAt = p.Now()
	})
	k.Run()
	if recvAt != 4*Millisecond {
		t.Errorf("recvAt = %v", recvAt)
	}
	_ = sendDone // sender unblocked at receive time
}

func TestChanBlockedReceiverHandoff(t *testing.T) {
	k := NewKernel()
	c := NewChan("q", 1)
	var got any
	k.Spawn("receiver", func(p *Proc) { got = c.Recv(p) })
	k.Spawn("sender", func(p *Proc) {
		p.Advance(Millisecond)
		c.Send(p, 42)
	})
	k.Run()
	if got != 42 {
		t.Errorf("got = %v", got)
	}
}

func TestChanFullBlocksSender(t *testing.T) {
	k := NewKernel()
	c := NewChan("q", 1)
	var sentSecondAt Time
	k.Spawn("sender", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2) // blocks until consumer drains
		sentSecondAt = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Advance(10 * Millisecond)
		c.Recv(p)
		c.Recv(p)
	})
	k.Run()
	if sentSecondAt != 10*Millisecond {
		t.Errorf("second send completed at %v, want 10ms", sentSecondAt)
	}
}

// Property: for any set of independent processes doing fixed advances, the
// final kernel time equals the maximum total advance, and each proc's Busy
// equals its own total.
func TestQuickIndependentProcs(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 32 {
			durs = durs[:32]
		}
		k := NewKernel()
		var max Time
		procs := make([]*Proc, len(durs))
		for i, d := range durs {
			d := Time(d) * Microsecond
			if d > max {
				max = d
			}
			procs[i] = k.Spawn("p", func(p *Proc) { p.Advance(d) })
		}
		end := k.Run()
		if end != max {
			return false
		}
		for i, d := range durs {
			if procs[i].Busy != Time(d)*Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a shared unit resource serializes all work: end time equals the
// sum of service times regardless of arrival pattern (all arrive at 0).
func TestQuickResourceSerialization(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 24 {
			return true
		}
		k := NewKernel()
		r := NewResource("res")
		var sum Time
		for _, d := range durs {
			d := Time(d) * Microsecond
			sum += d
			k.Spawn("u", func(p *Proc) { r.Use(p, d) })
		}
		return k.Run() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChanMultipleBlockedReadersFIFO(t *testing.T) {
	k := NewKernel()
	c := NewChan("q", 4)
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("reader", func(p *Proc) {
			p.Advance(Time(i+1) * Millisecond) // readers arrive in order
			got = append(got, c.Recv(p).(int))
		})
	}
	k.Spawn("writer", func(p *Proc) {
		p.Advance(10 * Millisecond)
		for v := 0; v < 3; v++ {
			c.Send(p, v)
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("reader order %v, want FIFO", got)
		}
	}
}

func TestResourceQueueLenAndHeld(t *testing.T) {
	k := NewKernel()
	r := NewResource("x")
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Advance(10 * Millisecond)
		if r.QueueLen() != 2 {
			t.Errorf("QueueLen = %d, want 2", r.QueueLen())
		}
		if !r.Held() {
			t.Error("Held should be true")
		}
		r.Release(p)
	})
	for i := 0; i < 2; i++ {
		k.Spawn("waiter", func(p *Proc) {
			p.Advance(Millisecond)
			r.Use(p, Millisecond)
		})
	}
	k.Run()
	if r.Held() {
		t.Error("resource still held after run")
	}
}

func TestCondBroadcastWithNoWaiters(t *testing.T) {
	k := NewKernel()
	c := NewCond("empty")
	k.Spawn("p", func(p *Proc) {
		c.Broadcast() // no-op
		p.Advance(Millisecond)
	})
	if end := k.Run(); end != Millisecond {
		t.Errorf("end = %v", end)
	}
}

func TestDoubleAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on re-acquire")
		}
	}()
	k := NewKernel()
	r := NewResource("x")
	k.Spawn("p", func(p *Proc) {
		r.Acquire(p)
		r.Acquire(p)
	})
	k.Run()
}

// Property: a process's Busy time never exceeds the kernel end time, and
// the end time is reached by some process.
func TestQuickBusyBounded(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 16 {
			return true
		}
		k := NewKernel()
		procs := make([]*Proc, len(durs))
		for i, d := range durs {
			d := Time(d) * Microsecond
			procs[i] = k.Spawn("p", func(p *Proc) {
				for step := 0; step < 3; step++ {
					p.Advance(d / 3)
				}
			})
		}
		end := k.Run()
		for _, p := range procs {
			if p.Busy > end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
