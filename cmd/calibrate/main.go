// Command calibrate regenerates the paper's measured machine-dependent
// functions on the simulated hardware: Fig. 1(a), the disk transfer time
// per block (dttr/dttw) versus band size, and Fig. 1(b), the memory
// mapping setup times (newMap/openMap/deleteMap) versus mapping size.
//
// Usage:
//
//	calibrate [-fig 1a|1b|all] [-ops N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mmjoin/internal/disk"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/model"
	"mmjoin/internal/seg"
)

// parallelism is the -parallel flag: host workers measuring dtt bands.
// Results are identical at any setting. Telemetry export (-metrics)
// keeps the band measurements sequential so the JSONL stream stays in
// band order.
var parallelism int

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 1b, or all")
	ops := flag.Int("ops", 3000, "random I/Os measured per band size (1a)")
	seed := flag.Int64("seed", 1, "random seed for access patterns")
	jsonOut := flag.String("json", "", "also write the full calibration to this file (for optimizers)")
	metricsPath := flag.String("metrics", "", "export Fig 1(a) per-band service-time telemetry to this JSONL file")
	flag.IntVar(&parallelism, "parallel", runtime.GOMAXPROCS(0),
		"host worker goroutines measuring dtt bands (>= 1; results are identical at any setting)")
	flag.Parse()

	if parallelism < 1 {
		fmt.Fprintf(os.Stderr, "calibrate: -parallel must be >= 1, got %d\n", parallelism)
		os.Exit(2)
	}

	cfg := machine.DefaultConfig()
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		calib := model.CalibrateParallel(cfg, *ops, *seed, parallelism)
		if err := calib.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("calibration written to %s\n\n", *jsonOut)
	}
	var reg *metrics.Registry
	if *metricsPath != "" {
		reg = metrics.New()
	}
	switch *fig {
	case "1a":
		fig1a(cfg, *ops, *seed, reg)
	case "1b":
		fig1b(cfg)
	case "all":
		fig1a(cfg, *ops, *seed, reg)
		fmt.Println()
		fig1b(cfg)
	default:
		fmt.Fprintf(os.Stderr, "calibrate: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if reg != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		if err := reg.WriteJSONL(f); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\ntelemetry written to %s\n", *metricsPath)
	}
}

func fig1a(cfg machine.Config, ops int, seed int64, reg *metrics.Registry) {
	fmt.Println("Fig 1(a): disk transfer time (ms per 4K block) vs band size")
	fmt.Println("band(blocks)    dttr      dttw")
	var pts []disk.DTTPoint
	if reg != nil {
		// A shared registry's registration order must stay deterministic,
		// so instrumented measurement runs bands sequentially.
		pts = disk.MeasureDTTInstrumented(cfg.Disk, disk.StandardBands, ops, seed, reg)
	} else {
		pts = disk.MeasureDTTParallel(cfg.Disk, disk.StandardBands, ops, seed, parallelism)
	}
	for _, pt := range pts {
		fmt.Printf("%12d  %6.2f    %6.2f\n", pt.Band, pt.Read.Milliseconds(), pt.Write.Milliseconds())
	}
}

func fig1b(cfg machine.Config) {
	fmt.Println("Fig 1(b): memory mapping setup time (s) vs map size")
	fmt.Println("size(blocks)    newMap   openMap   deleteMap")
	for _, pt := range seg.MeasureSetup(cfg.Disk, cfg.Setup, seg.StandardSetupSizes) {
		if pt.Pages < 1600 {
			continue // the paper plots 1600-12800
		}
		fmt.Printf("%12d  %7.2f  %8.2f  %9.2f\n",
			pt.Pages, pt.New.Seconds(), pt.Open.Seconds(), pt.Delete.Seconds())
	}
}
