package mmjoin

// End-to-end smoke tests of the command-line tools: each binary is built
// once and driven with small configurations, checking flag parsing and
// headline output. Skipped under -short.

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// buildCmd compiles ./cmd/<name> into a temp dir and returns the binary
// path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("cmd smoke test")
	}
	bin := filepath.Join(t.TempDir(), name)
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCmdCalibrateSmoke(t *testing.T) {
	bin := buildCmd(t, "calibrate")
	out := runCmd(t, bin, "-fig", "1b")
	for _, want := range []string{"newMap", "openMap", "deleteMap", "12800"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	out = runCmd(t, bin, "-fig", "1a", "-ops", "300")
	if !strings.Contains(out, "dttr") || !strings.Contains(out, "dttw") {
		t.Errorf("fig 1a output:\n%s", out)
	}
	// Parallel band measurement prints the same table shape.
	out = runCmd(t, bin, "-fig", "1a", "-ops", "300", "-parallel", "2")
	if !strings.Contains(out, "dttr") || !strings.Contains(out, "dttw") {
		t.Errorf("fig 1a -parallel output:\n%s", out)
	}
	// Unknown figure fails.
	if err := exec.Command(bin, "-fig", "9z").Run(); err == nil {
		t.Error("unknown figure accepted")
	}
	// -parallel below 1 is rejected.
	if err := exec.Command(bin, "-fig", "1b", "-parallel", "0").Run(); err == nil {
		t.Error("-parallel 0 accepted")
	}
}

func TestCmdSweepSmoke(t *testing.T) {
	bin := buildCmd(t, "sweep")
	out := runCmd(t, bin, "-fig", "5b", "-objects", "8000")
	if !strings.Contains(out, "sort-merge") || !strings.Contains(out, "NPASS") {
		t.Errorf("fig 5b output:\n%s", out)
	}
	out = runCmd(t, bin, "-fig", "contention", "-objects", "8000")
	if !strings.Contains(out, "staggered") || !strings.Contains(out, "naive") {
		t.Errorf("contention output:\n%s", out)
	}
	out = runCmd(t, bin, "-fig", "dist", "-objects", "8000")
	if !strings.Contains(out, "zipf") {
		t.Errorf("dist output:\n%s", out)
	}
	// An explicit worker count works and prints the same table shape.
	out = runCmd(t, bin, "-fig", "5b", "-objects", "8000", "-parallel", "2")
	if !strings.Contains(out, "sort-merge") || !strings.Contains(out, "NPASS") {
		t.Errorf("fig 5b -parallel output:\n%s", out)
	}
	// -parallel below 1 is rejected.
	if err := exec.Command(bin, "-fig", "5b", "-parallel", "0").Run(); err == nil {
		t.Error("-parallel 0 accepted")
	}
	if err := exec.Command(bin, "-fig", "5b", "-parallel", "-3").Run(); err == nil {
		t.Error("negative -parallel accepted")
	}
}

func TestCmdJoinsimSmoke(t *testing.T) {
	bin := buildCmd(t, "joinsim")
	out := runCmd(t, bin, "-alg", "grace", "-objects", "8000", "-mem-frac", "0.05", "-trace")
	for _, want := range []string{"experiment:", "model breakdown", "per-process timeline", "K="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	out = runCmd(t, bin, "-alg", "sort-merge", "-objects", "8000", "-policy", "fifo", "-dist", "local")
	if !strings.Contains(out, "IRUN=") {
		t.Errorf("sort-merge output:\n%s", out)
	}
	if err := exec.Command(bin, "-alg", "nope").Run(); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCmdBenchSmoke(t *testing.T) {
	bin := buildCmd(t, "bench")
	out := filepath.Join(t.TempDir(), "bench.json")
	got := runCmd(t, bin, "-objects", "4000", "-parallel", "2", "-out", out)
	for _, want := range []string{"speedup", "events/sec", "baseline written"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mmjoin-bench/v1", "sequential_ns", "dispatch_ping_pong", "allocs_per_op"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("missing %q in %s", want, out)
		}
	}
	// -parallel below 1 is rejected.
	if err := exec.Command(bin, "-parallel", "0").Run(); err == nil {
		t.Error("-parallel 0 accepted")
	}
}

func TestCmdMmdbSmoke(t *testing.T) {
	bin := buildCmd(t, "mmdb")
	dir := filepath.Join(t.TempDir(), "db")
	out := runCmd(t, bin, "create", "-dir", dir, "-objects", "8000")
	if !strings.Contains(out, "created") {
		t.Errorf("create output:\n%s", out)
	}
	out = runCmd(t, bin, "join", "-dir", dir)
	if strings.Contains(out, "MISMATCH") || !strings.Contains(out, "hybrid-hash") {
		t.Errorf("join output:\n%s", out)
	}
	out = runCmd(t, bin, "bench", "-dir", dir, "-runs", "1")
	if !strings.Contains(out, "best of 1") {
		t.Errorf("bench output:\n%s", out)
	}
	// Planner-chosen algorithm prints the candidate table and verifies.
	out = runCmd(t, bin, "join", "-dir", dir, "-alg", "auto")
	if !strings.Contains(out, "plan:") || strings.Contains(out, "MISMATCH") {
		t.Errorf("auto join output:\n%s", out)
	}
	// Missing -dir fails.
	if err := exec.Command(bin, "join").Run(); err == nil {
		t.Error("missing -dir accepted")
	}
}

// TestCmdMmdbServeSmoke drives the query service end to end: start on an
// ephemeral port, one planner-chosen join round-trip over HTTP, then a
// SIGTERM graceful drain.
func TestCmdMmdbServeSmoke(t *testing.T) {
	bin := buildCmd(t, "mmdb")
	dir := filepath.Join(t.TempDir(), "db")
	runCmd(t, bin, "create", "-dir", dir, "-objects", "5000")

	cmd := exec.Command(bin, "serve", "-dir", dir, "-addr", "127.0.0.1:0", "-calops", "60")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first line announces the bound address.
	rd := bufio.NewReader(stdout)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("reading serve banner: %v", err)
	}
	i := strings.Index(line, "http://")
	j := strings.Index(line[i:], " ")
	if i < 0 || j < 0 {
		t.Fatalf("no address in banner %q", line)
	}
	base := line[i : i+j]

	resp, err := http.Post(base+"/join", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"pairs": 5000`) {
		t.Fatalf("join round-trip: status %d body %s", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(rd)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exit: %v\n%s", err, rest)
	}
	if !strings.Contains(string(rest), "drained") {
		t.Fatalf("no graceful drain in output:\n%s", rest)
	}
}
