package mstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"mmjoin/internal/exec"
	"mmjoin/internal/pheap"
)

// The joins are morsel-driven: each pass decomposes into fixed-size
// object-range tasks pulled by a work-stealing pool (internal/exec)
// whose size is the host CPU parallelism, independent of D. The paper's
// structural parallelism — one Rproc per disk partition — survives as
// the shape of the task lists (per-partition scans, staggered probe
// order), but the number of goroutines touching the mapping at once is
// the pool's, so a 16-core host saturates on a D=4 database and a
// server running many joins on one shared pool never oversubscribes.
//
// Every morsel folds into a per-worker JoinStats accumulator and the
// accumulators are summed at the end. Pairs and Signature are
// commutative sums, so results are bit-identical at any worker count
// and under any steal schedule.

// joinOne dereferences one R object's stored pointer through the
// mapping and folds the pair into st.
func (db *DB) joinOne(obj []byte, st *JoinStats) {
	ptr := DecodeSPtr(obj)
	s := db.S[ptr.Part].At(ptr.Off)
	st.Pairs++
	st.Signature += pairHash(binary.LittleEndian.Uint64(obj[ridOffset:]),
		binary.LittleEndian.Uint64(s))
}

// morselObjs is the fixed morsel size: the number of objects one
// work-stealing task covers. Around 4k objects a morsel is a few
// hundred microseconds of work — coarse enough that pool bookkeeping
// (two mutex ops per morsel) vanishes, fine enough to balance skew.
const morselObjs = 4096

// paddedStats is one worker's JoinStats accumulator padded to a cache
// line so concurrent workers do not false-share.
type paddedStats struct {
	JoinStats
	_ [48]byte
}

type perWorker []paddedStats

func newPerWorker(p *exec.Pool) perWorker { return make(perWorker, p.Workers()) }

// total folds the per-worker accumulators; the fold is a commutative
// sum, so the result is independent of which worker ran which morsel.
func (s perWorker) total() JoinStats {
	var t JoinStats
	for i := range s {
		t.fold(s[i].JoinStats)
	}
	return t
}

// rangeTasks appends one task per morselObjs-sized range of [0, n).
func rangeTasks(tasks []exec.Task, n int, fn func(w, lo, hi int) error) []exec.Task {
	for lo := 0; lo < n; lo += morselObjs {
		lo, hi := lo, min(lo+morselObjs, n)
		tasks = append(tasks, func(w int) error { return fn(w, lo, hi) })
	}
	return tasks
}

// refCounts measures the pointer distribution of R morsel-parallel:
// counts[i][j] is the number of Ri objects referencing partition Sj.
// The joins size their temporary relations from this measure instead of
// assuming worst-case |Ri| per file.
func (db *DB) refCounts(ctx context.Context, p *exec.Pool) ([][]int64, error) {
	d := db.D
	counts := make([][]int64, d)
	for i := range counts {
		counts[i] = make([]int64, d)
	}
	var tasks []exec.Task
	for i, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			local := make([]int64, d)
			for x := lo; x < hi; x++ {
				part := int(DecodeSPtr(ri.Object(x)).Part)
				if part >= d {
					return fmt.Errorf("mstore: R%d[%d] points to partition %d", i, x, part)
				}
				local[part]++
			}
			for j, c := range local {
				if c != 0 {
					atomic.AddInt64(&counts[i][j], c)
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return nil, err
	}
	return counts, nil
}

// ephemeralPool runs fn on a pool created for this one call (GOMAXPROCS
// workers), the execution mode of the convenience methods below; Run
// with JoinRequest.Workers or a shared Pool controls parallelism
// explicitly.
func ephemeralPool(fn func(p *exec.Pool) (JoinStats, error)) (JoinStats, error) {
	p := exec.NewPool(0)
	defer p.Close()
	return fn(p)
}

// rankBucket maps the object of rank idx among n onto one of k
// order-preserving buckets. The product idx·k overflows int on 32-bit
// platforms at realistic sizes (a 10M-object partition times k=512
// exceeds 2^31), so the math is done in int64.
func rankBucket(idx, k, n int) int {
	if n < 1 || k < 1 {
		return 0
	}
	b := int(int64(idx) * int64(k) / int64(n))
	if b < 0 {
		b = 0
	}
	if b >= k {
		b = k - 1
	}
	return b
}

// tmpRelation creates a throwaway relation file under dir. Capacity 0
// (a measured-empty partition or bucket) still allocates one slot so the
// relation is well-formed.
func (db *DB) tmpRelation(dir, name string, capacity int) (*Relation, error) {
	capacity = max(capacity, 1)
	seg, err := Create(filepath.Join(dir, name), int64(db.ObjSize)*int64(capacity)+4096)
	if err != nil {
		return nil, err
	}
	return CreateRelation(seg, db.ObjSize, capacity)
}

// NestedLoops runs the parallel pointer-based nested loops join over
// the mapped store on an ephemeral GOMAXPROCS-sized pool.
func (db *DB) NestedLoops(tmpDir string) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.nestedLoops(context.Background(), p, tmpDir)
	})
}

// nestedLoops: pass 0 scans Ri in morsels, joining own-partition
// references immediately and sub-partitioning the rest into temporary
// RP<i,j> relations; pass 1 probes the sub-partitions in the paper's
// staggered phase order (§5.1).
func (db *DB) nestedLoops(ctx context.Context, p *exec.Pool, tmpDir string) (JoinStats, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	// Measured pointer distribution: counts[i][j] sizes RP<i,j> exactly.
	// (The former sizing at |Ri| wrote D−1 full-size files per
	// partition.) The Appender grows on overflow, so the measure is a
	// sizing hint, not a correctness requirement.
	counts, err := db.refCounts(ctx, p)
	if err != nil {
		return JoinStats{}, err
	}
	rp := make([][]*Appender, d)
	defer func() {
		for i := range rp {
			for _, ap := range rp[i] {
				if ap != nil {
					ap.Relation().Segment().Delete()
				}
			}
		}
	}()
	for i := 0; i < d; i++ {
		rp[i] = make([]*Appender, d)
		for j := 0; j < d; j++ {
			if j == i || counts[i][j] == 0 {
				continue
			}
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("RP%d_%d.seg", i, j), int(counts[i][j]))
			if err != nil {
				return JoinStats{}, err
			}
			rp[i][j] = NewAppender(rel)
		}
	}

	stats := newPerWorker(p)
	// Pass 0.
	var tasks []exec.Task
	for i, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(w, lo, hi int) error {
			st := &stats[w].JoinStats
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				if part := int(DecodeSPtr(obj).Part); part == i {
					db.joinOne(obj, st)
				} else if err := rp[i][part].Append(obj); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	for i := range rp {
		for _, ap := range rp[i] {
			if ap != nil {
				ap.Seal()
			}
		}
	}

	// Pass 1: probe morsels enqueued in staggered phase order — Rproc i
	// probes RP<i,(i+t) mod D> at phase t — so concurrently executing
	// morsels tend to touch different S partitions.
	tasks = tasks[:0]
	for t := 1; t < d; t++ {
		for i := 0; i < d; i++ {
			ap := rp[i][(i+t)%d]
			if ap == nil {
				continue
			}
			sub := ap.Relation()
			tasks = rangeTasks(tasks, sub.Count(), func(w, lo, hi int) error {
				st := &stats[w].JoinStats
				for x := lo; x < hi; x++ {
					db.joinOne(sub.Object(x), st)
				}
				return nil
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// SortMerge runs the parallel pointer-based sort-merge join on an
// ephemeral GOMAXPROCS-sized pool.
func (db *DB) SortMerge(tmpDir string) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.sortMerge(context.Background(), p, tmpDir)
	})
}

// sortSplitCount picks how many address-range splits one RSi
// partition-then-sort uses: enough tasks to occupy the pool across all
// D partitions (with headroom for stealing), but never splits smaller
// than a morsel. One worker gets one split per partition — exactly the
// old sequential in-place sort.
func sortSplitCount(workers, d, count int) int {
	s := (4*workers + d - 1) / d
	if maxS := count/morselObjs + 1; s > maxS {
		s = maxS
	}
	return max(s, 1)
}

// sortMerge: passes 0/1 form the RSj partitions directly through
// concurrent appenders (one atomic slot claim per object — the former
// one-temp-file-per-writer pieces and their concatenation collapse);
// each RSj is then sorted by S address via parallel partition-then-sort
// — counted split by address range, scattered, each split heap-sorted
// in place — and the final scan probes Si in ascending address order
// within every split.
func (db *DB) sortMerge(ctx context.Context, p *exec.Pool, tmpDir string) (JoinStats, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	counts, err := db.refCounts(ctx, p)
	if err != nil {
		return JoinStats{}, err
	}
	rsTotal := make([]int64, d)
	for j := 0; j < d; j++ {
		for i := 0; i < d; i++ {
			rsTotal[j] += counts[i][j]
		}
	}

	rs := make([]*Appender, d)
	srt := make([]*Relation, d)
	defer func() {
		for j := 0; j < d; j++ {
			if rs[j] != nil {
				rs[j].Relation().Segment().Delete()
			}
			if srt[j] != nil {
				srt[j].Segment().Delete()
			}
		}
	}()
	for j := 0; j < d; j++ {
		rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("RS%d.seg", j), int(rsTotal[j]))
		if err != nil {
			return JoinStats{}, err
		}
		rs[j] = NewAppender(rel)
	}
	var tasks []exec.Task
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				if err := rs[DecodeSPtr(obj).Part].Append(obj); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	for j := 0; j < d; j++ {
		rs[j].Seal()
	}

	// Partition-then-sort: split each RSj into contiguous S-address
	// ranges so the splits sort and probe independently.
	splits := make([]int, d)
	starts := make([][]int64, d)         // split start offsets after prefix sums
	cursors := make([][]atomic.Int64, d) // scatter cursors per split
	splitOf := func(j int, off Ptr) int {
		rel := db.S[j]
		return rankBucket(rel.IndexOf(off), splits[j], rel.Count())
	}
	// Count split occupancy morsel-parallel.
	splitCounts := make([][]int64, d)
	tasks = tasks[:0]
	for j := 0; j < d; j++ {
		splits[j] = sortSplitCount(p.Workers(), d, int(rsTotal[j]))
		splitCounts[j] = make([]int64, splits[j])
		rel := rs[j].Relation()
		j := j
		tasks = rangeTasks(tasks, rel.Count(), func(_, lo, hi int) error {
			local := make([]int64, splits[j])
			for x := lo; x < hi; x++ {
				local[splitOf(j, DecodeSPtr(rel.Object(x)).Off)]++
			}
			for b, c := range local {
				if c != 0 {
					atomic.AddInt64(&splitCounts[j][b], c)
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	for j := 0; j < d; j++ {
		starts[j] = make([]int64, splits[j])
		cursors[j] = make([]atomic.Int64, splits[j])
		off := int64(0)
		for b := 0; b < splits[j]; b++ {
			starts[j][b] = off
			cursors[j][b].Store(off)
			off += splitCounts[j][b]
		}
		rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("SRT%d.seg", j), int(rsTotal[j]))
		if err != nil {
			return JoinStats{}, err
		}
		srt[j] = rel
	}
	// Scatter into the split layout (slots are claimed atomically, so no
	// two writers touch one record; order within a split is arbitrary —
	// the sort imposes the final order).
	tasks = tasks[:0]
	for j := 0; j < d; j++ {
		src, dst := rs[j].Relation(), srt[j]
		j := j
		tasks = rangeTasks(tasks, src.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				obj := src.Object(x)
				slot := cursors[j][splitOf(j, DecodeSPtr(obj).Off)].Add(1) - 1
				copy(dst.seg.Bytes(dst.PtrAt(int(slot)), dst.size), obj)
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	stats := newPerWorker(p)
	tasks = tasks[:0]
	for j := 0; j < d; j++ {
		srt[j].SetCount(int(rsTotal[j]))
		// One task per split: heap-sort a handle array over the mapped
		// records by S pointer, apply the permutation in place, then
		// probe — sequential in both the split and Si.
		for b := 0; b < splits[j]; b++ {
			rel := srt[j]
			lo, hi := int(starts[j][b]), int(starts[j][b]+splitCounts[j][b])
			if lo == hi {
				continue
			}
			tasks = append(tasks, func(w int) error {
				handles := make([]int32, hi-lo)
				for h := range handles {
					handles[h] = int32(h)
				}
				pheap.Sort(handles, func(a, b int32) bool {
					return DecodeSPtr(rel.Object(lo+int(a))).Off < DecodeSPtr(rel.Object(lo+int(b))).Off
				})
				permuteRange(rel, lo, handles)
				st := &stats[w].JoinStats
				for x := lo; x < hi; x++ {
					db.joinOne(rel.Object(x), st)
				}
				return nil
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// permuteRange reorders rel[lo : lo+len(handles)] so record lo+x
// becomes the record previously at lo+handles[x], cycle-chasing with
// one scratch record.
func permuteRange(rel *Relation, lo int, handles []int32) {
	n := len(handles)
	visited := make([]bool, n)
	scratch := make([]byte, rel.ObjSize())
	for start := 0; start < n; start++ {
		if visited[start] || int(handles[start]) == start {
			visited[start] = true
			continue
		}
		copy(scratch, rel.Object(lo+start))
		x := start
		for {
			src := int(handles[x])
			visited[x] = true
			if src == start {
				copy(rel.Object(lo+x), scratch)
				break
			}
			copy(rel.Object(lo+x), rel.Object(lo+src))
			x = src
		}
	}
}

// Grace runs the parallel pointer-based Grace join on an ephemeral
// GOMAXPROCS-sized pool with no probe-memory bound.
func (db *DB) Grace(tmpDir string, k int) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.grace(context.Background(), p, tmpDir, k, newMemLimiter(0, nil, nil))
	})
}

// grace: the scan morsels hash every R object into one of k
// order-preserving buckets per S partition (concurrent atomic-claim
// appends), then every (partition, bucket) pair probes independently —
// an in-memory table per bucket, chains walked in ascending S address.
// Probe memory is metered by lim; oversized buckets restage or stream
// (see probeEnv) instead of overshooting the grant.
func (db *DB) grace(ctx context.Context, p *exec.Pool, tmpDir string, k int, lim *memLimiter) (JoinStats, error) {
	if k < 1 {
		return JoinStats{}, fmt.Errorf("mstore: Grace needs k >= 1, got %d", k)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	// The order-preserving hash: bucket by position of the S offset
	// within the partition's data area.
	bucketOf := func(ptr SPtr) int {
		rel := db.S[ptr.Part]
		return rankBucket(rel.IndexOf(ptr.Off), k, rel.Count())
	}

	// Counting pass (morsel-parallel; it used to be a sequential scan of
	// all of R): size each bucket file exactly.
	counts := make([][]int64, d)
	for j := range counts {
		counts[j] = make([]int64, k)
	}
	var tasks []exec.Task
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				ptr := DecodeSPtr(ri.Object(x))
				atomic.AddInt64(&counts[ptr.Part][bucketOf(ptr)], 1)
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}

	buckets := make([][]*Appender, d)
	defer func() {
		for j := range buckets {
			for _, ap := range buckets[j] {
				if ap != nil {
					ap.Relation().Segment().Delete()
				}
			}
		}
	}()
	// Buckets materialize lazily: a measured-empty bucket gets no
	// appender and no segment file at all. (The former eager D×K
	// creation meant 32k mmap'd files per join at D=64, K=512 — fd and
	// VMA exhaustion under serving load.)
	for j := 0; j < d; j++ {
		buckets[j] = make([]*Appender, k)
		for b := 0; b < k; b++ {
			if counts[j][b] == 0 {
				continue
			}
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("gr_%d_%d.seg", j, b), int(counts[j][b])+1)
			if err != nil {
				return JoinStats{}, err
			}
			lim.tel.TempFiles.Add(1)
			buckets[j][b] = NewAppender(rel)
		}
	}

	tasks = tasks[:0]
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				ptr := DecodeSPtr(obj)
				if err := buckets[ptr.Part][bucketOf(ptr)].Append(obj); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}

	env := &probeEnv{db: db, lim: lim, tmpDir: tmpDir}
	stats := newPerWorker(p)
	tasks = tasks[:0]
	for j := 0; j < d; j++ {
		for b := 0; b < k; b++ {
			ap := buckets[j][b]
			if ap == nil {
				continue
			}
			ap.Seal()
			rel := ap.Relation()
			if rel.Count() == 0 {
				continue
			}
			tasks = append(tasks, func(w int) error {
				return env.probe(rel, &stats[w].JoinStats, 0)
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}

// probeBucket joins one bucket: an in-memory hash table where common
// references share a chain, the chains walked in ascending S address so
// each S object is read once, sequentially.
func (db *DB) probeBucket(rel *Relation, st *JoinStats) {
	table := make(map[Ptr][]int, rel.Count())
	for x := 0; x < rel.Count(); x++ {
		off := DecodeSPtr(rel.Object(x)).Off
		table[off] = append(table[off], x)
	}
	offs := make([]Ptr, 0, len(table))
	for off := range table {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
	for _, off := range offs {
		for _, x := range table[off] {
			db.joinOne(rel.Object(x), st)
		}
	}
}

// tableBytesFor is the counted footprint of a bucket's probe table.
func tableBytesFor(refs int) int64 { return int64(refs) * probeRefBytes }

// probeEnv carries the grant machinery of one join's probe stage. Each
// probe task reserves its table's counted bytes from the shared limiter
// before building it, so the sum over concurrently built tables never
// exceeds the grant — the invariant the skew tests assert.
type probeEnv struct {
	db     *DB
	lim    *memLimiter
	tmpDir string
	seq    atomic.Int64 // unique names for restage temp relations
}

// probe joins one bucket within the grant. The fast path reserves the
// table's bytes (waiting for concurrent probes when the grant is
// temporarily occupied) and builds it as before. A bucket whose table
// can never fit — renegotiation included — is restaged into sub-buckets
// on disk until each fits, and a bucket whose references collapse onto
// a single S object (one hot key) streams instead: restaging cannot
// split it, but it also needs no table.
func (e *probeEnv) probe(rel *Relation, st *JoinStats, depth int) error {
	need := tableBytesFor(rel.Count())
	if e.lim.reserve(need) {
		defer e.lim.release(need)
		e.db.probeBucket(rel, st)
		return nil
	}
	lo, hi := e.indexSpan(rel)
	if depth >= maxRestageDepth || lo >= hi {
		return e.streamProbe(rel, st)
	}
	return e.restage(rel, st, lo, hi, depth)
}

// indexSpan scans a bucket and returns the minimum and maximum S index
// its references name (every reference in a bucket points into one S
// partition, so the indexes are comparable).
func (e *probeEnv) indexSpan(rel *Relation) (lo, hi int) {
	lo, hi = int(^uint(0)>>1), -1
	for x := 0; x < rel.Count(); x++ {
		ptr := DecodeSPtr(rel.Object(x))
		idx := e.db.S[ptr.Part].IndexOf(ptr.Off)
		lo, hi = min(lo, idx), max(hi, idx)
	}
	return lo, hi
}

// restage re-partitions one oversized bucket into sub-buckets on disk —
// the spill path of the dynamic hybrid-hash design. The fan-out is just
// large enough that an average sub-bucket's table fits the current
// grant; skew that concentrates references recurses, narrowing the
// S-index span every pass (min and max always separate), until each
// sub-bucket either fits or has collapsed onto a single hot key.
func (e *probeEnv) restage(rel *Relation, st *JoinStats, lo, hi, depth int) error {
	span := hi - lo + 1
	budget := max(e.lim.budgetNow(), 1)
	sub := int((tableBytesFor(rel.Count()) + budget - 1) / budget)
	sub = max(min(sub, maxRestageFanout, span), 2)

	cnts := make([]int64, sub)
	subIdx := func(ptr SPtr) int {
		return rankBucket(e.db.S[ptr.Part].IndexOf(ptr.Off)-lo, sub, span)
	}
	for x := 0; x < rel.Count(); x++ {
		cnts[subIdx(DecodeSPtr(rel.Object(x)))]++
	}
	aps := make([]*Appender, sub)
	defer func() {
		for _, ap := range aps {
			if ap != nil {
				ap.Relation().Segment().Delete()
			}
		}
	}()
	for b := 0; b < sub; b++ {
		if cnts[b] == 0 {
			continue
		}
		r, err := e.db.tmpRelation(e.tmpDir,
			fmt.Sprintf("rs_%d_%d.seg", depth, e.seq.Add(1)), int(cnts[b])+1)
		if err != nil {
			return err
		}
		e.lim.tel.TempFiles.Add(1)
		aps[b] = NewAppender(r)
	}
	for x := 0; x < rel.Count(); x++ {
		obj := rel.Object(x)
		if err := aps[subIdx(DecodeSPtr(obj))].Append(obj); err != nil {
			return err
		}
	}
	e.lim.tel.Restages.Add(1)
	e.lim.tel.RestagedRefs.Add(int64(rel.Count()))
	for b := 0; b < sub; b++ {
		if aps[b] == nil {
			continue
		}
		aps[b].Seal()
		if err := e.probe(aps[b].Relation(), st, depth+1); err != nil {
			return err
		}
		aps[b].Relation().Segment().Delete()
		aps[b] = nil
	}
	return nil
}

// streamProbe joins one bucket without ever building its table: the
// bucket is processed in grant-sized chunks whose handles are sorted by
// S address, so memory is bounded by one chunk's handle array while the
// probe still walks S in ascending order within each chunk. Correctness
// does not depend on the order — Pairs and Signature fold as
// commutative sums — so the result stays bit-identical.
func (e *probeEnv) streamProbe(rel *Relation, st *JoinStats) error {
	e.lim.tel.StreamProbes.Add(1)
	n := rel.Count()
	chunk := n
	if e.lim.bounded() {
		chunk = int(min(int64(n), max(e.lim.budgetNow()/streamHandleBytes, 1)))
	}
	bytes := int64(chunk) * streamHandleBytes
	if !e.lim.reserve(bytes) {
		// A grant below one handle: degenerate, but still bounded — scan
		// in file order with no auxiliary memory at all.
		for x := 0; x < n; x++ {
			e.db.joinOne(rel.Object(x), st)
		}
		return nil
	}
	defer e.lim.release(bytes)
	handles := make([]int32, chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		h := handles[:hi-lo]
		for i := range h {
			h[i] = int32(lo + i)
		}
		pheap.Sort(h, func(a, b int32) bool {
			return DecodeSPtr(rel.Object(int(a))).Off < DecodeSPtr(rel.Object(int(b))).Off
		})
		for _, x := range h {
			e.db.joinOne(rel.Object(int(x)), st)
		}
	}
	return nil
}

// HybridHash runs the parallel pointer-based hybrid-hash join on an
// ephemeral GOMAXPROCS-sized pool with no probe-memory bound.
func (db *DB) HybridHash(tmpDir string, k int, residentFrac float64) (JoinStats, error) {
	return ephemeralPool(func(p *exec.Pool) (JoinStats, error) {
		return db.hybridHash(context.Background(), p, tmpDir, k, residentFrac, newMemLimiter(0, nil, nil))
	})
}

// hybridHash: references into a resident prefix of each S partition
// (residentFrac of its objects) join immediately during the scan
// morsels and never touch temporary storage; the remainder goes through
// Grace-style ordered buckets, probed under lim's memory grant.
func (db *DB) hybridHash(ctx context.Context, p *exec.Pool, tmpDir string, k int, residentFrac float64, lim *memLimiter) (JoinStats, error) {
	if k < 1 {
		return JoinStats{}, fmt.Errorf("mstore: HybridHash needs k >= 1, got %d", k)
	}
	if residentFrac < 0 || residentFrac > 1 {
		return JoinStats{}, fmt.Errorf("mstore: residentFrac %g out of [0,1]", residentFrac)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return JoinStats{}, err
	}
	d := db.D
	residentUpTo := make([]int, d)
	for j := 0; j < d; j++ {
		residentUpTo[j] = int(residentFrac * float64(db.S[j].Count()))
	}
	isResident := func(ptr SPtr) bool {
		return db.S[ptr.Part].IndexOf(ptr.Off) < residentUpTo[ptr.Part]
	}
	bucketOf := func(ptr SPtr) int {
		rel := db.S[ptr.Part]
		lo := residentUpTo[ptr.Part]
		return rankBucket(rel.IndexOf(ptr.Off)-lo, k, rel.Count()-lo)
	}

	// Counting pass for exact bucket sizing (morsel-parallel).
	counts := make([][]int64, d)
	for j := range counts {
		counts[j] = make([]int64, k)
	}
	var tasks []exec.Task
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(_, lo, hi int) error {
			for x := lo; x < hi; x++ {
				if ptr := DecodeSPtr(ri.Object(x)); !isResident(ptr) {
					atomic.AddInt64(&counts[ptr.Part][bucketOf(ptr)], 1)
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}

	buckets := make([][]*Appender, d)
	defer func() {
		for j := range buckets {
			for _, ap := range buckets[j] {
				if ap != nil {
					ap.Relation().Segment().Delete()
				}
			}
		}
	}()
	// Lazy bucket materialization, as in grace: measured-empty buckets
	// get no appender and no segment file.
	for j := 0; j < d; j++ {
		buckets[j] = make([]*Appender, k)
		for b := 0; b < k; b++ {
			if counts[j][b] == 0 {
				continue
			}
			rel, err := db.tmpRelation(tmpDir, fmt.Sprintf("hh_%d_%d.seg", j, b), int(counts[j][b])+1)
			if err != nil {
				return JoinStats{}, err
			}
			lim.tel.TempFiles.Add(1)
			buckets[j][b] = NewAppender(rel)
		}
	}

	stats := newPerWorker(p)
	// Scan: resident references join now, the rest partition.
	tasks = tasks[:0]
	for _, ri := range db.R {
		tasks = rangeTasks(tasks, ri.Count(), func(w, lo, hi int) error {
			st := &stats[w].JoinStats
			for x := lo; x < hi; x++ {
				obj := ri.Object(x)
				ptr := DecodeSPtr(obj)
				if isResident(ptr) {
					db.joinOne(obj, st)
					continue
				}
				if err := buckets[ptr.Part][bucketOf(ptr)].Append(obj); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}

	// Probe the overflow buckets as in Grace, under the same grant.
	env := &probeEnv{db: db, lim: lim, tmpDir: tmpDir}
	tasks = tasks[:0]
	for j := 0; j < d; j++ {
		for b := 0; b < k; b++ {
			ap := buckets[j][b]
			if ap == nil {
				continue
			}
			ap.Seal()
			rel := ap.Relation()
			if rel.Count() == 0 {
				continue
			}
			tasks = append(tasks, func(w int) error {
				return env.probe(rel, &stats[w].JoinStats, 0)
			})
		}
	}
	if err := p.Run(ctx, tasks); err != nil {
		return JoinStats{}, err
	}
	return stats.total(), nil
}
