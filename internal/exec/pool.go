// Package exec is the morsel-driven execution layer of the mapped
// store: a work-stealing pool of a fixed number of goroutines onto
// which joins (and any other bulk operation) submit fine-grained tasks
// — "morsels", fixed-size object ranges in the style of Leis et al.'s
// morsel-driven parallelism and of Albutiu et al.'s MPSM join.
//
// The pool decouples CPU parallelism from data layout: the paper's
// structural parallelism runs one process per disk partition (D of
// them), which underuses a host with more cores than partitions and
// oversubscribes one running several joins at once. Here every join
// decomposes into many morsels pulled by Workers goroutines (default
// GOMAXPROCS), and one pool can be shared by all in-flight joins of a
// server so the total CPU fan-out stays bounded by the host.
//
// Scheduling is deterministic-result by construction, not
// deterministic-order: callers must make morsel results order
// independent (the store's JoinStats are commutative sums, so they are
// bit-identical at any worker count).
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Run after Close.
var ErrClosed = errors.New("exec: pool is closed")

// Task is one morsel of work. The worker argument identifies the
// executing pool goroutine (0 ≤ worker < Workers()); callers use it to
// index per-worker accumulators without synchronization.
type Task func(worker int) error

// job tracks one Run call: its remaining morsels, its first error, and
// a failed flag that makes workers skip the job's queued morsels.
type job struct {
	ctx     context.Context
	pending atomic.Int64
	done    chan struct{}
	failed  atomic.Bool
	mu      sync.Mutex
	err     error
}

// fail records the job's first error and marks it failed so queued
// morsels are skipped instead of executed.
func (j *job) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
	j.failed.Store(true)
}

// retire accounts one morsel as finished (executed or skipped).
func (j *job) retire() {
	if j.pending.Add(-1) == 0 {
		close(j.done)
	}
}

type morsel struct {
	j  *job
	fn Task
}

// Pool is a work-stealing pool of a fixed number of worker goroutines.
// Morsels are distributed round-robin across per-worker deques; a
// worker pops its own deque LIFO (locality) and steals FIFO from a
// victim's head when empty. Many Run calls may be in flight at once —
// their morsels interleave on the same workers, which is exactly how a
// server bounds total CPU fan-out across concurrent joins.
type Pool struct {
	workers int

	mu     sync.Mutex // guards deques, queued, busy, rr, closed, and the cond
	cond   *sync.Cond
	deques [][]morsel
	queued int
	busy   int
	peak   int
	rr     int
	closed bool

	steals   atomic.Int64
	executed atomic.Int64
	skipped  atomic.Int64
	jobs     atomic.Int64
	wg       sync.WaitGroup
}

// NewPool starts a pool of the given number of workers; zero or
// negative selects runtime.GOMAXPROCS(0). Close releases the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, deques: make([][]morsel, workers)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool's goroutine count.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down: workers drain every queued morsel, then
// exit. Run calls that arrive after Close fail with ErrClosed. Close
// blocks until all workers have exited.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Run submits the tasks as one job and blocks until every one of them
// has retired, returning the job's first error. Cancelling ctx skips
// the job's still-queued morsels, but Run keeps waiting for in-flight
// ones — after Run returns, none of its tasks is executing, so callers
// may tear down the state the tasks reference.
//
// Run must not be called from inside a Task: a nested Run can deadlock
// once every worker is blocked in it.
func (p *Pool) Run(ctx context.Context, tasks []Task) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	j := &job{ctx: ctx, done: make(chan struct{})}
	j.pending.Store(int64(len(tasks)))

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	for _, fn := range tasks {
		p.deques[p.rr] = append(p.deques[p.rr], morsel{j: j, fn: fn})
		p.rr = (p.rr + 1) % p.workers
		p.queued++
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.jobs.Add(1)

	select {
	case <-j.done:
	case <-ctx.Done():
		j.fail(ctx.Err())
		<-j.done
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Job is a Run in progress whose task set can still grow: tasks added
// with Add — including from inside one of the job's own tasks — join
// the same job, and Wait blocks until every task, original or added,
// has retired. It exists for pipelined operators (the MPSM-style
// sort-merge) where the completion of one stage's last morsel for a
// data partition enqueues that partition's next stage immediately,
// instead of waiting for a global barrier across all partitions.
type Job struct {
	p      *Pool
	j      *job
	waited atomic.Bool
}

// Begin opens a job with no tasks yet. The caller must eventually call
// Wait exactly once; Add may be called any number of times before the
// final task retires (in particular, from inside the job's own tasks).
func (p *Pool) Begin(ctx context.Context) *Job {
	j := &job{ctx: ctx, done: make(chan struct{})}
	// One "open" token keeps the job alive until Wait retires it, so an
	// empty or still-filling job never closes done early.
	j.pending.Store(1)
	p.jobs.Add(1)
	return &Job{p: p, j: j}
}

// Add enqueues more tasks onto the job. Safe to call from inside one of
// the job's tasks: the calling task has not retired, so the job cannot
// complete concurrently. Add after the pool closed fails the job and
// returns ErrClosed.
func (jb *Job) Add(tasks ...Task) error {
	if len(tasks) == 0 {
		return nil
	}
	jb.j.pending.Add(int64(len(tasks)))
	p := jb.p
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		jb.j.fail(ErrClosed)
		for range tasks {
			jb.j.retire()
		}
		return ErrClosed
	}
	for _, fn := range tasks {
		p.deques[p.rr] = append(p.deques[p.rr], morsel{j: jb.j, fn: fn})
		p.rr = (p.rr + 1) % p.workers
		p.queued++
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// Wait retires the job's open token and blocks until every task has
// retired, returning the job's first error (as Run does). Cancelling
// ctx skips still-queued tasks but waits for in-flight ones.
func (jb *Job) Wait() error {
	if jb.waited.Swap(true) {
		panic("exec: Job.Wait called twice")
	}
	jb.j.retire()
	select {
	case <-jb.j.done:
	case <-jb.j.ctx.Done():
		jb.j.fail(jb.j.ctx.Err())
		<-jb.j.done
	}
	jb.j.mu.Lock()
	defer jb.j.mu.Unlock()
	return jb.j.err
}

// RunRanges splits [0, n) into contiguous ranges of at most morsel
// objects and runs fn over them as one job.
func (p *Pool) RunRanges(ctx context.Context, n, morsel int, fn func(worker, lo, hi int) error) error {
	if morsel < 1 {
		morsel = 1
	}
	tasks := make([]Task, 0, (n+morsel-1)/morsel)
	for lo := 0; lo < n; lo += morsel {
		lo, hi := lo, min(lo+morsel, n)
		tasks = append(tasks, func(w int) error { return fn(w, lo, hi) })
	}
	return p.Run(ctx, tasks)
}

// worker is one pool goroutine: pop own deque, steal, or sleep.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		m, ok := p.next(id)
		if !ok {
			return
		}
		if m.j.failed.Load() || m.j.ctx.Err() != nil {
			p.skipped.Add(1)
		} else {
			if err := p.exec(m, id); err != nil {
				m.j.fail(err)
			}
			p.executed.Add(1)
		}
		p.mu.Lock()
		p.busy--
		p.mu.Unlock()
		m.j.retire()
	}
}

// exec runs one morsel, converting a panic into an error so a bad task
// fails its own job instead of killing the shared pool (and with it the
// whole server).
func (p *Pool) exec(m morsel, id int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("exec: task panicked: %v", v)
		}
	}()
	return m.fn(id)
}

// next blocks until a morsel is available (marking the worker busy) or
// the pool is closed with nothing left to drain.
func (p *Pool) next(id int) (morsel, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if q := p.deques[id]; len(q) > 0 {
			m := q[len(q)-1] // own work: LIFO for locality
			p.deques[id] = q[:len(q)-1]
			return p.take(m), true
		}
		for off := 1; off < p.workers; off++ {
			v := (id + off) % p.workers
			if q := p.deques[v]; len(q) > 0 {
				m := q[0] // steal: FIFO from the victim's head
				p.deques[v] = q[1:]
				p.steals.Add(1)
				return p.take(m), true
			}
		}
		if p.closed {
			return morsel{}, false
		}
		p.cond.Wait()
	}
}

// take accounts a dequeued morsel (p.mu held).
func (p *Pool) take(m morsel) morsel {
	p.queued--
	p.busy++
	if p.busy > p.peak {
		p.peak = p.busy
	}
	return m
}

// Stats is a point-in-time snapshot of the pool's counters.
type Stats struct {
	// Workers is the pool size: the bound on concurrently executing
	// morsels, and therefore on the live CPU fan-out of every join
	// sharing the pool.
	Workers int `json:"workers"`
	// Busy is the number of workers executing a morsel right now
	// (occupancy); PeakBusy is its high-water mark, always ≤ Workers.
	Busy     int `json:"busy"`
	PeakBusy int `json:"peakBusy"`
	// Queued is the current depth of the morsel queue across all deques.
	Queued int `json:"queued"`
	// Steals counts morsels a worker took from another worker's deque.
	Steals int64 `json:"steals"`
	// Executed and Skipped count retired morsels (skipped ones belonged
	// to a job already failed or cancelled).
	Executed int64 `json:"executed"`
	Skipped  int64 `json:"skipped"`
	// Jobs counts Run calls accepted.
	Jobs int64 `json:"jobs"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	busy, peak, queued := p.busy, p.peak, p.queued
	p.mu.Unlock()
	return Stats{
		Workers:  p.workers,
		Busy:     busy,
		PeakBusy: peak,
		Queued:   queued,
		Steals:   p.steals.Load(),
		Executed: p.executed.Load(),
		Skipped:  p.skipped.Load(),
		Jobs:     p.jobs.Load(),
	}
}
