package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/model"
	"mmjoin/internal/mstore"
	"mmjoin/internal/planner"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
)

// Config parameterizes one server. Zero values select the documented
// defaults.
type Config struct {
	// Dir is the database directory and D its partition count. Required
	// unless Store is set.
	Dir string
	D   int

	// Store, when non-nil, is a pre-opened store the server serves
	// instead of opening Dir — this is how the sharded scatter-gather
	// router is mounted (`mmdb serve -shard-map`). The server takes
	// ownership: Close closes it.
	Store mstore.Store

	// TmpDir roots per-request spill directories (default Dir/tmp when
	// Dir is set, else the OS temp dir).
	TmpDir string

	// MemBudget is the total bytes of join memory the service may have
	// charged to concurrently executing joins (default 8·DefaultGrant).
	MemBudget int64
	// DefaultGrant is the per-request memory grant when the request does
	// not name one (default 4 MiB · D).
	DefaultGrant int64
	// MaxQueue bounds the admission wait queue; a full queue answers 429
	// (default 64, negative disables queueing entirely).
	MaxQueue int
	// RequestTimeout caps each request's admission wait plus execution
	// (default 30s; requests may shorten it per call).
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// CalibrationOps is the analytical-model calibration effort at
	// startup (default 800 measured I/Os per band size).
	CalibrationOps int

	// Workers sizes the work-stealing morsel pool shared by every
	// in-flight join (default GOMAXPROCS). However many joins run
	// concurrently, at most Workers goroutines execute join morsels at
	// any instant — the pool, not the request count, bounds CPU fan-out.
	Workers int
}

func (cfg *Config) withDefaults() error {
	if cfg.Store == nil {
		if cfg.Dir == "" {
			return fmt.Errorf("service: database dir or store required")
		}
		if cfg.D < 1 {
			return fmt.Errorf("service: D=%d must be >= 1", cfg.D)
		}
	}
	if cfg.TmpDir == "" {
		if cfg.Dir != "" {
			cfg.TmpDir = filepath.Join(cfg.Dir, "tmp")
		} else {
			cfg.TmpDir = filepath.Join(os.TempDir(), "mmjoin-serve")
		}
	}
	// DefaultGrant and MemBudget default in New, once the store's D is
	// known (a sharded store reports it from its shards).
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.CalibrationOps <= 0 {
		cfg.CalibrationOps = 800
	}
	return nil
}

// Server is the concurrent query service over one mapped database. All
// endpoints are safe for concurrent use; joins execute real goroutine
// parallelism over the shared read-only base relations, with per-request
// temporary directories.
type Server struct {
	cfg   Config
	store mstore.Store
	// shardRunner and shardMgr are the store's optional sharded
	// capabilities (nil for a single mapped database): per-shard join
	// detail, and live add/remove-with-drain membership management.
	shardRunner mstore.ShardRunner
	shardMgr    ShardManager
	d           int                // addressable partition count (store's D)
	w           *relation.Workload // the store's shape+references, for the planner
	pl          *planner.Planner
	sim         machine.Config // simulated machine the planner costs against
	adm         *Admission
	pool        *exec.Pool // morsel pool shared by all in-flight joins

	start time.Time
	// drainMu orders inflight.Add against Drain's draining transition:
	// every request either registers with inflight before Drain flips the
	// flag (and is therefore seen by inflight.Wait) or observes the flag
	// and is rejected. It also keeps Add from running on a zero counter
	// concurrently with Wait, which WaitGroup forbids.
	drainMu  sync.Mutex
	inflight sync.WaitGroup
	draining atomic.Bool
	reqSeq   atomic.Int64

	// peakTableBytes is the server-wide high-water mark of any single
	// join's counted probe-table memory, exported as a gauge.
	peakTableBytes atomic.Int64

	// meanServiceNs is an EWMA of admitted-join execution time (the time
	// a grant stays charged), the rate at which budget slots recycle. It
	// feeds the dynamic Retry-After hint.
	meanServiceNs atomic.Int64

	// preJoin, when set by tests, runs inside the join goroutine after
	// admission and before execution, making mid-join timing
	// deterministic.
	preJoin func()

	mu        sync.Mutex // guards reg and the instrument maps
	reg       *metrics.Registry
	counters  map[string]*metrics.Counter
	hists     map[string]*metrics.Histogram
	histOrder []string
}

// New opens (or adopts) the store, derives its workload shape,
// calibrates the planner, and assembles the admission controller. Close
// releases the store.
func New(cfg Config) (*Server, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	store := cfg.Store
	if store == nil {
		db, err := mstore.OpenDB(cfg.Dir, cfg.D)
		if err != nil {
			return nil, err
		}
		store = db
	}
	stats := store.Stats()
	if cfg.D == 0 {
		cfg.D = stats.D
	}
	if cfg.D < 1 {
		store.Close()
		return nil, fmt.Errorf("service: store reports D=%d", cfg.D)
	}
	if cfg.DefaultGrant <= 0 {
		cfg.DefaultGrant = int64(cfg.D) << 22
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 8 * cfg.DefaultGrant
	}
	w, err := store.Workload()
	if err != nil {
		store.Close()
		return nil, err
	}
	mcfg := machine.DefaultConfig()
	mcfg.D = cfg.D
	calib := model.Calibrate(mcfg, cfg.CalibrationOps, 1)
	// An indexed store widens the candidate set so `auto` can pick the
	// index paths; an unindexed (or partially indexed, sharded) store
	// plans over the four staging algorithms only.
	var algs []join.Algorithm
	if stats.Indexed {
		algs = planner.IndexAlgorithms
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		d:        cfg.D,
		w:        w,
		pl:       planner.New(calib, algs),
		sim:      mcfg,
		adm:      NewAdmission(cfg.MemBudget, cfg.MaxQueue),
		pool:     exec.NewPool(cfg.Workers),
		start:    time.Now(),
		reg:      metrics.New(),
		counters: make(map[string]*metrics.Counter),
		hists:    make(map[string]*metrics.Histogram),
	}
	if sr, ok := store.(mstore.ShardRunner); ok {
		s.shardRunner = sr
	}
	if mgr, ok := store.(ShardManager); ok {
		s.shardMgr = mgr
	}
	// Pool health as callback gauges: occupancy, queue depth, and steal
	// count read live at every /stats snapshot.
	s.reg.Gauge("pool_workers", func() float64 { return float64(s.pool.Stats().Workers) })
	s.reg.Gauge("pool_busy", func() float64 { return float64(s.pool.Stats().Busy) })
	s.reg.Gauge("pool_peak_busy", func() float64 { return float64(s.pool.Stats().PeakBusy) })
	s.reg.Gauge("pool_queued_morsels", func() float64 { return float64(s.pool.Stats().Queued) })
	s.reg.Gauge("pool_steals", func() float64 { return float64(s.pool.Stats().Steals) })
	s.reg.Gauge("pool_executed_morsels", func() float64 { return float64(s.pool.Stats().Executed) })
	s.reg.Gauge("probe_table_peak_bytes", func() float64 { return float64(s.peakTableBytes.Load()) })
	// Admission occupancy as live gauges, so load tooling can watch the
	// queue drain without diffing counters.
	s.reg.Gauge("admission_queue_depth", func() float64 { return float64(s.adm.QueueDepth()) })
	s.reg.Gauge("admission_used_bytes", func() float64 { return float64(s.adm.Stats().UsedBytes) })
	s.reg.Gauge("retry_after_hint_sec", func() float64 { return s.retryAfterHint().Seconds() })
	// Outcome counters registered eagerly so /stats shows them at zero
	// before the first request arrives — client/server reconciliation
	// diffs these keys and must find them on both snapshots.
	for _, name := range []string{
		"spill_restages_total", "spill_restaged_refs_total", "stream_probes_total",
		"grant_renegotiations_total", "grant_renegotiations_denied_total",
		"temp_relations_total",
		"join_requests_total", "bad_requests", "errors_internal", "join_abandoned",
		"rejected_saturated", "rejected_deadline", "rejected_too_large", "rejected_draining",
		"lookups_total", "lookups_ok", "lookups_bad_request", "lookups_not_found",
		"lookups_failed", "lookups_rejected_draining",
		"join_executed_nested-loops", "join_executed_sort-merge",
		"join_executed_grace", "join_executed_hybrid-hash", "join_executed_auto",
		"radix_passes_total", "shard_adds_total", "shard_removes_total",
	} {
		s.counter(name)
	}
	return s, nil
}

// ShardManager is the optional membership-management capability of
// sharded stores (shard.Router satisfies it): mount a new shard, or
// drain and unmount one. Single-store servers answer 409 on the
// /v1/shards mutation endpoints.
type ShardManager interface {
	AddShard(id, dir string, d int) error
	RemoveShard(ctx context.Context, id string) error
}

// Close releases the worker pool and the store (every mapping behind
// it). Callers should Drain first.
func (s *Server) Close() error {
	s.pool.Close()
	return s.store.Close()
}

// Drain stops admitting new requests (joins answer 503, healthz reports
// draining) and waits until every accepted request — including queued
// ones and joins abandoned by their clients — has finished, or ctx
// expires.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// beginRequest registers one unit of in-flight work with the drain
// waiter, or reports false if the server is draining. Callers that get
// true must s.inflight.Done() when the work finishes; while their
// registration is held, further inflight.Add calls (e.g. for a child
// goroutine) are plain WaitGroup use and need no lock.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// counter returns (creating on first use) a named counter.
func (s *Server) counter(name string) *metrics.Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = s.reg.Counter(name)
		s.counters[name] = c
	}
	return c
}

// observe records a wall-clock duration in a named histogram.
func (s *Server) observe(name string, d time.Duration) {
	s.mu.Lock()
	h, ok := s.hists[name]
	if !ok {
		h = s.reg.Histogram(name)
		s.hists[name] = h
		s.histOrder = append(s.histOrder, name)
	}
	s.mu.Unlock()
	s.mu.Lock()
	h.Observe(sim.Time(d))
	s.mu.Unlock()
}

// inc bumps a named counter (thread-safe).
func (s *Server) inc(name string) { s.add(name, 1) }

// add increases a named counter by d (thread-safe).
func (s *Server) add(name string, d int64) {
	c := s.counter(name)
	s.mu.Lock()
	c.Add(d)
	s.mu.Unlock()
}

// Handler returns the service's HTTP mux. The surface is versioned
// under /v1/ — POST /v1/join, GET /v1/lookup, GET /v1/stats,
// GET /v1/healthz, and shard management under /v1/shards — with the
// original unversioned paths kept as aliases for existing clients.
// Every handler runs behind panic isolation — a panicking request
// answers 500 and the server keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		mux.HandleFunc("POST "+prefix+"/join", s.handleJoin)
		mux.HandleFunc("GET "+prefix+"/lookup", s.handleLookup)
		mux.HandleFunc("GET "+prefix+"/stats", s.handleStats)
		mux.HandleFunc("GET "+prefix+"/healthz", s.handleHealthz)
	}
	mux.HandleFunc("GET /v1/shards", s.handleShardsList)
	mux.HandleFunc("POST /v1/shards", s.handleShardsAdd)
	mux.HandleFunc("DELETE /v1/shards/{id}", s.handleShardsRemove)
	return s.isolate(mux)
}

// isolate recovers handler panics into 500 responses.
func (s *Server) isolate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.inc("panics_recovered")
				writeError(rw, http.StatusInternalServerError, "internal",
					fmt.Sprintf("internal panic: %v", v))
			}
		}()
		next.ServeHTTP(rw, r)
	})
}

// ErrorBody is the one JSON error shape every endpoint returns:
//
//	{"error": {"code": "saturated", "message": "...", "retry_after_ms": 1000}}
//
// Code is a small machine-matchable vocabulary (bad_request, draining,
// saturated, grant_too_large, not_found, not_sharded, abandoned,
// drain_timeout, conflict, internal); Message is human prose;
// RetryAfterMs accompanies retryable rejections and mirrors the
// Retry-After header.
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope wraps ErrorBody under the top-level "error" key.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

func writeError(rw http.ResponseWriter, status int, code, msg string) {
	writeJSON(rw, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// writeRetryError also sets the Retry-After header (whole seconds,
// rounded up) alongside the millisecond hint in the body.
func writeRetryError(rw http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	rw.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
	writeJSON(rw, status, ErrorEnvelope{Error: ErrorBody{
		Code: code, Message: msg, RetryAfterMs: retryAfter.Milliseconds(),
	}})
}

// JoinRequest is the wire form of one join query.
type JoinRequest struct {
	// Algorithm is "auto" (or empty) for a planner-chosen algorithm, or
	// one of nested-loops, sort-merge, grace, hybrid-hash.
	Algorithm string `json:"algorithm"`
	// MemBytes is the request's total memory grant — the unit of
	// admission control. Zero selects the server default. Each of the D
	// partition goroutines receives MemBytes/D as its MRproc.
	MemBytes int64 `json:"memBytes"`
	// K overrides the Grace/hybrid bucket count (0: derive from grant).
	K int `json:"k"`
	// TimeoutMs shortens the server's request timeout for this call.
	TimeoutMs int64 `json:"timeoutMs"`
}

// PlanEntry is one planner candidate in the response, cheapest first.
type PlanEntry struct {
	Algorithm   string `json:"algorithm"`
	PredictedNs int64  `json:"predictedNs"`
}

// JoinResponse is the wire form of one join result.
type JoinResponse struct {
	Algorithm   string      `json:"algorithm"`
	Pairs       int64       `json:"pairs"`
	Signature   string      `json:"signature"` // hex, order-independent
	MemBytes    int64       `json:"memBytes"`  // granted (charged) bytes
	MRproc      int64       `json:"mrprocBytes"`
	QueueWaitNs int64       `json:"queueWaitNs"`
	ElapsedNs   int64       `json:"elapsedNs"` // execution, excluding queue
	Plan        []PlanEntry `json:"plan,omitempty"`
	PredictedNs int64       `json:"predictedNs,omitempty"` // model's per-join virtual-time estimate

	// Memory-adaptation telemetry (Grace/hybrid-hash): how the join
	// behaved when its grant was tight. Zero values are omitted.
	Restages       int64 `json:"restages,omitempty"`       // oversized buckets respilled to disk
	StreamProbes   int64 `json:"streamProbes,omitempty"`   // hot-key buckets joined by streaming
	Renegotiations int64 `json:"renegotiations,omitempty"` // mid-join grant growths obtained
	RadixPasses    int64 `json:"radixPasses,omitempty"`    // cache-conscious partitioning passes
	PeakTableBytes int64 `json:"peakTableBytes,omitempty"` // high-water counted probe memory

	// Shards carries the per-shard breakdown of a scatter-gather join
	// (sharded stores only): which algorithm each shard planned, its
	// slice of the pairs, and its own telemetry. The merged Pairs and
	// Signature above are the fold of these.
	Shards []ShardJoinDetail `json:"shards,omitempty"`
}

// ShardJoinDetail is one shard's contribution on the wire.
type ShardJoinDetail struct {
	Shard          string `json:"shard"`
	Algorithm      string `json:"algorithm"`
	Pairs          int64  `json:"pairs"`
	Signature      string `json:"signature"` // hex, same encoding as the merged one
	ElapsedNs      int64  `json:"elapsedNs"`
	Restages       int64  `json:"restages,omitempty"`
	StreamProbes   int64  `json:"streamProbes,omitempty"`
	Renegotiations int64  `json:"renegotiations,omitempty"`
	RadixPasses    int64  `json:"radixPasses,omitempty"`
	PeakTableBytes int64  `json:"peakTableBytes,omitempty"`
	TempFiles      int64  `json:"tempFiles,omitempty"`
}

// grantGrower adapts the admission controller to the store's mid-join
// renegotiation interface: growth requests charge the shared budget
// without waiting (and without jumping queued joins), give-backs release
// into it.
type grantGrower struct{ adm *Admission }

func (g grantGrower) TryGrow(bytes int64) bool { return g.adm.TryAcquire(bytes) }
func (g grantGrower) GiveBack(bytes int64)     { g.adm.Release(bytes) }

// executable maps wire names onto the store's runnable algorithms.
// index-nl and index-merge parse unconditionally; the store rejects
// them with a client error when it has no persistent indexes.
func parseAlgorithm(name string) (join.Algorithm, bool) {
	switch name {
	case "nested-loops":
		return join.NestedLoops, true
	case "sort-merge":
		return join.SortMerge, true
	case "grace":
		return join.Grace, true
	case "hybrid-hash":
		return join.HybridHash, true
	case "index-nl":
		return join.IndexNL, true
	case "index-merge":
		return join.IndexMerge, true
	}
	return 0, false
}

func (s *Server) handleJoin(rw http.ResponseWriter, r *http.Request) {
	s.inc("join_requests_total")
	// Register with the drain waiter before anything else: once past
	// this point the request — including its admission wait and any
	// join goroutine it spawns — is visible to Drain's inflight.Wait,
	// so Drain cannot return (and the caller cannot unmap the db) while
	// this request might still read it.
	if !s.beginRequest() {
		s.inc("rejected_draining")
		writeError(rw, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	defer s.inflight.Done()

	var req JoinRequest
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			s.inc("bad_requests")
			writeError(rw, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
			return
		}
	}
	// K sizes real per-partition bucket state in Grace/hybrid-hash
	// (D·K index slices plus D·K temp files), entirely outside the
	// memory grant the admission controller charges — so an absurd wire
	// value must be rejected here, not trusted. More buckets than R
	// objects can never help; mstore additionally clamps K to the
	// per-partition reference count.
	if maxK := s.store.CountR(); req.K < 0 || req.K > maxK {
		s.inc("bad_requests")
		writeError(rw, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("k=%d out of range [0..%d]", req.K, maxK))
		return
	}
	grant := req.MemBytes
	if grant <= 0 {
		grant = s.cfg.DefaultGrant
	}
	// Every partition goroutine needs at least one page of grant.
	if min := int64(s.d) * 4096; grant < min {
		grant = min
	}
	mrproc := grant / int64(s.d)

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 && time.Duration(req.TimeoutMs)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Plan: cost the request through the calibrated model. The planner
	// sees the exact store shape (measured skew and distinct counts; a
	// sharded store contributes its merged workload). On a sharded store
	// an auto request stays join.Auto — the router re-plans per shard
	// against each shard's own workload, and the merged-view choice below
	// is advisory (it still populates the response's plan table).
	resp := JoinResponse{MemBytes: grant, MRproc: mrproc}
	var alg join.Algorithm
	if req.Algorithm == "" || req.Algorithm == "auto" {
		choice, err := s.pl.ChooseFor(join.Request{
			Config: s.sim,
			Params: join.Params{Workload: s.w, MRproc: mrproc, K: req.K},
		})
		if err != nil {
			s.inc("errors_internal")
			writeError(rw, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		alg = choice.Best.Algorithm
		resp.PredictedNs = int64(choice.Best.Predicted)
		for _, c := range choice.Candidates {
			resp.Plan = append(resp.Plan, PlanEntry{Algorithm: c.Algorithm.String(), PredictedNs: int64(c.Predicted)})
		}
		s.inc("plan_choice_" + alg.String())
		if s.shardRunner != nil {
			alg = join.Auto
		}
	} else {
		var ok bool
		alg, ok = parseAlgorithm(req.Algorithm)
		if !ok {
			s.inc("bad_requests")
			writeError(rw, http.StatusBadRequest, "bad_request",
				"unknown algorithm "+strconv.Quote(req.Algorithm))
			return
		}
	}
	resp.Algorithm = alg.String()

	// Admission: charge the grant against the shared memory budget.
	admStart := time.Now()
	if err := s.adm.Acquire(ctx, grant); err != nil {
		s.rejectAdmission(rw, err)
		return
	}
	queueWait := time.Since(admStart)
	resp.QueueWaitNs = queueWait.Nanoseconds()
	s.observe("admission_wait", queueWait)

	// Execute on a child goroutine so client cancellation unblocks the
	// handler; an abandoned join keeps its grant until it finishes (the
	// memory truly is in use until then) and releases it on completion.
	type outcome struct {
		st      mstore.JoinStats
		details []mstore.ShardJoinStat
		err     error
	}
	tmp := filepath.Join(s.cfg.TmpDir, fmt.Sprintf("req%d", s.reqSeq.Add(1)))
	execStart := time.Now()
	done := make(chan outcome, 1)
	tel := &mstore.JoinTelemetry{}
	// The handler's own registration is still held here, so this Add
	// runs on a non-zero counter and needs no drainMu.
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		// The grant is held from execStart until the join finishes — even
		// when the client abandoned the request — so this is the honest
		// slot-recycling time the Retry-After hint needs. Releasing before
		// the done-send below means a caller who has our 200 in hand
		// observes the budget already balanced.
		released := false
		release := func() {
			if !released {
				released = true
				s.recordServiceTime(time.Since(execStart))
				s.adm.Release(grant)
			}
		}
		defer release()
		defer os.RemoveAll(tmp)
		defer func() {
			if v := recover(); v != nil {
				done <- outcome{err: fmt.Errorf("join panicked: %v", v)}
			}
		}()
		if s.preJoin != nil {
			s.preJoin()
		}
		// The join's morsels run on the server's shared pool: however
		// many joins are in flight, at most cfg.Workers goroutines
		// execute morsels (a sharded store substitutes its per-shard
		// pools). Passing ctx aborts the join between morsels when the
		// client abandons it, releasing the grant early. The grant
		// charged at admission is the join's probe-memory bound
		// (MemGrant), and a join that outgrows it renegotiates against
		// the same shared budget through the controller.
		jr := mstore.JoinRequest{
			Algorithm: alg, MRproc: mrproc, K: req.K, TmpDir: tmp,
			MemGrant: grant, Telemetry: tel, Negotiator: grantGrower{s.adm},
			Pool: s.pool, Ctx: ctx,
		}
		var out outcome
		if s.shardRunner != nil {
			out.st, out.details, out.err = s.shardRunner.RunShards(jr)
		} else {
			out.st, out.err = s.store.Run(jr)
		}
		s.foldTelemetry(tel)
		release()
		done <- out
	}()

	select {
	case out := <-done:
		elapsed := time.Since(execStart)
		if out.err != nil {
			s.inc("errors_internal")
			writeError(rw, http.StatusInternalServerError, "internal", out.err.Error())
			return
		}
		s.inc("join_executed_" + alg.String())
		s.observe("join_latency_"+alg.String(), elapsed)
		resp.Pairs = out.st.Pairs
		resp.Signature = fmt.Sprintf("%016x", out.st.Signature)
		resp.ElapsedNs = elapsed.Nanoseconds()
		resp.Restages = tel.Restages.Load()
		resp.StreamProbes = tel.StreamProbes.Load()
		resp.Renegotiations = tel.Renegotiations.Load()
		resp.RadixPasses = tel.RadixPasses.Load()
		resp.PeakTableBytes = tel.PeakTableBytes.Load()
		for _, det := range out.details {
			resp.Shards = append(resp.Shards, ShardJoinDetail{
				Shard: det.Shard, Algorithm: det.Algorithm,
				Pairs: det.Pairs, Signature: fmt.Sprintf("%016x", det.Signature),
				ElapsedNs: det.ElapsedNs, Restages: det.Restages,
				StreamProbes: det.StreamProbes, Renegotiations: det.Renegotiations,
				RadixPasses: det.RadixPasses, PeakTableBytes: det.PeakTableBytes,
				TempFiles: det.TempFiles,
			})
		}
		writeJSON(rw, http.StatusOK, resp)
	case <-ctx.Done():
		s.inc("join_abandoned")
		writeError(rw, http.StatusServiceUnavailable, "abandoned",
			"request abandoned mid-join: "+ctx.Err().Error())
	}
}

// foldTelemetry rolls one finished join's memory-adaptation counters
// into the server's /stats counters and peak gauge.
func (s *Server) foldTelemetry(tel *mstore.JoinTelemetry) {
	s.add("spill_restages_total", tel.Restages.Load())
	s.add("spill_restaged_refs_total", tel.RestagedRefs.Load())
	s.add("stream_probes_total", tel.StreamProbes.Load())
	s.add("grant_renegotiations_total", tel.Renegotiations.Load())
	s.add("grant_renegotiations_denied_total", tel.RenegotiationsDenied.Load())
	s.add("temp_relations_total", tel.TempFiles.Load())
	s.add("radix_passes_total", tel.RadixPasses.Load())
	for {
		peak := tel.PeakTableBytes.Load()
		cur := s.peakTableBytes.Load()
		if peak <= cur || s.peakTableBytes.CompareAndSwap(cur, peak) {
			return
		}
	}
}

// recordServiceTime folds one admitted join's grant-holding time into
// the EWMA behind the Retry-After hint (α = 1/8; first sample seeds it).
func (s *Server) recordServiceTime(d time.Duration) {
	ns := d.Nanoseconds()
	for {
		old := s.meanServiceNs.Load()
		next := ns
		if old > 0 {
			next = old + (ns-old)/8
			if next <= 0 {
				next = 1
			}
		}
		if s.meanServiceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterHintCap bounds the dynamic Retry-After hint: past 30s a
// client should treat the service as down, not politely spin.
const retryAfterHintCap = 30 * time.Second

// hintFor estimates how long a rejected client should back off given the
// current queue depth: roughly one mean admitted-service time per queued
// request ahead of it (the rate budget slots recycle at), clamped to
// [cfg.RetryAfter, 30s] — the configured value is the floor, not a
// constant.
func (s *Server) hintFor(queueDepth int) time.Duration {
	floor := s.cfg.RetryAfter
	if floor < time.Second {
		floor = time.Second
	}
	mean := time.Duration(s.meanServiceNs.Load())
	hint := time.Duration(queueDepth) * mean
	if hint < floor {
		hint = floor
	}
	if hint > retryAfterHintCap {
		hint = retryAfterHintCap
	}
	return hint
}

// retryAfterHint is hintFor at the live queue depth.
func (s *Server) retryAfterHint() time.Duration { return s.hintFor(s.adm.QueueDepth()) }

// rejectAdmission maps admission errors onto HTTP statuses: saturation
// and deadline expiry are retryable (429 with Retry-After), an
// over-budget grant is not (413).
func (s *Server) rejectAdmission(rw http.ResponseWriter, err error) {
	hint := s.retryAfterHint()
	switch {
	case errors.Is(err, ErrSaturated):
		s.inc("rejected_saturated")
		writeRetryError(rw, http.StatusTooManyRequests, "saturated", err.Error(), hint)
	case errors.Is(err, ErrGrantTooLarge):
		s.inc("rejected_too_large")
		writeError(rw, http.StatusRequestEntityTooLarge, "grant_too_large", err.Error())
	case errors.Is(err, ErrBadGrant):
		s.inc("bad_requests")
		writeError(rw, http.StatusBadRequest, "bad_request", err.Error())
	default:
		// Context cancellation or deadline while queued: the client may
		// retry once load subsides.
		s.inc("rejected_deadline")
		writeRetryError(rw, http.StatusTooManyRequests, "saturated",
			"admission wait aborted: "+err.Error(), hint)
	}
}

// LookupResponse is the wire form of one pointer dereference. Shard is
// the id of the shard that answered (sharded stores only) — (part,
// index) names an object on that shard, not a global coordinate.
type LookupResponse struct {
	RPart  int    `json:"rPart"`
	RIndex int    `json:"rIndex"`
	RID    uint64 `json:"rid"`
	SPart  uint32 `json:"sPart"`
	SIndex int    `json:"sIndex"`
	SWord  uint64 `json:"sWord"` // the S object's identity word
	Shard  string `json:"shard,omitempty"`
}

func (s *Server) handleLookup(rw http.ResponseWriter, r *http.Request) {
	s.inc("lookups_total")
	// Lookups dereference the mapping too, so they register with the
	// drain waiter for the same unmap-safety reason joins do. Their
	// drain rejections are counted apart from joins' so client-side
	// accounting can reconcile each endpoint exactly.
	if !s.beginRequest() {
		s.inc("lookups_rejected_draining")
		writeError(rw, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	defer s.inflight.Done()
	start := time.Now()
	part, err1 := strconv.Atoi(r.URL.Query().Get("part"))
	index, err2 := strconv.Atoi(r.URL.Query().Get("index"))
	if err1 != nil || err2 != nil {
		s.inc("lookups_bad_request")
		writeError(rw, http.StatusBadRequest, "bad_request", "need part=N and index=N")
		return
	}
	// Bounds are the store's to judge: a sharded store routes first and
	// validates (part, index) against the shard that owns the name, so a
	// part that is out of range globally is simply out of range on that
	// shard — the service no longer second-guesses with a global D.
	out, err := s.store.Lookup(part, index)
	switch {
	case errors.Is(err, mstore.ErrPartRange):
		s.inc("lookups_bad_request")
		writeError(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	case errors.Is(err, mstore.ErrIndexRange):
		s.inc("lookups_not_found")
		writeError(rw, http.StatusNotFound, "not_found", err.Error())
		return
	case err != nil:
		s.inc("lookups_failed")
		writeError(rw, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	s.inc("lookups_ok")
	s.observe("lookup_latency", time.Since(start))
	writeJSON(rw, http.StatusOK, LookupResponse{
		RPart: part, RIndex: index,
		RID: out.RID, SPart: out.SPart, SIndex: out.SIndex, SWord: out.SWord,
		Shard: out.Shard,
	})
}

// handleShardsList answers GET /v1/shards: the store's shard layout
// (empty for a single mapped database, whose kind says so).
func (s *Server) handleShardsList(rw http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	writeJSON(rw, http.StatusOK, map[string]any{
		"kind":   st.Kind,
		"shards": st.Shards,
	})
}

// ShardAddRequest is the wire form of POST /v1/shards.
type ShardAddRequest struct {
	ID  string `json:"id"`
	Dir string `json:"dir"`
	D   int    `json:"d"`
}

func (s *Server) handleShardsAdd(rw http.ResponseWriter, r *http.Request) {
	if s.shardMgr == nil {
		writeError(rw, http.StatusConflict, "not_sharded",
			"store is a single database; shard management needs -shard-map")
		return
	}
	if !s.beginRequest() {
		writeError(rw, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	defer s.inflight.Done()
	var req ShardAddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(rw, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	if req.ID == "" || req.Dir == "" || req.D < 1 {
		writeError(rw, http.StatusBadRequest, "bad_request", "need id, dir, and d >= 1")
		return
	}
	if err := s.shardMgr.AddShard(req.ID, req.Dir, req.D); err != nil {
		writeError(rw, http.StatusConflict, "conflict", err.Error())
		return
	}
	s.inc("shard_adds_total")
	writeJSON(rw, http.StatusOK, map[string]any{"added": req.ID})
}

// handleShardsRemove answers DELETE /v1/shards/{id}: the shard leaves
// the membership immediately and the call blocks on its drain — joins
// and lookups in flight against the shard finish before its mapping is
// released. The request context (plus the server's request timeout)
// bounds the wait; a timed-out drain answers 504 and the shard stays
// mapped until shutdown.
func (s *Server) handleShardsRemove(rw http.ResponseWriter, r *http.Request) {
	if s.shardMgr == nil {
		writeError(rw, http.StatusConflict, "not_sharded",
			"store is a single database; shard management needs -shard-map")
		return
	}
	if !s.beginRequest() {
		writeError(rw, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	defer s.inflight.Done()
	id := r.PathValue("id")
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.shardMgr.RemoveShard(ctx, id); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(rw, http.StatusGatewayTimeout, "drain_timeout", err.Error())
			return
		}
		writeError(rw, http.StatusNotFound, "not_found", err.Error())
		return
	}
	s.inc("shard_removes_total")
	writeJSON(rw, http.StatusOK, map[string]any{"removed": id})
}

// HistogramStats is the exported view of one latency histogram.
type HistogramStats struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"meanNs"`
	MinNs  int64 `json:"minNs"`
	MaxNs  int64 `json:"maxNs"`
	P50Ns  int64 `json:"p50Ns"`
	P90Ns  int64 `json:"p90Ns"`
	P99Ns  int64 `json:"p99Ns"`
}

// Stats is the /stats document.
type Stats struct {
	UptimeSec float64 `json:"uptimeSec"`
	Draining  bool    `json:"draining"`
	// DB describes the served store. Kind distinguishes a single mapped
	// database from a sharded router; the latter carries one entry per
	// live shard (its own counts, pool occupancy, and draining flag).
	DB        mstore.StoreStats `json:"db"`
	Admission AdmissionStats    `json:"admission"`
	// Pool is the shared morsel pool: occupancy (Busy/PeakBusy vs
	// Workers), morsel queue depth, and steal/executed counts.
	Pool exec.Stats `json:"pool"`
	// Gauges mirrors every gauge registered on the internal metrics
	// registry (the pool gauges today), read live at snapshot time.
	Gauges     map[string]float64        `json:"gauges"`
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// StatsSnapshot assembles the /stats document (exported for tests and
// embedding).
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		UptimeSec:  time.Since(s.start).Seconds(),
		Draining:   s.draining.Load(),
		DB:         s.store.Stats(),
		Admission:  s.adm.Stats(),
		Pool:       s.pool.Stats(),
		Gauges:     s.reg.GaugeValues(),
		Counters:   make(map[string]int64),
		Histograms: make(map[string]HistogramStats),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		st.Counters[name] = c.Value()
	}
	for name, h := range s.hists {
		st.Histograms[name] = HistogramStats{
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			MinNs:  int64(h.Min()),
			MaxNs:  int64(h.Max()),
			P50Ns:  int64(h.Quantile(0.5)),
			P90Ns:  int64(h.Quantile(0.9)),
			P99Ns:  int64(h.Quantile(0.99)),
		}
	}
	return st
}

func (s *Server) handleStats(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(rw, http.StatusServiceUnavailable,
			map[string]any{"status": "draining", "draining": true})
		return
	}
	writeJSON(rw, http.StatusOK, map[string]any{"status": "ok", "draining": false})
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
