//go:build !linux

package main

// measureCounters on non-Linux hosts: no hardware counters, just run fn.
func measureCounters(fn func()) perfCounts {
	fn()
	return perfCounts{Source: "unavailable"}
}
