package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the JSONL telemetry format; bump on breaking change.
const Schema = "mmjoin-metrics/1"

// jsonMeta is the first JSONL line, describing what follows.
type jsonMeta struct {
	Type     string `json:"type"` // "meta"
	Schema   string `json:"schema"`
	Samples  int    `json:"samples"`
	Events   int    `json:"events"`
	Counters int    `json:"counters"`
	Hists    int    `json:"hists"`
}

// jsonSample is one sampler tick. Gauges marshal with sorted keys
// (encoding/json orders map keys), so the output is deterministic.
type jsonSample struct {
	Type   string             `json:"type"` // "sample"
	TMs    float64            `json:"t_ms"`
	Gauges map[string]float64 `json:"gauges"`
}

// jsonEvent is one phase mark.
type jsonEvent struct {
	Type  string  `json:"type"` // "event"
	TMs   float64 `json:"t_ms"`
	Proc  string  `json:"proc"`
	Label string  `json:"label"`
}

// jsonCounter is one counter's final value.
type jsonCounter struct {
	Type  string `json:"type"` // "counter"
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// jsonHist is one histogram's summary.
type jsonHist struct {
	Type   string  `json:"type"` // "hist"
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	MinMs  float64 `json:"min_ms"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// WriteJSONL writes the full telemetry — meta line, gauge time series,
// phase events, final counters, histogram summaries — one JSON object
// per line. Output is deterministic for a deterministic run.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonMeta{
		Type: "meta", Schema: Schema,
		Samples: len(r.samples), Events: len(r.events),
		Counters: len(r.counters), Hists: len(r.hists),
	}); err != nil {
		return err
	}
	for _, s := range r.samples {
		if err := enc.Encode(jsonSample{Type: "sample", TMs: s.At.Milliseconds(), Gauges: s.Values}); err != nil {
			return err
		}
	}
	for _, e := range r.events {
		if err := enc.Encode(jsonEvent{Type: "event", TMs: e.At.Milliseconds(), Proc: e.Proc, Label: e.Label}); err != nil {
			return err
		}
	}
	for _, c := range r.counters {
		if err := enc.Encode(jsonCounter{Type: "counter", Name: c.name, Value: c.n}); err != nil {
			return err
		}
	}
	for _, h := range r.hists {
		if err := enc.Encode(jsonHist{
			Type: "hist", Name: h.name, Count: h.count,
			MinMs:  h.Min().Milliseconds(),
			MeanMs: h.Mean().Milliseconds(),
			P50Ms:  h.Quantile(0.50).Milliseconds(),
			P90Ms:  h.Quantile(0.90).Milliseconds(),
			P99Ms:  h.Quantile(0.99).Milliseconds(),
			MaxMs:  h.Max().Milliseconds(),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the gauge time series as a wide table: a t_ms column
// followed by every gauge name ever sampled, sorted; ticks missing a
// gauge (registered later in the run) leave the cell empty. Events,
// counters, and histograms are JSONL-only.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	nameSet := map[string]struct{}{}
	for _, s := range r.samples {
		for name := range s.Values {
			nameSet[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	sb.WriteString("t_ms")
	for _, name := range names {
		sb.WriteByte(',')
		sb.WriteString(csvQuote(name))
	}
	sb.WriteByte('\n')
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for _, s := range r.samples {
		sb.Reset()
		sb.WriteString(strconv.FormatFloat(s.At.Milliseconds(), 'g', -1, 64))
		for _, name := range names {
			sb.WriteByte(',')
			if v, ok := s.Values[name]; ok {
				sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// csvQuote quotes a field if it contains a comma or quote.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return fmt.Sprintf("%q", s)
}
