package model

import (
	"math"

	"mmjoin/internal/sim"
)

// hybridPlan mirrors the executable hybrid-hash parameter rules: the
// resident fraction f0 of each S partition (sized to the Sproc buffer)
// and the overflow bucket count K.
func hybridPlan(c Calibration, in Inputs, rsi, sj float64) (f0 float64, k, tsize int) {
	f0 = 0.8 * float64(in.MSproc) / (sj * float64(in.S))
	if f0 > 1 {
		f0 = 1
	}
	if f0 < 0 {
		f0 = 0
	}
	k = in.K
	if k <= 0 {
		need := in.Fuzz * (1 - f0) * rsi * float64(in.R) / float64(in.MRproc)
		k = int(math.Ceil(need))
	}
	if f0 >= 1 {
		k = 0
	} else if k < 1 {
		k = 1
	}
	tsize = in.TSize
	if tsize <= 0 {
		tsize = 16
		if k > 0 {
			avgBucket := int((1 - f0) * rsi / float64(k))
			for tsize < avgBucket/4 {
				tsize *= 2
			}
		}
	}
	return f0, k, tsize
}

// PredictHybridHash evaluates the analytical model for the parallel
// pointer-based hybrid-hash join (the repository's future-work
// extension): the Grace analysis applied to the (1−f0) overflow portion,
// plus immediate-join costs for the resident portion, whose S pages fault
// once and then stay cached in the Sproc buffer.
func PredictHybridHash(c Calibration, in Inputs) (*Prediction, error) {
	if err := in.withDefaults(c); err != nil {
		return nil, err
	}
	q := derive(c, in)
	d := float64(in.D)
	rii := q.ri / d * in.Skew
	rpi := q.ri*in.Skew - rii
	rsi := q.ri * in.Skew

	f0, k, tsize := hybridPlan(c, in, rsi, q.sj)
	passes := radixPasses(k, in.RadixBits)
	kEff := min(k, 1<<in.RadixBits) // per-pass fan-out (see PredictGrace)
	over := 1 - f0                  // overflow fraction
	prpi := pages(rpi*float64(in.R), c.B)
	prsi := pages(over*rsi*float64(in.R), c.B)
	priiOver := pages(over*rii*float64(in.R), c.B)

	p := &Prediction{K: k, TSize: tsize}

	// Setup matches Grace (the RS mapping is just smaller).
	p.add("setup", sim.Time(d*(c.OpenMap.Eval(q.pri)+c.OpenMap.Eval(q.psi)+
		c.NewMap.Eval(math.Max(1, prsi)+prpi)+c.OpenMap.Eval(math.Max(1, prsi)))))

	// Pass 0: Ri read; RPi written; only the overflow portion of Ri,i
	// is written to RSi. Resident-range joins read the f0·PSi prefix of
	// Si once (it then stays cached in the Sproc's buffer).
	band0 := q.pri + q.psi + prsi + prpi
	p.add("pass0 read Ri", sim.Time(q.pri*c.DTTR.Eval(band0)))
	p.add("pass0 write RPi", sim.Time(prpi*c.DTTW.Eval(band0)))
	if k > 0 {
		p.add("pass0 write RSi", sim.Time((priiOver+float64(k))*c.DTTW.Eval(band0)))
		fill0 := (d - 1) / (float64(c.B) / float64(in.R))
		thrash0 := GraceThrash(int(over*rii), kEff, int(q.frames), in.D, fill0)
		p.add("pass0 thrash", sim.Time(thrash0*(c.DTTR.Eval(band0)+c.DTTW.Eval(band0))))
	}
	p.add("resident Si faults", sim.Time(f0*q.psi*c.DTTR.Eval(band0)))

	// Pass 1: RPi read; overflow portion hashed into RSj.
	band1 := prsi + prpi
	p.add("pass1 read RPi", sim.Time(prpi*c.DTTR.Eval(band1)))
	if k > 0 {
		p.add("pass1 write RSi", sim.Time((over*prpi+float64(k))*c.DTTW.Eval(band1)))
		fill1 := 1 / (float64(c.B) / float64(in.R))
		thrash1 := GraceThrash(int(over*rpi), kEff, int(q.frames), 1, fill1)
		p.add("pass1 thrash", sim.Time(thrash1*(c.DTTR.Eval(band1)+c.DTTW.Eval(band1))))
		// Extra radix passes on the overflow portion (see PredictGrace);
		// zero when the overflow bucket count fits one pass's fan-out.
		if passes > 1 {
			extra := float64(passes - 1)
			p.add("radix pass io", sim.Time(extra*(prsi*c.DTTR.Eval(band1)+
				(prsi+float64(kEff))*c.DTTW.Eval(band1))))
			p.add("radix pass cpu", sim.Time(extra*over*rsi)*c.Hash+
				sim.Time(extra*over*rsi*float64(in.R)*c.MTpp))
		}
	}

	// Probe: overflow buckets and the corresponding (1−f0)·PSi suffix.
	if k > 0 {
		bandProbe := math.Max(1, prsi/float64(k)/2)
		p.add("probe io", sim.Time((prsi+over*q.psi)*c.DTTR.Eval(bandProbe)))
		if t := restageIO(c, in, over*rsi, k, bandProbe); t > 0 {
			p.add("restage io", t)
		}
	}

	// CPU: every reference is mapped and hashed once; overflow objects
	// move to RSi and are hashed again at probe; all objects transfer
	// through the shared buffer exactly once.
	p.add("map", sim.Time(q.ri)*c.Map)
	p.add("hash pass0", sim.Time(rii)*c.Hash)
	p.add("hash pass1", sim.Time(rpi)*c.Hash)
	p.add("hash probe", sim.Time(over*rsi)*c.Hash)
	p.add("move pass0", sim.Time(q.ri*float64(in.R)*c.MTpp))
	p.add("move pass1", sim.Time(rpi*float64(in.R)*c.MTpp))
	p.add("transfer", sim.Time(rsi*float64(in.R+in.Ptr+in.S)*c.MTps))
	p.add("context switches", gSwitch(c, q, rsi))
	return p, nil
}
