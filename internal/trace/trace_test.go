package trace

import (
	"strings"
	"testing"

	"mmjoin/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, "p", "x") // must not panic
	if l.Len() != 0 || l.Events() != nil {
		t.Error("nil log should be empty")
	}
}

func TestEventsSortedByTime(t *testing.T) {
	l := New()
	l.Add(3*sim.Second, "b", "late")
	l.Add(1*sim.Second, "a", "early")
	l.Add(2*sim.Second, "a", "middle")
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Label != "early" || evs[1].Label != "middle" || evs[2].Label != "late" {
		t.Errorf("order: %v", evs)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := New().Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Errorf("output: %q", sb.String())
	}
}

func TestRenderRowsAndLegend(t *testing.T) {
	l := New()
	l.Add(1*sim.Second, "Rproc0", "setup")
	l.Add(4*sim.Second, "Rproc0", "pass0")
	l.Add(2*sim.Second, "Rproc1", "setup")
	l.Add(4*sim.Second, "Rproc1", "pass0")
	var sb strings.Builder
	if err := l.Render(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Rproc0 |", "Rproc1 |", "a: setup", "b: pass0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Segment 'a' of Rproc0 (ends at 1s of 4s) must be about a quarter
	// of the row; count its marks.
	line := strings.SplitN(out, "\n", 2)[0]
	aCount := strings.Count(line, "a")
	if aCount < 5 || aCount > 15 {
		t.Errorf("segment a covers %d of 40 columns: %q", aCount, line)
	}
}

func TestRenderClampssWidth(t *testing.T) {
	l := New()
	l.Add(sim.Second, "p", "x")
	var sb strings.Builder
	if err := l.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("no output")
	}
}
