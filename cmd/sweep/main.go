// Command sweep regenerates the paper's evaluation experiments on the
// simulated machine:
//
//	sweep -fig 5a          nested loops, model vs experiment (Fig. 5a)
//	sweep -fig 5b          sort-merge, model vs experiment (Fig. 5b)
//	sweep -fig 5c          Grace, model vs experiment (Fig. 5c)
//	sweep -fig all         all three panels
//	sweep -fig contention  §5.1 staggering/synchronization ablation
//	sweep -fig speedup     elapsed time vs D, fixed problem size (§9)
//	sweep -fig scaleup     elapsed time vs D, problem grows with D (§9)
//
// Scale can be reduced for quick runs with -objects. The sweep
// procedures themselves live in internal/sweep; this command only
// parses flags and prints tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mmjoin/internal/core"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/relation"
	"mmjoin/internal/sweep"
)

// metricsBase, when set, makes the Fig. 5 sweeps export one JSONL
// telemetry file per data point: <base>.<alg>.<frac>.jsonl.
var metricsBase string

// parallelism is the -parallel flag: host workers per sweep. Results are
// identical at any setting; only wall-clock changes.
var parallelism int

func main() {
	fig := flag.String("fig", "all", "experiment: 5a, 5b, 5c, all, contention, speedup, scaleup, hybrid, dist")
	objects := flag.Int("objects", 102400, "objects per relation (paper: 102400)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.IntVar(&parallelism, "parallel", runtime.GOMAXPROCS(0),
		"host worker goroutines running sweep points (>= 1; results are identical at any setting)")
	flag.StringVar(&metricsBase, "metrics", "",
		"telemetry base path for the Fig 5 sweeps (writes BASE.<alg>.<frac>.jsonl per point)")
	flag.Parse()

	if parallelism < 1 {
		fmt.Fprintf(os.Stderr, "sweep: -parallel must be >= 1, got %d\n", parallelism)
		os.Exit(2)
	}

	cfg := machine.DefaultConfig()
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = *objects, *objects
	spec.Seed = *seed

	switch *fig {
	case "5a":
		fig5(cfg, spec, join.NestedLoops)
	case "5b":
		fig5(cfg, spec, join.SortMerge)
	case "5c":
		fig5(cfg, spec, join.Grace)
	case "all":
		fig5(cfg, spec, join.NestedLoops)
		fmt.Println()
		fig5(cfg, spec, join.SortMerge)
		fmt.Println()
		fig5(cfg, spec, join.Grace)
	case "contention":
		contention(cfg, spec)
	case "speedup":
		speedup(cfg, spec)
	case "scaleup":
		scaleup(cfg, spec)
	case "hybrid":
		fig5(cfg, spec, join.HybridHash)
	case "dist":
		dist(cfg, spec)
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func panel(alg join.Algorithm) string {
	switch alg {
	case join.NestedLoops:
		return "5(a)"
	case join.SortMerge:
		return "5(b)"
	case join.Grace:
		return "5(c)"
	case join.HybridHash:
		return "ext(hybrid)"
	}
	return "?"
}

func fig5(cfg machine.Config, spec relation.Spec, alg join.Algorithm) {
	fmt.Printf("Fig %s: %s — time per Rproc vs MRproc/|R| (model vs experiment)\n", panel(alg), alg)
	e, err := core.NewExperiment(cfg, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println("MRproc/|R|   experiment(s)    model(s)   error    detail")
	opts := sweep.Fig5Options{Parallelism: parallelism}
	if metricsBase != "" {
		opts.Instrument = func(float64) *metrics.Registry { return metrics.New() }
		opts.OnPoint = func(c core.Comparison, reg *metrics.Registry) error {
			path := fmt.Sprintf("%s.%s.%.3f.jsonl", metricsBase, alg, c.MemFrac)
			return exportJSONL(reg, path)
		}
	}
	pts, err := sweep.Fig5(e, alg, opts)
	if err != nil {
		fatal(err)
	}
	for _, c := range pts {
		detail := ""
		switch alg {
		case join.SortMerge:
			detail = fmt.Sprintf("NPASS=%d LRUN=%d IRUN=%d", c.Result.NPass, c.Result.LRun, c.Result.IRun)
		case join.Grace:
			detail = fmt.Sprintf("K=%d TSIZE=%d", c.Result.K, c.Result.TSize)
		}
		fmt.Printf("%10.3f   %12.1f  %10.1f  %+5.1f%%   %s\n",
			c.MemFrac, c.Measured.Seconds(), c.Predicted.Seconds(), 100*c.RelError(), detail)
	}
}

func contention(cfg machine.Config, spec relation.Spec) {
	fmt.Println("§5.1 ablation: pass-1 phase staggering and synchronization (nested loops)")
	e, err := core.NewExperiment(cfg, spec)
	if err != nil {
		fatal(err)
	}
	pts, err := sweep.Contention(e, 0.10, sweep.Options{Parallelism: parallelism})
	if err != nil {
		fatal(err)
	}
	ref := pts[0].Elapsed
	for _, pt := range pts {
		t := pt.Elapsed.Seconds()
		fmt.Printf("%-36s %10.1fs  (%+.2f%% vs paper variant)\n",
			pt.Name, t, 100*(t-ref.Seconds())/ref.Seconds())
	}
}

func speedup(cfg machine.Config, spec relation.Spec) {
	fmt.Println("§9 extension: speedup — fixed problem, growing D (memory fraction 0.05)")
	ds := []int{1, 2, 4, 8}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		times, err := sweep.Speedup(cfg, spec, alg, ds, 0.05, sweep.Options{Parallelism: parallelism})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s", alg)
		for _, d := range ds {
			fmt.Printf("  D=%d: %8.1fs (%.2fx)", d, times[d].Seconds(),
				float64(times[1])/float64(times[d]))
		}
		fmt.Println()
	}
}

func scaleup(cfg machine.Config, spec relation.Spec) {
	per := spec.NR / 4
	fmt.Printf("§9 extension: scaleup — %d objects per partition, growing D\n", per)
	ds := []int{1, 2, 4, 8}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		times, err := sweep.Scaleup(cfg, spec, alg, ds, per, 0.1, sweep.Options{Parallelism: parallelism})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s", alg)
		for _, d := range ds {
			fmt.Printf("  D=%d: %8.1fs (%.2f)", d, times[d].Seconds(),
				float64(times[d])/float64(times[1]))
		}
		fmt.Println()
	}
}

func exportJSONL(reg *metrics.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WriteJSONL(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func dist(cfg machine.Config, spec relation.Spec) {
	fmt.Println("§9 extension: reference-distribution study (memory fraction 0.05)")
	algs := []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace, join.HybridHash}
	pts, err := sweep.Dist(cfg, spec, algs, 0.05, sweep.Options{Parallelism: parallelism})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %6s", "distribution", "skew")
	for _, alg := range algs {
		fmt.Printf(" %14s", alg)
	}
	fmt.Println()
	for _, pt := range pts {
		fmt.Printf("%-14s %6.2f", pt.Dist, pt.Skew)
		for _, alg := range algs {
			fmt.Printf(" %13.1fs", pt.Measured[alg].Seconds())
		}
		fmt.Println()
	}
}
