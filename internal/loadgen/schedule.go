package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind distinguishes the two request endpoints.
type Kind uint8

const (
	KindLookup Kind = iota
	KindJoin
)

func (k Kind) String() string {
	if k == KindLookup {
		return "lookup"
	}
	return "join"
}

// Op is one scheduled request: what to send and — in open-loop mode —
// when it is intended to leave. Latency is always measured from the
// intended time, so a generator that falls behind (or a server that
// stalls the dispatcher) shows up as latency instead of being silently
// dropped from the distribution (coordinated omission).
type Op struct {
	At   time.Duration // intended send offset from the run start
	Kind Kind
	Key  int    // lookup: Zipf-ranked global R index in [0, NR)
	Alg  string // join: wire algorithm name, "auto" included
}

// drawOp picks one request from the mix. The rng drives every choice, so
// the sequence of ops is a pure function of the seed.
func drawOp(rng *rand.Rand, zipf *rand.Zipf, mix Mix, at time.Duration) Op {
	if rng.Float64() < mix.LookupFraction {
		return Op{At: at, Kind: KindLookup, Key: int(zipf.Uint64())}
	}
	return Op{At: at, Kind: KindJoin, Alg: mix.JoinAlgs[rng.Intn(len(mix.JoinAlgs))]}
}

// BuildSchedule materializes the full open-loop request schedule for a
// database of nr R objects: Poisson arrivals draw exponential
// inter-arrival gaps at the offered rate; burst arrivals emit
// BurstSize back-to-back requests (identical intended time) every
// BurstSize/Rate seconds, the same offered rate delivered in spikes.
// The schedule is deterministic: the same (Config, nr) yields the same
// ops in the same order.
func BuildSchedule(cfg Config, nr int) ([]Op, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if cfg.Mode == Closed {
		return nil, fmt.Errorf("loadgen: closed-loop mode has no precomputed schedule")
	}
	if nr < 1 {
		return nil, fmt.Errorf("loadgen: need nr >= 1, got %d", nr)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := newZipf(rng, cfg.Mix.ZipfS, nr)
	var ops []Op
	switch cfg.Mode {
	case OpenPoisson:
		var t time.Duration
		for {
			t += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
			if t >= cfg.Duration {
				break
			}
			ops = append(ops, drawOp(rng, zipf, cfg.Mix, t))
		}
	case OpenBurst:
		every := time.Duration(float64(cfg.BurstSize) / cfg.Rate * float64(time.Second))
		if every <= 0 {
			every = time.Millisecond
		}
		for t := time.Duration(0); t < cfg.Duration; t += every {
			for i := 0; i < cfg.BurstSize; i++ {
				ops = append(ops, drawOp(rng, zipf, cfg.Mix, t))
			}
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %d", cfg.Mode)
	}
	return ops, nil
}

// clientStream returns the deterministic op/think source for one
// closed-loop client. Clients are seeded independently of each other so
// the per-client request and key sequences do not change when the client
// count does.
func clientStream(cfg Config, nr, client int) func() (Op, time.Duration) {
	rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(client)*7919))
	zipf := newZipf(rng, cfg.Mix.ZipfS, nr)
	return func() (Op, time.Duration) {
		op := drawOp(rng, zipf, cfg.Mix, 0)
		think := time.Duration(rng.ExpFloat64() * float64(cfg.ThinkMean))
		return op, think
	}
}

// newZipf builds the lookup key sampler: rank 0 is the hottest key.
// rand.Zipf needs s > 1 and imax >= 1; nr == 1 degenerates to key 0.
func newZipf(rng *rand.Rand, s float64, nr int) *rand.Zipf {
	imax := uint64(nr - 1)
	if imax < 1 {
		imax = 1
	}
	return rand.NewZipf(rng, s, 1, imax)
}
