// Package relation defines the joined relations and their workload
// generator.
//
// Following the paper, the join attribute of every R object is a virtual
// pointer to an object of S (an offset-style pointer into S's segment),
// which provides an implicit ordering of S and lets the algorithms skip
// sorting or hashing S entirely. R and S are partitioned into D
// equal-sized partitions, one per disk; the partition holding an S object
// is computable from the pointer in constant time (the paper's `map`
// operation).
package relation

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// SPtr is a virtual pointer to an object of S: the partition (disk) it
// lives on and its index within that partition. Index order equals
// address order within the partition's segment.
type SPtr struct {
	Part  int32
	Index int32
}

// Less orders pointers by partition then address — the implicit ordering
// of S the algorithms exploit.
func (a SPtr) Less(b SPtr) bool {
	if a.Part != b.Part {
		return a.Part < b.Part
	}
	return a.Index < b.Index
}

// Distribution selects how R's join attributes reference S.
type Distribution int

const (
	// Uniform references S objects uniformly at random — the paper's
	// experimental assumption ("join attributes are randomly distributed
	// in R"), giving skew very close to 1.
	Uniform Distribution = iota
	// Zipf references S objects with a Zipfian popularity (many R objects
	// share a few hot S objects) while keeping partitions balanced in
	// expectation.
	Zipf
	// Local makes a configurable fraction of each Ri's references point
	// into Si (self-partition locality).
	Local
	// HotPartition directs a configurable extra fraction of all
	// references to partition 0, creating partition skew > 1.
	HotPartition
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Local:
		return "local"
	case HotPartition:
		return "hot-partition"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Spec describes a workload. The zero value is not valid; see
// DefaultSpec for the paper's experimental configuration.
type Spec struct {
	NR, NS       int // total objects in R and S
	RSize, SSize int // object sizes r and s, bytes
	PtrSize      int // size of an S-pointer within an R object, bytes
	D            int // partitions/disks
	Dist         Distribution
	Seed         int64
	ZipfTheta    float64 // Zipf skew parameter (>1 required by rand.Zipf: s)
	LocalFrac    float64 // Local: fraction of refs into own partition
	HotFrac      float64 // HotPartition: extra fraction aimed at partition 0
}

// DefaultSpec returns the paper's §8 configuration: |R| = |S| = 102,400
// objects of 128 bytes over 4 disks, uniformly random references.
func DefaultSpec() Spec {
	return Spec{
		NR:    102400,
		NS:    102400,
		RSize: 128, SSize: 128, PtrSize: 8,
		D:    4,
		Dist: Uniform,
		Seed: 1,
	}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.NR <= 0 || s.NS <= 0:
		return fmt.Errorf("relation: NR=%d NS=%d must be positive", s.NR, s.NS)
	case s.D <= 0:
		return fmt.Errorf("relation: D=%d must be positive", s.D)
	case s.RSize < s.PtrSize || s.PtrSize <= 0:
		return fmt.Errorf("relation: RSize=%d must hold PtrSize=%d", s.RSize, s.PtrSize)
	case s.SSize <= 0:
		return fmt.Errorf("relation: SSize=%d must be positive", s.SSize)
	case s.NS < s.D || s.NR < s.D:
		return fmt.Errorf("relation: relations smaller than D=%d", s.D)
	case s.Dist < Uniform || s.Dist > HotPartition:
		return fmt.Errorf("relation: unknown distribution %v", s.Dist)
	case s.Dist == Zipf && s.ZipfTheta <= 1:
		return fmt.Errorf("relation: Zipf needs ZipfTheta > 1, got %g", s.ZipfTheta)
	case s.Dist == Local && (s.LocalFrac < 0 || s.LocalFrac > 1):
		return fmt.Errorf("relation: LocalFrac %g out of [0,1]", s.LocalFrac)
	case s.Dist == HotPartition && (s.HotFrac < 0 || s.HotFrac > 1):
		return fmt.Errorf("relation: HotFrac %g out of [0,1]", s.HotFrac)
	}
	return nil
}

// Workload is a generated pair of relations. Only the join attributes are
// materialized (the rest of each 128-byte object is payload whose content
// never matters); storage layout and I/O are the simulator's concern.
type Workload struct {
	Spec Spec
	// Refs[i][x] is the join attribute (S-pointer) of object x of Ri.
	Refs [][]SPtr
}

// Generate builds a workload from the spec deterministically.
func Generate(spec Spec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	w := &Workload{Spec: spec, Refs: make([][]SPtr, spec.D)}

	var zipf *rand.Zipf
	if spec.Dist == Zipf {
		zipf = rand.NewZipf(rng, spec.ZipfTheta, 1, uint64(spec.NS-1))
	}
	for i := 0; i < spec.D; i++ {
		n := w.SizeR(i)
		refs := make([]SPtr, n)
		for x := 0; x < n; x++ {
			var global int
			switch spec.Dist {
			case Uniform:
				global = rng.Intn(spec.NS)
			case Zipf:
				global = int(zipf.Uint64())
			case Local:
				if rng.Float64() < spec.LocalFrac {
					refs[x] = SPtr{Part: int32(i), Index: int32(rng.Intn(w.SizeS(i)))}
					continue
				}
				global = rng.Intn(spec.NS)
			case HotPartition:
				if rng.Float64() < spec.HotFrac {
					refs[x] = SPtr{Part: 0, Index: int32(rng.Intn(w.SizeS(0)))}
					continue
				}
				global = rng.Intn(spec.NS)
			default:
				return nil, fmt.Errorf("relation: unknown distribution %v", spec.Dist)
			}
			refs[x] = w.globalToPtr(global)
		}
		w.Refs[i] = refs
	}
	return w, nil
}

// MustGenerate is Generate, panicking on error.
func MustGenerate(spec Spec) *Workload {
	w, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return w
}

// globalToPtr maps a global S object number to a partitioned pointer
// (objects are dealt to partitions in contiguous ranges).
func (w *Workload) globalToPtr(g int) SPtr {
	for j := 0; j < w.Spec.D; j++ {
		n := w.SizeS(j)
		if g < n {
			return SPtr{Part: int32(j), Index: int32(g)}
		}
		g -= n
	}
	panic("relation: global S index out of range")
}

// SizeR returns |Ri| (partitions differ by at most one object).
func (w *Workload) SizeR(i int) int { return partSize(w.Spec.NR, w.Spec.D, i) }

// SizeS returns |Sj|.
func (w *Workload) SizeS(j int) int { return partSize(w.Spec.NS, w.Spec.D, j) }

func partSize(n, d, i int) int {
	base := n / d
	if i < n%d {
		base++
	}
	return base
}

// SubCounts returns counts[i][j] = |Ri,j|, the number of Ri objects whose
// join attribute points into Sj.
func (w *Workload) SubCounts() [][]int {
	c := make([][]int, w.Spec.D)
	for i := range c {
		c[i] = make([]int, w.Spec.D)
		for _, ptr := range w.Refs[i] {
			c[i][ptr.Part]++
		}
	}
	return c
}

// Skew returns the paper's skew metric: max over i,j of
// |Ri,j| / (|Ri|/D). A perfectly even workload has skew 1.
func (w *Workload) Skew() float64 {
	counts := w.SubCounts()
	skew := 0.0
	for i := range counts {
		expect := float64(w.SizeR(i)) / float64(w.Spec.D)
		for _, c := range counts[i] {
			if v := float64(c) / expect; v > skew {
				skew = v
			}
		}
	}
	return skew
}

// RSCounts returns counts[j] = |RSj| = Σi |Ri,j|, the number of R objects
// referencing partition Sj.
func (w *Workload) RSCounts() []int {
	sub := w.SubCounts()
	out := make([]int, w.Spec.D)
	for i := range sub {
		for j, c := range sub[i] {
			out[j] += c
		}
	}
	return out
}

// PairHash is the canonical hash of one joined pair: Ri object x joined
// with the S object its attribute points to. Summing PairHash over all
// pairs gives an order-independent signature of the full join result,
// used to check that every algorithm computes the same join.
func PairHash(rPart int32, rIndex int32, ptr SPtr) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	put32 := func(off int, v int32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put32(0, rPart)
	put32(4, rIndex)
	put32(8, ptr.Part)
	put32(12, ptr.Index)
	h.Write(buf[:])
	return h.Sum64()
}

// JoinSignature returns the canonical signature (sum of pair hashes) and
// pair count of the workload's full join.
func (w *Workload) JoinSignature() (sum uint64, pairs int64) {
	for i, refs := range w.Refs {
		for x, ptr := range refs {
			sum += PairHash(int32(i), int32(x), ptr)
			pairs++
		}
	}
	return sum, pairs
}

// BytesR returns |Ri| · r for partition i.
func (w *Workload) BytesR(i int) int64 { return int64(w.SizeR(i)) * int64(w.Spec.RSize) }

// BytesS returns |Sj| · s for partition j.
func (w *Workload) BytesS(j int) int64 { return int64(w.SizeS(j)) * int64(w.Spec.SSize) }

// Keys gives the workload a traditional (non-pointer) reading: every S
// object carries a unique join-key value, assigned by a seeded random
// permutation so that S is NOT clustered on the key — the setting
// conventional join algorithms face. An R object's key reference is the
// key of the S object its pointer names, so the traditional and
// pointer-based algorithms compute the identical join.
type Keys struct {
	w      *Workload
	perm   []uint64 // perm[globalIndex] = key
	starts []int    // global index base per partition
}

// Keys builds (once per call) the key assignment for the workload.
func (w *Workload) Keys() *Keys {
	k := &Keys{w: w, starts: make([]int, w.Spec.D+1)}
	for j := 0; j < w.Spec.D; j++ {
		k.starts[j+1] = k.starts[j] + w.SizeS(j)
	}
	rng := rand.New(rand.NewSource(w.Spec.Seed ^ 0x5EEDCAFE))
	k.perm = make([]uint64, w.Spec.NS)
	for i := range k.perm {
		k.perm[i] = uint64(i)
	}
	rng.Shuffle(len(k.perm), func(a, b int) { k.perm[a], k.perm[b] = k.perm[b], k.perm[a] })
	return k
}

// KeyOf returns the join-key value of the S object at ptr.
func (k *Keys) KeyOf(ptr SPtr) uint64 {
	return k.perm[k.starts[ptr.Part]+int(ptr.Index)]
}

// NodeOf returns the partition a key hash-partitions to (the node that
// processes it in a traditional parallel hash join).
func (k *Keys) NodeOf(key uint64) int {
	return int(key * uint64(k.w.Spec.D) / uint64(k.w.Spec.NS))
}

// DistinctRefCounts returns, per S partition j, the number of distinct S
// objects referenced by any R object — the i parameter of the
// Mackert–Lohman approximation. Under uniform references it approaches
// |RSj|·(1−1/e); under Zipf it collapses to the hot set.
func (w *Workload) DistinctRefCounts() []int {
	out := make([]int, w.Spec.D)
	for j := 0; j < w.Spec.D; j++ {
		seen := make(map[int32]struct{})
		for i := 0; i < w.Spec.D; i++ {
			for _, ptr := range w.Refs[i] {
				if int(ptr.Part) == j {
					seen[ptr.Index] = struct{}{}
				}
			}
		}
		out[j] = len(seen)
	}
	return out
}
