// Package disk models a 1996-era disk drive under a simple Unix I/O path.
//
// The model reproduces the mechanisms behind the paper's measured
// machine-dependent function dtt(B, band): block-addressed geometry with a
// square-root seek curve, rotational latency, per-block transfer, a
// per-fault kernel overhead, and — crucially — deferred write-back through
// a pageout daemon that drains dirty blocks in shortest-seek-first batches.
// Deferred, reordered writes are why the paper's measured dttw lies below
// dttr; here the same gap emerges from the flusher rather than being
// asserted.
package disk

import (
	"fmt"
	"math"
	"sort"

	"mmjoin/internal/metrics"
	"mmjoin/internal/sim"
)

// Config describes the drive and the simulated kernel's I/O path.
type Config struct {
	BlockBytes        int      // virtual-memory page / transfer unit (paper: 4K)
	Blocks            int      // total blocks on the drive
	BlocksPerCylinder int      // blocks sharing a head position
	SeekMin           sim.Time // single-cylinder seek
	SeekMax           sim.Time // full-stroke seek
	Rotation          sim.Time // full platter rotation
	Transfer          sim.Time // one-block media transfer
	FaultOverhead     sim.Time // kernel page-fault + buffer handling per read
	WriteOverhead     sim.Time // pageout daemon handling per written block
	WriteRotFactor    float64  // fraction of avg rotational latency paid by reordered writes
	WriteQueue        int      // dirty blocks queued before writers stall
	WriteBatch        int      // dirty blocks drained per SSTF batch
}

// DefaultConfig returns parameters tuned so that the calibration harness
// produces dttr/dttw curves resembling the paper's Fig. 1(a): roughly
// 6 ms/block sequential for both, rising to ~22 ms (reads) and ~14 ms
// (writes) for random access in 12800-block bands.
func DefaultConfig() Config {
	return Config{
		BlockBytes:        4096,
		Blocks:            160000, // ~655 MB drive
		BlocksPerCylinder: 64,
		SeekMin:           4 * sim.Millisecond,
		SeekMax:           30 * sim.Millisecond,
		Rotation:          sim.Time(16667 * int64(sim.Microsecond)), // 3600 rpm
		Transfer:          sim.Time(1700 * int64(sim.Microsecond)),
		FaultOverhead:     4 * sim.Millisecond,
		WriteOverhead:     4 * sim.Millisecond,
		WriteRotFactor:    0.35,
		WriteQueue:        256,
		WriteBatch:        32,
	}
}

func (c Config) validate() error {
	switch {
	case c.BlockBytes <= 0:
		return fmt.Errorf("disk: BlockBytes %d", c.BlockBytes)
	case c.Blocks <= 0:
		return fmt.Errorf("disk: Blocks %d", c.Blocks)
	case c.BlocksPerCylinder <= 0:
		return fmt.Errorf("disk: BlocksPerCylinder %d", c.BlocksPerCylinder)
	case c.WriteQueue <= 0 || c.WriteBatch <= 0:
		return fmt.Errorf("disk: write queue %d / batch %d", c.WriteQueue, c.WriteBatch)
	}
	return nil
}

// Stats aggregates the drive's activity. The four time components are
// tracked separately so the seek/rotation split is usable for model
// calibration; they always sum to ServiceSum.
type Stats struct {
	Reads        int64
	Writes       int64
	SeekTime     sim.Time // arm movement only
	RotationTime sim.Time // rotational latency
	TransferTime sim.Time // media transfer
	OverheadTime sim.Time // kernel fault / pageout-daemon handling
	ServiceSum   sim.Time // total arm-busy service time (sum of the four)
	Stalls       int64    // writer stalls on a full dirty queue
}

// CheckConservation verifies the drive-accounting conservation law the
// calibration and the analytical model both rely on: the four service
// components sum exactly to ServiceSum, and no counter is negative. It
// returns an error naming the first violation.
func (s Stats) CheckConservation() error {
	if s.Reads < 0 || s.Writes < 0 || s.Stalls < 0 {
		return fmt.Errorf("disk: negative counters (reads %d, writes %d, stalls %d)",
			s.Reads, s.Writes, s.Stalls)
	}
	for _, c := range []struct {
		name string
		t    sim.Time
	}{
		{"seek", s.SeekTime}, {"rotation", s.RotationTime},
		{"transfer", s.TransferTime}, {"overhead", s.OverheadTime},
	} {
		if c.t < 0 {
			return fmt.Errorf("disk: negative %s time %v", c.name, c.t)
		}
	}
	if sum := s.SeekTime + s.RotationTime + s.TransferTime + s.OverheadTime; sum != s.ServiceSum {
		return fmt.Errorf("disk: seek+rotation+transfer+overhead = %v but ServiceSum = %v (off by %v)",
			sum, s.ServiceSum, s.ServiceSum-sum)
	}
	if s.Reads+s.Writes == 0 && s.ServiceSum != 0 {
		return fmt.Errorf("disk: service time %v with no I/O", s.ServiceSum)
	}
	return nil
}

// Disk is one simulated drive (the paper's one-controller-per-disk case).
type Disk struct {
	name string
	cfg  Config
	k    *sim.Kernel
	arm  *sim.Resource
	head int // cylinder index of current head position
	seq  int // next block for a zero-cost sequential continuation

	dirty     []int
	dirtySet  map[int]struct{} // blocks in dirty (not blocks mid-flush)
	sstf      sstfQueue        // reusable per-batch SSTF ordering
	work      *sim.Cond        // flusher waits here when idle
	space     *sim.Cond        // writers wait here when the queue is full
	drained   *sim.Cond        // Drain waits here
	flushing  int              // blocks currently being written by the flusher
	closed    bool
	flusherUp bool

	stats Stats

	// Optional instrumentation (nil-safe no-ops when not attached).
	mStalls *metrics.Counter
	mRead   [numBands]*metrics.Histogram // service time by seek band
	mWrite  [numBands]*metrics.Histogram
}

// New creates a drive and spawns its pageout daemon on k.
func New(k *sim.Kernel, name string, cfg Config) (*Disk, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Disk{
		name:     name,
		cfg:      cfg,
		k:        k,
		arm:      sim.NewResource(name + ".arm"),
		dirtySet: make(map[int]struct{}),
		work:     sim.NewCond(name + ".flush-work"),
		space:    sim.NewCond(name + ".flush-space"),
		drained:  sim.NewCond(name + ".drained"),
	}
	k.Spawn(name+".pageout", d.flusher)
	d.flusherUp = true
	return d, nil
}

// MustNew is New, panicking on config errors (for tests and fixed setups).
func MustNew(k *sim.Kernel, name string, cfg Config) *Disk {
	d, err := New(k, name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the drive's diagnostic name.
func (d *Disk) Name() string { return d.name }

// Config returns the drive's configuration.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns a snapshot of activity counters.
func (d *Disk) Stats() Stats { return d.stats }

// Instrument registers the drive's observability on reg: dirty-queue
// depth and arm-utilization gauges, cumulative read/write gauges, a
// stall counter, and per-band service-time histograms. A nil registry
// leaves the drive un-instrumented (all hooks stay no-ops).
func (d *Disk) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge(d.name+".dirty_queue", func() float64 { return float64(d.DirtyQueued()) })
	reg.Gauge(d.name+".arm_util", func() float64 {
		now := d.k.Now()
		if now == 0 {
			return 0
		}
		return float64(d.arm.BusyAt(now)) / float64(now)
	})
	reg.Gauge(d.name+".reads", func() float64 { return float64(d.stats.Reads) })
	reg.Gauge(d.name+".writes", func() float64 { return float64(d.stats.Writes) })
	d.mStalls = reg.Counter(d.name + ".stalls")
	for bi, band := range bandNames {
		d.mRead[bi] = reg.Histogram(d.name + ".read.service." + band)
		d.mWrite[bi] = reg.Histogram(d.name + ".write.service." + band)
	}
}

// cylinder maps a block number to its cylinder.
func (d *Disk) cylinder(block int) int { return block / d.cfg.BlocksPerCylinder }

// seekTime returns arm movement time between cylinders.
func (d *Disk) seekTime(fromCyl, toCyl int) sim.Time {
	dist := fromCyl - toCyl
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	maxDist := d.cylinder(d.cfg.Blocks - 1)
	if maxDist < 1 {
		maxDist = 1
	}
	frac := math.Sqrt(float64(dist) / float64(maxDist))
	return d.cfg.SeekMin + sim.Time(float64(d.cfg.SeekMax-d.cfg.SeekMin)*frac)
}

// service is the component breakdown of one block access.
type service struct {
	seek, rot, transfer sim.Time
	sequential          bool
	dist                int // cylinders travelled
}

// total returns the arm+media time of the access.
func (s service) total() sim.Time { return s.seek + s.rot + s.transfer }

// serviceParts computes arm+media time components for accessing block,
// given the head state. A sequential continuation costs transfer only.
func (d *Disk) serviceParts(block int, rotFactor float64) service {
	if block == d.seq {
		return service{transfer: d.cfg.Transfer, sequential: true}
	}
	toCyl := d.cylinder(block)
	dist := d.head - toCyl
	if dist < 0 {
		dist = -dist
	}
	return service{
		seek:     d.seekTime(d.head, toCyl),
		rot:      sim.Time(float64(d.cfg.Rotation) / 2 * rotFactor),
		transfer: d.cfg.Transfer,
		dist:     dist,
	}
}

// Seek bands for the per-band service-time histograms: sequential
// continuations, short seeks, mid-range seeks, and long strokes.
const numBands = 4

var bandNames = [numBands]string{"seq", "near", "mid", "far"}

// bandIndex classifies an access by arm travel.
func bandIndex(sv service) int {
	switch {
	case sv.sequential:
		return 0
	case sv.dist <= 32:
		return 1
	case sv.dist <= 512:
		return 2
	}
	return 3
}

// account folds one access into the stats and histograms.
func (d *Disk) account(sv service, overhead sim.Time, hists *[numBands]*metrics.Histogram) sim.Time {
	t := sv.total() + overhead
	d.stats.SeekTime += sv.seek
	d.stats.RotationTime += sv.rot
	d.stats.TransferTime += sv.transfer
	d.stats.OverheadTime += overhead
	d.stats.ServiceSum += t
	hists[bandIndex(sv)].Observe(t)
	return t
}

func (d *Disk) checkBlock(block int) {
	if block < 0 || block >= d.cfg.Blocks {
		panic(fmt.Sprintf("disk %s: block %d out of range [0,%d)", d.name, block, d.cfg.Blocks))
	}
}

// Read performs a synchronous one-block read (a page fault). The calling
// process blocks for queueing plus service time.
func (d *Disk) Read(p *sim.Proc, block int) {
	d.checkBlock(block)
	d.arm.Acquire(p)
	sv := d.serviceParts(block, 1.0)
	t := d.account(sv, d.cfg.FaultOverhead, &d.mRead)
	d.stats.Reads++
	p.Advance(t)
	d.head = d.cylinder(block)
	d.seq = block + 1
	d.arm.Release(p)
}

// ScheduleWrite queues a dirty block for deferred write-back. The caller
// only blocks when the dirty queue is full (write throttling). A block
// already queued is coalesced into the pending write; a block the
// flusher has already picked up is re-queued for a second physical
// write, since its first write may race the re-dirtying store.
func (d *Disk) ScheduleWrite(p *sim.Proc, block int) {
	if d.closed {
		panic(fmt.Sprintf("disk %s: ScheduleWrite after Close", d.name))
	}
	d.checkBlock(block)
	if _, dup := d.dirtySet[block]; dup {
		return // already queued and not yet picked up; one write suffices
	}
	for len(d.dirty) >= d.cfg.WriteQueue {
		d.stats.Stalls++
		d.mStalls.Inc()
		d.space.Wait(p)
	}
	d.dirty = append(d.dirty, block)
	d.dirtySet[block] = struct{}{}
	d.work.Broadcast()
}

// DirtyQueued reports the number of blocks awaiting write-back.
func (d *Disk) DirtyQueued() int { return len(d.dirty) + d.flushing }

// Drain blocks until all queued dirty blocks have been written.
func (d *Disk) Drain(p *sim.Proc) {
	for d.DirtyQueued() > 0 {
		d.drained.Wait(p)
	}
}

// Close asks the pageout daemon to exit once the queue is empty. Further
// ScheduleWrite calls panic. Safe to call from any process context before
// the kernel finishes.
func (d *Disk) Close() {
	d.closed = true
	d.work.Broadcast()
}

// flusher is the pageout daemon: it drains dirty blocks in batches,
// writing each batch in shortest-seek-first order from the current head
// position. Because it runs asynchronously and reorders, writes cost less
// arm time than the foreground random reads — the paper's dttw < dttr.
func (d *Disk) flusher(p *sim.Proc) {
	for {
		for len(d.dirty) == 0 {
			if d.closed {
				return
			}
			if d.drained.Waiting() > 0 && d.flushing == 0 {
				d.drained.Broadcast()
			}
			d.work.Wait(p)
		}
		n := len(d.dirty)
		if n > d.cfg.WriteBatch {
			n = d.cfg.WriteBatch
		}
		d.sstf.reset(d.dirty[:n])
		d.dirty = d.dirty[n:]
		// Drop the batch from the dedup set NOW, not after the writes:
		// a block re-dirtied while mid-flush must queue a second
		// physical write, or the re-dirty is silently lost.
		for _, b := range d.sstf.blocks {
			delete(d.dirtySet, b)
		}
		d.flushing = n
		d.space.Broadcast()

		// Shortest-seek-first: repeatedly pick the block nearest the head.
		for d.sstf.remaining > 0 {
			block := d.sstf.pop(d.head * d.cfg.BlocksPerCylinder)

			d.arm.Acquire(p)
			sv := d.serviceParts(block, d.cfg.WriteRotFactor)
			t := d.account(sv, d.cfg.WriteOverhead, &d.mWrite)
			d.stats.Writes++
			p.Advance(t)
			d.head = d.cylinder(block)
			d.seq = block + 1
			d.arm.Release(p)

			d.flushing--
		}
		if len(d.dirty) == 0 && d.drained.Waiting() > 0 {
			d.drained.Broadcast()
		}
	}
}

// nearestIndex returns the index in sorted blocks whose value is closest
// to pos (ties go to the lower block). It is the reference selection rule
// that sstfQueue must reproduce exactly; the flusher itself uses the
// queue, which avoids the O(n) slice compaction per pick.
func nearestIndex(blocks []int, pos int) int {
	i := sort.SearchInts(blocks, pos)
	if i == 0 {
		return 0
	}
	if i == len(blocks) {
		return len(blocks) - 1
	}
	if pos-blocks[i-1] <= blocks[i]-pos {
		return i - 1
	}
	return i
}

// sstfQueue pops a sorted batch of blocks in shortest-seek-first order.
// Entries never move after reset: consumed ones are unlinked from an
// index-based doubly-linked list, and each pop re-anchors from the
// neighborhood of the previous pick rather than re-searching the whole
// batch. When the head moves to the block just written (the common case —
// foreground reads only occasionally drag it elsewhere) the next pick is
// adjacent, so a full batch drains in O(n log n) for the initial sort
// plus O(n) of link walking, replacing the old sort + per-pick slice
// compaction that cost O(n²) per flush. All buffers are reused across
// batches, so steady-state flushing allocates nothing.
type sstfQueue struct {
	blocks    []int // the batch, sorted ascending; never compacted
	prev      []int // index of nearest live entry below i, or -1
	next      []int // index of nearest live entry above i, or len(blocks)
	hint      int   // last-popped index; -1 before the first pop
	remaining int   // live entries left
}

// reset loads a new batch (copied, then sorted in place).
func (q *sstfQueue) reset(batch []int) {
	q.blocks = append(q.blocks[:0], batch...)
	sort.Ints(q.blocks)
	n := len(q.blocks)
	if cap(q.prev) < n {
		q.prev = make([]int, n)
		q.next = make([]int, n)
	}
	q.prev = q.prev[:n]
	q.next = q.next[:n]
	for i := 0; i < n; i++ {
		q.prev[i] = i - 1
		q.next[i] = i + 1
	}
	q.hint = -1
	q.remaining = n
}

// pop removes and returns the live block nearest pos, with ties going to
// the lower block — exactly nearestIndex's rule over the live entries.
func (q *sstfQueue) pop(pos int) int {
	n := len(q.blocks)
	var lo, hi int
	if q.hint < 0 {
		// First pop: binary-search the bracketing pair.
		hi = sort.SearchInts(q.blocks, pos)
		lo = hi - 1
	} else {
		// Start from the hole left by the previous pop and re-anchor:
		// the head usually lands on the cylinder just written, but a
		// foreground read can drag pos arbitrarily far, so walk the
		// bracket in whichever direction pos moved. Each step updates
		// the trailing pointer, so the walk never overshoots.
		lo, hi = q.prev[q.hint], q.next[q.hint]
		for lo >= 0 && q.blocks[lo] >= pos {
			hi = lo
			lo = q.prev[lo]
		}
		for hi < n && q.blocks[hi] < pos {
			lo = hi
			hi = q.next[hi]
		}
	}
	// Invariant here: lo is the largest live index with block < pos (or
	// -1), hi the smallest with block >= pos (or n).
	i := hi
	if lo >= 0 && (hi >= n || pos-q.blocks[lo] <= q.blocks[hi]-pos) {
		i = lo
	}
	if p := q.prev[i]; p >= 0 {
		q.next[p] = q.next[i]
	}
	if nx := q.next[i]; nx < n {
		q.prev[nx] = q.prev[i]
	}
	q.hint = i
	q.remaining--
	return q.blocks[i]
}
