package mstore

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"mmjoin/internal/exec"
)

// spatialPairSet collects (a.Item, b.Item) pairs as a multiset keyed by
// the two virtual pointers — the order-insensitive result shape both
// join variants must agree on.
type spatialPair struct{ a, b Ptr }

func bruteSpatialJoin(as, bs []SpatialEntry) map[spatialPair]int {
	out := map[spatialPair]int{}
	for _, ea := range as {
		for _, eb := range bs {
			if ea.Rect.Intersects(eb.Rect) {
				out[spatialPair{ea.Item, eb.Item}]++
			}
		}
	}
	return out
}

func buildRTreePair(t *testing.T, na, nb, fa, fb int, seed int64) (*RTree, *RTree, []SpatialEntry, []SpatialEntry) {
	t.Helper()
	s, err := Create(filepath.Join(t.TempDir(), "rtj"), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int, base Ptr) ([]SpatialEntry, []SpatialEntry) {
		entries := make([]SpatialEntry, n)
		for i := range entries {
			x, y := rng.Float64()*500, rng.Float64()*500
			entries[i] = SpatialEntry{
				Rect: Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*15, MaxY: y + rng.Float64()*15},
				Item: base + Ptr(i),
			}
		}
		return entries, append([]SpatialEntry(nil), entries...)
	}
	ea, refA := mk(na, 1)
	eb, refB := mk(nb, 1<<20)
	ta, err := BuildRTree(s, ea, fa)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := BuildRTree(s, eb, fb)
	if err != nil {
		t.Fatal(err)
	}
	return ta, tb, refA, refB
}

func TestRTreeIntersectJoinMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name           string
		na, nb, fa, fb int
		seed           int64
	}{
		{"balanced", 900, 900, 8, 8, 1},
		{"asymmetric-sizes", 40, 2000, 8, 8, 2}, // different heights
		{"asymmetric-fanout", 600, 600, 4, 16, 3},
		{"tiny", 3, 5, 8, 8, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ta, tb, refA, refB := buildRTreePair(t, tc.na, tc.nb, tc.fa, tc.fb, tc.seed)
			want := bruteSpatialJoin(refA, refB)
			got := map[spatialPair]int{}
			ta.IntersectJoin(tb, func(a, b SpatialEntry) bool {
				got[spatialPair{a.Item, b.Item}]++
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("%d distinct pairs, want %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("pair %v reported %d times, want %d", k, got[k], n)
				}
			}
		})
	}
}

func TestRTreeIntersectJoinEarlyStop(t *testing.T) {
	ta, tb, _, _ := buildRTreePair(t, 400, 400, 8, 8, 5)
	count := 0
	ta.IntersectJoin(tb, func(a, b SpatialEntry) bool {
		count++
		return count < 9
	})
	if count != 9 {
		t.Errorf("early stop visited %d pairs", count)
	}
}

func TestRTreeIntersectJoinEmpty(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "rtj"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	empty, err := BuildRTree(s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	one, err := BuildRTree(s, []SpatialEntry{{Rect: Rect{0, 0, 1, 1}, Item: 7}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*RTree{{empty, one}, {one, empty}, {empty, empty}} {
		pair[0].IntersectJoin(pair[1], func(a, b SpatialEntry) bool {
			t.Error("empty join produced a pair")
			return false
		})
		if err := pair[0].ParallelIntersectJoin(context.Background(), nil, pair[1], func(int, SpatialEntry, SpatialEntry) {
			t.Error("empty parallel join produced a pair")
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// The parallel descent must report the same pair multiset as the
// sequential one for every worker count, including under the race
// detector (per-worker accumulation, folded after the barrier).
func TestRTreeParallelIntersectJoinGrid(t *testing.T) {
	ta, tb, refA, refB := buildRTreePair(t, 1200, 1500, 8, 8, 6)
	want := bruteSpatialJoin(refA, refB)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		p := exec.NewPool(workers)
		per := make([]map[spatialPair]int, p.Workers())
		for i := range per {
			per[i] = map[spatialPair]int{}
		}
		err := ta.ParallelIntersectJoin(context.Background(), p, tb, func(w int, a, b SpatialEntry) {
			per[w][spatialPair{a.Item, b.Item}]++
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		got := map[spatialPair]int{}
		for _, m := range per {
			for k, n := range m {
				got[k] += n
			}
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d distinct pairs, want %d", workers, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("workers=%d: pair %v reported %d times, want %d", workers, k, got[k], n)
			}
		}
	}
}
