package core

import (
	"math"
	"testing"

	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/relation"
)

func testExperiment(t *testing.T, nr int) *Experiment {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = nr, nr
	e, err := NewExperiment(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExperimentValidation(t *testing.T) {
	cfg := machine.DefaultConfig()
	spec := relation.DefaultSpec()
	spec.D = 2
	if _, err := NewExperiment(cfg, spec); err == nil {
		t.Error("D mismatch accepted")
	}
	spec = relation.DefaultSpec()
	spec.NR = 0
	if _, err := NewExperiment(cfg, spec); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestParamsForFraction(t *testing.T) {
	e := testExperiment(t, 4000)
	prm := e.ParamsForFraction(0.25)
	if prm.MRproc != int64(0.25*float64(4000*128)) {
		t.Errorf("MRproc = %d", prm.MRproc)
	}
	if !prm.Stagger {
		t.Error("Stagger should default on")
	}
}

func TestCompareProducesBothSides(t *testing.T) {
	e := testExperiment(t, 4000)
	cmp, err := e.Compare(join.Grace, e.ParamsForFraction(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Measured <= 0 || cmp.Predicted <= 0 {
		t.Errorf("measured %v predicted %v", cmp.Measured, cmp.Predicted)
	}
	if cmp.Result == nil || cmp.Prediction == nil {
		t.Fatal("missing detail structs")
	}
	if math.IsNaN(cmp.RelError()) {
		t.Error("RelError NaN")
	}
}

func TestModelTracksExperimentMidMemory(t *testing.T) {
	// The validation claim, at reduced scale: model within a reasonable
	// band of the simulated measurement away from thrashing regimes.
	e := testExperiment(t, 8000)
	for _, alg := range []join.Algorithm{join.NestedLoops, join.SortMerge, join.Grace} {
		cmp, err := e.Compare(alg, e.ParamsForFraction(0.15))
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(cmp.RelError()); re > 0.8 {
			t.Errorf("%v: |relative error| = %.2f (measured %v, predicted %v)",
				alg, re, cmp.Measured, cmp.Predicted)
		}
	}
}

func TestPredictUnknownAlgorithm(t *testing.T) {
	e := testExperiment(t, 2000)
	if _, err := e.Predict(join.Algorithm(42), e.ParamsForFraction(0.1)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestHybridHashComparison(t *testing.T) {
	e := testExperiment(t, 6000)
	cmp, err := e.Compare(join.HybridHash, e.ParamsForFraction(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Measured <= 0 || cmp.Predicted <= 0 {
		t.Fatalf("measured %v predicted %v", cmp.Measured, cmp.Predicted)
	}
	if re := math.Abs(cmp.RelError()); re > 0.8 {
		t.Errorf("hybrid-hash |relative error| = %.2f", re)
	}
	// The extension should not lose to plain Grace.
	gr, err := e.Compare(join.Grace, e.ParamsForFraction(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if float64(cmp.Measured) > 1.05*float64(gr.Measured) {
		t.Errorf("hybrid (%v) much slower than grace (%v)", cmp.Measured, gr.Measured)
	}
}

func TestTraditionalGraceModelTracksSim(t *testing.T) {
	e := testExperiment(t, 8000)
	cmp, err := e.Compare(join.TraditionalGrace, e.ParamsForFraction(0.10))
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(cmp.RelError()); re > 0.8 {
		t.Errorf("traditional grace |relative error| = %.2f (measured %v, predicted %v)",
			re, cmp.Measured, cmp.Predicted)
	}
}

func TestModelAssumesUniformReferences(t *testing.T) {
	// Documents a known limitation inherited from the paper: under Zipf
	// the Mackert–Lohman term overpredicts nested loops (it cannot model
	// a cached hot set). The direction of the error is asserted so any
	// future fault-model improvement shows up as a failing expectation.
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 8000, 8000
	spec.Dist = relation.Zipf
	spec.ZipfTheta = 1.5
	e, err := NewExperiment(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := e.Compare(join.NestedLoops, e.ParamsForFraction(0.10))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RelError() < 0.5 {
		t.Errorf("expected strong overprediction under Zipf, got %+.2f — "+
			"if the fault model improved, update EXPERIMENTS.md", cmp.RelError())
	}
}
