package mstore

import (
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func TestSegmentCreateOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	s, err := Create(path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	copy(s.Bytes(p, 5), "hello")
	s.PutU64(p+8, 0xDEADBEEF)
	s.SetRoot(p)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Exact positioning: the stored pointer is valid as-is.
	if got := string(s2.Bytes(s2.Root(), 5)); got != "hello" {
		t.Errorf("persisted data = %q", got)
	}
	if got := s2.U64(s2.Root() + 8); got != 0xDEADBEEF {
		t.Errorf("persisted u64 = %x", got)
	}
}

func TestSegmentOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Error("open of missing file succeeded")
	}
	bad := filepath.Join(dir, "bad")
	s, err := Create(bad, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s.PutU32(headerSize, 1) // valid segment...
	s.Close()
	// ...now corrupt the magic.
	raw, _ := Open(bad)
	if raw == nil {
		t.Fatal("reopen failed")
	}
	copy(raw.data[offMagic:], []byte{1, 2, 3, 4})
	raw.Close()
	if _, err := Open(bad); err == nil {
		t.Error("open of corrupted segment succeeded")
	}
}

func TestSegmentGrowPreservesData(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "g"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, _ := s.Alloc(16)
	s.PutU64(p, 42)
	if err := s.Grow(1 << 20); err != nil {
		t.Fatal(err)
	}
	if s.Size() < 1<<20 {
		t.Errorf("size %d after grow", s.Size())
	}
	if s.U64(p) != 42 {
		t.Error("data lost across grow")
	}
	// Alloc that exceeds current size grows implicitly.
	big, err := s.Alloc(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s.Bytes(big, 2<<20)[0] = 1
}

func TestAllocFreeReuse(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "a"), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, _ := s.Alloc(100)
	b, _ := s.Alloc(100)
	s.Free(a, 100)
	c, _ := s.Alloc(80) // fits in a's hole (first fit, split)
	if c != a {
		t.Errorf("hole not reused: %d vs %d", c, a)
	}
	_ = b
}

func TestAllocErrors(t *testing.T) {
	s, _ := Create(filepath.Join(t.TempDir(), "e"), 4096)
	defer s.Close()
	if _, err := s.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access should panic")
		}
	}()
	s.Bytes(Ptr(s.Size()), 8)
}

// Property: alloc/free sequences never hand out overlapping live blocks.
func TestQuickAllocatorNoOverlap(t *testing.T) {
	f := func(ops []uint8) bool {
		s, err := Create(filepath.Join(t.TempDir(), "q"), 1<<16)
		if err != nil {
			return false
		}
		defer s.Close()
		type block struct {
			p Ptr
			n int64
		}
		var live []block
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				s.Free(live[0].p, live[0].n)
				live = live[1:]
				continue
			}
			n := int64(op)%200 + 1
			p, err := s.Alloc(n)
			if err != nil {
				return false
			}
			for _, b := range live {
				lo, hi := int64(p), int64(p)+((n+7)&^7)
				blo, bhi := int64(b.p), int64(b.p)+((b.n+7)&^7)
				if lo < bhi && blo < hi {
					return false
				}
			}
			live = append(live, block{p, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRelationAppendAndPersist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rel")
	s, _ := Create(path, 1<<16)
	rel, err := CreateRelation(s, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	obj := make([]byte, 32)
	for i := 0; i < 3; i++ {
		EncodeSPtr(obj, SPtr{Part: uint32(i), Off: Ptr(100 + i)})
		binary.LittleEndian.PutUint64(obj[ridOffset:], uint64(i*7))
		if _, err := rel.Append(obj); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, _ := Open(path)
	defer s2.Close()
	rel2, err := OpenRelation(s2)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Count() != 3 || rel2.ObjSize() != 32 {
		t.Fatalf("count=%d objSize=%d", rel2.Count(), rel2.ObjSize())
	}
	for i := 0; i < 3; i++ {
		ptr := rel2.JoinAttr(i)
		if ptr.Part != uint32(i) || ptr.Off != Ptr(100+i) {
			t.Errorf("object %d pointer %+v", i, ptr)
		}
	}
	if rel2.IndexOf(rel2.PtrAt(2)) != 2 {
		t.Error("IndexOf broken")
	}
}

func TestRelationErrors(t *testing.T) {
	s, _ := Create(filepath.Join(t.TempDir(), "r"), 1<<16)
	defer s.Close()
	if _, err := CreateRelation(s, 4, 10); err == nil {
		t.Error("object smaller than pointer accepted")
	}
	rel, _ := CreateRelation(s, 32, 1)
	if _, err := rel.Append(make([]byte, 16)); err == nil {
		t.Error("wrong-size append accepted")
	}
	rel.Append(make([]byte, 32))
	if _, err := rel.Append(make([]byte, 32)); err == nil {
		t.Error("append beyond capacity accepted")
	}
}

func TestPermuteRecords(t *testing.T) {
	s, _ := Create(filepath.Join(t.TempDir(), "p"), 1<<16)
	defer s.Close()
	rel, _ := CreateRelation(s, 32, 16)
	rng := rand.New(rand.NewSource(4))
	keys := make([]int, 16)
	obj := make([]byte, 32)
	for i := range keys {
		keys[i] = rng.Intn(1000)
		EncodeSPtr(obj, SPtr{Part: 0, Off: Ptr(keys[i])})
		rel.Append(obj)
	}
	handles := make([]int32, 16)
	for i := range handles {
		handles[i] = int32(i)
	}
	sort.Slice(handles, func(a, b int) bool { return keys[handles[a]] < keys[handles[b]] })
	permuteRange(rel, 0, handles)
	prev := -1
	for i := 0; i < rel.Count(); i++ {
		k := int(DecodeSPtr(rel.Object(i)).Off)
		if k < prev {
			t.Fatalf("records not sorted at %d", i)
		}
		prev = k
	}
}

func makeDB(t *testing.T, nr int) *DB {
	t.Helper()
	db, err := CreateDB(filepath.Join(t.TempDir(), "db"), 4, nr, nr, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDBCreateOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := CreateDB(dir, 4, 1000, 1000, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := db.ExpectedStats()
	db.Close()

	db2, err := OpenDB(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := db2.ExpectedStats()
	if got != want {
		t.Errorf("reopened stats %+v != %+v", got, want)
	}
}

func TestDBCreateValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateDB(dir, 4, 1000, 1000, 8, 1); err == nil {
		t.Error("tiny object size accepted")
	}
	if _, err := CreateDB(dir, 8, 4, 4, 64, 1); err == nil {
		t.Error("fewer objects than partitions accepted")
	}
}

func TestRealJoinsAgree(t *testing.T) {
	db := makeDB(t, 4000)
	want := db.ExpectedStats()
	tmp := t.TempDir()

	nl, err := db.NestedLoops(filepath.Join(tmp, "nl"))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := db.SortMerge(filepath.Join(tmp, "sm"))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := db.Grace(filepath.Join(tmp, "gr"), 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]JoinStats{"nested-loops": nl, "sort-merge": sm, "grace": gr} {
		if st != want {
			t.Errorf("%s: %+v, want %+v", name, st, want)
		}
	}
}

func TestGraceBucketCounts(t *testing.T) {
	db := makeDB(t, 1000)
	want := db.ExpectedStats()
	for _, k := range []int{1, 3, 16} {
		st, err := db.Grace(filepath.Join(t.TempDir(), "g"), k)
		if err != nil {
			t.Fatal(err)
		}
		if st != want {
			t.Errorf("k=%d: wrong join", k)
		}
	}
	if _, err := db.Grace(t.TempDir(), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// Property: all real joins agree with ground truth for arbitrary sizes
// and seeds.
func TestQuickRealJoinEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("io heavy")
	}
	f := func(seed int64, rawN uint16) bool {
		nr := int(rawN)%1500 + 16
		db, err := CreateDB(filepath.Join(t.TempDir(), "db"), 4, nr, nr, 64, seed)
		if err != nil {
			return false
		}
		defer db.Close()
		want := db.ExpectedStats()
		tmp := t.TempDir()
		nl, err1 := db.NestedLoops(filepath.Join(tmp, "nl"))
		sm, err2 := db.SortMerge(filepath.Join(tmp, "sm"))
		gr, err3 := db.Grace(filepath.Join(tmp, "gr"), 5)
		return err1 == nil && err2 == nil && err3 == nil &&
			nl == want && sm == want && gr == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestHybridHashRealStore(t *testing.T) {
	db := makeDB(t, 3000)
	want := db.ExpectedStats()
	for _, frac := range []float64{0, 0.3, 0.7, 1.0} {
		st, err := db.HybridHash(filepath.Join(t.TempDir(), "hh"), 6, frac)
		if err != nil {
			t.Fatal(err)
		}
		if st != want {
			t.Errorf("residentFrac=%g: wrong join result", frac)
		}
	}
	if _, err := db.HybridHash(t.TempDir(), 0, 0.5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := db.HybridHash(t.TempDir(), 4, 1.5); err == nil {
		t.Error("frac>1 accepted")
	}
}

func TestAuxRootPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aux")
	s, err := Create(path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRoot(100)
	s.SetAuxRoot(200)
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Root() != 100 || s2.AuxRoot() != 200 {
		t.Errorf("roots = %d/%d", s2.Root(), s2.AuxRoot())
	}
}

func TestDBVerify(t *testing.T) {
	db := makeDB(t, 1000)
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one pointer: partition out of range.
	obj := db.R[0].Object(0)
	EncodeSPtr(obj, SPtr{Part: 99, Off: 64})
	if err := db.Verify(); err == nil {
		t.Error("corrupted partition not detected")
	}
	// Misaligned offset.
	EncodeSPtr(obj, SPtr{Part: 1, Off: db.S[1].PtrAt(0) + 1})
	if err := db.Verify(); err == nil {
		t.Error("misaligned pointer not detected")
	}
	// Restore and duplicate an id.
	EncodeSPtr(obj, SPtr{Part: 0, Off: db.S[0].PtrAt(0)})
	if err := db.Verify(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	copy(db.R[0].Object(1)[ridOffset:], db.R[0].Object(0)[ridOffset:ridOffset+8])
	if err := db.Verify(); err == nil {
		t.Error("duplicate id not detected")
	}
}

func TestRelationSurvivesSegmentGrow(t *testing.T) {
	// Virtual pointers are offsets: growing (remapping) the segment must
	// not invalidate a relation built before the grow.
	s, err := Create(filepath.Join(t.TempDir(), "g"), 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rel, err := CreateRelation(s, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	obj := make([]byte, 32)
	EncodeSPtr(obj, SPtr{Part: 3, Off: 777})
	rel.Append(obj)
	if err := s.Grow(1 << 21); err != nil {
		t.Fatal(err)
	}
	if got := rel.JoinAttr(0); got.Part != 3 || got.Off != 777 {
		t.Errorf("pointer after grow: %+v", got)
	}
	// And a relation reopened from the root also works post-grow.
	rel2, err := OpenRelation(s)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Count() != 1 {
		t.Errorf("count = %d", rel2.Count())
	}
}
