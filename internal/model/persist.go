package model

import (
	"encoding/json"
	"fmt"
	"io"

	"mmjoin/internal/sim"
)

// calibrationJSON is the serialized form of a Calibration: curves as
// point lists, times in nanoseconds — the file a deployment would ship
// from a one-off calibration run to its query optimizers.
type calibrationJSON struct {
	B int64 `json:"pageBytes"`

	DTTR      curveJSON `json:"dttr"`
	DTTW      curveJSON `json:"dttw"`
	NewMap    curveJSON `json:"newMap"`
	OpenMap   curveJSON `json:"openMap"`
	DeleteMap curveJSON `json:"deleteMap"`

	CS       int64 `json:"contextSwitchNS"`
	Map      int64 `json:"mapNS"`
	Hash     int64 `json:"hashNS"`
	Compare  int64 `json:"compareNS"`
	Swap     int64 `json:"swapNS"`
	Transfer int64 `json:"transferNS"`

	MTpp float64 `json:"mtppNSPerByte"`
	MTps float64 `json:"mtpsNSPerByte"`
	MTsp float64 `json:"mtspNSPerByte"`
	MTss float64 `json:"mtssNSPerByte"`

	HP int64 `json:"heapPtrBytes"`
}

type curveJSON struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
}

// Write serializes the calibration as JSON.
func (c Calibration) Write(w io.Writer) error {
	enc := func(cv Curve) curveJSON {
		xs, ys := cv.Points()
		return curveJSON{X: xs, Y: ys}
	}
	out := calibrationJSON{
		B:    c.B,
		DTTR: enc(c.DTTR), DTTW: enc(c.DTTW),
		NewMap: enc(c.NewMap), OpenMap: enc(c.OpenMap), DeleteMap: enc(c.DeleteMap),
		CS: int64(c.CS), Map: int64(c.Map), Hash: int64(c.Hash),
		Compare: int64(c.Compare), Swap: int64(c.Swap), Transfer: int64(c.Transfer),
		MTpp: c.MTpp, MTps: c.MTps, MTsp: c.MTsp, MTss: c.MTss,
		HP: c.HP,
	}
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(out)
}

// ReadCalibration deserializes a calibration written by Write.
func ReadCalibration(r io.Reader) (Calibration, error) {
	var in calibrationJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return Calibration{}, fmt.Errorf("model: decode calibration: %w", err)
	}
	if in.B <= 0 || in.HP <= 0 {
		return Calibration{}, fmt.Errorf("model: calibration missing page/heap sizes")
	}
	dec := func(name string, cv curveJSON) (Curve, error) {
		c, err := NewCurve(cv.X, cv.Y)
		if err != nil {
			return Curve{}, fmt.Errorf("model: calibration curve %s: %w", name, err)
		}
		return c, nil
	}
	var c Calibration
	var err error
	c.B, c.HP = in.B, in.HP
	if c.DTTR, err = dec("dttr", in.DTTR); err != nil {
		return Calibration{}, err
	}
	if c.DTTW, err = dec("dttw", in.DTTW); err != nil {
		return Calibration{}, err
	}
	if c.NewMap, err = dec("newMap", in.NewMap); err != nil {
		return Calibration{}, err
	}
	if c.OpenMap, err = dec("openMap", in.OpenMap); err != nil {
		return Calibration{}, err
	}
	if c.DeleteMap, err = dec("deleteMap", in.DeleteMap); err != nil {
		return Calibration{}, err
	}
	c.CS, c.Map, c.Hash = sim.Time(in.CS), sim.Time(in.Map), sim.Time(in.Hash)
	c.Compare, c.Swap, c.Transfer = sim.Time(in.Compare), sim.Time(in.Swap), sim.Time(in.Transfer)
	c.MTpp, c.MTps, c.MTsp, c.MTss = in.MTpp, in.MTps, in.MTsp, in.MTss
	return c, nil
}
