// Package conformance asserts, as executable tests, the qualitative
// claims this reproduction makes about the paper's results
// (EXPERIMENTS.md): the Fig. 5 shapes, the simulator's conservation
// laws, and bit-for-bit deterministic replay of a golden corpus.
//
// The suite has three layers:
//
//  1. Fig. 5 shape assertions (fig5_test.go): scaled-down re-runs of the
//     Fig. 5(a)/(b)/(c) sweeps through internal/sweep, asserting the
//     algorithm orderings at the memory extremes, monotone improvement
//     with per-process memory, the sort-merge pass discontinuity, the
//     Grace thrashing knee, and model-vs-simulation agreement within the
//     documented relative-error bands below. Skipped under -short (they
//     are the slow tier).
//  2. Simulator invariants (invariants_test.go): property and
//     metamorphic checks across randomized seeds and configurations —
//     virtual-time determinism (same seed ⇒ identical Result),
//     conservation laws (disk service components sum to ServiceSum,
//     pager resident set bounded by its quota, join output identical to
//     a reference in-memory join), observer neutrality of telemetry,
//     and the no-lost-write law of the pageout daemon.
//  3. Deterministic replay (replay_test.go): a corpus of small
//     fixed-seed runs whose full Results are committed under testdata/;
//     any behavioural drift in any layer shows up as a field-level diff
//     against the golden snapshot. Regenerate with
//     `go test ./internal/conformance -run Replay -update` after an
//     intentional change, and review the diff like code.
//
// Absolute simulated times are NOT asserted anywhere except the golden
// corpus (where they pin the whole machine): the suite holds the
// reproduction to the paper's shape claims, which survive recalibration
// of the simulated hardware, while the corpus pins exact behaviour of
// the current configuration.
package conformance

import (
	"fmt"

	"mmjoin/internal/core"
	"mmjoin/internal/machine"
	"mmjoin/internal/relation"
)

// Scaled-down Fig. 5 configuration: a quarter of the paper's |R| = |S| =
// 102,400 objects keeps every asserted shape (see EXPERIMENTS.md
// "Conformance") while the three panels sweep in a few seconds.
const (
	Objects = 25600
	Seed    = 1
)

// Relative-error bands for model-vs-simulation agreement at the scaled
// conformance size. They are deliberately looser than the typical errors
// observed (recorded in EXPERIMENTS.md) so the suite fails on structural
// regressions, not on noise-level recalibration; they are tight enough
// that losing a mechanism (the flusher's write reordering, the LRU
// clean-page preference, the Mackert–Lohman term) trips them.
const (
	// NLStarvedBand bounds |relative error| for nested loops in the
	// memory-starved regime (fractions ≤ NLStarvedMax), where the
	// paper's own agreement claim lives. Beyond it MSproc exceeds |Si|
	// and the model's divergence is documented as out of scope.
	NLStarvedBand = 0.15
	NLStarvedMax  = 0.20

	// SMBand bounds |relative error| for sort-merge across its whole
	// panel (typical: ≤ 11% at this scale).
	SMBand = 0.25

	// GracePlateauBand bounds |relative error| for Grace on the plateau
	// (fractions ≥ GracePlateauMin); at the thrashing knee only the
	// error's sign is asserted — the urn model underpredicts the
	// measured thrash, with the same sign the paper reports.
	GracePlateauBand = 0.15
	GracePlateauMin  = 0.03

	// GraceKneeFactor is the minimum ratio of the knee point's measured
	// time to the plateau minimum — the thrashing rise of Fig. 5(c).
	GraceKneeFactor = 3.0

	// MonotoneSlack tolerates scheduling-level wobble when asserting
	// that a panel improves monotonically with memory: a point may
	// exceed its predecessor by at most this relative amount.
	MonotoneSlack = 0.02
)

// Config returns the simulated machine used by the conformance sweeps:
// the paper's default testbed.
func Config() machine.Config { return machine.DefaultConfig() }

// Spec returns the scaled workload specification used by the
// conformance sweeps.
func Spec() relation.Spec {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = Objects, Objects
	spec.Seed = Seed
	return spec
}

// NewExperiment builds the conformance experiment (workload generation
// plus machine calibration).
func NewExperiment() (*core.Experiment, error) {
	e, err := core.NewExperiment(Config(), Spec())
	if err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	return e, nil
}
